// Fundamental type aliases shared across the pMAFIA library.
//
// The paper stores candidate-dense-unit and dense-unit descriptors as
// linear byte arrays ("an array of bytes, one array for the bin indices of
// all the CDUs and one for the CDU dimensions", Section 4.2).  DimId and
// BinId are therefore single bytes throughout; this caps the library at 256
// dimensions and 256 bins per dimension, both comfortably above anything the
// paper's evaluation exercises (100 dimensions, <=200 adaptive bins).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mafia {

/// Attribute (dimension) identifier.  One byte, matching the paper's
/// byte-array unit representation.
using DimId = std::uint8_t;

/// Bin index within one dimension's grid.  One byte, see DimId.
using BinId = std::uint8_t;

/// Record (data point) index within a data set.
using RecordIndex = std::uint64_t;

/// Count of records falling into a histogram cell / bin / unit.
using Count = std::uint64_t;

/// Attribute value.  The paper's data sets are dense numeric tables; float
/// halves memory traffic versus double on the I/O-bound population passes
/// and loses nothing for grid-based clustering (bins are far coarser than
/// float resolution).
using Value = float;

/// Maximum number of dimensions representable (DimId is one byte).
inline constexpr std::size_t kMaxDims = 256;

/// Maximum number of bins per dimension (BinId is one byte).
inline constexpr std::size_t kMaxBinsPerDim = 256;

/// Sentinel for "no rank" / "no index".
inline constexpr std::size_t kInvalidIndex = std::numeric_limits<std::size_t>::max();

/// Reserved ground-truth / membership label for noise records.  Cluster ids
/// are the non-negative integers, so the noise sentinel must never collide
/// with a cluster id; every producer (datagen, assign_members, the baseline
/// adapters) and consumer (quality metrics, the eval scoreboard) uses this
/// constant instead of a magic literal.
inline constexpr std::int32_t kNoiseLabel = -1;

/// Reserved label for records that carry NO ground truth at all (bulk loads
/// from label-stripped record files, CSVs without a label column).  Distinct
/// from kNoiseLabel: "known to be noise" and "truth unknown" must not alias,
/// or scoring a label-stripped file would silently treat every record as
/// planted noise.
inline constexpr std::int32_t kUnlabeledLabel = -2;

}  // namespace mafia
