// Bounds-checked POD/vector/string byte serialization, shared by the
// checkpoint wire format (core/checkpoint.cpp) and the process backend's
// worker-result blob (core/result_codec.cpp).  Little-endian PODs, u64
// length prefixes; every reader overrun throws InputError naming the byte
// offset, so a short or corrupt payload can never read past the buffer.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace mafia {

/// Append-only POD/vector serializer.
struct ByteWriter {
  std::vector<std::uint8_t> out;

  template <typename T>
  void pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), p, p + sizeof(T));
  }

  template <typename T>
  void vec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(v.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    out.insert(out.end(), p, p + v.size() * sizeof(T));
  }

  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
    out.insert(out.end(), p, p + s.size());
  }
};

/// Bounds-checked reader.  `context` prefixes every error message so each
/// format keeps its own diagnostics ("checkpoint: truncated payload at
/// byte N" vs "mp result: ...").
struct ByteReader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t at = 0;
  const char* context = "checkpoint";

  void need(std::size_t bytes) {
    require_input(at + bytes >= at && at + bytes <= size,
                  std::string(context) + ": truncated payload at byte " +
                      std::to_string(at));
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T value;
    std::memcpy(&value, data + at, sizeof(T));
    at += sizeof(T);
    return value;
  }

  template <typename T>
  std::vector<T> vec() {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto n = pod<std::uint64_t>();
    require_input(n <= size / sizeof(T),
                  std::string(context) + ": implausible array length at byte " +
                      std::to_string(at));
    need(static_cast<std::size_t>(n) * sizeof(T));
    std::vector<T> v(static_cast<std::size_t>(n));
    std::memcpy(v.data(), data + at, v.size() * sizeof(T));
    at += v.size() * sizeof(T);
    return v;
  }

  std::string str() {
    const auto n = pod<std::uint64_t>();
    require_input(n <= size,
                  std::string(context) + ": implausible string length at byte " +
                      std::to_string(at));
    need(static_cast<std::size_t>(n));
    std::string s(reinterpret_cast<const char*>(data + at),
                  static_cast<std::size_t>(n));
    at += s.size();
    return s;
  }
};

}  // namespace mafia
