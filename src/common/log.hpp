// Minimal thread-safe logging.
//
// pMAFIA's parallel drivers run SPMD workers on std::thread; interleaved
// iostream writes would shred diagnostics, so all logging funnels through a
// single mutex.  Logging is off by default (level Silent): the library is
// quiet unless the caller opts in, as benches own their stdout format.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace mafia {

enum class LogLevel : int { Silent = 0, Info = 1, Debug = 2 };

namespace detail {
inline LogLevel& log_level_ref() {
  static LogLevel level = LogLevel::Silent;
  return level;
}
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace detail

/// Sets the global log level.  Not thread-safe; call before spawning workers.
inline void set_log_level(LogLevel level) { detail::log_level_ref() = level; }

[[nodiscard]] inline LogLevel log_level() { return detail::log_level_ref(); }

/// Writes one line to stderr if `level` is enabled.  Builds the whole line
/// first so concurrent ranks never interleave within a line.
inline void log_line(LogLevel level, const std::string& line) {
  if (static_cast<int>(level) > static_cast<int>(detail::log_level_ref())) return;
  std::lock_guard<std::mutex> lock(detail::log_mutex());
  std::cerr << line << '\n';
}

/// Convenience: stream-compose a log line lazily.
#define MAFIA_LOG(level, expr)                                   \
  do {                                                           \
    if (static_cast<int>(level) <=                               \
        static_cast<int>(::mafia::detail::log_level_ref())) {    \
      std::ostringstream mafia_log_os_;                          \
      mafia_log_os_ << expr;                                     \
      ::mafia::log_line(level, mafia_log_os_.str());             \
    }                                                            \
  } while (0)

}  // namespace mafia
