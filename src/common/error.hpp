// Error handling for the pMAFIA library.
//
// The library throws mafia::Error for unrecoverable misuse (bad options,
// malformed files, dimension overflow).  Hot paths never throw; argument
// validation happens once at API boundaries.
#pragma once

#include <stdexcept>
#include <string>

namespace mafia {

/// Exception type thrown by all pMAFIA public entry points on invalid
/// arguments or corrupt inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws mafia::Error with `message` when `condition` is false.
/// Used for API-boundary validation only, never in inner loops.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

}  // namespace mafia
