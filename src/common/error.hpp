// Error handling for the pMAFIA library.
//
// The library throws mafia::Error for unrecoverable misuse (bad options,
// malformed files, dimension overflow).  Hot paths never throw; argument
// validation happens once at API boundaries.
//
// Every Error carries an ErrorClass so callers (the CLI, harnesses) can
// map failures to distinct exit codes / report fields without parsing
// message text: Usage for caller mistakes, Input for corrupt or malformed
// data files, Resource for exceeded budgets (e.g. the CDU memory cap),
// Fault for injected/propagated rank failures, Internal for wrapped
// unexpected exceptions escaping a rank.
#pragma once

#include <stdexcept>
#include <string>

namespace mafia {

/// Failure classification, stable across the library (the CLI maps these
/// to exit codes; the error-report JSON carries error_class_name()).
enum class ErrorClass {
  Usage,     ///< bad options / API misuse / malformed arguments
  Input,     ///< corrupt, truncated, or non-finite input data
  Resource,  ///< an explicit budget (memory, level cap) was exceeded
  Fault,     ///< an injected or propagated rank failure
  Internal,  ///< unexpected exception wrapped at a runtime boundary
};

/// Stable lowercase name for an ErrorClass (JSON error reports).
[[nodiscard]] inline const char* error_class_name(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::Usage: return "usage";
    case ErrorClass::Input: return "input";
    case ErrorClass::Resource: return "resource";
    case ErrorClass::Fault: return "fault";
    case ErrorClass::Internal: return "internal";
  }
  return "internal";
}

/// Exception type thrown by all pMAFIA public entry points on invalid
/// arguments or corrupt inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorClass cls = ErrorClass::Usage)
      : std::runtime_error(what), class_(cls) {}

  [[nodiscard]] ErrorClass error_class() const { return class_; }
  [[nodiscard]] const char* class_name() const {
    return error_class_name(class_);
  }

  /// Optional machine-readable context as a JSON object literal (e.g. the
  /// process backend attaches per-rank exit statuses).  Empty = none.  The
  /// CLI splices this verbatim into the pmafia-error-v1 report, so the
  /// string must be a complete, valid JSON value.
  [[nodiscard]] const std::string& detail_json() const { return detail_json_; }
  void set_detail_json(std::string json) { detail_json_ = std::move(json); }

 private:
  ErrorClass class_;
  std::string detail_json_;
};

/// Corrupt, truncated, or otherwise unusable input data (record files,
/// checkpoints): the data must be fixed, not the call.
class InputError : public Error {
 public:
  explicit InputError(const std::string& what)
      : Error(what, ErrorClass::Input) {}
};

/// An explicit resource budget was exceeded (e.g. --max-cdu-bytes): the
/// run fails fast with the offending quantity instead of OOM-ing.
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what)
      : Error(what, ErrorClass::Resource) {}
};

/// Throws mafia::Error with `message` when `condition` is false.
/// Used for API-boundary validation only, never in inner loops.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

/// Input-data variant of require (throws InputError).
inline void require_input(bool condition, const std::string& message) {
  if (!condition) throw InputError(message);
}

}  // namespace mafia
