// Wall-clock timing utilities used by the drivers and the bench harness.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace mafia {

/// Simple monotonic wall-clock timer.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase durations (histogram pass, CDU build, populate,
/// identify, communication, ...).  The pMAFIA drivers fill one of these so
/// benches can print the per-phase breakdown the paper discusses in
/// Section 5.3 ("bulk of the time is taken in populating the candidate
/// dense units").
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase.
  void add(const std::string& phase, double seconds) { phases_[phase] += seconds; }

  /// Seconds accumulated for `phase` (0 if never recorded).
  [[nodiscard]] double get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [name, secs] : phases_) t += secs;
    return t;
  }

  [[nodiscard]] const std::map<std::string, double>& phases() const { return phases_; }

  /// Merges another PhaseTimer into this one (phase-wise sum).
  void merge(const PhaseTimer& other) {
    for (const auto& [name, secs] : other.phases_) phases_[name] += secs;
  }

  /// Phase-wise maximum — the parallel drivers combine per-rank timers with
  /// max, since the slowest rank determines wall-clock time.
  void merge_max(const PhaseTimer& other) {
    for (const auto& [name, secs] : other.phases_) {
      double& mine = phases_[name];
      if (secs > mine) mine = secs;
    }
  }

 private:
  std::map<std::string, double> phases_;
};

/// RAII guard that adds the scope's duration to a PhaseTimer on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ~ScopedPhase() { timer_.add(phase_, clock_.seconds()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  std::string phase_;
  Timer clock_;
};

}  // namespace mafia
