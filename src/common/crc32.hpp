// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// Guards on-disk structures whose silent corruption would poison a resumed
// run (core/checkpoint files).  Table-driven, one byte per step — these
// files are small (dense-unit summaries, not data), so throughput is
// irrelevant next to a guaranteed-portable, dependency-free checksum.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mafia {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of [data, data+bytes); pass a previous result as `seed` to
/// checksum discontiguous ranges incrementally.
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t bytes,
                                         std::uint32_t seed = 0) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < bytes; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace mafia
