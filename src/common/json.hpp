// Dependency-free JSON writing and (minimal) parsing for run reports.
//
// The observability layer serializes every pMAFIA run — per-rank/per-phase
// seconds and communication deltas — as machine-readable JSON so the perf
// trajectory can be tracked across changes (BENCH_*.json, --report-json).
// Third-party JSON libraries are off the table (the build is intentionally
// dependency-light), so this header provides:
//
//   * JsonWriter — a streaming writer with automatic comma/nesting
//     management.  Numbers are emitted round-trip exact (%.17g for doubles,
//     full width for 64-bit integers); strings are escaped per RFC 8259.
//   * JsonValue / json_parse — a small recursive-descent parser used by
//     tests and tooling to validate emitted reports.  It handles the full
//     JSON grammar (objects, arrays, strings with escapes, numbers, bools,
//     null) but is tuned for trusted, well-formed input: malformed text
//     throws mafia::Error with a byte offset.
#pragma once

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mafia {

/// Streaming JSON writer.  Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("records").value(123u);
///   w.key("phases").begin_array();
///   ... w.end_array();
///   w.end_object();
///   std::string text = w.str();
/// The writer validates nesting depth on end_*() and inserts commas
/// automatically; keys are only legal directly inside an object.
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(Frame::Object);
    fresh_ = true;
    return *this;
  }

  JsonWriter& end_object() {
    require(!stack_.empty() && stack_.back() == Frame::Object,
            "JsonWriter: end_object without matching begin_object");
    stack_.pop_back();
    out_ += '}';
    fresh_ = false;
    return *this;
  }

  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(Frame::Array);
    fresh_ = true;
    return *this;
  }

  JsonWriter& end_array() {
    require(!stack_.empty() && stack_.back() == Frame::Array,
            "JsonWriter: end_array without matching begin_array");
    stack_.pop_back();
    out_ += ']';
    fresh_ = false;
    return *this;
  }

  /// Writes an object key; must be followed by exactly one value.
  JsonWriter& key(const std::string& name) {
    require(!stack_.empty() && stack_.back() == Frame::Object,
            "JsonWriter: key outside of object");
    separate();
    write_string(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& s) {
    separate();
    write_string(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string(s)); }

  JsonWriter& value(double d) {
    // JSON has no NaN/Infinity literals; %.17g would emit "nan"/"inf" and
    // corrupt the whole document.  A ratio with a zero denominator (e.g. an
    // I/O overlap over an empty partition's zero-length scan) serializes as
    // null instead.
    if (!std::isfinite(d)) return null();
    separate();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out_ += buf;
    return *this;
  }

  JsonWriter& value(std::uint64_t u) {
    separate();
    out_ += std::to_string(u);
    return *this;
  }
  JsonWriter& value(std::int64_t i) {
    separate();
    out_ += std::to_string(i);
    return *this;
  }
  JsonWriter& value(int i) { return value(static_cast<std::int64_t>(i)); }
  JsonWriter& value(unsigned u) { return value(static_cast<std::uint64_t>(u)); }

  JsonWriter& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }

  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  /// Splices a pre-serialized JSON value in verbatim (no validation) —
  /// used to embed one complete document inside another.
  JsonWriter& raw(const std::string& json) {
    separate();
    out_ += json;
    return *this;
  }

  /// The document so far; call once nesting is fully closed.
  [[nodiscard]] const std::string& str() const {
    require(stack_.empty(), "JsonWriter: unclosed object/array");
    return out_;
  }

 private:
  enum class Frame : std::uint8_t { Object, Array };

  /// Emits the comma before a sibling value, consuming any pending key.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;  // "key": <- value attaches directly, no comma
    }
    if (!stack_.empty() && !fresh_) out_ += ',';
    fresh_ = false;
  }

  void write_string(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\r': out_ += "\\r"; break;
        case '\t': out_ += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool fresh_ = true;        ///< true right after '{' / '[' (no comma yet)
  bool pending_key_ = false; ///< a key was written, its value is next
};

/// Parsed JSON value (tests/tooling side of the writer).
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return type == Type::Object; }
  [[nodiscard]] bool is_array() const { return type == Type::Array; }
  [[nodiscard]] bool is_number() const { return type == Type::Number; }
  [[nodiscard]] bool is_string() const { return type == Type::String; }

  [[nodiscard]] bool has(const std::string& k) const {
    return type == Type::Object && object.count(k) > 0;
  }

  /// Object member access; throws if absent or not an object.
  [[nodiscard]] const JsonValue& at(const std::string& k) const {
    require(type == Type::Object, "JsonValue: not an object");
    const auto it = object.find(k);
    require(it != object.end(), "JsonValue: missing key '" + k + "'");
    return it->second;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    require(at_ == text_.size(), err("trailing characters"));
    return v;
  }

 private:
  [[nodiscard]] std::string err(const std::string& what) const {
    return "json_parse: " + what + " at byte " + std::to_string(at_);
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  char peek() {
    skip_ws();
    require(at_ < text_.size(), err("unexpected end of input"));
    return text_[at_];
  }

  void expect(char c) {
    require(peek() == c, err(std::string("expected '") + c + "'"));
    ++at_;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_literal(c == 't');
      case 'n': {
        consume_word("null");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    if (peek() == '}') {
      ++at_;
      return v;
    }
    while (true) {
      std::string k = parse_string();
      expect(':');
      v.object.emplace(std::move(k), parse_value());
      const char c = peek();
      ++at_;
      if (c == '}') return v;
      require(c == ',', err("expected ',' or '}' in object"));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    if (peek() == ']') {
      ++at_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++at_;
      if (c == ']') return v;
      require(c == ',', err("expected ',' or ']' in array"));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(at_ < text_.size(), err("unterminated string"));
      const char c = text_[at_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      require(at_ < text_.size(), err("unterminated escape"));
      const char e = text_[at_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          require(at_ + 4 <= text_.size(), err("truncated \\u escape"));
          const unsigned long cp =
              std::strtoul(text_.substr(at_, 4).c_str(), nullptr, 16);
          at_ += 4;
          // Reports only ever escape control characters (< 0x80); emit
          // a minimal UTF-8 encoding for anything in the BMP.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: require(false, err("bad escape character"));
      }
    }
  }

  JsonValue parse_literal(bool b) {
    consume_word(b ? "true" : "false");
    JsonValue v;
    v.type = JsonValue::Type::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_number() {
    skip_ws();
    const char* start = text_.c_str() + at_;
    char* end = nullptr;
    const double d = std::strtod(start, &end);
    require(end != start, err("expected a value"));
    at_ += static_cast<std::size_t>(end - start);
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.number = d;
    return v;
  }

  void consume_word(const char* word) {
    skip_ws();
    const std::size_t len = std::string(word).size();
    require(text_.compare(at_, len, word) == 0, err("bad literal"));
    at_ += len;
  }

  const std::string& text_;
  std::size_t at_ = 0;
};

}  // namespace detail

/// Parses a JSON document; throws mafia::Error on malformed input.
[[nodiscard]] inline JsonValue json_parse(const std::string& text) {
  return detail::JsonParser(text).parse();
}

}  // namespace mafia
