// Small math helpers shared across modules.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace mafia {

/// Integer ceiling division for non-negative integers.
template <typename T>
[[nodiscard]] constexpr T ceil_div(T numerator, T denominator) {
  return (numerator + denominator - 1) / denominator;
}

/// Clamps `v` into [lo, hi].
template <typename T>
[[nodiscard]] constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// The contiguous [begin, end) range of items owned by `rank` when `total`
/// items are block-partitioned across `p` ranks as evenly as possible
/// (first `total % p` ranks get one extra item).
struct BlockRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
};

[[nodiscard]] inline BlockRange block_partition(std::size_t total, std::size_t p,
                                                std::size_t rank) {
  const std::size_t base = total / p;
  const std::size_t extra = total % p;
  const std::size_t begin = rank * base + std::min<std::size_t>(rank, extra);
  const std::size_t len = base + (rank < extra ? 1 : 0);
  return BlockRange{begin, begin + len};
}

/// True when two floating point values are within `tol` relative tolerance
/// (absolute tolerance near zero).
[[nodiscard]] inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

}  // namespace mafia
