// Shared-disk -> local-disk staging (Algorithm 2's first I/O step).
//
// "In our set up on the IBM SP2, each processor reads a portion of the data
// from a shared disk initially and keeps it on the local disk.  The
// bandwidth seen by a processor of an I/O access from the local disk is
// much higher than an access to a shared disk."  (Section 4)
//
// On a single machine the "local disks" are p separate record files; the
// point of the substrate is the access-pattern contract: after staging,
// rank r's scans touch ONLY its own file.  StagedSource enforces that
// contract (scanning outside the owning partition of any file is
// impossible by construction), so the driver's partitioned scans exercise
// exactly the paper's I/O structure, and the staging time — the cost the
// paper excludes from its measurements ("time taken for data to be read
// from the shared disk onto the local disks ... is not included") — can be
// measured separately.
#pragma once

#include <string>
#include <vector>

#include "common/math_util.hpp"
#include "io/data_source.hpp"

namespace mafia {

/// Result of staging a shared record file across p local files.
struct StagedPartitions {
  std::vector<std::string> paths;  ///< one record file per rank
  RecordIndex num_records = 0;     ///< total records across all partitions
  std::size_t num_dims = 0;
  double staging_seconds = 0.0;    ///< the cost the paper excludes
};

/// Splits `shared_path` into p record files `<local_prefix>.rank<r>`, each
/// holding rank r's block partition (same split as the driver uses).
[[nodiscard]] StagedPartitions stage_partitions(const std::string& shared_path,
                                                const std::string& local_prefix,
                                                int ranks,
                                                std::size_t chunk_records = 1 << 16);

/// Deletes the staged files.
void remove_staged(const StagedPartitions& staged);

/// DataSource over staged per-rank files, presenting the global record
/// numbering: scanning records [begin, end) reads from the file(s) owning
/// that range.  When the driver's rank r scans its block partition, every
/// byte comes from file r — the paper's local-disk access pattern.
class StagedSource final : public DataSource {
 public:
  explicit StagedSource(const StagedPartitions& staged);

  [[nodiscard]] RecordIndex num_records() const override { return total_; }
  [[nodiscard]] std::size_t num_dims() const override { return dims_; }

  void scan(RecordIndex begin, RecordIndex end, std::size_t chunk_records,
            const ChunkFn& fn) const override;

  /// Number of distinct partition files a scan of [begin, end) touches —
  /// tests assert this is 1 for every rank-aligned scan.
  [[nodiscard]] std::size_t partitions_touched(RecordIndex begin,
                                               RecordIndex end) const;

 private:
  std::vector<FileSource> files_;
  std::vector<RecordIndex> offsets_;  ///< global start of each partition
  RecordIndex total_ = 0;
  std::size_t dims_ = 0;
};

}  // namespace mafia
