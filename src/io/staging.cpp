#include "io/staging.hpp"

#include <cstdio>

#include "common/timer.hpp"
#include "io/record_file.hpp"

namespace mafia {

StagedPartitions stage_partitions(const std::string& shared_path,
                                  const std::string& local_prefix, int ranks,
                                  std::size_t chunk_records) {
  require(ranks >= 1, "stage_partitions: need at least one rank");
  Timer timer;

  const FileSource shared(shared_path);
  const RecordIndex n = shared.num_records();
  const std::size_t d = shared.num_dims();

  StagedPartitions staged;
  staged.num_records = n;
  staged.num_dims = d;
  staged.paths.reserve(static_cast<std::size_t>(ranks));

  for (int r = 0; r < ranks; ++r) {
    const BlockRange range =
        block_partition(static_cast<std::size_t>(n),
                        static_cast<std::size_t>(ranks),
                        static_cast<std::size_t>(r));
    Dataset part(d);
    part.reserve(range.size());
    std::vector<Value> row(d);
    shared.scan(range.begin, range.end, chunk_records,
                [&](const Value* rows, std::size_t nrows) {
                  for (std::size_t i = 0; i < nrows; ++i) {
                    std::copy(rows + i * d, rows + (i + 1) * d, row.begin());
                    part.append(row);
                  }
                });
    const std::string path = local_prefix + ".rank" + std::to_string(r);
    write_record_file(path, part, /*with_labels=*/false);
    staged.paths.push_back(path);
  }
  staged.staging_seconds = timer.seconds();
  return staged;
}

void remove_staged(const StagedPartitions& staged) {
  for (const std::string& path : staged.paths) std::remove(path.c_str());
}

StagedSource::StagedSource(const StagedPartitions& staged)
    : total_(staged.num_records), dims_(staged.num_dims) {
  require(!staged.paths.empty(), "StagedSource: no partitions");
  files_.reserve(staged.paths.size());
  offsets_.reserve(staged.paths.size() + 1);
  RecordIndex at = 0;
  for (const std::string& path : staged.paths) {
    files_.emplace_back(path);
    offsets_.push_back(at);
    at += files_.back().num_records();
    require(files_.back().num_dims() == dims_,
            "StagedSource: partition dimensionality mismatch");
  }
  offsets_.push_back(at);
  require(at == total_, "StagedSource: partition sizes do not sum to total");
}

void StagedSource::scan(RecordIndex begin, RecordIndex end,
                        std::size_t chunk_records, const ChunkFn& fn) const {
  require(begin <= end && end <= total_, "StagedSource::scan: bad range");
  for (std::size_t p = 0; p < files_.size() && begin < end; ++p) {
    const RecordIndex part_begin = offsets_[p];
    const RecordIndex part_end = offsets_[p + 1];
    if (end <= part_begin || begin >= part_end) continue;
    const RecordIndex lo = std::max(begin, part_begin) - part_begin;
    const RecordIndex hi = std::min(end, part_end) - part_begin;
    files_[p].scan(lo, hi, chunk_records, fn);
  }
}

std::size_t StagedSource::partitions_touched(RecordIndex begin,
                                             RecordIndex end) const {
  std::size_t touched = 0;
  for (std::size_t p = 0; p < files_.size(); ++p) {
    const bool overlaps = end > offsets_[p] && begin < offsets_[p + 1];
    touched += overlaps ? 1 : 0;
  }
  return touched;
}

}  // namespace mafia
