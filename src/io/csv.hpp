// CSV import/export — the practical ingestion path for users bringing
// their own tables (the record-file format remains the out-of-core format
// the algorithm scans).
#pragma once

#include <string>
#include <vector>

#include "io/dataset.hpp"

namespace mafia {

struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column names) on read; emit names on write.
  bool header = true;
  /// On read: treat an integer final column named "label" (or the last
  /// column when `last_column_is_label`) as the ground-truth label.
  bool last_column_is_label = false;
};

/// Reads a numeric CSV into a Dataset.  All columns must parse as floats
/// (or the optional trailing label column as an integer); ragged or
/// non-numeric rows raise mafia::Error with the line number.
[[nodiscard]] Dataset read_csv(const std::string& path,
                               const CsvOptions& options = {});

/// Writes a Dataset as CSV.  `column_names` (optional) must match the
/// dimension count; default names are d0..d{n-1}.  Labels are appended as a
/// final "label" column when `options.last_column_is_label`.
void write_csv(const std::string& path, const Dataset& data,
               const CsvOptions& options = {},
               const std::vector<std::string>& column_names = {});

}  // namespace mafia
