#include "io/pipeline.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/timer.hpp"

namespace mafia {

namespace {

/// Private unwind signal: thrown inside the producer's chunk callback to
/// escape the inner source's scan loop when the consumer cancels.  Never
/// crosses the pipeline boundary.
struct ProducerCancelled {};

/// The bounded chunk-buffer ring one pipelined scan runs on.  Slots cycle
/// through free -> filling -> full -> consuming -> free; `head` counts
/// chunks produced, `tail` chunks consumed, and the FIFO order of both
/// cursors is what preserves the synchronous chunk sequence.
class ChunkRing {
 public:
  ChunkRing(std::size_t buffers, std::size_t chunk_values)
      : slots_(buffers) {
    for (Slot& s : slots_) s.values.resize(chunk_values);
  }

  /// Producer: blocks until a free slot is available (or the consumer
  /// cancelled), copies the chunk in, and publishes it.  Returns the
  /// seconds spent blocked on a full ring, so the producer can subtract
  /// consumer-induced backpressure from its read time.
  double produce(const Value* rows, std::size_t nrows, std::size_t num_dims) {
    Slot& slot = slots_[head_ % slots_.size()];
    double blocked = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (head_ - tail_ >= slots_.size() && !cancelled_) {
        const Timer wait;
        not_full_.wait(lock, [&] { return head_ - tail_ < slots_.size() || cancelled_; });
        blocked = wait.seconds();
      }
      if (cancelled_) throw ProducerCancelled{};
    }
    // The slot is provably quiescent here: head - tail < size means the
    // consumer has moved past it, and only this thread advances head.
    const std::size_t n = nrows * num_dims;
    std::copy(rows, rows + n, slot.values.begin());
    slot.nrows = nrows;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++head_;
    }
    not_empty_.notify_one();
    return blocked;
  }

  /// Producer: no more chunks (or the producer failed with `error`).
  void finish(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      error_ = std::move(error);
      done_ = true;
    }
    not_empty_.notify_one();
  }

  /// Consumer: blocks until the next chunk (in production order) is ready;
  /// returns nullptr when the producer finished and the ring is drained.
  /// Rethrows a producer-side failure after the drained prefix — the
  /// consumer sees exactly the chunks a synchronous scan would have
  /// delivered before the same failure.  Wait time is added to `stats`.
  struct Slot;
  const Slot* consume(IoScanStats& stats) {
    std::unique_lock<std::mutex> lock(mu_);
    if (head_ == tail_ && !done_) {
      const Timer wait;
      not_empty_.wait(lock, [&] { return head_ > tail_ || done_; });
      stats.wait_seconds += wait.seconds();
    }
    if (head_ == tail_) {
      if (error_) std::rethrow_exception(error_);
      return nullptr;
    }
    return &slots_[tail_ % slots_.size()];
  }

  /// Consumer: releases the slot returned by consume().
  void release() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++tail_;
    }
    not_full_.notify_one();
  }

  /// Consumer: tells a possibly-blocked producer to stop (consumer-side
  /// unwind path).  Idempotent.
  void cancel() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      cancelled_ = true;
    }
    not_full_.notify_one();
  }

  struct Slot {
    std::vector<Value> values;
    std::size_t nrows = 0;
  };

 private:
  std::vector<Slot> slots_;
  std::mutex mu_;
  std::condition_variable not_full_;   // producer waits: ring has room
  std::condition_variable not_empty_;  // consumer waits: chunk or done
  std::size_t head_ = 0;  ///< chunks produced (published)
  std::size_t tail_ = 0;  ///< chunks consumed (released)
  bool done_ = false;
  bool cancelled_ = false;
  std::exception_ptr error_;
};

/// Joins the producer on every exit path.  Cancelling first guarantees a
/// producer blocked on a full ring wakes and unwinds, so the join can
/// never deadlock — this is the fault-safety half of the pipeline
/// contract (an AbortedError or injected kill in the consumer reaches
/// this destructor during unwinding).
class ProducerGuard {
 public:
  ProducerGuard(ChunkRing& ring, std::thread thread)
      : ring_(ring), thread_(std::move(thread)) {}
  ~ProducerGuard() {
    ring_.cancel();
    if (thread_.joinable()) thread_.join();
  }
  ProducerGuard(const ProducerGuard&) = delete;
  ProducerGuard& operator=(const ProducerGuard&) = delete;

 private:
  ChunkRing& ring_;
  std::thread thread_;
};

}  // namespace

PipelinedSource::PipelinedSource(const DataSource& inner, std::size_t buffers)
    : inner_(inner), buffers_(buffers) {
  require(buffers >= 2, "PipelinedSource: ring needs at least 2 buffers");
}

void PipelinedSource::scan(RecordIndex begin, RecordIndex end,
                           std::size_t chunk_records, const ChunkFn& fn) const {
  IoScanStats ignored;
  scan_with_stats(begin, end, chunk_records, fn, ignored);
}

void PipelinedSource::scan_with_stats(RecordIndex begin, RecordIndex end,
                                      std::size_t chunk_records,
                                      const ChunkFn& fn,
                                      IoScanStats& stats) const {
  require(chunk_records > 0, "scan: chunk_records must be positive");
  require(begin <= end && end <= inner_.num_records(), "scan: bad record range");
  const std::size_t d = inner_.num_dims();
  const Timer scan_timer;
  IoScanStats local;
  if (begin == end) {
    local.scan_seconds = scan_timer.seconds();
    stats.merge(local);
    return;
  }

  ChunkRing ring(buffers_, chunk_records * d);

  // Producer: run the inner source's own synchronous scan, staging each
  // chunk into the ring.  Chunk boundaries are therefore the inner scan's
  // by construction.  read_seconds is accumulated producer-side (only this
  // thread touches it until the join below); time blocked on a full ring
  // is consumer backpressure, not reading, and is subtracted out.
  double read_seconds = 0.0;
  std::thread producer([&] {
    std::exception_ptr error;
    try {
      const Timer read_timer;
      double blocked = 0.0;
      inner_.scan(begin, end, chunk_records,
                  [&](const Value* rows, std::size_t nrows) {
                    blocked += ring.produce(rows, nrows, d);
                  });
      read_seconds = read_timer.seconds() - blocked;
      if (read_seconds < 0.0) read_seconds = 0.0;
    } catch (const ProducerCancelled&) {
      // Consumer-side unwind already in progress; its exception wins.
    } catch (...) {
      error = std::current_exception();
    }
    ring.finish(std::move(error));
  });
  const ProducerGuard guard(ring, std::move(producer));

  // Consumer: drain strictly FIFO.  A callback exception leaves through
  // the guard, which cancels + joins the producer before rethrowing.
  while (const ChunkRing::Slot* slot = ring.consume(local)) {
    const Timer compute;
    fn(slot->values.data(), slot->nrows);
    local.compute_seconds += compute.seconds();
    ++local.chunks;
    local.bytes += slot->nrows * d * sizeof(Value);
    ring.release();
  }

  // Normal exit: the producer has already left inner_.scan (consume()
  // returned nullptr only after finish()), so read_seconds is final even
  // though the guard's join happens later.
  local.read_seconds = read_seconds;
  local.scan_seconds = scan_timer.seconds();
  stats.merge(local);
}

void timed_scan(const DataSource& source, RecordIndex begin, RecordIndex end,
                std::size_t chunk_records, const ChunkFn& fn,
                IoScanStats& stats) {
  const std::size_t d = source.num_dims();
  const Timer scan_timer;
  IoScanStats local;
  source.scan(begin, end, chunk_records,
              [&](const Value* rows, std::size_t nrows) {
                const Timer compute;
                fn(rows, nrows);
                local.compute_seconds += compute.seconds();
                ++local.chunks;
                local.bytes += nrows * d * sizeof(Value);
              });
  local.scan_seconds = scan_timer.seconds();
  // Synchronous split: everything outside the callback is read time, and
  // none of it was hidden — wait == read by definition.
  local.read_seconds = local.scan_seconds - local.compute_seconds;
  if (local.read_seconds < 0.0) local.read_seconds = 0.0;
  local.wait_seconds = local.read_seconds;
  stats.merge(local);
}

void ThrottledSource::scan(RecordIndex begin, RecordIndex end,
                           std::size_t chunk_records, const ChunkFn& fn) const {
  inner_.scan(begin, end, chunk_records,
              [&](const Value* rows, std::size_t nrows) {
                // The sleep models the disk read of this chunk and happens
                // BEFORE the callback: downstream compute must not eat
                // into the emulated read time, or a synchronous consumer
                // would see the read for free and the sync-vs-pipelined
                // comparison the bench makes would be meaningless.
                const double target =
                    static_cast<double>(nrows * inner_.num_dims() *
                                        sizeof(Value)) /
                    bytes_per_second_;
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(target));
                fn(rows, nrows);
              });
}

}  // namespace mafia
