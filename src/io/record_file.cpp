#include "io/record_file.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"

namespace mafia {

namespace {

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}

/// Byte size the header says the file must have.  Guarded against 64-bit
/// overflow (an absurd record count in a corrupt header must produce a
/// mismatch error, not a wrapped-around "expected" size that accidentally
/// matches).
std::uint64_t declared_file_bytes(const RecordFileHeader& h,
                                  const std::string& path) {
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(h.num_dims) * sizeof(Value) +
      (h.has_labels ? sizeof(std::int32_t) : 0);
  require_input(h.num_records <=
                    (UINT64_MAX - kRecordFileHeaderBytes) / row_bytes,
                "record file header in " + path +
                    " declares an impossible record count");
  return kRecordFileHeaderBytes + h.num_records * row_bytes;
}

}  // namespace

void validate_finite_values(const Value* rows, std::size_t nrows,
                            std::size_t num_dims, RecordIndex first_record,
                            const std::string& path) {
  for (std::size_t i = 0; i < nrows * num_dims; ++i) {
    if (!std::isfinite(rows[i])) [[unlikely]] {
      const std::uint64_t record =
          static_cast<std::uint64_t>(first_record) + i / num_dims;
      const std::size_t dim = i % num_dims;
      const std::uint64_t offset =
          kRecordFileHeaderBytes +
          (record * num_dims + dim) * sizeof(Value);
      throw InputError("non-finite value in " + path + " at record " +
                       std::to_string(record) + ", dim " +
                       std::to_string(dim) + " (byte offset " +
                       std::to_string(offset) + ")");
    }
  }
}

void write_record_file(const std::string& path, const Dataset& data,
                       bool with_labels) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "write_record_file: cannot open " + path);

  out.write(kRecordFileMagic, sizeof(kRecordFileMagic));
  write_pod(out, kRecordFileVersion);
  write_pod(out, static_cast<std::uint64_t>(data.num_records()));
  write_pod(out, static_cast<std::uint32_t>(data.num_dims()));
  write_pod(out, static_cast<std::uint32_t>(with_labels ? 1u : 0u));

  const auto& values = data.values();
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(Value)));
  }
  if (with_labels) {
    const auto& labels = data.labels();
    if (!labels.empty()) {
      out.write(reinterpret_cast<const char*>(labels.data()),
                static_cast<std::streamsize>(labels.size() * sizeof(std::int32_t)));
    }
  }
  require(out.good(), "write_record_file: write failed for " + path);
}

RecordFileHeader read_record_file_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require_input(in.good(), "read_record_file_header: cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  require_input(in.good() && std::memcmp(magic, kRecordFileMagic, 8) == 0,
                "read_record_file_header: bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in);
  require_input(version == kRecordFileVersion,
                "read_record_file_header: unsupported version in " + path);

  RecordFileHeader header;
  header.num_records = read_pod<std::uint64_t>(in);
  header.num_dims = read_pod<std::uint32_t>(in);
  header.has_labels = (read_pod<std::uint32_t>(in) & 1u) != 0;
  require_input(in.good(),
                "read_record_file_header: truncated header in " + path);
  require_input(header.num_dims >= 1 && header.num_dims <= kMaxDims,
                "read_record_file_header: bad dimension count in " + path);

  // The value block (and label block, if flagged) must match the header's
  // declared shape exactly — a truncated or padded file is rejected here,
  // before any reader silently scans garbage.
  const std::uint64_t expected = declared_file_bytes(header, path);
  std::error_code ec;
  const std::uint64_t actual = std::filesystem::file_size(path, ec);
  require_input(!ec, "read_record_file_header: cannot stat " + path);
  require_input(actual == expected,
                "record file size mismatch in " + path + ": header declares " +
                    std::to_string(header.num_records) + " records x " +
                    std::to_string(header.num_dims) + " dims" +
                    (header.has_labels ? " + labels" : "") + " = " +
                    std::to_string(expected) + " bytes, file has " +
                    std::to_string(actual) + " bytes");
  return header;
}

Dataset read_record_file(const std::string& path) {
  const RecordFileHeader header = read_record_file_header(path);
  std::ifstream in(path, std::ios::binary);
  require_input(in.good(), "read_record_file: cannot open " + path);
  in.seekg(static_cast<std::streamoff>(kRecordFileHeaderBytes));

  Dataset data(header.num_dims);
  data.reserve(header.num_records);
  const std::size_t d = header.num_dims;

  // Read the value block in multi-record slabs (~4 MiB) instead of one
  // read() per row; validate_finite_values keeps per-record error
  // attribution because each slab knows its first record index.
  constexpr std::uint64_t kSlabBytes = 4u << 20;
  const std::uint64_t slab_records =
      std::max<std::uint64_t>(1, kSlabBytes / (d * sizeof(Value)));
  std::vector<Value> slab(
      static_cast<std::size_t>(
          std::min<std::uint64_t>(slab_records, header.num_records)) * d);
  for (std::uint64_t at = 0; at < header.num_records;) {
    const std::uint64_t take =
        std::min<std::uint64_t>(slab_records, header.num_records - at);
    in.read(reinterpret_cast<char*>(slab.data()),
            static_cast<std::streamsize>(take * d * sizeof(Value)));
    require_input(in.good(), "read_record_file: truncated values in " + path);
    validate_finite_values(slab.data(), static_cast<std::size_t>(take), d,
                           static_cast<RecordIndex>(at), path);
    data.append_rows(slab.data(), static_cast<RecordIndex>(take));
    at += take;
  }

  if (header.has_labels && header.num_records > 0) {
    std::vector<std::int32_t> labels(
        static_cast<std::size_t>(header.num_records));
    in.read(reinterpret_cast<char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() * sizeof(std::int32_t)));
    require_input(in.good(), "read_record_file: truncated labels in " + path);
    for (std::uint64_t i = 0; i < header.num_records; ++i) {
      data.set_label(static_cast<RecordIndex>(i), labels[i]);
    }
  }
  return data;
}

}  // namespace mafia
