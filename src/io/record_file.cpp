#include "io/record_file.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"

namespace mafia {

namespace {

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return value;
}

}  // namespace

void write_record_file(const std::string& path, const Dataset& data,
                       bool with_labels) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  require(out.good(), "write_record_file: cannot open " + path);

  out.write(kRecordFileMagic, sizeof(kRecordFileMagic));
  write_pod(out, kRecordFileVersion);
  write_pod(out, static_cast<std::uint64_t>(data.num_records()));
  write_pod(out, static_cast<std::uint32_t>(data.num_dims()));
  write_pod(out, static_cast<std::uint32_t>(with_labels ? 1u : 0u));

  const auto& values = data.values();
  if (!values.empty()) {
    out.write(reinterpret_cast<const char*>(values.data()),
              static_cast<std::streamsize>(values.size() * sizeof(Value)));
  }
  if (with_labels) {
    const auto& labels = data.labels();
    if (!labels.empty()) {
      out.write(reinterpret_cast<const char*>(labels.data()),
                static_cast<std::streamsize>(labels.size() * sizeof(std::int32_t)));
    }
  }
  require(out.good(), "write_record_file: write failed for " + path);
}

RecordFileHeader read_record_file_header(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "read_record_file_header: cannot open " + path);

  char magic[8];
  in.read(magic, sizeof(magic));
  require(in.good() && std::memcmp(magic, kRecordFileMagic, 8) == 0,
          "read_record_file_header: bad magic in " + path);
  const auto version = read_pod<std::uint32_t>(in);
  require(version == kRecordFileVersion,
          "read_record_file_header: unsupported version in " + path);

  RecordFileHeader header;
  header.num_records = read_pod<std::uint64_t>(in);
  header.num_dims = read_pod<std::uint32_t>(in);
  header.has_labels = (read_pod<std::uint32_t>(in) & 1u) != 0;
  require(in.good(), "read_record_file_header: truncated header in " + path);
  require(header.num_dims >= 1 && header.num_dims <= kMaxDims,
          "read_record_file_header: bad dimension count in " + path);
  return header;
}

Dataset read_record_file(const std::string& path) {
  const RecordFileHeader header = read_record_file_header(path);
  std::ifstream in(path, std::ios::binary);
  require(in.good(), "read_record_file: cannot open " + path);
  in.seekg(static_cast<std::streamoff>(kRecordFileHeaderBytes));

  Dataset data(header.num_dims);
  data.reserve(header.num_records);
  std::vector<Value> row(header.num_dims);
  for (std::uint64_t i = 0; i < header.num_records; ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(Value)));
    require(in.good(), "read_record_file: truncated values in " + path);
    data.append(row);
  }
  if (header.has_labels) {
    for (std::uint64_t i = 0; i < header.num_records; ++i) {
      data.set_label(i, read_pod<std::int32_t>(in));
    }
    require(in.good(), "read_record_file: truncated labels in " + path);
  }
  return data;
}

}  // namespace mafia
