// In-memory data set representation.
//
// A data set is a dense N x d table of float attribute values (row-major),
// optionally carrying per-record ground-truth labels from the synthetic
// generator (cluster id, kNoiseLabel for planted noise, kUnlabeledLabel when
// the source carried no truth at all).  Labels are never visible to the
// clustering algorithms — they exist only so the quality benches (Table 3,
// Fig 1.2) and the eval scoreboard can score discovered clusters against the
// planted truth.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty data set with `dims` attributes.
  explicit Dataset(std::size_t dims) : dims_(dims) {
    require(dims >= 1 && dims <= kMaxDims, "Dataset: bad dimension count");
  }

  [[nodiscard]] RecordIndex num_records() const {
    return dims_ == 0 ? 0 : values_.size() / dims_;
  }
  [[nodiscard]] std::size_t num_dims() const { return dims_; }

  /// Appends one record; `row.size()` must equal num_dims().  The default
  /// label is kUnlabeledLabel ("no ground truth"), NOT kNoiseLabel: a caller
  /// that knows a record is planted noise must say so explicitly.
  void append(std::span<const Value> row, std::int32_t label = kUnlabeledLabel) {
    require(row.size() == dims_, "Dataset::append: wrong row width");
    values_.insert(values_.end(), row.begin(), row.end());
    labels_.push_back(label);
  }

  /// Appends `nrows` row-major records in one splice (the bulk-loader path:
  /// read_record_file's slab reads).  Labels are filled with kUnlabeledLabel;
  /// use set_label() to attach ground truth afterwards.
  void append_rows(const Value* rows, RecordIndex nrows) {
    require(dims_ >= 1, "Dataset::append_rows: no dimension count set");
    const auto n = static_cast<std::size_t>(nrows);
    values_.insert(values_.end(), rows, rows + n * dims_);
    labels_.insert(labels_.end(), n, kUnlabeledLabel);
  }

  /// Appends every record of `other`, labels included — the append-batch
  /// path concatenates the base data and the new batch with this.
  void append_rows(const Dataset& other) {
    require(other.dims_ == dims_, "Dataset::append_rows: dimension mismatch");
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
    labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  }

  /// Reserves capacity for `n` records.
  void reserve(RecordIndex n) {
    values_.reserve(static_cast<std::size_t>(n) * dims_);
    labels_.reserve(static_cast<std::size_t>(n));
  }

  [[nodiscard]] std::span<const Value> row(RecordIndex i) const {
    return {values_.data() + static_cast<std::size_t>(i) * dims_, dims_};
  }
  [[nodiscard]] std::span<Value> mutable_row(RecordIndex i) {
    return {values_.data() + static_cast<std::size_t>(i) * dims_, dims_};
  }

  [[nodiscard]] Value at(RecordIndex i, std::size_t dim) const {
    return values_[static_cast<std::size_t>(i) * dims_ + dim];
  }

  [[nodiscard]] std::int32_t label(RecordIndex i) const {
    return labels_[static_cast<std::size_t>(i)];
  }
  void set_label(RecordIndex i, std::int32_t label) {
    labels_[static_cast<std::size_t>(i)] = label;
  }

  [[nodiscard]] const std::vector<Value>& values() const { return values_; }
  [[nodiscard]] const std::vector<std::int32_t>& labels() const { return labels_; }

  /// Reorders records by the given permutation (new[i] = old[perm[i]]).
  /// Used by the generator's record-order permutation step (Section 5.1).
  void permute(const std::vector<RecordIndex>& perm) {
    require(perm.size() == num_records(), "Dataset::permute: bad permutation size");
    std::vector<Value> new_values(values_.size());
    std::vector<std::int32_t> new_labels(labels_.size());
    for (std::size_t i = 0; i < perm.size(); ++i) {
      const auto src = static_cast<std::size_t>(perm[i]);
      for (std::size_t d = 0; d < dims_; ++d) {
        new_values[i * dims_ + d] = values_[src * dims_ + d];
      }
      new_labels[i] = labels_[src];
    }
    values_ = std::move(new_values);
    labels_ = std::move(new_labels);
  }

 private:
  std::size_t dims_ = 0;
  std::vector<Value> values_;
  std::vector<std::int32_t> labels_;
};

}  // namespace mafia
