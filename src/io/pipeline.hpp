// Pipelined prefetching scans — overlapping disk reads with kernel compute.
//
// Algorithm 2 structures every data pass as "read N/p chunks of B records
// and process"; with a strictly synchronous DataSource::scan each rank's
// disk read and kernel compute serialize on every pass (histogram, min/max,
// populate).  PipelinedSource decorates any DataSource with a background
// producer thread that fills a bounded ring of B-record chunk buffers while
// the consumer callback processes the previous chunk, so a pass costs
// max(read, compute) instead of read + compute — the standard double-
// buffering fix (cf. the chunked device-staging pipelines in gpumafia).
//
// Contract:
//   * Ordering — the consumer sees exactly the chunk sequence of the
//     synchronous scan (same boundaries, same bytes, same order): the
//     producer runs the inner source's own scan and the ring is drained
//     strictly FIFO.  Results are therefore bit-identical with pipelining
//     on or off; the equivalence suite pins this across sources and rank
//     counts.
//   * Concurrency — scan() stays const and re-entrant: each call owns its
//     ring and producer thread, so every SPMD rank can run its own
//     pipelined scan concurrently (p scans = p producer threads).
//   * Fault safety — an exception on either side of the ring unwinds both:
//     a producer-side failure (truncated file, injected fault) is rethrown
//     to the consumer once the drained prefix is delivered; a consumer-side
//     failure (AbortedError from a sibling rank's death, any injected
//     kill) cancels the producer, joins the thread, and rethrows the
//     original exception unchanged — never a deadlock, never a leaked
//     thread, matching the mp runtime's failure-propagation contract.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "io/data_source.hpp"

namespace mafia {

/// I/O accounting for one or more chunked scans.  read/wait/compute split:
/// `read_seconds` is producer-side time spent filling buffers (for a
/// synchronous scan: everything outside the callback), `wait_seconds` is
/// consumer-side time blocked on a buffer that was not ready yet (for a
/// synchronous scan: equal to read_seconds — nothing is hidden), and
/// `compute_seconds` is time inside the consumer callback.  The overlap
/// fraction is the share of read time hidden behind compute.
struct IoScanStats {
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;  ///< value bytes delivered to the callback
  double read_seconds = 0.0;
  double wait_seconds = 0.0;
  double compute_seconds = 0.0;
  double scan_seconds = 0.0;  ///< whole-scan wall time

  void merge(const IoScanStats& other) {
    chunks += other.chunks;
    bytes += other.bytes;
    read_seconds += other.read_seconds;
    wait_seconds += other.wait_seconds;
    compute_seconds += other.compute_seconds;
    scan_seconds += other.scan_seconds;
  }

  /// Share of read time NOT paid for by the consumer: 0 for a synchronous
  /// scan (every read second is also a wait second), approaching 1 when
  /// prefetching hides the reads entirely.  Clamped to [0, 1] and NaN-safe:
  /// an empty partition yields a zero-length scan (all fields 0) and a
  /// timer anomaly can inject NaN, and the value feeds straight into the
  /// text report's percent cast (UB on NaN) and the JSON report — so every
  /// degenerate input must come out as 0, not NaN.  The negated
  /// comparisons are deliberate: `!(x > 0)` is true for 0, negatives, and
  /// NaN alike, where `x <= 0` would let NaN fall through.
  [[nodiscard]] double overlap_fraction() const {
    if (!(read_seconds > 0.0)) return 0.0;
    const double hidden = read_seconds - wait_seconds;
    if (!(hidden > 0.0)) return 0.0;
    return hidden >= read_seconds ? 1.0 : hidden / read_seconds;
  }

  /// Fixed-width serialization for the trace exchange (doubles bit-cast to
  /// preserve exact values across the gather).
  static constexpr std::size_t kSerializedWords = 6;
  [[nodiscard]] std::array<std::uint64_t, kSerializedWords> serialize() const {
    return {chunks,
            bytes,
            std::bit_cast<std::uint64_t>(read_seconds),
            std::bit_cast<std::uint64_t>(wait_seconds),
            std::bit_cast<std::uint64_t>(compute_seconds),
            std::bit_cast<std::uint64_t>(scan_seconds)};
  }
  [[nodiscard]] static IoScanStats deserialize(const std::uint64_t* words) {
    IoScanStats s;
    s.chunks = words[0];
    s.bytes = words[1];
    s.read_seconds = std::bit_cast<double>(words[2]);
    s.wait_seconds = std::bit_cast<double>(words[3]);
    s.compute_seconds = std::bit_cast<double>(words[4]);
    s.scan_seconds = std::bit_cast<double>(words[5]);
    return s;
  }

  [[nodiscard]] bool empty() const { return chunks == 0 && scan_seconds == 0.0; }
};

/// Prefetch-pipeline configuration (MafiaOptions::io carries one).
struct IoConfig {
  /// Run the driver's data passes through a PipelinedSource.
  bool prefetch = false;
  /// Ring depth: how many B-record chunk buffers may be in flight.  2 is
  /// classic double buffering; a deeper ring absorbs burstier reads.
  std::size_t buffers = 4;

  void validate() const {
    require(buffers >= 2, "IoConfig: prefetch ring needs at least 2 buffers");
  }
};

/// Decorator running `inner`'s scans through a background producer thread
/// and a bounded chunk-buffer ring.  See the header comment for the
/// ordering/concurrency/fault contract.
class PipelinedSource final : public DataSource {
 public:
  explicit PipelinedSource(const DataSource& inner, std::size_t buffers = 4);

  [[nodiscard]] RecordIndex num_records() const override {
    return inner_.num_records();
  }
  [[nodiscard]] std::size_t num_dims() const override {
    return inner_.num_dims();
  }

  void scan(RecordIndex begin, RecordIndex end, std::size_t chunk_records,
            const ChunkFn& fn) const override;

  /// scan() plus I/O accounting merged into `stats` (the driver feeds these
  /// into the per-phase trace).
  void scan_with_stats(RecordIndex begin, RecordIndex end,
                       std::size_t chunk_records, const ChunkFn& fn,
                       IoScanStats& stats) const;

 private:
  const DataSource& inner_;
  std::size_t buffers_;
};

/// Synchronous scan of any source with the same I/O accounting as
/// PipelinedSource::scan_with_stats: compute is time inside the callback,
/// read is everything else, and wait == read (nothing is hidden).  The
/// driver uses this for the prefetch-off path so the report's overlap
/// fraction is comparable across modes.
void timed_scan(const DataSource& source, RecordIndex begin, RecordIndex end,
                std::size_t chunk_records, const ChunkFn& fn,
                IoScanStats& stats);

/// Bandwidth-emulating decorator: delivers `inner`'s chunks unchanged but
/// stretches each chunk's delivery to bytes/bandwidth seconds (sleeping the
/// remainder), emulating the paper's local-disk bandwidth the same way
/// mp::NetworkSimulation emulates the SP2 switch.  bench_io_pipeline uses
/// it to build a deterministic I/O-bound workload: on a warm page cache a
/// record file reads at memcpy speed and there would be nothing to overlap.
class ThrottledSource final : public DataSource {
 public:
  ThrottledSource(const DataSource& inner, double bytes_per_second)
      : inner_(inner), bytes_per_second_(bytes_per_second) {
    require(bytes_per_second > 0.0,
            "ThrottledSource: bandwidth must be positive");
  }

  [[nodiscard]] RecordIndex num_records() const override {
    return inner_.num_records();
  }
  [[nodiscard]] std::size_t num_dims() const override {
    return inner_.num_dims();
  }

  void scan(RecordIndex begin, RecordIndex end, std::size_t chunk_records,
            const ChunkFn& fn) const override;

 private:
  const DataSource& inner_;
  double bytes_per_second_;
};

}  // namespace mafia
