// Binary record file format for out-of-core data sets.
//
// pMAFIA is "a disk-based parallel and scalable algorithm which can handle
// massive data sets" (Section 4): each processor reads N/p records from its
// local disk in chunks of B records.  This module defines the on-disk
// format and sequential writer; chunk_reader.hpp provides the B-record
// chunked scan.
//
// Layout (little-endian, packed):
//   [0..7]   magic "MAFIAREC"
//   [8..11]  uint32 version (currently 1)
//   [12..19] uint64 record count N
//   [20..23] uint32 dimension count d
//   [24..27] uint32 flags (bit 0: labels present after the value block)
//   [28.. ]  N*d float32 values, row-major
//   [... ]   N int32 labels (iff flag bit 0)
#pragma once

#include <cstdint>
#include <string>

#include "io/dataset.hpp"

namespace mafia {

struct RecordFileHeader {
  std::uint64_t num_records = 0;
  std::uint32_t num_dims = 0;
  bool has_labels = false;
};

inline constexpr char kRecordFileMagic[8] = {'M', 'A', 'F', 'I', 'A', 'R', 'E', 'C'};
inline constexpr std::uint32_t kRecordFileVersion = 1;
/// Byte offset of the first value row.
inline constexpr std::size_t kRecordFileHeaderBytes = 28;

/// Writes `data` to `path` in the record file format.  Labels are stored iff
/// `with_labels` (ground truth travels with synthetic sets for the quality
/// benches but is stripped for the timing benches).
void write_record_file(const std::string& path, const Dataset& data,
                       bool with_labels = true);

/// Reads and validates the header of a record file: magic, version,
/// dimension bounds, and that the actual file size matches the declared
/// N*d value block (plus label block when flagged) exactly — truncated or
/// padded files throw mafia::InputError here, before any reader scans
/// garbage.
[[nodiscard]] RecordFileHeader read_record_file_header(const std::string& path);

/// Rejects NaN/Inf values in `nrows` row-major records with an InputError
/// naming the record, dimension, and byte offset within `path`.  Shared by
/// the whole-file reader and FileSource's chunked scans.
void validate_finite_values(const Value* rows, std::size_t nrows,
                            std::size_t num_dims, RecordIndex first_record,
                            const std::string& path);

/// Reads an entire record file into memory (tests and small data sets).
[[nodiscard]] Dataset read_record_file(const std::string& path);

}  // namespace mafia
