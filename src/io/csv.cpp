#include "io/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mafia {

namespace {

std::vector<std::string> split_line(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, delimiter)) fields.push_back(field);
  // A trailing delimiter means a final empty field.
  if (!line.empty() && line.back() == delimiter) fields.emplace_back();
  return fields;
}

double parse_number(const std::string& field, std::size_t line_no,
                    const std::string& path) {
  const char* begin = field.data();
  const char* end = begin + field.size();
  while (begin < end && (*begin == ' ' || *begin == '\t')) ++begin;
  while (end > begin && (end[-1] == ' ' || end[-1] == '\t' || end[-1] == '\r')) {
    --end;
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  require(ec == std::errc{} && ptr == end,
          "read_csv: non-numeric field '" + field + "' at " + path + ":" +
              std::to_string(line_no));
  return value;
}

}  // namespace

Dataset read_csv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  require(in.good(), "read_csv: cannot open " + path);

  std::string line;
  std::size_t line_no = 0;
  if (options.header) {
    require(static_cast<bool>(std::getline(in, line)), "read_csv: empty file " + path);
    ++line_no;
  }

  Dataset data;
  std::size_t value_columns = 0;
  std::vector<Value> row;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line == "\r") continue;
    const auto fields = split_line(line, options.delimiter);
    const std::size_t values =
        fields.size() - (options.last_column_is_label ? 1 : 0);
    if (value_columns == 0) {
      require(values >= 1, "read_csv: no value columns in " + path);
      value_columns = values;
      data = Dataset(value_columns);
      row.resize(value_columns);
    }
    require(values == value_columns,
            "read_csv: ragged row at " + path + ":" + std::to_string(line_no));
    for (std::size_t j = 0; j < value_columns; ++j) {
      row[j] = static_cast<Value>(parse_number(fields[j], line_no, path));
    }
    std::int32_t label = kUnlabeledLabel;
    if (options.last_column_is_label) {
      label = static_cast<std::int32_t>(
          parse_number(fields.back(), line_no, path));
    }
    data.append(row, label);
  }
  require(data.num_dims() > 0, "read_csv: no data rows in " + path);
  return data;
}

void write_csv(const std::string& path, const Dataset& data,
               const CsvOptions& options,
               const std::vector<std::string>& column_names) {
  require(column_names.empty() || column_names.size() == data.num_dims(),
          "write_csv: column_names size mismatch");
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "write_csv: cannot open " + path);

  if (options.header) {
    for (std::size_t j = 0; j < data.num_dims(); ++j) {
      if (j) out << options.delimiter;
      if (column_names.empty()) {
        out << "d" << j;
      } else {
        out << column_names[j];
      }
    }
    if (options.last_column_is_label) out << options.delimiter << "label";
    out << "\n";
  }
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const auto row = data.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j) out << options.delimiter;
      out << row[j];
    }
    if (options.last_column_is_label) {
      out << options.delimiter << data.label(i);
    }
    out << "\n";
  }
  require(out.good(), "write_csv: write failed for " + path);
}

}  // namespace mafia
