// DataSource: uniform chunked-scan interface over in-memory and on-disk data.
//
// Algorithm 2 structures every data pass as "Read N/p chunks of B records
// from local disk and ... populate" — i.e. the algorithm only ever touches
// data through sequential B-record chunks of a rank's partition.  DataSource
// captures exactly that contract, so the same driver runs in-core
// (InMemorySource) and out-of-core (FileSource).  scan() is const and
// re-entrant: FileSource opens a fresh stream per call so every SPMD rank
// can scan its own partition concurrently (the paper's "local disk" —
// with one shared OS page cache standing in for p local disks, documented
// as a substitution in DESIGN.md).
#pragma once

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"
#include "io/record_file.hpp"

namespace mafia {

/// Callback receiving one chunk: pointer to `nrows` row-major records.
using ChunkFn = std::function<void(const Value* rows, std::size_t nrows)>;

class DataSource {
 public:
  virtual ~DataSource() = default;

  [[nodiscard]] virtual RecordIndex num_records() const = 0;
  [[nodiscard]] virtual std::size_t num_dims() const = 0;

  /// Invokes `fn` on consecutive chunks of at most `chunk_records` records
  /// covering records [begin, end).  Must be safe to call concurrently from
  /// multiple threads (each call owns its cursor/stream).
  virtual void scan(RecordIndex begin, RecordIndex end,
                    std::size_t chunk_records, const ChunkFn& fn) const = 0;

  /// Total number of B-record chunk reads a full scan of [begin,end) makes;
  /// the benches feed this into the Section 4.5 I/O term (N/(pB))·k·γ.
  [[nodiscard]] std::size_t chunk_count(RecordIndex begin, RecordIndex end,
                                        std::size_t chunk_records) const {
    const RecordIndex n = end - begin;
    return static_cast<std::size_t>((n + chunk_records - 1) / chunk_records);
  }
};

/// Zero-copy source over an in-memory Dataset.
class InMemorySource final : public DataSource {
 public:
  explicit InMemorySource(const Dataset& data) : data_(data) {}

  [[nodiscard]] RecordIndex num_records() const override { return data_.num_records(); }
  [[nodiscard]] std::size_t num_dims() const override { return data_.num_dims(); }

  void scan(RecordIndex begin, RecordIndex end, std::size_t chunk_records,
            const ChunkFn& fn) const override {
    require(chunk_records > 0, "scan: chunk_records must be positive");
    require(begin <= end && end <= data_.num_records(), "scan: bad record range");
    const std::size_t d = data_.num_dims();
    for (RecordIndex at = begin; at < end;) {
      const RecordIndex take =
          std::min<RecordIndex>(chunk_records, end - at);
      fn(data_.values().data() + static_cast<std::size_t>(at) * d,
         static_cast<std::size_t>(take));
      at += take;
    }
  }

 private:
  const Dataset& data_;
};

/// Out-of-core source over a record file; each scan() reads sequentially in
/// B-record chunks through its own stream and buffer.
class FileSource final : public DataSource {
 public:
  explicit FileSource(std::string path)
      : path_(std::move(path)), header_(read_record_file_header(path_)) {}

  [[nodiscard]] RecordIndex num_records() const override { return header_.num_records; }
  [[nodiscard]] std::size_t num_dims() const override { return header_.num_dims; }

  void scan(RecordIndex begin, RecordIndex end, std::size_t chunk_records,
            const ChunkFn& fn) const override {
    require(chunk_records > 0, "scan: chunk_records must be positive");
    require(begin <= end && end <= header_.num_records, "scan: bad record range");
    std::ifstream in(path_, std::ios::binary);
    require_input(in.good(), "FileSource::scan: cannot open " + path_);
    const std::size_t d = header_.num_dims;
    const std::size_t row_bytes = d * sizeof(Value);
    in.seekg(static_cast<std::streamoff>(kRecordFileHeaderBytes +
                                         static_cast<std::size_t>(begin) * row_bytes));
    std::vector<Value> buffer(chunk_records * d);
    for (RecordIndex at = begin; at < end;) {
      const auto take = static_cast<std::size_t>(
          std::min<RecordIndex>(chunk_records, end - at));
      in.read(reinterpret_cast<char*>(buffer.data()),
              static_cast<std::streamsize>(take * row_bytes));
      require_input(in.good(), "FileSource::scan: truncated read in " + path_);
      // Reject NaN/Inf before any kernel sees the chunk: a single bad
      // float would otherwise poison bin lookups silently.  One isfinite
      // pass per chunk is noise next to the disk read it follows.
      validate_finite_values(buffer.data(), take, d, at, path_);
      fn(buffer.data(), take);
      at += take;
    }
  }

 private:
  std::string path_;
  RecordFileHeader header_;
};

}  // namespace mafia
