#include "taskpart/taskpart.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mafia {

std::uint64_t triangular_work(std::size_t n, std::size_t begin, std::size_t end) {
  require(begin <= end && end <= n, "triangular_work: bad range");
  // Σ_{j=begin}^{end-1} (n − 1 − j) = (n−1)·len − Σ j.  Row j pairs with
  // exactly the n − 1 − j units after it — the inner loop of
  // join_dense_units, counted exactly.
  const std::uint64_t len = end - begin;
  if (len == 0) return 0;
  const std::uint64_t sum_j =
      (static_cast<std::uint64_t>(begin) + (end - 1)) * len / 2;
  return (static_cast<std::uint64_t>(n) - 1) * len - sum_j;
}

std::uint64_t triangular_total_work(std::size_t n) {
  if (n == 0) return 0;
  return static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

std::vector<std::size_t> triangular_partition(std::size_t n, std::size_t p) {
  require(p >= 1, "triangular_partition: need at least one rank");
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = n;
  if (n == 0 || p == 1) return bounds;

  // Cumulative work of a prefix [0, x): C(x) = (n−1)·x − x(x−1)/2.
  // Boundary n_i is the real root of C(x) = i·W/p with W = n(n−1)/2, i.e.
  // of
  //   x² − (2n−1)·x + 2·i·W/p = 0,
  // taking the smaller root (the one in [0, n]).  This is the iterative
  // quadratic solve of Eq. 1 done in closed form.
  const double total = static_cast<double>(triangular_total_work(n));
  const double b = 2.0 * static_cast<double>(n) - 1.0;
  for (std::size_t i = 1; i < p; ++i) {
    const double target = total * static_cast<double>(i) / static_cast<double>(p);
    const double disc = b * b - 8.0 * target;
    const double x = disc <= 0 ? static_cast<double>(n)
                               : (b - std::sqrt(disc)) / 2.0;
    auto cut = static_cast<std::size_t>(std::llround(x));
    cut = std::min(cut, n);
    cut = std::max(cut, bounds[i - 1]);  // keep boundaries monotone
    bounds[i] = cut;
  }
  // Monotonicity against the final boundary.
  for (std::size_t i = p; i-- > 1;) {
    bounds[i] = std::min(bounds[i], bounds[i + 1]);
  }
  return bounds;
}

std::vector<std::size_t> flag_balanced_partition(std::span<const std::uint8_t> flags,
                                                 std::size_t p) {
  require(p >= 1, "flag_balanced_partition: need at least one rank");
  const std::size_t n = flags.size();
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = n;
  if (p == 1 || n == 0) return bounds;

  std::size_t total_set = 0;
  for (const std::uint8_t f : flags) total_set += (f != 0);

  // Degenerate case: with no flags set every quota is 0, and the scan
  // below would hand one element to each of the first p−1 ranks and the
  // rest to the last — fall back to an even block split instead so the
  // (flag-independent) per-element scan work stays balanced.
  if (total_set == 0) {
    for (std::size_t i = 0; i <= p; ++i) bounds[i] = n * i / p;
    return bounds;
  }

  // Linear scan: advance the cut when the running count reaches the next
  // rank's quota (ceil-balanced so early ranks take the remainder).  One
  // index can satisfy several consecutive quotas at once — e.g. a single
  // dense run of flags when total_set < p, where the ceil quotas plateau —
  // so every satisfied rank's cut lands here, not one rank per element
  // (which used to smear the remaining cuts one element apart and skew the
  // tail ranks' scan ranges).
  std::size_t next_rank = 1;
  std::size_t seen = 0;
  for (std::size_t i = 0; i < n && next_rank < p; ++i) {
    seen += (flags[i] != 0);
    while (next_rank < p &&
           seen >= (total_set * next_rank + p - 1) / p) {  // ceil(total·r/p)
      bounds[next_rank] = i + 1;
      ++next_rank;
    }
  }
  for (; next_rank < p; ++next_rank) bounds[next_rank] = n;
  // Monotonicity (a rank whose quota was met immediately can leave its
  // bound behind the previous rank's — clamp forward).
  for (std::size_t i = 1; i <= p; ++i) {
    bounds[i] = std::max(bounds[i], bounds[i - 1]);
  }
  return bounds;
}

std::vector<std::size_t> weight_balanced_partition(
    std::span<const std::uint64_t> weights, std::size_t p) {
  require(p >= 1, "weight_balanced_partition: need at least one rank");
  const std::size_t n = weights.size();
  std::vector<std::size_t> bounds(p + 1, 0);
  bounds[p] = n;
  if (p == 1 || n == 0) return bounds;

  std::uint64_t total = 0;
  for (const std::uint64_t w : weights) total += w;

  // All-zero weights (every bucket a singleton): even block split, same
  // rationale as flag_balanced_partition's degenerate case.
  if (total == 0) {
    for (std::size_t i = 0; i <= p; ++i) bounds[i] = n * i / p;
    return bounds;
  }

  // Same ceil-quota scan as flag_balanced_partition, weights instead of
  // flags; one heavy bucket can satisfy several quotas at once, so all
  // satisfied ranks cut at the same index.
  std::size_t next_rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < n && next_rank < p; ++i) {
    seen += weights[i];
    while (next_rank < p &&
           seen >= (total * next_rank + p - 1) / p) {  // ceil(total·r/p)
      bounds[next_rank] = i + 1;
      ++next_rank;
    }
  }
  for (; next_rank < p; ++next_rank) bounds[next_rank] = n;
  for (std::size_t i = 1; i <= p; ++i) {
    bounds[i] = std::max(bounds[i], bounds[i - 1]);
  }
  return bounds;
}

}  // namespace mafia
