// Optimal task partitioning (Section 4.3, Equation 1).
//
// Building CDUs compares dense unit i with every dense unit j > i: unit i
// costs (Ndu − i) comparisons under the paper's accounting, so total work
// is Ndu(Ndu+1)/2 and a naive block split of the unit array gives the first
// processor far more work than the last.  The paper picks boundaries
// 0 ≤ n₁ ≤ ... ≤ n_{p−1} ≤ Ndu so each processor's range carries work
// Ndu(Ndu+1)/(2p), solving one quadratic per boundary (Eq. 1):
//
//   Ndu·(n_{i+1} − n_i) − Σ_{j=n_i}^{n_{i+1}−1} j = Ndu(Ndu+1)/(2p)
//
// This module provides the closed-form solver, exact work accounting (for
// the tests that prove the split optimal), the same partitioning applied to
// repeat elimination (Ndu → Ncdu, as the paper prescribes), and the
// "linear search" equal-count partitioning used when dense units are spread
// unevenly through the CDU array (Algorithm 6's build step).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mafia {

/// Comparisons charged to index range [begin, end) of a triangular pair
/// loop over `n` items: Σ_{j=begin}^{end-1} (n − j).
[[nodiscard]] std::uint64_t triangular_work(std::size_t n, std::size_t begin,
                                            std::size_t end);

/// Total triangular work n(n+1)/2.
[[nodiscard]] std::uint64_t triangular_total_work(std::size_t n);

/// Eq. 1 boundaries: returns p+1 ascending cut points with [r] .. [r+1]
/// being rank r's index range; boundaries[0] == 0, boundaries[p] == n.
/// Each range's triangular_work differs from the ideal n(n+1)/(2p) by at
/// most one row's work (integer rounding of the real-valued solution).
[[nodiscard]] std::vector<std::size_t> triangular_partition(std::size_t n,
                                                            std::size_t p);

/// Equal-count partitioning by linear search: cut [0, flags.size()) into p
/// ranges each containing (as nearly as possible) the same number of set
/// flags.  Used to balance dense-unit data-structure construction when
/// "the dense units would not be distributed evenly" (Section 4.4).
[[nodiscard]] std::vector<std::size_t> flag_balanced_partition(
    std::span<const std::uint8_t> flags, std::size_t p);

}  // namespace mafia
