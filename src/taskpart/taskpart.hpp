// Optimal task partitioning (Section 4.3, Equation 1).
//
// Building CDUs compares dense unit i with every dense unit j > i: row i of
// the triangular pair loop performs (Ndu − 1 − i) merge attempts, so total
// work is Ndu(Ndu−1)/2 pairs and a naive block split of the unit array
// gives the first processor far more work than the last.  The paper picks
// boundaries 0 ≤ n₁ ≤ ... ≤ n_{p−1} ≤ Ndu so each processor's range
// carries work Ndu(Ndu−1)/(2p), solving one quadratic per boundary (Eq. 1):
//
//   (Ndu − 1)·(n_{i+1} − n_i) − Σ_{j=n_i}^{n_{i+1}−1} j = Ndu(Ndu−1)/(2p)
//
// (An earlier revision charged row j a cost of n − j — one phantom
// comparison per row, n extra in total — which solved the boundary
// quadratic against the wrong cost function; the model here matches the
// loop in join_dense_units exactly, pair for pair.)
//
// This module provides the closed-form solver, exact work accounting (for
// the tests that prove the split optimal), the same partitioning applied to
// repeat elimination (Ndu → Ncdu, as the paper prescribes), the "linear
// search" equal-count partitioning used when dense units are spread
// unevenly through the CDU array (Algorithm 6's build step), and a
// weight-balanced range partitioner for the bucketed join kernel (ranges
// of signature buckets balanced by Σ b·(b−1)/2 pair work per bucket).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace mafia {

/// Comparisons charged to index range [begin, end) of a triangular pair
/// loop over `n` items: Σ_{j=begin}^{end-1} (n − 1 − j).
[[nodiscard]] std::uint64_t triangular_work(std::size_t n, std::size_t begin,
                                            std::size_t end);

/// Total triangular work n(n−1)/2 (the number of unordered pairs).
[[nodiscard]] std::uint64_t triangular_total_work(std::size_t n);

/// Eq. 1 boundaries: returns p+1 ascending cut points with [r] .. [r+1]
/// being rank r's index range; boundaries[0] == 0, boundaries[p] == n.
/// Each range's triangular_work differs from the ideal n(n−1)/(2p) by at
/// most one row's work (integer rounding of the real-valued solution).
[[nodiscard]] std::vector<std::size_t> triangular_partition(std::size_t n,
                                                            std::size_t p);

/// Equal-count partitioning by linear search: cut [0, flags.size()) into p
/// ranges each containing (as nearly as possible) the same number of set
/// flags.  Used to balance dense-unit data-structure construction when
/// "the dense units would not be distributed evenly" (Section 4.4).
[[nodiscard]] std::vector<std::size_t> flag_balanced_partition(
    std::span<const std::uint8_t> flags, std::size_t p);

/// Weighted range partitioning: cut [0, weights.size()) into p contiguous
/// ranges with (as nearly as possible) equal total weight.  The bucketed
/// join kernel balances signature-bucket ranges with per-bucket pair work
/// b·(b−1)/2 as the weight.  All-zero weights fall back to an even block
/// split (same degenerate-case policy as flag_balanced_partition).
[[nodiscard]] std::vector<std::size_t> weight_balanced_partition(
    std::span<const std::uint64_t> weights, std::size_t p);

}  // namespace mafia
