#include "enclus/enclus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <unordered_map>

#include "common/timer.hpp"
#include "grid/histogram.hpp"

namespace mafia {

double max_entropy(std::size_t xi, std::size_t k) {
  return static_cast<double>(k) * std::log(static_cast<double>(xi));
}

namespace {

/// Entropy (nats) from a cell-count table.
double entropy_of(const std::unordered_map<std::uint64_t, Count>& cells,
                  Count total) {
  double h = 0.0;
  const double n = static_cast<double>(total);
  for (const auto& [cell, count] : cells) {
    const double p = static_cast<double>(count) / n;
    h -= p * std::log(p);
  }
  return h;
}

/// Packs up to 8 bin indices into one uint64 cell key (ξ <= 256 so one
/// byte per dimension; ENCLUS mining depth is capped well below 8 by
/// options.max_dims in practice, and we enforce it).
std::uint64_t pack_cell(const std::vector<BinId>& bins) {
  std::uint64_t key = 0;
  for (const BinId b : bins) key = (key << 8) | b;
  return key;
}

}  // namespace

EnclusResult run_enclus(const DataSource& data, const EnclusOptions& options) {
  options.validate();
  require(options.max_dims <= 8, "run_enclus: max_dims > 8 unsupported (cell key)");
  require(data.num_records() > 0, "run_enclus: empty data set");
  Timer timer;

  const std::size_t d = data.num_dims();
  const auto n = static_cast<Count>(data.num_records());

  // Attribute domains.
  std::vector<Value> lo(d);
  std::vector<Value> hi(d);
  if (options.fixed_domain) {
    std::fill(lo.begin(), lo.end(), options.fixed_domain->first);
    std::fill(hi.begin(), hi.end(), options.fixed_domain->second);
  } else {
    MinMaxAccumulator mm(d);
    data.scan(0, data.num_records(), options.chunk_records,
              [&](const Value* rows, std::size_t nrows) {
                mm.accumulate(rows, nrows);
              });
    lo = mm.mins();
    hi = mm.maxs();
  }
  std::vector<double> inv_width(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double width = static_cast<double>(hi[j]) - lo[j];
    inv_width[j] = width > 0 ? static_cast<double>(options.xi) / width : 0.0;
  }
  const auto bin_of = [&](Value v, std::size_t j) {
    auto b = static_cast<std::ptrdiff_t>((static_cast<double>(v) - lo[j]) *
                                         inv_width[j]);
    if (b < 0) b = 0;
    if (b >= static_cast<std::ptrdiff_t>(options.xi)) {
      b = static_cast<std::ptrdiff_t>(options.xi) - 1;
    }
    return static_cast<BinId>(b);
  };

  EnclusResult result;

  // Evaluates the entropies of a batch of candidate subspaces in ONE pass
  // over the data (cell tables built side by side).
  const auto evaluate =
      [&](const std::vector<std::vector<DimId>>& candidates) {
        std::vector<std::unordered_map<std::uint64_t, Count>> cells(
            candidates.size());
        std::vector<BinId> key;
        data.scan(0, data.num_records(), options.chunk_records,
                  [&](const Value* rows, std::size_t nrows) {
                    for (std::size_t r = 0; r < nrows; ++r) {
                      const Value* row = rows + r * d;
                      for (std::size_t c = 0; c < candidates.size(); ++c) {
                        key.clear();
                        for (const DimId j : candidates[c]) {
                          key.push_back(bin_of(row[j], j));
                        }
                        ++cells[c][pack_cell(key)];
                      }
                    }
                  });
        ++result.passes;
        result.subspaces_evaluated += candidates.size();
        std::vector<double> entropies(candidates.size());
        for (std::size_t c = 0; c < candidates.size(); ++c) {
          entropies[c] = entropy_of(cells[c], n);
        }
        return entropies;
      };

  // ---- Level 1: every dimension.
  std::vector<std::vector<DimId>> candidates;
  candidates.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    candidates.push_back({static_cast<DimId>(j)});
  }
  std::vector<double> h1_all(d, 0.0);  // H({d}) for the interest formula
  std::map<std::vector<DimId>, double> significant_entropy;

  std::vector<std::vector<DimId>> level = {};
  {
    const auto entropies = evaluate(candidates);
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      h1_all[candidates[c][0]] = entropies[c];
      if (entropies[c] < options.omega) {
        result.significant.push_back(
            SubspaceInfo{candidates[c], entropies[c], 0.0});
        significant_entropy[candidates[c]] = entropies[c];
        level.push_back(candidates[c]);
      }
    }
  }

  // ---- Levels 2..max_dims: Apriori join + subset pruning + entropy test.
  for (std::size_t k = 2; k <= options.max_dims && level.size() >= 2; ++k) {
    // Join pairs sharing the first k-2 dims (level is lexicographically
    // sorted because it is built in order from sorted candidates).
    std::vector<std::vector<DimId>> next_candidates;
    for (std::size_t a = 0; a < level.size(); ++a) {
      for (std::size_t b = a + 1; b < level.size(); ++b) {
        if (!std::equal(level[a].begin(), level[a].end() - 1,
                        level[b].begin())) {
          continue;
        }
        std::vector<DimId> joined = level[a];
        joined.push_back(level[b].back());
        // Downward closure: every (k-1)-subset must be significant.
        bool closed = true;
        for (std::size_t skip = 0; skip + 2 < joined.size() && closed; ++skip) {
          std::vector<DimId> subset;
          for (std::size_t i = 0; i < joined.size(); ++i) {
            if (i != skip) subset.push_back(joined[i]);
          }
          closed = significant_entropy.count(subset) > 0;
        }
        if (closed) next_candidates.push_back(std::move(joined));
      }
    }
    if (next_candidates.empty()) break;

    const auto entropies = evaluate(next_candidates);
    level.clear();
    for (std::size_t c = 0; c < next_candidates.size(); ++c) {
      if (entropies[c] >= options.omega) continue;
      double h1_sum = 0.0;
      for (const DimId j : next_candidates[c]) h1_sum += h1_all[j];
      const double interest = h1_sum - entropies[c];
      result.significant.push_back(
          SubspaceInfo{next_candidates[c], entropies[c], interest});
      significant_entropy[next_candidates[c]] = entropies[c];
      level.push_back(next_candidates[c]);
    }
  }

  // ---- Interesting output: maximal significant subspaces (no significant
  // strict superset) with interest >= epsilon.
  std::set<std::vector<DimId>> all_significant;
  for (const SubspaceInfo& s : result.significant) all_significant.insert(s.dims);
  for (const SubspaceInfo& s : result.significant) {
    if (s.dims.size() < 2 || s.interest < options.epsilon) continue;
    bool maximal = true;
    for (const auto& other : all_significant) {
      if (other.size() <= s.dims.size()) continue;
      if (std::includes(other.begin(), other.end(), s.dims.begin(),
                        s.dims.end())) {
        maximal = false;
        break;
      }
    }
    if (maximal) result.interesting.push_back(s);
  }

  result.seconds = timer.seconds();
  return result;
}

}  // namespace mafia
