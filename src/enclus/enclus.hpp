// ENCLUS (Cheng, Fu, Zhang — KDD 1999): entropy-based significant-subspace
// mining, the third related method the paper positions against (Section 2):
// "ENCLUS, an entropy based subspace clustering algorithm requires a
// prohibitive amount of time to just discover interesting subspaces in
// which clusters are embedded.  It also requires input of entropy
// thresholds which is not intuitive for the user."
//
// ENCLUS does not produce clusters itself — it mines the subspaces where
// clustering is worthwhile:
//   * discretize each dimension into ξ equal bins; for a subspace S the
//     entropy H(S) = −Σ_cell p(cell)·ln p(cell) over the ξ^|S| grid;
//   * S has "good clustering" when H(S) < ω (low entropy = skewed density);
//   * S is *interesting* when its dimensions are mutually dependent:
//     interest(S) = Σ_{d∈S} H({d}) − H(S) ≥ ε;
//   * entropy is monotone non-decreasing under adding dimensions, so
//     significance (H < ω) is downward-closed and Apriori-style bottom-up
//     mining applies: level-k candidates join significant (k−1)-subspaces
//     sharing a (k−2)-prefix, pruned unless every (k−1)-subset is
//     significant.
//
// bench_enclus_comparison measures both criticisms: the cost of mining
// subspaces alone versus pMAFIA's complete clustering, and the sensitivity
// of the output to the ω/ε thresholds.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "io/data_source.hpp"

namespace mafia {

struct EnclusOptions {
  /// ξ: bins per dimension for the entropy grid.
  std::size_t xi = 10;
  /// ω: entropy threshold (nats).  A subspace is significant iff
  /// H(S) < omega.  NOT intuitive — which is the paper's point; see
  /// max_entropy() for calibration help.
  double omega = 6.0;
  /// ε: minimum interest (total correlation) for a significant subspace to
  /// be reported as interesting.
  double epsilon = 0.05;
  /// Mining stops at this subspace dimensionality.
  std::size_t max_dims = 6;
  /// B: records per chunk of the data scans.
  std::size_t chunk_records = 1 << 16;
  /// Known attribute domain (skips the min/max pass when set).
  std::optional<std::pair<Value, Value>> fixed_domain;

  void validate() const {
    require(xi >= 2 && xi <= kMaxBinsPerDim, "EnclusOptions: bad xi");
    require(omega > 0.0, "EnclusOptions: omega must be positive");
    require(epsilon >= 0.0, "EnclusOptions: epsilon must be non-negative");
    require(max_dims >= 1, "EnclusOptions: max_dims must be positive");
  }
};

/// Entropy of the uniform distribution over a k-dim ξ-bin grid — the
/// maximum possible H(S), useful for picking ω.
[[nodiscard]] double max_entropy(std::size_t xi, std::size_t k);

struct SubspaceInfo {
  std::vector<DimId> dims;
  double entropy = 0.0;
  double interest = 0.0;
};

struct EnclusResult {
  /// All significant subspaces (H < ω), every mined level.
  std::vector<SubspaceInfo> significant;
  /// Maximal significant subspaces with interest >= ε — ENCLUS's output.
  std::vector<SubspaceInfo> interesting;
  /// Candidate subspaces whose entropy was evaluated (the cost driver).
  std::size_t subspaces_evaluated = 0;
  /// Data passes made (one per mined level).
  std::size_t passes = 0;
  double seconds = 0.0;
};

/// Mines significant/interesting subspaces bottom-up.
[[nodiscard]] EnclusResult run_enclus(const DataSource& data,
                                      const EnclusOptions& options);

}  // namespace mafia
