// Canned generator configurations: one per paper experiment.
//
// Each function returns the GeneratorConfig whose planted structure matches
// the data set described in the paper's evaluation (Section 5), with the
// record count as a parameter so the benches can scale to the host while
// keeping the *structure* (dimensionality, cluster subspaces, extents)
// identical.  EXPERIMENTS.md records the scale factor used per bench.
//
// The three "real" data sets (DAX, Ionosphere, EachMovie) are proprietary /
// unavailable; the *_like configs plant dense low-dimensional structure of
// the same shape (see DESIGN.md's substitution table).
#pragma once

#include <cstdint>

#include "datagen/generator.hpp"

namespace mafia::workloads {

/// Figure 3: 30-d data, 5 clusters each in a different 6-d subspace
/// (paper: 8.3M records).
[[nodiscard]] GeneratorConfig fig3_parallel(RecordIndex records,
                                            std::uint64_t seed = 31);

/// Table 1 / Figure 4: 15-d data, one cluster in a 5-d subspace
/// (paper: 300,000 records).
[[nodiscard]] GeneratorConfig tab1_vs_clique(RecordIndex records,
                                             std::uint64_t seed = 41);

/// Table 2 / Section 5.5: 10-d data, a single 7-d cluster
/// (paper: 5.4M records).
[[nodiscard]] GeneratorConfig tab2_cdu_counts(RecordIndex records,
                                              std::uint64_t seed = 52);

/// Figure 5: 20-d data, 5 clusters in 5 different 5-d subspaces
/// (paper: 1.45M - 11.8M records).
[[nodiscard]] GeneratorConfig fig5_dbsize(RecordIndex records,
                                          std::uint64_t seed = 55);

/// Figure 6: `data_dims`-d data, 3 clusters each in a 5-d subspace with 9
/// distinct cluster dimensions total (paper: 250,000 records, 10-100 dims).
[[nodiscard]] GeneratorConfig fig6_datadim(RecordIndex records,
                                           std::size_t data_dims,
                                           std::uint64_t seed = 56);

/// Figure 7: 50-d data, one cluster of dimensionality `cluster_dims`
/// (paper: 650,000 records, cluster dim 3-10).
[[nodiscard]] GeneratorConfig fig7_clusterdim(RecordIndex records,
                                              std::size_t cluster_dims,
                                              std::uint64_t seed = 57);

/// Table 3: 10-d data, 2 clusters in 4-d subspaces {1,7,8,9} and {2,3,4,5}
/// (paper: 400,000 records).
[[nodiscard]] GeneratorConfig tab3_quality(RecordIndex records,
                                           std::uint64_t seed = 53);

/// DAX-like financial panel: 22 dims, 2757 records, layered dense regions
/// producing clusters at subspace dims 3-6 with counts decreasing in
/// dimensionality (Table 4's shape).
[[nodiscard]] GeneratorConfig dax_like(std::uint64_t seed = 54);

/// Ionosphere-like radar returns: 34 dims, 351 records; one dominant 3-d
/// cluster plus weaker 3-d/4-d structure so alpha=2 finds many clusters and
/// alpha=3 collapses to one (Section 5.9(2)).
[[nodiscard]] GeneratorConfig ionosphere_like(std::uint64_t seed = 59);

/// EachMovie-like ratings: 4 dims (user-id, movie-id, score, weight) with 7
/// disjoint user-community x movie-group blocks dense in the 2-d
/// {user, movie} subspace (paper: 2.8M records, 7 clusters of dim 2).
[[nodiscard]] GeneratorConfig eachmovie_like(RecordIndex records,
                                             std::uint64_t seed = 60);

/// An L-shaped (non-hyper-rectangular) cluster in 2 of 6 dims — exercises
/// the "arbitrary shapes" generator path and multi-rectangle DNF output.
[[nodiscard]] GeneratorConfig l_shape_demo(RecordIndex records,
                                           std::uint64_t seed = 61);

/// High-dimensional stress (FP-tree-paper regime): 200 dims, 3 clusters in
/// 10-, 12-, and 15-dim subspaces.  Exercises the deep bottom-up levels at
/// d far beyond the paper's 100-dim ceiling.
[[nodiscard]] GeneratorConfig highdim(RecordIndex records,
                                      std::uint64_t seed = 71);

/// Two clusters sharing subspace dims {2,4,6} with overlapping extents
/// ([30,50] vs [40,60] on the shared dims) — records in [40,50]^3 there are
/// consistent with either cluster, so assignment must disambiguate via the
/// distinguishing dims (8 vs 10).
[[nodiscard]] GeneratorConfig overlap(RecordIndex records,
                                      std::uint64_t seed = 72);

/// Streaming-drift pair (the `pmafia append` workload): drift_base plants
/// a stationary anchor cluster in dims {1,3,5} plus a drifting cluster in
/// dims {2,6}; drift_batch keeps the anchor put and shifts + grows the
/// drifting box.  `pmafia generate --workload drift` emits both files so
/// the append benches and golden tests replay base -> append -> compare.
[[nodiscard]] GeneratorConfig drift_base(RecordIndex records,
                                         std::uint64_t seed = 81);
[[nodiscard]] GeneratorConfig drift_batch(RecordIndex records,
                                          std::uint64_t seed = 83);

/// The drift pair's combined footprint as one config (scoreboard view):
/// the anchor plus the drifting cluster's full swept region (union of the
/// base and drifted boxes).
[[nodiscard]] GeneratorConfig drift_combined(RecordIndex records,
                                             std::uint64_t seed = 81);

/// Categorical + mixed-scale dims: 12 dims where 6-7 are categorical
/// (5 levels each), 8-11 span [0,1000] (10x the others), and the two
/// planted clusters each combine a continuous, a categorical, and a
/// large-scale dimension.  Exercises the per-dim DimSpec generator path.
[[nodiscard]] GeneratorConfig mixed(RecordIndex records,
                                    std::uint64_t seed = 73);

}  // namespace mafia::workloads
