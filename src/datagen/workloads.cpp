#include "datagen/workloads.hpp"

namespace mafia::workloads {

namespace {

/// Shorthand: single-box cluster with the same extent [lo, hi] in every
/// subspace dimension.
ClusterSpec cube(std::vector<DimId> dims, Value lo, Value hi, double weight = 1.0) {
  const std::size_t k = dims.size();
  return ClusterSpec::box(std::move(dims), std::vector<Value>(k, lo),
                          std::vector<Value>(k, hi), weight);
}

}  // namespace

GeneratorConfig fig3_parallel(RecordIndex records, std::uint64_t seed) {
  // 30 dims; 5 clusters, each in its own disjoint 6-d subspace, each taking
  // a 1/5 share.  Extent 8% of the domain: a cluster bin needs
  // alpha*N*0.08 = 0.12N records and holds ~0.20N + background, so all five
  // survive at alpha = 1.5 while no spurious unit can.
  GeneratorConfig cfg;
  cfg.num_dims = 30;
  cfg.num_records = records;
  cfg.seed = seed;
  for (int c = 0; c < 5; ++c) {
    std::vector<DimId> dims(6);
    for (int i = 0; i < 6; ++i) dims[static_cast<std::size_t>(i)] =
        static_cast<DimId>(c * 6 + i);
    const Value lo = static_cast<Value>(10 + 12 * c);  // staggered regions
    cfg.clusters.push_back(cube(std::move(dims), lo, lo + 8, 1.0));
  }
  return cfg;
}

GeneratorConfig tab1_vs_clique(RecordIndex records, std::uint64_t seed) {
  // 15 dims, one 5-d cluster spanning [30, 60] — 30% of the domain, fine
  // for a single cluster holding ~91% of the records (threshold 0.45N).
  // The extent aligns with CLIQUE's 10-bin grid on purpose: Table 1 is a
  // timing comparison, and aligned boundaries avoid penalizing CLIQUE's
  // quality where the paper doesn't.
  GeneratorConfig cfg;
  cfg.num_dims = 15;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({2, 5, 8, 11, 14}, 30, 60));
  return cfg;
}

GeneratorConfig tab2_cdu_counts(RecordIndex records, std::uint64_t seed) {
  // 10 dims, a single 7-d cluster.  Each cluster dimension must produce
  // exactly one dense adaptive bin so pMAFIA's CDU trace is the binomial
  // C(7,k): 21, 35, 35, 21, 7, 1 — Table 2's left column.
  GeneratorConfig cfg;
  cfg.num_dims = 10;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({0, 2, 3, 5, 6, 8, 9}, 40, 48));
  return cfg;
}

GeneratorConfig fig5_dbsize(RecordIndex records, std::uint64_t seed) {
  // 20 dims, 5 clusters in 5 different 5-d subspaces (disjoint here),
  // extent 8% each, equal shares.
  GeneratorConfig cfg;
  cfg.num_dims = 20;
  cfg.num_records = records;
  cfg.seed = seed;
  for (int c = 0; c < 4; ++c) {
    std::vector<DimId> dims(5);
    for (int i = 0; i < 5; ++i) dims[static_cast<std::size_t>(i)] =
        static_cast<DimId>(c * 5 + i);
    const Value lo = static_cast<Value>(15 + 14 * c);
    cfg.clusters.push_back(cube(std::move(dims), lo, lo + 8, 1.0));
  }
  // Fifth cluster strides across the four blocks (distinct region).
  cfg.clusters.push_back(cube({2, 7, 12, 17, 19}, 80, 88, 1.0));
  return cfg;
}

GeneratorConfig fig6_datadim(RecordIndex records, std::size_t data_dims,
                             std::uint64_t seed) {
  // 3 clusters, each 5-d, 9 distinct cluster dimensions in total
  // (subspaces {0..4}, {2..6}, {4..8} share dims pairwise).  All the added
  // dimensions beyond 9 are pure background — the point of Figure 6 is
  // that pMAFIA's cost depends on cluster dimensions, not data dimensions.
  require(data_dims >= 9, "fig6_datadim: need at least 9 dims");
  GeneratorConfig cfg;
  cfg.num_dims = data_dims;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({0, 1, 2, 3, 4}, 10, 18, 1.0));
  cfg.clusters.push_back(cube({2, 3, 4, 5, 6}, 40, 48, 1.0));
  cfg.clusters.push_back(cube({4, 5, 6, 7, 8}, 70, 78, 1.0));
  return cfg;
}

GeneratorConfig fig7_clusterdim(RecordIndex records, std::size_t cluster_dims,
                                std::uint64_t seed) {
  // 50 dims, one cluster of the requested dimensionality (spread over the
  // attribute space), extent 30% — the single cluster holds ~91% of the
  // records so wide extents are safely dense, keeping the data set
  // identical in everything but cluster dimensionality.
  require(cluster_dims >= 1 && cluster_dims <= 50, "fig7: bad cluster dims");
  GeneratorConfig cfg;
  cfg.num_dims = 50;
  cfg.num_records = records;
  cfg.seed = seed;
  std::vector<DimId> dims(cluster_dims);
  for (std::size_t i = 0; i < cluster_dims; ++i) {
    dims[i] = static_cast<DimId>(i * (50 / cluster_dims));
  }
  cfg.clusters.push_back(cube(std::move(dims), 35, 65));
  return cfg;
}

GeneratorConfig tab3_quality(RecordIndex records, std::uint64_t seed) {
  // 10 dims, 2 clusters each in a different 4-d subspace — the paper's
  // Table 3 names them {1,7,8,9} and {2,3,4,5}.  Extents [23,47] and
  // [61,83] deliberately misalign with a 10-bin uniform grid so CLIQUE's
  // edge cells fall below its threshold ("large parts of the clusters were
  // thrown away as outliers") while adaptive boundaries land within one
  // fine window of the truth.
  GeneratorConfig cfg;
  cfg.num_dims = 10;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({1, 7, 8, 9}, 23, 47, 1.0));
  cfg.clusters.push_back(cube({2, 3, 4, 5}, 61, 83, 1.0));
  return cfg;
}

GeneratorConfig dax_like(std::uint64_t seed) {
  // 22 dims, 2757 records (matching the DAX panel's shape).  Layered dense
  // regions at subspace dimensionalities 3-6, more clusters at lower
  // dimensionality (Table 4's distribution shape).  Shares and extents are
  // sized so every planted bin clears alpha = 2 (the paper's choice for
  // this data set): share_per_cluster / extent_fraction > 2.
  GeneratorConfig cfg;
  cfg.num_dims = 22;
  cfg.num_records = 2757;
  cfg.seed = seed;
  // 8 clusters, equal weight => share 1/8 = 12.5% of cluster records;
  // extent 4 units = 4% of the domain => dominance ~ 2.8 > alpha = 2.
  // Extents start at even offsets so they align with the 2-unit windows
  // the example/bench configures (fine_bins = 100, window_cells = 2) —
  // misaligned extents smear across a window and double the effective bin
  // width (and threshold).
  const Value extent = 4;
  std::size_t cursor = 0;
  const auto add = [&](std::size_t k, Value lo) {
    std::vector<DimId> dims(k);
    for (std::size_t i = 0; i < k; ++i) {
      dims[i] = static_cast<DimId>((cursor + i * 5) % 22);
    }
    std::sort(dims.begin(), dims.end());
    dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
    while (dims.size() < k) {  // collision fallback: append next free dim
      DimId d = 0;
      while (std::find(dims.begin(), dims.end(), d) != dims.end()) ++d;
      dims.push_back(d);
      std::sort(dims.begin(), dims.end());
    }
    cfg.clusters.push_back(cube(std::move(dims), lo, lo + extent, 1.0));
    cursor += 3;
  };
  // 3 three-dim, 3 four-dim, 1 five-dim, 1 six-dim clusters at staggered
  // even locations (distinct value regions avoid cross-cluster joins).
  Value lo = 6;
  for (int i = 0; i < 3; ++i, lo += 8) add(3, lo);
  for (int i = 0; i < 3; ++i, lo += 8) add(4, lo);
  add(5, lo);
  lo += 8;
  add(6, lo);
  return cfg;
}

GeneratorConfig ionosphere_like(std::uint64_t seed) {
  // 34 dims, 351 records.  One strong 3-d cluster (share 30%, extent 5% =>
  // dominance 6) plus seven moderate clusters (share 10%, extent 4% =>
  // dominance 2.5): alpha = 2 admits all eight, alpha = 3 keeps only the
  // strong one — Section 5.9(2)'s collapse.
  // Extents are 4 units wide and start at multiples of 4 so they align with
  // the coarse rectangular wave used for this tiny data set (fine_bins = 50
  // => 2-unit cells, window_cells = 2 => 4-unit windows).
  GeneratorConfig cfg;
  cfg.num_dims = 34;
  cfg.num_records = 351;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({3, 11, 21}, 48, 52, 3.0));  // the survivor
  const DimId bases[7] = {0, 5, 9, 14, 18, 24, 28};
  for (int c = 0; c < 7; ++c) {
    const DimId b = bases[c];
    std::vector<DimId> dims = c % 2 == 0
        ? std::vector<DimId>{b, static_cast<DimId>(b + 2),
                             static_cast<DimId>(b + 4)}
        : std::vector<DimId>{b, static_cast<DimId>(b + 1),
                             static_cast<DimId>(b + 3),
                             static_cast<DimId>(b + 5)};
    const Value lo = static_cast<Value>(12 + 8 * c);
    cfg.clusters.push_back(cube(std::move(dims), lo, lo + 4, 1.0));
  }
  return cfg;
}

GeneratorConfig eachmovie_like(RecordIndex records, std::uint64_t seed) {
  // 4 dims (user-id, movie-id, score, weight — all normalized to [0,100]).
  // Seven disjoint user-community x movie-group blocks, dense in the 2-d
  // {0,1} subspace; score and weight stay uniform, so pMAFIA should report
  // exactly 7 clusters, all of dimensionality 2 (Section 5.9(3)).
  GeneratorConfig cfg;
  cfg.num_dims = 4;
  cfg.num_records = records;
  cfg.seed = seed;
  for (int c = 0; c < 7; ++c) {
    const Value ulo = static_cast<Value>(2 + 14 * c);
    const Value mlo = static_cast<Value>(86 - 12 * c);
    cfg.clusters.push_back(ClusterSpec::box({0, 1}, {ulo, mlo},
                                            {ulo + 6, mlo + 6}, 1.0));
  }
  return cfg;
}

GeneratorConfig l_shape_demo(RecordIndex records, std::uint64_t seed) {
  // An L-shaped cluster in dims {1, 4} of a 6-d space: the union of a
  // vertical and a horizontal bar sharing a corner.  Exercises the
  // arbitrary-shape generator path and multi-rectangle DNF reporting.
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = records;
  cfg.seed = seed;
  // Arm geometry matters: a bin of width a needs share >= alpha*a/100 to be
  // dense, so arms are kept short (15 units past the corner) and the boxes
  // overlap at the corner so the corner cell collects both boxes' mass.
  ClusterSpec spec;
  spec.dims = {1, 4};
  spec.boxes.push_back(ClusterBox{{20, 20}, {30, 45}});  // vertical bar
  spec.boxes.push_back(ClusterBox{{20, 20}, {45, 30}});  // horizontal bar
  spec.weight = 1.0;
  cfg.clusters.push_back(std::move(spec));
  return cfg;
}

GeneratorConfig highdim(RecordIndex records, std::uint64_t seed) {
  // 200 dims, 3 clusters in 10-, 12- and 15-dim subspaces (strided so the
  // cluster dims spread across the attribute space), equal shares.  Extent
  // 8 units = 8% with share 1/3 => dominance ~4 > alpha = 1.5.  Extents
  // start at even offsets to align with 2-unit adaptive windows
  // (fine_bins = 100, window_cells = 2).  The 8^10-cell coverage lattice
  // exceeds max_cover_cells, so boxes fill uniformly — the planted boxes
  // are still exact bounds, just without the one-point-per-cube guarantee.
  GeneratorConfig cfg;
  cfg.num_dims = 200;
  cfg.num_records = records;
  cfg.seed = seed;
  const auto strided = [](std::size_t k, std::size_t start, std::size_t stride) {
    std::vector<DimId> dims(k);
    for (std::size_t i = 0; i < k; ++i) {
      dims[i] = static_cast<DimId>(start + i * stride);
    }
    return dims;
  };
  cfg.clusters.push_back(cube(strided(10, 0, 20), 16, 24, 1.0));
  cfg.clusters.push_back(cube(strided(12, 1, 16), 40, 48, 1.0));
  cfg.clusters.push_back(cube(strided(15, 2, 13), 70, 78, 1.0));
  return cfg;
}

GeneratorConfig overlap(RecordIndex records, std::uint64_t seed) {
  // 16 dims.  Cluster A lives in {2,4,6,8} at [30,50], cluster B in
  // {2,4,6,10} at [40,60]: they share three subspace dims and overlap on
  // [40,50] there, so a record's shared-dim values cannot identify its
  // cluster — only the distinguishing dim (8 vs 10) can.  Extent 20% with
  // share 1/2 => dominance 2.5; bounds are even for window alignment and
  // land on 10-unit CLIQUE bin edges (this is an assignment-ambiguity
  // workload, not a boundary-quality one).
  GeneratorConfig cfg;
  cfg.num_dims = 16;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(cube({2, 4, 6, 8}, 30, 50, 1.0));
  cfg.clusters.push_back(cube({2, 4, 6, 10}, 40, 60, 1.0));
  return cfg;
}

GeneratorConfig drift_base(RecordIndex records, std::uint64_t seed) {
  // 8 dims: a stationary anchor in dims {1,3,5} ([20,40], 20% extent,
  // share 2/3 => dominance ~3.3) and a drifting cluster in dims {2,6}
  // ([60,75], 15% extent, share 1/3 => dominance ~2.2).  Extents start on
  // even offsets to align with 2-unit adaptive windows.
  GeneratorConfig cfg;
  cfg.num_dims = 8;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(
      ClusterSpec::box({1, 3, 5}, {20, 20, 20}, {40, 40, 40}, 2.0));
  cfg.clusters.push_back(ClusterSpec::box({2, 6}, {60, 60}, {75, 75}, 1.0));
  return cfg;
}

GeneratorConfig drift_batch(RecordIndex records, std::uint64_t seed) {
  // The appended slice of the stream: the anchor stays put, the drifting
  // box has moved and grown ([60,75] -> [66,86]) and gained mass.
  GeneratorConfig cfg;
  cfg.num_dims = 8;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(
      ClusterSpec::box({1, 3, 5}, {20, 20, 20}, {40, 40, 40}, 2.0));
  cfg.clusters.push_back(ClusterSpec::box({2, 6}, {66, 66}, {86, 86}, 1.5));
  return cfg;
}

GeneratorConfig drift_combined(RecordIndex records, std::uint64_t seed) {
  // One-config stand-in for base + batch: the drifting cluster's swept
  // footprint is the union of its base and drifted boxes.
  GeneratorConfig cfg;
  cfg.num_dims = 8;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.clusters.push_back(
      ClusterSpec::box({1, 3, 5}, {20, 20, 20}, {40, 40, 40}, 2.0));
  ClusterSpec drift;
  drift.dims = {2, 6};
  drift.boxes.push_back(ClusterBox{{60, 60}, {75, 75}});
  drift.boxes.push_back(ClusterBox{{66, 66}, {86, 86}});
  drift.weight = 1.25;
  cfg.clusters.push_back(std::move(drift));
  return cfg;
}

GeneratorConfig mixed(RecordIndex records, std::uint64_t seed) {
  // 12 dims of three kinds: 0-5 continuous [0,100], 6-7 categorical with 5
  // levels each, 8-11 continuous [0,1000] (a 10x scale mismatch that sinks
  // full-space distance metrics but is invisible to per-dim grids).  Two
  // clusters, each combining one dim of every kind; the categorical extent
  // admits exactly one level (50 for A, 70 for B).  Continuous extents are
  // 16% of their own domain with share 1/2 => dominance ~3; bounds align
  // with 2-unit (and 20-unit, for the [0,1000] dims) adaptive windows.
  GeneratorConfig cfg;
  cfg.num_dims = 12;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.dim_specs.resize(12);
  for (std::size_t j = 0; j < 6; ++j) cfg.dim_specs[j] = DimSpec{0, 100, {}};
  for (std::size_t j = 6; j < 8; ++j) {
    cfg.dim_specs[j] = DimSpec{0, 100, {10, 30, 50, 70, 90}};
  }
  for (std::size_t j = 8; j < 12; ++j) cfg.dim_specs[j] = DimSpec{0, 1000, {}};
  cfg.clusters.push_back(
      ClusterSpec::box({1, 6, 9}, {20, 44, 200}, {36, 56, 360}, 1.0));
  cfg.clusters.push_back(
      ClusterSpec::box({3, 7, 10}, {60, 64, 600}, {76, 76, 760}, 1.0));
  return cfg;
}

}  // namespace mafia::workloads
