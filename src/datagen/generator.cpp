#include "datagen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/icg.hpp"
#include "rng/lcg.hpp"

namespace mafia {

void GeneratorConfig::validate() const {
  require(num_dims >= 1 && num_dims <= kMaxDims, "GeneratorConfig: bad num_dims");
  require(num_records >= 1, "GeneratorConfig: need at least one record");
  require(domain_hi > domain_lo, "GeneratorConfig: empty domain");
  require(noise_fraction >= 0.0, "GeneratorConfig: negative noise fraction");
  if (dim_specs.empty()) {
    for (const ClusterSpec& c : clusters) c.validate(num_dims, domain_lo, domain_hi);
    return;
  }
  require(dim_specs.size() == num_dims,
          "GeneratorConfig: dim_specs must have one entry per dimension");
  Value lo_all = dim_specs[0].lo;
  Value hi_all = dim_specs[0].hi;
  for (const DimSpec& s : dim_specs) {
    require(s.hi > s.lo, "GeneratorConfig: empty per-dim domain");
    for (std::size_t l = 0; l < s.levels.size(); ++l) {
      require(s.levels[l] >= s.lo && s.levels[l] <= s.hi,
              "GeneratorConfig: categorical level outside its domain");
      if (l > 0) {
        require(s.levels[l] > s.levels[l - 1],
                "GeneratorConfig: categorical levels must be ascending");
      }
    }
    lo_all = std::min(lo_all, s.lo);
    hi_all = std::max(hi_all, s.hi);
  }
  for (const ClusterSpec& c : clusters) {
    // Structural checks against the union of all per-dim ranges, then the
    // per-dimension containment the union cannot express.
    c.validate(num_dims, lo_all, hi_all);
    for (const ClusterBox& b : c.boxes) {
      for (std::size_t i = 0; i < c.dims.size(); ++i) {
        const DimSpec& s = dim_specs[c.dims[i]];
        require(b.lo[i] >= s.lo && b.hi[i] <= s.hi,
                "GeneratorConfig: box outside its dimension's domain");
        if (!s.levels.empty()) {
          bool any = false;
          for (const Value level : s.levels) {
            any = any || (level >= b.lo[i] && level <= b.hi[i]);
          }
          require(any,
                  "GeneratorConfig: box spans no level of its categorical "
                  "dimension");
        }
      }
    }
  }
}

namespace {

/// Engine-polymorphic generation core.  Templated (not virtual) so the hot
/// per-value loop inlines the generator step.
template <typename Engine>
class GeneratorImpl {
 public:
  explicit GeneratorImpl(const GeneratorConfig& config)
      : config_(config), rng_(config.seed) {}

  Dataset run() {
    const auto n_cluster = static_cast<std::size_t>(config_.num_records);
    const auto n_noise = static_cast<std::size_t>(
        std::llround(config_.noise_fraction * static_cast<double>(n_cluster)));

    Dataset data(config_.num_dims);
    data.reserve(n_cluster + n_noise);

    // --- Cluster records, split across clusters by weight.
    if (!config_.clusters.empty()) {
      double weight_sum = 0.0;
      for (const ClusterSpec& c : config_.clusters) weight_sum += c.weight;
      std::size_t emitted = 0;
      for (std::size_t ci = 0; ci < config_.clusters.size(); ++ci) {
        const bool last = ci + 1 == config_.clusters.size();
        const std::size_t quota =
            last ? n_cluster - emitted
                 : static_cast<std::size_t>(std::llround(
                       static_cast<double>(n_cluster) *
                       config_.clusters[ci].weight / weight_sum));
        emit_cluster(data, config_.clusters[ci], static_cast<std::int32_t>(ci),
                     std::min(quota, n_cluster - emitted));
        emitted += std::min(quota, n_cluster - emitted);
      }
      // Rounding shortfall: top up from the first cluster.
      while (emitted < n_cluster) {
        emit_cluster(data, config_.clusters[0], 0, 1);
        ++emitted;
      }
    } else {
      // No clusters: the whole "cluster" share is uniform background.
      for (std::size_t i = 0; i < n_cluster; ++i) emit_noise(data);
    }

    // --- "An additional 10% noise records is added ... independently drawn
    // at random over the entire range of the attribute."
    for (std::size_t i = 0; i < n_noise; ++i) emit_noise(data);

    // --- Permute record order.
    if (config_.permute_records) {
      std::vector<RecordIndex> perm(data.num_records());
      std::iota(perm.begin(), perm.end(), RecordIndex{0});
      shuffle(rng_, perm.begin(), perm.end());
      data.permute(perm);
    }
    return data;
  }

 private:
  /// Emits `quota` records for one cluster, distributing points across its
  /// boxes proportional to box volume, with unit-cube coverage per box.
  void emit_cluster(Dataset& data, const ClusterSpec& spec, std::int32_t label,
                    std::size_t quota) {
    if (quota == 0) return;
    std::vector<double> volumes(spec.boxes.size());
    double vol_sum = 0.0;
    for (std::size_t b = 0; b < spec.boxes.size(); ++b) {
      volumes[b] = scaled_volume(spec, spec.boxes[b]);
      vol_sum += volumes[b];
    }
    std::size_t emitted = 0;
    for (std::size_t b = 0; b < spec.boxes.size(); ++b) {
      const bool last = b + 1 == spec.boxes.size();
      const std::size_t share =
          last ? quota - emitted
               : std::min(quota - emitted,
                          static_cast<std::size_t>(std::llround(
                              static_cast<double>(quota) * volumes[b] / vol_sum)));
      emit_box(data, spec, spec.boxes[b], label, share);
      emitted += share;
    }
  }

  /// Lower bound of dimension j's domain.
  double dim_lo(std::size_t j) const {
    return config_.dim_specs.empty() ? static_cast<double>(config_.domain_lo)
                                     : static_cast<double>(config_.dim_specs[j].lo);
  }

  /// Upper bound of dimension j's domain.
  double dim_hi(std::size_t j) const {
    return config_.dim_specs.empty() ? static_cast<double>(config_.domain_hi)
                                     : static_cast<double>(config_.dim_specs[j].hi);
  }

  /// Dimension j's categorical levels, or nullptr for a continuous dim.
  const std::vector<Value>* levels_of(std::size_t j) const {
    if (config_.dim_specs.empty() || config_.dim_specs[j].levels.empty()) {
      return nullptr;
    }
    return &config_.dim_specs[j].levels;
  }

  /// Volume of a box in the paper's scaled [0,100] space.
  double scaled_volume(const ClusterSpec& spec, const ClusterBox& box) const {
    double v = 1.0;
    for (std::size_t i = 0; i < spec.dims.size(); ++i) {
      v *= scale_extent(box.hi[i] - box.lo[i], spec.dims[i]);
    }
    return std::max(v, 1e-12);
  }

  /// Extent along dimension j mapped to the [0,100] scale of j's domain.
  double scale_extent(double extent, std::size_t j) const {
    return extent / (dim_hi(j) - dim_lo(j)) * 100.0;
  }

  /// Emits `quota` records inside one box: first one point per unit cube of
  /// the scaled region (coverage guarantee), then uniform fill.
  void emit_box(Dataset& data, const ClusterSpec& spec, const ClusterBox& box,
                std::int32_t label, std::size_t quota) {
    const std::size_t k = spec.dims.size();

    // Per-subspace-dim categorical levels inside the box (empty vector for
    // continuous dims).  Validation guarantees a categorical dim has >= 1
    // in-box level.
    std::vector<std::vector<Value>> box_levels(k);
    for (std::size_t i = 0; i < k; ++i) {
      if (const std::vector<Value>* levels = levels_of(spec.dims[i])) {
        for (const Value level : *levels) {
          if (level >= box.lo[i] && level <= box.hi[i]) {
            box_levels[i].push_back(level);
          }
        }
      }
    }

    // Unit-cube lattice in scaled space: m_i cells along subspace dim i.
    // A categorical dim contributes one "cell" per in-box level, so the
    // coverage walk realizes every level at least once.
    std::vector<std::size_t> cells(k);
    std::size_t total_cells = 1;
    bool overflow = false;
    for (std::size_t i = 0; i < k; ++i) {
      if (!box_levels[i].empty()) {
        cells[i] = box_levels[i].size();
      } else {
        const double extent = scale_extent(box.hi[i] - box.lo[i], spec.dims[i]);
        cells[i] = std::max<std::size_t>(1, static_cast<std::size_t>(extent));
      }
      if (total_cells > config_.max_cover_cells / cells[i]) overflow = true;
      total_cells *= cells[i];
    }

    std::vector<Value> row(config_.num_dims);
    std::size_t emitted = 0;

    if (!overflow && total_cells <= quota) {
      // One point per unit cube, mixed-radix walk over the lattice.
      std::vector<std::size_t> idx(k, 0);
      for (std::size_t cell = 0; cell < total_cells; ++cell) {
        fill_background(row);
        for (std::size_t i = 0; i < k; ++i) {
          if (!box_levels[i].empty()) {
            row[spec.dims[i]] = box_levels[i][idx[i]];
            continue;
          }
          const double cell_lo =
              static_cast<double>(box.lo[i]) +
              (static_cast<double>(box.hi[i]) - box.lo[i]) *
                  (static_cast<double>(idx[i]) / static_cast<double>(cells[i]));
          const double cell_hi =
              static_cast<double>(box.lo[i]) +
              (static_cast<double>(box.hi[i]) - box.lo[i]) *
                  (static_cast<double>(idx[i] + 1) / static_cast<double>(cells[i]));
          row[spec.dims[i]] = static_cast<Value>(uniform_real(rng_, cell_lo, cell_hi));
        }
        data.append(row, label);
        ++emitted;
        // Increment mixed-radix index.
        for (std::size_t i = 0; i < k; ++i) {
          if (++idx[i] < cells[i]) break;
          idx[i] = 0;
        }
      }
    }

    // Uniform fill of the remaining quota (or all of it, if the lattice was
    // larger than the quota / overflowed).
    for (; emitted < quota; ++emitted) {
      fill_background(row);
      for (std::size_t i = 0; i < k; ++i) {
        if (!box_levels[i].empty()) {
          row[spec.dims[i]] =
              box_levels[i][uniform_index(rng_, box_levels[i].size())];
        } else {
          row[spec.dims[i]] = static_cast<Value>(
              uniform_real(rng_, box.lo[i], box.hi[i]));
        }
      }
      data.append(row, label);
    }
  }

  /// Fills every attribute uniformly over its full domain ("For the
  /// remaining attributes we select a value at random from a uniform
  /// distribution over the entire range").  Categorical dims draw a level
  /// uniformly instead.
  void fill_background(std::vector<Value>& row) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (const std::vector<Value>* levels = levels_of(j)) {
        row[j] = (*levels)[uniform_index(rng_, levels->size())];
      } else {
        row[j] = static_cast<Value>(uniform_real(rng_, dim_lo(j), dim_hi(j)));
      }
    }
  }

  void emit_noise(Dataset& data) {
    if (noise_row_.size() != config_.num_dims) noise_row_.resize(config_.num_dims);
    fill_background(noise_row_);
    data.append(noise_row_, kNoiseLabel);
  }

  const GeneratorConfig& config_;
  Engine rng_;
  std::vector<Value> noise_row_;
};

}  // namespace

Dataset generate(const GeneratorConfig& config) {
  config.validate();
  if (config.engine == GeneratorConfig::Engine::Lcg) {
    return GeneratorImpl<LcgRandom>(config).run();
  }
  return GeneratorImpl<IcgRandom>(config).run();
}

std::vector<TrueBox> ground_truth(const GeneratorConfig& config) {
  std::vector<TrueBox> truth;
  for (const ClusterSpec& spec : config.clusters) {
    for (const ClusterBox& box : spec.boxes) {
      TrueBox t;
      t.dims = spec.dims;
      t.lo = box.lo;
      t.hi = box.hi;
      truth.push_back(std::move(t));
    }
  }
  return truth;
}

}  // namespace mafia
