// Synthetic data generator reproducing Section 5.1.
//
// Key behaviours from the paper, all implemented here:
//   * cluster extents are user-given per subspace dimension; domains are
//     scaled to [0, 100] internally, points placed so that "each unit cube,
//     part of the user defined cluster, in this scaled space contains at
//     least one point", then scaled back — "as against randomly populating
//     the user defined cluster region as used in [CLIQUE], ensures that we
//     have a cluster exactly as defined by the user";
//   * non-subspace attributes draw uniformly over their full range;
//   * the Inversive Congruential Generator [6] supplies randomness (an LCG
//     engine is selectable to reproduce the plane artifact);
//   * "an additional 10% noise records is added", every attribute uniform;
//   * record order is permuted so results cannot depend on input order.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/quality.hpp"
#include "datagen/cluster_spec.hpp"
#include "io/dataset.hpp"

namespace mafia {

/// Per-dimension domain override for the mixed-scale / categorical
/// scoreboard workloads.  When GeneratorConfig::dim_specs is empty every
/// dimension draws from the single [domain_lo, domain_hi] range (the
/// paper's setup); otherwise dimension j draws from dim_specs[j].
struct DimSpec {
  Value lo = 0.0f;
  Value hi = 100.0f;
  /// Non-empty => categorical: every generated value for this dimension
  /// (background, cluster, and noise alike) is one of these levels
  /// (strictly ascending, within [lo, hi]).  Cluster-box fill draws only
  /// the levels inside the box, and the unit-cube coverage lattice
  /// degenerates to one cell per in-box level so each level is realized.
  std::vector<Value> levels;
};

struct GeneratorConfig {
  std::size_t num_dims = 0;
  /// Cluster records to generate; noise is ADDED on top (paper semantics),
  /// so the data set holds num_records * (1 + noise_fraction) rows.
  RecordIndex num_records = 0;
  Value domain_lo = 0.0f;
  Value domain_hi = 100.0f;
  /// Optional per-dimension domains / categorical levels; empty (default)
  /// means every dimension uses [domain_lo, domain_hi].  When non-empty it
  /// must hold exactly num_dims entries, and cluster boxes are validated
  /// against their own dimensions' domains.
  std::vector<DimSpec> dim_specs;
  std::vector<ClusterSpec> clusters;
  double noise_fraction = 0.10;
  std::uint64_t seed = 1;
  enum class Engine { Icg, Lcg };
  Engine engine = Engine::Icg;
  bool permute_records = true;
  /// Unit-cube coverage is guaranteed only while the cluster's scaled cube
  /// count stays below this cap (pathological specs would otherwise force
  /// more points than requested); beyond it, placement falls back to
  /// uniform sampling inside the region.
  std::size_t max_cover_cells = 1u << 24;

  void validate() const;
};

/// Generates the data set.  Records carry ground-truth labels (cluster
/// index, kNoiseLabel for noise) that the algorithms never see.
[[nodiscard]] Dataset generate(const GeneratorConfig& config);

/// The planted truth in the quality module's box form (one TrueBox per
/// ClusterBox, preserving cluster order).
[[nodiscard]] std::vector<TrueBox> ground_truth(const GeneratorConfig& config);

}  // namespace mafia
