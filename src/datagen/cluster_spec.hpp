// Cluster specifications for the synthetic data generator (Section 5.1).
//
// "The data generator takes from the user the extents of the cluster in
// every dimension of the subspace in which it is embedded.  Data can vary
// between any user specified maximum and minimum values for all attributes
// and clusters can have arbitrary shapes instead of just hyper-rectangular
// regions."  Arbitrary shapes are expressed as unions of boxes over the
// same subspace (e.g. an L-shape is two overlapping boxes).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

/// One axis-aligned box over a cluster's subspace (aligned with the
/// ClusterSpec's dims).
struct ClusterBox {
  std::vector<Value> lo;
  std::vector<Value> hi;
};

/// A planted cluster: a union of boxes over one subspace.
struct ClusterSpec {
  std::vector<DimId> dims;        ///< ascending subspace dimension ids
  std::vector<ClusterBox> boxes;  ///< >= 1 box; union defines the shape
  double weight = 1.0;            ///< relative share of cluster records

  /// Convenience: single-box cluster.
  static ClusterSpec box(std::vector<DimId> dims, std::vector<Value> lo,
                         std::vector<Value> hi, double weight = 1.0) {
    ClusterSpec spec;
    spec.dims = std::move(dims);
    ClusterBox b;
    b.lo = std::move(lo);
    b.hi = std::move(hi);
    spec.boxes.push_back(std::move(b));
    spec.weight = weight;
    return spec;
  }

  void validate(std::size_t num_dims, Value domain_lo, Value domain_hi) const {
    require(!dims.empty(), "ClusterSpec: empty subspace");
    require(!boxes.empty(), "ClusterSpec: no boxes");
    require(weight > 0.0, "ClusterSpec: non-positive weight");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
      require(dims[i] < dims[i + 1], "ClusterSpec: dims must be ascending");
    }
    require(dims.back() < num_dims, "ClusterSpec: dim out of range");
    for (const ClusterBox& b : boxes) {
      require(b.lo.size() == dims.size() && b.hi.size() == dims.size(),
              "ClusterSpec: box arity mismatch");
      for (std::size_t i = 0; i < dims.size(); ++i) {
        require(b.lo[i] < b.hi[i], "ClusterSpec: empty box extent");
        require(b.lo[i] >= domain_lo && b.hi[i] <= domain_hi,
                "ClusterSpec: box outside domain");
      }
    }
  }
};

}  // namespace mafia
