// Repeated-CDU elimination (Algorithm 4).
//
// The MAFIA join generates the same candidate from many parent pairs
// (Figure 2's "Repeat" rows).  The paper eliminates repeats with a pairwise
// O(Ncdu²) comparison, task-partitioned across processors like the join
// itself.  This module provides:
//   * the paper-faithful pairwise kernel (range-partitionable, so the
//     parallel driver can split it with the Eq. 1 solver), and
//   * a hash-based O(Ncdu) pass over the UnitKey map used by default in
//     serial runs — and unconditionally under the bucketed join kernel,
//     where repeat elimination is fused into candidate finalization (one
//     pass over the parent-sorted emissions) and the pairwise repeat scan
//     disappears from the default path entirely,
// plus the machinery to rebuild the unique store and the raw→unique index
// map that parent marking needs.  tests/dedup sections of units_test.cpp
// prove the two paths equivalent; bench_ablation_dedup measures the gap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "units/unit_store.hpp"

namespace mafia {

/// How repeated CDUs are detected.
enum class DedupPolicy {
  Hash,      ///< hash set over canonical (dims, bins) keys — O(Ncdu)
  Pairwise,  ///< the paper's all-pairs comparison — O(Ncdu²), partitionable
};

/// Hash-map key view over a unit: the store plus a unit index, hashed and
/// compared by content.  Avoids materializing per-unit key strings.
/// Public so the bucketed join's fused repeat elimination shares one
/// definition of unit identity with the dedup kernels.
struct UnitKey {
  const UnitStore* store;
  std::size_t index;
};

struct UnitKeyHash {
  std::size_t operator()(const UnitKey& k) const {
    return static_cast<std::size_t>(k.store->hash(k.index));
  }
};

struct UnitKeyEq {
  bool operator()(const UnitKey& a, const UnitKey& b) const {
    return a.store->equal(a.index, *b.store, b.index);
  }
};

/// First-occurrence map: unit content -> index in the unique store.
using UnitIndexMap =
    std::unordered_map<UnitKey, std::uint32_t, UnitKeyHash, UnitKeyEq>;

/// Pairwise repeat detection over an i-range: marks unit j as repeated when
/// some i < j in [i_begin, i_end) has identical content ("Identify repeated
/// CDUs in the entire CDU array as compared to the CDUs of its portion of
/// the array", Algorithm 4).  Flags from all ranks OR-reduce to the global
/// repeat set.  Returns flags of size raw.size().
[[nodiscard]] std::vector<std::uint8_t> pairwise_repeat_flags(const UnitStore& raw,
                                                              std::size_t i_begin,
                                                              std::size_t i_end);

/// Result of repeat elimination.
struct DedupResult {
  /// First-occurrence units in original order.
  UnitStore unique{1};
  /// raw index -> index into `unique` (every raw unit, including repeats,
  /// maps to its unique representative; needed for parent marking).
  std::vector<std::uint32_t> raw_to_unique;
  /// Number of eliminated repeats (the paper's Nrepeat).
  std::size_t num_repeats = 0;
};

/// Hash-based one-pass dedup over the UnitKey map.
[[nodiscard]] DedupResult dedup_hash(const UnitStore& raw);

/// Builds the DedupResult from global pairwise repeat flags.  The flags say
/// *which* units repeat; the raw→unique map is reconstructed in one ordered
/// pass.
[[nodiscard]] DedupResult dedup_from_flags(const UnitStore& raw,
                                           const std::vector<std::uint8_t>& repeat_flags);

}  // namespace mafia
