// CDU population: counting how many records fall inside each candidate.
//
// This is the I/O-bound, data-parallel phase the paper says dominates run
// time ("bulk of the time is taken in populating the candidate dense units
// which is completely data parallel", Section 5.3).  Each rank scans its
// N/p records in B-record chunks, accumulates local counts, and the driver
// Reduce-sums them.
//
// Implementation: a record lies in CDU {(d₁,b₁)..(d_k,b_k)} iff its bin
// index in dimension dᵢ equals bᵢ for all i (adaptive bins tile each
// dimension, so each value maps to exactly one bin).  The populator
// pre-groups CDUs by their dimension set (subspace) and processes records
// in cache-sized blocks with a subspace-major inner loop: each block's
// per-dimension bin indices are computed once into a column buffer, then
// every subspace sweeps the whole block while its lookup structure stays
// hot in cache.  The block sweep is self-contained per block range, so the
// kernel is trivially splittable for future intra-rank threading.
//
// Per-subspace lookup kernels (PopulateKernel selects; Auto is Packed):
//   * packed/sorted  (k <= 8): the k bin bytes of each CDU row pack into
//     one uint64 (pack_bin_key); a record's projected tuple packs the same
//     way and a branchless lower_bound over the flat sorted key array
//     replaces the per-record memcmp binary search.
//   * packed/hash (k <= 8, high CDU count): an open-addressing exact-match
//     table over the packed keys turns the lookup into O(1) probes.
//   * memcmp (k > 8, or forced): binary search of the projected k-byte row
//     against the subspace's lexicographically sorted CDU rows — the
//     fallback contract for units wider than a packed key.
// All kernels count duplicate CDU rows correctly (identical candidates
// sort adjacently; the hash table points at the first row of an equal
// run), so the contract holds with or without a prior dedup pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

/// Lookup-kernel selection for UnitPopulator.  Auto picks the packed-key
/// kernels whenever the unit dimensionality allows (k <= kPackedKeyMaxDims)
/// and is the production default; Memcmp forces the byte-row binary-search
/// path everywhere (the k > 8 fallback), kept selectable for the
/// oracle-differential tests and the bench_populate_kernel A/B.
enum class PopulateKernel { Auto, Packed, Memcmp };

/// Tuning knobs for the populate kernel (defaults are the production
/// configuration; the bench and the differential tests sweep them).
struct PopulateConfig {
  /// Records per block of the subspace-major sweep.  The block's bin
  /// columns occupy block_records * num_dims bytes; the default keeps them
  /// comfortably inside L2 for the paper's dimensionalities.
  std::size_t block_records = 2048;

  /// Kernel selection (see PopulateKernel).
  PopulateKernel kernel = PopulateKernel::Auto;

  /// Packed subspaces with at least this many CDUs get the open-addressing
  /// exact-match table instead of the sorted-array search.
  std::size_t hash_min_cdus = 48;
};

/// Which kernel each subspace ended up on — surfaced through MafiaResult
/// and the JSON report so the populate-phase configuration is visible in
/// every recorded run.
struct PopulateKernelStats {
  std::size_t packed_sorted_subspaces = 0;
  std::size_t packed_hash_subspaces = 0;
  std::size_t memcmp_subspaces = 0;
  std::size_t block_records = 0;

  void merge(const PopulateKernelStats& other) {
    packed_sorted_subspaces += other.packed_sorted_subspaces;
    packed_hash_subspaces += other.packed_hash_subspaces;
    memcmp_subspaces += other.memcmp_subspaces;
    if (other.block_records > block_records) block_records = other.block_records;
  }
};

class UnitPopulator {
 public:
  /// Prepares lookup structures for counting membership in `cdus` under
  /// `grids`.  Both must outlive the populator.
  UnitPopulator(const GridSet& grids, const UnitStore& cdus,
                const PopulateConfig& config = {});

  /// Folds `nrows` row-major records (width = grids.num_dims()) into the
  /// local counts.
  void accumulate(const Value* rows, std::size_t nrows);

  /// Local counts per CDU (index-aligned with the input store), mutable so
  /// the parallel driver can allreduce_sum in place.
  [[nodiscard]] std::vector<Count>& counts() { return counts_; }
  [[nodiscard]] const std::vector<Count>& counts() const { return counts_; }

  /// Number of distinct subspaces among the CDUs (exposed for tests/benches).
  [[nodiscard]] std::size_t num_subspaces() const { return subspaces_.size(); }

  /// Per-kernel subspace counts for this populator (exposed for the run
  /// report and the benches).
  [[nodiscard]] const PopulateKernelStats& kernel_stats() const { return stats_; }

 private:
  struct Subspace {
    std::vector<DimId> dims;               // ascending dimension set, size k
    std::vector<std::uint32_t> cdu_index;  // sorted row -> original CDU index
    // Packed kernels (k <= kPackedKeyMaxDims):
    std::vector<std::uint64_t> keys;  // member CDU rows as sorted packed keys
    std::vector<std::uint32_t> slots;  // open addressing: key -> first run row
    std::uint64_t slot_mask = 0;       // slots.size() - 1 (power of two)
    // Memcmp fallback (k > kPackedKeyMaxDims or forced):
    std::vector<BinId> sorted_bins;  // member CDU bin rows, lex-sorted, k-stride
  };

  void sweep_packed_sorted(const Subspace& sub, std::size_t bn);
  void sweep_packed_hash(const Subspace& sub, std::size_t bn);
  void sweep_memcmp(const Subspace& sub, std::size_t bn);

  const GridSet& grids_;
  std::size_t k_;
  bool packed_;  // packed kernels active (k fits a key and not forced off)
  PopulateConfig cfg_;
  PopulateKernelStats stats_;
  std::vector<Subspace> subspaces_;
  std::vector<Count> counts_;
  // Block-sweep scratch: per-dimension bin columns for the current block,
  // dim-major (column j starts at j * block_records), filled only for
  // dimensions that occur in some subspace.
  std::vector<BinId> col_bins_;
  std::vector<std::uint8_t> dim_used_;
  std::vector<BinId> key_scratch_;  // projected row buffer (memcmp path)
};

}  // namespace mafia
