// CDU population: counting how many records fall inside each candidate.
//
// This is the I/O-bound, data-parallel phase the paper says dominates run
// time ("bulk of the time is taken in populating the candidate dense units
// which is completely data parallel", Section 5.3).  Each rank scans its
// N/p records in B-record chunks, accumulates local counts, and the driver
// Reduce-sums them.
//
// Implementation: a record lies in CDU {(d₁,b₁)..(d_k,b_k)} iff its bin
// index in dimension dᵢ equals bᵢ for all i (adaptive bins tile each
// dimension, so each value maps to exactly one bin).  The populator
// pre-groups CDUs by their dimension set (subspace); per record it computes
// the per-dimension bin indices once, then for each subspace does ONE
// binary search of the record's projected bin tuple against that subspace's
// lexicographically sorted CDU rows — O(d + Σ_s k·log m_s) per record
// instead of the naive O(Ncdu·k).
#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

class UnitPopulator {
 public:
  /// Prepares lookup structures for counting membership in `cdus` under
  /// `grids`.  Both must outlive the populator.
  UnitPopulator(const GridSet& grids, const UnitStore& cdus);

  /// Folds `nrows` row-major records (width = grids.num_dims()) into the
  /// local counts.
  void accumulate(const Value* rows, std::size_t nrows);

  /// Local counts per CDU (index-aligned with the input store), mutable so
  /// the parallel driver can allreduce_sum in place.
  [[nodiscard]] std::vector<Count>& counts() { return counts_; }
  [[nodiscard]] const std::vector<Count>& counts() const { return counts_; }

  /// Number of distinct subspaces among the CDUs (exposed for tests/benches).
  [[nodiscard]] std::size_t num_subspaces() const { return subspaces_.size(); }

 private:
  struct Subspace {
    std::vector<DimId> dims;          // ascending dimension set, size k
    std::vector<BinId> sorted_bins;   // member CDU bin rows, lex-sorted, k-stride
    std::vector<std::uint32_t> cdu_index;  // sorted row -> original CDU index
  };

  const GridSet& grids_;
  std::size_t k_;
  std::vector<Subspace> subspaces_;
  std::vector<Count> counts_;
  // Scratch: per-record bin index for every dimension that occurs in some
  // subspace (kMaxBinsPerDim fits in BinId).
  std::vector<BinId> bin_scratch_;
  std::vector<std::uint8_t> dim_used_;
};

}  // namespace mafia
