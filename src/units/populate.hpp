// CDU population: counting how many records fall inside each candidate.
//
// This is the I/O-bound, data-parallel phase the paper says dominates run
// time ("bulk of the time is taken in populating the candidate dense units
// which is completely data parallel", Section 5.3).  Each rank scans its
// N/p records in B-record chunks, accumulates local counts, and the driver
// Reduce-sums them.
//
// Implementation: a record lies in CDU {(d₁,b₁)..(d_k,b_k)} iff its bin
// index in dimension dᵢ equals bᵢ for all i (adaptive bins tile each
// dimension, so each value maps to exactly one bin).  The populator
// pre-groups CDUs by their dimension set (subspace) and processes records
// in cache-sized blocks with a subspace-major inner loop: each block's
// per-dimension bin indices are computed once into a column buffer, then
// every subspace sweeps the whole block while its lookup structure stays
// hot in cache.  The block sweep is self-contained per block range, so the
// kernel is trivially splittable for future intra-rank threading.
//
// Per-subspace lookup kernels (PopulateKernel selects; Auto is Packed):
//   * packed/sorted  (k <= 8): the k bin bytes of each CDU row pack into
//     one uint64 (pack_bin_key); a record's projected tuple packs the same
//     way and a branchless lower_bound over the flat sorted key array
//     replaces the per-record memcmp binary search.
//   * packed/hash (k <= 8, high CDU count): an open-addressing exact-match
//     table over the packed keys turns the lookup into O(1) probes.
//   * memcmp (k > 8, or forced): binary search of the projected k-byte row
//     against the subspace's lexicographically sorted CDU rows — the
//     fallback contract for units wider than a packed key.
// All kernels count duplicate CDU rows correctly (identical candidates
// sort adjacently; the hash table points at the first row of an equal
// run), so the contract holds with or without a prior dedup pass.
//
// The Bitmap kernel (gpumafia's build_bitmaps/count_points_bitmaps model)
// inverts the loop structure entirely: the data pass builds one bitset of
// nrows bits per (dim, bin) pair used by any CDU, and a unit's count is
// then the popcount of the AND of its k bitmaps — a branch-free,
// vectorizable reduction over 64-bit words (AVX2/NEON fast path,
// std::popcount fallback).  Bitmap construction happens inside the same
// chunked accumulate() pass as the other kernels, so it composes with the
// pipelined source and SPMD per-rank record ranges; the AND+popcount
// finalization is deferred to the first counts() access after the scan.
// Memory is bits = used_bins × nrows (see auxiliary_bytes), which is why
// the driver folds it into the --max-cdu-bytes budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

/// Lookup-kernel selection for UnitPopulator.  Auto picks the packed-key
/// kernels whenever the unit dimensionality allows (k <= kPackedKeyMaxDims)
/// and is the production default; Memcmp forces the byte-row binary-search
/// path everywhere (the k > 8 fallback), kept selectable for the
/// oracle-differential tests and the bench_populate_kernel A/B.  Bitmap
/// switches to per-(dim, bin) record-membership bitsets with AND+popcount
/// counting — any k, wins when bins are few relative to records, loses
/// when the used-bin count (and so the index) grows (the bench reports the
/// crossover).
enum class PopulateKernel { Auto, Packed, Memcmp, Bitmap };

/// Tuning knobs for the populate kernel (defaults are the production
/// configuration; the bench and the differential tests sweep them).
struct PopulateConfig {
  /// Records per block of the subspace-major sweep.  The block's bin
  /// columns occupy block_records * num_dims bytes; the default keeps them
  /// comfortably inside L2 for the paper's dimensionalities.
  std::size_t block_records = 2048;

  /// Kernel selection (see PopulateKernel).
  PopulateKernel kernel = PopulateKernel::Auto;

  /// Packed subspaces with at least this many CDUs get the open-addressing
  /// exact-match table instead of the sorted-array search.
  std::size_t hash_min_cdus = 48;
};

/// Open-addressing table capacity for `members` keys: the next power of
/// two at or above twice the member count, so the table never exceeds 50%
/// load.  The 2× headroom matters precisely at power-of-two member counts:
/// rounding members up to a power of two with no slack would put such a
/// table at load factor 1.0, where probe chains degenerate and — with no
/// empty slot left — the linear-probe miss loop never terminates.
[[nodiscard]] inline std::size_t hash_table_capacity(std::size_t members) {
  std::size_t cap = 4;
  while (cap < members * 2) cap *= 2;
  return cap;
}

/// Which kernel each subspace ended up on — surfaced through MafiaResult
/// and the JSON report so the populate-phase configuration is visible in
/// every recorded run.
struct PopulateKernelStats {
  std::size_t packed_sorted_subspaces = 0;
  std::size_t packed_hash_subspaces = 0;
  std::size_t memcmp_subspaces = 0;
  std::size_t bitmap_subspaces = 0;
  std::size_t block_records = 0;
  /// Peak bitmap-index footprint over the run's levels (bitset words plus
  /// the (dim, bin) -> bitmap id map); 0 unless the Bitmap kernel ran.
  std::size_t bitmap_bytes = 0;
  /// Total 64-bit words ANDed by the bitmap count finalization, summed
  /// over all levels — the work metric of the AND+popcount reduction.
  std::size_t bitmap_words_anded = 0;

  void merge(const PopulateKernelStats& other) {
    packed_sorted_subspaces += other.packed_sorted_subspaces;
    packed_hash_subspaces += other.packed_hash_subspaces;
    memcmp_subspaces += other.memcmp_subspaces;
    bitmap_subspaces += other.bitmap_subspaces;
    if (other.block_records > block_records) block_records = other.block_records;
    if (other.bitmap_bytes > bitmap_bytes) bitmap_bytes = other.bitmap_bytes;
    bitmap_words_anded += other.bitmap_words_anded;
  }
};

class UnitPopulator {
 public:
  /// Prepares lookup structures for counting membership in `cdus` under
  /// `grids`.  Both must outlive the populator.
  UnitPopulator(const GridSet& grids, const UnitStore& cdus,
                const PopulateConfig& config = {});

  /// Folds `nrows` row-major records (width = grids.num_dims()) into the
  /// local counts.
  void accumulate(const Value* rows, std::size_t nrows);

  /// Accumulates `base` element-wise into the counts — the append path's
  /// accumulate-into-existing-counts entry point.  Valid for all three
  /// kernels: counts_ is the unified additive accumulator (the bitmap
  /// kernel's pending rows are finalized first, so seeding and scanning
  /// commute).  The SPMD driver seeds the stored global counts AFTER the
  /// batch-only allreduce, so every rank adds the base exactly once.
  /// Throws mafia::Error when any sum would overflow Count.
  void seed_counts(std::span<const Count> base);

  /// Local counts per CDU (index-aligned with the input store), mutable so
  /// the parallel driver can allreduce_sum in place.  Under the Bitmap
  /// kernel the first access after new accumulate() calls finalizes the
  /// pending rows (AND+popcount over the words they touched); the counts
  /// are append-consistent, so accumulate and counts may interleave.
  [[nodiscard]] std::vector<Count>& counts() {
    finalize_bitmap_counts();
    return counts_;
  }
  [[nodiscard]] const std::vector<Count>& counts() const {
    finalize_bitmap_counts();
    return counts_;
  }

  /// Number of distinct subspaces among the CDUs (exposed for tests/benches).
  [[nodiscard]] std::size_t num_subspaces() const { return subspaces_.size(); }

  /// Per-kernel subspace counts for this populator (exposed for the run
  /// report and the benches).  Under the Bitmap kernel the AND-work counter
  /// is complete only once counts() has finalized the accumulated rows.
  [[nodiscard]] const PopulateKernelStats& kernel_stats() const { return stats_; }

  /// Kernel family this populator resolved to (Auto and the k > 8 packed
  /// fallback resolved): Packed, Memcmp, or Bitmap.  Recorded per level in
  /// the run trace.
  [[nodiscard]] PopulateKernel effective_kernel() const {
    if (bitmap_) return PopulateKernel::Bitmap;
    return packed_ ? PopulateKernel::Packed : PopulateKernel::Memcmp;
  }

  /// Kernel auxiliary memory needed to count `nrows` records: the bitmap
  /// index (bitset words + bin map) under the Bitmap kernel, the lookup
  /// tables (packed keys, hash slots, sorted byte rows) otherwise.  Callers
  /// pass the worst-case partition size so a collective budget guard stays
  /// rank-invariant.  See auxiliary_component() for the matching name.
  [[nodiscard]] std::size_t auxiliary_bytes(std::size_t nrows) const;

  /// Human-readable name of the auxiliary-memory component measured by
  /// auxiliary_bytes(), for resource-error messages.
  [[nodiscard]] const char* auxiliary_component() const {
    return bitmap_ ? "populate bitmap index" : "populate lookup tables";
  }

 private:
  struct Subspace {
    std::vector<DimId> dims;               // ascending dimension set, size k
    std::vector<std::uint32_t> cdu_index;  // sorted row -> original CDU index
    // Packed kernels (k <= kPackedKeyMaxDims):
    std::vector<std::uint64_t> keys;  // member CDU rows as sorted packed keys
    std::vector<std::uint32_t> slots;  // open addressing: key -> first run row
    std::uint64_t slot_mask = 0;       // slots.size() - 1 (power of two)
    // Memcmp fallback (k > kPackedKeyMaxDims or forced):
    std::vector<BinId> sorted_bins;  // member CDU bin rows, lex-sorted, k-stride
    // Bitmap kernel: k bitmap ids per member CDU, row-major in sorted order.
    std::vector<std::uint32_t> bitmap_ids;
  };

  void sweep_packed_sorted(const Subspace& sub, std::size_t bn);
  void sweep_packed_hash(const Subspace& sub, std::size_t bn);
  void sweep_memcmp(const Subspace& sub, std::size_t bn);

  /// Bitmap-kernel count finalization: for every member CDU, AND its k
  /// bitmaps and popcount over the word range the rows accumulated since
  /// the last finalization touched (bits are append-only and tail bits are
  /// zero, so incremental word ranges sum to the full-scan answer).  No-op
  /// for the other kernels or when no rows are pending; const because both
  /// counts() overloads trigger it (counts_/stats_/watermark are mutable).
  void finalize_bitmap_counts() const;

  const GridSet& grids_;
  std::size_t k_;
  bool packed_;  // packed kernels active (k fits a key and not forced off)
  bool bitmap_;  // bitmap kernel active (cfg_.kernel == Bitmap)
  PopulateConfig cfg_;
  mutable PopulateKernelStats stats_;
  std::vector<Subspace> subspaces_;
  mutable std::vector<Count> counts_;
  // Block-sweep scratch: per-dimension bin columns for the current block,
  // dim-major (column j starts at j * block_records), filled only for
  // dimensions that occur in some subspace.
  std::vector<BinId> col_bins_;
  std::vector<std::uint8_t> dim_used_;
  std::vector<BinId> key_scratch_;  // projected row buffer (memcmp path)
  // Bitmap-kernel state.  bin_map_ maps (dim * kMaxBinsPerDim + bin) to a
  // bitmap id (kNoBitmap for (dim, bin) pairs no CDU uses — those set no
  // bits and cost no memory); bitmaps_ holds one word vector of
  // ceil(nrows / 64) words per used pair, grown as accumulate() sees rows.
  std::vector<std::uint32_t> bin_map_;
  std::vector<std::vector<std::uint64_t>> bitmaps_;
  std::size_t nrows_seen_ = 0;          // rows accumulated into the bitmaps
  mutable std::size_t done_rows_ = 0;   // rows already folded into counts_
};

}  // namespace mafia
