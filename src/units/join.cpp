#include "units/join.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

namespace mafia {

namespace {

/// Sorted-merge join for the MAFIA rule: units `a`, `b` of dimensionality
/// km1 = k−1 combine iff they share exactly km1−1 dimensions with equal bins
/// on every shared dimension (union therefore has km1+1 = k dimensions).
/// Writes the merged (sorted) dims/bins into the output arrays and returns
/// true on success.
bool merge_mafia(std::span<const DimId> da, std::span<const BinId> ba,
                 std::span<const DimId> db, std::span<const BinId> bb,
                 DimId* out_dims, BinId* out_bins) {
  const std::size_t km1 = da.size();
  const std::size_t k = km1 + 1;
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t out = 0;
  std::size_t shared = 0;
  while (ia < km1 || ib < km1) {
    if (out >= k) return false;  // union larger than k: too few shared dims
    if (ib == km1 || (ia < km1 && da[ia] < db[ib])) {
      out_dims[out] = da[ia];
      out_bins[out] = ba[ia];
      ++ia;
      ++out;
    } else if (ia == km1 || db[ib] < da[ia]) {
      out_dims[out] = db[ib];
      out_bins[out] = bb[ib];
      ++ib;
      ++out;
    } else {
      // Shared dimension: bins must agree for the units to be compatible.
      if (ba[ia] != bb[ib]) return false;
      out_dims[out] = da[ia];
      out_bins[out] = ba[ia];
      ++ia;
      ++ib;
      ++out;
      ++shared;
    }
  }
  return out == k && shared == km1 - 1;
}

/// CLIQUE prefix join: units combine iff their first km1−1 (dim, bin) pairs
/// are identical and their last dimensions differ.  The result is the
/// shared prefix plus both last dimensions in ascending order (each unit's
/// dims are ascending, so both last dims exceed every prefix dim).
bool merge_clique(std::span<const DimId> da, std::span<const BinId> ba,
                  std::span<const DimId> db, std::span<const BinId> bb,
                  DimId* out_dims, BinId* out_bins) {
  const std::size_t km1 = da.size();
  for (std::size_t i = 0; i + 1 < km1; ++i) {
    if (da[i] != db[i] || ba[i] != bb[i]) return false;
  }
  const DimId last_a = da[km1 - 1];
  const DimId last_b = db[km1 - 1];
  if (last_a == last_b) return false;
  for (std::size_t i = 0; i + 1 < km1; ++i) {
    out_dims[i] = da[i];
    out_bins[i] = ba[i];
  }
  if (last_a < last_b) {
    out_dims[km1 - 1] = last_a;
    out_bins[km1 - 1] = ba[km1 - 1];
    out_dims[km1] = last_b;
    out_bins[km1] = bb[km1 - 1];
  } else {
    out_dims[km1 - 1] = last_b;
    out_bins[km1 - 1] = bb[km1 - 1];
    out_dims[km1] = last_a;
    out_bins[km1] = ba[km1 - 1];
  }
  return true;
}

/// Dispatches on the rule; shared verifier of both kernels, so bucketed
/// emission correctness reduces to "does the pair meet in some bucket".
bool merge_pair(const UnitStore& dense, std::size_t a, std::size_t b,
                JoinRule rule, DimId* out_dims, BinId* out_bins) {
  return rule == JoinRule::MafiaAnyShared
             ? merge_mafia(dense.dims(a), dense.bins(a), dense.dims(b),
                           dense.bins(b), out_dims, out_bins)
             : merge_clique(dense.dims(a), dense.bins(a), dense.dims(b),
                            dense.bins(b), out_dims, out_bins);
}

}  // namespace

bool try_join(const UnitStore& dense, std::size_t a, std::size_t b, JoinRule rule,
              UnitStore& out) {
  require(out.k() == dense.k() + 1, "try_join: output store has wrong k");
  std::array<DimId, kMaxDims> dims;
  std::array<BinId, kMaxDims> bins;
  const bool ok = merge_pair(dense, a, b, rule, dims.data(), bins.data());
  if (ok) out.push_unchecked(dims.data(), bins.data());
  return ok;
}

JoinResult join_dense_units(const UnitStore& dense, JoinRule rule,
                            std::size_t i_begin, std::size_t i_end) {
  require(i_begin <= i_end && i_end <= dense.size(), "join_dense_units: bad range");
  const std::size_t n = dense.size();
  const std::size_t k = dense.k() + 1;

  JoinResult result;
  result.cdus = UnitStore(k);
  result.combined.assign(n, 0);

  std::array<DimId, kMaxDims> dims;
  std::array<BinId, kMaxDims> bins;

  for (std::size_t i = i_begin; i < i_end; ++i) {
    const auto da = dense.dims(i);
    const auto ba = dense.bins(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      ++result.stats.probes;
      const bool ok =
          rule == JoinRule::MafiaAnyShared
              ? merge_mafia(da, ba, dense.dims(j), dense.bins(j), dims.data(),
                            bins.data())
              : merge_clique(da, ba, dense.dims(j), dense.bins(j), dims.data(),
                             bins.data());
      if (ok) {
        result.cdus.push_unchecked(dims.data(), bins.data());
        result.parents.emplace_back(static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j));
        result.combined[i] = 1;
        result.combined[j] = 1;
        ++result.stats.emitted;
      }
    }
  }
  return result;
}

// --------------------------------------------------------- bucketed kernel

JoinBucketIndex::JoinBucketIndex(const UnitStore& dense, JoinRule rule)
    : dense_(&dense), rule_(rule) {
  const std::size_t km1 = dense.k();
  const std::size_t n = dense.size();
  // A sub-signature is km1−1 (dim, bin) pairs.  Under the MAFIA rule every
  // unit contributes one entry per dropped dimension (km1 entries); under
  // CLIQUE's prefix rule exactly one (its first km1−1 pairs).  km1 == 1
  // degenerates to the empty signature: one global bucket, where the
  // in-bucket pair loop IS the pairwise scan.
  const std::size_t sig_pairs = km1 - 1;
  const std::size_t per_unit = rule == JoinRule::MafiaAnyShared ? km1 : 1;
  const std::size_t entries = n * per_unit;
  entry_unit_.resize(entries);
  if (entries == 0) {
    bucket_begin_ = {0};
    return;
  }

  const std::size_t sig_bytes = 2 * sig_pairs;
  std::vector<std::size_t> boundaries;  // entry indices where a bucket starts
  if (sig_bytes <= sizeof(std::uint64_t)) {
    // Fast path: the signature packs into one integer, (dim, bin) bytes
    // interleaved most-significant-first — same trick as pack_bin_key, so
    // key order equals lexicographic signature-byte order.  Sorting
    // (key, unit) pairs also sorts units ascending inside each bucket,
    // which is what makes every in-bucket pair (lo, hi) with lo < hi.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed;
    keyed.reserve(entries);
    for (std::size_t u = 0; u < n; ++u) {
      const auto dims = dense.dims(u);
      const auto bins = dense.bins(u);
      for (std::size_t drop = 0; drop < per_unit; ++drop) {
        std::uint64_t key = 0;
        if (rule_ == JoinRule::MafiaAnyShared) {
          for (std::size_t i = 0; i < km1; ++i) {
            if (i == drop) continue;
            key = (key << 8) | static_cast<std::uint64_t>(dims[i]);
            key = (key << 8) | static_cast<std::uint64_t>(bins[i]);
          }
        } else {
          for (std::size_t i = 0; i < sig_pairs; ++i) {
            key = (key << 8) | static_cast<std::uint64_t>(dims[i]);
            key = (key << 8) | static_cast<std::uint64_t>(bins[i]);
          }
        }
        keyed.emplace_back(key, static_cast<std::uint32_t>(u));
      }
    }
    std::sort(keyed.begin(), keyed.end());
    for (std::size_t e = 0; e < entries; ++e) {
      entry_unit_[e] = keyed[e].second;
      if (e == 0 || keyed[e].first != keyed[e - 1].first) boundaries.push_back(e);
    }
  } else {
    // Wide signatures (km1 > 5): keep the byte rows in a flat buffer and
    // sort entry indices by memcmp, tiebreaking on the unit index so the
    // in-bucket unit order matches the packed path.
    std::vector<std::uint8_t> sig(entries * sig_bytes);
    std::vector<std::uint32_t> owner(entries);
    std::size_t e = 0;
    for (std::size_t u = 0; u < n; ++u) {
      const auto dims = dense.dims(u);
      const auto bins = dense.bins(u);
      for (std::size_t drop = 0; drop < per_unit; ++drop, ++e) {
        std::uint8_t* row = sig.data() + e * sig_bytes;
        std::size_t at = 0;
        for (std::size_t i = 0; i < km1 && at < sig_bytes; ++i) {
          if (rule_ == JoinRule::MafiaAnyShared && i == drop) continue;
          row[at++] = static_cast<std::uint8_t>(dims[i]);
          row[at++] = static_cast<std::uint8_t>(bins[i]);
        }
        owner[e] = static_cast<std::uint32_t>(u);
      }
    }
    std::vector<std::uint32_t> order(entries);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                const int c = std::memcmp(sig.data() + a * sig_bytes,
                                          sig.data() + b * sig_bytes, sig_bytes);
                if (c != 0) return c < 0;
                return owner[a] < owner[b];
              });
    for (std::size_t i = 0; i < entries; ++i) {
      entry_unit_[i] = owner[order[i]];
      if (i == 0 || std::memcmp(sig.data() + order[i] * sig_bytes,
                                sig.data() + order[i - 1] * sig_bytes,
                                sig_bytes) != 0) {
        boundaries.push_back(i);
      }
    }
  }

  bucket_begin_ = std::move(boundaries);
  bucket_begin_.push_back(entries);
  work_.resize(bucket_begin_.size() - 1);
  for (std::size_t b = 0; b + 1 < bucket_begin_.size(); ++b) {
    const std::uint64_t c = bucket_begin_[b + 1] - bucket_begin_[b];
    work_[b] = c * (c - 1) / 2;
  }
}

JoinResult JoinBucketIndex::join_range(std::size_t bucket_begin,
                                       std::size_t bucket_end) const {
  require(bucket_begin <= bucket_end && bucket_end <= num_buckets(),
          "JoinBucketIndex::join_range: bad bucket range");
  const UnitStore& dense = *dense_;
  const std::size_t k = dense.k() + 1;

  JoinResult result;
  result.cdus = UnitStore(k);
  result.combined.assign(dense.size(), 0);
  result.stats.buckets = bucket_end - bucket_begin;

  std::array<DimId, kMaxDims> dims;
  std::array<BinId, kMaxDims> bins;
  for (std::size_t b = bucket_begin; b < bucket_end; ++b) {
    const std::size_t begin = bucket_begin_[b];
    const std::size_t end = bucket_begin_[b + 1];
    for (std::size_t ei = begin; ei < end; ++ei) {
      const std::size_t lo = entry_unit_[ei];
      for (std::size_t ej = ei + 1; ej < end; ++ej) {
        const std::size_t hi = entry_unit_[ej];
        ++result.stats.probes;
        if (merge_pair(dense, lo, hi, rule_, dims.data(), bins.data())) {
          result.cdus.push_unchecked(dims.data(), bins.data());
          result.parents.emplace_back(static_cast<std::uint32_t>(lo),
                                      static_cast<std::uint32_t>(hi));
          result.combined[lo] = 1;
          result.combined[hi] = 1;
          ++result.stats.emitted;
        }
      }
    }
  }
  return result;
}

void sort_cdus_by_parents(
    UnitStore& raw,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& parents) {
  require(parents.size() == raw.size(),
          "sort_cdus_by_parents: parents/store size mismatch");
  const std::size_t n = raw.size();
  if (n < 2) return;
  const auto packed = [&parents](std::size_t i) {
    return (static_cast<std::uint64_t>(parents[i].first) << 32) |
           parents[i].second;
  };
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return packed(a) < packed(b); });

  UnitStore sorted(raw.k());
  sorted.reserve(n);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sorted_parents(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t from = order[i];
    sorted.push_unchecked(raw.dims(from).data(), raw.bins(from).data());
    sorted_parents[i] = parents[from];
  }
  raw = std::move(sorted);
  parents = std::move(sorted_parents);
}

JoinResult bucket_join_dense_units(const UnitStore& dense, JoinRule rule) {
  const JoinBucketIndex index(dense, rule);
  JoinResult result = index.join_range(0, index.num_buckets());
  sort_cdus_by_parents(result.cdus, result.parents);
  return result;
}

}  // namespace mafia
