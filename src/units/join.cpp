#include "units/join.hpp"

#include <array>

namespace mafia {

namespace {

/// Sorted-merge join for the MAFIA rule: units `a`, `b` of dimensionality
/// km1 = k−1 combine iff they share exactly km1−1 dimensions with equal bins
/// on every shared dimension (union therefore has km1+1 = k dimensions).
/// Writes the merged (sorted) dims/bins into the output arrays and returns
/// true on success.
bool merge_mafia(std::span<const DimId> da, std::span<const BinId> ba,
                 std::span<const DimId> db, std::span<const BinId> bb,
                 DimId* out_dims, BinId* out_bins) {
  const std::size_t km1 = da.size();
  const std::size_t k = km1 + 1;
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t out = 0;
  std::size_t shared = 0;
  while (ia < km1 || ib < km1) {
    if (out >= k) return false;  // union larger than k: too few shared dims
    if (ib == km1 || (ia < km1 && da[ia] < db[ib])) {
      out_dims[out] = da[ia];
      out_bins[out] = ba[ia];
      ++ia;
      ++out;
    } else if (ia == km1 || db[ib] < da[ia]) {
      out_dims[out] = db[ib];
      out_bins[out] = bb[ib];
      ++ib;
      ++out;
    } else {
      // Shared dimension: bins must agree for the units to be compatible.
      if (ba[ia] != bb[ib]) return false;
      out_dims[out] = da[ia];
      out_bins[out] = ba[ia];
      ++ia;
      ++ib;
      ++out;
      ++shared;
    }
  }
  return out == k && shared == km1 - 1;
}

/// CLIQUE prefix join: units combine iff their first km1−1 (dim, bin) pairs
/// are identical and their last dimensions differ.  The result is the
/// shared prefix plus both last dimensions in ascending order (each unit's
/// dims are ascending, so both last dims exceed every prefix dim).
bool merge_clique(std::span<const DimId> da, std::span<const BinId> ba,
                  std::span<const DimId> db, std::span<const BinId> bb,
                  DimId* out_dims, BinId* out_bins) {
  const std::size_t km1 = da.size();
  for (std::size_t i = 0; i + 1 < km1; ++i) {
    if (da[i] != db[i] || ba[i] != bb[i]) return false;
  }
  const DimId last_a = da[km1 - 1];
  const DimId last_b = db[km1 - 1];
  if (last_a == last_b) return false;
  for (std::size_t i = 0; i + 1 < km1; ++i) {
    out_dims[i] = da[i];
    out_bins[i] = ba[i];
  }
  if (last_a < last_b) {
    out_dims[km1 - 1] = last_a;
    out_bins[km1 - 1] = ba[km1 - 1];
    out_dims[km1] = last_b;
    out_bins[km1] = bb[km1 - 1];
  } else {
    out_dims[km1 - 1] = last_b;
    out_bins[km1 - 1] = bb[km1 - 1];
    out_dims[km1] = last_a;
    out_bins[km1] = ba[km1 - 1];
  }
  return true;
}

}  // namespace

bool try_join(const UnitStore& dense, std::size_t a, std::size_t b, JoinRule rule,
              UnitStore& out) {
  require(out.k() == dense.k() + 1, "try_join: output store has wrong k");
  std::array<DimId, kMaxDims> dims;
  std::array<BinId, kMaxDims> bins;
  const bool ok =
      rule == JoinRule::MafiaAnyShared
          ? merge_mafia(dense.dims(a), dense.bins(a), dense.dims(b), dense.bins(b),
                        dims.data(), bins.data())
          : merge_clique(dense.dims(a), dense.bins(a), dense.dims(b), dense.bins(b),
                         dims.data(), bins.data());
  if (ok) out.push_unchecked(dims.data(), bins.data());
  return ok;
}

JoinResult join_dense_units(const UnitStore& dense, JoinRule rule,
                            std::size_t i_begin, std::size_t i_end) {
  require(i_begin <= i_end && i_end <= dense.size(), "join_dense_units: bad range");
  const std::size_t n = dense.size();
  const std::size_t k = dense.k() + 1;

  JoinResult result;
  result.cdus = UnitStore(k);
  result.combined.assign(n, 0);

  std::array<DimId, kMaxDims> dims;
  std::array<BinId, kMaxDims> bins;

  for (std::size_t i = i_begin; i < i_end; ++i) {
    const auto da = dense.dims(i);
    const auto ba = dense.bins(i);
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool ok =
          rule == JoinRule::MafiaAnyShared
              ? merge_mafia(da, ba, dense.dims(j), dense.bins(j), dims.data(),
                            bins.data())
              : merge_clique(da, ba, dense.dims(j), dense.bins(j), dims.data(),
                             bins.data());
      if (ok) {
        result.cdus.push_unchecked(dims.data(), bins.data());
        result.parents.emplace_back(static_cast<std::uint32_t>(i),
                                    static_cast<std::uint32_t>(j));
        result.combined[i] = 1;
        result.combined[j] = 1;
      }
    }
  }
  return result;
}

}  // namespace mafia
