#include "units/dedup.hpp"

namespace mafia {

std::vector<std::uint8_t> pairwise_repeat_flags(const UnitStore& raw,
                                                std::size_t i_begin,
                                                std::size_t i_end) {
  require(i_begin <= i_end && i_end <= raw.size(), "pairwise_repeat_flags: bad range");
  std::vector<std::uint8_t> repeat(raw.size(), 0);
  for (std::size_t i = i_begin; i < i_end; ++i) {
    for (std::size_t j = i + 1; j < raw.size(); ++j) {
      if (!repeat[j] && raw.equal(i, j)) repeat[j] = 1;
    }
  }
  return repeat;
}

DedupResult dedup_hash(const UnitStore& raw) {
  DedupResult result;
  result.unique = UnitStore(raw.k());
  result.raw_to_unique.resize(raw.size());

  UnitIndexMap first_occurrence;
  first_occurrence.reserve(raw.size());
  for (std::size_t u = 0; u < raw.size(); ++u) {
    const auto [it, inserted] = first_occurrence.try_emplace(
        UnitKey{&raw, u}, static_cast<std::uint32_t>(result.unique.size()));
    if (inserted) {
      result.unique.push_unchecked(raw.dims(u).data(), raw.bins(u).data());
    } else {
      ++result.num_repeats;
    }
    result.raw_to_unique[u] = it->second;
  }
  return result;
}

DedupResult dedup_from_flags(const UnitStore& raw,
                             const std::vector<std::uint8_t>& repeat_flags) {
  require(repeat_flags.size() == raw.size(), "dedup_from_flags: flag size mismatch");
  DedupResult result;
  result.unique = UnitStore(raw.k());
  result.raw_to_unique.resize(raw.size());

  // Non-repeats become uniques in order; repeats look up their
  // representative (its first occurrence is by construction a non-repeat).
  UnitIndexMap representative;
  representative.reserve(raw.size());
  for (std::size_t u = 0; u < raw.size(); ++u) {
    if (!repeat_flags[u]) {
      const auto id = static_cast<std::uint32_t>(result.unique.size());
      result.unique.push_unchecked(raw.dims(u).data(), raw.bins(u).data());
      representative.emplace(UnitKey{&raw, u}, id);
      result.raw_to_unique[u] = id;
    } else {
      ++result.num_repeats;
      const auto it = representative.find(UnitKey{&raw, u});
      require(it != representative.end(),
              "dedup_from_flags: repeat flagged before its first occurrence");
      result.raw_to_unique[u] = it->second;
    }
  }
  return result;
}

}  // namespace mafia
