// Dense-unit identification (Algorithm 5) and dense-unit data structure
// construction (Algorithm 6).
//
// "The histogram count of each CDU is compared against the threshold of all
// the bins which form the CDU" (Section 4.4).  The default reading — a CDU
// is dense iff its population meets the threshold of EVERY constituent bin
// (equivalently, the max) — is DensityPolicy::AllBins.  Two alternatives
// are provided for the ablation bench: AnyBin (min threshold) and
// ScaledProduct (α times the full-independence expectation α·N·Π aᵢ/Dᵢ,
// which shrinks geometrically with k and admits far more units).
//
// Both kernels take explicit unit ranges so the parallel driver can
// task-partition them (each rank examines Ncdu/p CDUs / builds its share of
// dense-unit arrays).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

enum class DensityPolicy {
  AllBins,        ///< count >= max over constituent bins' thresholds (default)
  AnyBin,         ///< count >= min over constituent bins' thresholds
  ScaledProduct,  ///< count >= alpha * N * prod(a_i / D_i)
};

/// Context the ScaledProduct policy needs (ignored by the others).
struct DensityContext {
  double alpha = 1.5;
  Count total_records = 0;
};

/// The density threshold `cdus[u]` must meet under `policy`.
[[nodiscard]] double unit_threshold(const UnitStore& cdus, std::size_t u,
                                    const GridSet& grids, DensityPolicy policy,
                                    const DensityContext& ctx);

/// Fills `flags[u]` (1 = dense) for u in [u_begin, u_end); other entries
/// are left at 0 so per-rank flag vectors OR/sum-reduce to the global set.
/// Returns the number of dense units found in the range.
std::size_t identify_dense_units(const UnitStore& cdus,
                                 const std::vector<Count>& counts,
                                 const GridSet& grids, DensityPolicy policy,
                                 const DensityContext& ctx, std::size_t u_begin,
                                 std::size_t u_end,
                                 std::vector<std::uint8_t>& flags);

/// Builds the dense-unit store from CDUs whose flag is set, restricted to
/// units in [u_begin, u_end) (Algorithm 6's parallel construction; ranks'
/// results concatenate in rank order to the global store).
[[nodiscard]] UnitStore build_dense_store(const UnitStore& cdus,
                                          const std::vector<std::uint8_t>& flags,
                                          std::size_t u_begin, std::size_t u_end);

/// Serial convenience over the full range.
[[nodiscard]] inline UnitStore build_dense_store(
    const UnitStore& cdus, const std::vector<std::uint8_t>& flags) {
  return build_dense_store(cdus, flags, 0, cdus.size());
}

}  // namespace mafia
