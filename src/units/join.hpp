// Candidate-dense-unit generation: the MAFIA join and the CLIQUE join.
//
// Section 3: "candidate dense cells in k dimensions are obtained by merging
// any two dense cells, represented by an ordered set of (k−1) dimensions,
// such that they share any of the (k−2) dimensions" — versus CLIQUE, which
// only merges units sharing the *first* (k−2) dimensions and therefore
// provably misses candidates (the paper's {a₁,b₇,c₈} ⋈ {b₇,c₈,d₉} example;
// reproduced in tests/units_test.cpp).
//
// Two kernels produce the same raw CDU sequence:
//
//   * Pairwise — the paper's triangular scan (unit i against every j > i),
//     exactly the workload Eq. 1 partitions across processors; rank r runs
//     join_dense_units(dense, rule, n_r, n_{r+1}).
//   * Bucketed — JoinBucketIndex groups units into buckets keyed by every
//     (k−2)-dim sub-signature (drop one dimension per entry under the
//     MAFIA rule; the prefix under CLIQUE's) and probes pairs only inside
//     buckets.  A joining pair shares exactly k−2 (dim, bin) coordinates,
//     and that shared set is the one sub-signature both units carry, so
//     the pair meets in exactly one bucket: emission is once-per-pair by
//     construction, with no cross-bucket duplicate suppression needed.
//     Non-joining same-bucket pairs are rejected by the same merge
//     verifier the pairwise scan uses.  Sorting the emissions by packed
//     parent pair ((lo << 32) | hi) reconstructs the pairwise scan's
//     lexicographic (i, j) emission order, so the two kernels' outputs are
//     bit-identical (tests/join_differential_test.cpp proves it).
//
// Task parallelism for the bucketed kernel is over *bucket* ranges,
// balanced by per-bucket pair work b·(b−1)/2 (weight_balanced_partition),
// replacing the triangular row ranges of the pairwise scan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "units/unit_store.hpp"

namespace mafia {

/// Which pairs of (k−1)-dim dense units may combine into a k-dim CDU.
enum class JoinRule {
  /// MAFIA: any two units sharing any (k−2) dims (bins equal on shared dims).
  MafiaAnyShared,
  /// CLIQUE: units sharing their first (k−2) dims (ordered-set prefix).
  CliquePrefix,
};

/// Which candidate-generation kernel executes the join.
enum class JoinKernel {
  /// The paper's O(n²) triangular scan, task-partitioned by Eq. 1.
  Pairwise,
  /// Sub-signature bucket index: probes only pairs sharing a (k−2)-dim
  /// signature, emits once per pair, and sorts emissions back into the
  /// pairwise order.  Bit-identical output, far fewer probes.
  Bucketed,
};

/// Join-kernel selection on MafiaOptions.
struct JoinConfig {
  JoinKernel kernel = JoinKernel::Bucketed;
};

/// Work counters of one join execution (or one level, once globalized).
struct JoinStats {
  std::uint64_t buckets = 0;  ///< signature buckets processed (0: pairwise)
  std::uint64_t probes = 0;   ///< pair merge attempts
  std::uint64_t emitted = 0;  ///< raw CDUs emitted
  /// Repeats eliminated by the fused hash pass that replaces the pairwise
  /// O(Ncdu²) repeat scan under the bucketed kernel (filled by the driver's
  /// dedup step; always 0 directly out of a kernel).
  std::uint64_t repeats_fused = 0;
};

/// Kernel selection and work counters accumulated over all levels of a run
/// — the candidate-generation analogue of PopulateKernelStats.
struct JoinKernelStats {
  std::uint64_t bucketed_levels = 0;  ///< levels joined by the bucket index
  std::uint64_t pairwise_levels = 0;  ///< levels joined by the triangular scan
  std::uint64_t buckets = 0;
  std::uint64_t probes = 0;
  std::uint64_t emitted = 0;
  std::uint64_t repeats_fused = 0;
};

/// Output of one join-range execution.
struct JoinResult {
  /// Raw k-dim CDUs (duplicates possible; see dedup.hpp).
  UnitStore cdus{1};
  /// Per raw CDU: the indices of its two parent dense units, used after
  /// density identification to mark which parents live on inside a dense
  /// child (cluster registration needs the complement set).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
  /// Per dense unit (size = dense.size()): 1 iff the unit combined with at
  /// least one other unit in this range's pairs.  OR-reduce across ranks to
  /// find the paper's "dense units which could not be combined with any
  /// other dense units" (registered as potential clusters).
  std::vector<std::uint8_t> combined;
  /// Probe/emission counters for this execution.
  JoinStats stats;
};

/// Attempts to join dense units `a` and `b` (both of dimensionality k−1)
/// into a k-dim CDU under `rule`.  On success appends the CDU to `out` and
/// returns true.  Exposed for tests; the drivers use join_dense_units.
bool try_join(const UnitStore& dense, std::size_t a, std::size_t b, JoinRule rule,
              UnitStore& out);

/// Runs the pair loop for i in [i_begin, i_end), j in (i, dense.size()).
/// `dense` holds (k−1)-dim units; the result holds k-dim raw CDUs.  Row i
/// performs exactly dense.size() − 1 − i probes — the cost function
/// triangular_work models (the regression test in tests/taskpart_test.cpp
/// pins measured probes to the model).
[[nodiscard]] JoinResult join_dense_units(const UnitStore& dense, JoinRule rule,
                                          std::size_t i_begin, std::size_t i_end);

/// Convenience: the full (serial) pairwise join over all pairs.
[[nodiscard]] inline JoinResult join_dense_units(const UnitStore& dense,
                                                 JoinRule rule) {
  return join_dense_units(dense, rule, 0, dense.size());
}

/// Sub-signature bucket index over one level's dense units.  Construction
/// is deterministic given the (globally replicated) dense store, so every
/// rank builds an identical index and the bucket-range task partition needs
/// no coordination — exactly like the triangular boundaries it replaces.
class JoinBucketIndex {
 public:
  JoinBucketIndex(const UnitStore& dense, JoinRule rule);

  /// Upper bound on the index's memory for `units` dense units of
  /// dimensionality `k` (= the store's k, the join's k−1): every unit
  /// contributes one entry per dropped dimension under the MAFIA rule (k
  /// entries) and exactly one under CLIQUE's prefix rule, and each entry
  /// costs one uint32 plus — bounding buckets by entries — one bucket
  /// offset and one work counter.  Lets the driver fold the index into a
  /// resource budget before construction.
  [[nodiscard]] static std::size_t estimate_bytes(std::size_t units,
                                                  std::size_t k,
                                                  JoinRule rule) {
    const std::size_t per_unit = rule == JoinRule::MafiaAnyShared ? k : 1;
    const std::size_t entries = units * per_unit;
    return entries * (sizeof(std::uint32_t) + sizeof(std::size_t) +
                      sizeof(std::uint64_t));
  }

  [[nodiscard]] std::size_t num_buckets() const { return work_.size(); }

  /// Per-bucket pair work b·(b−1)/2 — the weights for
  /// weight_balanced_partition.
  [[nodiscard]] std::span<const std::uint64_t> bucket_work() const {
    return work_;
  }

  /// Joins every pair inside buckets [bucket_begin, bucket_end).  Emission
  /// order is bucket-major, unit-ascending within a bucket; callers wanting
  /// the pairwise scan's order sort afterwards (sort_cdus_by_parents).
  [[nodiscard]] JoinResult join_range(std::size_t bucket_begin,
                                      std::size_t bucket_end) const;

 private:
  const UnitStore* dense_;
  JoinRule rule_;
  std::vector<std::uint32_t> entry_unit_;   ///< sorted entries -> unit index
  std::vector<std::size_t> bucket_begin_;   ///< bucket b = entries [b], [b+1])
  std::vector<std::uint64_t> work_;         ///< per-bucket pair count
};

/// Reorders raw CDUs and their parent pairs into ascending packed-parent
/// order ((first << 32) | second).  Every pair emits at most once, so the
/// key is a strict total order and the result is exactly the pairwise
/// scan's lexicographic (i, j) emission sequence — the step that makes the
/// bucketed kernel's globalized output bit-identical to the pairwise one.
void sort_cdus_by_parents(
    UnitStore& raw, std::vector<std::pair<std::uint32_t, std::uint32_t>>& parents);

/// Convenience: the full (serial) bucketed join, emissions sorted into
/// pairwise order.  Equal to join_dense_units(dense, rule) member for
/// member (stats aside: probes counts only in-bucket pairs).
[[nodiscard]] JoinResult bucket_join_dense_units(const UnitStore& dense,
                                                 JoinRule rule);

}  // namespace mafia
