// Candidate-dense-unit generation: the MAFIA join and the CLIQUE join.
//
// Section 3: "candidate dense cells in k dimensions are obtained by merging
// any two dense cells, represented by an ordered set of (k−1) dimensions,
// such that they share any of the (k−2) dimensions" — versus CLIQUE, which
// only merges units sharing the *first* (k−2) dimensions and therefore
// provably misses candidates (the paper's {a₁,b₇,c₈} ⋈ {b₇,c₈,d₉} example;
// reproduced in tests/join_test.cpp).
//
// The triangular pair loop (unit i against every unit j > i) is exactly the
// workload Eq. 1 partitions across processors, so the kernel takes an
// explicit i-range: rank r runs join_dense_units(dense, rule, n_r, n_{r+1}).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "units/unit_store.hpp"

namespace mafia {

/// Which pairs of (k−1)-dim dense units may combine into a k-dim CDU.
enum class JoinRule {
  /// MAFIA: any two units sharing any (k−2) dims (bins equal on shared dims).
  MafiaAnyShared,
  /// CLIQUE: units sharing their first (k−2) dims (ordered-set prefix).
  CliquePrefix,
};

/// Output of one join-range execution.
struct JoinResult {
  /// Raw k-dim CDUs (duplicates possible; see dedup.hpp).
  UnitStore cdus{1};
  /// Per raw CDU: the indices of its two parent dense units, used after
  /// density identification to mark which parents live on inside a dense
  /// child (cluster registration needs the complement set).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
  /// Per dense unit (size = dense.size()): 1 iff the unit combined with at
  /// least one other unit in this range's pairs.  OR-reduce across ranks to
  /// find the paper's "dense units which could not be combined with any
  /// other dense units" (registered as potential clusters).
  std::vector<std::uint8_t> combined;
};

/// Attempts to join dense units `a` and `b` (both of dimensionality k−1)
/// into a k-dim CDU under `rule`.  On success appends the CDU to `out` and
/// returns true.  Exposed for tests; the drivers use join_dense_units.
bool try_join(const UnitStore& dense, std::size_t a, std::size_t b, JoinRule rule,
              UnitStore& out);

/// Runs the pair loop for i in [i_begin, i_end), j in (i, dense.size()).
/// `dense` holds (k−1)-dim units; the result holds k-dim raw CDUs.
[[nodiscard]] JoinResult join_dense_units(const UnitStore& dense, JoinRule rule,
                                          std::size_t i_begin, std::size_t i_end);

/// Convenience: the full (serial) join over all pairs.
[[nodiscard]] inline JoinResult join_dense_units(const UnitStore& dense,
                                                 JoinRule rule) {
  return join_dense_units(dense, rule, 0, dense.size());
}

}  // namespace mafia
