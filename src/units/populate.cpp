#include "units/populate.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <map>
#include <numeric>
#include <type_traits>

#if defined(__x86_64__) && !defined(PMAFIA_DISABLE_SIMD)
#include <immintrin.h>
#elif defined(__aarch64__) && !defined(PMAFIA_DISABLE_SIMD)
#include <arm_neon.h>
#endif

namespace mafia {

// Row-layout contract for the memcmp-based sort and search (the k > 8
// fallback): a unit's bin tuple is k_ contiguous BinId elements, so a row
// occupies exactly k_ * sizeof(BinId) bytes with no padding, and byte-wise
// comparison yields a consistent total order between the sort and the
// search (for multi-byte BinId it is not the numeric tuple order, which is
// fine — only consistency and equality matter here).  The packed kernels
// additionally require sizeof(BinId) == 1 (asserted next to pack_bin_key);
// a wider BinId falls back to this memcmp path at compile time.
static_assert(std::is_trivially_copyable_v<BinId> &&
                  std::has_unique_object_representations_v<BinId>,
              "UnitPopulator compares bin rows with memcmp; BinId must have "
              "no padding bits");

// The bitmap kernel indexes bin_map_ as dim * kMaxBinsPerDim + bin, so a
// BinId must not be able to exceed the per-dimension stride.
static_assert(sizeof(BinId) == 1 && kMaxBinsPerDim == 256,
              "bitmap bin_map_ stride assumes byte-wide bin ids");

namespace {

/// Empty-slot sentinel of the open-addressing tables.
constexpr std::uint32_t kEmptySlot = 0xffffffffu;

/// "(dim, bin) used by no CDU" sentinel of the bitmap kernel's bin map.
constexpr std::uint32_t kNoBitmap = 0xffffffffu;

/// splitmix64 finalizer: spreads packed keys (which concentrate entropy in
/// the low bytes for small k) over the whole table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Branchless lower bound over a sorted uint64 array: the comparison feeds
/// a conditional add instead of a branch, so the search pipeline never
/// stalls on the data-dependent direction the memcmp path branches on.
inline std::size_t lower_bound_u64(const std::uint64_t* a, std::size_t n,
                                   std::uint64_t key) {
  std::size_t base = 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (a[base + half - 1] < key) ? half : 0;
    n -= half;
  }
  return base + (n == 1 && a[base] < key ? 1 : 0);
}

// ------------------------------------------------ bitmap AND + popcount
//
// popcount(bm[0][w] & ... & bm[k-1][w]) summed over the word range
// [w0, w1).  The portable path is the semantic definition; the SIMD paths
// widen the AND to 256 bits (AVX2) or 128 bits (NEON) and must produce
// identical sums.  Building with PMAFIA_DISABLE_SIMD compiles only the
// portable path (the sanitizer CI leg exercises it on every host).

using BitmapPtrs = const std::uint64_t* const*;

Count and_popcount_portable(BitmapPtrs bm, std::size_t k, std::size_t w0,
                            std::size_t w1) {
  Count c = 0;
  for (std::size_t w = w0; w < w1; ++w) {
    std::uint64_t x = bm[0][w];
    for (std::size_t i = 1; i < k; ++i) x &= bm[i][w];
    c += static_cast<Count>(std::popcount(x));
  }
  return c;
}

#if defined(__x86_64__) && !defined(PMAFIA_DISABLE_SIMD)

__attribute__((target("avx2,popcnt"))) Count and_popcount_avx2(
    BitmapPtrs bm, std::size_t k, std::size_t w0, std::size_t w1) {
  Count c = 0;
  std::size_t w = w0;
  for (; w + 4 <= w1; w += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bm[0] + w));
    for (std::size_t i = 1; i < k; ++i) {
      x = _mm256_and_si256(
          x, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bm[i] + w)));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x);
    c += static_cast<Count>(
        _mm_popcnt_u64(lanes[0]) + _mm_popcnt_u64(lanes[1]) +
        _mm_popcnt_u64(lanes[2]) + _mm_popcnt_u64(lanes[3]));
  }
  for (; w < w1; ++w) {
    std::uint64_t x = bm[0][w];
    for (std::size_t i = 1; i < k; ++i) x &= bm[i][w];
    c += static_cast<Count>(_mm_popcnt_u64(x));
  }
  return c;
}

#elif defined(__aarch64__) && !defined(PMAFIA_DISABLE_SIMD)

Count and_popcount_neon(BitmapPtrs bm, std::size_t k, std::size_t w0,
                        std::size_t w1) {
  Count c = 0;
  std::size_t w = w0;
  for (; w + 2 <= w1; w += 2) {
    uint64x2_t x = vld1q_u64(bm[0] + w);
    for (std::size_t i = 1; i < k; ++i) x = vandq_u64(x, vld1q_u64(bm[i] + w));
    // vcntq_u8 counts per byte; the 16 byte-counts sum to at most 128, so
    // the across-vector byte add cannot wrap.
    c += static_cast<Count>(vaddvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))));
  }
  for (; w < w1; ++w) {
    std::uint64_t x = bm[0][w];
    for (std::size_t i = 1; i < k; ++i) x &= bm[i][w];
    c += static_cast<Count>(std::popcount(x));
  }
  return c;
}

#endif

using AndPopcountFn = Count (*)(BitmapPtrs, std::size_t, std::size_t,
                                std::size_t);

/// Resolves the AND+popcount implementation once per process: AVX2+POPCNT
/// when the host supports it, NEON on AArch64, std::popcount otherwise.
AndPopcountFn resolve_and_popcount() {
#if defined(__x86_64__) && !defined(PMAFIA_DISABLE_SIMD)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt")) {
    return &and_popcount_avx2;
  }
#elif defined(__aarch64__) && !defined(PMAFIA_DISABLE_SIMD)
  return &and_popcount_neon;
#endif
  return &and_popcount_portable;
}

}  // namespace

UnitPopulator::UnitPopulator(const GridSet& grids, const UnitStore& cdus,
                             const PopulateConfig& config)
    : grids_(grids),
      k_(cdus.k()),
      packed_(cdus.k() <= kPackedKeyMaxDims &&
              config.kernel != PopulateKernel::Memcmp &&
              config.kernel != PopulateKernel::Bitmap),
      bitmap_(config.kernel == PopulateKernel::Bitmap),
      cfg_(config),
      counts_(cdus.size(), 0),
      dim_used_(grids.num_dims(), 0),
      key_scratch_(cdus.k()) {
  require(cfg_.block_records >= 1, "UnitPopulator: block_records must be positive");
  stats_.block_records = cfg_.block_records;
  col_bins_.resize(grids.num_dims() * cfg_.block_records);
  if (bitmap_) bin_map_.assign(grids.num_dims() * kMaxBinsPerDim, kNoBitmap);
  std::uint32_t num_bitmaps = 0;

  // Group CDU indices by dimension set.
  std::map<std::vector<DimId>, std::vector<std::uint32_t>> by_subspace;
  for (std::size_t u = 0; u < cdus.size(); ++u) {
    const auto d = cdus.dims(u);
    std::vector<DimId> key(d.begin(), d.end());
    by_subspace[std::move(key)].push_back(static_cast<std::uint32_t>(u));
  }

  subspaces_.reserve(by_subspace.size());
  for (auto& [dims, members] : by_subspace) {
    Subspace sub;
    sub.dims = dims;
    for (const DimId d : dims) dim_used_[d] = 1;

    // Lex-sort the member CDUs by their bin rows so record lookup is a
    // search over contiguous rows; for the packed kernels ascending key
    // order is the same order (pack_bin_key is byte-lexicographic).
    std::sort(members.begin(), members.end(),
              [&cdus, this](std::uint32_t a, std::uint32_t b) {
                return std::memcmp(cdus.bins(a).data(), cdus.bins(b).data(),
                                   k_ * sizeof(BinId)) < 0;
              });
    sub.cdu_index = members;

    if (bitmap_) {
      // Assign one bitmap id per distinct (dim, bin) pair the subspace's
      // members reference; a CDU's count is then the AND of its k bitmaps.
      sub.bitmap_ids.reserve(members.size() * k_);
      for (const std::uint32_t u : members) {
        const auto bins = cdus.bins(u);
        for (std::size_t i = 0; i < k_; ++i) {
          std::uint32_t& id =
              bin_map_[static_cast<std::size_t>(dims[i]) * kMaxBinsPerDim +
                       bins[i]];
          if (id == kNoBitmap) id = num_bitmaps++;
          sub.bitmap_ids.push_back(id);
        }
      }
      ++stats_.bitmap_subspaces;
    } else if (packed_) {
      sub.keys.reserve(members.size());
      for (const std::uint32_t u : members) {
        sub.keys.push_back(pack_bin_key(cdus.bins(u).data(), k_));
      }
      if (members.size() >= cfg_.hash_min_cdus) {
        // Open-addressing table at <= 50% load (see hash_table_capacity),
        // mapping each distinct key to the first row of its equal run in
        // the sorted key array.
        const std::size_t cap = hash_table_capacity(members.size());
        sub.slots.assign(cap, kEmptySlot);
        sub.slot_mask = cap - 1;
        for (std::size_t i = members.size(); i-- > 0;) {
          std::uint64_t h = mix64(sub.keys[i]) & sub.slot_mask;
          while (sub.slots[h] != kEmptySlot &&
                 sub.keys[sub.slots[h]] != sub.keys[i]) {
            h = (h + 1) & sub.slot_mask;
          }
          sub.slots[h] = static_cast<std::uint32_t>(i);
        }
        ++stats_.packed_hash_subspaces;
      } else {
        ++stats_.packed_sorted_subspaces;
      }
    } else {
      sub.sorted_bins.reserve(members.size() * k_);
      for (const std::uint32_t u : members) {
        const auto b = cdus.bins(u);
        sub.sorted_bins.insert(sub.sorted_bins.end(), b.begin(), b.end());
      }
      ++stats_.memcmp_subspaces;
    }
    subspaces_.push_back(std::move(sub));
  }
  if (bitmap_) {
    bitmaps_.resize(num_bitmaps);
    stats_.bitmap_bytes = auxiliary_bytes(0);
  }
}

std::size_t UnitPopulator::auxiliary_bytes(std::size_t nrows) const {
  if (bitmap_) {
    const std::size_t words = (nrows + 63) / 64;
    return bitmaps_.size() * words * sizeof(std::uint64_t) +
           bin_map_.size() * sizeof(std::uint32_t);
  }
  std::size_t bytes = 0;
  for (const Subspace& sub : subspaces_) {
    bytes += sub.keys.size() * sizeof(std::uint64_t) +
             sub.slots.size() * sizeof(std::uint32_t) +
             sub.sorted_bins.size() * sizeof(BinId);
  }
  return bytes;
}

void UnitPopulator::accumulate(const Value* rows, std::size_t nrows) {
  const std::size_t d = grids_.num_dims();
  const std::size_t block = cfg_.block_records;

  if (bitmap_) {
    // Grow every bitset to cover the rows this call appends (tail bits stay
    // zero, which the incremental finalization relies on).
    const std::size_t words = (nrows_seen_ + nrows + 63) / 64;
    for (auto& bm : bitmaps_) bm.resize(words, 0);
    const std::size_t footprint =
        bitmaps_.size() * words * sizeof(std::uint64_t) +
        bin_map_.size() * sizeof(std::uint32_t);
    if (footprint > stats_.bitmap_bytes) stats_.bitmap_bytes = footprint;
  }

  for (std::size_t base = 0; base < nrows; base += block) {
    const std::size_t bn = std::min(block, nrows - base);

    // Bin the block once in every dimension that participates anywhere:
    // one column of bin indices per dimension, so the subspace sweep below
    // reads sequential bytes instead of re-binning per subspace.
    for (std::size_t j = 0; j < d; ++j) {
      if (!dim_used_[j]) continue;
      BinId* col = col_bins_.data() + j * block;
      const DimensionGrid& g = grids_[j];
      const Value* v = rows + base * d + j;
      for (std::size_t r = 0; r < bn; ++r, v += d) col[r] = g.bin_of(*v);
    }

    if (bitmap_) {
      // Bitmap build: set each record's bit in the bitset of every used
      // (dim, bin) it lands in.  Counting is deferred to counts().
      const std::size_t bit0 = nrows_seen_ + base;
      for (std::size_t j = 0; j < d; ++j) {
        if (!dim_used_[j]) continue;
        const BinId* col = col_bins_.data() + j * block;
        const std::uint32_t* map = bin_map_.data() + j * kMaxBinsPerDim;
        for (std::size_t r = 0; r < bn; ++r) {
          const std::uint32_t id = map[col[r]];
          if (id == kNoBitmap) continue;
          const std::size_t bit = bit0 + r;
          bitmaps_[id][bit >> 6] |= std::uint64_t{1} << (bit & 63);
        }
      }
      continue;
    }

    // Subspace-major sweep: each subspace's lookup structure stays hot
    // across the whole block.
    for (const Subspace& sub : subspaces_) {
      if (!packed_) {
        sweep_memcmp(sub, bn);
      } else if (!sub.slots.empty()) {
        sweep_packed_hash(sub, bn);
      } else {
        sweep_packed_sorted(sub, bn);
      }
    }
  }
  if (bitmap_) nrows_seen_ += nrows;
}

void UnitPopulator::seed_counts(std::span<const Count> base) {
  require(base.size() == counts_.size(),
          "UnitPopulator::seed_counts: base size mismatch");
  // Fold any pending bitmap rows first so the overflow check sees the
  // final local contribution (addition commutes, but a late finalization
  // could overflow silently after the guarded add).
  finalize_bitmap_counts();
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] > std::numeric_limits<Count>::max() - base[i]) {
      throw Error("UnitPopulator: unit-count accumulation overflowed",
                  ErrorClass::Internal);
    }
    counts_[i] += base[i];
  }
}

void UnitPopulator::finalize_bitmap_counts() const {
  if (!bitmap_ || done_rows_ == nrows_seen_) return;
  static const AndPopcountFn and_popcount = resolve_and_popcount();

  // Word range the pending rows [done_rows_, nrows_seen_) occupy.  The
  // first word may straddle the watermark: its already-counted low bits are
  // masked off so they are not counted twice.
  const std::size_t w0 = done_rows_ / 64;
  const std::size_t w1 = (nrows_seen_ + 63) / 64;
  const unsigned head_bits = static_cast<unsigned>(done_rows_ % 64);
  const std::uint64_t head_mask = ~std::uint64_t{0} << head_bits;

  std::vector<const std::uint64_t*> ptrs(k_);
  for (const Subspace& sub : subspaces_) {
    for (std::size_t m = 0; m < sub.cdu_index.size(); ++m) {
      const std::uint32_t* ids = sub.bitmap_ids.data() + m * k_;
      for (std::size_t i = 0; i < k_; ++i) ptrs[i] = bitmaps_[ids[i]].data();
      Count c = 0;
      std::size_t w = w0;
      if (head_bits != 0 && w < w1) {
        std::uint64_t x = ptrs[0][w] & head_mask;
        for (std::size_t i = 1; i < k_; ++i) x &= ptrs[i][w];
        c += static_cast<Count>(std::popcount(x));
        ++w;
      }
      c += and_popcount(ptrs.data(), k_, w, w1);
      counts_[sub.cdu_index[m]] += c;
      stats_.bitmap_words_anded += (w1 - w0) * k_;
    }
  }
  done_rows_ = nrows_seen_;
}

void UnitPopulator::sweep_packed_sorted(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  const std::uint64_t* keys = sub.keys.data();
  const std::size_t m = sub.keys.size();
  for (std::size_t r = 0; r < bn; ++r) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      key = (key << 8) | col_bins_[dims[i] * block + r];
    }
    for (std::size_t pos = lower_bound_u64(keys, m, key);
         pos < m && keys[pos] == key; ++pos) {
      ++counts_[sub.cdu_index[pos]];
    }
  }
}

void UnitPopulator::sweep_packed_hash(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  const std::uint64_t* keys = sub.keys.data();
  const std::size_t m = sub.keys.size();
  for (std::size_t r = 0; r < bn; ++r) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      key = (key << 8) | col_bins_[dims[i] * block + r];
    }
    std::uint64_t h = mix64(key) & sub.slot_mask;
    while (sub.slots[h] != kEmptySlot) {
      const std::size_t first = sub.slots[h];
      if (keys[first] == key) {
        for (std::size_t pos = first; pos < m && keys[pos] == key; ++pos) {
          ++counts_[sub.cdu_index[pos]];
        }
        break;
      }
      h = (h + 1) & sub.slot_mask;
    }
  }
}

void UnitPopulator::sweep_memcmp(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  BinId* key = key_scratch_.data();
  for (std::size_t r = 0; r < bn; ++r) {
    // Project the record onto the subspace's dimensions.
    for (std::size_t i = 0; i < k_; ++i) key[i] = col_bins_[dims[i] * block + r];

    // Binary search the projected bin tuple among the sorted CDU rows.
    std::size_t lo = 0;
    std::size_t hi = sub.cdu_index.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const int cmp = std::memcmp(sub.sorted_bins.data() + mid * k_, key,
                                  k_ * sizeof(BinId));
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Increment every matching row (duplicate CDUs are normally removed by
    // dedup before populating, but the counting contract holds either way:
    // identical candidates sort adjacently).
    while (lo < sub.cdu_index.size() &&
           std::memcmp(sub.sorted_bins.data() + lo * k_, key,
                       k_ * sizeof(BinId)) == 0) {
      ++counts_[sub.cdu_index[lo]];
      ++lo;
    }
  }
}

}  // namespace mafia
