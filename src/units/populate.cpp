#include "units/populate.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <type_traits>

namespace mafia {

// Row-layout contract for the memcmp-based sort and binary search below:
// a unit's bin tuple is k_ contiguous BinId elements, so a row occupies
// exactly k_ * sizeof(BinId) bytes with no padding, and byte-wise
// comparison yields a consistent total order between the sort and the
// search (for multi-byte BinId it is not the numeric tuple order, which is
// fine — only consistency and equality matter here).
static_assert(std::is_trivially_copyable_v<BinId> &&
                  std::has_unique_object_representations_v<BinId>,
              "UnitPopulator compares bin rows with memcmp; BinId must have "
              "no padding bits");

UnitPopulator::UnitPopulator(const GridSet& grids, const UnitStore& cdus)
    : grids_(grids),
      k_(cdus.k()),
      counts_(cdus.size(), 0),
      bin_scratch_(grids.num_dims(), 0),
      dim_used_(grids.num_dims(), 0) {
  // Group CDU indices by dimension set.
  std::map<std::vector<DimId>, std::vector<std::uint32_t>> by_subspace;
  for (std::size_t u = 0; u < cdus.size(); ++u) {
    const auto d = cdus.dims(u);
    std::vector<DimId> key(d.begin(), d.end());
    by_subspace[std::move(key)].push_back(static_cast<std::uint32_t>(u));
  }

  subspaces_.reserve(by_subspace.size());
  for (auto& [dims, members] : by_subspace) {
    Subspace sub;
    sub.dims = dims;
    for (const DimId d : dims) dim_used_[d] = 1;

    // Lex-sort the member CDUs by their bin rows so record lookup is a
    // binary search over contiguous k-byte rows.
    std::sort(members.begin(), members.end(),
              [&cdus, this](std::uint32_t a, std::uint32_t b) {
                return std::memcmp(cdus.bins(a).data(), cdus.bins(b).data(),
                                   k_ * sizeof(BinId)) < 0;
              });
    sub.sorted_bins.reserve(members.size() * k_);
    sub.cdu_index = members;
    for (const std::uint32_t u : members) {
      const auto b = cdus.bins(u);
      sub.sorted_bins.insert(sub.sorted_bins.end(), b.begin(), b.end());
    }
    subspaces_.push_back(std::move(sub));
  }
}

void UnitPopulator::accumulate(const Value* rows, std::size_t nrows) {
  const std::size_t d = grids_.num_dims();
  std::vector<BinId> key(k_);

  for (std::size_t r = 0; r < nrows; ++r) {
    const Value* row = rows + r * d;

    // Bin the record once in every dimension that participates anywhere.
    for (std::size_t j = 0; j < d; ++j) {
      if (dim_used_[j]) bin_scratch_[j] = grids_[j].bin_of(row[j]);
    }

    for (const Subspace& sub : subspaces_) {
      // Project the record onto the subspace's dimensions.
      for (std::size_t i = 0; i < k_; ++i) key[i] = bin_scratch_[sub.dims[i]];

      // Binary search the projected bin tuple among the sorted CDU rows.
      std::size_t lo = 0;
      std::size_t hi = sub.cdu_index.size();
      while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        const int cmp = std::memcmp(sub.sorted_bins.data() + mid * k_,
                                    key.data(), k_ * sizeof(BinId));
        if (cmp < 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      // Increment every matching row (duplicate CDUs are normally removed
      // by dedup before populating, but the counting contract holds either
      // way: identical candidates sort adjacently).
      while (lo < sub.cdu_index.size() &&
             std::memcmp(sub.sorted_bins.data() + lo * k_, key.data(),
                         k_ * sizeof(BinId)) == 0) {
        ++counts_[sub.cdu_index[lo]];
        ++lo;
      }
    }
  }
}

}  // namespace mafia
