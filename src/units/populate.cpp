#include "units/populate.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <type_traits>

namespace mafia {

// Row-layout contract for the memcmp-based sort and search (the k > 8
// fallback): a unit's bin tuple is k_ contiguous BinId elements, so a row
// occupies exactly k_ * sizeof(BinId) bytes with no padding, and byte-wise
// comparison yields a consistent total order between the sort and the
// search (for multi-byte BinId it is not the numeric tuple order, which is
// fine — only consistency and equality matter here).  The packed kernels
// additionally require sizeof(BinId) == 1 (asserted next to pack_bin_key);
// a wider BinId falls back to this memcmp path at compile time.
static_assert(std::is_trivially_copyable_v<BinId> &&
                  std::has_unique_object_representations_v<BinId>,
              "UnitPopulator compares bin rows with memcmp; BinId must have "
              "no padding bits");

namespace {

/// Empty-slot sentinel of the open-addressing tables.
constexpr std::uint32_t kEmptySlot = 0xffffffffu;

/// splitmix64 finalizer: spreads packed keys (which concentrate entropy in
/// the low bytes for small k) over the whole table.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Branchless lower bound over a sorted uint64 array: the comparison feeds
/// a conditional add instead of a branch, so the search pipeline never
/// stalls on the data-dependent direction the memcmp path branches on.
inline std::size_t lower_bound_u64(const std::uint64_t* a, std::size_t n,
                                   std::uint64_t key) {
  std::size_t base = 0;
  while (n > 1) {
    const std::size_t half = n / 2;
    base += (a[base + half - 1] < key) ? half : 0;
    n -= half;
  }
  return base + (n == 1 && a[base] < key ? 1 : 0);
}

}  // namespace

UnitPopulator::UnitPopulator(const GridSet& grids, const UnitStore& cdus,
                             const PopulateConfig& config)
    : grids_(grids),
      k_(cdus.k()),
      packed_(cdus.k() <= kPackedKeyMaxDims &&
              config.kernel != PopulateKernel::Memcmp),
      cfg_(config),
      counts_(cdus.size(), 0),
      dim_used_(grids.num_dims(), 0),
      key_scratch_(cdus.k()) {
  require(cfg_.block_records >= 1, "UnitPopulator: block_records must be positive");
  stats_.block_records = cfg_.block_records;
  col_bins_.resize(grids.num_dims() * cfg_.block_records);

  // Group CDU indices by dimension set.
  std::map<std::vector<DimId>, std::vector<std::uint32_t>> by_subspace;
  for (std::size_t u = 0; u < cdus.size(); ++u) {
    const auto d = cdus.dims(u);
    std::vector<DimId> key(d.begin(), d.end());
    by_subspace[std::move(key)].push_back(static_cast<std::uint32_t>(u));
  }

  subspaces_.reserve(by_subspace.size());
  for (auto& [dims, members] : by_subspace) {
    Subspace sub;
    sub.dims = dims;
    for (const DimId d : dims) dim_used_[d] = 1;

    // Lex-sort the member CDUs by their bin rows so record lookup is a
    // search over contiguous rows; for the packed kernels ascending key
    // order is the same order (pack_bin_key is byte-lexicographic).
    std::sort(members.begin(), members.end(),
              [&cdus, this](std::uint32_t a, std::uint32_t b) {
                return std::memcmp(cdus.bins(a).data(), cdus.bins(b).data(),
                                   k_ * sizeof(BinId)) < 0;
              });
    sub.cdu_index = members;

    if (packed_) {
      sub.keys.reserve(members.size());
      for (const std::uint32_t u : members) {
        sub.keys.push_back(pack_bin_key(cdus.bins(u).data(), k_));
      }
      if (members.size() >= cfg_.hash_min_cdus) {
        // Open-addressing table at <= 50% load, mapping each distinct key
        // to the first row of its equal run in the sorted key array.
        std::size_t cap = 4;
        while (cap < members.size() * 2) cap *= 2;
        sub.slots.assign(cap, kEmptySlot);
        sub.slot_mask = cap - 1;
        for (std::size_t i = members.size(); i-- > 0;) {
          std::uint64_t h = mix64(sub.keys[i]) & sub.slot_mask;
          while (sub.slots[h] != kEmptySlot &&
                 sub.keys[sub.slots[h]] != sub.keys[i]) {
            h = (h + 1) & sub.slot_mask;
          }
          sub.slots[h] = static_cast<std::uint32_t>(i);
        }
        ++stats_.packed_hash_subspaces;
      } else {
        ++stats_.packed_sorted_subspaces;
      }
    } else {
      sub.sorted_bins.reserve(members.size() * k_);
      for (const std::uint32_t u : members) {
        const auto b = cdus.bins(u);
        sub.sorted_bins.insert(sub.sorted_bins.end(), b.begin(), b.end());
      }
      ++stats_.memcmp_subspaces;
    }
    subspaces_.push_back(std::move(sub));
  }
}

void UnitPopulator::accumulate(const Value* rows, std::size_t nrows) {
  const std::size_t d = grids_.num_dims();
  const std::size_t block = cfg_.block_records;

  for (std::size_t base = 0; base < nrows; base += block) {
    const std::size_t bn = std::min(block, nrows - base);

    // Bin the block once in every dimension that participates anywhere:
    // one column of bin indices per dimension, so the subspace sweep below
    // reads sequential bytes instead of re-binning per subspace.
    for (std::size_t j = 0; j < d; ++j) {
      if (!dim_used_[j]) continue;
      BinId* col = col_bins_.data() + j * block;
      const DimensionGrid& g = grids_[j];
      const Value* v = rows + base * d + j;
      for (std::size_t r = 0; r < bn; ++r, v += d) col[r] = g.bin_of(*v);
    }

    // Subspace-major sweep: each subspace's lookup structure stays hot
    // across the whole block.
    for (const Subspace& sub : subspaces_) {
      if (!packed_) {
        sweep_memcmp(sub, bn);
      } else if (!sub.slots.empty()) {
        sweep_packed_hash(sub, bn);
      } else {
        sweep_packed_sorted(sub, bn);
      }
    }
  }
}

void UnitPopulator::sweep_packed_sorted(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  const std::uint64_t* keys = sub.keys.data();
  const std::size_t m = sub.keys.size();
  for (std::size_t r = 0; r < bn; ++r) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      key = (key << 8) | col_bins_[dims[i] * block + r];
    }
    for (std::size_t pos = lower_bound_u64(keys, m, key);
         pos < m && keys[pos] == key; ++pos) {
      ++counts_[sub.cdu_index[pos]];
    }
  }
}

void UnitPopulator::sweep_packed_hash(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  const std::uint64_t* keys = sub.keys.data();
  const std::size_t m = sub.keys.size();
  for (std::size_t r = 0; r < bn; ++r) {
    std::uint64_t key = 0;
    for (std::size_t i = 0; i < k_; ++i) {
      key = (key << 8) | col_bins_[dims[i] * block + r];
    }
    std::uint64_t h = mix64(key) & sub.slot_mask;
    while (sub.slots[h] != kEmptySlot) {
      const std::size_t first = sub.slots[h];
      if (keys[first] == key) {
        for (std::size_t pos = first; pos < m && keys[pos] == key; ++pos) {
          ++counts_[sub.cdu_index[pos]];
        }
        break;
      }
      h = (h + 1) & sub.slot_mask;
    }
  }
}

void UnitPopulator::sweep_memcmp(const Subspace& sub, std::size_t bn) {
  const std::size_t block = cfg_.block_records;
  const DimId* dims = sub.dims.data();
  BinId* key = key_scratch_.data();
  for (std::size_t r = 0; r < bn; ++r) {
    // Project the record onto the subspace's dimensions.
    for (std::size_t i = 0; i < k_; ++i) key[i] = col_bins_[dims[i] * block + r];

    // Binary search the projected bin tuple among the sorted CDU rows.
    std::size_t lo = 0;
    std::size_t hi = sub.cdu_index.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      const int cmp = std::memcmp(sub.sorted_bins.data() + mid * k_, key,
                                  k_ * sizeof(BinId));
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // Increment every matching row (duplicate CDUs are normally removed by
    // dedup before populating, but the counting contract holds either way:
    // identical candidates sort adjacently).
    while (lo < sub.cdu_index.size() &&
           std::memcmp(sub.sorted_bins.data() + lo * k_, key,
                       k_ * sizeof(BinId)) == 0) {
      ++counts_[sub.cdu_index[lo]];
      ++lo;
    }
  }
}

}  // namespace mafia
