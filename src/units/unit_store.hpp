// UnitStore: the paper's byte-array representation of candidate and dense
// units.
//
// Section 4.2: "Each candidate dense unit (CDU) and, similarly a dense
// unit, in the k-th dimension is completely specified by the k dimensions
// of the unit and their corresponding k bin indices.  In our implementation
// we store this information in the form of an array of bytes, one array for
// the bin indices of all the CDUs and one for the CDU dimensions. ... By
// storing the information in the form of a linear array of bytes we not
// only optimize for space, but also gain enormously while communicating."
//
// A UnitStore of dimensionality k holds n units as two contiguous byte
// arrays of length n*k (dims and bins).  Invariant: each unit's dims are
// strictly ascending, which makes unit equality a k-byte memcmp and lets
// the join kernels use sorted-merge logic.  The raw arrays are exposed so
// mp::Comm can gather/broadcast them "in a single step with the use of much
// smaller message buffers", exactly as the paper describes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

/// Maximum unit dimensionality whose bin row packs into one 64-bit key
/// (one byte per bin, see pack_bin_key).
inline constexpr std::size_t kPackedKeyMaxDims = sizeof(std::uint64_t);

/// Packs a unit's k bin bytes (k <= kPackedKeyMaxDims) into one integer,
/// bins[0] in the most significant position: ascending key order among
/// same-k keys equals lexicographic byte order, so a sorted packed-key
/// array is interchangeable with memcmp-sorted k-byte rows.  The packing
/// relies on BinId being exactly one byte (the paper's byte-array unit
/// representation); a wider BinId must use the byte-row fallback.
static_assert(sizeof(BinId) == 1,
              "pack_bin_key packs one byte per bin index");

[[nodiscard]] inline std::uint64_t pack_bin_key(const BinId* bins,
                                                std::size_t k) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < k; ++i) {
    key = (key << 8) | static_cast<std::uint64_t>(bins[i]);
  }
  return key;
}

class UnitStore {
 public:
  /// Creates an empty store of `k`-dimensional units.
  explicit UnitStore(std::size_t k = 1) : k_(k) {
    require(k >= 1 && k <= kMaxDims, "UnitStore: bad unit dimensionality");
  }

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] std::size_t size() const { return dims_.size() / k_; }
  [[nodiscard]] bool empty() const { return dims_.empty(); }

  void reserve(std::size_t units) {
    dims_.reserve(units * k_);
    bins_.reserve(units * k_);
  }

  /// Appends one unit.  `dims` must be strictly ascending; `bins[i]` is the
  /// bin index in dimension `dims[i]`.
  void push(std::span<const DimId> dims, std::span<const BinId> bins) {
    require(dims.size() == k_ && bins.size() == k_, "UnitStore::push: wrong arity");
    for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
      require(dims[i] < dims[i + 1], "UnitStore::push: dims must be ascending");
    }
    dims_.insert(dims_.end(), dims.begin(), dims.end());
    bins_.insert(bins_.end(), bins.begin(), bins.end());
  }

  /// Appends a unit without the ascending check — hot-path variant for the
  /// join kernels, which construct sorted dims by construction.
  void push_unchecked(const DimId* dims, const BinId* bins) {
    dims_.insert(dims_.end(), dims, dims + k_);
    bins_.insert(bins_.end(), bins, bins + k_);
  }

  [[nodiscard]] std::span<const DimId> dims(std::size_t u) const {
    return {dims_.data() + u * k_, k_};
  }
  [[nodiscard]] std::span<const BinId> bins(std::size_t u) const {
    return {bins_.data() + u * k_, k_};
  }

  /// The linear byte arrays (the paper's communication payloads).
  [[nodiscard]] const std::vector<DimId>& dim_bytes() const { return dims_; }
  [[nodiscard]] const std::vector<BinId>& bin_bytes() const { return bins_; }

  /// Rebuilds a store from raw byte arrays (after a gather/broadcast).
  static UnitStore from_bytes(std::size_t k, std::vector<DimId> dims,
                              std::vector<BinId> bins) {
    require(dims.size() == bins.size(), "UnitStore::from_bytes: array size mismatch");
    require(k >= 1 && dims.size() % k == 0, "UnitStore::from_bytes: not a multiple of k");
    UnitStore store(k);
    store.dims_ = std::move(dims);
    store.bins_ = std::move(bins);
    return store;
  }

  /// Appends all units of `other` (same k) — rank-order concatenation.
  void append(const UnitStore& other) {
    require(other.k_ == k_, "UnitStore::append: dimensionality mismatch");
    dims_.insert(dims_.end(), other.dims_.begin(), other.dims_.end());
    bins_.insert(bins_.end(), other.bins_.begin(), other.bins_.end());
  }

  /// Unit equality within this store (dims and bins both equal).
  [[nodiscard]] bool equal(std::size_t a, std::size_t b) const {
    return std::memcmp(dims_.data() + a * k_, dims_.data() + b * k_, k_) == 0 &&
           std::memcmp(bins_.data() + a * k_, bins_.data() + b * k_, k_) == 0;
  }

  /// Unit equality across stores of the same dimensionality.
  [[nodiscard]] bool equal(std::size_t a, const UnitStore& other,
                           std::size_t b) const {
    return other.k_ == k_ &&
           std::memcmp(dims_.data() + a * k_, other.dims_.data() + b * k_, k_) == 0 &&
           std::memcmp(bins_.data() + a * k_, other.bins_.data() + b * k_, k_) == 0;
  }

  /// FNV-1a hash over the unit's dims and bins bytes.
  [[nodiscard]] std::uint64_t hash(std::size_t u) const {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](const std::uint8_t* p, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
      }
    };
    mix(dims_.data() + u * k_, k_);
    mix(bins_.data() + u * k_, k_);
    return h;
  }

  /// Human-readable rendering, e.g. "{d1:b7, d3:b2}".
  [[nodiscard]] std::string to_string(std::size_t u) const {
    std::string out = "{";
    for (std::size_t i = 0; i < k_; ++i) {
      if (i) out += ", ";
      out += "d" + std::to_string(dims_[u * k_ + i]);
      out += ":b" + std::to_string(bins_[u * k_ + i]);
    }
    out += "}";
    return out;
  }

 private:
  std::size_t k_;
  std::vector<DimId> dims_;
  std::vector<BinId> bins_;
};

}  // namespace mafia
