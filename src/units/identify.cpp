#include "units/identify.hpp"

#include <algorithm>
#include <limits>

namespace mafia {

double unit_threshold(const UnitStore& cdus, std::size_t u, const GridSet& grids,
                      DensityPolicy policy, const DensityContext& ctx) {
  const auto dims = cdus.dims(u);
  const auto bins = cdus.bins(u);
  switch (policy) {
    case DensityPolicy::AllBins: {
      double t = 0.0;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        t = std::max(t, grids[dims[i]].threshold(bins[i]));
      }
      return t;
    }
    case DensityPolicy::AnyBin: {
      double t = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < dims.size(); ++i) {
        t = std::min(t, grids[dims[i]].threshold(bins[i]));
      }
      return t;
    }
    case DensityPolicy::ScaledProduct: {
      // alpha * N * prod(a_i / D_i): the expected population under full
      // independence, scaled by the dominance factor.
      double fraction = 1.0;
      for (std::size_t i = 0; i < dims.size(); ++i) {
        const DimensionGrid& g = grids[dims[i]];
        const double domain = static_cast<double>(g.domain_hi) - g.domain_lo;
        const double width = static_cast<double>(g.bin_width(bins[i]));
        fraction *= domain > 0 ? width / domain : 1.0;
      }
      return ctx.alpha * static_cast<double>(ctx.total_records) * fraction;
    }
  }
  return 0.0;  // unreachable
}

std::size_t identify_dense_units(const UnitStore& cdus,
                                 const std::vector<Count>& counts,
                                 const GridSet& grids, DensityPolicy policy,
                                 const DensityContext& ctx, std::size_t u_begin,
                                 std::size_t u_end,
                                 std::vector<std::uint8_t>& flags) {
  require(counts.size() == cdus.size(), "identify_dense_units: counts mismatch");
  require(flags.size() == cdus.size(), "identify_dense_units: flags mismatch");
  require(u_begin <= u_end && u_end <= cdus.size(), "identify_dense_units: bad range");

  std::size_t found = 0;
  for (std::size_t u = u_begin; u < u_end; ++u) {
    const double threshold = unit_threshold(cdus, u, grids, policy, ctx);
    if (static_cast<double>(counts[u]) >= threshold) {
      flags[u] = 1;
      ++found;
    }
  }
  return found;
}

UnitStore build_dense_store(const UnitStore& cdus,
                            const std::vector<std::uint8_t>& flags,
                            std::size_t u_begin, std::size_t u_end) {
  require(flags.size() == cdus.size(), "build_dense_store: flags mismatch");
  require(u_begin <= u_end && u_end <= cdus.size(), "build_dense_store: bad range");
  UnitStore dense(cdus.k());
  for (std::size_t u = u_begin; u < u_end; ++u) {
    if (flags[u]) dense.push_unchecked(cdus.dims(u).data(), cdus.bins(u).data());
  }
  return dense;
}

}  // namespace mafia
