#include "clique/greedy_cover.hpp"

#include <set>
#include <string>
#include <unordered_set>

namespace mafia {

namespace {

/// Set-of-cells view over a cluster's dense units, keyed by the bin tuple.
class CellSet {
 public:
  explicit CellSet(const Cluster& cluster) : k_(cluster.dims.size()) {
    for (std::size_t u = 0; u < cluster.units.size(); ++u) {
      const auto bins = cluster.units.bins(u);
      cells_.insert(std::string(bins.begin(), bins.end()));
    }
  }

  [[nodiscard]] bool contains(const std::vector<BinId>& bins) const {
    return cells_.count(std::string(bins.begin(), bins.end())) > 0;
  }

  [[nodiscard]] std::size_t k() const { return k_; }

 private:
  std::size_t k_;
  std::unordered_set<std::string> cells_;
};

/// True when every cell of `rect` is a dense cell.
bool rect_all_dense(const CellSet& cells, const BinRect& rect) {
  std::vector<BinId> cursor = rect.lo;
  while (true) {
    if (!cells.contains(cursor)) return false;
    std::size_t d = 0;
    for (; d < cursor.size(); ++d) {
      if (cursor[d] < rect.hi[d]) {
        ++cursor[d];
        break;
      }
      cursor[d] = rect.lo[d];
    }
    if (d == cursor.size()) return true;  // wrapped: enumerated all cells
  }
}

/// Enumerates the cells of `rect`, applying `fn` to each bin tuple.
template <typename Fn>
void for_each_cell(const BinRect& rect, Fn&& fn) {
  std::vector<BinId> cursor = rect.lo;
  while (true) {
    fn(cursor);
    std::size_t d = 0;
    for (; d < cursor.size(); ++d) {
      if (cursor[d] < rect.hi[d]) {
        ++cursor[d];
        break;
      }
      cursor[d] = rect.lo[d];
    }
    if (d == cursor.size()) return;
  }
}

}  // namespace

std::vector<BinRect> greedy_cover(const Cluster& cluster) {
  const std::size_t k = cluster.dims.size();
  const CellSet cells(cluster);

  // Uncovered dense cells, in unit order for determinism.
  std::set<std::string> uncovered;
  for (std::size_t u = 0; u < cluster.units.size(); ++u) {
    const auto bins = cluster.units.bins(u);
    uncovered.insert(std::string(bins.begin(), bins.end()));
  }

  std::vector<BinRect> cover;
  while (!uncovered.empty()) {
    const std::string seed = *uncovered.begin();
    BinRect rect;
    rect.lo.assign(seed.begin(), seed.end());
    rect.hi = rect.lo;

    // Grow greedily, one dimension at a time, alternating directions.
    for (std::size_t d = 0; d < k; ++d) {
      // Extend upward while the slab of new cells stays dense.
      while (rect.hi[d] < static_cast<BinId>(kMaxBinsPerDim - 1)) {
        BinRect extended = rect;
        extended.lo[d] = static_cast<BinId>(rect.hi[d] + 1);
        extended.hi[d] = extended.lo[d];
        if (!rect_all_dense(cells, extended)) break;
        rect.hi[d] = extended.hi[d];
      }
      // Extend downward likewise.
      while (rect.lo[d] > 0) {
        BinRect extended = rect;
        extended.hi[d] = static_cast<BinId>(rect.lo[d] - 1);
        extended.lo[d] = extended.hi[d];
        if (!rect_all_dense(cells, extended)) break;
        rect.lo[d] = extended.lo[d];
      }
    }

    for_each_cell(rect, [&uncovered](const std::vector<BinId>& bins) {
      uncovered.erase(std::string(bins.begin(), bins.end()));
    });
    cover.push_back(std::move(rect));
  }

  // Redundancy removal: drop any rectangle whose every cell also lies in
  // another rectangle of the cover.
  const auto in_rect = [](const BinRect& r, const std::vector<BinId>& bins) {
    for (std::size_t d = 0; d < bins.size(); ++d) {
      if (bins[d] < r.lo[d] || bins[d] > r.hi[d]) return false;
    }
    return true;
  };
  std::vector<BinRect> pruned;
  for (std::size_t i = 0; i < cover.size(); ++i) {
    bool redundant = true;
    for_each_cell(cover[i], [&](const std::vector<BinId>& bins) {
      if (!redundant) return;
      bool elsewhere = false;
      for (std::size_t j = 0; j < cover.size() && !elsewhere; ++j) {
        if (j != i && in_rect(cover[j], bins)) elsewhere = true;
      }
      if (!elsewhere) redundant = false;
    });
    if (!redundant) pruned.push_back(cover[i]);
  }
  return pruned.empty() ? cover : pruned;
}

}  // namespace mafia
