// CLIQUE baseline (Agrawal, Gehrke, Gunopulos, Raghavan — SIGMOD 1998), the
// comparison algorithm throughout the paper's evaluation.
//
// CLIQUE differs from MAFIA in exactly three user-visible ways, all
// reproduced here on top of the shared level-wise driver:
//   * the grid: ξ equal-width bins per dimension (user input) instead of
//     adaptive bins;
//   * the density test: one global threshold τ (a fraction of N) instead of
//     per-bin thresholds;
//   * candidate generation: only (k−1)-dim units sharing their FIRST (k−2)
//     dimensions join — which misses candidates (Section 3's example).
// Setting `modified_join = true` swaps in MAFIA's any-(k−2) join over the
// uniform grid: the paper's "modified implementation of [CLIQUE]" used for
// the Table 2 / Section 5.5 comparison.
//
// Extras from the CLIQUE paper itself (our paper discusses both but
// disables them for quality reasons):
//   * MDL-based subspace pruning (run_clique honours `mdl_pruning`);
//   * the greedy maximal-rectangle cluster cover (greedy_cover.hpp).
#pragma once

#include "core/mafia.hpp"

namespace mafia {

struct CliqueOptions {
  /// ξ: equal-width bins per dimension.
  std::size_t xi = 10;
  /// τ: global density threshold as a fraction of the record count.
  double tau_fraction = 0.01;
  /// Optional per-dimension bin counts (Table 3's "variable bins" run);
  /// overrides xi when non-empty.
  std::vector<std::size_t> bins_per_dim;
  /// Use MAFIA's any-(k−2)-shared join over the uniform grid ("modified
  /// CLIQUE", Section 5.5).
  bool modified_join = false;
  /// Prune uninteresting subspaces with the MDL criterion after the first
  /// populated level.  Off by default — the paper: "as noted in [CLIQUE]
  /// this could result in missing some dense units in the pruned subspaces.
  /// In order to maintain the high quality of clustering we do not use this
  /// pruning technique."
  bool mdl_pruning = false;
  /// B: records per out-of-core chunk.
  std::size_t chunk_records = 1 << 16;
  /// Known attribute domain (skips the min/max pass when set).
  std::optional<std::pair<Value, Value>> fixed_domain;
};

/// Maps CliqueOptions onto the shared driver's option set.
[[nodiscard]] MafiaOptions to_mafia_options(const CliqueOptions& options);

/// Runs CLIQUE on `p` SPMD ranks ("We ran our parallelized version of
/// CLIQUE on 16 processors", Section 5.8).
[[nodiscard]] MafiaResult run_clique(const DataSource& data,
                                     const CliqueOptions& options, int p = 1);

}  // namespace mafia
