#include "clique/clique.hpp"

namespace mafia {

MafiaOptions to_mafia_options(const CliqueOptions& options) {
  require(options.xi >= 1 && options.xi <= kMaxBinsPerDim, "CliqueOptions: bad xi");
  require(options.tau_fraction > 0.0 && options.tau_fraction < 1.0,
          "CliqueOptions: tau must be a fraction in (0,1)");

  MafiaOptions mo;
  MafiaOptions::UniformGridOverride grid;
  grid.xi = options.xi;
  grid.tau_fraction = options.tau_fraction;
  grid.bins_per_dim = options.bins_per_dim;
  mo.uniform_grid = std::move(grid);
  // With a single global threshold, AllBins/AnyBin coincide; AllBins keeps
  // the code path shared with MAFIA.
  mo.density = DensityPolicy::AllBins;
  mo.join_rule = options.modified_join ? JoinRule::MafiaAnyShared
                                       : JoinRule::CliquePrefix;
  mo.mdl_pruning = options.mdl_pruning;
  mo.chunk_records = options.chunk_records;
  mo.fixed_domain = options.fixed_domain;
  return mo;
}

MafiaResult run_clique(const DataSource& data, const CliqueOptions& options,
                       int p) {
  return run_pmafia(data, to_mafia_options(options), p);
}

}  // namespace mafia
