// CLIQUE's greedy maximal-rectangle cluster cover.
//
// Our paper, Section 3.2: "CLIQUE also uses a greedy algorithm as a
// post-processing phase to generate the minimal description length of the
// clusters ... It covers the found grids in clusters by maximal rectangles
// that provide coverage.  Since this is an approximation of the cluster, it
// further adds to the complexity and reduces the correctness of the
// reported clusters."  Implemented so bench_fig1_grid_quality can measure
// that correctness gap against pMAFIA's exact minimal-DNF output.
//
// Algorithm (from the CLIQUE paper): repeatedly pick an uncovered dense
// unit, grow a maximal rectangle around it greedily one dimension at a time
// (extending while every cell in the extension is dense), add the rectangle
// to the cover, and mark its cells covered; finally drop rectangles whose
// cells are all covered by other rectangles (redundancy removal).
#pragma once

#include <vector>

#include "cluster/cluster_model.hpp"

namespace mafia {

/// Computes the greedy rectangle cover of `cluster`'s dense units.  The
/// returned rectangles may overlap (unlike Cluster::dnf) and, because
/// growth is greedy per dimension, need not be minimal in number.
[[nodiscard]] std::vector<BinRect> greedy_cover(const Cluster& cluster);

}  // namespace mafia
