// serve-v1 wire protocol: the length-prefixed binary framing spoken between
// `pmafia serve` and its clients (documented in docs/architecture.md).
//
// Every frame is a 16-byte header {u32 type, u32 aux, u64 len} followed by
// `len` payload bytes — the same framing shape as the process backend's
// coordinator protocol (mp/process_backend.cpp), so one set of conventions
// covers both wire formats.  Payload encoding reuses common/bytes.hpp where
// variable-length fields appear.
//
//   Query      (client→server): u32 num_rows, u32 num_dims,
//                               num_rows×num_dims f32 values (row-major).
//   Response   (server→client): u32 num_rows, then per row
//                               {i32 label, u32 match_count}.  label is the
//                               first-match cluster index or kNoiseLabel;
//                               match_count is the number of clusters whose
//                               DNF contains the row (0 for noise).
//   Error      (server→client): aux = ErrorClass code, payload = message
//                               text; the server closes the connection after
//                               sending it (protocol state is unknown).
//   Stats      (client→server): empty payload; requests a stats snapshot.
//   StatsReply (server→client): payload = pmafia-serve-v1 JSON document.
//
// The decode functions are pure (no sockets) so the adversarial-frame tests
// exercise them directly; every malformed payload throws InputError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace mafia::serve {

/// 16-byte frame header, identical layout to the process backend's.
struct FrameHeader {
  std::uint32_t type = 0;
  std::uint32_t aux = 0;
  std::uint64_t len = 0;
};

enum FrameType : std::uint32_t {
  kFrameQuery = 1,
  kFrameResponse = 2,
  kFrameError = 3,
  kFrameStats = 4,
  kFrameStatsReply = 5,
};

/// Protocol identity, negotiated implicitly: the magic lives in docs, the
/// version in the header-free framing — bump kProtocolVersion on any wire
/// change and reject mismatched aux on Query frames.
constexpr std::uint32_t kProtocolVersion = 1;

/// A batch of rows to classify.  `values` is row-major, num_rows × num_dims.
struct QueryBatch {
  std::uint32_t num_dims = 0;
  std::vector<Value> values;

  [[nodiscard]] std::size_t num_rows() const {
    return num_dims == 0 ? 0 : values.size() / num_dims;
  }
};

/// One row's answer: first-match cluster label (or kNoiseLabel) plus how
/// many clusters contained the row in total.
struct RowAnswer {
  std::int32_t label = kNoiseLabel;
  std::uint32_t match_count = 0;
};

/// Exact payload size of a query with the given shape; also the admission
/// bound the server applies to header.len BEFORE allocating the payload
/// buffer (a hostile length prefix must be rejected, not malloc'd).
[[nodiscard]] std::uint64_t query_payload_bytes(std::uint64_t num_rows,
                                                std::uint64_t num_dims);

[[nodiscard]] std::vector<std::uint8_t> encode_query(const QueryBatch& batch);

/// Decodes and validates a query payload.  Throws InputError when the
/// declared shape disagrees with the payload size, the batch exceeds
/// `max_batch` rows, or `expect_dims` (non-zero = the model's width)
/// doesn't match the query's.  A zero-row batch is valid.
[[nodiscard]] QueryBatch decode_query(const std::uint8_t* data,
                                      std::size_t size, std::size_t max_batch,
                                      std::uint32_t expect_dims);

[[nodiscard]] std::vector<std::uint8_t> encode_response(
    const std::vector<RowAnswer>& answers);

[[nodiscard]] std::vector<RowAnswer> decode_response(const std::uint8_t* data,
                                                     std::size_t size);

}  // namespace mafia::serve
