// Sharded read-mostly model cache for the serve daemon.
//
// Every query batch needs a consistent {grids, clusters} snapshot, and a
// SIGHUP reload must swap models without stalling in-flight batches.  A
// single shared_ptr guarded by one mutex would serialize every worker on
// the refcount cache line; instead each shard holds its own
// shared_ptr<const Model> behind its own (padded) mutex, workers acquire
// from "their" shard, and a reload swaps the shards one by one.  Workers
// therefore may briefly serve different model generations during a swap —
// acceptable for a read-mostly cache, and each batch is internally
// consistent because it pins one snapshot for its whole lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/model_io.hpp"

namespace mafia::serve {

class ModelCache {
 public:
  /// Loads the model eagerly; throws (ErrorClass::Input) on a corrupt or
  /// missing file, so a daemon never starts with nothing to serve.
  ModelCache(std::string path, std::size_t num_shards);

  /// Pins the current model snapshot.  `shard_hint` (e.g. the worker index)
  /// spreads refcount traffic across shards; any value is safe.
  [[nodiscard]] std::shared_ptr<const Model> acquire(
      std::size_t shard_hint) const;

  /// Re-reads the model file and swaps it in.  On failure the old model
  /// stays live (availability beats freshness for a serving daemon) and the
  /// error propagates so the caller can count/log it.
  void reload();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::shared_ptr<const Model> model;
  };

  std::string path_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mafia::serve
