// Serving-side latency accounting: a log-bucketed histogram cheap enough to
// update per batch on the worker threads, mergeable across workers, and
// accurate enough at the tail for a p99 gate (bucket width is 2^(1/8), so a
// quantile is within ~9% of the true value — far inside the gate margins).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "core/report.hpp"

namespace mafia::serve {

/// Log-spaced latency histogram: 8 sub-buckets per octave starting at 1 µs,
/// 256 buckets ≈ 71 minutes of range.  Quantiles interpolate at the
/// geometric midpoint of the hit bucket; min/max/sum are tracked exactly.
class LatencyHistogram {
 public:
  static constexpr std::size_t kSubPerOctave = 8;
  static constexpr std::size_t kBuckets = kSubPerOctave * 32;

  void record(double seconds) {
    ++buckets_[bucket_of(seconds)];
    ++count_;
    sum_seconds_ += seconds;
    max_seconds_ = std::max(max_seconds_, seconds);
  }

  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_seconds_ += other.sum_seconds_;
    max_seconds_ = std::max(max_seconds_, other.max_seconds_);
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double max_seconds() const { return max_seconds_; }
  [[nodiscard]] double mean_seconds() const {
    return count_ == 0 ? 0.0 : sum_seconds_ / static_cast<double>(count_);
  }

  /// Value at quantile q in [0, 1]; 0 when empty.  The answer is clamped to
  /// the exact max so p99 can never exceed the worst observed batch.
  [[nodiscard]] double quantile_seconds(double q) const {
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen > target) {
        return std::min(bucket_mid_seconds(i), max_seconds_);
      }
    }
    return max_seconds_;
  }

  [[nodiscard]] ServeLatency digest_ms() const {
    ServeLatency lat;
    lat.p50_ms = quantile_seconds(0.50) * 1e3;
    lat.p90_ms = quantile_seconds(0.90) * 1e3;
    lat.p99_ms = quantile_seconds(0.99) * 1e3;
    lat.max_ms = max_seconds() * 1e3;
    lat.mean_ms = mean_seconds() * 1e3;
    return lat;
  }

 private:
  static std::size_t bucket_of(double seconds) {
    const double us = seconds * 1e6;
    if (!(us > 1.0)) return 0;  // also catches NaN and negatives
    const double octaves = std::log2(us);
    const auto idx = static_cast<std::size_t>(
        octaves * static_cast<double>(kSubPerOctave));
    return std::min(idx + 1, kBuckets - 1);
  }

  /// Geometric midpoint of bucket i's [lo, hi) microsecond range.
  static double bucket_mid_seconds(std::size_t i) {
    if (i == 0) return 0.5e-6;
    const double lo_oct =
        static_cast<double>(i - 1) / static_cast<double>(kSubPerOctave);
    const double mid_oct = lo_oct + 0.5 / static_cast<double>(kSubPerOctave);
    return std::exp2(mid_oct) * 1e-6;
  }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_seconds_ = 0.0;
  double max_seconds_ = 0.0;
};

}  // namespace mafia::serve
