#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>

#include "cluster/membership.hpp"
#include "common/error.hpp"

namespace mafia::serve {

namespace {

/// Receive timeout on accepted connections: a client that stalls mid-frame
/// must not pin a worker forever (it would also wedge graceful shutdown).
constexpr int kIoTimeoutSeconds = 5;

/// Poll interval between frames; bounds how long a worker takes to notice
/// a stop request while a client holds an idle connection open.
constexpr int kIdlePollMs = 100;

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

enum class ReadStatus {
  Ok,       ///< all bytes read
  Eof,      ///< clean close before the first byte (frame boundary)
  Partial,  ///< EOF, error, or timeout after some bytes — mid-frame loss
};

/// Full read distinguishing a clean frame-boundary EOF from a mid-frame
/// disconnect (the stats report counts the two differently).
ReadStatus read_exact(int fd, void* data, std::size_t bytes) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < bytes) {
    const ssize_t n = ::read(fd, p + got, bytes - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return got == 0 ? ReadStatus::Eof : ReadStatus::Partial;
    }
    if (n == 0) return got == 0 ? ReadStatus::Eof : ReadStatus::Partial;
    got += static_cast<std::size_t>(n);
  }
  return ReadStatus::Ok;
}

/// Full write with MSG_NOSIGNAL (a dead peer surfaces as an error return,
/// never SIGPIPE) — same convention as the process backend.
bool write_all(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::uint32_t type, std::uint32_t aux,
                 const void* payload, std::size_t bytes) {
  FrameHeader h{type, aux, bytes};
  if (!write_all(fd, &h, sizeof(h))) return false;
  if (bytes > 0 && !write_all(fd, payload, bytes)) return false;
  return true;
}

/// Sends an error frame (aux = ErrorClass) and leaves the connection to be
/// closed by the caller; best-effort, the peer may already be gone.
void send_error(int fd, ErrorClass cls, const std::string& message) {
  write_frame(fd, kFrameError, static_cast<std::uint32_t>(cls),
              message.data(), message.size());
}

/// Consumes (bounded) the payload of a frame rejected from its header
/// alone.  Closing with the peer's payload still in flight would reset the
/// connection before the error frame arrives — the client would see EPIPE
/// instead of the explanation.  The bound keeps a hostile length prefix
/// from turning the courtesy drain into an unbounded read.
void drain_payload(int fd, std::uint64_t declared_len) {
  constexpr std::uint64_t kMaxDrain = 4u << 20;
  std::uint8_t buf[4096];
  std::uint64_t remaining = std::min(declared_len, kMaxDrain);
  while (remaining > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining, sizeof(buf)));
    const ssize_t n = ::read(fd, buf, want);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    remaining -= static_cast<std::uint64_t>(n);
  }
}

void set_io_timeouts(int fd) {
  timeval tv{};
  tv.tv_sec = kIoTimeoutSeconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void close_quietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

ServeServer::ServeServer(const ServeOptions& options)
    : options_(options),
      cache_(options.model_path, options.serve_threads) {
  options_.validate();

  int pipe_fds[2];
  require(::pipe2(pipe_fds, O_CLOEXEC) == 0,
          "serve: cannot create control pipe");
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  const std::string& spec = options_.listen;
  try {
    if (spec.rfind("tcp:", 0) == 0) {
      const std::string hostport = spec.substr(4);
      const std::size_t colon = hostport.rfind(':');
      require(colon != std::string::npos,
              "serve: tcp listen spec must be tcp:HOST:PORT, got " + spec);
      const std::string host = hostport.substr(0, colon);
      const std::string port_text = hostport.substr(colon + 1);
      char* end = nullptr;
      const long port = std::strtol(port_text.c_str(), &end, 10);
      require(end == port_text.c_str() + port_text.size() && port >= 0 &&
                  port <= 65535,
              "serve: bad tcp port '" + port_text + "'");

      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
              "serve: bad tcp host '" + host + "' (IPv4 literal required)");

      listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (listen_fd_ < 0) {
        throw ResourceError("serve: cannot create tcp socket");
      }
      const int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw ResourceError("serve: cannot bind " + spec + ": " +
                            std::strerror(errno));
      }
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
      endpoint_ =
          "tcp:" + host + ":" + std::to_string(ntohs(bound.sin_port));
    } else {
      unix_path_ = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
      is_unix_ = true;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      require(unix_path_.size() < sizeof(addr.sun_path),
              "serve: unix socket path too long: " + unix_path_);
      std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);

      listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
      if (listen_fd_ < 0) {
        throw ResourceError("serve: cannot create unix socket");
      }
      // A previous daemon SIGKILLed mid-query leaves the path behind;
      // restart-on-the-same-path must always work, so take it over.
      ::unlink(unix_path_.c_str());
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        throw ResourceError("serve: cannot bind " + unix_path_ + ": " +
                            std::strerror(errno));
      }
      endpoint_ = "unix:" + unix_path_;
    }
    if (::listen(listen_fd_, 128) != 0) {
      throw ResourceError("serve: listen failed on " + endpoint_ + ": " +
                          std::strerror(errno));
    }
  } catch (...) {
    close_quietly(listen_fd_);
    close_quietly(wake_read_fd_);
    close_quietly(wake_write_fd_);
    throw;
  }

  worker_stats_.resize(options_.serve_threads);
  for (auto& s : worker_stats_) s = std::make_unique<WorkerStats>();
}

ServeServer::~ServeServer() {
  close_quietly(listen_fd_);
  close_quietly(wake_read_fd_);
  close_quietly(wake_write_fd_);
  if (is_unix_ && !unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void ServeServer::stop() {
  const char byte = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void ServeServer::request_reload() {
  const char byte = 'r';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

void ServeServer::serve() {
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    start_seconds_ = now_seconds();
  }
  workers_.reserve(options_.serve_threads);
  for (std::size_t i = 0; i < options_.serve_threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }

  accept_loop();

  // Drain: workers finish (and answer) the frame in flight, then exit;
  // connections still queued are closed unanswered below.
  stop_.store(true);
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int fd : pending_) close_quietly(fd);
    pending_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    stop_seconds_ = now_seconds();
  }
}

void ServeServer::drain_wake_pipe(bool& want_stop, bool& want_reload) {
  char buf[64];
  const ssize_t n = ::read(wake_read_fd_, buf, sizeof(buf));
  for (ssize_t i = 0; i < n; ++i) {
    if (buf[i] == 'q') want_stop = true;
    if (buf[i] == 'r') want_reload = true;
  }
}

void ServeServer::accept_loop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {wake_read_fd_, POLLIN, 0};
  while (true) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      bool want_stop = false;
      bool want_reload = false;
      drain_wake_pipe(want_stop, want_reload);
      if (want_reload) {
        try {
          cache_.reload();
          std::lock_guard<std::mutex> lock(control_mutex_);
          ++model_reloads_;
        } catch (const Error&) {
          // The old model stays live; the failure is visible in the stats.
          std::lock_guard<std::mutex> lock(control_mutex_);
          ++reload_failures_;
        }
      }
      if (want_stop) return;
    }
    if (fds[0].revents != 0) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      set_io_timeouts(fd);
      {
        std::lock_guard<std::mutex> lock(control_mutex_);
        ++connections_;
      }
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        pending_.push_back(fd);
      }
      queue_cv_.notify_one();
    }
  }
}

void ServeServer::worker_main(std::size_t worker_id) {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return stop_.load() || !pending_.empty(); });
      if (pending_.empty()) return;  // stop requested, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd, worker_id);
    close_quietly(fd);
  }
}

void ServeServer::handle_connection(int fd, std::size_t worker_id) {
  WorkerStats& stats = *worker_stats_[worker_id];
  while (true) {
    // Between frames, poll with a short timeout so a stop request is
    // noticed even while a client keeps an idle connection open.
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, kIdlePollMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (rc == 0) {
      if (stop_.load()) return;
      continue;
    }

    FrameHeader header;
    const ReadStatus hs = read_exact(fd, &header, sizeof(header));
    if (hs == ReadStatus::Eof) return;  // clean close between frames
    if (hs == ReadStatus::Partial) {
      std::lock_guard<std::mutex> lock(stats.mutex);
      ++stats.midframe_disconnects;
      return;
    }

    if (header.type == kFrameStats) {
      if (header.len != 0) {
        {
          std::lock_guard<std::mutex> lock(stats.mutex);
          ++stats.rejected_frames;
        }
        drain_payload(fd, header.len);
        send_error(fd, ErrorClass::Usage, "serve: stats frame takes no payload");
        return;
      }
      const std::string json = render_serve_report_json(snapshot());
      if (!write_frame(fd, kFrameStatsReply, 0, json.data(), json.size())) {
        std::lock_guard<std::mutex> lock(stats.mutex);
        ++stats.midframe_disconnects;
        return;
      }
      continue;
    }

    if (header.type != kFrameQuery) {
      {
        std::lock_guard<std::mutex> lock(stats.mutex);
        ++stats.rejected_frames;
      }
      drain_payload(fd, header.len);
      send_error(fd, ErrorClass::Usage,
                 "serve: unknown frame type " + std::to_string(header.type));
      return;
    }
    if (header.aux != kProtocolVersion) {
      {
        std::lock_guard<std::mutex> lock(stats.mutex);
        ++stats.rejected_frames;
      }
      drain_payload(fd, header.len);
      send_error(fd, ErrorClass::Usage,
                 "serve: unsupported protocol version " +
                     std::to_string(header.aux));
      return;
    }

    // Pin one model snapshot for the whole batch: admission, decode, and
    // answers all see the same generation even mid-reload.
    const std::shared_ptr<const Model> model = cache_.acquire(worker_id);
    const auto model_dims =
        static_cast<std::uint32_t>(model->grids.num_dims());

    // Admission on the DECLARED length, before any allocation: a hostile
    // length prefix is bounded by the largest well-formed query.
    const std::uint64_t max_len =
        query_payload_bytes(options_.max_batch, model_dims);
    if (header.len > max_len) {
      {
        std::lock_guard<std::mutex> lock(stats.mutex);
        ++stats.oversized_batches;
      }
      drain_payload(fd, header.len);
      send_error(fd, ErrorClass::Usage,
                 "serve: frame of " + std::to_string(header.len) +
                     " bytes exceeds the --max-batch " +
                     std::to_string(options_.max_batch) + " limit of " +
                     std::to_string(max_len));
      return;
    }

    std::vector<std::uint8_t> payload(static_cast<std::size_t>(header.len));
    if (header.len > 0) {
      const ReadStatus ps = read_exact(fd, payload.data(), payload.size());
      if (ps != ReadStatus::Ok) {
        std::lock_guard<std::mutex> lock(stats.mutex);
        ++stats.midframe_disconnects;
        return;
      }
    }

    const double t0 = now_seconds();
    QueryBatch batch;
    try {
      batch = decode_query(payload.data(), payload.size(),
                           options_.max_batch, model_dims);
    } catch (const Error& e) {
      const bool oversized =
          payload.size() >= sizeof(std::uint32_t) &&
          [&] {
            std::uint32_t declared_rows = 0;
            std::memcpy(&declared_rows, payload.data(), sizeof(declared_rows));
            return declared_rows > options_.max_batch;
          }();
      {
        std::lock_guard<std::mutex> lock(stats.mutex);
        if (oversized) {
          ++stats.oversized_batches;
        } else {
          ++stats.rejected_frames;
        }
      }
      send_error(fd, e.error_class(), e.what());
      return;
    }

    const std::vector<RowAnswer> answers =
        answer_batch(*model, batch, stats);
    const std::vector<std::uint8_t> response = encode_response(answers);
    if (!write_frame(fd, kFrameResponse, 0, response.data(),
                     response.size())) {
      std::lock_guard<std::mutex> lock(stats.mutex);
      ++stats.midframe_disconnects;
      return;
    }
    const double elapsed = now_seconds() - t0;
    std::uint64_t noise = 0;
    for (const RowAnswer& a : answers) noise += a.label == kNoiseLabel ? 1 : 0;
    {
      std::lock_guard<std::mutex> lock(stats.mutex);
      ++stats.batches;
      stats.rows += answers.size();
      stats.noise_rows += noise;
      stats.latency.record(elapsed);
    }
  }
}

std::vector<RowAnswer> ServeServer::answer_batch(const Model& model,
                                                 const QueryBatch& batch,
                                                 WorkerStats&) const {
  std::vector<RowAnswer> answers(batch.num_rows());
  const std::size_t d = batch.num_dims;
  for (std::size_t r = 0; r < answers.size(); ++r) {
    const Value* row = batch.values.data() + r * d;
    RowAnswer& a = answers[r];
    // First match in cluster order IS the label — the same walk as
    // assign_members, so wire labels are bit-identical to the offline
    // path; match_count keeps scanning to report overlap.
    for (std::size_t c = 0; c < model.clusters.size(); ++c) {
      if (contains_record(model.clusters[c], model.grids, row)) {
        if (a.match_count == 0) a.label = static_cast<std::int32_t>(c);
        ++a.match_count;
      }
    }
  }
  return answers;
}

ServeReport ServeServer::snapshot() const {
  ServeReport report;
  report.listen = endpoint_;
  report.model_path = options_.model_path;
  {
    const std::shared_ptr<const Model> model = cache_.acquire(0);
    report.num_dims = model->grids.num_dims();
    report.num_clusters = model->clusters.size();
  }
  report.serve_threads = options_.serve_threads;
  report.max_batch = options_.max_batch;

  LatencyHistogram merged;
  for (const auto& shard : worker_stats_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    report.batches += shard->batches;
    report.rows += shard->rows;
    report.noise_rows += shard->noise_rows;
    report.rejected_frames += shard->rejected_frames;
    report.oversized_batches += shard->oversized_batches;
    report.midframe_disconnects += shard->midframe_disconnects;
    merged.merge(shard->latency);
  }
  {
    std::lock_guard<std::mutex> lock(control_mutex_);
    report.connections = connections_;
    report.model_reloads = model_reloads_;
    report.reload_failures = reload_failures_;
    if (start_seconds_ > 0.0) {
      const double end = stop_seconds_ > 0.0 ? stop_seconds_ : now_seconds();
      report.elapsed_seconds = end - start_seconds_;
    }
  }
  if (report.elapsed_seconds > 0.0) {
    report.queries_per_second =
        static_cast<double>(report.rows) / report.elapsed_seconds;
    report.batches_per_second =
        static_cast<double>(report.batches) / report.elapsed_seconds;
  }
  report.latency = merged.digest_ms();
  return report;
}

}  // namespace mafia::serve
