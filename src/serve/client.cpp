#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/error.hpp"

namespace mafia::serve {

namespace {

bool write_all(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, std::size_t bytes) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

ErrorClass error_class_from_aux(std::uint32_t aux) {
  switch (aux) {
    case static_cast<std::uint32_t>(ErrorClass::Usage): return ErrorClass::Usage;
    case static_cast<std::uint32_t>(ErrorClass::Input): return ErrorClass::Input;
    case static_cast<std::uint32_t>(ErrorClass::Resource): return ErrorClass::Resource;
    case static_cast<std::uint32_t>(ErrorClass::Fault): return ErrorClass::Fault;
    default: return ErrorClass::Internal;
  }
}

}  // namespace

ServeClient::ServeClient(const std::string& endpoint) {
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string hostport = endpoint.substr(4);
    const std::size_t colon = hostport.rfind(':');
    require(colon != std::string::npos,
            "serve client: tcp endpoint must be tcp:HOST:PORT, got " +
                endpoint);
    const std::string host = hostport.substr(0, colon);
    const long port = std::strtol(hostport.c_str() + colon + 1, nullptr, 10);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    require(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
            "serve client: bad tcp host '" + host + "'");
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      throw ResourceError("serve client: cannot connect to " + endpoint +
                          ": " + std::strerror(errno));
    }
  } else {
    const std::string path =
        endpoint.rfind("unix:", 0) == 0 ? endpoint.substr(5) : endpoint;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(path.size() < sizeof(addr.sun_path),
            "serve client: unix socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0 || ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr)) != 0) {
      if (fd_ >= 0) ::close(fd_);
      fd_ = -1;
      throw ResourceError("serve client: cannot connect to " + endpoint +
                          ": " + std::strerror(errno));
    }
  }
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

void ServeClient::send_frame(std::uint32_t type, std::uint32_t aux,
                             const void* payload, std::size_t bytes) {
  FrameHeader h{type, aux, bytes};
  if (!write_all(fd_, &h, sizeof(h)) ||
      (bytes > 0 && !write_all(fd_, payload, bytes))) {
    throw ResourceError("serve client: connection lost while sending");
  }
}

std::pair<FrameHeader, std::vector<std::uint8_t>> ServeClient::read_frame() {
  FrameHeader header;
  if (!read_all(fd_, &header, sizeof(header))) {
    throw ResourceError("serve client: connection closed by server");
  }
  // Admission cap mirrors the server's: a hostile length prefix must not
  // drive an allocation.  Responses are bounded by max_batch rows, stats
  // replies by a JSON document; 64 MiB clears both by orders of magnitude.
  require_input(header.len <= (64u << 20),
                "serve client: implausible frame length " +
                    std::to_string(header.len));
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(header.len));
  if (header.len > 0 && !read_all(fd_, payload.data(), payload.size())) {
    throw ResourceError("serve client: connection closed mid-frame");
  }
  return {header, std::move(payload)};
}

void ServeClient::shutdown_write() { ::shutdown(fd_, SHUT_WR); }

std::vector<RowAnswer> ServeClient::query(const QueryBatch& batch) {
  const std::vector<std::uint8_t> payload = encode_query(batch);
  try {
    send_frame(kFrameQuery, kProtocolVersion, payload.data(), payload.size());
  } catch (const Error&) {
    // The server may reject a frame from its header alone; if the close
    // raced our payload write, the buffered error frame — not the broken
    // pipe — is the real story.  read_frame rethrows when nothing arrived.
    auto [eh, ebody] = read_frame();
    if (eh.type == kFrameError) {
      throw Error("serve: " + std::string(ebody.begin(), ebody.end()),
                  error_class_from_aux(eh.aux));
    }
    throw;
  }
  auto [header, body] = read_frame();
  if (header.type == kFrameError) {
    throw Error("serve: " + std::string(body.begin(), body.end()),
                error_class_from_aux(header.aux));
  }
  require_input(header.type == kFrameResponse,
                "serve client: unexpected frame type " +
                    std::to_string(header.type));
  return decode_response(body.data(), body.size());
}

std::string ServeClient::stats_json() {
  send_frame(kFrameStats, 0, nullptr, 0);
  auto [header, body] = read_frame();
  if (header.type == kFrameError) {
    throw Error("serve: " + std::string(body.begin(), body.end()),
                error_class_from_aux(header.aux));
  }
  require_input(header.type == kFrameStatsReply,
                "serve client: unexpected frame type " +
                    std::to_string(header.type));
  return std::string(body.begin(), body.end());
}

}  // namespace mafia::serve
