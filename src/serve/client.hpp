// serve-v1 client: connect to a `pmafia serve` endpoint and exchange
// frames.  Shared by the CLI `query` subcommand, bench_serve's load
// generator, and the protocol tests (whose adversarial cases use the raw
// send_frame/read_frame layer to craft malformed traffic on purpose).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"

namespace mafia::serve {

class ServeClient {
 public:
  /// Connects to "unix:/path" (or a bare path) or "tcp:HOST:PORT".
  /// Throws mafia::Error (Resource) when the daemon is unreachable.
  explicit ServeClient(const std::string& endpoint);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Classifies a batch.  An error frame from the server rethrows as
  /// mafia::Error carrying the server's ErrorClass; a dropped connection
  /// throws Resource.
  [[nodiscard]] std::vector<RowAnswer> query(const QueryBatch& batch);

  /// Fetches the daemon's pmafia-serve-v1 stats JSON.
  [[nodiscard]] std::string stats_json();

  // Raw frame layer (adversarial tests): send an arbitrary frame, read
  // whatever comes back.  read_frame throws Resource on disconnect.
  void send_frame(std::uint32_t type, std::uint32_t aux,
                  const void* payload, std::size_t bytes);
  [[nodiscard]] std::pair<FrameHeader, std::vector<std::uint8_t>> read_frame();

  /// Closes the write half only — lets a test observe how the server
  /// treats a peer that vanished mid-conversation.
  void shutdown_write();

 private:
  int fd_ = -1;
};

}  // namespace mafia::serve
