// `pmafia serve`: the long-lived cluster-membership daemon.
//
// The pipeline's batch half builds a model (`cluster --save`); this half
// serves it: load once into a sharded read-mostly cache (model_cache.hpp),
// listen on a Unix or TCP socket speaking serve-v1 (protocol.hpp), and
// answer point→cluster-membership queries with the exact first-match-wins
// rule of assign_members — labels over the wire are bit-identical to the
// offline path by construction, because both walk the same cluster order
// through contains_record.
//
// Threading: the caller's thread runs the accept loop (serve()); a pool of
// worker threads drains a queue of accepted connections, one connection per
// worker at a time.  Control arrives over an internal self-pipe — stop()
// and request_reload() write one byte, signal handlers may do the same via
// wake_fd() (write() is async-signal-safe; none of the library is).
// Shutdown drains: workers finish the frame in flight, answer it, then
// close; queued never-served connections are closed unanswered.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.hpp"
#include "core/report.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"

namespace mafia::serve {

class ServeServer {
 public:
  /// Loads the model and binds the listen socket; throws mafia::Error on a
  /// corrupt model (Input), a bad spec (Usage), or a bind failure
  /// (Resource).  For Unix sockets, a stale path from a SIGKILLed previous
  /// daemon is unlinked before bind so restart-on-the-same-path always
  /// works.
  explicit ServeServer(const ServeOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Runs the daemon on the calling thread until stop() (or a 'q' byte on
  /// wake_fd()) arrives, then drains and joins the workers.  Call once.
  void serve();

  /// Requests graceful shutdown (thread-safe, callable any time).
  void stop();

  /// Requests a model reload (the SIGHUP path): thread-safe; the swap
  /// happens on the accept thread, a failed parse keeps the old model.
  void request_reload();

  /// Write end of the control pipe for signal handlers: write 'q' to stop,
  /// 'r' to reload.
  [[nodiscard]] int wake_fd() const { return wake_write_fd_; }

  /// The bound endpoint in listen-spec form; for "tcp:HOST:0" this carries
  /// the kernel-assigned port, so tests and benches can connect.
  [[nodiscard]] const std::string& endpoint() const { return endpoint_; }

  /// Point-in-time stats snapshot; callable during or after serve().
  [[nodiscard]] ServeReport snapshot() const;

 private:
  struct alignas(64) WorkerStats {
    mutable std::mutex mutex;
    std::uint64_t batches = 0;
    std::uint64_t rows = 0;
    std::uint64_t noise_rows = 0;
    std::uint64_t rejected_frames = 0;
    std::uint64_t oversized_batches = 0;
    std::uint64_t midframe_disconnects = 0;
    LatencyHistogram latency;
  };

  void accept_loop();
  void drain_wake_pipe(bool& want_stop, bool& want_reload);
  void worker_main(std::size_t worker_id);
  void handle_connection(int fd, std::size_t worker_id);

  /// Answers one decoded batch against the worker's model snapshot.
  [[nodiscard]] std::vector<RowAnswer> answer_batch(const Model& model,
                                                    const QueryBatch& batch,
                                                    WorkerStats& stats) const;

  ServeOptions options_;
  ModelCache cache_;
  std::string endpoint_;
  bool is_unix_ = false;
  std::string unix_path_;
  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  std::atomic<bool> stop_{false};
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerStats>> worker_stats_;

  mutable std::mutex control_mutex_;  ///< guards the counters below
  std::uint64_t connections_ = 0;
  std::uint64_t model_reloads_ = 0;
  std::uint64_t reload_failures_ = 0;
  double start_seconds_ = 0.0;
  double stop_seconds_ = 0.0;  ///< 0 while running
};

}  // namespace mafia::serve
