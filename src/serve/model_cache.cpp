#include "serve/model_cache.hpp"

#include <algorithm>

namespace mafia::serve {

ModelCache::ModelCache(std::string path, std::size_t num_shards)
    : path_(std::move(path)) {
  shards_.resize(std::max<std::size_t>(1, num_shards));
  for (auto& s : shards_) s = std::make_unique<Shard>();
  auto model = std::make_shared<const Model>(load_model(path_));
  for (auto& s : shards_) s->model = model;
}

std::shared_ptr<const Model> ModelCache::acquire(
    std::size_t shard_hint) const {
  const Shard& s = *shards_[shard_hint % shards_.size()];
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.model;
}

void ModelCache::reload() {
  // Parse first, swap second: a corrupt replacement file must never take
  // down a shard, let alone leave shards on different generations forever.
  auto fresh = std::make_shared<const Model>(load_model(path_));
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    s->model = fresh;
  }
}

}  // namespace mafia::serve
