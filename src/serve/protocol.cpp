#include "serve/protocol.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mafia::serve {

namespace {

constexpr std::size_t kShapeBytes = 2 * sizeof(std::uint32_t);

template <typename T>
T load_pod(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

}  // namespace

std::uint64_t query_payload_bytes(std::uint64_t num_rows,
                                  std::uint64_t num_dims) {
  return kShapeBytes + num_rows * num_dims * sizeof(Value);
}

std::vector<std::uint8_t> encode_query(const QueryBatch& batch) {
  std::vector<std::uint8_t> out;
  out.reserve(static_cast<std::size_t>(
      query_payload_bytes(batch.num_rows(), batch.num_dims)));
  append_pod(out, static_cast<std::uint32_t>(batch.num_rows()));
  append_pod(out, batch.num_dims);
  const auto* p = reinterpret_cast<const std::uint8_t*>(batch.values.data());
  out.insert(out.end(), p, p + batch.values.size() * sizeof(Value));
  return out;
}

QueryBatch decode_query(const std::uint8_t* data, std::size_t size,
                        std::size_t max_batch, std::uint32_t expect_dims) {
  require_input(size >= kShapeBytes,
                "serve query: truncated payload (" + std::to_string(size) +
                    " bytes, need at least 8)");
  const auto num_rows = load_pod<std::uint32_t>(data);
  const auto num_dims = load_pod<std::uint32_t>(data + sizeof(std::uint32_t));
  require_input(num_rows <= max_batch,
                "serve query: batch of " + std::to_string(num_rows) +
                    " rows exceeds --max-batch " + std::to_string(max_batch));
  require_input(num_dims >= 1 && num_dims <= kMaxDims,
                "serve query: bad row width " + std::to_string(num_dims));
  if (expect_dims != 0) {
    require_input(num_dims == expect_dims,
                  "serve query: row width " + std::to_string(num_dims) +
                      " does not match the model's " +
                      std::to_string(expect_dims) + " dims");
  }
  // The shape must account for every payload byte exactly: a loose size
  // check would let a short payload read uninitialized memory and a long
  // one smuggle trailing bytes past validation.
  const std::uint64_t expected = query_payload_bytes(num_rows, num_dims);
  require_input(size == expected,
                "serve query: payload is " + std::to_string(size) +
                    " bytes, shape " + std::to_string(num_rows) + "x" +
                    std::to_string(num_dims) + " needs " +
                    std::to_string(expected));
  QueryBatch batch;
  batch.num_dims = num_dims;
  batch.values.resize(static_cast<std::size_t>(num_rows) * num_dims);
  std::memcpy(batch.values.data(), data + kShapeBytes,
              batch.values.size() * sizeof(Value));
  return batch;
}

std::vector<std::uint8_t> encode_response(
    const std::vector<RowAnswer>& answers) {
  std::vector<std::uint8_t> out;
  out.reserve(sizeof(std::uint32_t) +
              answers.size() * (sizeof(std::int32_t) + sizeof(std::uint32_t)));
  append_pod(out, static_cast<std::uint32_t>(answers.size()));
  for (const RowAnswer& a : answers) {
    append_pod(out, a.label);
    append_pod(out, a.match_count);
  }
  return out;
}

std::vector<RowAnswer> decode_response(const std::uint8_t* data,
                                       std::size_t size) {
  require_input(size >= sizeof(std::uint32_t),
                "serve response: truncated payload");
  const auto num_rows = load_pod<std::uint32_t>(data);
  const std::uint64_t expected =
      sizeof(std::uint32_t) +
      static_cast<std::uint64_t>(num_rows) * (sizeof(std::int32_t) +
                                              sizeof(std::uint32_t));
  require_input(size == expected,
                "serve response: payload is " + std::to_string(size) +
                    " bytes, " + std::to_string(num_rows) + " rows need " +
                    std::to_string(expected));
  std::vector<RowAnswer> answers(num_rows);
  const std::uint8_t* p = data + sizeof(std::uint32_t);
  for (RowAnswer& a : answers) {
    a.label = load_pod<std::int32_t>(p);
    a.match_count = load_pod<std::uint32_t>(p + sizeof(std::int32_t));
    p += sizeof(std::int32_t) + sizeof(std::uint32_t);
  }
  return answers;
}

}  // namespace mafia::serve
