// Record-to-cluster membership assignment.
//
// The paper motivates subspace clustering with end-user tasks (customer
// segmentation, GIS cluster detection) where the deliverable is not just
// the cluster DESCRIPTIONS but the partition of records.  This module scans
// the data once (chunked, so it works out-of-core) and labels every record
// with the first discovered cluster whose DNF it satisfies, or noise.
//
// A record matches a cluster when, for some DNF rectangle, its value in
// every subspace dimension falls inside the rectangle's bin interval.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "io/data_source.hpp"

namespace mafia {

/// Per-cluster membership statistics.
struct MembershipCounts {
  std::vector<Count> per_cluster;  ///< records matched per cluster (first match wins)
  Count noise = 0;                 ///< records matching no cluster (kNoiseLabel)
  Count unlabeled = 0;             ///< records never scored (kUnlabeledLabel)

  /// Sum of all buckets, overflow-checked: Count is u64, so a sum that
  /// wraps would silently report a tiny total for a huge data set.
  [[nodiscard]] Count total() const;
};

/// Buckets a label vector into MembershipCounts.  kUnlabeledLabel (-2)
/// records are tallied separately — they were never scored and must not be
/// reported as noise (the serve path surfaces both buckets distinctly).
/// Labels outside [-2, num_clusters) throw (ErrorClass::Internal).
[[nodiscard]] MembershipCounts tally_labels(
    const std::vector<std::int32_t>& labels, std::size_t num_clusters);

/// Labels every record: result[i] = index into `clusters` or kNoiseLabel.
/// Clusters are tested in order; the first match wins (clusters of higher
/// dimensionality first matches the driver's reporting order).
[[nodiscard]] std::vector<std::int32_t> assign_members(
    const DataSource& data, const std::vector<Cluster>& clusters,
    const GridSet& grids, std::size_t chunk_records = 1 << 16);

/// Counts memberships without materializing the per-record labels
/// (out-of-core friendly).
[[nodiscard]] MembershipCounts count_members(const DataSource& data,
                                             const std::vector<Cluster>& clusters,
                                             const GridSet& grids,
                                             std::size_t chunk_records = 1 << 16);

/// True iff `row` (width = grids.num_dims()) lies inside `cluster`.
[[nodiscard]] bool contains_record(const Cluster& cluster, const GridSet& grids,
                                   const Value* row);

}  // namespace mafia
