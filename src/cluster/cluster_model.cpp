#include "cluster/cluster_model.hpp"

#include <algorithm>
#include <sstream>

namespace mafia {

std::vector<std::pair<Value, Value>> Cluster::bounding_box(const GridSet& grids) const {
  std::vector<std::pair<Value, Value>> box(dims.size());
  for (std::size_t i = 0; i < dims.size(); ++i) {
    box[i] = {grids[dims[i]].domain_hi, grids[dims[i]].domain_lo};  // inverted init
  }
  const auto widen = [&](const std::vector<BinId>& lo, const std::vector<BinId>& hi) {
    for (std::size_t i = 0; i < dims.size(); ++i) {
      const DimensionGrid& g = grids[dims[i]];
      box[i].first = std::min(box[i].first, g.bin_lo(lo[i]));
      box[i].second = std::max(box[i].second, g.bin_hi(hi[i]));
    }
  };
  if (!dnf.empty()) {
    for (const BinRect& r : dnf) widen(r.lo, r.hi);
  } else {
    for (std::size_t u = 0; u < units.size(); ++u) {
      const auto bins = units.bins(u);
      std::vector<BinId> b(bins.begin(), bins.end());
      widen(b, b);
    }
  }
  return box;
}

std::string Cluster::to_string(const GridSet& grids) const {
  std::ostringstream os;
  os << "subspace {";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (i) os << ",";
    os << static_cast<int>(dims[i]);
  }
  os << "}: ";
  if (dnf.empty()) {
    os << units.size() << " dense units";
    return os.str();
  }
  for (std::size_t r = 0; r < dnf.size(); ++r) {
    if (r) os << " v ";
    os << "(";
    for (std::size_t i = 0; i < dims.size(); ++i) {
      if (i) os << " ^ ";
      const auto [lo, hi] = rect_interval(grids, dnf[r], i);
      os << lo << "<=d" << static_cast<int>(dims[i]) << "<" << hi;
    }
    os << ")";
  }
  return os.str();
}

}  // namespace mafia
