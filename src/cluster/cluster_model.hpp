// The cluster model: connected dense units in one subspace, reported to the
// user as a minimal DNF expression over grid-bin intervals.
//
// "Clusters are unions of connected high density cells.  Two k-dimensional
// cells are connected if they have a common face in the k-dimensional space
// or if they are connected by a common cell." (Section 3)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

/// Axis-aligned hyper-rectangle in bin-index space, aligned with a cluster's
/// subspace dimensions: covers bins [lo[i], hi[i]] (inclusive) in dims[i].
struct BinRect {
  std::vector<BinId> lo;
  std::vector<BinId> hi;
};

/// One discovered cluster.
struct Cluster {
  /// The subspace (ascending dimension ids).
  std::vector<DimId> dims;
  /// The connected dense units composing the cluster (k == dims.size()).
  UnitStore units{1};
  /// Minimal DNF: a union of maximal rectangles covering exactly `units`.
  /// Filled by build_dnf().
  std::vector<BinRect> dnf;

  [[nodiscard]] std::size_t dimensionality() const { return dims.size(); }

  /// Value-space interval of `rect` in subspace position `i` under `grids`.
  [[nodiscard]] std::pair<Value, Value> rect_interval(const GridSet& grids,
                                                      const BinRect& rect,
                                                      std::size_t i) const {
    const DimensionGrid& g = grids[dims[i]];
    return {g.bin_lo(rect.lo[i]), g.bin_hi(rect.hi[i])};
  }

  /// Bounding box of the whole cluster in value space (per subspace dim).
  [[nodiscard]] std::vector<std::pair<Value, Value>> bounding_box(
      const GridSet& grids) const;

  /// Renders the DNF like "(10.0<=d1<25.5 ^ 0.0<=d7<3.2) v (...)".
  [[nodiscard]] std::string to_string(const GridSet& grids) const;
};

}  // namespace mafia
