#include "cluster/quality.hpp"

#include <algorithm>
#include <cmath>

namespace mafia {

namespace {

/// Overlap length of [a1,a2) and [b1,b2).
double overlap(double a1, double a2, double b1, double b2) {
  return std::max(0.0, std::min(a2, b2) - std::max(a1, b1));
}

/// Fraction of `box`'s volume covered by the cluster's dense units
/// (units are disjoint cells, so summing per-unit overlaps is exact).
double coverage_of(const Cluster& c, const GridSet& grids, const TrueBox& box) {
  double true_volume = 1.0;
  for (std::size_t i = 0; i < box.dims.size(); ++i) {
    true_volume *= static_cast<double>(box.hi[i]) - box.lo[i];
  }
  if (true_volume <= 0) return 0.0;

  double covered = 0.0;
  for (std::size_t u = 0; u < c.units.size(); ++u) {
    const auto bins = c.units.bins(u);
    double cell = 1.0;
    for (std::size_t i = 0; i < c.dims.size() && cell > 0; ++i) {
      const DimensionGrid& g = grids[c.dims[i]];
      cell *= overlap(g.bin_lo(bins[i]), g.bin_hi(bins[i]), box.lo[i], box.hi[i]);
    }
    covered += cell;
  }
  return covered / true_volume;
}

/// Mean per-edge distance between the cluster bounding box and the true
/// box, normalized by each dimension's domain width.
double boundary_error_of(const Cluster& c, const GridSet& grids, const TrueBox& box) {
  const auto bbox = c.bounding_box(grids);
  double total = 0.0;
  for (std::size_t i = 0; i < box.dims.size(); ++i) {
    const DimensionGrid& g = grids[box.dims[i]];
    const double domain = static_cast<double>(g.domain_hi) - g.domain_lo;
    if (domain <= 0) continue;
    total += std::fabs(static_cast<double>(bbox[i].first) - box.lo[i]) / domain;
    total += std::fabs(static_cast<double>(bbox[i].second) - box.hi[i]) / domain;
  }
  return total / (2.0 * static_cast<double>(box.dims.size()));
}

}  // namespace

QualityReport evaluate_quality(const std::vector<Cluster>& clusters,
                               const GridSet& grids,
                               const std::vector<TrueBox>& truth) {
  QualityReport report;
  report.discovered_clusters = clusters.size();
  report.per_box.resize(truth.size());

  std::vector<bool> cluster_matched(clusters.size(), false);

  for (std::size_t t = 0; t < truth.size(); ++t) {
    const TrueBox& box = truth[t];
    BoxMatch& match = report.per_box[t];
    // Best-matching discovered cluster with the exact subspace.
    for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
      const Cluster& c = clusters[ci];
      if (c.dims != box.dims) continue;
      const double cov = coverage_of(c, grids, box);
      if (!match.subspace_found || cov > match.volume_coverage) {
        match.subspace_found = true;
        match.volume_coverage = cov;
        match.boundary_error = boundary_error_of(c, grids, box);
      }
      if (cov > 0) cluster_matched[ci] = true;
    }
  }

  for (std::size_t ci = 0; ci < clusters.size(); ++ci) {
    if (!cluster_matched[ci]) ++report.spurious_clusters;
  }

  double cov_sum = 0.0;
  double err_sum = 0.0;
  for (const BoxMatch& m : report.per_box) {
    if (m.subspace_found) ++report.subspaces_matched;
    cov_sum += m.volume_coverage;
    err_sum += m.boundary_error;
  }
  if (!truth.empty()) {
    report.mean_coverage = cov_sum / static_cast<double>(truth.size());
    report.mean_boundary_error = err_sum / static_cast<double>(truth.size());
  }
  return report;
}

PointScores point_level_scores(const std::vector<std::int32_t>& discovered,
                               const std::vector<std::int32_t>& truth) {
  require(discovered.size() == truth.size(),
          "point_level_scores: label vector size mismatch");
  std::size_t in_discovered = 0;
  std::size_t in_truth = 0;
  std::size_t in_both = 0;
  for (std::size_t i = 0; i < discovered.size(); ++i) {
    const bool d = discovered[i] >= 0;
    const bool t = truth[i] >= 0;
    in_discovered += d;
    in_truth += t;
    in_both += (d && t);
  }
  PointScores scores;
  if (in_discovered > 0) {
    scores.precision =
        static_cast<double>(in_both) / static_cast<double>(in_discovered);
  }
  if (in_truth > 0) {
    scores.recall = static_cast<double>(in_both) / static_cast<double>(in_truth);
  }
  return scores;
}

}  // namespace mafia
