// Clustering quality metrics against planted ground truth.
//
// Section 5.8 compares MAFIA and CLIQUE qualitatively: CLIQUE "detected the
// 2 clusters only partially and large parts of the clusters were thrown
// away as outliers" while pMAFIA recovered "both the clusters and the
// cluster boundaries in each dimension ... accurately".  These metrics make
// that comparison quantitative:
//   * subspace recall/precision — did we find exactly the planted subspaces;
//   * volume coverage — what fraction of a planted box's volume the
//     discovered units cover (CLIQUE's partial detection shows up here);
//   * boundary error — how far the discovered bounding box sits from the
//     planted box edges, normalized by the domain (adaptive grids should
//     make this near zero, fixed grids ~half a bin width per edge).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/cluster_model.hpp"

namespace mafia {

/// One planted cluster: an axis-aligned box over a subspace, in value space.
struct TrueBox {
  std::vector<DimId> dims;  ///< ascending subspace dims
  std::vector<Value> lo;    ///< per-dim lower bound (aligned with dims)
  std::vector<Value> hi;    ///< per-dim upper bound
};

/// Per-planted-cluster evaluation.
struct BoxMatch {
  bool subspace_found = false;   ///< some discovered cluster has exactly these dims
  double volume_coverage = 0.0;  ///< fraction of the true box volume covered
  double boundary_error = 0.0;   ///< mean per-edge |error| / domain width
};

/// Aggregate report.
struct QualityReport {
  std::vector<BoxMatch> per_box;
  std::size_t discovered_clusters = 0;
  std::size_t subspaces_matched = 0;   ///< true boxes whose subspace was found
  std::size_t spurious_clusters = 0;   ///< discovered clusters matching no true subspace
  double mean_coverage = 0.0;
  double mean_boundary_error = 0.0;
};

/// Scores `clusters` (with DNF built) against the planted `truth` under the
/// grid geometry used for discovery.
[[nodiscard]] QualityReport evaluate_quality(const std::vector<Cluster>& clusters,
                                             const GridSet& grids,
                                             const std::vector<TrueBox>& truth);

/// Record-level scores: given per-record discovered labels (cluster index
/// or kNoiseLabel) and ground-truth labels (planted cluster id or
/// kNoiseLabel; any negative label counts as non-cluster),
/// computes precision (discovered-cluster records that are true cluster
/// records), recall (true cluster records captured by some discovered
/// cluster), and their harmonic mean.  Cluster identity is not matched —
/// this scores the cluster/noise separation, the paper's "thrown away as
/// outliers" axis.
struct PointScores {
  double precision = 0.0;
  double recall = 0.0;
  [[nodiscard]] double f1() const {
    const double s = precision + recall;
    return s > 0 ? 2.0 * precision * recall / s : 0.0;
  }
};

[[nodiscard]] PointScores point_level_scores(
    const std::vector<std::int32_t>& discovered,
    const std::vector<std::int32_t>& truth);

}  // namespace mafia
