#include "cluster/assembly.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <unordered_set>

#include "cluster/union_find.hpp"
#include "common/error.hpp"

namespace mafia {

bool face_adjacent(const UnitStore& units, std::size_t a, std::size_t b) {
  const std::size_t k = units.k();
  if (std::memcmp(units.dims(a).data(), units.dims(b).data(), k) != 0) return false;
  const auto ba = units.bins(a);
  const auto bb = units.bins(b);
  std::size_t diffs = 0;
  bool adjacent = true;
  for (std::size_t i = 0; i < k; ++i) {
    if (ba[i] != bb[i]) {
      ++diffs;
      const int delta = static_cast<int>(ba[i]) - static_cast<int>(bb[i]);
      if (delta != 1 && delta != -1) adjacent = false;
    }
  }
  return diffs == 1 && adjacent;
}

std::vector<Cluster> connect_units(const UnitStore& units) {
  const std::size_t n = units.size();
  const std::size_t k = units.k();

  // Partition unit indices by subspace first so the quadratic connectivity
  // scan only runs within a subspace.
  std::map<std::vector<DimId>, std::vector<std::size_t>> by_subspace;
  for (std::size_t u = 0; u < n; ++u) {
    const auto d = units.dims(u);
    by_subspace[std::vector<DimId>(d.begin(), d.end())].push_back(u);
  }

  std::vector<Cluster> clusters;
  for (const auto& [dims, members] : by_subspace) {
    UnionFind uf(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        if (face_adjacent(units, members[i], members[j])) uf.unite(i, j);
      }
    }
    // Emit one cluster per connected component, preserving unit order.
    std::map<std::size_t, std::size_t> root_to_cluster;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t root = uf.find(i);
      auto it = root_to_cluster.find(root);
      if (it == root_to_cluster.end()) {
        Cluster c;
        c.dims = dims;
        c.units = UnitStore(k);
        it = root_to_cluster.emplace(root, clusters.size()).first;
        clusters.push_back(std::move(c));
      }
      clusters[it->second].units.push_unchecked(units.dims(members[i]).data(),
                                                units.bins(members[i]).data());
    }
  }
  return clusters;
}

namespace {

/// Hashable key for a unit projected onto a dim subset.
std::string projection_key(const UnitStore& units, std::size_t u,
                           const std::vector<std::size_t>& positions) {
  std::string key;
  key.reserve(positions.size());
  const auto bins = units.bins(u);
  for (const std::size_t pos : positions) key.push_back(static_cast<char>(bins[pos]));
  return key;
}

}  // namespace

void eliminate_subset_clusters(std::vector<Cluster>& clusters) {
  std::vector<bool> dead(clusters.size(), false);
  for (std::size_t a = 0; a < clusters.size(); ++a) {
    if (dead[a]) continue;
    for (std::size_t b = 0; b < clusters.size(); ++b) {
      if (a == b || dead[a] || dead[b]) continue;
      const Cluster& small = clusters[a];
      const Cluster& big = clusters[b];
      if (small.dims.size() >= big.dims.size()) continue;
      // small.dims must be a subset of big.dims.
      if (!std::includes(big.dims.begin(), big.dims.end(), small.dims.begin(),
                         small.dims.end())) {
        continue;
      }
      // Positions of small's dims within big's dim list.
      std::vector<std::size_t> positions;
      positions.reserve(small.dims.size());
      for (const DimId d : small.dims) {
        const auto it = std::find(big.dims.begin(), big.dims.end(), d);
        positions.push_back(static_cast<std::size_t>(it - big.dims.begin()));
      }
      // Project big's units onto small's subspace.
      std::unordered_set<std::string> projected;
      projected.reserve(big.units.size());
      for (std::size_t u = 0; u < big.units.size(); ++u) {
        projected.insert(projection_key(big.units, u, positions));
      }
      // Identity positions for small (its own bins, in order).
      std::vector<std::size_t> identity(small.dims.size());
      for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
      bool contained = true;
      for (std::size_t u = 0; u < small.units.size() && contained; ++u) {
        contained = projected.count(projection_key(small.units, u, identity)) > 0;
      }
      if (contained) dead[a] = true;
    }
  }
  std::vector<Cluster> kept;
  kept.reserve(clusters.size());
  for (std::size_t i = 0; i < clusters.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(clusters[i]));
  }
  clusters = std::move(kept);
}

void build_dnf(Cluster& cluster) {
  const std::size_t k = cluster.dims.size();
  // Start with one degenerate rectangle per dense unit.
  std::vector<BinRect> rects;
  rects.reserve(cluster.units.size());
  for (std::size_t u = 0; u < cluster.units.size(); ++u) {
    const auto bins = cluster.units.bins(u);
    BinRect r;
    r.lo.assign(bins.begin(), bins.end());
    r.hi.assign(bins.begin(), bins.end());
    rects.push_back(std::move(r));
  }

  // Greedy pairwise merge to fixpoint: two rectangles merge when they are
  // identical in all dimensions except one, where their bin intervals are
  // adjacent or overlapping.  The result covers exactly the same cells, and
  // every surviving rectangle is maximal under this merge relation —
  // yielding the paper's "minimal DNF expression" behaviour on the
  // rectangular-wave grids adaptive binning produces.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < rects.size() && !changed; ++i) {
      for (std::size_t j = i + 1; j < rects.size() && !changed; ++j) {
        std::size_t diff_dim = k;  // sentinel: none yet
        bool mergeable = true;
        for (std::size_t dpos = 0; dpos < k && mergeable; ++dpos) {
          const bool same = rects[i].lo[dpos] == rects[j].lo[dpos] &&
                            rects[i].hi[dpos] == rects[j].hi[dpos];
          if (same) continue;
          if (diff_dim != k) {
            mergeable = false;  // differs in more than one dim
            break;
          }
          diff_dim = dpos;
          // Intervals must touch or overlap: [lo_i, hi_i] and [lo_j, hi_j]
          // with max(lo) <= min(hi) + 1.
          const int lo = std::max<int>(rects[i].lo[dpos], rects[j].lo[dpos]);
          const int hi = std::min<int>(rects[i].hi[dpos], rects[j].hi[dpos]);
          if (lo > hi + 1) mergeable = false;
        }
        if (mergeable && diff_dim != k) {
          rects[i].lo[diff_dim] =
              std::min(rects[i].lo[diff_dim], rects[j].lo[diff_dim]);
          rects[i].hi[diff_dim] =
              std::max(rects[i].hi[diff_dim], rects[j].hi[diff_dim]);
          rects.erase(rects.begin() + static_cast<std::ptrdiff_t>(j));
          changed = true;
        }
      }
    }
  }
  cluster.dnf = std::move(rects);
}

std::vector<Cluster> assemble_clusters(const std::vector<UnitStore>& registered_levels) {
  std::vector<Cluster> clusters;
  for (const UnitStore& level : registered_levels) {
    if (level.empty()) continue;
    auto level_clusters = connect_units(level);
    for (auto& c : level_clusters) clusters.push_back(std::move(c));
  }
  eliminate_subset_clusters(clusters);
  for (Cluster& c : clusters) build_dnf(c);
  // Present highest-dimensional clusters first, then by subspace.  The sort
  // must be STABLE: multiple connected components in the same subspace
  // compare equal here, and their relative order is the tie-break that
  // assign_members' first-match-wins rule (and therefore every persisted
  // model and every serve-side answer) depends on.  connect_units emits
  // components deterministically, so stable_sort pins the whole ordering.
  std::stable_sort(clusters.begin(), clusters.end(),
                   [](const Cluster& a, const Cluster& b) {
                     if (a.dims.size() != b.dims.size()) {
                       return a.dims.size() > b.dims.size();
                     }
                     return a.dims < b.dims;
                   });
  return clusters;
}

}  // namespace mafia
