// Disjoint-set forest used to merge connected dense units into clusters.
#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace mafia {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  /// Representative of x's set (path-halving).
  [[nodiscard]] std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns true if they were distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

}  // namespace mafia
