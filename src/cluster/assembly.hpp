// Cluster assembly: group registered dense units by subspace, merge
// connected units with union-find, eliminate clusters that are proper
// subsets of higher-dimensional clusters, and build minimal DNF expressions
// (Sections 3.2 and 4.4: "Clusters which are a proper subset of a higher
// dimension cluster are eliminated and only unique clusters of the highest
// dimensionality are presented to the end user").
#pragma once

#include <vector>

#include "cluster/cluster_model.hpp"

namespace mafia {

/// Splits the units of one store (all the same dimensionality, possibly
/// spanning several subspaces) into clusters of face-connected units.
[[nodiscard]] std::vector<Cluster> connect_units(const UnitStore& units);

/// Full assembly over dense units registered at every level of the
/// bottom-up search.  Performs: per-subspace connectivity, subset
/// elimination across levels, and DNF construction.
[[nodiscard]] std::vector<Cluster> assemble_clusters(
    const std::vector<UnitStore>& registered_levels);

/// Removes clusters whose subspace is a strict subset of another cluster's
/// subspace AND whose units are all projections of that cluster's units.
void eliminate_subset_clusters(std::vector<Cluster>& clusters);

/// Fills `cluster.dnf` with a union of maximal rectangles covering the
/// cluster's units exactly (greedy pairwise merge to fixpoint).
void build_dnf(Cluster& cluster);

/// True iff units a (k-dim) and b share a common face: bins equal in all
/// dims but one, adjacent (difference 1) in that one.  Exposed for tests.
[[nodiscard]] bool face_adjacent(const UnitStore& units, std::size_t a,
                                 std::size_t b);

}  // namespace mafia
