#include "cluster/membership.hpp"

#include <limits>

#include "common/error.hpp"

namespace mafia {

namespace {

/// a + b with wraparound detection; Count totals feed capacity planning
/// and quality gates, where a silently wrapped sum is worse than a crash.
Count checked_add(Count a, Count b) {
  if (a > std::numeric_limits<Count>::max() - b) {
    throw Error("MembershipCounts: count accumulation overflowed",
                ErrorClass::Internal);
  }
  return a + b;
}

}  // namespace

Count MembershipCounts::total() const {
  Count t = checked_add(noise, unlabeled);
  for (const Count c : per_cluster) t = checked_add(t, c);
  return t;
}

MembershipCounts tally_labels(const std::vector<std::int32_t>& labels,
                              std::size_t num_clusters) {
  MembershipCounts counts;
  counts.per_cluster.assign(num_clusters, 0);
  for (const std::int32_t label : labels) {
    if (label == kNoiseLabel) {
      ++counts.noise;
    } else if (label == kUnlabeledLabel) {
      ++counts.unlabeled;
    } else if (label >= 0 &&
               static_cast<std::size_t>(label) < num_clusters) {
      ++counts.per_cluster[static_cast<std::size_t>(label)];
    } else {
      throw Error("tally_labels: label " + std::to_string(label) +
                      " outside [-2, " + std::to_string(num_clusters) + ")",
                  ErrorClass::Internal);
    }
  }
  return counts;
}

bool contains_record(const Cluster& cluster, const GridSet& grids,
                     const Value* row) {
  for (const BinRect& rect : cluster.dnf) {
    bool inside = true;
    for (std::size_t i = 0; i < cluster.dims.size() && inside; ++i) {
      const DimensionGrid& g = grids[cluster.dims[i]];
      const BinId b = g.bin_of(row[cluster.dims[i]]);
      inside = b >= rect.lo[i] && b <= rect.hi[i];
    }
    if (inside) return true;
  }
  return false;
}

std::vector<std::int32_t> assign_members(const DataSource& data,
                                         const std::vector<Cluster>& clusters,
                                         const GridSet& grids,
                                         std::size_t chunk_records) {
  std::vector<std::int32_t> labels;
  labels.reserve(static_cast<std::size_t>(data.num_records()));
  const std::size_t d = data.num_dims();
  data.scan(0, data.num_records(), chunk_records,
            [&](const Value* rows, std::size_t nrows) {
              for (std::size_t r = 0; r < nrows; ++r) {
                const Value* row = rows + r * d;
                std::int32_t label = kNoiseLabel;
                for (std::size_t c = 0; c < clusters.size(); ++c) {
                  if (contains_record(clusters[c], grids, row)) {
                    label = static_cast<std::int32_t>(c);
                    break;
                  }
                }
                labels.push_back(label);
              }
            });
  return labels;
}

MembershipCounts count_members(const DataSource& data,
                               const std::vector<Cluster>& clusters,
                               const GridSet& grids, std::size_t chunk_records) {
  MembershipCounts counts;
  counts.per_cluster.assign(clusters.size(), 0);
  const std::size_t d = data.num_dims();
  data.scan(0, data.num_records(), chunk_records,
            [&](const Value* rows, std::size_t nrows) {
              for (std::size_t r = 0; r < nrows; ++r) {
                const Value* row = rows + r * d;
                bool matched = false;
                for (std::size_t c = 0; c < clusters.size() && !matched; ++c) {
                  if (contains_record(clusters[c], grids, row)) {
                    ++counts.per_cluster[c];
                    matched = true;
                  }
                }
                if (!matched) ++counts.noise;
              }
            });
  return counts;
}

}  // namespace mafia
