#include "cluster/membership.hpp"

namespace mafia {

bool contains_record(const Cluster& cluster, const GridSet& grids,
                     const Value* row) {
  for (const BinRect& rect : cluster.dnf) {
    bool inside = true;
    for (std::size_t i = 0; i < cluster.dims.size() && inside; ++i) {
      const DimensionGrid& g = grids[cluster.dims[i]];
      const BinId b = g.bin_of(row[cluster.dims[i]]);
      inside = b >= rect.lo[i] && b <= rect.hi[i];
    }
    if (inside) return true;
  }
  return false;
}

std::vector<std::int32_t> assign_members(const DataSource& data,
                                         const std::vector<Cluster>& clusters,
                                         const GridSet& grids,
                                         std::size_t chunk_records) {
  std::vector<std::int32_t> labels;
  labels.reserve(static_cast<std::size_t>(data.num_records()));
  const std::size_t d = data.num_dims();
  data.scan(0, data.num_records(), chunk_records,
            [&](const Value* rows, std::size_t nrows) {
              for (std::size_t r = 0; r < nrows; ++r) {
                const Value* row = rows + r * d;
                std::int32_t label = kNoiseLabel;
                for (std::size_t c = 0; c < clusters.size(); ++c) {
                  if (contains_record(clusters[c], grids, row)) {
                    label = static_cast<std::int32_t>(c);
                    break;
                  }
                }
                labels.push_back(label);
              }
            });
  return labels;
}

MembershipCounts count_members(const DataSource& data,
                               const std::vector<Cluster>& clusters,
                               const GridSet& grids, std::size_t chunk_records) {
  MembershipCounts counts;
  counts.per_cluster.assign(clusters.size(), 0);
  const std::size_t d = data.num_dims();
  data.scan(0, data.num_records(), chunk_records,
            [&](const Value* rows, std::size_t nrows) {
              for (std::size_t r = 0; r < nrows; ++r) {
                const Value* row = rows + r * d;
                bool matched = false;
                for (std::size_t c = 0; c < clusters.size() && !matched; ++c) {
                  if (contains_record(clusters[c], grids, row)) {
                    ++counts.per_cluster[c];
                    matched = true;
                  }
                }
                if (!matched) ++counts.noise;
              }
            });
  return counts;
}

}  // namespace mafia
