#include "core/report.hpp"

#include <sstream>

namespace mafia {

std::string render_clusters(const MafiaResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    os << "cluster " << i << ": " << result.clusters[i].to_string(result.grids)
       << "\n";
  }
  return os.str();
}

std::string render_report(const MafiaResult& result) {
  std::ostringstream os;
  os << "pMAFIA run: " << result.num_records << " records x "
     << result.num_dims << " dims on " << result.num_ranks << " rank(s), "
     << result.total_seconds << " s\n";

  os << "\nclusters (" << result.clusters.size() << ", maximal subspaces):\n";
  os << render_clusters(result);

  os << "\nlevel trace:\n";
  os << "  k     raw CDUs   unique CDUs   dense units\n";
  for (const LevelTrace& t : result.levels) {
    os << "  " << t.level << "     " << t.ncdu_raw << "   " << t.ncdu << "   "
       << t.ndu << "\n";
  }

  os << "\nphases (max across ranks, seconds):\n";
  for (const auto& [name, secs] : result.phases.phases()) {
    os << "  " << name << ": " << secs << "\n";
  }

  os << "\ncommunication (all ranks):\n";
  os << "  reduces " << result.comm.reduces << ", bcasts " << result.comm.bcasts
     << ", gathers " << result.comm.gathers << ", p2p "
     << result.comm.p2p_messages << "\n";
  os << "  payload bytes " << result.comm.total_bytes() << "\n";
  return os.str();
}

}  // namespace mafia
