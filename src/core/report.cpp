#include "core/report.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/json.hpp"

namespace mafia {

namespace {

/// Fixed-width hex rendering for the level count checksums: a 64-bit FNV
/// value exceeds the exactly-representable double range, so emitting it as
/// a JSON number would silently round in consumers; a hex string is
/// compare-for-equality data anyway.
std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Serializes one IoScanStats as a JSON object (the same shape wherever
/// I/O accounting appears: per phase, per rank, and run totals).
void write_io(JsonWriter& w, const IoScanStats& s) {
  w.begin_object();
  w.key("chunks").value(s.chunks);
  w.key("bytes_read").value(s.bytes);
  w.key("read_seconds").value(s.read_seconds);
  w.key("wait_seconds").value(s.wait_seconds);
  w.key("compute_seconds").value(s.compute_seconds);
  w.key("scan_seconds").value(s.scan_seconds);
  w.key("overlap_fraction").value(s.overlap_fraction());
  w.end_object();
}

/// Serializes one CommStats as a JSON object (shared by every level of the
/// report so the counter schema is identical everywhere it appears).
void write_comm(JsonWriter& w, const mp::CommStats& s) {
  w.begin_object();
  w.key("p2p_messages").value(s.p2p_messages);
  w.key("p2p_bytes").value(s.p2p_bytes);
  w.key("barriers").value(s.barriers);
  w.key("reduces").value(s.reduces);
  w.key("bcasts").value(s.bcasts);
  w.key("gathers").value(s.gathers);
  w.key("scatters").value(s.scatters);
  w.key("collective_bytes").value(s.collective_bytes);
  w.key("total_bytes").value(s.total_bytes());
  w.key("comm_seconds").value(s.comm_seconds);
  w.end_object();
}

}  // namespace

std::string render_clusters(const MafiaResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.clusters.size(); ++i) {
    os << "cluster " << i << ": " << result.clusters[i].to_string(result.grids)
       << "\n";
  }
  return os.str();
}

std::string render_report(const MafiaResult& result) {
  std::ostringstream os;
  os << "pMAFIA run: " << result.num_records << " records x "
     << result.num_dims << " dims on " << result.num_ranks << " rank(s) ("
     << mp::mp_backend_name(result.mp_backend) << " backend), "
     << result.total_seconds << " s\n";

  os << "\nclusters (" << result.clusters.size() << ", maximal subspaces):\n";
  os << render_clusters(result);

  os << "\nlevel trace:\n";
  os << "  " << std::setw(3) << "k" << std::setw(12) << "raw CDUs"
     << std::setw(14) << "unique CDUs" << std::setw(14) << "dense units"
     << std::setw(14) << "join probes" << std::setw(14) << "join buckets"
     << std::setw(10) << "unjoined" << std::setw(9) << "kernel"
     << "\n";
  for (const LevelTrace& t : result.levels) {
    os << "  " << std::setw(3) << t.level << std::setw(12) << t.ncdu_raw
       << std::setw(14) << t.ncdu << std::setw(14) << t.ndu << std::setw(14)
       << t.join_probes << std::setw(14) << t.join_buckets << std::setw(10)
       << t.unjoined_dus << std::setw(9) << populate_kernel_name(t.populate_kernel)
       << "\n";
  }
  if (result.total_unjoined_dus() > 0) {
    os << "  unjoined dense units (could not be combined): "
       << result.total_unjoined_dus() << " over the run\n";
  }

  os << "\npopulate kernel (subspaces over all levels): packed-sorted "
     << result.populate_kernel.packed_sorted_subspaces << ", packed-hash "
     << result.populate_kernel.packed_hash_subspaces << ", memcmp "
     << result.populate_kernel.memcmp_subspaces << ", bitmap "
     << result.populate_kernel.bitmap_subspaces << ", block "
     << result.populate_kernel.block_records << " records";
  if (result.populate_kernel.bitmap_subspaces > 0) {
    os << "; bitmap index peak " << result.populate_kernel.bitmap_bytes
       << " bytes, " << result.populate_kernel.bitmap_words_anded
       << " words ANDed";
  }
  os << "\n";

  os << "join kernel (levels over the run): bucketed "
     << result.join_kernel.bucketed_levels << ", pairwise "
     << result.join_kernel.pairwise_levels << "; buckets "
     << result.join_kernel.buckets << ", probes " << result.join_kernel.probes
     << ", emitted " << result.join_kernel.emitted << ", repeats fused "
     << result.join_kernel.repeats_fused << "\n";

  // Chunked-scan I/O: where the data-pass time went, summed over ranks.
  // Only meaningful when the trace carries the per-rank breakdown.
  if (!result.trace.empty()) {
    const IoScanStats io = result.trace.io_total();
    os << "io (all ranks): prefetch " << (result.io.prefetch ? "on" : "off");
    if (result.io.prefetch) os << " (" << result.io.buffers << " buffers)";
    os << "; " << io.chunks << " chunks, " << io.bytes << " bytes read; "
       << "read " << io.read_seconds << " s, wait " << io.wait_seconds
       << " s, compute " << io.compute_seconds << " s, overlap "
       << static_cast<int>(io.overlap_fraction() * 100.0 + 0.5) << "%\n";
  }

  // Phase seconds: the max column is a true cross-rank maximum (an
  // allreduce_max over every rank's timer, carried by result.phases); the
  // min/mean columns need the gathered per-rank trace and are omitted when
  // a result predates the exchange.
  const bool have_trace = !result.trace.empty();
  os << "\nphases (seconds, across " << result.num_ranks << " rank(s)):\n";
  os << "  " << std::left << std::setw(12) << "phase" << std::right
     << std::setw(12) << "max";
  if (have_trace) os << std::setw(12) << "min" << std::setw(12) << "mean";
  os << "\n";
  os << std::fixed << std::setprecision(6);
  for (const auto& [name, secs] : result.phases.phases()) {
    os << "  " << std::left << std::setw(12) << name << std::right
       << std::setw(12) << secs;
    if (have_trace) {
      os << std::setw(12) << result.trace.min_seconds(name) << std::setw(12)
         << result.trace.mean_seconds(name);
    }
    os << "\n";
  }
  os.unsetf(std::ios::fixed);
  os << std::setprecision(6);

  if (result.recovery.checkpoint_enabled) {
    os << "\nrecovery: ";
    if (result.recovery.resumed) {
      os << "resumed at level " << result.recovery.resume_level;
    } else {
      os << "fresh run";
    }
    os << ", " << result.recovery.checkpoints_written
       << " checkpoint(s) written, " << result.recovery.checkpoints_discarded
       << " discarded\n";
  }

  if (result.append.performed) {
    os << "\nappend: " << result.append.levels_reused
       << " level(s) reused (batch-only scan), " << result.append.levels_rerun
       << " rerun; " << result.append.units_promoted << " unit(s) promoted, "
       << result.append.units_demoted << " demoted\n";
  }

  os << "\ncommunication (all ranks):\n";
  os << "  reduces " << result.comm.reduces << ", bcasts " << result.comm.bcasts
     << ", gathers " << result.comm.gathers << ", scatters "
     << result.comm.scatters << ", p2p " << result.comm.p2p_messages << "\n";
  os << "  payload bytes " << result.comm.total_bytes() << ", in-comm seconds "
     << result.comm.comm_seconds << "\n";
  return os.str();
}

std::string render_report_json(const MafiaResult& result,
                               const mp::CostModel& model) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmafia-report-v1");
  w.key("records").value(result.num_records);
  w.key("dims").value(result.num_dims);
  w.key("ranks").value(result.num_ranks);
  // SPMD transport the run used (additive in pmafia-report-v1): "threads"
  // or "process"; rank_exits carries per-rank exit statuses on the process
  // backend (empty array on threads — ranks have no exit status there).
  w.key("mp_backend").value(mp::mp_backend_name(result.mp_backend));
  w.key("rank_exits").begin_array();
  for (std::size_t r = 0; r < result.rank_exits.size(); ++r) {
    w.begin_object();
    w.key("rank").value(r);
    w.key("code").value(static_cast<std::int64_t>(result.rank_exits[r].code));
    w.key("signal").value(
        static_cast<std::int64_t>(result.rank_exits[r].signal));
    w.end_object();
  }
  w.end_array();
  w.key("total_seconds").value(result.total_seconds);
  w.key("num_clusters").value(result.clusters.size());
  w.key("max_dense_level").value(result.max_dense_level());

  w.key("clusters").begin_array();
  for (const Cluster& c : result.clusters) {
    w.begin_object();
    w.key("dims").begin_array();
    for (const DimId d : c.dims) w.value(static_cast<std::uint64_t>(d));
    w.end_array();
    w.key("num_units").value(c.units.size());
    w.key("dnf").value(c.to_string(result.grids));
    w.end_object();
  }
  w.end_array();

  w.key("levels").begin_array();
  for (const LevelTrace& t : result.levels) {
    w.begin_object();
    w.key("level").value(t.level);
    w.key("raw_cdus").value(t.ncdu_raw);
    w.key("cdus").value(t.ncdu);
    w.key("dense_units").value(t.ndu);
    w.key("count_checksum").value(hex64(t.count_checksum));
    w.key("join_buckets").value(t.join_buckets);
    w.key("join_probes").value(t.join_probes);
    w.key("join_emitted").value(t.join_emitted);
    w.key("join_repeats_fused").value(t.join_repeats_fused);
    w.key("populate_kernel").value(populate_kernel_name(t.populate_kernel));
    w.key("bitmap_bytes").value(t.bitmap_bytes);
    w.key("bitmap_words_anded").value(t.bitmap_words_anded);
    // gpumafia's find_unjoined_dus: the level's dense units no join could
    // combine (count exact; the list capped at kMaxUnjoinedListed).
    w.key("unjoined_dus").value(t.unjoined_dus);
    w.key("unjoined_units").begin_array();
    for (const std::string& u : t.unjoined_units) w.value(u);
    w.end_array();
    w.end_object();
  }
  w.end_array();

  // Which populate kernels the run selected (per-subspace, summed over
  // levels) and the block size of the subspace-major sweep — so a recorded
  // populate-phase time is attributable to a concrete kernel configuration.
  w.key("populate_kernel").begin_object();
  w.key("packed_sorted_subspaces").value(result.populate_kernel.packed_sorted_subspaces);
  w.key("packed_hash_subspaces").value(result.populate_kernel.packed_hash_subspaces);
  w.key("memcmp_subspaces").value(result.populate_kernel.memcmp_subspaces);
  w.key("bitmap_subspaces").value(result.populate_kernel.bitmap_subspaces);
  w.key("block_records").value(result.populate_kernel.block_records);
  w.key("bitmap_bytes").value(result.populate_kernel.bitmap_bytes);
  w.key("bitmap_words_anded").value(result.populate_kernel.bitmap_words_anded);
  w.end_object();

  // Run total of the per-level unjoined-DU counts (additive in
  // pmafia-report-v1).
  w.key("unjoined_dus").value(result.total_unjoined_dus());

  // Which join kernel each level ran on and the globalized work counters —
  // the candidate-generation analogue of populate_kernel (additive in
  // pmafia-report-v1).
  w.key("join_kernel").begin_object();
  w.key("bucketed_levels").value(result.join_kernel.bucketed_levels);
  w.key("pairwise_levels").value(result.join_kernel.pairwise_levels);
  w.key("buckets").value(result.join_kernel.buckets);
  w.key("probes").value(result.join_kernel.probes);
  w.key("emitted").value(result.join_kernel.emitted);
  w.key("repeats_fused").value(result.join_kernel.repeats_fused);
  w.end_object();

  // Checkpoint/restart accounting (additive in pmafia-report-v1; all-zero
  // when checkpointing is disabled).
  w.key("recovery").begin_object();
  w.key("checkpoint_enabled").value(result.recovery.checkpoint_enabled);
  w.key("resumed").value(result.recovery.resumed);
  w.key("resume_level").value(result.recovery.resume_level);
  w.key("checkpoints_written").value(result.recovery.checkpoints_written);
  w.key("checkpoints_discarded").value(result.recovery.checkpoints_discarded);
  w.end_object();

  // Incremental-append accounting (additive in pmafia-report-v1; present
  // only for append runs so existing reports are byte-unchanged).
  if (result.append.performed) {
    w.key("append").begin_object();
    w.key("levels_reused").value(result.append.levels_reused);
    w.key("levels_rerun").value(result.append.levels_rerun);
    w.key("units_promoted").value(result.append.units_promoted);
    w.key("units_demoted").value(result.append.units_demoted);
    w.end_object();
  }

  // Per-phase view.  max_seconds is a cross-rank allreduce_max; min/mean
  // and the comm attribution come from the gathered per-rank trace and are
  // present only when the result carries it (parent rank).
  const bool have_trace = !result.trace.empty();
  w.key("phases").begin_array();
  for (const auto& [name, secs] : result.phases.phases()) {
    w.begin_object();
    w.key("name").value(name);
    w.key("max_seconds").value(secs);
    if (have_trace) {
      w.key("min_seconds").value(result.trace.min_seconds(name));
      w.key("mean_seconds").value(result.trace.mean_seconds(name));
      w.key("comm");
      write_comm(w, result.trace.phase_comm(name));
      w.key("io");
      write_io(w, result.trace.phase_io(name));
    }
    w.end_object();
  }
  w.end_array();

  w.key("per_rank").begin_array();
  for (int r = 0; r < result.trace.num_ranks(); ++r) {
    w.begin_object();
    w.key("rank").value(r);
    w.key("phases").begin_object();
    for (const auto& [name, ps] :
         result.trace.per_rank[static_cast<std::size_t>(r)]) {
      w.key(name).begin_object();
      w.key("seconds").value(ps.seconds);
      w.key("comm");
      write_comm(w, ps.comm);
      if (!ps.io.empty()) {
        w.key("io");
        write_io(w, ps.io);
      }
      w.end_object();
    }
    w.end_object();
    w.key("comm_total");
    write_comm(w, result.trace.rank_totals[static_cast<std::size_t>(r)]);
    w.end_object();
  }
  w.end_array();

  w.key("comm");
  write_comm(w, result.comm);

  // The I/O pipeline configuration plus job-wide chunked-scan accounting
  // (additive in pmafia-report-v1; totals are zero when the result predates
  // the trace exchange).
  w.key("io").begin_object();
  w.key("prefetch").value(result.io.prefetch);
  w.key("buffers").value(result.io.buffers);
  w.key("total");
  write_io(w, result.trace.io_total());
  w.end_object();

  // Section 4.5: what the measured volume would cost on the model machine
  // (SP2 by default), next to the wall time actually spent inside comm
  // calls (summed over ranks, barrier waits included).
  w.key("cost_model").begin_object();
  w.key("latency_seconds").value(model.latency_seconds);
  w.key("bandwidth_bytes_per_sec").value(model.bandwidth_bytes_per_sec);
  w.key("predicted_seconds").value(model.communication_seconds(result.comm));
  w.key("measured_seconds").value(result.comm.comm_seconds);
  w.end_object();

  w.end_object();
  return w.str();
}

std::string render_serve_report_json(const ServeReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmafia-serve-v1");
  w.key("listen").value(report.listen);
  w.key("model").begin_object();
  w.key("path").value(report.model_path);
  w.key("dims").value(report.num_dims);
  w.key("clusters").value(report.num_clusters);
  w.end_object();
  w.key("config").begin_object();
  w.key("serve_threads").value(report.serve_threads);
  w.key("max_batch").value(report.max_batch);
  w.end_object();
  w.key("traffic").begin_object();
  w.key("connections").value(report.connections);
  w.key("batches").value(report.batches);
  w.key("rows").value(report.rows);
  w.key("noise_rows").value(report.noise_rows);
  w.key("rejected_frames").value(report.rejected_frames);
  w.key("oversized_batches").value(report.oversized_batches);
  w.key("midframe_disconnects").value(report.midframe_disconnects);
  w.key("model_reloads").value(report.model_reloads);
  w.key("reload_failures").value(report.reload_failures);
  w.end_object();
  w.key("elapsed_seconds").value(report.elapsed_seconds);
  w.key("queries_per_second").value(report.queries_per_second);
  w.key("batches_per_second").value(report.batches_per_second);
  w.key("latency_ms").begin_object();
  w.key("p50").value(report.latency.p50_ms);
  w.key("p90").value(report.latency.p90_ms);
  w.key("p99").value(report.latency.p99_ms);
  w.key("max").value(report.latency.max_ms);
  w.key("mean").value(report.latency.mean_ms);
  w.end_object();
  w.end_object();
  return w.str();
}

std::string render_serve_report(const ServeReport& report) {
  std::ostringstream out;
  out << "pmafia serve @ " << report.listen << "\n";
  out << "  model: " << report.model_path << " (" << report.num_dims
      << " dims, " << report.num_clusters << " clusters)\n";
  out << "  config: " << report.serve_threads << " threads, max batch "
      << report.max_batch << "\n";
  out << "  traffic: " << report.connections << " connections, "
      << report.batches << " batches, " << report.rows << " rows ("
      << report.noise_rows << " noise)\n";
  out << "  rejects: " << report.rejected_frames << " malformed, "
      << report.oversized_batches << " oversized, "
      << report.midframe_disconnects << " mid-frame disconnects\n";
  out << "  reloads: " << report.model_reloads << " ok, "
      << report.reload_failures << " failed\n";
  out << std::fixed << std::setprecision(1);
  out << "  throughput: " << report.queries_per_second << " rows/s, "
      << report.batches_per_second << " batches/s over "
      << report.elapsed_seconds << " s\n";
  out << std::setprecision(3);
  out << "  latency ms: p50 " << report.latency.p50_ms << ", p90 "
      << report.latency.p90_ms << ", p99 " << report.latency.p99_ms
      << ", max " << report.latency.max_ms << ", mean "
      << report.latency.mean_ms << "\n";
  return out.str();
}

}  // namespace mafia
