// Level-granularity checkpoint/restart for the bottom-up loop.
//
// Each level of Algorithm 2 ends with a small, complete summary of every
// data pass so far: the adaptive grids, the next level's candidate units,
// the previous level's dense units (with parent links for maximality
// marking), everything registered as maximal, and the per-level trace.
// Serializing exactly that after each level means a multi-hour run killed
// at level k restarts at level k instead of level 1 — the cheapest
// possible recovery point for a grid/density algorithm, since the state is
// dense-unit summaries (kilobytes), not data (gigabytes).
//
// File format (version 4, little-endian PODs):
//   [0..7]   magic "MAFIACKP"
//   [8..11]  uint32 format version
//   [12..15] uint32 CRC-32 of the payload
//   [16.. ]  payload: fingerprint, data shape, loop state (including the
//            pending join-stats carried into the next level trace), grids,
//            unit stores, level traces, registered maximal units,
//            populate-kernel counters, join-kernel counters, and — when the
//            `complete` flag is set — the append-base sections: attribute
//            domains, the global fine histogram, one AppendLevelMemo per
//            executed level, and the data-segment provenance
// (Version 2 added the join-kernel work counters; version 3 added the
// per-level populate-kernel id, bitmap-index footprint/AND-work counters,
// and the unjoined-dense-unit count + capped printable list; version 4
// added the `complete` flag and the append-base sections behind it.  Older
// files are discarded by the version check and the run restarts from
// level 1.)
//
// Two kinds of checkpoint file share the format:
//   * per-level files "ckpt-level-NNNN.bin" (complete = 0): the recovery
//     points written at each level boundary, scanned by
//     load_latest_checkpoint for --resume;
//   * the final file "ckpt-final.bin" (complete = 1): written once after
//     the level loop finishes, carrying everything `pmafia append` needs
//     to fold a new batch in without rescanning the base data — the
//     domains and fine histogram (histogram reuse), and per-level memo
//     entries with the global counts and dense flags (level reuse).
//
// Torn writes cannot produce a "valid" half-checkpoint: files are written
// to a temp name and atomically renamed, and the CRC guards everything
// after the header.  load_latest_checkpoint walks levels highest-first and
// silently falls back past any file that is short, corrupt, from another
// format version, or fingerprinted for different options/data — counting
// the discards so the run report can surface them.
//
// The options fingerprint covers every knob that changes the computed
// state (grid parameters, density policy, join rule, dedup policy, tau,
// partitioning, max_level, domains, MDL pruning) and deliberately excludes
// knobs that provably don't (chunk size B, populate kernel selection and
// tuning — packed, memcmp, and bitmap produce bit-identical counts — join
// kernel selection — bucketed and pairwise joins are bit-identical — and
// rank count p; the determinism suite pins result invariance across all
// four), so a resume may legally change them, including switching
// --populate-kernel across the resume boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "core/result.hpp"
#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

inline constexpr std::uint32_t kCheckpointVersion = 4;

/// One data file a checkpointed run consumed, in concatenation order —
/// `pmafia append` reloads the segments to reconstruct the base data.
struct DataSegment {
  std::string path;
  std::uint64_t records = 0;
};

/// The entering state of one level-loop iteration plus its computed global
/// counts and dense flags — the memo an append run replays: as long as the
/// fresh flags of every earlier level match the stored ones, level k's
/// candidate set is unchanged, so its counts are the stored global counts
/// plus a batch-only populate pass.
struct AppendLevelMemo {
  std::uint64_t level = 1;
  UnitStore cdus{1};
  /// Join artifacts that produced `cdus` (empty/zero at level 1).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
  std::vector<std::uint32_t> raw_to_unique;
  std::uint64_t pending_raw_count = 0;
  JoinStats pending_join;
  std::uint8_t pending_join_kernel = 0;
  /// Global populate counts (post-allreduce, CDU order) and the dense
  /// flags identify produced from them (post-MDL when pruning is on).
  std::vector<Count> counts;
  std::vector<std::uint8_t> flags;
};

/// Everything the bottom-up loop needs to continue from a level boundary,
/// plus the cumulative outputs accumulated so far.  `level` is the next
/// level to populate; `cdus` its candidate units.
struct CheckpointState {
  std::uint64_t fingerprint = 0;   ///< checkpoint_fingerprint() of the run
  std::uint64_t num_records = 0;
  std::uint32_t num_dims = 0;

  // Loop-carried state (see MafiaWorker::level_loop).
  std::uint64_t level = 1;
  std::uint64_t pending_raw_count = 0;
  /// Join counters of the join that produced `cdus`, awaiting their level
  /// trace; kernel: 0 = none yet, 1 = pairwise, 2 = bucketed.
  JoinStats pending_join;
  std::uint8_t pending_join_kernel = 0;
  UnitStore cdus{1};
  UnitStore prev_dense{1};
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
  std::vector<std::uint32_t> raw_to_unique;

  // Cumulative outputs.
  GridSet grids;
  std::vector<LevelTrace> levels;
  std::vector<UnitStore> registered;
  PopulateKernelStats populate;
  JoinKernelStats join_kernel;

  // ---- Append-base sections (serialized only when `complete` is set).
  /// 1 for the final post-run checkpoint ("ckpt-final.bin"), 0 for the
  /// per-level recovery files.
  std::uint8_t complete = 0;
  /// Attribute domains the grids were built on.  Empty when the run could
  /// not record them (resumed runs restore grids, not the domain pass);
  /// append then falls back to full scans.
  std::vector<Value> domain_lo;
  std::vector<Value> domain_hi;
  /// Global fine histogram (dim-major, fine_bins cells per dim; see
  /// HistogramBuilder).  Empty when unavailable (resumed or uniform-grid
  /// runs); append then rebuilds the histogram from all records.
  std::vector<Count> hist_counts;
  /// One memo per executed level, contiguous from level 1.  Empty when the
  /// run resumed mid-way (earlier levels were never executed here).
  std::vector<AppendLevelMemo> memo;
  /// Data files this state was computed from, in concatenation order
  /// (copied from CheckpointConfig::provenance; filled by the CLI).
  std::vector<DataSegment> provenance;
};

/// Hash of the options and data shape a checkpoint is only valid for.
/// Bit-exact field hashing (doubles bit-cast), so any change to a
/// result-affecting knob invalidates old checkpoints.
[[nodiscard]] std::uint64_t checkpoint_fingerprint(const MafiaOptions& options,
                                                   std::uint64_t num_records,
                                                   std::uint32_t num_dims);

/// Serializes `state` to the version-1 wire format (CRC filled in).
[[nodiscard]] std::vector<std::uint8_t> serialize_checkpoint(
    const CheckpointState& state);

/// Parses and validates a serialized checkpoint.  Throws mafia::InputError
/// on bad magic, version, CRC, or structural corruption.
[[nodiscard]] CheckpointState deserialize_checkpoint(
    const std::uint8_t* data, std::size_t size);

/// Path of the checkpoint file for `level` under `directory`.
[[nodiscard]] std::string checkpoint_file_path(const std::string& directory,
                                               std::uint64_t level);

/// Atomically writes `state` as the checkpoint for its level under
/// `directory` (created if missing): temp file + rename, so a crash
/// mid-write leaves the previous level's file as the latest valid one.
void write_checkpoint_file(const std::string& directory,
                           const CheckpointState& state);

/// Result of scanning a checkpoint directory for a resume point.
struct CheckpointScan {
  std::optional<CheckpointState> state;  ///< latest valid checkpoint, if any
  std::uint64_t discarded = 0;  ///< corrupt/short/mismatched files skipped
};

/// Finds the highest-level checkpoint under `directory` that deserializes
/// cleanly and matches `fingerprint`, falling back level-by-level past
/// invalid files.  A missing directory is simply "no checkpoint".  Only
/// per-level files are scanned; the final file is load_final_checkpoint's.
[[nodiscard]] CheckpointScan load_latest_checkpoint(
    const std::string& directory, std::uint64_t fingerprint);

/// Path of the final (complete) checkpoint under `directory`.
[[nodiscard]] std::string final_checkpoint_path(const std::string& directory);

/// Atomically writes `state` (which must have `complete` set) as the final
/// checkpoint under `directory`: temp file + rename, so a crash mid-write
/// — including a SIGKILL mid-append — leaves the previous final state as
/// the valid one and the append simply reruns.
void write_final_checkpoint(const std::string& directory,
                            const CheckpointState& state);

/// Loads the final checkpoint under `directory` if present, valid,
/// complete, and fingerprinted `fingerprint` (0 = accept any fingerprint).
/// Invalid or mismatched files count as discarded, exactly like
/// load_latest_checkpoint.
[[nodiscard]] CheckpointScan load_final_checkpoint(
    const std::string& directory, std::uint64_t fingerprint);

}  // namespace mafia
