// Per-rank, per-phase run tracing — the observability layer behind the
// structured run reports.
//
// The paper's quantitative claims (near-linear speedup, the Section 4.5
// cost model, "negligible communication overhead") are all statements
// about WHERE time and bytes go: which phase, on which rank.  A PhaseTracer
// rides along with each SPMD rank, timing the driver's phases and
// snapshotting the rank's mp::CommStats at every phase boundary so each
// reduce/bcast/gather is attributed to the phase that issued it.  At the
// end of the run the per-rank tracers are globalized (gatherv of the
// serialized records plus an allreduce_max of the phase seconds) into a
// RunTrace: the true cross-rank picture, carried on MafiaResult and
// rendered by render_report / render_report_json.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "io/pipeline.hpp"
#include "mp/stats.hpp"

namespace mafia {

namespace mp {
class Comm;
}  // namespace mp

/// Wall seconds plus communication-counter deltas and chunked-scan I/O
/// accounting for one phase on one rank.  The comm deltas of all phases sum
/// to the rank's totals because every collective the driver issues happens
/// inside some phase scope; `io` is nonzero only for the phases that scan
/// data (histogram, populate).
struct PhaseStats {
  double seconds = 0.0;
  mp::CommStats comm;
  IoScanStats io;

  void merge(const PhaseStats& other) {
    seconds += other.seconds;
    comm.merge(other.comm);
    io.merge(other.io);
  }
};

/// Phase name -> accumulated stats, for one rank.
using PhaseMap = std::map<std::string, PhaseStats>;

/// Per-rank accumulator.  Construct with a pointer to the rank's live
/// CommStats (nullptr for comm-less callers); open a Scope around each
/// phase.  Scopes accumulate: re-entering a phase name adds to it.
class PhaseTracer {
 public:
  explicit PhaseTracer(const mp::CommStats* live = nullptr) : live_(live) {}

  /// RAII phase scope: times the enclosed block and attributes the comm
  /// counter movement inside it to `phase`.
  class Scope {
   public:
    Scope(PhaseTracer& tracer, std::string phase)
        : tracer_(tracer),
          phase_(std::move(phase)),
          at_entry_(tracer.live_ ? *tracer.live_ : mp::CommStats{}) {}

    ~Scope() {
      PhaseStats ps;
      ps.seconds = clock_.seconds();
      if (tracer_.live_ != nullptr) {
        ps.comm = tracer_.live_->delta_since(at_entry_);
      }
      tracer_.phases_[phase_].merge(ps);
    }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    PhaseTracer& tracer_;
    std::string phase_;
    mp::CommStats at_entry_;
    Timer clock_;
  };

  [[nodiscard]] const PhaseMap& phases() const { return phases_; }

  /// Attributes one chunked scan's I/O accounting to `phase` (accumulates,
  /// like re-entered Scopes do for seconds).
  void add_io(const std::string& phase, const IoScanStats& io) {
    phases_[phase].io.merge(io);
  }

  /// Seconds-only view in the legacy PhaseTimer shape.
  [[nodiscard]] PhaseTimer timer() const;

 private:
  const mp::CommStats* live_;
  PhaseMap phases_;
};

/// The globalized cross-rank trace of one run.  `max_phases` is filled on
/// every rank (via allreduce_max); the full per-rank breakdown and totals
/// are gathered onto the parent rank only — exactly the paper's "parent
/// processor owns the printable result" convention.
struct RunTrace {
  /// Per-rank phase breakdown, indexed by rank (parent rank only; empty
  /// elsewhere and on results that predate the exchange).
  std::vector<PhaseMap> per_rank;

  /// Per-rank CommStats totals snapshot taken after the last algorithm
  /// phase and before the trace exchange itself — so the per-phase deltas
  /// sum exactly to these totals (parent rank only).
  std::vector<mp::CommStats> rank_totals;

  /// Per-phase wall seconds, max across ranks (every rank).
  PhaseTimer max_phases;

  [[nodiscard]] bool empty() const { return per_rank.empty(); }
  [[nodiscard]] int num_ranks() const { return static_cast<int>(per_rank.size()); }

  /// Sorted union of phase names across ranks.
  [[nodiscard]] std::vector<std::string> phase_names() const;

  /// Cross-rank seconds statistics for one phase (max is available on all
  /// ranks; min/mean need the gathered per-rank data).
  [[nodiscard]] double max_seconds(const std::string& phase) const;
  [[nodiscard]] double min_seconds(const std::string& phase) const;
  [[nodiscard]] double mean_seconds(const std::string& phase) const;

  /// One rank's stats for one phase (zeros if absent).
  [[nodiscard]] PhaseStats rank_phase(int rank, const std::string& phase) const;

  /// Comm counters attributed to one phase, summed over ranks.
  [[nodiscard]] mp::CommStats phase_comm(const std::string& phase) const;

  /// I/O accounting attributed to one phase, summed over ranks.
  [[nodiscard]] IoScanStats phase_io(const std::string& phase) const;

  /// Job-wide chunked-scan I/O totals: every phase's io summed over ranks
  /// (parent rank only — zeros on results that predate the exchange).
  [[nodiscard]] IoScanStats io_total() const;

  /// Job-wide comm totals: the sum of the per-rank snapshots (excludes the
  /// trace exchange's own instrumentation traffic).
  [[nodiscard]] mp::CommStats comm_total() const;
};

/// Collective: globalizes every rank's tracer into a RunTrace.  Must be
/// called by all ranks, after the last algorithm phase.  All ranks must
/// have recorded the same phase-name set (the driver guarantees this: every
/// branch depends on globally replicated state); the collectives' length
/// checks enforce it.  The exchange's own collectives are deliberately not
/// attributed to any phase and excluded from the trace's totals.
[[nodiscard]] RunTrace exchange_trace(const PhaseTracer& tracer, mp::Comm& comm);

}  // namespace mafia
