// Shared component codecs (unit stores, grids, level traces) and the
// process-backend worker-result blob.
//
// On the threads backend rank 0's lambda writes straight into the caller's
// MafiaResult; on the process backend rank 0 is a forked child, so
// everything the parent reports must cross the process boundary as bytes.
// WorkerResult is exactly that payload: the parent deserializes it and
// recomputes the cluster set from the registered maximal units
// (assemble_clusters is deterministic, so the parent-side assembly is
// bit-identical to what rank 0 computed in-child).
//
// The component codecs started life inside core/checkpoint.cpp; they are
// hoisted here so the checkpoint format and the result blob share one
// implementation (both build on common/bytes.hpp, with per-format error
// contexts).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "core/result.hpp"
#include "core/trace.hpp"
#include "grid/grid_types.hpp"
#include "units/unit_store.hpp"

namespace mafia {

// ------------------------------------------------------- component codecs

void write_store(ByteWriter& w, const UnitStore& store);
[[nodiscard]] UnitStore read_store(ByteReader& r);

void write_grids(ByteWriter& w, const GridSet& grids);
[[nodiscard]] GridSet read_grids(ByteReader& r);

void write_level_trace(ByteWriter& w, const LevelTrace& t);
[[nodiscard]] LevelTrace read_level_trace(ByteReader& r);

// ------------------------------------------------------ worker result blob

/// Everything rank 0 must ship to the parent process at the end of a
/// process-backend run: the printable result minus the cluster set, which
/// the parent reassembles from `registered`.
struct WorkerResult {
  GridSet grids;
  std::vector<LevelTrace> levels;
  std::vector<UnitStore> registered;
  RunTrace trace;
  PopulateKernelStats populate;
  JoinKernelStats join_kernel;
  RecoveryInfo recovery;
  AppendStats append;
};

/// Serializes the blob rank 0 hands to Comm::set_result.
[[nodiscard]] std::vector<std::uint8_t> serialize_worker_result(
    const WorkerResult& wr);

/// Parses a worker-result blob.  Throws mafia::Error (Internal) on a
/// short or structurally corrupt payload — the blob never touches disk, so
/// corruption here means a transport bug, not bad user input.
[[nodiscard]] WorkerResult deserialize_worker_result(const std::uint8_t* data,
                                                     std::size_t size);

}  // namespace mafia
