// MDL-based subspace selection (from the CLIQUE paper, Section 3.2 there).
//
// CLIQUE sorts subspaces by coverage (the total number of records inside
// the subspace's dense units) and picks the prefix/suffix split minimizing
// the total code length of describing both groups relative to their means;
// subspaces in the low-coverage group are pruned.  Our paper deliberately
// disables this ("this could result in missing some dense units in the
// pruned subspaces"), but the baseline supports it so the omission is a
// measured choice rather than a missing feature.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mafia {

/// Given per-subspace coverages, returns a selection mask (1 = keep).
/// Implements the two-group MDL split: coverages are sorted descending,
/// every cut position is scored by
///   CL(i) = log2(mu_I + 1) + Σ_{j∈I} log2(|x_j − mu_I| + 1)
///         + log2(mu_P + 1) + Σ_{j∈P} log2(|x_j − mu_P| + 1)
/// and the minimizing cut keeps the high-coverage group I.  With fewer than
/// two subspaces, everything is kept.
[[nodiscard]] std::vector<std::uint8_t> mdl_select_subspaces(
    const std::vector<std::uint64_t>& coverages);

}  // namespace mafia
