// pMAFIA: the parallel subspace clustering driver (Algorithm 2).
//
// One SPMD worker implements the whole algorithm; "the algorithm can also
// run on a single processor in which the communication steps will be
// ignored" (Section 4), so the serial entry point simply runs the worker
// with p = 1 — guaranteeing serial and parallel runs share every line of
// algorithm code (and therefore produce identical clusters, which the test
// suite asserts across rank counts).
//
// Phase structure per Algorithm 2:
//   1. (optional) min/max pass to learn attribute domains;
//   2. chunked histogram pass, Reduce to globalize, adaptive grids
//      (Algorithm 1) computed redundantly on every rank;
//   3. level loop: populate candidates over local data (data parallel) ->
//      Reduce counts -> identify dense units (task parallel) -> register
//      maximal units -> join into next level's candidates (task parallel,
//      Eq. 1 partitioning) -> eliminate repeats (task parallel);
//   4. parent rank assembles clusters (connectivity, subset elimination,
//      DNF) from the registered units.
#pragma once

#include "core/options.hpp"
#include "core/result.hpp"
#include "io/data_source.hpp"

namespace mafia {

/// Runs pMAFIA on `p` SPMD ranks.  Thread-based ranks model the paper's
/// MPI processes; see mp/comm.hpp.  Throws mafia::Error on bad options.
[[nodiscard]] MafiaResult run_pmafia(const DataSource& data,
                                     const MafiaOptions& options, int p);

/// Serial MAFIA (p = 1, communication degenerate).
[[nodiscard]] inline MafiaResult run_mafia(const DataSource& data,
                                           const MafiaOptions& options = {}) {
  return run_pmafia(data, options, 1);
}

}  // namespace mafia
