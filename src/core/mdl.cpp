#include "core/mdl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace mafia {

std::vector<std::uint8_t> mdl_select_subspaces(
    const std::vector<std::uint64_t>& coverages) {
  const std::size_t n = coverages.size();
  std::vector<std::uint8_t> keep(n, 1);
  if (n < 2) return keep;

  // Sort indices by coverage, descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return coverages[a] > coverages[b];
  });

  // Prefix sums over the sorted coverages for O(1) group means.
  std::vector<double> sorted(n);
  for (std::size_t i = 0; i < n; ++i) {
    sorted[i] = static_cast<double>(coverages[order[i]]);
  }
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sorted[i];

  const auto bits = [](double x) { return std::log2(std::fabs(x) + 1.0); };

  // Baseline: no pruning (one group).  A cut must beat describing all
  // coverages against a single mean, or everything is kept.
  std::size_t best_cut = n;
  const double mu_all = prefix[n] / static_cast<double>(n);
  double best_cost = bits(mu_all);
  for (std::size_t i = 0; i < n; ++i) best_cost += bits(sorted[i] - mu_all);

  for (std::size_t cut = 1; cut < n; ++cut) {
    const double mu_keep = prefix[cut] / static_cast<double>(cut);
    const double mu_prune =
        (prefix[n] - prefix[cut]) / static_cast<double>(n - cut);
    double cost = bits(mu_keep) + bits(mu_prune);
    for (std::size_t i = 0; i < cut; ++i) cost += bits(sorted[i] - mu_keep);
    for (std::size_t i = cut; i < n; ++i) cost += bits(sorted[i] - mu_prune);
    if (cost < best_cost) {
      best_cost = cost;
      best_cut = cut;
    }
  }

  for (std::size_t i = best_cut; i < n; ++i) keep[order[i]] = 0;
  return keep;
}

}  // namespace mafia
