#include "core/trace.hpp"

#include <limits>

#include "common/error.hpp"
#include "mp/comm.hpp"

namespace mafia {

PhaseTimer PhaseTracer::timer() const {
  PhaseTimer t;
  for (const auto& [name, ps] : phases_) t.add(name, ps.seconds);
  return t;
}

std::vector<std::string> RunTrace::phase_names() const {
  // std::map keeps each rank's names sorted; the union stays sorted too.
  std::map<std::string, bool> seen;
  for (const auto& [name, secs] : max_phases.phases()) seen[name] = true;
  for (const PhaseMap& rank : per_rank) {
    for (const auto& [name, ps] : rank) seen[name] = true;
  }
  std::vector<std::string> names;
  names.reserve(seen.size());
  for (const auto& [name, unused] : seen) names.push_back(name);
  return names;
}

double RunTrace::max_seconds(const std::string& phase) const {
  return max_phases.get(phase);
}

double RunTrace::min_seconds(const std::string& phase) const {
  double lo = std::numeric_limits<double>::infinity();
  for (const PhaseMap& rank : per_rank) {
    const auto it = rank.find(phase);
    lo = std::min(lo, it == rank.end() ? 0.0 : it->second.seconds);
  }
  return per_rank.empty() ? 0.0 : lo;
}

double RunTrace::mean_seconds(const std::string& phase) const {
  if (per_rank.empty()) return 0.0;
  double sum = 0.0;
  for (const PhaseMap& rank : per_rank) {
    const auto it = rank.find(phase);
    if (it != rank.end()) sum += it->second.seconds;
  }
  return sum / static_cast<double>(per_rank.size());
}

PhaseStats RunTrace::rank_phase(int rank, const std::string& phase) const {
  require(rank >= 0 && rank < num_ranks(), "RunTrace: bad rank");
  const PhaseMap& m = per_rank[static_cast<std::size_t>(rank)];
  const auto it = m.find(phase);
  return it == m.end() ? PhaseStats{} : it->second;
}

mp::CommStats RunTrace::phase_comm(const std::string& phase) const {
  mp::CommStats total;
  for (const PhaseMap& rank : per_rank) {
    const auto it = rank.find(phase);
    if (it != rank.end()) total.merge(it->second.comm);
  }
  return total;
}

IoScanStats RunTrace::phase_io(const std::string& phase) const {
  IoScanStats total;
  for (const PhaseMap& rank : per_rank) {
    const auto it = rank.find(phase);
    if (it != rank.end()) total.merge(it->second.io);
  }
  return total;
}

IoScanStats RunTrace::io_total() const {
  IoScanStats total;
  for (const PhaseMap& rank : per_rank) {
    for (const auto& [name, ps] : rank) total.merge(ps.io);
  }
  return total;
}

mp::CommStats RunTrace::comm_total() const {
  mp::CommStats total;
  for (const mp::CommStats& s : rank_totals) total.merge(s);
  return total;
}

RunTrace exchange_trace(const PhaseTracer& tracer, mp::Comm& comm) {
  // Per-phase serialization: the CommStats words followed by the
  // IoScanStats words, one fixed-width block per phase.
  constexpr std::size_t kCommWords = mp::CommStats::kSerializedWords;
  constexpr std::size_t kWords = kCommWords + IoScanStats::kSerializedWords;

  // Snapshot this rank's totals BEFORE the instrumentation traffic below,
  // so the reported totals equal the sum of the per-phase deltas.
  const mp::CommStats totals = comm.stats();

  // Serialize this rank's phases in sorted-name order (identical on every
  // rank — the driver's phase structure depends only on replicated state).
  std::vector<double> seconds;
  std::vector<std::uint64_t> words;
  seconds.reserve(tracer.phases().size());
  words.reserve(tracer.phases().size() * kWords);
  for (const auto& [name, ps] : tracer.phases()) {
    seconds.push_back(ps.seconds);
    const auto packed = ps.comm.serialize();
    words.insert(words.end(), packed.begin(), packed.end());
    const auto io_packed = ps.io.serialize();
    words.insert(words.end(), io_packed.begin(), io_packed.end());
  }

  // Every rank learns the cross-rank per-phase maxima (the slowest rank
  // bounds the job); the full breakdown is gathered onto the parent.
  std::vector<double> max_seconds = seconds;
  comm.allreduce_max(max_seconds);
  const std::vector<double> all_seconds = comm.gatherv(seconds);
  const std::vector<std::uint64_t> all_words = comm.gatherv(words);
  const auto packed_totals = totals.serialize();
  const std::vector<std::uint64_t> all_totals = comm.gatherv(
      std::vector<std::uint64_t>(packed_totals.begin(), packed_totals.end()));

  RunTrace trace;
  std::size_t i = 0;
  for (const auto& [name, ps] : tracer.phases()) {
    trace.max_phases.add(name, max_seconds[i++]);
  }

  if (!comm.is_parent()) return trace;

  const auto p = static_cast<std::size_t>(comm.size());
  const std::size_t np = tracer.phases().size();
  require(all_seconds.size() == p * np && all_words.size() == p * np * kWords &&
              all_totals.size() == p * kCommWords,
          "exchange_trace: ranks disagree on the phase structure");

  trace.per_rank.resize(p);
  trace.rank_totals.resize(p);
  for (std::size_t r = 0; r < p; ++r) {
    PhaseMap& phases = trace.per_rank[r];
    std::size_t k = 0;
    for (const auto& [name, ps] : tracer.phases()) {
      PhaseStats rs;
      rs.seconds = all_seconds[r * np + k];
      const std::uint64_t* block = all_words.data() + (r * np + k) * kWords;
      rs.comm = mp::CommStats::deserialize(block);
      rs.io = IoScanStats::deserialize(block + kCommWords);
      phases.emplace(name, rs);
      ++k;
    }
    trace.rank_totals[r] =
        mp::CommStats::deserialize(all_totals.data() + r * kCommWords);
  }
  return trace;
}

}  // namespace mafia
