// Run reports — the library's equivalent of the parent processor's
// print-clusters() step in Algorithm 2, in two renderings: a human-readable
// text report and a machine-readable JSON document (the observability
// layer's stable output format; schema "pmafia-report-v1", documented in
// docs/architecture.md).
#pragma once

#include <string>

#include "core/result.hpp"
#include "mp/stats.hpp"

namespace mafia {

/// Renders the full result: cluster list with DNF expressions, the
/// per-level Ncdu/Ndu trace, phase timings and communication totals.
[[nodiscard]] std::string render_report(const MafiaResult& result);

/// Renders just the cluster list (one DNF expression per line).
[[nodiscard]] std::string render_clusters(const MafiaResult& result);

/// Renders the structured JSON run report ("pmafia-report-v1"): run shape
/// (records/dims/ranks), per-level CDU and dense-unit counts, per-phase
/// max/min/mean seconds with attributed comm deltas, the full per-rank
/// breakdown when the trace carries it, job comm totals, and the Section
/// 4.5 cost model's predicted communication seconds next to the measured
/// in-comm wall time.  `model` defaults to the paper's SP2 constants.
[[nodiscard]] std::string render_report_json(const MafiaResult& result,
                                             const mp::CostModel& model = {});

}  // namespace mafia
