// Human-readable run reports — the library's equivalent of the parent
// processor's print-clusters() step in Algorithm 2.
#pragma once

#include <string>

#include "core/result.hpp"

namespace mafia {

/// Renders the full result: cluster list with DNF expressions, the
/// per-level Ncdu/Ndu trace, phase timings and communication totals.
[[nodiscard]] std::string render_report(const MafiaResult& result);

/// Renders just the cluster list (one DNF expression per line).
[[nodiscard]] std::string render_clusters(const MafiaResult& result);

}  // namespace mafia
