// Run reports — the library's equivalent of the parent processor's
// print-clusters() step in Algorithm 2, in two renderings: a human-readable
// text report and a machine-readable JSON document (the observability
// layer's stable output format; schema "pmafia-report-v1", documented in
// docs/architecture.md).
#pragma once

#include <cstdint>
#include <string>

#include "core/result.hpp"
#include "mp/stats.hpp"

namespace mafia {

/// Renders the full result: cluster list with DNF expressions, the
/// per-level Ncdu/Ndu trace, phase timings and communication totals.
[[nodiscard]] std::string render_report(const MafiaResult& result);

/// Renders just the cluster list (one DNF expression per line).
[[nodiscard]] std::string render_clusters(const MafiaResult& result);

/// Batch-latency digest of a serve run (milliseconds).  Quantiles come from
/// the daemon's log-bucketed histogram; max and mean are exact.
struct ServeLatency {
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double mean_ms = 0.0;
};

/// Snapshot of a `pmafia serve` daemon's lifetime counters — plain data so
/// core can render it without depending on the serve module.  Rendered as
/// schema "pmafia-serve-v1" (docs/architecture.md); the bench gate reads
/// queries_per_second and latency.p99_ms from it.
struct ServeReport {
  std::string listen;        ///< listen spec actually bound (resolved port)
  std::string model_path;
  std::uint64_t num_dims = 0;
  std::uint64_t num_clusters = 0;
  std::uint64_t serve_threads = 0;
  std::uint64_t max_batch = 0;

  std::uint64_t connections = 0;
  std::uint64_t batches = 0;    ///< query frames answered
  std::uint64_t rows = 0;       ///< rows classified across all batches
  std::uint64_t noise_rows = 0; ///< rows answered kNoiseLabel (never kUnlabeledLabel)
  std::uint64_t rejected_frames = 0;      ///< malformed frames/payloads
  std::uint64_t oversized_batches = 0;    ///< len or row count over --max-batch
  std::uint64_t midframe_disconnects = 0; ///< peer vanished inside a frame
  std::uint64_t model_reloads = 0;        ///< successful SIGHUP reloads
  std::uint64_t reload_failures = 0;      ///< reloads that kept the old model

  double elapsed_seconds = 0.0;
  double queries_per_second = 0.0;  ///< rows / elapsed
  double batches_per_second = 0.0;
  ServeLatency latency;
};

/// Renders the serve snapshot as schema "pmafia-serve-v1" JSON.
[[nodiscard]] std::string render_serve_report_json(const ServeReport& report);

/// Human-readable rendering of the serve snapshot (daemon shutdown banner).
[[nodiscard]] std::string render_serve_report(const ServeReport& report);

/// Renders the structured JSON run report ("pmafia-report-v1"): run shape
/// (records/dims/ranks), per-level CDU and dense-unit counts, per-phase
/// max/min/mean seconds with attributed comm deltas, the full per-rank
/// breakdown when the trace carries it, job comm totals, and the Section
/// 4.5 cost model's predicted communication seconds next to the measured
/// in-comm wall time.  `model` defaults to the paper's SP2 constants.
[[nodiscard]] std::string render_report_json(const MafiaResult& result,
                                             const mp::CostModel& model = {});

}  // namespace mafia
