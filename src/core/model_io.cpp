#include "core/model_io.hpp"

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace mafia {

namespace {

constexpr const char* kMagic = "MAFIA-MODEL";
constexpr int kVersion = 1;

void expect_token(std::istream& in, const std::string& expected,
                  const std::string& path) {
  std::string token;
  in >> token;
  require(in.good() && token == expected,
          "load_model: expected '" + expected + "' in " + path +
              (token.empty() ? "" : " (got '" + token + "')"));
}

template <typename T>
T read_value(std::istream& in, const std::string& path, const char* what) {
  T value{};
  in >> value;
  require(!in.fail(), std::string("load_model: bad ") + what + " in " + path);
  return value;
}

// istream extraction cannot parse hexfloats portably; go through strtod.
double read_double(std::istream& in, const std::string& path, const char* what) {
  std::string token;
  in >> token;
  require(!in.fail() && !token.empty(),
          std::string("load_model: bad ") + what + " in " + path);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  require(end == token.c_str() + token.size(),
          std::string("load_model: bad ") + what + " in " + path);
  return value;
}

}  // namespace

void save_model(const std::string& path, const GridSet& grids,
                const std::vector<Cluster>& clusters) {
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "save_model: cannot open " + path);
  out << std::hexfloat;

  out << kMagic << " " << kVersion << "\n";
  out << "dims " << grids.num_dims() << "\n";
  for (const DimensionGrid& g : grids.dims) {
    out << "grid " << static_cast<int>(g.dim) << " "
        << (g.uniform_fallback ? 1 : 0) << " " << g.num_bins() << "\n";
    out << "  domain " << g.domain_lo << " " << g.domain_hi << "\n";
    out << "  edges";
    for (const Value e : g.edges) out << " " << e;
    out << "\n  thresholds";
    for (const double t : g.thresholds) out << " " << t;
    out << "\n";
  }

  out << "clusters " << clusters.size() << "\n";
  for (const Cluster& c : clusters) {
    out << "cluster " << c.dims.size() << "\n";
    out << "  dims";
    for (const DimId d : c.dims) out << " " << static_cast<int>(d);
    out << "\n  units " << c.units.size() << "\n";
    for (std::size_t u = 0; u < c.units.size(); ++u) {
      out << "   ";
      for (const BinId b : c.units.bins(u)) out << " " << static_cast<int>(b);
      out << "\n";
    }
    out << "  dnf " << c.dnf.size() << "\n";
    for (const BinRect& r : c.dnf) {
      out << "   ";
      for (const BinId b : r.lo) out << " " << static_cast<int>(b);
      for (const BinId b : r.hi) out << " " << static_cast<int>(b);
      out << "\n";
    }
  }
  require(out.good(), "save_model: write failed for " + path);
}

Model load_model(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_model: cannot open " + path);
  in >> std::hexfloat;

  expect_token(in, kMagic, path);
  const int version = read_value<int>(in, path, "version");
  require(version == kVersion, "load_model: unsupported version in " + path);

  Model model;
  expect_token(in, "dims", path);
  const auto d = read_value<std::size_t>(in, path, "dimension count");
  require(d >= 1 && d <= kMaxDims, "load_model: bad dimension count in " + path);

  model.grids.dims.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    expect_token(in, "grid", path);
    DimensionGrid g;
    g.dim = static_cast<DimId>(read_value<int>(in, path, "grid dim"));
    g.uniform_fallback = read_value<int>(in, path, "fallback flag") != 0;
    const auto nbins = read_value<std::size_t>(in, path, "bin count");
    require(nbins >= 1 && nbins <= kMaxBinsPerDim,
            "load_model: bad bin count in " + path);
    expect_token(in, "domain", path);
    g.domain_lo = static_cast<Value>(read_double(in, path, "domain lo"));
    g.domain_hi = static_cast<Value>(read_double(in, path, "domain hi"));
    expect_token(in, "edges", path);
    g.edges.resize(nbins + 1);
    for (Value& e : g.edges) e = static_cast<Value>(read_double(in, path, "edge"));
    expect_token(in, "thresholds", path);
    g.thresholds.resize(nbins);
    for (double& t : g.thresholds) t = read_double(in, path, "threshold");
    g.validate();
    model.grids.dims.push_back(std::move(g));
  }

  expect_token(in, "clusters", path);
  const auto nclusters = read_value<std::size_t>(in, path, "cluster count");
  model.clusters.reserve(nclusters);
  for (std::size_t ci = 0; ci < nclusters; ++ci) {
    expect_token(in, "cluster", path);
    const auto k = read_value<std::size_t>(in, path, "cluster dimensionality");
    require(k >= 1 && k <= kMaxDims, "load_model: bad cluster dims in " + path);
    Cluster c;
    expect_token(in, "dims", path);
    c.dims.resize(k);
    for (DimId& dim : c.dims) {
      dim = static_cast<DimId>(read_value<int>(in, path, "cluster dim"));
      require(dim < d, "load_model: cluster dim out of range in " + path);
    }
    expect_token(in, "units", path);
    const auto nunits = read_value<std::size_t>(in, path, "unit count");
    c.units = UnitStore(k);
    std::vector<BinId> bins(k);
    for (std::size_t u = 0; u < nunits; ++u) {
      for (BinId& b : bins) {
        b = static_cast<BinId>(read_value<int>(in, path, "unit bin"));
      }
      c.units.push_unchecked(c.dims.data(), bins.data());
    }
    expect_token(in, "dnf", path);
    const auto nrects = read_value<std::size_t>(in, path, "rect count");
    c.dnf.resize(nrects);
    for (BinRect& r : c.dnf) {
      r.lo.resize(k);
      r.hi.resize(k);
      for (BinId& b : r.lo) {
        b = static_cast<BinId>(read_value<int>(in, path, "rect lo"));
      }
      for (BinId& b : r.hi) {
        b = static_cast<BinId>(read_value<int>(in, path, "rect hi"));
      }
    }
    model.clusters.push_back(std::move(c));
  }
  return model;
}

}  // namespace mafia
