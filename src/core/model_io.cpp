#include "core/model_io.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace mafia {

namespace {

constexpr const char* kMagic = "MAFIA-MODEL";
constexpr int kVersion = 1;

/// Plausibility cap on every declared entity count (clusters, units, DNF
/// rects).  A corrupt or hostile count field must fail as bad input before
/// the loader resize()s terabytes — anything above this is not a model a
/// save_model() of this library could have produced.
constexpr std::size_t kMaxModelEntities = 100'000'000;

/// Line-aware tokenizer over the whole model file.  The istream >> operator
/// skips newlines silently, which is exactly why the original loader could
/// not name the offending line; this reads the file once and hands out
/// whitespace-separated tokens while tracking the 1-based line each token
/// sits on, so every diagnostic is "path:line: what".
class ModelTokenizer {
 public:
  ModelTokenizer(std::istream& in, std::string path) : path_(std::move(path)) {
    std::string line;
    while (std::getline(in, line)) lines_.push_back(std::move(line));
  }

  /// Next token, or throws InputError (truncated file).
  std::string next(const char* what) {
    std::string token;
    if (!try_next(&token)) {
      throw InputError("load_model: " + where() + ": unexpected end of file, "
                       "expected " + std::string(what));
    }
    return token;
  }

  /// True when no token remains (trailing-garbage check).
  [[nodiscard]] bool exhausted() {
    std::string token;
    if (!try_next(&token)) return true;
    // Un-consume is not needed: exhausted() is only called once, at EOF.
    last_token_ = std::move(token);
    return false;
  }

  /// "path:line" of the most recently returned token (or the current scan
  /// position when nothing was returned yet).
  [[nodiscard]] std::string where() const {
    return path_ + ":" + std::to_string(token_line_ == 0 ? line_ + 1
                                                         : token_line_);
  }

  [[nodiscard]] const std::string& last_token() const { return last_token_; }

  /// Fails the parse at the current token's line (ErrorClass::Input).
  [[noreturn]] void fail(const std::string& message) const {
    throw InputError("load_model: " + where() + ": " + message);
  }

 private:
  bool try_next(std::string* out) {
    while (line_ < lines_.size()) {
      const std::string& text = lines_[line_];
      while (col_ < text.size() &&
             (text[col_] == ' ' || text[col_] == '\t' || text[col_] == '\r')) {
        ++col_;
      }
      if (col_ >= text.size()) {
        ++line_;
        col_ = 0;
        continue;
      }
      const std::size_t start = col_;
      while (col_ < text.size() && text[col_] != ' ' && text[col_] != '\t' &&
             text[col_] != '\r') {
        ++col_;
      }
      token_line_ = line_ + 1;
      *out = text.substr(start, col_ - start);
      last_token_ = *out;
      return true;
    }
    return false;
  }

  std::string path_;
  std::vector<std::string> lines_;
  std::size_t line_ = 0;       ///< 0-based scan line
  std::size_t col_ = 0;        ///< scan column within line_
  std::size_t token_line_ = 0; ///< 1-based line of the last token (0 = none)
  std::string last_token_;
};

void expect_token(ModelTokenizer& t, const std::string& expected) {
  const std::string token = t.next(("'" + expected + "'").c_str());
  if (token != expected) {
    t.fail("expected '" + expected + "', got '" + token + "'");
  }
}

/// Strict full-token unsigned parse; anything else (sign, junk suffix,
/// overflow) is an input error naming the line.
std::size_t read_count(ModelTokenizer& t, const char* what) {
  const std::string token = t.next(what);
  if (token.empty() || token[0] == '-' || token[0] == '+') {
    t.fail("bad " + std::string(what) + " '" + token + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (errno != 0 || end != token.c_str() + token.size()) {
    t.fail("bad " + std::string(what) + " '" + token + "'");
  }
  return static_cast<std::size_t>(v);
}

/// read_count with the anti-OOM plausibility cap applied.
std::size_t read_entity_count(ModelTokenizer& t, const char* what) {
  const std::size_t v = read_count(t, what);
  if (v > kMaxModelEntities) {
    t.fail("implausible " + std::string(what) + " " + std::to_string(v));
  }
  return v;
}

/// Bin index: strict parse plus the range check against the dimension's
/// declared grid.  The original loader's bare cast-to-BinId silently
/// wrapped 300 to 44 — an out-of-range index must be rejected, not aliased
/// onto a different bin.
BinId read_bin(ModelTokenizer& t, const char* what,
               const DimensionGrid& grid) {
  const std::size_t v = read_count(t, what);
  if (v >= grid.num_bins()) {
    t.fail(std::string(what) + " " + std::to_string(v) +
           " out of range for dim " + std::to_string(grid.dim) + " (" +
           std::to_string(grid.num_bins()) + " bins)");
  }
  return static_cast<BinId>(v);
}

/// Floating-point value: istream extraction cannot parse hexfloats
/// portably, so the token goes through strtod; partial parses ("0x1.8pz",
/// "1.5junk") and non-finite results are input errors.
double read_double(ModelTokenizer& t, const char* what) {
  const std::string token = t.next(what);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || token.empty()) {
    t.fail("bad " + std::string(what) + " '" + token + "'");
  }
  if (!std::isfinite(value)) {
    t.fail("non-finite " + std::string(what) + " '" + token + "'");
  }
  return value;
}

}  // namespace

void save_model(const std::string& path, const GridSet& grids,
                const std::vector<Cluster>& clusters) {
  // Write-then-rename so readers (a running `pmafia serve` reloading on
  // SIGHUP) only ever see a complete model file, never a torn write.
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::trunc);
  require(out.good(), "save_model: cannot open " + tmp);
  out << std::hexfloat;

  out << kMagic << " " << kVersion << "\n";
  out << "dims " << grids.num_dims() << "\n";
  for (const DimensionGrid& g : grids.dims) {
    out << "grid " << static_cast<int>(g.dim) << " "
        << (g.uniform_fallback ? 1 : 0) << " " << g.num_bins() << "\n";
    out << "  domain " << g.domain_lo << " " << g.domain_hi << "\n";
    out << "  edges";
    for (const Value e : g.edges) out << " " << e;
    out << "\n  thresholds";
    for (const double t : g.thresholds) out << " " << t;
    out << "\n";
  }

  out << "clusters " << clusters.size() << "\n";
  for (const Cluster& c : clusters) {
    out << "cluster " << c.dims.size() << "\n";
    out << "  dims";
    for (const DimId d : c.dims) out << " " << static_cast<int>(d);
    out << "\n  units " << c.units.size() << "\n";
    for (std::size_t u = 0; u < c.units.size(); ++u) {
      out << "   ";
      for (const BinId b : c.units.bins(u)) out << " " << static_cast<int>(b);
      out << "\n";
    }
    out << "  dnf " << c.dnf.size() << "\n";
    for (const BinRect& r : c.dnf) {
      out << "   ";
      for (const BinId b : r.lo) out << " " << static_cast<int>(b);
      for (const BinId b : r.hi) out << " " << static_cast<int>(b);
      out << "\n";
    }
  }
  out.flush();
  require(out.good(), "save_model: write failed for " + tmp);
  out.close();
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "save_model: rename failed for " + path);
}

Model load_model(const std::string& path) {
  std::ifstream in(path);
  require_input(in.good(), "load_model: cannot open " + path);
  ModelTokenizer t(in, path);

  expect_token(t, kMagic);
  const std::size_t version = read_count(t, "version");
  if (version != static_cast<std::size_t>(kVersion)) {
    t.fail("unsupported version " + std::to_string(version));
  }

  Model model;
  expect_token(t, "dims");
  const std::size_t d = read_count(t, "dimension count");
  if (d < 1 || d > kMaxDims) {
    t.fail("bad dimension count " + std::to_string(d));
  }

  model.grids.dims.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    expect_token(t, "grid");
    DimensionGrid g;
    const std::size_t dim = read_count(t, "grid dim");
    // save_model writes the grids in dimension order, one per dim: a grid
    // line for the wrong dim is a duplicate or a hole, and either way the
    // clusters' bin indices would be interpreted against the wrong grid.
    if (dim != j) {
      t.fail("grid for dim " + std::to_string(dim) + " where dim " +
             std::to_string(j) + " was expected (duplicate or out-of-order "
             "grid line)");
    }
    g.dim = static_cast<DimId>(dim);
    g.uniform_fallback = read_count(t, "fallback flag") != 0;
    const std::size_t nbins = read_count(t, "bin count");
    if (nbins < 1 || nbins > kMaxBinsPerDim) {
      t.fail("bad bin count " + std::to_string(nbins));
    }
    expect_token(t, "domain");
    g.domain_lo = static_cast<Value>(read_double(t, "domain lo"));
    g.domain_hi = static_cast<Value>(read_double(t, "domain hi"));
    expect_token(t, "edges");
    g.edges.resize(nbins + 1);
    for (Value& e : g.edges) e = static_cast<Value>(read_double(t, "edge"));
    expect_token(t, "thresholds");
    g.thresholds.resize(nbins);
    for (double& th : g.thresholds) th = read_double(t, "threshold");
    for (std::size_t i = 0; i + 1 < g.edges.size(); ++i) {
      if (!(g.edges[i] < g.edges[i + 1])) {
        t.fail("edges of dim " + std::to_string(j) + " not ascending");
      }
    }
    model.grids.dims.push_back(std::move(g));
  }

  expect_token(t, "clusters");
  const std::size_t nclusters = read_entity_count(t, "cluster count");
  model.clusters.reserve(nclusters);
  for (std::size_t ci = 0; ci < nclusters; ++ci) {
    expect_token(t, "cluster");
    const std::size_t k = read_count(t, "cluster dimensionality");
    if (k < 1 || k > d) {
      t.fail("bad cluster dimensionality " + std::to_string(k));
    }
    Cluster c;
    expect_token(t, "dims");
    c.dims.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t dim = read_count(t, "cluster dim");
      if (dim >= d) {
        t.fail("cluster dim " + std::to_string(dim) +
               " out of range (model has " + std::to_string(d) + " dims)");
      }
      // Ascending subspace dims are a Cluster invariant (subset elimination
      // and the DNF renderer both rely on it); a repeated dim would also
      // make the per-position bin indices ambiguous.
      if (i > 0 && dim <= static_cast<std::size_t>(c.dims[i - 1])) {
        t.fail("cluster dims not strictly ascending at dim " +
               std::to_string(dim));
      }
      c.dims[i] = static_cast<DimId>(dim);
    }
    expect_token(t, "units");
    const std::size_t nunits = read_entity_count(t, "unit count");
    c.units = UnitStore(k);
    std::vector<BinId> bins(k);
    for (std::size_t u = 0; u < nunits; ++u) {
      for (std::size_t i = 0; i < k; ++i) {
        bins[i] = read_bin(t, "unit bin", model.grids[c.dims[i]]);
      }
      c.units.push_unchecked(c.dims.data(), bins.data());
    }
    expect_token(t, "dnf");
    const std::size_t nrects = read_entity_count(t, "rect count");
    c.dnf.resize(nrects);
    for (BinRect& r : c.dnf) {
      r.lo.resize(k);
      r.hi.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        r.lo[i] = read_bin(t, "rect lo", model.grids[c.dims[i]]);
      }
      for (std::size_t i = 0; i < k; ++i) {
        r.hi[i] = read_bin(t, "rect hi", model.grids[c.dims[i]]);
        if (r.hi[i] < r.lo[i]) {
          t.fail("rect hi " + std::to_string(r.hi[i]) + " below lo " +
                 std::to_string(r.lo[i]) + " in dim " +
                 std::to_string(c.dims[i]) + " (contradictory rectangle)");
        }
      }
    }
    model.clusters.push_back(std::move(c));
  }
  if (!t.exhausted()) {
    t.fail("trailing content '" + t.last_token() + "' after the last cluster");
  }
  return model;
}

}  // namespace mafia
