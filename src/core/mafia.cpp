#include "core/mafia.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "cluster/assembly.hpp"
#include "core/checkpoint.hpp"
#include "core/mdl.hpp"
#include "core/result_codec.hpp"
#include "core/trace.hpp"
#include "common/math_util.hpp"
#include "grid/uniform_grid.hpp"
#include "io/pipeline.hpp"
#include "mp/comm.hpp"
#include "taskpart/taskpart.hpp"
#include "units/populate.hpp"

namespace mafia {

namespace {

/// True when `a` and `b` induce the same record-to-bin mapping: equal
/// domains, edges, and fallback status per dimension.  Thresholds are
/// deliberately excluded — they scale with the record count and only feed
/// identify, which the append path always recomputes fresh.  This is the
/// reuse precondition for stored per-unit counts: identical binning means
/// the base records land in the same units they were counted in.
bool grids_binning_equal(const GridSet& a, const GridSet& b) {
  if (a.num_dims() != b.num_dims()) return false;
  for (std::size_t j = 0; j < a.num_dims(); ++j) {
    const DimensionGrid& x = a[j];
    const DimensionGrid& y = b[j];
    if (x.dim != y.dim || x.domain_lo != y.domain_lo ||
        x.domain_hi != y.domain_hi ||
        x.uniform_fallback != y.uniform_fallback || x.edges != y.edges) {
      return false;
    }
  }
  return true;
}

/// Byte-level equality of two unit stores (same k, same dim/bin rows in
/// the same order).
bool stores_equal(const UnitStore& a, const UnitStore& b) {
  if (a.k() != b.k() || a.size() != b.size()) return false;
  for (std::size_t u = 0; u < a.size(); ++u) {
    if (!a.equal(u, b, u)) return false;
  }
  return true;
}

/// One SPMD rank executing Algorithm 2.  All ranks run identical code; the
/// only rank-dependent state is the data partition and the task-partition
/// index ranges.  Everything globalized by a collective is bit-identical on
/// every rank, so the final cluster assembly is redundantly computed and
/// rank 0's copy is returned.
class MafiaWorker {
 public:
  MafiaWorker(const DataSource& data, const MafiaOptions& opt, mp::Comm& comm)
      : data_(data), opt_(opt), comm_(comm), tracer_(&comm.stats()) {
    // Each rank owns its pipeline decorator: every scan_local then spawns
    // its own producer thread over its own ring, so p ranks prefetch their
    // p partitions independently (the paper's p local disks).
    if (opt_.io.prefetch) pipelined_.emplace(data_, opt_.io.buffers);
  }

  void run() {
    const int p = comm_.size();
    const int rank = comm_.rank();
    const RecordIndex n = data_.num_records();
    my_records_ = block_partition(static_cast<std::size_t>(n),
                                  static_cast<std::size_t>(p),
                                  static_cast<std::size_t>(rank));

    if (opt_.append) {
      // Append mode: load the base run's final checkpoint, rebuild grids
      // incrementally where the stored state allows, and run the level
      // loop with the stored memo as an accelerator.  The loop body is the
      // same as a fresh run's, so the result is bit-identical to a full
      // rebuild on the concatenated data whether or not anything reuses.
      const std::size_t batch =
          static_cast<std::size_t>(n) -
          static_cast<std::size_t>(opt_.append->base_records);
      const BlockRange br = block_partition(batch, static_cast<std::size_t>(p),
                                            static_cast<std::size_t>(rank));
      my_batch_.begin =
          static_cast<std::size_t>(opt_.append->base_records) + br.begin;
      my_batch_.end =
          static_cast<std::size_t>(opt_.append->base_records) + br.end;
      append_setup();
      build_grids_append();
      collect_memo_ = true;
      level_loop(nullptr);
      write_final_state();
    } else {
      // Resume is decided collectively (the checkpoint blob is broadcast),
      // so either every rank restores the same level boundary or none does.
      std::optional<CheckpointState> restored = maybe_resume();
      if (restored) {
        grids_ = std::move(restored->grids);
        trace_ = std::move(restored->levels);
        registered_ = std::move(restored->registered);
        populate_stats_ = restored->populate;
        join_stats_ = restored->join_kernel;
      } else {
        build_grids();
      }
      // A resumed run never saw the early levels, so its final checkpoint
      // carries no append memo (append then falls back to full scans).
      collect_memo_ = opt_.checkpoint.enabled() && !restored;
      level_loop(restored ? &*restored : nullptr);
      write_final_state();
    }
    {
      PhaseTracer::Scope sp(tracer_, "assemble");
      clusters_ = assemble_clusters(registered_);
      std::erase_if(clusters_, [this](const Cluster& c) {
        return c.dims.size() < opt_.min_cluster_dims;
      });
    }
    // Globalize the per-rank trace: cross-rank phase maxima on every rank,
    // the full per-rank breakdown on the parent.  Every collective before
    // this point sits inside a phase scope, so the per-phase comm deltas
    // sum exactly to the totals snapshotted here.
    run_trace_ = exchange_trace(tracer_, comm_);
  }

  // Outputs (read after run()).
  GridSet grids_;
  std::vector<LevelTrace> trace_;
  std::vector<Cluster> clusters_;
  std::vector<UnitStore> registered_;
  RunTrace run_trace_;
  PopulateKernelStats populate_stats_;
  JoinKernelStats join_stats_;
  RecoveryInfo recovery_;
  AppendStats append_stats_;

 private:
  // ----------------------------------------------------------- grid phase

  void build_grids() {
    const std::size_t d = data_.num_dims();
    const auto n = static_cast<Count>(data_.num_records());

    // Attribute domains: fixed, or learned with a min/max pass + Reduce.
    std::vector<Value> lo(d);
    std::vector<Value> hi(d);
    if (opt_.fixed_domain) {
      std::fill(lo.begin(), lo.end(), opt_.fixed_domain->first);
      std::fill(hi.begin(), hi.end(), opt_.fixed_domain->second);
    } else {
      PhaseTracer::Scope sp(tracer_, "histogram");
      MinMaxAccumulator mm(d);
      scan_local("histogram", [&](const Value* rows, std::size_t nrows) {
        mm.accumulate(rows, nrows);
      });
      comm_.allreduce_min(mm.mins());
      comm_.allreduce_max(mm.maxs());
      lo = mm.mins();
      hi = mm.maxs();
    }

    if (opt_.uniform_grid) {
      // CLIQUE-style grid: no histogram needed.
      PhaseTracer::Scope sp(tracer_, "grid");
      const auto& ug = *opt_.uniform_grid;
      if (!ug.bins_per_dim.empty()) {
        require(ug.bins_per_dim.size() == d,
                "MafiaOptions: bins_per_dim size mismatch");
        grids_ = compute_uniform_grids(lo, hi, ug.bins_per_dim, ug.tau_fraction, n);
      } else {
        grids_ = compute_uniform_grids(lo, hi, ug.xi, ug.tau_fraction, n);
      }
      if (opt_.checkpoint.enabled()) {
        domain_lo_ = lo;
        domain_hi_ = hi;
      }
      return;
    }

    // Algorithm 2: "build a histogram in each dimension; Reduce
    // communication to get the global histogram; determine adaptive
    // intervals ... and also fix the threshold level."
    HistogramBuilder hist(lo, hi, opt_.grid.fine_bins);
    {
      PhaseTracer::Scope sp(tracer_, "histogram");
      scan_local("histogram", [&](const Value* rows, std::size_t nrows) {
        hist.accumulate(rows, nrows);
      });
      comm_.allreduce_sum(hist.counts());
    }
    if (opt_.checkpoint.enabled()) {
      domain_lo_ = lo;
      domain_hi_ = hi;
      hist_counts_ = hist.counts();  // global after the allreduce
    }
    {
      PhaseTracer::Scope sp(tracer_, "grid");
      grids_ = compute_adaptive_grids(lo, hi, hist, n, opt_.grid);
    }
  }

  // ----------------------------------------------------------- append mode

  /// Collective load of the base run's final checkpoint, fingerprinted for
  /// the base record count (every result-affecting option must match the
  /// base run; the record counts differ by exactly the batch).  Rank 0
  /// reads, everyone receives the broadcast blob; an empty blob means no
  /// usable base state, which is an input error on every rank — append
  /// cannot proceed without the thing it appends to.
  void append_setup() {
    PhaseTracer::Scope sp(tracer_, "checkpoint");
    recovery_.checkpoint_enabled = true;
    append_stats_.performed = true;
    const auto n_total = static_cast<std::uint64_t>(data_.num_records());
    const auto dims = static_cast<std::uint32_t>(data_.num_dims());
    const std::uint64_t base_fp =
        checkpoint_fingerprint(opt_, opt_.append->base_records, dims);
    // The final checkpoint this run writes covers the concatenated data.
    fingerprint_ = checkpoint_fingerprint(opt_, n_total, dims);

    std::vector<std::uint8_t> blob;
    if (comm_.is_parent()) {
      const CheckpointScan scan =
          load_final_checkpoint(opt_.checkpoint.directory, base_fp);
      recovery_.checkpoints_discarded =
          static_cast<std::size_t>(scan.discarded);
      if (scan.state) blob = serialize_checkpoint(*scan.state);
    }
    comm_.bcast(blob);
    require_input(!blob.empty(),
                  "append: no valid final checkpoint for the base data under " +
                      opt_.checkpoint.directory +
                      " (run a checkpointed cluster first, with matching "
                      "options)");
    append_base_ = deserialize_checkpoint(blob.data(), blob.size());
  }

  /// Grid phase of an append run.  Domains and the fine histogram are
  /// exact under concatenation (min/max and integer sums are associative),
  /// so when the stored state carries them only the batch is scanned;
  /// otherwise the full concatenated data is — either way the inputs to
  /// compute_adaptive_grids are bit-identical to a fresh run's, and so are
  /// the grids.  The level-reuse chain is then armed only if the fresh
  /// grids bin records exactly like the stored ones.
  void build_grids_append() {
    const std::size_t d = data_.num_dims();
    const auto n = static_cast<Count>(data_.num_records());
    const CheckpointState& base = *append_base_;
    const bool have_base_domain =
        base.domain_lo.size() == d && base.domain_hi.size() == d;

    std::vector<Value> lo(d);
    std::vector<Value> hi(d);
    if (opt_.fixed_domain) {
      std::fill(lo.begin(), lo.end(), opt_.fixed_domain->first);
      std::fill(hi.begin(), hi.end(), opt_.fixed_domain->second);
    } else {
      PhaseTracer::Scope sp(tracer_, "histogram");
      MinMaxAccumulator mm(d);
      if (have_base_domain) {
        scan_batch("histogram", [&](const Value* rows, std::size_t nrows) {
          mm.accumulate(rows, nrows);
        });
      } else {
        scan_local("histogram", [&](const Value* rows, std::size_t nrows) {
          mm.accumulate(rows, nrows);
        });
      }
      comm_.allreduce_min(mm.mins());
      comm_.allreduce_max(mm.maxs());
      lo = mm.mins();
      hi = mm.maxs();
      if (have_base_domain) {
        // Fold the stored base extrema in: min/max are exact, so this
        // equals a full scan of the concatenated data.
        for (std::size_t j = 0; j < d; ++j) {
          lo[j] = std::min(lo[j], base.domain_lo[j]);
          hi[j] = std::max(hi[j], base.domain_hi[j]);
        }
      }
    }

    if (opt_.uniform_grid) {
      PhaseTracer::Scope sp(tracer_, "grid");
      const auto& ug = *opt_.uniform_grid;
      if (!ug.bins_per_dim.empty()) {
        require(ug.bins_per_dim.size() == d,
                "MafiaOptions: bins_per_dim size mismatch");
        grids_ = compute_uniform_grids(lo, hi, ug.bins_per_dim,
                                       ug.tau_fraction, n);
      } else {
        grids_ = compute_uniform_grids(lo, hi, ug.xi, ug.tau_fraction, n);
      }
      domain_lo_ = lo;
      domain_hi_ = hi;
      arm_append_chain();
      return;
    }

    HistogramBuilder hist(lo, hi, opt_.grid.fine_bins);
    // Stored fine counts are reusable only if the histogram geometry is
    // unchanged: same domains (cell widths) and same cell count.
    const bool hist_incremental =
        have_base_domain && lo == base.domain_lo && hi == base.domain_hi &&
        base.hist_counts.size() == d * opt_.grid.fine_bins;
    {
      PhaseTracer::Scope sp(tracer_, "histogram");
      if (hist_incremental) {
        scan_batch("histogram", [&](const Value* rows, std::size_t nrows) {
          hist.accumulate(rows, nrows);
        });
      } else {
        scan_local("histogram", [&](const Value* rows, std::size_t nrows) {
          hist.accumulate(rows, nrows);
        });
      }
      comm_.allreduce_sum(hist.counts());
      // Seed after the allreduce: the base counts are already global, so
      // they must enter the sum exactly once, not once per rank.
      if (hist_incremental) hist.seed_counts(base.hist_counts);
    }
    domain_lo_ = lo;
    domain_hi_ = hi;
    hist_counts_ = hist.counts();
    {
      PhaseTracer::Scope sp(tracer_, "grid");
      grids_ = compute_adaptive_grids(lo, hi, hist, n, opt_.grid);
    }
    arm_append_chain();
  }

  /// Arms the level-reuse chain: stored per-level counts are valid only
  /// when the fresh grids bin records exactly like the stored ones, and
  /// the memo must cover the run from level 1 (resumed base runs don't).
  void arm_append_chain() {
    append_chain_ = !append_base_->memo.empty() &&
                    append_base_->memo.front().level == 1 &&
                    grids_binning_equal(grids_, append_base_->grids);
  }

  /// The stored memo entry for `level`, or nullptr.  Entries are pushed
  /// once per executed level, so entry i covers level i + 1; the byte-level
  /// store comparison is a defensive invariant check (the chain logic
  /// guarantees it, corruption or a logic regression breaks the chain
  /// instead of corrupting counts).
  const AppendLevelMemo* base_memo(std::size_t level, const UnitStore& cdus) {
    if (!append_chain_) return nullptr;
    const auto& memo = append_base_->memo;
    if (level > memo.size() || memo[level - 1].level != level) return nullptr;
    const AppendLevelMemo* m = &memo[level - 1];
    if (m->counts.size() != cdus.size() || !stores_equal(m->cdus, cdus)) {
      append_chain_ = false;
      return nullptr;
    }
    return m;
  }

  /// Writes the final (complete) checkpoint after the level loop: the
  /// run's full outputs plus the append-base sections (domains, global
  /// fine histogram, per-level memo, provenance).  Atomic rename, so a
  /// kill at any point — including mid-append — leaves the previous final
  /// state intact and the operation simply reruns.
  void write_final_state() {
    if (!opt_.checkpoint.enabled()) return;
    PhaseTracer::Scope sp(tracer_, "checkpoint");
    if (!comm_.is_parent()) return;
    CheckpointState st;
    st.fingerprint = fingerprint_;
    st.num_records = static_cast<std::uint64_t>(data_.num_records());
    st.num_dims = static_cast<std::uint32_t>(data_.num_dims());
    st.level = trace_.empty() ? 1 : trace_.back().level;
    st.grids = grids_;
    st.levels = trace_;
    st.registered = registered_;
    st.populate = populate_stats_;
    st.join_kernel = join_stats_;
    st.complete = 1;
    st.domain_lo = domain_lo_;
    st.domain_hi = domain_hi_;
    st.hist_counts = hist_counts_;
    st.memo = memo_;
    st.provenance.reserve(opt_.checkpoint.provenance.size());
    for (const auto& [path, records] : opt_.checkpoint.provenance) {
      st.provenance.push_back({path, records});
    }
    write_final_checkpoint(opt_.checkpoint.directory, st);
    ++recovery_.checkpoints_written;
  }

  // ----------------------------------------------------------- level loop

  void level_loop(CheckpointState* restored) {
    const int p = comm_.size();
    const int rank = comm_.rank();
    const auto n = static_cast<Count>(data_.num_records());
    const DensityContext dctx{opt_.grid.alpha, n};

    UnitStore cdus(1);
    UnitStore prev_dense(1);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
    std::vector<std::uint32_t> raw_to_unique;
    std::size_t pending_raw_count = 0;
    // Stats of the join that produced the current `cdus` (pushed into the
    // LevelTrace once the level's counts are known, then folded into the
    // run totals).  Kernel: 0 = no join yet (level 1), 1 = pairwise,
    // 2 = bucketed.
    JoinStats pending_join;
    std::uint8_t pending_join_kernel = 0;
    std::size_t level = 1;

    if (restored != nullptr) {
      // Continue from the restored level boundary — the state here is
      // exactly what the uninterrupted run carried into this iteration.
      level = static_cast<std::size_t>(restored->level);
      pending_raw_count = static_cast<std::size_t>(restored->pending_raw_count);
      pending_join = restored->pending_join;
      pending_join_kernel = restored->pending_join_kernel;
      cdus = std::move(restored->cdus);
      prev_dense = std::move(restored->prev_dense);
      parents = std::move(restored->parents);
      raw_to_unique = std::move(restored->raw_to_unique);
    } else {
      // "Set candidate dense units to the bins found in each dimension."
      for (std::size_t j = 0; j < grids_.num_dims(); ++j) {
        for (std::size_t b = 0; b < grids_[j].num_bins(); ++b) {
          const auto dj = static_cast<DimId>(j);
          const auto bb = static_cast<BinId>(b);
          cdus.push_unchecked(&dj, &bb);
        }
      }
      pending_raw_count = cdus.size();
    }

    while (true) {
      check_cdu_budget(level, cdus.size(), cdus.k(), /*with_counts=*/true);
      // Fresh memo entry: the entering state of this iteration (counts and
      // flags are filled in once computed below).  This is what the final
      // checkpoint hands to a future append run.
      if (collect_memo_) {
        AppendLevelMemo fm;
        fm.level = level;
        fm.cdus = cdus;
        fm.parents = parents;
        fm.raw_to_unique = raw_to_unique;
        fm.pending_raw_count = pending_raw_count;
        fm.pending_join = pending_join;
        fm.pending_join_kernel = pending_join_kernel;
        memo_.push_back(std::move(fm));
      }
      // Append reuse: with the chain intact this level's candidate set is
      // provably the stored one, so its counts are the stored global
      // counts plus a batch-only populate pass.
      const AppendLevelMemo* base = base_memo(level, cdus);
      // ---- Populate candidates (data parallel): each rank scans its N/p
      // records in B-record chunks, then Reduce globalizes the counts.
      UnitPopulator populator(grids_, cdus, opt_.populate);
      // Kernel auxiliary memory (dominant under the bitmap kernel, whose
      // index is used_bins × nrows bits) joins the budget.  Sized for the
      // worst-case partition, not this rank's, so the collective guard
      // throws on every rank or none.
      check_budget(level, populator.auxiliary_component(),
                   populator.auxiliary_bytes(ceil_div(
                       static_cast<std::size_t>(n),
                       static_cast<std::size_t>(p))));
      {
        PhaseTracer::Scope sp(tracer_, "populate");
        if (base != nullptr) {
          scan_batch("populate", [&](const Value* rows, std::size_t nrows) {
            populator.accumulate(rows, nrows);
          });
        } else {
          scan_local("populate", [&](const Value* rows, std::size_t nrows) {
            populator.accumulate(rows, nrows);
          });
        }
        comm_.allreduce_sum(populator.counts());
        // Seed AFTER the allreduce: the stored counts are already global,
        // so they must enter the sum exactly once, not once per rank.
        if (base != nullptr) populator.seed_counts(base->counts);
      }
      if (opt_.append) {
        ++(base != nullptr ? append_stats_.levels_reused
                           : append_stats_.levels_rerun);
      }
      // Merge kernel stats only after counts() finalized the scan (the
      // bitmap kernel's AND-work counter is filled by that finalization).
      populate_stats_.merge(populator.kernel_stats());

      // ---- Identify dense units (task parallel, Algorithm 5).
      std::vector<std::uint8_t> flags(cdus.size(), 0);
      {
        PhaseTracer::Scope sp(tracer_, "identify");
        if (cdus.size() > opt_.tau && p > 1) {
          const BlockRange r = block_partition(cdus.size(),
                                               static_cast<std::size_t>(p),
                                               static_cast<std::size_t>(rank));
          identify_dense_units(cdus, populator.counts(), grids_, opt_.density,
                               dctx, r.begin, r.end, flags);
          comm_.allreduce_or(flags);
        } else {
          identify_dense_units(cdus, populator.counts(), grids_, opt_.density,
                               dctx, 0, cdus.size(), flags);
        }
      }
      if (opt_.mdl_pruning) apply_mdl_pruning(cdus, populator.counts(), flags);

      // Append: compare the fresh dense flags against the stored ones.  Any
      // divergence means the next level's candidate set differs from the
      // stored run's, so the reuse chain ends here — every later level runs
      // the real join and full scans.  Identical flags keep the chain
      // intact (the join is a pure function of the dense set).
      if (base != nullptr) {
        for (std::size_t i = 0; i < flags.size(); ++i) {
          append_stats_.units_promoted += (flags[i] != 0 && base->flags[i] == 0);
          append_stats_.units_demoted += (flags[i] == 0 && base->flags[i] != 0);
        }
        if (flags != base->flags) append_chain_ = false;
      }
      if (collect_memo_) {
        memo_.back().counts = populator.counts();
        memo_.back().flags = flags;
      }

      std::size_t ndu = 0;
      for (const std::uint8_t f : flags) ndu += (f != 0);

      {
        LevelTrace t;
        t.level = level;
        t.ncdu_raw = pending_raw_count;
        t.ncdu = cdus.size();
        t.ndu = ndu;
        t.count_checksum = count_vector_checksum(populator.counts());
        t.join_buckets = pending_join.buckets;
        t.join_probes = pending_join.probes;
        t.join_emitted = pending_join.emitted;
        t.join_repeats_fused = pending_join.repeats_fused;
        switch (populator.effective_kernel()) {
          case PopulateKernel::Bitmap: t.populate_kernel = kPopulateKernelBitmap; break;
          case PopulateKernel::Memcmp: t.populate_kernel = kPopulateKernelMemcmp; break;
          default: t.populate_kernel = kPopulateKernelPacked; break;
        }
        t.bitmap_bytes = populator.kernel_stats().bitmap_bytes;
        t.bitmap_words_anded = populator.kernel_stats().bitmap_words_anded;
        trace_.push_back(std::move(t));
      }
      if (pending_join_kernel != 0) {
        join_stats_.bucketed_levels += (pending_join_kernel == 2);
        join_stats_.pairwise_levels += (pending_join_kernel == 1);
        join_stats_.buckets += pending_join.buckets;
        join_stats_.probes += pending_join.probes;
        join_stats_.emitted += pending_join.emitted;
        join_stats_.repeats_fused += pending_join.repeats_fused;
        pending_join = JoinStats{};
        pending_join_kernel = 0;
      }

      // ---- Register maximal units of the previous level: a (k−1)-dim
      // dense unit whose every candidate child failed the density test (or
      // that produced no candidates) is a maximal dense region.
      if (level > 1) {
        std::vector<std::uint8_t> marked(prev_dense.size(), 0);
        for (std::size_t r = 0; r < parents.size(); ++r) {
          if (flags[raw_to_unique[r]]) {
            marked[parents[r].first] = 1;
            marked[parents[r].second] = 1;
          }
        }
        register_unmarked(prev_dense, marked);
      }

      if (ndu == 0) break;  // "while (no more dense units are found)"

      // ---- Build dense-unit data structures (task parallel, Algorithm 6).
      UnitStore dense(cdus.k());
      {
        PhaseTracer::Scope sp(tracer_, "identify");
        if (ndu > opt_.tau && p > 1) {
          // "A linear search over the dense unit array is required to
          // determine the start and end indices ... for equal task
          // distribution" — then ranks' pieces concatenate in rank order.
          const auto bounds = flag_balanced_partition(flags,
                                                      static_cast<std::size_t>(p));
          const UnitStore local = build_dense_store(
              cdus, flags, bounds[static_cast<std::size_t>(rank)],
              bounds[static_cast<std::size_t>(rank) + 1]);
          auto dim_bytes = comm_.gatherv(local.dim_bytes());
          auto bin_bytes = comm_.gatherv(local.bin_bytes());
          comm_.bcast(dim_bytes);
          comm_.bcast(bin_bytes);
          dense = UnitStore::from_bytes(cdus.k(), std::move(dim_bytes),
                                        std::move(bin_bytes));
        } else {
          dense = build_dense_store(cdus, flags);
        }
      }

      if (level >= opt_.max_level) {
        register_all(dense);
        break;
      }

      // ---- Find candidate dense units for the next level (Algorithm 3).
      prev_dense = std::move(dense);
      ++level;
      // Append: with the chain still intact the stored run generated this
      // level from the identical dense set, so the join's entering state
      // (unique CDUs, parents, dedup map, work counters) is replayed from
      // the memo instead of recomputed — the join is a pure function of the
      // dense set and the join rule, both unchanged.  The skipped
      // record_unjoined is restored from the stored trace for the same
      // reason.  When the memo has no entry for this level the stored run
      // terminated here, and the real join below reproduces that
      // termination identically.
      if (append_chain_ && level <= append_base_->memo.size() &&
          append_base_->memo[level - 1].level == level) {
        const AppendLevelMemo& m = append_base_->memo[level - 1];
        cdus = m.cdus;
        parents = m.parents;
        raw_to_unique = m.raw_to_unique;
        pending_raw_count = m.pending_raw_count;
        pending_join = m.pending_join;
        pending_join_kernel = m.pending_join_kernel;
        for (const LevelTrace& t : append_base_->levels) {
          if (t.level == level - 1) {
            trace_.back().unjoined_dus = t.unjoined_dus;
            trace_.back().unjoined_units = t.unjoined_units;
            break;
          }
        }
        continue;
      }
      // Kernel selection: the bucketed index needs a non-empty
      // sub-signature, so (k−1)-dim parents with k−1 == 1 (one global
      // bucket — all pair work on one rank) fall back to the pairwise
      // triangular scan, which Eq. 1 balances exactly.
      const bool bucketed =
          opt_.join.kernel == JoinKernel::Bucketed && prev_dense.k() >= 2;
      if (bucketed) {
        // The bucket index is the join's auxiliary memory; budget it before
        // any rank starts building (the estimate is deterministic, so the
        // guard stays collective).
        check_budget(level, "join bucket index",
                     JoinBucketIndex::estimate_bytes(
                         prev_dense.size(), prev_dense.k(), opt_.join_rule));
      }
      UnitStore raw(level);
      std::vector<std::uint8_t> combined;
      {
        PhaseTracer::Scope sp(tracer_, "join");
        if (prev_dense.size() > opt_.tau && p > 1) {
          JoinResult jr;
          if (bucketed) {
            // Every rank builds the identical index over the replicated
            // dense store; bucket ranges are balanced by per-bucket pair
            // work, the bucketed analogue of Eq. 1's row ranges.
            const JoinBucketIndex index(prev_dense, opt_.join_rule);
            const auto bounds = weight_balanced_partition(
                index.bucket_work(), static_cast<std::size_t>(p));
            jr = index.join_range(bounds[static_cast<std::size_t>(rank)],
                                  bounds[static_cast<std::size_t>(rank) + 1]);
          } else {
            const auto bounds =
                opt_.optimal_task_partition
                    ? triangular_partition(prev_dense.size(),
                                           static_cast<std::size_t>(p))
                    : block_bounds(prev_dense.size(), p);
            jr = join_dense_units(prev_dense, opt_.join_rule,
                                  bounds[static_cast<std::size_t>(rank)],
                                  bounds[static_cast<std::size_t>(rank) + 1]);
          }
          // "CDUs generated by the processors are communicated to the
          // parent processor which concatenates the CDU dimension and bin
          // arrays in the rank order ... This information is broadcast."
          auto dim_bytes = comm_.gatherv(jr.cdus.dim_bytes());
          auto bin_bytes = comm_.gatherv(jr.cdus.bin_bytes());
          std::vector<std::uint64_t> packed(jr.parents.size());
          for (std::size_t i = 0; i < jr.parents.size(); ++i) {
            packed[i] = (static_cast<std::uint64_t>(jr.parents[i].first) << 32) |
                        jr.parents[i].second;
          }
          auto parent_bytes = comm_.gatherv(packed);
          comm_.bcast(dim_bytes);
          comm_.bcast(bin_bytes);
          comm_.bcast(parent_bytes);
          raw = UnitStore::from_bytes(level, std::move(dim_bytes),
                                      std::move(bin_bytes));
          parents.resize(parent_bytes.size());
          for (std::size_t i = 0; i < parent_bytes.size(); ++i) {
            parents[i] = {static_cast<std::uint32_t>(parent_bytes[i] >> 32),
                          static_cast<std::uint32_t>(parent_bytes[i])};
          }
          // Globalize the work counters (bucket ranges partition the index,
          // so the bucket sum is the index's bucket count).
          std::vector<std::uint64_t> sv{jr.stats.buckets, jr.stats.probes,
                                        jr.stats.emitted};
          comm_.allreduce_sum(sv);
          pending_join = JoinStats{sv[0], sv[1], sv[2], 0};
          // Globalize the combined flags: a dense unit is unjoined only if
          // no rank's join range paired it.
          combined = std::move(jr.combined);
          comm_.allreduce_or(combined);
          // The bucketed ranks emitted in bucket-major order; restoring the
          // packed-parent order makes the concatenated sequence exactly the
          // pairwise scan's, so everything downstream (dedup order, parent
          // marking, checksums) is bit-identical across kernels.
          if (bucketed) sort_cdus_by_parents(raw, parents);
        } else {
          JoinResult jr = bucketed
                              ? bucket_join_dense_units(prev_dense, opt_.join_rule)
                              : join_dense_units(prev_dense, opt_.join_rule);
          raw = std::move(jr.cdus);
          parents = std::move(jr.parents);
          pending_join = jr.stats;
          combined = std::move(jr.combined);
        }
        pending_join_kernel = bucketed ? 2 : 1;
      }

      // gpumafia's find_unjoined_dus: record, on the level the dense units
      // came from, every unit the join paired into no candidate (the
      // paper's "dense units which could not be combined" — they are also
      // registered as maximal below, since no child can mark them).
      record_unjoined(prev_dense, combined);

      if (raw.empty()) {
        // No unit could combine: every previous dense unit is maximal.
        register_all(prev_dense);
        break;
      }
      pending_raw_count = raw.size();
      check_cdu_budget(level, raw.size(), raw.k(), /*with_counts=*/false);

      // ---- Eliminate repeated CDUs (Algorithm 4).
      {
        PhaseTracer::Scope sp(tracer_, "dedup");
        DedupResult dd;
        if (bucketed || opt_.dedup == DedupPolicy::Hash) {
          // Under the bucketed kernel repeat elimination is fused: one hash
          // pass over the parent-ordered emissions replaces the pairwise
          // O(Ncdu²) repeat scan regardless of DedupPolicy (which stays
          // meaningful for the pairwise kernel's fidelity/ablation runs).
          dd = dedup_hash(raw);
          if (bucketed) pending_join.repeats_fused = dd.num_repeats;
        } else if (raw.size() > opt_.tau && p > 1) {
          const auto bounds =
              opt_.optimal_task_partition
                  ? triangular_partition(raw.size(), static_cast<std::size_t>(p))
                  : block_bounds(raw.size(), p);
          auto repeat = pairwise_repeat_flags(
              raw, bounds[static_cast<std::size_t>(rank)],
              bounds[static_cast<std::size_t>(rank) + 1]);
          comm_.allreduce_or(repeat);
          dd = dedup_from_flags(raw, repeat);
        } else {
          dd = dedup_from_flags(raw,
                                pairwise_repeat_flags(raw, 0, raw.size()));
        }
        cdus = std::move(dd.unique);
        raw_to_unique = std::move(dd.raw_to_unique);
      }

      // ---- Level boundary: the loop-carried state above is everything the
      // next iteration needs, so this is the recovery point.  Rank 0 writes;
      // every rank opens the phase scope (the trace exchange requires
      // identical phase sets on all ranks).  Append runs skip per-level
      // writes — they publish one final checkpoint atomically at the end,
      // so a crash mid-append leaves the base state untouched.
      if (opt_.checkpoint.enabled() && !opt_.append) {
        PhaseTracer::Scope sp(tracer_, "checkpoint");
        if (comm_.is_parent()) {
          CheckpointState state;
          state.fingerprint = fingerprint_;
          state.num_records = static_cast<std::uint64_t>(n);
          state.num_dims = static_cast<std::uint32_t>(data_.num_dims());
          state.level = level;
          state.pending_raw_count = pending_raw_count;
          state.pending_join = pending_join;
          state.pending_join_kernel = pending_join_kernel;
          state.join_kernel = join_stats_;
          state.cdus = cdus;
          state.prev_dense = prev_dense;
          state.parents = parents;
          state.raw_to_unique = raw_to_unique;
          state.grids = grids_;
          state.levels = trace_;
          state.registered = registered_;
          state.populate = populate_stats_;
          write_checkpoint_file(opt_.checkpoint.directory, state);
          ++recovery_.checkpoints_written;
        }
      }
    }
  }

  // ----------------------------------------------------- checkpoint/resume

  /// Collective resume decision.  Rank 0 scans the checkpoint directory for
  /// the latest valid state and broadcasts its serialized form; an empty
  /// blob means "start fresh".  Either way every rank leaves with the same
  /// answer, so the level loop stays in lockstep.
  std::optional<CheckpointState> maybe_resume() {
    if (!opt_.checkpoint.enabled()) return std::nullopt;
    PhaseTracer::Scope sp(tracer_, "checkpoint");
    recovery_.checkpoint_enabled = true;
    fingerprint_ = checkpoint_fingerprint(
        opt_, static_cast<std::uint64_t>(data_.num_records()),
        static_cast<std::uint32_t>(data_.num_dims()));
    if (!opt_.checkpoint.resume) return std::nullopt;

    std::vector<std::uint8_t> blob;
    if (comm_.is_parent()) {
      const CheckpointScan scan =
          load_latest_checkpoint(opt_.checkpoint.directory, fingerprint_);
      recovery_.checkpoints_discarded =
          static_cast<std::size_t>(scan.discarded);
      if (scan.state) blob = serialize_checkpoint(*scan.state);
    }
    comm_.bcast(blob);
    if (blob.empty()) return std::nullopt;

    CheckpointState state = deserialize_checkpoint(blob.data(), blob.size());
    recovery_.resumed = true;
    recovery_.resume_level = static_cast<std::size_t>(state.level);
    return state;
  }

  /// Graceful degradation: fail fast with a structured error naming the
  /// level and the memory component instead of OOM-ing once a level's
  /// state outgrows the configured budget.  Every byte count checked is
  /// derived from globally replicated state (or the worst-case partition
  /// size), so every rank throws the same error and the job unwinds
  /// cleanly.
  void check_budget(std::size_t level, const std::string& component,
                    std::size_t bytes) const {
    if (opt_.max_cdu_bytes == 0 || bytes <= opt_.max_cdu_bytes) return;
    throw ResourceError(
        "CDU budget exceeded at level " + std::to_string(level) + ": " +
        component + " needs " + std::to_string(bytes) +
        " bytes > max_cdu_bytes " + std::to_string(opt_.max_cdu_bytes));
  }

  /// The candidate store itself (dim + bin byte arrays, plus the count
  /// vector once populated) — the component the budget originally covered.
  void check_cdu_budget(std::size_t level, std::size_t units, std::size_t k,
                        bool with_counts) const {
    std::size_t bytes = units * k * 2;  // dim bytes + bin bytes
    if (with_counts) bytes += units * sizeof(Count);
    check_budget(level,
                 "candidate store (" + std::to_string(units) + " units)",
                 bytes);
  }

  /// Records the unjoined dense units of the level `dense` came from into
  /// its (already pushed) trace entry: the exact count plus at most
  /// kMaxUnjoinedListed printable units.  `combined` must be globalized.
  void record_unjoined(const UnitStore& dense,
                       const std::vector<std::uint8_t>& combined) {
    LevelTrace& t = trace_.back();
    for (std::size_t u = 0; u < dense.size(); ++u) {
      if (combined[u]) continue;
      ++t.unjoined_dus;
      if (t.unjoined_units.size() < kMaxUnjoinedListed) {
        t.unjoined_units.push_back(dense.to_string(u));
      }
    }
  }

  // -------------------------------------------------------------- helpers

  /// CLIQUE-style MDL pruning: groups the level's dense units by subspace,
  /// scores subspaces by coverage (records inside their dense units), and
  /// clears the dense flags of units in the MDL low-coverage group.
  /// Deterministic given global flags/counts, so every rank prunes alike.
  void apply_mdl_pruning(const UnitStore& cdus, const std::vector<Count>& counts,
                         std::vector<std::uint8_t>& flags) {
    std::map<std::vector<DimId>, std::uint64_t> coverage;
    for (std::size_t u = 0; u < cdus.size(); ++u) {
      if (!flags[u]) continue;
      const auto d = cdus.dims(u);
      coverage[std::vector<DimId>(d.begin(), d.end())] += counts[u];
    }
    if (coverage.size() < 2) return;

    std::vector<std::uint64_t> values;
    values.reserve(coverage.size());
    for (const auto& [dims, cov] : coverage) values.push_back(cov);
    const auto keep_mask = mdl_select_subspaces(values);

    std::map<std::vector<DimId>, bool> keep;
    std::size_t i = 0;
    for (const auto& [dims, cov] : coverage) keep[dims] = keep_mask[i++] != 0;
    for (std::size_t u = 0; u < cdus.size(); ++u) {
      if (!flags[u]) continue;
      const auto d = cdus.dims(u);
      if (!keep[std::vector<DimId>(d.begin(), d.end())]) flags[u] = 0;
    }
  }

  /// Chunked scan of this rank's record partition, pipelined when
  /// opt_.io.prefetch is set and timed either way: the scan's I/O split
  /// (read vs wait vs compute) is attributed to `phase` in the run trace.
  void scan_local(const char* phase, const ChunkFn& fn) {
    IoScanStats stats;
    if (pipelined_) {
      pipelined_->scan_with_stats(my_records_.begin, my_records_.end,
                                  opt_.chunk_records, fn, stats);
    } else {
      timed_scan(data_, my_records_.begin, my_records_.end,
                 opt_.chunk_records, fn, stats);
    }
    tracer_.add_io(phase, stats);
  }

  /// scan_local over this rank's slice of the append batch only (the
  /// records past base_records).  Used by every append-mode pass that
  /// seeds from stored global state instead of rescanning the base data.
  void scan_batch(const char* phase, const ChunkFn& fn) {
    IoScanStats stats;
    if (pipelined_) {
      pipelined_->scan_with_stats(my_batch_.begin, my_batch_.end,
                                  opt_.chunk_records, fn, stats);
    } else {
      timed_scan(data_, my_batch_.begin, my_batch_.end,
                 opt_.chunk_records, fn, stats);
    }
    tracer_.add_io(phase, stats);
  }

  /// Naive block boundaries (ablation alternative to Eq. 1).
  static std::vector<std::size_t> block_bounds(std::size_t total, int p) {
    std::vector<std::size_t> bounds(static_cast<std::size_t>(p) + 1);
    for (int r = 0; r <= p; ++r) {
      bounds[static_cast<std::size_t>(r)] =
          block_partition(total, static_cast<std::size_t>(p),
                          static_cast<std::size_t>(std::min(r, p - 1)))
              .begin;
    }
    bounds[static_cast<std::size_t>(p)] = total;
    return bounds;
  }

  void register_unmarked(const UnitStore& dense,
                         const std::vector<std::uint8_t>& marked) {
    UnitStore reg(dense.k());
    for (std::size_t u = 0; u < dense.size(); ++u) {
      if (!marked[u]) reg.push_unchecked(dense.dims(u).data(), dense.bins(u).data());
    }
    if (!reg.empty()) registered_.push_back(std::move(reg));
  }

  void register_all(const UnitStore& dense) {
    if (!dense.empty()) registered_.push_back(dense);
  }

  const DataSource& data_;
  const MafiaOptions& opt_;
  mp::Comm& comm_;
  PhaseTracer tracer_;
  std::optional<PipelinedSource> pipelined_;
  BlockRange my_records_;
  std::uint64_t fingerprint_ = 0;

  // Append-base sections recorded for the final checkpoint (checkpointed
  // runs only): attribute domains, the global fine histogram, and the
  // per-level memo a future append run seeds from.
  bool collect_memo_ = false;
  std::vector<Value> domain_lo_;
  std::vector<Value> domain_hi_;
  std::vector<Count> hist_counts_;
  std::vector<AppendLevelMemo> memo_;

  // Append-run state: this rank's slice of the new batch, the base run's
  // final checkpoint, and whether the level-reuse chain is still intact.
  BlockRange my_batch_;
  std::optional<CheckpointState> append_base_;
  bool append_chain_ = false;
};

}  // namespace

MafiaResult run_pmafia(const DataSource& data, const MafiaOptions& options,
                       int p) {
  options.validate();
  require(p >= 1, "run_pmafia: need at least one rank");
  require(data.num_records() > 0, "run_pmafia: empty data set");
  require(data.num_dims() >= 1, "run_pmafia: data has no dimensions");
  require(!options.append ||
              options.append->base_records <=
                  static_cast<std::uint64_t>(data.num_records()),
          "run_pmafia: append.base_records exceeds the data set");

  Timer total;
  MafiaResult result;

  mp::RunOptions run_options;
  run_options.network = options.simulate_network.value_or(mp::NetworkSimulation{});
  run_options.faults = options.fault_plan;
  run_options.backend = options.mp.backend;
  run_options.deadline_seconds = options.mp.deadline_seconds;
  run_options.shm_slot_bytes = options.mp.shm_slot_bytes;
  const mp::JobStats job = mp::run(p, [&](mp::Comm& comm) {
    MafiaWorker worker(data, options, comm);
    worker.run();
    if (!comm.is_parent()) return;
    // Rank 0 is the paper's parent processor: it owns the printable
    // result.  Sibling ranks computed identical clusters redundantly.
    if (comm.backend() == mp::MpBackend::Process) {
      // Rank 0 is a forked child here: the result must cross the process
      // boundary as bytes (mp result blob, core/result_codec.hpp).  The
      // cluster set is not shipped — the parent reassembles it from the
      // registered maximal units below, bit-identically.
      WorkerResult wr;
      wr.grids = std::move(worker.grids_);
      wr.levels = std::move(worker.trace_);
      wr.registered = std::move(worker.registered_);
      wr.trace = std::move(worker.run_trace_);
      wr.populate = worker.populate_stats_;
      wr.join_kernel = worker.join_stats_;
      wr.recovery = worker.recovery_;
      wr.append = worker.append_stats_;
      comm.set_result(serialize_worker_result(wr));
      return;
    }
    result.grids = std::move(worker.grids_);
    result.levels = std::move(worker.trace_);
    result.clusters = std::move(worker.clusters_);
    result.trace = std::move(worker.run_trace_);
    result.populate_kernel = worker.populate_stats_;
    result.join_kernel = worker.join_stats_;
    result.recovery = worker.recovery_;
    result.append = worker.append_stats_;
  }, run_options);

  if (options.mp.backend == mp::MpBackend::Process) {
    if (job.result.empty()) {
      throw Error("run_pmafia: process backend returned no worker result",
                  ErrorClass::Internal);
    }
    WorkerResult wr =
        deserialize_worker_result(job.result.data(), job.result.size());
    result.grids = std::move(wr.grids);
    result.levels = std::move(wr.levels);
    result.trace = std::move(wr.trace);
    result.populate_kernel = wr.populate;
    result.join_kernel = wr.join_kernel;
    result.recovery = wr.recovery;
    result.append = wr.append;
    result.clusters = assemble_clusters(wr.registered);
    std::erase_if(result.clusters, [&options](const Cluster& c) {
      return c.dims.size() < options.min_cluster_dims;
    });
  }
  result.mp_backend = options.mp.backend;
  result.rank_exits = job.rank_exits;

  // Both views derive from the gathered trace: phase seconds are the true
  // cross-rank maxima, and the comm totals are the sum of the per-rank
  // snapshots (so per-phase deltas add up to them exactly).
  result.phases = result.trace.max_phases;
  result.comm = result.trace.comm_total();
  result.io = options.io;
  result.total_seconds = total.seconds();
  result.num_records = static_cast<std::size_t>(data.num_records());
  result.num_dims = data.num_dims();
  result.num_ranks = p;
  return result;
}

}  // namespace mafia
