// Result of a pMAFIA run: the clusters plus everything the evaluation
// section reports — per-level CDU/dense-unit counts (Table 2), per-phase
// timing breakdown (Section 5.3's discussion), and communication volume
// (Section 4.5's cost model inputs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "common/timer.hpp"
#include "core/trace.hpp"
#include "grid/grid_types.hpp"
#include "mp/stats.hpp"
#include "units/join.hpp"
#include "units/populate.hpp"

namespace mafia {

/// One level of the bottom-up search.
struct LevelTrace {
  std::size_t level = 0;     ///< k (unit dimensionality)
  std::size_t ncdu_raw = 0;  ///< CDUs generated before repeat elimination
  std::size_t ncdu = 0;      ///< unique CDUs populated (the paper's Ncdu)
  std::size_t ndu = 0;       ///< dense units identified (the paper's Ndu)
  /// FNV-1a over the level's globalized populate counts, in CDU order.
  /// Identical on every rank and for every (p, B, kernel) configuration —
  /// the determinism tests compare it across rank counts, and it pins the
  /// populate output of a run without shipping the full count vector.
  std::uint64_t count_checksum = 0;
  /// Join work counters for the join that generated this level's CDUs,
  /// globalized across ranks (units/join.hpp JoinStats).  join_buckets is 0
  /// when the pairwise kernel ran; join_repeats_fused counts repeats
  /// eliminated by the fused hash pass under the bucketed kernel.
  std::uint64_t join_buckets = 0;
  std::uint64_t join_probes = 0;
  std::uint64_t join_emitted = 0;
  std::uint64_t join_repeats_fused = 0;
};

/// FNV-1a over a count vector (the LevelTrace::count_checksum function).
[[nodiscard]] inline std::uint64_t count_vector_checksum(
    const std::vector<Count>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Count c : counts) {
    for (std::size_t byte = 0; byte < sizeof(Count); ++byte) {
      h ^= (c >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Checkpoint/restart accounting for one run (core/checkpoint.hpp).
struct RecoveryInfo {
  bool checkpoint_enabled = false;     ///< a checkpoint directory was set
  bool resumed = false;                ///< run continued from a checkpoint
  std::size_t resume_level = 0;        ///< level the resume restarted at
  std::size_t checkpoints_written = 0;
  std::size_t checkpoints_discarded = 0;  ///< corrupt/mismatched files skipped
};

struct MafiaResult {
  /// Maximal-dimensionality clusters (subset clusters eliminated), highest
  /// dimensionality first, DNF expressions built.
  std::vector<Cluster> clusters;

  /// The grids the run used (needed to interpret bin indices / DNF).
  GridSet grids;

  /// Per-level Ncdu/Ndu trace.
  std::vector<LevelTrace> levels;

  /// Wall-clock per phase, max across ranks (the slowest rank bounds the
  /// job): "histogram", "grid", "populate", "identify", "join", "dedup",
  /// "assemble", "io+scan" is folded into populate/histogram.  Derived
  /// from `trace` (a true cross-rank allreduce_max, not rank 0's timers).
  PhaseTimer phases;

  /// Aggregate communication over all ranks: the sum of the per-rank
  /// snapshots in `trace`, equal by construction to the sum of all
  /// per-phase comm deltas (the trace exchange itself is excluded).
  mp::CommStats comm;

  /// Full per-rank, per-phase breakdown (seconds + comm deltas), gathered
  /// from every rank at the end of the run.
  RunTrace trace;

  /// Populate-kernel selection, accumulated over all levels: how many
  /// subspaces ran on the packed sorted / packed hash / memcmp kernels and
  /// the block size the sweep used.  Identical on every rank (the CDU sets
  /// are globally replicated).
  PopulateKernelStats populate_kernel;

  /// Join-kernel selection and work counters, accumulated over all levels:
  /// how many levels ran on the bucketed index vs the pairwise scan, and
  /// the globalized bucket/probe/emission/repeat totals.  Identical on
  /// every rank.
  JoinKernelStats join_kernel;

  /// Checkpoint/restart accounting (zeros when checkpointing is off).
  RecoveryInfo recovery;

  /// The I/O pipeline configuration the run used (copied from
  /// MafiaOptions::io).  The per-phase and total I/O accounting lives in
  /// `trace` (PhaseStats::io / RunTrace::io_total).
  IoConfig io;

  /// End-to-end wall-clock seconds (includes rank spawn/join).
  double total_seconds = 0.0;

  std::size_t num_records = 0;
  std::size_t num_dims = 0;
  int num_ranks = 1;

  /// Highest dimensionality at which a dense unit was found.
  [[nodiscard]] std::size_t max_dense_level() const {
    std::size_t k = 0;
    for (const LevelTrace& t : levels) {
      if (t.ndu > 0) k = t.level;
    }
    return k;
  }

  /// Number of discovered clusters of dimensionality k.
  [[nodiscard]] std::size_t clusters_of_dim(std::size_t k) const {
    std::size_t n = 0;
    for (const Cluster& c : clusters) n += (c.dims.size() == k);
    return n;
  }
};

}  // namespace mafia
