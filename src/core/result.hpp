// Result of a pMAFIA run: the clusters plus everything the evaluation
// section reports — per-level CDU/dense-unit counts (Table 2), per-phase
// timing breakdown (Section 5.3's discussion), and communication volume
// (Section 4.5's cost model inputs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "common/timer.hpp"
#include "core/trace.hpp"
#include "grid/grid_types.hpp"
#include "mp/comm.hpp"
#include "mp/stats.hpp"
#include "units/join.hpp"
#include "units/populate.hpp"

namespace mafia {

/// Cap on the per-level list of unjoined dense units carried in the trace
/// (the count is always exact; the list is a diagnostic sample).
inline constexpr std::size_t kMaxUnjoinedListed = 32;

/// Per-level populate kernel ids recorded in LevelTrace::populate_kernel
/// (the resolved kernel family, Auto and the k > 8 fallback applied).
inline constexpr std::uint8_t kPopulateKernelPacked = 0;
inline constexpr std::uint8_t kPopulateKernelMemcmp = 1;
inline constexpr std::uint8_t kPopulateKernelBitmap = 2;

/// Report name of a LevelTrace::populate_kernel id.
[[nodiscard]] inline const char* populate_kernel_name(std::uint8_t id) {
  switch (id) {
    case kPopulateKernelMemcmp: return "memcmp";
    case kPopulateKernelBitmap: return "bitmap";
    default: return "packed";
  }
}

/// One level of the bottom-up search.
struct LevelTrace {
  std::size_t level = 0;     ///< k (unit dimensionality)
  std::size_t ncdu_raw = 0;  ///< CDUs generated before repeat elimination
  std::size_t ncdu = 0;      ///< unique CDUs populated (the paper's Ncdu)
  std::size_t ndu = 0;       ///< dense units identified (the paper's Ndu)
  /// FNV-1a over the level's globalized populate counts, in CDU order.
  /// Identical on every rank and for every (p, B, kernel) configuration —
  /// the determinism tests compare it across rank counts, and it pins the
  /// populate output of a run without shipping the full count vector.
  std::uint64_t count_checksum = 0;
  /// Join work counters for the join that generated this level's CDUs,
  /// globalized across ranks (units/join.hpp JoinStats).  join_buckets is 0
  /// when the pairwise kernel ran; join_repeats_fused counts repeats
  /// eliminated by the fused hash pass under the bucketed kernel.
  std::uint64_t join_buckets = 0;
  std::uint64_t join_probes = 0;
  std::uint64_t join_emitted = 0;
  std::uint64_t join_repeats_fused = 0;
  /// Kernel family the level's populate ran on (kPopulateKernel*); Auto and
  /// the k > 8 packed fallback are resolved before recording.
  std::uint8_t populate_kernel = kPopulateKernelPacked;
  /// Bitmap-index footprint and AND-reduction work for this level's
  /// populate (zero unless the bitmap kernel ran).
  std::uint64_t bitmap_bytes = 0;
  std::uint64_t bitmap_words_anded = 0;
  /// gpumafia's find_unjoined_dus, per level: dense units of this level
  /// that combined into no candidate of the next level (globalized — a
  /// unit counts only if no rank's join range paired it).  On the run's
  /// last dense level every dense unit is trivially unjoined because no
  /// join follows; the fields stay zero there.  unjoined_units carries at
  /// most kMaxUnjoinedListed printable units; unjoined_dus is exact.
  std::uint64_t unjoined_dus = 0;
  std::vector<std::string> unjoined_units;
};

/// FNV-1a over a count vector (the LevelTrace::count_checksum function).
[[nodiscard]] inline std::uint64_t count_vector_checksum(
    const std::vector<Count>& counts) {
  std::uint64_t h = 1469598103934665603ull;
  for (const Count c : counts) {
    for (std::size_t byte = 0; byte < sizeof(Count); ++byte) {
      h ^= (c >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Incremental append accounting (MafiaOptions::append).  A level is
/// "reused" when its candidate set was proven unchanged and only the new
/// batch was scanned (stored global counts seeded on top); "rerun" when a
/// full data scan was required (first run of a new level, or the reuse
/// chain broke upstream).  Promotions/demotions compare the fresh dense
/// flags against the stored ones over the aligned candidate sets.
struct AppendStats {
  bool performed = false;  ///< the run executed in append mode
  std::uint64_t levels_reused = 0;
  std::uint64_t levels_rerun = 0;
  std::uint64_t units_promoted = 0;  ///< not dense before, dense now
  std::uint64_t units_demoted = 0;   ///< dense before, not dense now
};

/// Checkpoint/restart accounting for one run (core/checkpoint.hpp).
struct RecoveryInfo {
  bool checkpoint_enabled = false;     ///< a checkpoint directory was set
  bool resumed = false;                ///< run continued from a checkpoint
  std::size_t resume_level = 0;        ///< level the resume restarted at
  std::size_t checkpoints_written = 0;
  std::size_t checkpoints_discarded = 0;  ///< corrupt/mismatched files skipped
};

struct MafiaResult {
  /// Maximal-dimensionality clusters (subset clusters eliminated), highest
  /// dimensionality first, DNF expressions built.
  std::vector<Cluster> clusters;

  /// The grids the run used (needed to interpret bin indices / DNF).
  GridSet grids;

  /// Per-level Ncdu/Ndu trace.
  std::vector<LevelTrace> levels;

  /// Wall-clock per phase, max across ranks (the slowest rank bounds the
  /// job): "histogram", "grid", "populate", "identify", "join", "dedup",
  /// "assemble", "io+scan" is folded into populate/histogram.  Derived
  /// from `trace` (a true cross-rank allreduce_max, not rank 0's timers).
  PhaseTimer phases;

  /// Aggregate communication over all ranks: the sum of the per-rank
  /// snapshots in `trace`, equal by construction to the sum of all
  /// per-phase comm deltas (the trace exchange itself is excluded).
  mp::CommStats comm;

  /// Full per-rank, per-phase breakdown (seconds + comm deltas), gathered
  /// from every rank at the end of the run.
  RunTrace trace;

  /// Populate-kernel selection, accumulated over all levels: how many
  /// subspaces ran on the packed sorted / packed hash / memcmp kernels and
  /// the block size the sweep used.  Identical on every rank (the CDU sets
  /// are globally replicated).
  PopulateKernelStats populate_kernel;

  /// Join-kernel selection and work counters, accumulated over all levels:
  /// how many levels ran on the bucketed index vs the pairwise scan, and
  /// the globalized bucket/probe/emission/repeat totals.  Identical on
  /// every rank.
  JoinKernelStats join_kernel;

  /// Checkpoint/restart accounting (zeros when checkpointing is off).
  RecoveryInfo recovery;

  /// Incremental append accounting (performed = false off the append path).
  AppendStats append;

  /// The I/O pipeline configuration the run used (copied from
  /// MafiaOptions::io).  The per-phase and total I/O accounting lives in
  /// `trace` (PhaseStats::io / RunTrace::io_total).
  IoConfig io;

  /// End-to-end wall-clock seconds (includes rank spawn/join).
  double total_seconds = 0.0;

  std::size_t num_records = 0;
  std::size_t num_dims = 0;
  int num_ranks = 1;

  /// The SPMD transport the run used (MafiaOptions::mp.backend).
  mp::MpBackend mp_backend = mp::MpBackend::Threads;

  /// Process backend only: how each worker rank exited (all code 0 on a
  /// clean run).  Empty on the threads backend — ranks are threads, there
  /// is no per-rank exit status.
  std::vector<mp::RankExit> rank_exits;

  /// Total unjoined dense units over all levels (LevelTrace::unjoined_dus
  /// summed): the paper's "dense units which could not be combined".
  [[nodiscard]] std::uint64_t total_unjoined_dus() const {
    std::uint64_t n = 0;
    for (const LevelTrace& t : levels) n += t.unjoined_dus;
    return n;
  }

  /// Highest dimensionality at which a dense unit was found.
  [[nodiscard]] std::size_t max_dense_level() const {
    std::size_t k = 0;
    for (const LevelTrace& t : levels) {
      if (t.ndu > 0) k = t.level;
    }
    return k;
  }

  /// Number of discovered clusters of dimensionality k.
  [[nodiscard]] std::size_t clusters_of_dim(std::size_t k) const {
    std::size_t n = 0;
    for (const Cluster& c : clusters) n += (c.dims.size() == k);
    return n;
  }
};

}  // namespace mafia
