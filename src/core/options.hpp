// Public options for the pMAFIA driver.
//
// The paper's headline claim is that pMAFIA is "a truly un-supervised
// clustering algorithm requiring no user inputs": everything here defaults
// to the paper's recommendations (alpha = 1.5, beta in the working range,
// automatic per-bin thresholds) and the algorithm is normally run with
// MafiaOptions{}.  The knobs exist for the ablation benches and for the
// CLIQUE baseline comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "grid/adaptive_grid.hpp"
#include "io/pipeline.hpp"
#include "mp/backend.hpp"
#include "mp/faults.hpp"
#include "mp/stats.hpp"
#include "units/dedup.hpp"
#include "units/identify.hpp"
#include "units/join.hpp"
#include "units/populate.hpp"

namespace mafia {

/// Level-checkpoint/restart configuration (core/checkpoint.hpp).  With a
/// directory set, rank 0 writes one CRC-guarded checkpoint file per
/// completed level of the bottom-up loop; with `resume` also set, the run
/// restores the latest valid checkpoint (falling back past corrupt or
/// mismatched files) and continues from that level with bit-identical
/// results to an uninterrupted run.
struct CheckpointConfig {
  std::string directory;  ///< empty = checkpointing disabled
  bool resume = false;    ///< restore the latest valid checkpoint first

  /// Data files the run consumes, in concatenation order, as (path,
  /// records) pairs.  Recorded verbatim in the final checkpoint so
  /// `pmafia append` can reconstruct the base data; the library never
  /// opens these paths itself.  Filled by the CLI, optional elsewhere.
  std::vector<std::pair<std::string, std::uint64_t>> provenance;

  [[nodiscard]] bool enabled() const { return !directory.empty(); }
};

/// Incremental append-batch mode: the run's data source holds the base
/// records (the ones a previous checkpointed run clustered) followed by
/// the new batch, and `base_records` marks the boundary.  The run loads
/// the final checkpoint from CheckpointConfig::directory (fingerprinted
/// for the base record count), seeds histograms and per-level unit counts
/// from it, scans only the batch for every level whose candidate set is
/// provably unchanged, and falls back to full scans from the first level
/// whose dense-unit flags diverge — so the result is bit-identical to a
/// full rebuild on the concatenated data by construction, and the memo
/// only buys speed.  A new final checkpoint (fingerprinted for the
/// concatenated count) is written at the end; per-level checkpoint writes
/// are suppressed, so a crash mid-append leaves the base state intact.
struct AppendConfig {
  std::uint64_t base_records = 0;
};

/// SPMD transport configuration (mp/backend.hpp).  The backend changes how
/// ranks exchange data — threads over a shared board, or forked worker
/// processes over shared memory + sockets — never what they compute:
/// results are bit-identical across backends, and the checkpoint
/// fingerprint deliberately excludes all three knobs so a resume may switch
/// backend mid-run.
struct MpConfig {
  mp::MpBackend backend = mp::MpBackend::Threads;

  /// Deadline, in seconds, on every collective and mailbox wait; a rank
  /// stuck longer fails the job with a Fault-class error naming the rank
  /// and operation instead of hanging it.  0 = no deadline.
  double deadline_seconds = 0.0;

  /// Process backend only: per-rank shared-memory slot size; payloads
  /// larger than a slot spill over the rank's socket (correct either way,
  /// sizing only affects transport cost).
  std::size_t shm_slot_bytes = 256 * 1024;
};

/// `pmafia serve` daemon configuration (src/serve/server.hpp): which model
/// file to load, where to listen, and the worker-pool / admission limits.
/// Lives here (not in the serve module) so the CLI's option plumbing has a
/// single home and the serve module stays a pure consumer.
struct ServeOptions {
  std::string model_path;  ///< model file written by `cluster --save`

  /// Listen spec: "unix:/path/to.sock" (or a bare filesystem path) for a
  /// Unix socket, "tcp:HOST:PORT" for IPv4 TCP (PORT 0 = pick a free one).
  std::string listen;

  std::size_t serve_threads = 4;  ///< query worker pool size
  std::size_t max_batch = 4096;   ///< rows admitted per query frame

  void validate() const {
    require(!model_path.empty(), "ServeOptions: model path is required");
    require(!listen.empty(), "ServeOptions: listen spec is required");
    require(serve_threads >= 1 && serve_threads <= 256,
            "ServeOptions: serve_threads must be in [1, 256]");
    require(max_batch >= 1 && max_batch <= (1u << 22),
            "ServeOptions: max_batch must be in [1, 4194304]");
  }
};

struct MafiaOptions {
  /// Algorithm 1 parameters (alpha, beta, window geometry).
  AdaptiveGridOptions grid;

  /// Density test for k-dim candidates (default: the paper's every-bin rule).
  DensityPolicy density = DensityPolicy::AllBins;

  /// Candidate generation rule (default: MAFIA's any-(k-2)-shared join;
  /// CliquePrefix reproduces the baseline's incomplete candidate set).
  JoinRule join_rule = JoinRule::MafiaAnyShared;

  /// Repeat-elimination strategy.  Hash is the engineering default;
  /// Pairwise is the paper's O(Ncdu^2) kernel, task-partitioned in
  /// parallel runs (kept for fidelity and the dedup ablation bench).
  /// Note: under join.kernel == JoinKernel::Bucketed repeat elimination is
  /// fused into candidate finalization as a single hash pass and this knob
  /// is not consulted; it takes effect only with the Pairwise join kernel.
  DedupPolicy dedup = DedupPolicy::Hash;

  /// Candidate-generation kernel selection (units/join.hpp).  Bucketed (the
  /// default) probes only pairs sharing a (k−2)-dim sub-signature and is
  /// bit-identical in output to the paper's Pairwise triangular scan, which
  /// remains available for fidelity runs and the join A/B bench.
  JoinConfig join;

  /// B: records per chunk of the out-of-core scans (Algorithm 2's memory
  /// buffer).
  std::size_t chunk_records = 1 << 16;

  /// Pipelined prefetching for the data passes (io/pipeline.hpp): with
  /// `io.prefetch` set, every chunked scan runs through a PipelinedSource
  /// so the next chunk is read while the current one is processed.  Results
  /// are bit-identical either way (the pipeline preserves the synchronous
  /// chunk sequence); only where the time goes changes, and the per-phase
  /// io stats in the run report show the split.
  IoConfig io;

  /// Populate-kernel tuning: the record-block size of the subspace-major
  /// sweep and the lookup-kernel selection (Auto = packed integer keys for
  /// k <= 8 subspaces, byte-row memcmp beyond).  The chosen kernels are
  /// surfaced in the run report's populate_kernel object.
  PopulateConfig populate;

  /// tau: below this many units, task-parallel phases degenerate to every
  /// rank processing everything locally ("Candidate dense units are
  /// generated in parallel only when each processor is guaranteed to have a
  /// minimal amount of work", Section 4.3).
  std::size_t tau = 32;

  /// Eq. 1 optimal triangular partitioning for the join / pairwise-dedup
  /// workloads; false falls back to naive block partitioning (ablation).
  bool optimal_task_partition = true;

  /// Safety cap on the level loop (the genuine termination condition is
  /// "no more candidate dense units").
  std::size_t max_level = 64;

  /// When set, every dimension's domain is taken as [first, second] and the
  /// min/max pre-pass is skipped (one fewer scan; useful when the data
  /// generator's domain is known).
  std::optional<std::pair<Value, Value>> fixed_domain;

  /// When set, Algorithm 1 is bypassed and a CLIQUE-style uniform grid is
  /// used instead: `xi` equal bins per dimension (or `bins_per_dim` when
  /// non-empty) with a single global density threshold `tau_fraction`·N.
  /// The clique module sets this; combining it with JoinRule::MafiaAnyShared
  /// gives the paper's "modified CLIQUE" of Section 5.5.
  struct UniformGridOverride {
    std::size_t xi = 10;
    double tau_fraction = 0.01;
    std::vector<std::size_t> bins_per_dim;  ///< optional per-dim bin counts
  };
  std::optional<UniformGridOverride> uniform_grid;

  /// When set, every collective/message stalls the participating rank by
  /// the emulated interconnect delay (mp::NetworkSimulation::sp2() for the
  /// paper's switch constants) — lets benches measure communication
  /// overhead under the paper's network instead of thread-speed exchanges.
  std::optional<mp::NetworkSimulation> simulate_network;

  /// Minimum subspace dimensionality of reported clusters.  A single dense
  /// bin that never combined upward is a maximal dense region but rarely a
  /// meaningful "cluster"; the paper's real-data tables (e.g. Table 4)
  /// report clusters of dimensionality >= 3 only.  Default 2.  Set to 1 to
  /// see every registered maximal unit.
  std::size_t min_cluster_dims = 2;

  /// Level-checkpoint/restart: see CheckpointConfig.  Checkpoint contents
  /// are independent of chunk_records, populate kernel selection/tuning,
  /// and rank count (results are invariant to all three), so a resume may
  /// change them — including switching --populate-kernel mid-run.
  CheckpointConfig checkpoint;

  /// Incremental append-batch mode (see AppendConfig).  Requires a
  /// checkpoint directory holding the base run's final checkpoint; mutually
  /// exclusive with checkpoint.resume (an interrupted append is simply
  /// rerun — the base state is never mutated until the final atomic
  /// publish).
  std::optional<AppendConfig> append;

  /// Graceful degradation: hard cap, in bytes, on one level's memory
  /// components — the CDU stores (dim/bin byte arrays plus the count
  /// vector) and the kernels' auxiliary structures (the populate bitmap
  /// index sized for the worst-case partition, the join bucket index).
  /// Exceeding it throws mafia::ResourceError naming the level and the
  /// offending component instead of OOM-ing mid-allocation.  0 = unlimited.
  std::size_t max_cdu_bytes = 0;

  /// SPMD transport selection and robustness knobs (see MpConfig).
  MpConfig mp;

  /// Deterministic fault injection for robustness tests and recovery
  /// drills (mp/faults.hpp).  Empty = no faults.  An injected kill
  /// surfaces as mp::FaultError from run_pmafia with every rank unwound.
  mp::FaultPlan fault_plan;

  /// CLIQUE's MDL subspace pruning, applied to the dense units of every
  /// level: subspaces in the low-coverage MDL group lose their dense units
  /// before the next join.  pMAFIA keeps this off ("In order to maintain
  /// the high quality of clustering we do not use this pruning technique").
  bool mdl_pruning = false;

  void validate() const {
    grid.validate();
    io.validate();
    require(chunk_records >= 1, "MafiaOptions: chunk_records must be positive");
    require(populate.block_records >= 1,
            "MafiaOptions: populate.block_records must be positive");
    require(max_level >= 1, "MafiaOptions: max_level must be positive");
    require(!checkpoint.resume || checkpoint.enabled(),
            "MafiaOptions: resume requires a checkpoint directory");
    if (append) {
      require(checkpoint.enabled(),
              "MafiaOptions: append requires a checkpoint directory");
      require(!checkpoint.resume,
              "MafiaOptions: append and resume are mutually exclusive");
      require(append->base_records >= 1,
              "MafiaOptions: append.base_records must be positive");
    }
    require(mp.deadline_seconds >= 0.0,
            "MafiaOptions: mp.deadline_seconds must be non-negative");
    require(mp.shm_slot_bytes >= 64,
            "MafiaOptions: mp.shm_slot_bytes must be at least 64");
    if (fixed_domain) {
      require(fixed_domain->second > fixed_domain->first,
              "MafiaOptions: empty fixed domain");
    }
  }
};

}  // namespace mafia
