#include "core/result_codec.hpp"

#include <array>

namespace mafia {

namespace {

constexpr std::uint32_t kWorkerResultVersion = 2;  // v2: AppendStats tail

}  // namespace

// ------------------------------------------------------- component codecs

void write_store(ByteWriter& w, const UnitStore& store) {
  w.pod(static_cast<std::uint64_t>(store.k()));
  w.vec(store.dim_bytes());
  w.vec(store.bin_bytes());
}

UnitStore read_store(ByteReader& r) {
  const auto k = r.pod<std::uint64_t>();
  auto dims = r.vec<DimId>();
  auto bins = r.vec<BinId>();
  return UnitStore::from_bytes(static_cast<std::size_t>(k), std::move(dims),
                               std::move(bins));
}

void write_grids(ByteWriter& w, const GridSet& grids) {
  w.pod(static_cast<std::uint64_t>(grids.num_dims()));
  for (const DimensionGrid& g : grids.dims) {
    w.pod(g.dim);
    w.pod(g.domain_lo);
    w.pod(g.domain_hi);
    w.vec(g.edges);
    w.vec(g.thresholds);
    w.pod(static_cast<std::uint8_t>(g.uniform_fallback ? 1 : 0));
  }
}

GridSet read_grids(ByteReader& r) {
  GridSet grids;
  const auto ndims = r.pod<std::uint64_t>();
  require_input(ndims <= kMaxDims,
                std::string(r.context) + ": bad grid dimension count");
  grids.dims.reserve(static_cast<std::size_t>(ndims));
  for (std::uint64_t i = 0; i < ndims; ++i) {
    DimensionGrid g;
    g.dim = r.pod<DimId>();
    g.domain_lo = r.pod<Value>();
    g.domain_hi = r.pod<Value>();
    g.edges = r.vec<Value>();
    g.thresholds = r.vec<double>();
    g.uniform_fallback = r.pod<std::uint8_t>() != 0;
    g.validate();
    grids.dims.push_back(std::move(g));
  }
  return grids;
}

void write_level_trace(ByteWriter& w, const LevelTrace& t) {
  w.pod(static_cast<std::uint64_t>(t.level));
  w.pod(static_cast<std::uint64_t>(t.ncdu_raw));
  w.pod(static_cast<std::uint64_t>(t.ncdu));
  w.pod(static_cast<std::uint64_t>(t.ndu));
  w.pod(t.count_checksum);
  w.pod(t.join_buckets);
  w.pod(t.join_probes);
  w.pod(t.join_emitted);
  w.pod(t.join_repeats_fused);
  w.pod(t.populate_kernel);
  w.pod(t.bitmap_bytes);
  w.pod(t.bitmap_words_anded);
  w.pod(t.unjoined_dus);
  w.pod(static_cast<std::uint64_t>(t.unjoined_units.size()));
  for (const std::string& u : t.unjoined_units) w.str(u);
}

LevelTrace read_level_trace(ByteReader& r) {
  LevelTrace t;
  t.level = static_cast<std::size_t>(r.pod<std::uint64_t>());
  t.ncdu_raw = static_cast<std::size_t>(r.pod<std::uint64_t>());
  t.ncdu = static_cast<std::size_t>(r.pod<std::uint64_t>());
  t.ndu = static_cast<std::size_t>(r.pod<std::uint64_t>());
  t.count_checksum = r.pod<std::uint64_t>();
  t.join_buckets = r.pod<std::uint64_t>();
  t.join_probes = r.pod<std::uint64_t>();
  t.join_emitted = r.pod<std::uint64_t>();
  t.join_repeats_fused = r.pod<std::uint64_t>();
  t.populate_kernel = r.pod<std::uint8_t>();
  t.bitmap_bytes = r.pod<std::uint64_t>();
  t.bitmap_words_anded = r.pod<std::uint64_t>();
  t.unjoined_dus = r.pod<std::uint64_t>();
  const auto nunjoined = r.pod<std::uint64_t>();
  require_input(nunjoined <= kMaxUnjoinedListed,
                std::string(r.context) +
                    ": implausible unjoined-unit list length");
  t.unjoined_units.reserve(static_cast<std::size_t>(nunjoined));
  for (std::uint64_t u = 0; u < nunjoined; ++u) {
    t.unjoined_units.push_back(r.str());
  }
  return t;
}

// ------------------------------------------------------ worker result blob

namespace {

void write_comm_stats(ByteWriter& w, const mp::CommStats& s) {
  for (const std::uint64_t word : s.serialize()) w.pod(word);
}

mp::CommStats read_comm_stats(ByteReader& r) {
  std::array<std::uint64_t, mp::CommStats::kSerializedWords> words;
  for (std::uint64_t& word : words) word = r.pod<std::uint64_t>();
  return mp::CommStats::deserialize(words.data());
}

void write_phase_stats(ByteWriter& w, const PhaseStats& ps) {
  w.pod(ps.seconds);
  write_comm_stats(w, ps.comm);
  w.pod(ps.io.chunks);
  w.pod(ps.io.bytes);
  w.pod(ps.io.read_seconds);
  w.pod(ps.io.wait_seconds);
  w.pod(ps.io.compute_seconds);
  w.pod(ps.io.scan_seconds);
}

PhaseStats read_phase_stats(ByteReader& r) {
  PhaseStats ps;
  ps.seconds = r.pod<double>();
  ps.comm = read_comm_stats(r);
  ps.io.chunks = r.pod<std::uint64_t>();
  ps.io.bytes = r.pod<std::uint64_t>();
  ps.io.read_seconds = r.pod<double>();
  ps.io.wait_seconds = r.pod<double>();
  ps.io.compute_seconds = r.pod<double>();
  ps.io.scan_seconds = r.pod<double>();
  return ps;
}

void write_phase_map(ByteWriter& w, const PhaseMap& m) {
  w.pod(static_cast<std::uint64_t>(m.size()));
  for (const auto& [name, ps] : m) {
    w.str(name);
    write_phase_stats(w, ps);
  }
}

PhaseMap read_phase_map(ByteReader& r) {
  const auto n = r.pod<std::uint64_t>();
  require_input(n <= 1u << 12,
                std::string(r.context) + ": implausible phase count");
  PhaseMap m;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    m[name] = read_phase_stats(r);
  }
  return m;
}

constexpr std::uint64_t kMaxRanksInBlob = 1u << 16;

}  // namespace

std::vector<std::uint8_t> serialize_worker_result(const WorkerResult& wr) {
  ByteWriter w;
  w.pod(kWorkerResultVersion);
  write_grids(w, wr.grids);
  w.pod(static_cast<std::uint64_t>(wr.levels.size()));
  for (const LevelTrace& t : wr.levels) write_level_trace(w, t);
  w.pod(static_cast<std::uint64_t>(wr.registered.size()));
  for (const UnitStore& store : wr.registered) write_store(w, store);
  w.pod(static_cast<std::uint64_t>(wr.trace.per_rank.size()));
  for (const PhaseMap& m : wr.trace.per_rank) write_phase_map(w, m);
  w.pod(static_cast<std::uint64_t>(wr.trace.rank_totals.size()));
  for (const mp::CommStats& s : wr.trace.rank_totals) write_comm_stats(w, s);
  w.pod(static_cast<std::uint64_t>(wr.trace.max_phases.phases().size()));
  for (const auto& [name, secs] : wr.trace.max_phases.phases()) {
    w.str(name);
    w.pod(secs);
  }
  w.pod(static_cast<std::uint64_t>(wr.populate.packed_sorted_subspaces));
  w.pod(static_cast<std::uint64_t>(wr.populate.packed_hash_subspaces));
  w.pod(static_cast<std::uint64_t>(wr.populate.memcmp_subspaces));
  w.pod(static_cast<std::uint64_t>(wr.populate.bitmap_subspaces));
  w.pod(static_cast<std::uint64_t>(wr.populate.block_records));
  w.pod(static_cast<std::uint64_t>(wr.populate.bitmap_bytes));
  w.pod(static_cast<std::uint64_t>(wr.populate.bitmap_words_anded));
  w.pod(wr.join_kernel.bucketed_levels);
  w.pod(wr.join_kernel.pairwise_levels);
  w.pod(wr.join_kernel.buckets);
  w.pod(wr.join_kernel.probes);
  w.pod(wr.join_kernel.emitted);
  w.pod(wr.join_kernel.repeats_fused);
  w.pod(static_cast<std::uint8_t>(wr.recovery.checkpoint_enabled));
  w.pod(static_cast<std::uint8_t>(wr.recovery.resumed));
  w.pod(static_cast<std::uint64_t>(wr.recovery.resume_level));
  w.pod(static_cast<std::uint64_t>(wr.recovery.checkpoints_written));
  w.pod(static_cast<std::uint64_t>(wr.recovery.checkpoints_discarded));
  w.pod(static_cast<std::uint8_t>(wr.append.performed));
  w.pod(wr.append.levels_reused);
  w.pod(wr.append.levels_rerun);
  w.pod(wr.append.units_promoted);
  w.pod(wr.append.units_demoted);
  return std::move(w.out);
}

WorkerResult deserialize_worker_result(const std::uint8_t* data,
                                       std::size_t size) {
  ByteReader r{data, size, 0, "mp result"};
  WorkerResult wr;
  try {
    const auto version = r.pod<std::uint32_t>();
    require(version == kWorkerResultVersion,
            "mp result: unsupported blob version " + std::to_string(version));
    wr.grids = read_grids(r);
    const auto nlevels = r.pod<std::uint64_t>();
    require_input(nlevels <= 1u << 16, "mp result: implausible level count");
    wr.levels.reserve(static_cast<std::size_t>(nlevels));
    for (std::uint64_t i = 0; i < nlevels; ++i) {
      wr.levels.push_back(read_level_trace(r));
    }
    const auto nregistered = r.pod<std::uint64_t>();
    require_input(nregistered <= 1u << 16,
                  "mp result: implausible registered-store count");
    wr.registered.reserve(static_cast<std::size_t>(nregistered));
    for (std::uint64_t i = 0; i < nregistered; ++i) {
      wr.registered.push_back(read_store(r));
    }
    const auto nranks = r.pod<std::uint64_t>();
    require_input(nranks <= kMaxRanksInBlob,
                  "mp result: implausible rank count");
    wr.trace.per_rank.reserve(static_cast<std::size_t>(nranks));
    for (std::uint64_t i = 0; i < nranks; ++i) {
      wr.trace.per_rank.push_back(read_phase_map(r));
    }
    const auto ntotals = r.pod<std::uint64_t>();
    require_input(ntotals <= kMaxRanksInBlob,
                  "mp result: implausible rank-total count");
    wr.trace.rank_totals.reserve(static_cast<std::size_t>(ntotals));
    for (std::uint64_t i = 0; i < ntotals; ++i) {
      wr.trace.rank_totals.push_back(read_comm_stats(r));
    }
    const auto nmax = r.pod<std::uint64_t>();
    require_input(nmax <= 1u << 12, "mp result: implausible phase count");
    for (std::uint64_t i = 0; i < nmax; ++i) {
      std::string name = r.str();
      wr.trace.max_phases.add(name, r.pod<double>());
    }
    wr.populate.packed_sorted_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.packed_hash_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.memcmp_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.bitmap_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.block_records =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.bitmap_bytes =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.populate.bitmap_words_anded =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.join_kernel.bucketed_levels = r.pod<std::uint64_t>();
    wr.join_kernel.pairwise_levels = r.pod<std::uint64_t>();
    wr.join_kernel.buckets = r.pod<std::uint64_t>();
    wr.join_kernel.probes = r.pod<std::uint64_t>();
    wr.join_kernel.emitted = r.pod<std::uint64_t>();
    wr.join_kernel.repeats_fused = r.pod<std::uint64_t>();
    wr.recovery.checkpoint_enabled = r.pod<std::uint8_t>() != 0;
    wr.recovery.resumed = r.pod<std::uint8_t>() != 0;
    wr.recovery.resume_level =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.recovery.checkpoints_written =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.recovery.checkpoints_discarded =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    wr.append.performed = r.pod<std::uint8_t>() != 0;
    wr.append.levels_reused = r.pod<std::uint64_t>();
    wr.append.levels_rerun = r.pod<std::uint64_t>();
    wr.append.units_promoted = r.pod<std::uint64_t>();
    wr.append.units_demoted = r.pod<std::uint64_t>();
    require_input(r.at == r.size, "mp result: trailing garbage after payload");
  } catch (const Error& e) {
    // The blob never touches disk or the user: any parse failure is a
    // transport or codec bug, so the class is Internal regardless of how
    // the reader classified it.
    throw Error(std::string("mp result: invalid worker result blob: ") +
                    e.what(),
                ErrorClass::Internal);
  }
  return wr;
}

}  // namespace mafia
