#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/bytes.hpp"
#include "common/crc32.hpp"
#include "core/result_codec.hpp"

namespace mafia {

namespace {

constexpr char kCheckpointMagic[8] = {'M', 'A', 'F', 'I', 'A', 'C', 'K', 'P'};
constexpr std::size_t kCheckpointHeaderBytes = 16;  // magic + version + crc

// The byte stream (common/bytes.hpp) and the store/grid/level-trace codecs
// (core/result_codec.hpp) are shared with the process backend's worker
// result blob; this file owns only the checkpoint framing and the
// loop-state fields around them.

}  // namespace

std::uint64_t checkpoint_fingerprint(const MafiaOptions& options,
                                     std::uint64_t num_records,
                                     std::uint32_t num_dims) {
  ByteWriter w;
  w.pod(kCheckpointVersion);
  w.pod(num_records);
  w.pod(num_dims);
  w.pod(options.grid.fine_bins);
  w.pod(options.grid.window_cells);
  w.pod(options.grid.beta);
  w.pod(options.grid.merge_noise_sigmas);
  w.pod(options.grid.uniform_dim_partitions);
  w.pod(options.grid.alpha);
  w.pod(options.grid.uniform_dim_alpha_boost);
  w.pod(options.grid.max_bins);
  w.pod(static_cast<std::uint32_t>(options.density));
  w.pod(static_cast<std::uint32_t>(options.join_rule));
  w.pod(static_cast<std::uint32_t>(options.dedup));
  w.pod(options.tau);
  w.pod(static_cast<std::uint8_t>(options.optimal_task_partition));
  w.pod(options.max_level);
  w.pod(options.min_cluster_dims);
  w.pod(static_cast<std::uint8_t>(options.mdl_pruning));
  w.pod(static_cast<std::uint8_t>(options.fixed_domain.has_value()));
  if (options.fixed_domain) {
    w.pod(options.fixed_domain->first);
    w.pod(options.fixed_domain->second);
  }
  w.pod(static_cast<std::uint8_t>(options.uniform_grid.has_value()));
  if (options.uniform_grid) {
    w.pod(options.uniform_grid->xi);
    w.pod(options.uniform_grid->tau_fraction);
    w.vec(options.uniform_grid->bins_per_dim);
  }

  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : w.out) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<std::uint8_t> serialize_checkpoint(const CheckpointState& state) {
  ByteWriter w;
  w.pod(state.fingerprint);
  w.pod(state.num_records);
  w.pod(state.num_dims);
  w.pod(state.level);
  w.pod(state.pending_raw_count);
  w.pod(state.pending_join.buckets);
  w.pod(state.pending_join.probes);
  w.pod(state.pending_join.emitted);
  w.pod(state.pending_join.repeats_fused);
  w.pod(state.pending_join_kernel);
  write_store(w, state.cdus);
  write_store(w, state.prev_dense);
  {
    // Parent index pairs pack into one u64 each (same wire trick as the
    // driver's gather of join parents).
    std::vector<std::uint64_t> packed(state.parents.size());
    for (std::size_t i = 0; i < state.parents.size(); ++i) {
      packed[i] =
          (static_cast<std::uint64_t>(state.parents[i].first) << 32) |
          state.parents[i].second;
    }
    w.vec(packed);
  }
  w.vec(state.raw_to_unique);
  write_grids(w, state.grids);
  w.pod(static_cast<std::uint64_t>(state.levels.size()));
  // Version 3 extended the per-level record with the kernel id, bitmap
  // counters, and unjoined units (see write_level_trace).
  for (const LevelTrace& t : state.levels) write_level_trace(w, t);
  w.pod(static_cast<std::uint64_t>(state.registered.size()));
  for (const UnitStore& store : state.registered) write_store(w, store);
  w.pod(static_cast<std::uint64_t>(state.populate.packed_sorted_subspaces));
  w.pod(static_cast<std::uint64_t>(state.populate.packed_hash_subspaces));
  w.pod(static_cast<std::uint64_t>(state.populate.memcmp_subspaces));
  w.pod(static_cast<std::uint64_t>(state.populate.bitmap_subspaces));
  w.pod(static_cast<std::uint64_t>(state.populate.block_records));
  w.pod(static_cast<std::uint64_t>(state.populate.bitmap_bytes));
  w.pod(static_cast<std::uint64_t>(state.populate.bitmap_words_anded));
  w.pod(state.join_kernel.bucketed_levels);
  w.pod(state.join_kernel.pairwise_levels);
  w.pod(state.join_kernel.buckets);
  w.pod(state.join_kernel.probes);
  w.pod(state.join_kernel.emitted);
  w.pod(state.join_kernel.repeats_fused);

  // Version 4: the append-base sections ride only on the final checkpoint;
  // per-level recovery files stay as small as they were under version 3.
  w.pod(state.complete);
  if (state.complete != 0) {
    w.vec(state.domain_lo);
    w.vec(state.domain_hi);
    w.vec(state.hist_counts);
    w.pod(static_cast<std::uint64_t>(state.memo.size()));
    for (const AppendLevelMemo& m : state.memo) {
      w.pod(m.level);
      write_store(w, m.cdus);
      std::vector<std::uint64_t> packed(m.parents.size());
      for (std::size_t i = 0; i < m.parents.size(); ++i) {
        packed[i] = (static_cast<std::uint64_t>(m.parents[i].first) << 32) |
                    m.parents[i].second;
      }
      w.vec(packed);
      w.vec(m.raw_to_unique);
      w.pod(m.pending_raw_count);
      w.pod(m.pending_join.buckets);
      w.pod(m.pending_join.probes);
      w.pod(m.pending_join.emitted);
      w.pod(m.pending_join.repeats_fused);
      w.pod(m.pending_join_kernel);
      w.vec(m.counts);
      w.vec(m.flags);
    }
    w.pod(static_cast<std::uint64_t>(state.provenance.size()));
    for (const DataSegment& seg : state.provenance) {
      w.str(seg.path);
      w.pod(seg.records);
    }
  }

  std::vector<std::uint8_t> file;
  file.reserve(kCheckpointHeaderBytes + w.out.size());
  file.insert(file.end(), kCheckpointMagic, kCheckpointMagic + 8);
  const std::uint32_t version = kCheckpointVersion;
  const std::uint32_t crc = crc32(w.out.data(), w.out.size());
  const auto* vp = reinterpret_cast<const std::uint8_t*>(&version);
  file.insert(file.end(), vp, vp + sizeof(version));
  const auto* cp = reinterpret_cast<const std::uint8_t*>(&crc);
  file.insert(file.end(), cp, cp + sizeof(crc));
  file.insert(file.end(), w.out.begin(), w.out.end());
  return file;
}

CheckpointState deserialize_checkpoint(const std::uint8_t* data,
                                       std::size_t size) {
  require_input(size >= kCheckpointHeaderBytes &&
                    std::memcmp(data, kCheckpointMagic, 8) == 0,
                "checkpoint: bad magic or short file");
  std::uint32_t version = 0;
  std::uint32_t stored_crc = 0;
  std::memcpy(&version, data + 8, sizeof(version));
  std::memcpy(&stored_crc, data + 12, sizeof(stored_crc));
  require_input(version == kCheckpointVersion,
                "checkpoint: unsupported format version " +
                    std::to_string(version));
  const std::uint8_t* payload = data + kCheckpointHeaderBytes;
  const std::size_t payload_size = size - kCheckpointHeaderBytes;
  require_input(crc32(payload, payload_size) == stored_crc,
                "checkpoint: CRC mismatch (corrupt payload)");

  ByteReader r{payload, payload_size};
  CheckpointState state;
  try {
    state.fingerprint = r.pod<std::uint64_t>();
    state.num_records = r.pod<std::uint64_t>();
    state.num_dims = r.pod<std::uint32_t>();
    state.level = r.pod<std::uint64_t>();
    state.pending_raw_count = r.pod<std::uint64_t>();
    state.pending_join.buckets = r.pod<std::uint64_t>();
    state.pending_join.probes = r.pod<std::uint64_t>();
    state.pending_join.emitted = r.pod<std::uint64_t>();
    state.pending_join.repeats_fused = r.pod<std::uint64_t>();
    state.pending_join_kernel = r.pod<std::uint8_t>();
    state.cdus = read_store(r);
    state.prev_dense = read_store(r);
    const auto packed = r.vec<std::uint64_t>();
    state.parents.resize(packed.size());
    for (std::size_t i = 0; i < packed.size(); ++i) {
      state.parents[i] = {static_cast<std::uint32_t>(packed[i] >> 32),
                          static_cast<std::uint32_t>(packed[i])};
    }
    state.raw_to_unique = r.vec<std::uint32_t>();
    state.grids = read_grids(r);
    const auto nlevels = r.pod<std::uint64_t>();
    require_input(nlevels <= 1u << 16, "checkpoint: implausible level count");
    state.levels.reserve(static_cast<std::size_t>(nlevels));
    for (std::uint64_t i = 0; i < nlevels; ++i) {
      state.levels.push_back(read_level_trace(r));
    }
    const auto nregistered = r.pod<std::uint64_t>();
    require_input(nregistered <= 1u << 16,
                  "checkpoint: implausible registered-store count");
    state.registered.reserve(static_cast<std::size_t>(nregistered));
    for (std::uint64_t i = 0; i < nregistered; ++i) {
      state.registered.push_back(read_store(r));
    }
    state.populate.packed_sorted_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.packed_hash_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.memcmp_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.bitmap_subspaces =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.block_records =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.bitmap_bytes =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.populate.bitmap_words_anded =
        static_cast<std::size_t>(r.pod<std::uint64_t>());
    state.join_kernel.bucketed_levels = r.pod<std::uint64_t>();
    state.join_kernel.pairwise_levels = r.pod<std::uint64_t>();
    state.join_kernel.buckets = r.pod<std::uint64_t>();
    state.join_kernel.probes = r.pod<std::uint64_t>();
    state.join_kernel.emitted = r.pod<std::uint64_t>();
    state.join_kernel.repeats_fused = r.pod<std::uint64_t>();
    state.complete = r.pod<std::uint8_t>();
    require_input(state.complete <= 1, "checkpoint: bad complete flag");
    if (state.complete != 0) {
      state.domain_lo = r.vec<Value>();
      state.domain_hi = r.vec<Value>();
      require_input(state.domain_lo.size() == state.domain_hi.size(),
                    "checkpoint: domain lo/hi size mismatch");
      state.hist_counts = r.vec<Count>();
      const auto nmemo = r.pod<std::uint64_t>();
      require_input(nmemo <= 1u << 16, "checkpoint: implausible memo count");
      state.memo.reserve(static_cast<std::size_t>(nmemo));
      for (std::uint64_t i = 0; i < nmemo; ++i) {
        AppendLevelMemo m;
        m.level = r.pod<std::uint64_t>();
        m.cdus = read_store(r);
        const auto packed = r.vec<std::uint64_t>();
        m.parents.resize(packed.size());
        for (std::size_t j = 0; j < packed.size(); ++j) {
          m.parents[j] = {static_cast<std::uint32_t>(packed[j] >> 32),
                          static_cast<std::uint32_t>(packed[j])};
        }
        m.raw_to_unique = r.vec<std::uint32_t>();
        m.pending_raw_count = r.pod<std::uint64_t>();
        m.pending_join.buckets = r.pod<std::uint64_t>();
        m.pending_join.probes = r.pod<std::uint64_t>();
        m.pending_join.emitted = r.pod<std::uint64_t>();
        m.pending_join.repeats_fused = r.pod<std::uint64_t>();
        m.pending_join_kernel = r.pod<std::uint8_t>();
        m.counts = r.vec<Count>();
        m.flags = r.vec<std::uint8_t>();
        require_input(m.counts.size() == m.cdus.size() &&
                          m.flags.size() == m.cdus.size(),
                      "checkpoint: memo counts/flags size mismatch");
        state.memo.push_back(std::move(m));
      }
      const auto nseg = r.pod<std::uint64_t>();
      require_input(nseg <= 1u << 16,
                    "checkpoint: implausible provenance count");
      state.provenance.reserve(static_cast<std::size_t>(nseg));
      for (std::uint64_t i = 0; i < nseg; ++i) {
        DataSegment seg;
        seg.path = r.str();
        seg.records = r.pod<std::uint64_t>();
        state.provenance.push_back(std::move(seg));
      }
    }
  } catch (const InputError&) {
    throw;
  } catch (const Error& e) {
    // Structural validation inside UnitStore/DimensionGrid throws plain
    // Error; in this context the cause is a corrupt file, so reclassify.
    throw InputError(std::string("checkpoint: invalid structure: ") +
                     e.what());
  }
  require_input(r.at == r.size,
                "checkpoint: trailing garbage after payload");
  return state;
}

std::string checkpoint_file_path(const std::string& directory,
                                 std::uint64_t level) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-level-%04llu.bin",
                static_cast<unsigned long long>(level));
  return (std::filesystem::path(directory) / name).string();
}

namespace {

/// Shared atomic write: serialize, write to `path` + ".tmp", rename.
void write_checkpoint_bytes(const std::string& directory,
                            const CheckpointState& state,
                            const std::string& final_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  require(!ec, "checkpoint: cannot create directory " + directory);

  const std::vector<std::uint8_t> bytes = serialize_checkpoint(state);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    require(out.good(), "checkpoint: cannot open " + tmp_path);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    require(out.good(), "checkpoint: write failed for " + tmp_path);
  }
  // Atomic publish: a crash before this rename leaves only the .tmp file,
  // which the resume scan ignores; a crash after it leaves a complete,
  // CRC-valid checkpoint.
  fs::rename(tmp_path, final_path, ec);
  require(!ec, "checkpoint: cannot rename " + tmp_path + " to " + final_path);
}

}  // namespace

void write_checkpoint_file(const std::string& directory,
                           const CheckpointState& state) {
  write_checkpoint_bytes(directory, state,
                         checkpoint_file_path(directory, state.level));
}

std::string final_checkpoint_path(const std::string& directory) {
  return (std::filesystem::path(directory) / "ckpt-final.bin").string();
}

void write_final_checkpoint(const std::string& directory,
                            const CheckpointState& state) {
  require(state.complete != 0,
          "checkpoint: final checkpoint must have complete set");
  write_checkpoint_bytes(directory, state, final_checkpoint_path(directory));
}

CheckpointScan load_final_checkpoint(const std::string& directory,
                                     std::uint64_t fingerprint) {
  CheckpointScan scan;
  const std::string path = final_checkpoint_path(directory);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return scan;  // no final checkpoint: not an error
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  try {
    CheckpointState state = deserialize_checkpoint(bytes.data(), bytes.size());
    require_input(state.complete != 0,
                  "checkpoint: final file is not marked complete");
    require_input(fingerprint == 0 || state.fingerprint == fingerprint,
                  "checkpoint: options/data fingerprint mismatch");
    scan.state = std::move(state);
  } catch (const InputError&) {
    ++scan.discarded;
  }
  return scan;
}

CheckpointScan load_latest_checkpoint(const std::string& directory,
                                      std::uint64_t fingerprint) {
  namespace fs = std::filesystem;
  CheckpointScan scan;
  std::error_code ec;
  if (!fs::is_directory(directory, ec) || ec) return scan;

  // Collect levels with a checkpoint file present, highest first.
  std::vector<std::uint64_t> levels;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    unsigned long long level = 0;
    if (std::sscanf(name.c_str(), "ckpt-level-%4llu.bin", &level) == 1 &&
        name == fs::path(checkpoint_file_path(directory, level))
                    .filename()
                    .string()) {
      levels.push_back(level);
    }
  }
  std::sort(levels.rbegin(), levels.rend());

  for (const std::uint64_t level : levels) {
    const std::string path = checkpoint_file_path(directory, level);
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      ++scan.discarded;
      continue;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    try {
      CheckpointState state = deserialize_checkpoint(bytes.data(), bytes.size());
      require_input(state.fingerprint == fingerprint,
                    "checkpoint: options/data fingerprint mismatch");
      scan.state = std::move(state);
      return scan;
    } catch (const InputError&) {
      // Corrupt, short, or mismatched: fall back to the previous level.
      ++scan.discarded;
    }
  }
  return scan;
}

}  // namespace mafia
