// Model persistence: save the discovered clusters together with the grid
// geometry that makes their bin indices meaningful, and load them back for
// later record assignment (cluster/membership.hpp) — so a data set can be
// clustered once and applied many times (the CLI's `cluster --save` /
// `assign --model` flow).
//
// The format is a line-oriented text file; floating-point values are
// written as hexfloats so save->load round-trips bit-exactly.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster_model.hpp"
#include "grid/grid_types.hpp"

namespace mafia {

struct Model {
  GridSet grids;
  std::vector<Cluster> clusters;
};

/// Writes grids + clusters to `path`.  Throws mafia::Error on I/O failure.
void save_model(const std::string& path, const GridSet& grids,
                const std::vector<Cluster>& clusters);

/// Reads a model back.  Throws mafia::Error on malformed input.
[[nodiscard]] Model load_model(const std::string& path);

}  // namespace mafia
