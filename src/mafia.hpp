// Umbrella header: everything a typical application needs.
//
//   #include "mafia.hpp"
//
// pulls in the pMAFIA driver, data generation, I/O, membership assignment,
// reporting, and model persistence.  The baseline algorithms (clique/,
// proclus/, enclus/, kmeans/, dbscan/, baselines/) are deliberately NOT
// included — include them explicitly where a comparison is wanted.
#pragma once

#include "cluster/membership.hpp"
#include "cluster/quality.hpp"
#include "core/mafia.hpp"
#include "core/model_io.hpp"
#include "core/report.hpp"
#include "datagen/generator.hpp"
#include "datagen/workloads.hpp"
#include "io/csv.hpp"
#include "io/data_source.hpp"
#include "io/record_file.hpp"
#include "io/staging.hpp"
