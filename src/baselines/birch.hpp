// BIRCH (Zhang, Ramakrishnan, Livny — SIGMOD 1996): the paper's reference
// [19], surveyed in Section 2 among the full-space methods that "operate
// and find clusters in the whole data space".
//
// BIRCH compresses the data into a height-balanced CF-tree of clustering
// features CF = (n, LS, SS) — count, linear sum, sum of squares — inserting
// each record into its closest leaf entry when absorption keeps the entry's
// radius under a threshold T, splitting nodes B-way otherwise; a global
// clustering pass then groups the leaf-entry centroids (here: centroid-
// linkage agglomerative merging down to k clusters, the common choice).
//
// Like the other full-space baselines it needs user inputs (T, k) and is
// blind to subspace structure; it earns its place in the zoo by showing the
// contrast holds for summary-tree methods too, and the CF-tree itself is a
// reusable streaming-summarization substrate.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"

namespace mafia {

struct BirchOptions {
  /// T: absorption threshold — max RADIUS of a leaf entry.
  double threshold = 5.0;
  /// B: max children of an internal node.
  std::size_t branching = 8;
  /// L: max entries in a leaf.
  std::size_t leaf_capacity = 8;
  /// k for the global clustering phase over leaf entries.
  std::size_t num_clusters = 2;

  void validate() const {
    require(threshold > 0.0, "BirchOptions: threshold must be positive");
    require(branching >= 2, "BirchOptions: branching must be >= 2");
    require(leaf_capacity >= 2, "BirchOptions: leaf_capacity must be >= 2");
    require(num_clusters >= 1, "BirchOptions: need at least one cluster");
  }
};

struct BirchResult {
  /// Final cluster centroids, row-major (num_clusters x d); clusters that
  /// received no leaf entries are dropped, so rows <= num_clusters.
  std::vector<double> centroids;
  std::size_t num_dims = 0;
  /// Records summarized into each final cluster.
  std::vector<Count> sizes;
  /// CF-tree statistics.
  std::size_t leaf_entries = 0;
  std::size_t tree_height = 0;

  [[nodiscard]] std::size_t num_clusters() const {
    return num_dims == 0 ? 0 : centroids.size() / num_dims;
  }
  [[nodiscard]] const double* centroid(std::size_t c) const {
    return centroids.data() + c * num_dims;
  }
};

/// Builds the CF-tree over `data` and globally clusters its leaf entries.
[[nodiscard]] BirchResult run_birch(const Dataset& data,
                                    const BirchOptions& options);

/// Nearest-centroid assignment under the fitted model (-1 never occurs;
/// BIRCH has no noise concept — another contrast with density methods).
[[nodiscard]] std::vector<std::int32_t> birch_assign(const Dataset& data,
                                                     const BirchResult& model);

}  // namespace mafia
