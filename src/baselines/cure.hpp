// CURE (Guha, Rastogi, Shim — SIGMOD 1998): the paper's reference [9],
// another Section 2 full-space method.
//
// CURE is hierarchical agglomerative clustering where each cluster is
// summarized by `c` well-scattered representative points shrunk toward the
// centroid by a factor alpha; inter-cluster distance is the minimum over
// representative pairs, which lets CURE find non-spherical full-space
// shapes.  It runs on a random sample for scalability; remaining points are
// assigned to the cluster with the nearest representative.
//
// Needs k (and alpha and c); full-space distances — the same two
// criticisms the paper levels at this family.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"

namespace mafia {

struct CureOptions {
  std::size_t num_clusters = 2;      ///< k, user supplied
  std::size_t representatives = 6;   ///< c points per cluster
  double shrink = 0.3;               ///< alpha, toward the centroid
  std::size_t sample_size = 2000;    ///< hierarchical phase sample cap
  std::uint64_t seed = 1;

  void validate() const {
    require(num_clusters >= 1, "CureOptions: need at least one cluster");
    require(representatives >= 1, "CureOptions: need representatives");
    require(shrink >= 0.0 && shrink < 1.0, "CureOptions: shrink in [0,1)");
    require(sample_size >= num_clusters, "CureOptions: sample too small");
  }
};

struct CureCluster {
  /// Shrunk representative points, row-major (reps x d).
  std::vector<double> representatives;
  std::vector<double> centroid;
  Count size = 0;  ///< records assigned in the final labeling pass
};

struct CureResult {
  std::vector<CureCluster> clusters;
  std::size_t num_dims = 0;
  /// Per-record cluster index (never -1; CURE has no noise concept).
  std::vector<std::int32_t> labels;
};

[[nodiscard]] CureResult run_cure(const Dataset& data, const CureOptions& options);

}  // namespace mafia
