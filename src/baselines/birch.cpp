#include "baselines/birch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace mafia {

namespace {

/// Clustering feature: (n, LS, SS).  Supports the BIRCH identities:
/// centroid = LS/n, radius^2 = SS/n - ||LS/n||^2, and additivity.
struct CF {
  Count n = 0;
  std::vector<double> ls;
  double ss = 0.0;

  explicit CF(std::size_t d) : ls(d, 0.0) {}

  void add_point(const Value* row, std::size_t d) {
    ++n;
    for (std::size_t j = 0; j < d; ++j) {
      ls[j] += row[j];
      ss += static_cast<double>(row[j]) * row[j];
    }
  }

  void merge(const CF& other) {
    n += other.n;
    for (std::size_t j = 0; j < ls.size(); ++j) ls[j] += other.ls[j];
    ss += other.ss;
  }

  [[nodiscard]] double centroid(std::size_t j) const {
    return n == 0 ? 0.0 : ls[j] / static_cast<double>(n);
  }

  [[nodiscard]] double radius() const {
    if (n == 0) return 0.0;
    double c2 = 0.0;
    for (std::size_t j = 0; j < ls.size(); ++j) {
      const double c = centroid(j);
      c2 += c * c;
    }
    const double r2 = ss / static_cast<double>(n) - c2;
    return r2 > 0 ? std::sqrt(r2) : 0.0;
  }

  /// Radius if `row` were absorbed (for the threshold test).
  [[nodiscard]] double radius_with(const Value* row, std::size_t d) const {
    CF probe = *this;
    probe.add_point(row, d);
    return probe.radius();
  }

  [[nodiscard]] double centroid_distance2(const CF& other) const {
    double sum = 0.0;
    for (std::size_t j = 0; j < ls.size(); ++j) {
      const double diff = centroid(j) - other.centroid(j);
      sum += diff * diff;
    }
    return sum;
  }

  [[nodiscard]] double centroid_distance2(const Value* row) const {
    double sum = 0.0;
    for (std::size_t j = 0; j < ls.size(); ++j) {
      const double diff = centroid(j) - row[j];
      sum += diff * diff;
    }
    return sum;
  }
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// CF-tree node: leaves hold CF entries; internal nodes hold children with
/// summary CFs (entry i summarizes child i).
struct Node {
  bool leaf = true;
  std::vector<CF> entries;
  std::vector<NodePtr> children;  // internal only, aligned with entries
};

class CfTree {
 public:
  CfTree(std::size_t d, const BirchOptions& o)
      : d_(d), options_(o), root_(std::make_unique<Node>()) {}

  void insert(const Value* row) {
    NodePtr sibling = insert_into(*root_, row);
    if (sibling) {
      // Root split: grow a new root over the two halves.
      auto new_root = std::make_unique<Node>();
      new_root->leaf = false;
      new_root->entries.push_back(summarize(*root_));
      new_root->entries.push_back(summarize(*sibling));
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
    }
  }

  /// All leaf-entry CFs, left to right.
  [[nodiscard]] std::vector<CF> leaf_entries() const {
    std::vector<CF> out;
    collect(*root_, out);
    return out;
  }

  [[nodiscard]] std::size_t height() const {
    std::size_t h = 1;
    const Node* at = root_.get();
    while (!at->leaf) {
      ++h;
      at = at->children.front().get();
    }
    return h;
  }

 private:
  static CF summarize(const Node& node) {
    CF sum(node.entries.empty() ? 0 : node.entries.front().ls.size());
    for (const CF& e : node.entries) {
      if (sum.ls.empty()) sum.ls.assign(e.ls.size(), 0.0);
      sum.merge(e);
    }
    return sum;
  }

  /// Inserts into the subtree; returns a new sibling node when this node
  /// split (caller must register it), nullptr otherwise.
  NodePtr insert_into(Node& node, const Value* row) {
    if (node.leaf) {
      // Closest entry, absorb if the threshold permits.
      std::size_t best = node.entries.size();
      double best_d = std::numeric_limits<double>::max();
      for (std::size_t i = 0; i < node.entries.size(); ++i) {
        const double dd = node.entries[i].centroid_distance2(row);
        if (dd < best_d) {
          best_d = dd;
          best = i;
        }
      }
      if (best < node.entries.size() &&
          node.entries[best].radius_with(row, d_) <= options_.threshold) {
        node.entries[best].add_point(row, d_);
        return nullptr;
      }
      CF fresh(d_);
      fresh.add_point(row, d_);
      node.entries.push_back(std::move(fresh));
      if (node.entries.size() <= options_.leaf_capacity) return nullptr;
      return split(node);
    }

    // Internal: descend into the closest child.
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const double dd = node.entries[i].centroid_distance2(row);
      if (dd < best_d) {
        best_d = dd;
        best = i;
      }
    }
    NodePtr sibling = insert_into(*node.children[best], row);
    node.entries[best] = summarize(*node.children[best]);
    if (sibling) {
      node.entries.push_back(summarize(*sibling));
      node.children.push_back(std::move(sibling));
      if (node.entries.size() > options_.branching) return split(node);
    }
    return nullptr;
  }

  /// Farthest-pair split: seeds are the two most-separated entries, the
  /// rest join the closer seed.  Returns the new right node; `node`
  /// becomes the left node.
  NodePtr split(Node& node) {
    const std::size_t m = node.entries.size();
    std::size_t seed_a = 0;
    std::size_t seed_b = 1;
    double far = -1.0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const double dd = node.entries[i].centroid_distance2(node.entries[j]);
        if (dd > far) {
          far = dd;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    // Decide every entry's side BEFORE moving anything (moved-from CFs
    // would corrupt the seed distances).
    std::vector<bool> go_left(m);
    for (std::size_t i = 0; i < m; ++i) {
      const double da = node.entries[i].centroid_distance2(node.entries[seed_a]);
      const double db = node.entries[i].centroid_distance2(node.entries[seed_b]);
      go_left[i] = (i == seed_a) || (i != seed_b && da <= db);
    }
    auto right = std::make_unique<Node>();
    right->leaf = node.leaf;
    Node left;
    left.leaf = node.leaf;
    for (std::size_t i = 0; i < m; ++i) {
      Node& target = go_left[i] ? left : *right;
      target.entries.push_back(std::move(node.entries[i]));
      if (!node.leaf) target.children.push_back(std::move(node.children[i]));
    }
    node = std::move(left);
    return right;
  }

  static void collect(const Node& node, std::vector<CF>& out) {
    if (node.leaf) {
      out.insert(out.end(), node.entries.begin(), node.entries.end());
      return;
    }
    for (const NodePtr& child : node.children) collect(*child, out);
  }

  const std::size_t d_;
  const BirchOptions& options_;
  NodePtr root_;
};

}  // namespace

BirchResult run_birch(const Dataset& data, const BirchOptions& options) {
  options.validate();
  require(data.num_records() > 0, "run_birch: empty data set");
  const std::size_t d = data.num_dims();

  // Phase 1: build the CF-tree.
  CfTree tree(d, options);
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    tree.insert(data.row(i).data());
  }
  std::vector<CF> entries = tree.leaf_entries();

  // Phase 3 (BIRCH numbering): global clustering of the leaf entries —
  // centroid-linkage agglomerative merging down to k groups, weighting
  // merges by the CF counts (merging CFs is exact thanks to additivity).
  // A nearest-neighbor cache keeps this ~O(E^2): a merge only invalidates
  // entries that pointed at the merged pair.
  std::vector<CF> groups = entries;
  std::vector<std::size_t> nn(groups.size());
  std::vector<double> nn_dist(groups.size());
  const auto recompute_nn = [&](std::size_t i) {
    nn_dist[i] = std::numeric_limits<double>::max();
    nn[i] = i;
    for (std::size_t j = 0; j < groups.size(); ++j) {
      if (j == i) continue;
      const double dd = groups[i].centroid_distance2(groups[j]);
      if (dd < nn_dist[i]) {
        nn_dist[i] = dd;
        nn[i] = j;
      }
    }
  };
  for (std::size_t i = 0; i < groups.size(); ++i) recompute_nn(i);

  while (groups.size() > options.num_clusters) {
    std::size_t merge_a = 0;
    for (std::size_t i = 1; i < groups.size(); ++i) {
      if (nn_dist[i] < nn_dist[merge_a]) merge_a = i;
    }
    std::size_t merge_b = nn[merge_a];
    if (merge_b < merge_a) std::swap(merge_a, merge_b);

    groups[merge_a].merge(groups[merge_b]);
    groups.erase(groups.begin() + static_cast<std::ptrdiff_t>(merge_b));
    nn.erase(nn.begin() + static_cast<std::ptrdiff_t>(merge_b));
    nn_dist.erase(nn_dist.begin() + static_cast<std::ptrdiff_t>(merge_b));
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (i == merge_a || nn[i] == merge_a || nn[i] == merge_b) {
        recompute_nn(i);
      } else {
        if (nn[i] > merge_b) --nn[i];
        const double dd = groups[i].centroid_distance2(groups[merge_a]);
        if (dd < nn_dist[i]) {
          nn_dist[i] = dd;
          nn[i] = merge_a;
        }
      }
    }
  }

  BirchResult result;
  result.num_dims = d;
  result.leaf_entries = entries.size();
  result.tree_height = tree.height();
  for (const CF& g : groups) {
    if (g.n == 0) continue;
    for (std::size_t j = 0; j < d; ++j) result.centroids.push_back(g.centroid(j));
    result.sizes.push_back(g.n);
  }
  return result;
}

std::vector<std::int32_t> birch_assign(const Dataset& data,
                                       const BirchResult& model) {
  require(model.num_dims == data.num_dims(), "birch_assign: dims mismatch");
  const std::size_t d = model.num_dims;
  const std::size_t k = model.num_clusters();
  std::vector<std::int32_t> labels(static_cast<std::size_t>(data.num_records()));
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const auto row = data.row(i);
    double best = std::numeric_limits<double>::max();
    std::int32_t arg = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double sum = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = static_cast<double>(row[j]) - model.centroid(c)[j];
        sum += diff * diff;
      }
      if (sum < best) {
        best = sum;
        arg = static_cast<std::int32_t>(c);
      }
    }
    labels[static_cast<std::size_t>(i)] = arg;
  }
  return labels;
}

}  // namespace mafia
