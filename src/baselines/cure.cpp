#include "baselines/cure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/icg.hpp"

namespace mafia {

namespace {

double distance2(const double* a, const double* b, std::size_t d) {
  double sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}

/// Working cluster during the hierarchical phase.
struct Working {
  std::vector<std::size_t> members;  ///< sample indices
  std::vector<double> centroid;
  std::vector<double> reps;  ///< shrunk representatives, row-major
};

}  // namespace

CureResult run_cure(const Dataset& data, const CureOptions& options) {
  options.validate();
  require(data.num_records() >= options.num_clusters, "run_cure: too few records");
  const std::size_t d = data.num_dims();

  // ---- Sample for the hierarchical phase.
  IcgRandom rng(options.seed);
  std::vector<RecordIndex> sample(static_cast<std::size_t>(data.num_records()));
  std::iota(sample.begin(), sample.end(), RecordIndex{0});
  if (sample.size() > options.sample_size) {
    shuffle(rng, sample.begin(), sample.end());
    sample.resize(options.sample_size);
  }
  const std::size_t n = sample.size();
  std::vector<double> points(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = data.row(sample[i]);
    for (std::size_t j = 0; j < d; ++j) points[i * d + j] = row[j];
  }

  // ---- Initialize singleton clusters.
  std::vector<Working> clusters(n);
  for (std::size_t i = 0; i < n; ++i) {
    clusters[i].members = {i};
    clusters[i].centroid.assign(points.begin() + static_cast<std::ptrdiff_t>(i * d),
                                points.begin() + static_cast<std::ptrdiff_t>((i + 1) * d));
    clusters[i].reps = clusters[i].centroid;
  }

  const auto rebuild = [&](Working& c) {
    // Centroid.
    c.centroid.assign(d, 0.0);
    for (const std::size_t m : c.members) {
      for (std::size_t j = 0; j < d; ++j) c.centroid[j] += points[m * d + j];
    }
    for (double& v : c.centroid) v /= static_cast<double>(c.members.size());
    // Well-scattered representatives: farthest-first from the centroid.
    const std::size_t reps =
        std::min<std::size_t>(options.representatives, c.members.size());
    std::vector<std::size_t> chosen;
    std::vector<double> dist(c.members.size(),
                             std::numeric_limits<double>::max());
    for (std::size_t r = 0; r < reps; ++r) {
      std::size_t pick = 0;
      double best = -1.0;
      for (std::size_t i = 0; i < c.members.size(); ++i) {
        const double reference =
            chosen.empty()
                ? distance2(points.data() + c.members[i] * d, c.centroid.data(), d)
                : dist[i];
        if (reference > best) {
          best = reference;
          pick = i;
        }
      }
      chosen.push_back(c.members[pick]);
      dist[pick] = -1.0;
      for (std::size_t i = 0; i < c.members.size(); ++i) {
        dist[i] = std::min(dist[i],
                           distance2(points.data() + c.members[i] * d,
                                     points.data() + c.members[pick] * d, d));
      }
    }
    // Shrink toward the centroid.
    c.reps.assign(reps * d, 0.0);
    for (std::size_t r = 0; r < reps; ++r) {
      for (std::size_t j = 0; j < d; ++j) {
        const double p = points[chosen[r] * d + j];
        c.reps[r * d + j] = p + options.shrink * (c.centroid[j] - p);
      }
    }
  };

  // ---- Agglomerate: merge the pair with the smallest min-rep distance.
  const auto cluster_distance2 = [&](const Working& a, const Working& b) {
    double best = std::numeric_limits<double>::max();
    const std::size_t ra = a.reps.size() / d;
    const std::size_t rb = b.reps.size() / d;
    for (std::size_t i = 0; i < ra; ++i) {
      for (std::size_t j = 0; j < rb; ++j) {
        best = std::min(best, distance2(a.reps.data() + i * d,
                                        b.reps.data() + j * d, d));
      }
    }
    return best;
  };

  // Nearest-neighbor cache: nn[i] is i's closest other cluster.  A merge
  // only invalidates entries that pointed at the merged pair (plus the
  // merged cluster itself), so the loop is ~O(n^2) instead of O(n^3).
  std::vector<std::size_t> nn(clusters.size());
  std::vector<double> nn_dist(clusters.size());
  const auto recompute_nn = [&](std::size_t i) {
    nn_dist[i] = std::numeric_limits<double>::max();
    nn[i] = i;
    for (std::size_t j = 0; j < clusters.size(); ++j) {
      if (j == i) continue;
      const double dd = cluster_distance2(clusters[i], clusters[j]);
      if (dd < nn_dist[i]) {
        nn_dist[i] = dd;
        nn[i] = j;
      }
    }
  };
  for (std::size_t i = 0; i < clusters.size(); ++i) recompute_nn(i);

  while (clusters.size() > options.num_clusters) {
    std::size_t merge_a = 0;
    for (std::size_t i = 1; i < clusters.size(); ++i) {
      if (nn_dist[i] < nn_dist[merge_a]) merge_a = i;
    }
    std::size_t merge_b = nn[merge_a];
    if (merge_b < merge_a) std::swap(merge_a, merge_b);

    clusters[merge_a].members.insert(clusters[merge_a].members.end(),
                                     clusters[merge_b].members.begin(),
                                     clusters[merge_b].members.end());
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(merge_b));
    nn.erase(nn.begin() + static_cast<std::ptrdiff_t>(merge_b));
    nn_dist.erase(nn_dist.begin() + static_cast<std::ptrdiff_t>(merge_b));
    rebuild(clusters[merge_a]);

    // Reindex cached neighbors past the erased slot; flag stale entries.
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (i == merge_a || nn[i] == merge_a || nn[i] == merge_b) {
        recompute_nn(i);  // handles reindexing implicitly
      } else {
        if (nn[i] > merge_b) --nn[i];
        // Check whether the grown cluster became i's new nearest.
        const double dd = cluster_distance2(clusters[i], clusters[merge_a]);
        if (dd < nn_dist[i]) {
          nn_dist[i] = dd;
          nn[i] = merge_a;
        }
      }
    }
  }

  // ---- Label every record by the nearest representative.
  CureResult result;
  result.num_dims = d;
  result.clusters.resize(clusters.size());
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    result.clusters[c].representatives = clusters[c].reps;
    result.clusters[c].centroid = clusters[c].centroid;
  }
  result.labels.resize(static_cast<std::size_t>(data.num_records()));
  std::vector<double> row(d);
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const auto r = data.row(i);
    for (std::size_t j = 0; j < d; ++j) row[j] = r[j];
    double best = std::numeric_limits<double>::max();
    std::int32_t arg = 0;
    for (std::size_t c = 0; c < result.clusters.size(); ++c) {
      const auto& reps = result.clusters[c].representatives;
      for (std::size_t rr = 0; rr < reps.size() / d; ++rr) {
        const double dd = distance2(row.data(), reps.data() + rr * d, d);
        if (dd < best) {
          best = dd;
          arg = static_cast<std::int32_t>(c);
        }
      }
    }
    result.labels[static_cast<std::size_t>(i)] = arg;
    ++result.clusters[static_cast<std::size_t>(arg)].size;
  }
  return result;
}

}  // namespace mafia
