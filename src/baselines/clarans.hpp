// CLARANS (Ng & Han — VLDB 1994): the paper's references [13]/[14],
// "efficient and effective clustering methods for spatial data mining" —
// randomized k-medoid search, surveyed in Section 2.
//
// CLARANS views the k-medoid problem as a graph whose nodes are medoid
// sets and whose edges swap one medoid for one non-medoid; it hill-climbs
// by sampling up to `max_neighbors` random swaps per node and restarts
// `num_local` times, keeping the best local minimum of the total
// point-to-medoid distance.
//
// Needs k, full-space metric — same contrasts as the rest of the zoo.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"

namespace mafia {

struct ClaransOptions {
  std::size_t num_clusters = 2;   ///< k, user supplied
  std::size_t num_local = 3;      ///< restarts
  std::size_t max_neighbors = 40; ///< random swaps examined per step
  std::uint64_t seed = 1;

  void validate() const {
    require(num_clusters >= 1, "ClaransOptions: need at least one cluster");
    require(num_local >= 1, "ClaransOptions: need at least one restart");
    require(max_neighbors >= 1, "ClaransOptions: need at least one neighbor");
  }
};

struct ClaransResult {
  std::vector<RecordIndex> medoids;  ///< k record indices
  std::vector<std::int32_t> labels;  ///< per-record medoid index
  double cost = 0.0;                 ///< total distance to assigned medoids
  std::size_t swaps_examined = 0;
};

[[nodiscard]] ClaransResult run_clarans(const Dataset& data,
                                        const ClaransOptions& options);

}  // namespace mafia
