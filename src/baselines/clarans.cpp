#include "baselines/clarans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "rng/distributions.hpp"
#include "rng/icg.hpp"

namespace mafia {

namespace {

double distance(const Dataset& data, RecordIndex a, RecordIndex b) {
  const auto ra = data.row(a);
  const auto rb = data.row(b);
  double sum = 0.0;
  for (std::size_t j = 0; j < ra.size(); ++j) {
    const double diff = static_cast<double>(ra[j]) - rb[j];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

/// Total cost and labels for a medoid set.
double evaluate(const Dataset& data, const std::vector<RecordIndex>& medoids,
                std::vector<std::int32_t>* labels) {
  double cost = 0.0;
  if (labels) labels->resize(static_cast<std::size_t>(data.num_records()));
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    double best = std::numeric_limits<double>::max();
    std::int32_t arg = 0;
    for (std::size_t m = 0; m < medoids.size(); ++m) {
      const double d = distance(data, i, medoids[m]);
      if (d < best) {
        best = d;
        arg = static_cast<std::int32_t>(m);
      }
    }
    cost += best;
    if (labels) (*labels)[static_cast<std::size_t>(i)] = arg;
  }
  return cost;
}

}  // namespace

ClaransResult run_clarans(const Dataset& data, const ClaransOptions& options) {
  options.validate();
  require(data.num_records() >= options.num_clusters,
          "run_clarans: fewer records than clusters");
  IcgRandom rng(options.seed);
  const RecordIndex n = data.num_records();
  const std::size_t k = options.num_clusters;

  ClaransResult best_result;
  best_result.cost = std::numeric_limits<double>::max();

  for (std::size_t restart = 0; restart < options.num_local; ++restart) {
    // Random initial node (distinct medoids).
    std::vector<RecordIndex> medoids;
    while (medoids.size() < k) {
      const RecordIndex pick = uniform_index(rng, n);
      if (std::find(medoids.begin(), medoids.end(), pick) == medoids.end()) {
        medoids.push_back(pick);
      }
    }
    double cost = evaluate(data, medoids, nullptr);

    // Hill-climb: try random swaps until max_neighbors in a row fail.
    std::size_t failed = 0;
    while (failed < options.max_neighbors) {
      ++best_result.swaps_examined;
      const std::size_t slot = uniform_index(rng, k);
      const RecordIndex replacement = uniform_index(rng, n);
      if (std::find(medoids.begin(), medoids.end(), replacement) !=
          medoids.end()) {
        ++failed;
        continue;
      }
      const RecordIndex old = medoids[slot];
      medoids[slot] = replacement;
      const double new_cost = evaluate(data, medoids, nullptr);
      if (new_cost < cost) {
        cost = new_cost;
        failed = 0;  // moved to the better node; reset the neighbor counter
      } else {
        medoids[slot] = old;
        ++failed;
      }
    }

    if (cost < best_result.cost) {
      best_result.cost = cost;
      best_result.medoids = medoids;
    }
  }

  best_result.cost = evaluate(data, best_result.medoids, &best_result.labels);
  return best_result;
}

}  // namespace mafia
