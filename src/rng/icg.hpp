// Inversive Congruential Generator (ICG) with power-of-two modulus.
//
// The paper's data generator (Section 5.1) uses "a better random number
// generator called the Inversive Congruential Generator [6] as long
// sequences of Unix random number generators (LCGs) exhibit regular
// behavior by falling into specific planes".  Reference [6] is
// J. Eichenauer-Herrmann & H. Grothe, "A new inversive congruential
// pseudorandom number generator with power of two modulus", ACM TOMACS 2(1),
// 1992.
//
// The recurrence over the odd residues modulo m = 2^e is
//
//     x_{n+1} = a * inv(x_n) + b   (mod 2^e)
//
// where inv(x) is the multiplicative inverse of the odd integer x modulo
// 2^e.  With a ≡ 1 (mod 4) and b ≡ 2 (mod 4) the generator achieves the
// maximal period m/2 over the odd residues (Eichenauer-Herrmann & Grothe,
// Theorem 1).  Unlike LCGs, successive k-tuples of inversive generators do
// not concentrate on a small family of hyperplanes — exactly the defect the
// paper works around (see LcgRandom and tests/rng_test.cpp's plane
// diagnostic).
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace mafia {

/// Multiplicative inverse of the odd integer `x` modulo 2^64, computed with
/// Newton–Hensel iteration: each step doubles the number of correct low
/// bits, so five steps from a 5-bit seed inverse reach 64 bits.
[[nodiscard]] constexpr std::uint64_t inverse_pow2(std::uint64_t x) {
  // x * 3 XOR 2 gives the inverse modulo 2^5 for odd x (folklore seed).
  std::uint64_t inv = (x * 3) ^ 2;  // 5 bits
  inv *= 2 - x * inv;               // 10 bits
  inv *= 2 - x * inv;               // 20 bits
  inv *= 2 - x * inv;               // 40 bits
  inv *= 2 - x * inv;               // 80 -> 64 bits
  return inv;
}

/// Inversive congruential pseudorandom number generator modulo 2^64.
///
/// Satisfies the C++ UniformRandomBitGenerator requirements, so it can be
/// plugged into <random> distributions, although the library's own
/// distribution helpers (rng/distributions.hpp) are preferred for
/// reproducibility across standard libraries.
class IcgRandom {
 public:
  using result_type = std::uint64_t;

  /// Constructs the generator from a seed; any seed value is accepted and
  /// mapped onto the odd-residue orbit.
  explicit IcgRandom(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-seeds the generator.  The state must be odd; the parameters below
  /// (a ≡ 1 mod 4, b ≡ 2 mod 4) give the maximal period 2^63.
  void reseed(std::uint64_t seed) {
    state_ = (seed << 1) | 1ull;  // force odd
    // Decorrelate trivially related seeds (0,1,2,...) by burning a few steps.
    for (int i = 0; i < 4; ++i) (void)next();
  }

  /// Next 64-bit output: x <- a * inv(x) + b (mod 2^64).
  std::uint64_t next() {
    state_ = kA * inverse_pow2(state_) + kB;
    state_ |= 1ull;  // keep the orbit on odd residues despite b even: a*inv is
                     // odd, +b (even) keeps it odd; the OR is a no-op guard.
    return state_ * 0x2545f4914f6cdd1dull;  // output scrambling (splitmix-style)
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

  /// Current internal state (odd residue) — exposed for tests.
  [[nodiscard]] std::uint64_t state() const { return state_; }

 private:
  // a = 1 (mod 4), b = 2 (mod 4): maximal period (Theorem 1 of [6]).
  static constexpr std::uint64_t kA = 0x5deece66d00000001ull;  // == 1 mod 4
  static constexpr std::uint64_t kB = 0x000000000000000eull;   // == 2 mod 4
  std::uint64_t state_;
};

}  // namespace mafia
