// Lattice-plane diagnostic for pseudorandom generators.
//
// The paper rejects Unix LCGs because "long sequences ... exhibit regular
// behavior by falling into specific planes".  This header provides a cheap
// quantitative version of that observation: project successive k-tuples of
// the generator's output onto a direction derived from the LCG multiplier
// and measure how many distinct quantized plane offsets the tuples occupy.
// A lattice-structured generator occupies very few offsets; a well-behaved
// one fills the range.  Used by tests/rng_test.cpp and the datagen docs.
#pragma once

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace mafia {

/// Counts distinct quantized offsets of successive `dim`-tuples along the
/// direction `direction` (unit-less integer combination), using `samples`
/// tuples from `rng` mapped to [0,1).  Fewer distinct offsets => stronger
/// plane structure.
template <typename Engine>
[[nodiscard]] std::size_t count_plane_offsets(Engine& rng, std::size_t samples,
                                              const std::vector<double>& direction,
                                              double quantum) {
  const std::size_t dim = direction.size();
  std::vector<double> tuple(dim);
  std::set<long long> offsets;
  for (std::size_t s = 0; s < samples; ++s) {
    for (std::size_t j = 0; j < dim; ++j) {
      tuple[j] = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    }
    double dot = 0.0;
    for (std::size_t j = 0; j < dim; ++j) dot += direction[j] * tuple[j];
    offsets.insert(static_cast<long long>(std::floor(dot / quantum)));
  }
  return offsets.size();
}

}  // namespace mafia
