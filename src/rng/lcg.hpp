// Classic linear congruential generator.
//
// Included as the contrast case the paper motivates: "long sequences of
// Unix random number generators (LCGs) exhibit regular behavior by falling
// into specific planes" (Section 5.1).  tests/rng_test.cpp demonstrates the
// plane structure on this generator and its absence on IcgRandom, and the
// data generator accepts either engine so the effect on clustering can be
// reproduced.
#pragma once

#include <cstdint>

namespace mafia {

/// drand48-style 48-bit LCG (the classic Unix generator the paper calls out).
class LcgRandom {
 public:
  using result_type = std::uint64_t;

  explicit LcgRandom(std::uint64_t seed = 0x330e) { reseed(seed); }

  void reseed(std::uint64_t seed) { state_ = seed & kMask; }

  /// Next raw 48-bit state, widened to 64 bits *without* scrambling — the
  /// whole point of this class is to expose the lattice structure.
  std::uint64_t next() {
    state_ = (kA * state_ + kC) & kMask;
    return state_ << 16;  // align the 48 significant bits to the top
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

 private:
  static constexpr std::uint64_t kA = 0x5deece66dull;
  static constexpr std::uint64_t kC = 0xb;
  static constexpr std::uint64_t kMask = (1ull << 48) - 1;
  std::uint64_t state_;
};

/// The classic IBM RANDU generator (m = 2^31, a = 65539, c = 0): the
/// canonical "falls into planes" failure.  Successive triples satisfy
/// 9x_n − 6x_{n+1} + x_{n+2} ≡ 0 (mod 2^31), so in [0,1) space every
/// triple's dot product with (9, −6, 1) is one of at most 16 integers —
/// 15 planes.  Used by the plane-diagnostic test to demonstrate the defect
/// the paper's choice of the ICG avoids.
class RanduRandom {
 public:
  using result_type = std::uint64_t;

  explicit RanduRandom(std::uint64_t seed = 1) { reseed(seed); }

  void reseed(std::uint64_t seed) { state_ = (seed | 1ull) & 0x7fffffffull; }

  /// Next value, widened so the 31 significant bits sit at the top (the
  /// (x >> 11) * 2^-53 mapping then reproduces x / 2^31 exactly).
  std::uint64_t next() {
    state_ = (65539ull * state_) & 0x7fffffffull;
    return state_ << 33;
  }

  std::uint64_t operator()() { return next(); }

  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ull; }

 private:
  std::uint64_t state_;
};

}  // namespace mafia
