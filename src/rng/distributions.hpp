// Distribution helpers over the library's random engines.
//
// Implemented by hand (not via <random> distributions) so that generated
// data sets are bit-identical across standard library implementations —
// important because EXPERIMENTS.md records exact cluster counts.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

/// Uniform double in [0, 1) from one 64-bit draw (53-bit mantissa path).
template <typename Engine>
[[nodiscard]] double uniform01(Engine& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Uniform double in [lo, hi).
template <typename Engine>
[[nodiscard]] double uniform_real(Engine& rng, double lo, double hi) {
  return lo + (hi - lo) * uniform01(rng);
}

/// Uniform integer in [0, n) using Lemire's multiply-shift rejection method
/// (unbiased, at most a handful of retries).
template <typename Engine>
[[nodiscard]] std::uint64_t uniform_index(Engine& rng, std::uint64_t n) {
  require(n > 0, "uniform_index: n must be positive");
  // 64x64 -> 128 multiply; keep retrying while in the biased low zone.
  while (true) {
    const std::uint64_t x = rng();
    const __uint128_t m = static_cast<__uint128_t>(x) * n;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= n) return static_cast<std::uint64_t>(m >> 64);
    const std::uint64_t threshold = (0ull - n) % n;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

/// Fisher-Yates shuffle driven by the given engine.
template <typename Engine, typename RandomIt>
void shuffle(Engine& rng, RandomIt first, RandomIt last) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = uniform_index(rng, i);
    using std::swap;
    swap(first[i - 1], first[j]);
  }
}

}  // namespace mafia
