// PROCLUS (Aggarwal, Procopiuc, Wolf, Yu, Park — SIGMOD 1999): the
// projected-clustering baseline the paper contrasts with in Sections 2 and
// 5.9(2).
//
// PROCLUS is a k-medoid method: it picks k medoids, learns for each medoid
// a set of dimensions in which its neighbourhood is unusually tight, and
// assigns every record to the nearest medoid under the *segmental* Manhattan
// distance restricted to that medoid's dimensions.  Crucially it REQUIRES
// the user to supply k (cluster count) and l (average cluster
// dimensionality) — the paper's core criticism: "both of which are not
// possible to be known apriori for real data sets", and on the Ionosphere
// data a poor l made PROCLUS report implausible 31-d and 33-d clusters
// while un-supervised pMAFIA found compact 3-d/4-d structure.  The
// bench_proclus_comparison binary reproduces that contrast.
//
// Implementation follows the published algorithm:
//   * greedy piercing-set candidate selection (A·k candidates, farthest-
//     first),
//   * iterative phase: sample B·k medoids from the candidates, compute
//     each medoid's locality (points within its nearest-other-medoid
//     radius), per-dimension average locality distances, z-score dimension
//     selection (k·l dimensions total, >= 2 per medoid), segmental
//     assignment, objective = mean intra-cluster segmental distance,
//     hill-climb by replacing the worst medoid with a random candidate,
//   * refinement: recompute dimensions from the final clusters, reassign,
//     and mark outliers (points farther from every medoid than that
//     medoid's sphere of influence).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"

namespace mafia {

struct ProclusOptions {
  /// k: number of clusters (user input — the point of the comparison).
  std::size_t num_clusters = 2;
  /// l: average cluster dimensionality (user input, >= 2).
  std::size_t avg_dims = 3;
  /// Candidate-set oversampling factor (the paper's A).
  std::size_t candidate_factor = 8;
  /// Medoid-sample oversampling factor (the paper's B <= A).
  std::size_t sample_factor = 4;
  /// Hill-climbing iterations without improvement before stopping.
  std::size_t max_stale_iterations = 10;
  std::uint64_t seed = 1;

  void validate() const {
    require(num_clusters >= 1, "ProclusOptions: need at least one cluster");
    require(avg_dims >= 2, "ProclusOptions: l must be >= 2");
    require(candidate_factor >= sample_factor && sample_factor >= 1,
            "ProclusOptions: need candidate_factor >= sample_factor >= 1");
  }
};

struct ProclusCluster {
  RecordIndex medoid = 0;            ///< record index of the medoid
  std::vector<DimId> dims;           ///< the learned projected dimensions
  std::vector<RecordIndex> members;  ///< assigned records
};

struct ProclusResult {
  std::vector<ProclusCluster> clusters;
  std::vector<RecordIndex> outliers;
  double objective = 0.0;  ///< mean intra-cluster segmental distance
  std::size_t iterations = 0;

  /// Mean learned dimensionality — what a user compares against their l.
  [[nodiscard]] double mean_dimensionality() const {
    if (clusters.empty()) return 0.0;
    double total = 0.0;
    for (const auto& c : clusters) total += static_cast<double>(c.dims.size());
    return total / static_cast<double>(clusters.size());
  }
};

/// Runs PROCLUS on an in-memory data set.
[[nodiscard]] ProclusResult run_proclus(const Dataset& data,
                                        const ProclusOptions& options);

}  // namespace mafia
