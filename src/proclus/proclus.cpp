#include "proclus/proclus.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "rng/distributions.hpp"
#include "rng/icg.hpp"

namespace mafia {

namespace {

/// Full-dimensional Manhattan distance between two records.
double manhattan(const Dataset& data, RecordIndex a, RecordIndex b) {
  const auto ra = data.row(a);
  const auto rb = data.row(b);
  double d = 0.0;
  for (std::size_t j = 0; j < ra.size(); ++j) {
    d += std::fabs(static_cast<double>(ra[j]) - rb[j]);
  }
  return d;
}

/// Segmental distance: Manhattan over `dims`, divided by |dims| (the
/// PROCLUS metric — normalizing by dimension count makes distances over
/// different dimension sets comparable).
double segmental(const Dataset& data, RecordIndex a, RecordIndex b,
                 const std::vector<DimId>& dims) {
  const auto ra = data.row(a);
  const auto rb = data.row(b);
  double d = 0.0;
  for (const DimId j : dims) {
    d += std::fabs(static_cast<double>(ra[j]) - rb[j]);
  }
  return d / static_cast<double>(dims.size());
}

/// Greedy piercing-set selection: `count` records, farthest-first, so the
/// candidates spread across the data (and hence across clusters).
std::vector<RecordIndex> greedy_candidates(const Dataset& data,
                                           std::size_t count, IcgRandom& rng) {
  const RecordIndex n = data.num_records();
  std::vector<RecordIndex> chosen;
  chosen.reserve(count);
  std::vector<double> dist(static_cast<std::size_t>(n),
                           std::numeric_limits<double>::max());

  RecordIndex current = uniform_index(rng, n);
  chosen.push_back(current);
  for (std::size_t i = 1; i < count && i < n; ++i) {
    double best = -1.0;
    RecordIndex arg = 0;
    for (RecordIndex r = 0; r < n; ++r) {
      const double d = manhattan(data, r, current);
      auto& slot = dist[static_cast<std::size_t>(r)];
      slot = std::min(slot, d);
      if (slot > best) {
        best = slot;
        arg = r;
      }
    }
    current = arg;
    chosen.push_back(current);
    dist[static_cast<std::size_t>(current)] = -1.0;  // never re-chosen
  }
  return chosen;
}

/// Per-medoid dimension selection: for each medoid, compute the average
/// per-dimension distance X[i][j] of its locality, standardize within the
/// medoid (z-score of X[i][j] against the medoid's own mean/sigma), and
/// greedily pick the k·l most negative z-scores subject to >= 2 dims per
/// medoid (the PROCLUS FindDimensions step).
std::vector<std::vector<DimId>> find_dimensions(
    const Dataset& data, const std::vector<RecordIndex>& medoids,
    std::size_t total_dims_budget) {
  const std::size_t k = medoids.size();
  const std::size_t d = data.num_dims();
  const RecordIndex n = data.num_records();

  // Locality radius: distance to the nearest other medoid.
  std::vector<double> radius(k, std::numeric_limits<double>::max());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      radius[i] = std::min(radius[i], manhattan(data, medoids[i], medoids[j]));
    }
    if (k == 1) radius[0] = std::numeric_limits<double>::max();
  }

  // X[i][j]: mean |r_j - m_i,j| over the locality of medoid i.
  std::vector<std::vector<double>> x(k, std::vector<double>(d, 0.0));
  std::vector<std::size_t> locality_size(k, 0);
  for (RecordIndex r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < k; ++i) {
      if (manhattan(data, r, medoids[i]) > radius[i]) continue;
      ++locality_size[i];
      const auto row = data.row(r);
      const auto med = data.row(medoids[i]);
      for (std::size_t j = 0; j < d; ++j) {
        x[i][j] += std::fabs(static_cast<double>(row[j]) - med[j]);
      }
    }
  }
  // Z-scores per medoid.
  struct Entry {
    double z;
    std::size_t medoid;
    DimId dim;
  };
  std::vector<Entry> entries;
  entries.reserve(k * d);
  for (std::size_t i = 0; i < k; ++i) {
    const double denom = std::max<std::size_t>(locality_size[i], 1);
    double mean = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      x[i][j] /= denom;
      mean += x[i][j];
    }
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      var += (x[i][j] - mean) * (x[i][j] - mean);
    }
    const double sigma = std::sqrt(var / std::max<std::size_t>(d - 1, 1));
    for (std::size_t j = 0; j < d; ++j) {
      const double z = sigma > 0 ? (x[i][j] - mean) / sigma : 0.0;
      entries.push_back(Entry{z, i, static_cast<DimId>(j)});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.z < b.z; });

  // Greedy pick: two lowest per medoid first, then best remaining overall.
  std::vector<std::vector<DimId>> dims(k);
  std::size_t picked = 0;
  for (const Entry& e : entries) {  // mandatory 2 per medoid
    if (dims[e.medoid].size() < 2) {
      dims[e.medoid].push_back(e.dim);
      ++picked;
    }
  }
  for (const Entry& e : entries) {
    if (picked >= total_dims_budget) break;
    auto& mine = dims[e.medoid];
    if (std::find(mine.begin(), mine.end(), e.dim) != mine.end()) continue;
    mine.push_back(e.dim);
    ++picked;
  }
  for (auto& v : dims) std::sort(v.begin(), v.end());
  return dims;
}

/// Assigns every record to the medoid with the smallest segmental distance.
std::vector<std::size_t> assign(const Dataset& data,
                                const std::vector<RecordIndex>& medoids,
                                const std::vector<std::vector<DimId>>& dims) {
  const RecordIndex n = data.num_records();
  std::vector<std::size_t> owner(static_cast<std::size_t>(n), 0);
  for (RecordIndex r = 0; r < n; ++r) {
    double best = std::numeric_limits<double>::max();
    std::size_t arg = 0;
    for (std::size_t i = 0; i < medoids.size(); ++i) {
      const double dd = segmental(data, r, medoids[i], dims[i]);
      if (dd < best) {
        best = dd;
        arg = i;
      }
    }
    owner[static_cast<std::size_t>(r)] = arg;
  }
  return owner;
}

/// Objective: mean segmental distance of records to their medoid.
double evaluate(const Dataset& data, const std::vector<RecordIndex>& medoids,
                const std::vector<std::vector<DimId>>& dims,
                const std::vector<std::size_t>& owner) {
  double total = 0.0;
  for (RecordIndex r = 0; r < data.num_records(); ++r) {
    const std::size_t i = owner[static_cast<std::size_t>(r)];
    total += segmental(data, r, medoids[i], dims[i]);
  }
  return total / static_cast<double>(data.num_records());
}

}  // namespace

ProclusResult run_proclus(const Dataset& data, const ProclusOptions& options) {
  options.validate();
  require(data.num_records() > 0, "run_proclus: empty data set");
  const std::size_t k = options.num_clusters;
  require(data.num_records() >= k, "run_proclus: fewer records than clusters");

  IcgRandom rng(options.seed);
  const std::size_t candidate_count =
      std::min<std::size_t>(options.candidate_factor * k,
                            static_cast<std::size_t>(data.num_records()));
  const std::vector<RecordIndex> candidates =
      greedy_candidates(data, candidate_count, rng);

  const std::size_t dim_budget = std::max(2 * k, k * options.avg_dims);

  // --- Iterative phase: hill-climb over medoid sets from the candidates.
  std::vector<RecordIndex> medoids(candidates.begin(),
                                   candidates.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<std::vector<DimId>> best_dims;
  std::vector<std::size_t> best_owner;
  double best_objective = std::numeric_limits<double>::max();
  std::vector<RecordIndex> best_medoids = medoids;

  std::size_t stale = 0;
  std::size_t iterations = 0;
  while (stale < options.max_stale_iterations) {
    ++iterations;
    const auto dims = find_dimensions(data, medoids, dim_budget);
    const auto owner = assign(data, medoids, dims);
    const double objective = evaluate(data, medoids, dims, owner);
    if (objective < best_objective) {
      best_objective = objective;
      best_medoids = medoids;
      best_dims = dims;
      best_owner = owner;
      stale = 0;
    } else {
      ++stale;
      medoids = best_medoids;  // climb from the best point
    }
    // Replace the medoid of the smallest cluster (the "bad medoid"
    // heuristic) with a random unused candidate.
    std::vector<std::size_t> sizes(k, 0);
    for (const std::size_t o : best_owner) ++sizes[o];
    const std::size_t worst = static_cast<std::size_t>(
        std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    const RecordIndex replacement =
        candidates[uniform_index(rng, candidates.size())];
    if (std::find(medoids.begin(), medoids.end(), replacement) == medoids.end()) {
      medoids[worst] = replacement;
    }
  }

  // --- Refinement: recompute dimensions from the final assignment's
  // clusters (distances measured to each cluster's own points via the
  // medoid locality of the whole cluster), then reassign once.
  const auto final_dims = find_dimensions(data, best_medoids, dim_budget);
  const auto final_owner = assign(data, best_medoids, final_dims);

  // Outliers: farther from their medoid (segmental) than that medoid's
  // sphere of influence = min over other medoids of segmental distance.
  std::vector<double> influence(k, std::numeric_limits<double>::max());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      influence[i] = std::min(
          influence[i],
          segmental(data, best_medoids[i], best_medoids[j], final_dims[i]));
    }
  }

  ProclusResult result;
  result.clusters.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.clusters[i].medoid = best_medoids[i];
    result.clusters[i].dims = final_dims[i];
  }
  for (RecordIndex r = 0; r < data.num_records(); ++r) {
    const std::size_t i = final_owner[static_cast<std::size_t>(r)];
    const double dd = segmental(data, r, best_medoids[i], final_dims[i]);
    if (k > 1 && dd > influence[i]) {
      result.outliers.push_back(r);
    } else {
      result.clusters[i].members.push_back(r);
    }
  }
  result.objective = evaluate(data, best_medoids, final_dims, final_owner);
  result.iterations = iterations;
  return result;
}

}  // namespace mafia
