// Grid model: per-dimension bins with individual density thresholds.
//
// Both MAFIA's adaptive grids (variable-width bins, per-bin thresholds
// α·N·a/Dᵢ — Section 3.1) and CLIQUE's uniform grids (ξ equal bins, one
// global threshold — Section 3) produce a DimensionGrid, so the level-wise
// dense-unit machinery is grid-agnostic.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

/// The bin structure of one dimension: `edges` has num_bins()+1 ascending
/// entries partitioning [domain_lo, domain_hi]; bin b covers
/// [edges[b], edges[b+1]) (last bin closed above).
struct DimensionGrid {
  DimId dim = 0;
  Value domain_lo = 0;
  Value domain_hi = 0;
  std::vector<Value> edges;
  /// Per-bin density threshold in absolute record counts: a bin (or any
  /// candidate unit containing it) must hold at least this many records to
  /// count as dense with respect to this bin.
  std::vector<double> thresholds;
  /// True when Algorithm 1 found the dimension equi-distributed and fell
  /// back to a fixed number of equal partitions with a boosted threshold.
  bool uniform_fallback = false;

  [[nodiscard]] std::size_t num_bins() const {
    return edges.empty() ? 0 : edges.size() - 1;
  }

  [[nodiscard]] Value bin_lo(BinId b) const { return edges[b]; }
  [[nodiscard]] Value bin_hi(BinId b) const { return edges[b + 1u]; }
  [[nodiscard]] Value bin_width(BinId b) const { return bin_hi(b) - bin_lo(b); }
  [[nodiscard]] double threshold(BinId b) const { return thresholds[b]; }

  /// Maps a value to its bin index.  Values outside the domain clamp to the
  /// first/last bin (records slightly out of the observed min/max range can
  /// occur when the grid was built on a different partition's extremes).
  [[nodiscard]] BinId bin_of(Value v) const {
    if (v <= edges.front()) return 0;
    if (v >= edges.back()) return static_cast<BinId>(num_bins() - 1);
    // upper_bound: first edge strictly greater than v; bin = index - 1.
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    return static_cast<BinId>((it - edges.begin()) - 1);
  }

  /// Validates structural invariants; throws mafia::Error on violation.
  void validate() const {
    require(edges.size() >= 2, "DimensionGrid: need at least one bin");
    require(num_bins() <= kMaxBinsPerDim, "DimensionGrid: too many bins");
    require(thresholds.size() == num_bins(),
            "DimensionGrid: thresholds/bins mismatch");
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
      require(edges[i] < edges[i + 1], "DimensionGrid: edges not ascending");
    }
  }
};

/// The full grid: one DimensionGrid per attribute, indexed by DimId.
struct GridSet {
  std::vector<DimensionGrid> dims;

  [[nodiscard]] std::size_t num_dims() const { return dims.size(); }
  [[nodiscard]] const DimensionGrid& operator[](std::size_t d) const { return dims[d]; }

  /// Total bins across all dimensions (the size of the level-1 candidate set).
  [[nodiscard]] std::size_t total_bins() const {
    std::size_t n = 0;
    for (const auto& g : dims) n += g.num_bins();
    return n;
  }
};

}  // namespace mafia
