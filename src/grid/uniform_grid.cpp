#include "grid/uniform_grid.hpp"

namespace mafia {

DimensionGrid compute_uniform_grid(DimId dim, Value domain_lo, Value domain_hi,
                                   std::size_t xi, double tau_fraction,
                                   Count total_records) {
  require(xi >= 1 && xi <= kMaxBinsPerDim, "compute_uniform_grid: bad xi");
  require(tau_fraction > 0.0 && tau_fraction < 1.0,
          "compute_uniform_grid: tau must be a fraction in (0,1)");
  require(domain_hi >= domain_lo, "compute_uniform_grid: inverted domain");

  DimensionGrid grid;
  grid.dim = dim;
  grid.domain_lo = domain_lo;
  grid.domain_hi = domain_hi;
  grid.uniform_fallback = false;

  if (!(domain_hi > domain_lo)) {
    grid.edges = {domain_lo, domain_lo + Value(1)};
    grid.thresholds = {tau_fraction * static_cast<double>(total_records)};
    grid.validate();
    return grid;
  }

  const double width = static_cast<double>(domain_hi) - domain_lo;
  grid.edges.resize(xi + 1);
  for (std::size_t i = 0; i <= xi; ++i) {
    grid.edges[i] = static_cast<Value>(
        domain_lo + width * static_cast<double>(i) / static_cast<double>(xi));
  }
  grid.edges.back() = domain_hi;
  grid.thresholds.assign(xi, tau_fraction * static_cast<double>(total_records));
  grid.validate();
  return grid;
}

GridSet compute_uniform_grids(std::span<const Value> domain_lo,
                              std::span<const Value> domain_hi, std::size_t xi,
                              double tau_fraction, Count total_records) {
  require(domain_lo.size() == domain_hi.size(), "compute_uniform_grids: size mismatch");
  GridSet grids;
  grids.dims.reserve(domain_lo.size());
  for (std::size_t j = 0; j < domain_lo.size(); ++j) {
    grids.dims.push_back(compute_uniform_grid(static_cast<DimId>(j), domain_lo[j],
                                              domain_hi[j], xi, tau_fraction,
                                              total_records));
  }
  return grids;
}

GridSet compute_uniform_grids(std::span<const Value> domain_lo,
                              std::span<const Value> domain_hi,
                              std::span<const std::size_t> xi_per_dim,
                              double tau_fraction, Count total_records) {
  require(domain_lo.size() == domain_hi.size() &&
              domain_lo.size() == xi_per_dim.size(),
          "compute_uniform_grids: size mismatch");
  GridSet grids;
  grids.dims.reserve(domain_lo.size());
  for (std::size_t j = 0; j < domain_lo.size(); ++j) {
    grids.dims.push_back(compute_uniform_grid(static_cast<DimId>(j), domain_lo[j],
                                              domain_hi[j], xi_per_dim[j],
                                              tau_fraction, total_records));
  }
  return grids;
}

}  // namespace mafia
