// Fine-grained per-dimension histograms and domain (min/max) accumulation.
//
// Algorithm 2's first data pass builds "a histogram in each dimension"
// locally on each processor, then a Reduce-with-sum gathers the global
// histogram.  The accumulators here are plain flat vectors precisely so the
// mp::Comm::allreduce_sum primitive applies directly.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia {

/// Tracks per-dimension minima and maxima over chunked record scans.
/// Combine across ranks with allreduce_min / allreduce_max on the vectors.
class MinMaxAccumulator {
 public:
  explicit MinMaxAccumulator(std::size_t dims)
      : mins_(dims, std::numeric_limits<Value>::max()),
        maxs_(dims, std::numeric_limits<Value>::lowest()) {}

  /// Folds `nrows` row-major records into the running extrema.
  void accumulate(const Value* rows, std::size_t nrows) {
    const std::size_t d = mins_.size();
    for (std::size_t r = 0; r < nrows; ++r) {
      const Value* row = rows + r * d;
      for (std::size_t j = 0; j < d; ++j) {
        if (row[j] < mins_[j]) mins_[j] = row[j];
        if (row[j] > maxs_[j]) maxs_[j] = row[j];
      }
    }
  }

  [[nodiscard]] std::vector<Value>& mins() { return mins_; }
  [[nodiscard]] std::vector<Value>& maxs() { return maxs_; }
  [[nodiscard]] const std::vector<Value>& mins() const { return mins_; }
  [[nodiscard]] const std::vector<Value>& maxs() const { return maxs_; }

 private:
  std::vector<Value> mins_;
  std::vector<Value> maxs_;
};

/// Builds the fine histogram Algorithm 1 consumes: every dimension's domain
/// divided into `fine_bins` equal cells, counts accumulated over chunked
/// scans.  Counts are stored flattened (dim-major) so one allreduce_sum
/// globalizes all dimensions at once.
class HistogramBuilder {
 public:
  HistogramBuilder(std::span<const Value> domain_lo, std::span<const Value> domain_hi,
                   std::size_t fine_bins)
      : fine_bins_(fine_bins),
        lo_(domain_lo.begin(), domain_lo.end()),
        inv_width_(domain_lo.size()),
        counts_(domain_lo.size() * fine_bins, 0) {
    require(fine_bins >= 1, "HistogramBuilder: fine_bins must be positive");
    require(domain_lo.size() == domain_hi.size(), "HistogramBuilder: lo/hi mismatch");
    for (std::size_t j = 0; j < lo_.size(); ++j) {
      const double width = static_cast<double>(domain_hi[j]) - lo_[j];
      // Degenerate (constant) dimensions map everything to cell 0.
      inv_width_[j] = width > 0 ? static_cast<double>(fine_bins) / width : 0.0;
    }
  }

  /// Folds `nrows` row-major records into the counts.
  void accumulate(const Value* rows, std::size_t nrows) {
    const std::size_t d = lo_.size();
    for (std::size_t r = 0; r < nrows; ++r) {
      const Value* row = rows + r * d;
      for (std::size_t j = 0; j < d; ++j) {
        double cell = (static_cast<double>(row[j]) - lo_[j]) * inv_width_[j];
        auto c = static_cast<std::ptrdiff_t>(cell);
        if (c < 0) c = 0;
        if (c >= static_cast<std::ptrdiff_t>(fine_bins_)) {
          c = static_cast<std::ptrdiff_t>(fine_bins_) - 1;
        }
        ++counts_[j * fine_bins_ + static_cast<std::size_t>(c)];
      }
    }
  }

  /// Accumulates `base` element-wise into the counts — the append path
  /// seeds a stored global histogram and scans only the new batch.  The
  /// SPMD driver seeds AFTER the batch-only allreduce so every rank adds
  /// the base exactly once.  Throws mafia::Error on Count overflow (the
  /// appended total crossing the accumulator's range must fail loudly,
  /// not wrap).
  void seed_counts(std::span<const Count> base) {
    require(base.size() == counts_.size(),
            "HistogramBuilder::seed_counts: base size mismatch");
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] > std::numeric_limits<Count>::max() - base[i]) {
        throw Error("HistogramBuilder: histogram accumulation overflowed",
                    ErrorClass::Internal);
      }
      counts_[i] += base[i];
    }
  }

  [[nodiscard]] std::size_t fine_bins() const { return fine_bins_; }
  [[nodiscard]] std::size_t num_dims() const { return lo_.size(); }

  /// Flattened counts (dim-major), mutable so callers can allreduce in place.
  [[nodiscard]] std::vector<Count>& counts() { return counts_; }
  [[nodiscard]] const std::vector<Count>& counts() const { return counts_; }

  /// The fine-cell counts of one dimension.
  [[nodiscard]] std::span<const Count> dim_counts(std::size_t j) const {
    return {counts_.data() + j * fine_bins_, fine_bins_};
  }

 private:
  std::size_t fine_bins_;
  std::vector<double> lo_;
  std::vector<double> inv_width_;
  std::vector<Count> counts_;
};

}  // namespace mafia
