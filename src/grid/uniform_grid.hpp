// CLIQUE-style uniform grids: ξ equal-width bins per dimension, one global
// density threshold τ (a fraction of N) applied to every bin (Section 3:
// "each dimension is divided into ξ equal intervals ... It takes the size
// of the grid and a global density threshold for clusters as input
// parameters").
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "grid/grid_types.hpp"

namespace mafia {

/// Builds a ξ-equal-bin grid for one dimension with threshold τ·N per bin.
[[nodiscard]] DimensionGrid compute_uniform_grid(DimId dim, Value domain_lo,
                                                 Value domain_hi, std::size_t xi,
                                                 double tau_fraction,
                                                 Count total_records);

/// Builds the uniform grid for all dimensions with a common ξ.
[[nodiscard]] GridSet compute_uniform_grids(std::span<const Value> domain_lo,
                                            std::span<const Value> domain_hi,
                                            std::size_t xi, double tau_fraction,
                                            Count total_records);

/// Builds uniform grids with a per-dimension bin count (the "variable bins"
/// CLIQUE configuration of Table 3's second row).
[[nodiscard]] GridSet compute_uniform_grids(std::span<const Value> domain_lo,
                                            std::span<const Value> domain_hi,
                                            std::span<const std::size_t> xi_per_dim,
                                            double tau_fraction,
                                            Count total_records);

}  // namespace mafia
