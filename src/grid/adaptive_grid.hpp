// Algorithm 1: adaptive grid computation.
//
// From the paper (Section 3.1):
//   "The domain of each dimension is divided into fine intervals ... The
//    maximum of the histogram value within a window is taken to reflect the
//    window value.  Adjacent windows whose values differ by less than a
//    threshold percentage are merged together to form larger windows ...
//    In essence, we fit the best rectangular wave which matches the data
//    distribution.  However, in dimensions where data is uniformly
//    distributed this results in a single bin ... we split the domain into
//    a small fixed number of partitions ... This also allows us to set a
//    high threshold as this dimension is less likely to be part of a
//    cluster.  ... for a bin of size a in a dimension of size Dᵢ we set its
//    threshold to be α·N·a/Dᵢ."
#pragma once

#include <cstddef>
#include <span>

#include "grid/grid_types.hpp"
#include "grid/histogram.hpp"

namespace mafia {

/// Tuning knobs for Algorithm 1.  Defaults follow the paper where it gives
/// numbers (α = 1.5, β in [0.25, 0.75]) and sensible engineering choices
/// where it says "some small size" / "a small fixed number".
struct AdaptiveGridOptions {
  /// Fine histogram cells per dimension ("fine intervals ... of some small
  /// size": 1000 cells resolve 0.1% of the domain).
  std::size_t fine_bins = 1000;
  /// Fine cells per window; the window value is the max cell count inside.
  std::size_t window_cells = 5;
  /// Merge threshold percentage β: adjacent windows merge when their values
  /// differ by no more than beta * max(value_a, value_b).
  double beta = 0.35;
  /// Poisson slack added to the β merge test, in standard deviations of the
  /// larger window count: windows whose difference is statistically
  /// indistinguishable merge even when the relative difference exceeds β.
  /// Irrelevant at the paper's data sizes; prevents sparse background
  /// regions from shattering into noise bins on small samples.  0 disables.
  double merge_noise_sigmas = 3.0;
  /// "small fixed number of partitions" for equi-distributed dimensions.
  std::size_t uniform_dim_partitions = 5;
  /// Cluster-dominance factor α; > 1.5 is "significant deviation" (Sec. 3).
  double alpha = 1.5;
  /// Extra threshold factor for uniform-fallback dimensions ("set a high
  /// threshold as this dimension is less likely to be part of a cluster").
  double uniform_dim_alpha_boost = 2.0;
  /// Hard cap on bins per dimension (BinId is one byte).
  std::size_t max_bins = kMaxBinsPerDim;

  /// Preset tuned to the sample size: the rectangular-wave fit needs a few
  /// records per fine cell to be statistically meaningful, so small samples
  /// take coarser cells/windows (trading boundary precision, which is
  /// limited by sqrt-N noise anyway).  The defaults above are the
  /// large-sample (paper-scale) configuration.
  static AdaptiveGridOptions for_sample_size(Count n) {
    AdaptiveGridOptions o;
    if (n <= 2000) {
      o.fine_bins = 50;
      o.window_cells = 2;
      o.merge_noise_sigmas = 0.5;
    } else if (n <= 20000) {
      o.fine_bins = 100;
      o.window_cells = 2;
    } else if (n <= 200000) {
      o.fine_bins = 500;
      o.window_cells = 5;
    }
    return o;
  }

  void validate() const {
    require(fine_bins >= 2, "AdaptiveGridOptions: fine_bins too small");
    require(window_cells >= 1 && window_cells <= fine_bins,
            "AdaptiveGridOptions: bad window_cells");
    require(beta >= 0.0 && beta <= 1.0, "AdaptiveGridOptions: beta outside [0,1]");
    require(merge_noise_sigmas >= 0.0,
            "AdaptiveGridOptions: merge_noise_sigmas must be non-negative");
    require(uniform_dim_partitions >= 1,
            "AdaptiveGridOptions: uniform_dim_partitions must be positive");
    require(alpha > 0.0, "AdaptiveGridOptions: alpha must be positive");
    require(uniform_dim_alpha_boost >= 1.0,
            "AdaptiveGridOptions: boost must be >= 1");
    require(max_bins >= 1 && max_bins <= kMaxBinsPerDim,
            "AdaptiveGridOptions: bad max_bins");
  }
};

/// Runs Algorithm 1 for one dimension given its global fine histogram.
/// `total_records` is N (the global record count) used for thresholds.
[[nodiscard]] DimensionGrid compute_adaptive_grid(
    DimId dim, Value domain_lo, Value domain_hi,
    std::span<const Count> fine_counts, Count total_records,
    const AdaptiveGridOptions& options);

/// Runs Algorithm 1 for every dimension of a reduced HistogramBuilder.
[[nodiscard]] GridSet compute_adaptive_grids(
    std::span<const Value> domain_lo, std::span<const Value> domain_hi,
    const HistogramBuilder& histogram, Count total_records,
    const AdaptiveGridOptions& options);

}  // namespace mafia
