#include "grid/adaptive_grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mafia {

namespace {

/// One merged window: fine-cell range [cell_begin, cell_end) and the
/// rectangular-wave value (max fine-cell count inside).
struct MergedWindow {
  std::size_t cell_begin = 0;
  std::size_t cell_end = 0;
  Count value = 0;
};

/// True when two window values are "within the threshold percentage β":
/// |a - b| <= β * max(a, b), plus a Poisson slack of `sigmas` standard
/// deviations (sqrt of the larger count).  The slack is an engineering
/// refinement for small samples: with the paper's multi-million-record data
/// sets sqrt(c)/c vanishes and the rule reduces to the pure β test, but at
/// a few thousand records sparse background windows fluctuate by more than
/// β of their tiny means and would otherwise shatter into meaningless bins.
bool within_beta(Count a, Count b, double beta, double sigmas) {
  const Count hi = std::max(a, b);
  if (hi == 0) return true;
  const Count lo = std::min(a, b);
  // Slack from the SMALLER count's Poisson deviation: conservative — a
  // genuine density step (hi >> lo) gains little slack, while two sparse
  // noise windows (both small) merge freely.
  const double slack = beta * static_cast<double>(hi) +
                       sigmas * std::sqrt(static_cast<double>(lo) + 1.0);
  return static_cast<double>(hi - lo) <= slack;
}

}  // namespace

DimensionGrid compute_adaptive_grid(DimId dim, Value domain_lo, Value domain_hi,
                                    std::span<const Count> fine_counts,
                                    Count total_records,
                                    const AdaptiveGridOptions& options) {
  options.validate();
  require(fine_counts.size() == options.fine_bins,
          "compute_adaptive_grid: histogram resolution mismatch");
  require(domain_hi >= domain_lo, "compute_adaptive_grid: inverted domain");

  DimensionGrid grid;
  grid.dim = dim;
  grid.domain_lo = domain_lo;
  grid.domain_hi = domain_hi;

  // Degenerate dimension (all values equal): one bin spanning a token width
  // so downstream code sees a valid grid; it can never join a cluster
  // meaningfully (every record shares the bin, threshold == alpha * N).
  if (!(domain_hi > domain_lo)) {
    grid.edges = {domain_lo, domain_lo + Value(1)};
    grid.thresholds = {options.alpha * static_cast<double>(total_records)};
    grid.uniform_fallback = true;
    grid.validate();
    return grid;
  }

  const double domain_size = static_cast<double>(domain_hi) - domain_lo;

  // --- Step 1: windows of `window_cells` fine cells; value = max inside.
  std::vector<MergedWindow> windows;
  const std::size_t w = options.window_cells;
  windows.reserve(options.fine_bins / w + 1);
  for (std::size_t begin = 0; begin < options.fine_bins; begin += w) {
    const std::size_t end = std::min(begin + w, options.fine_bins);
    Count value = 0;
    for (std::size_t c = begin; c < end; ++c) value = std::max(value, fine_counts[c]);
    windows.push_back(MergedWindow{begin, end, value});
  }

  // --- Step 2: "From left to right merge two adjacent units if they are
  // within a threshold β".  The merged window keeps the rectangular-wave
  // value (max), so a run of near-equal windows collapses to one bin.
  std::vector<MergedWindow> merged;
  merged.reserve(windows.size());
  for (const MergedWindow& win : windows) {
    if (!merged.empty() && within_beta(merged.back().value, win.value,
                                       options.beta, options.merge_noise_sigmas)) {
      merged.back().cell_end = win.cell_end;
      merged.back().value = std::max(merged.back().value, win.value);
    } else {
      merged.push_back(win);
    }
  }

  // Cap the bin count (BinId is one byte).  If the β merge produced more
  // bins than representable, repeatedly merge the pair of adjacent bins
  // with the closest values until under the cap.
  while (merged.size() > options.max_bins) {
    std::size_t best = 0;
    double best_gap = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
      const double gap = std::fabs(static_cast<double>(merged[i].value) -
                                   static_cast<double>(merged[i + 1].value));
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    merged[best].cell_end = merged[best + 1].cell_end;
    merged[best].value = std::max(merged[best].value, merged[best + 1].value);
    merged.erase(merged.begin() + static_cast<std::ptrdiff_t>(best) + 1);
  }

  const double cell_width = domain_size / static_cast<double>(options.fine_bins);

  if (merged.size() == 1) {
    // --- Uniform-dimension fallback: "Divide the dimension into a fixed
    // number of equal partitions" and set a high threshold.
    grid.uniform_fallback = true;
    const std::size_t parts = options.uniform_dim_partitions;
    grid.edges.resize(parts + 1);
    for (std::size_t i = 0; i <= parts; ++i) {
      grid.edges[i] = static_cast<Value>(
          domain_lo + domain_size * static_cast<double>(i) / static_cast<double>(parts));
    }
    grid.edges.back() = domain_hi;
    const double alpha = options.alpha * options.uniform_dim_alpha_boost;
    grid.thresholds.resize(parts);
    for (std::size_t b = 0; b < parts; ++b) {
      const double a = static_cast<double>(grid.edges[b + 1]) - grid.edges[b];
      grid.thresholds[b] = alpha * static_cast<double>(total_records) * a / domain_size;
    }
  } else {
    // --- Variable-width bins at the merged-window boundaries; per-bin
    // threshold α·N·a/Dᵢ.
    grid.uniform_fallback = false;
    grid.edges.reserve(merged.size() + 1);
    grid.edges.push_back(domain_lo);
    for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
      grid.edges.push_back(static_cast<Value>(
          domain_lo + cell_width * static_cast<double>(merged[i].cell_end)));
    }
    grid.edges.push_back(domain_hi);
    grid.thresholds.resize(merged.size());
    for (std::size_t b = 0; b < merged.size(); ++b) {
      const double a = static_cast<double>(grid.edges[b + 1]) - grid.edges[b];
      grid.thresholds[b] =
          options.alpha * static_cast<double>(total_records) * a / domain_size;
    }
  }

  grid.validate();
  return grid;
}

GridSet compute_adaptive_grids(std::span<const Value> domain_lo,
                               std::span<const Value> domain_hi,
                               const HistogramBuilder& histogram,
                               Count total_records,
                               const AdaptiveGridOptions& options) {
  require(domain_lo.size() == histogram.num_dims() &&
              domain_hi.size() == histogram.num_dims(),
          "compute_adaptive_grids: domain/histogram mismatch");
  GridSet grids;
  grids.dims.reserve(histogram.num_dims());
  for (std::size_t j = 0; j < histogram.num_dims(); ++j) {
    grids.dims.push_back(compute_adaptive_grid(
        static_cast<DimId>(j), domain_lo[j], domain_hi[j],
        histogram.dim_counts(j), total_records, options));
  }
  return grids;
}

}  // namespace mafia
