// SPMD job launcher: spawn p ranks, propagate failures, collect stats.
//
// This file holds the THREADS transport (ranks as std::thread over a
// shared exchange board, the original emulation) and the backend dispatch;
// the process transport lives in process_backend.cpp.
//
// Failure contract (see mp::run's declaration): any rank's exception
// aborts the job, every sibling unwinds out of its blocking wait, all
// threads are joined, and the caller sees exactly one structured
// mafia::Error — never a deadlock, never std::terminate.
#include "mp/comm.hpp"

#include <exception>
#include <thread>

#include "mp/process.hpp"

namespace mafia::mp {

namespace {

/// State shared by all ranks of one threads-backend job.
struct Context {
  explicit Context(int p)
      : size(p), barrier(static_cast<std::size_t>(p)), mailboxes(p),
        slot_ptr(p, nullptr), slot_len(p, 0), stats(p) {}

  const int size;
  Barrier barrier;
  std::vector<Mailbox> mailboxes;
  // Exchange board for collectives (valid only between the barriers of the
  // collective currently in flight).
  std::vector<const void*> slot_ptr;
  std::vector<std::size_t> slot_len;
  std::vector<CommStats> stats;
  double deadline_seconds = 0.0;
  std::vector<std::uint8_t> result;
  std::mutex result_mutex;

  void interrupt_all() {
    barrier.abort();
    for (auto& mb : mailboxes) mb.interrupt();
  }
};

/// Threads transport: the exchange window is publish -> barrier (siblings
/// read the board) -> barrier (release).  Deadlines ride on the barrier's
/// and mailbox's timed waits.
class ThreadComm final : public Comm {
 public:
  ThreadComm(int rank, Context& ctx, const RunOptions& options)
      : Comm(rank, ctx.size, MpBackend::Threads,
             &ctx.stats[static_cast<std::size_t>(rank)], options.network,
             options.faults),
        ctx_(ctx) {}

  void set_result(std::vector<std::uint8_t> blob) override {
    std::lock_guard<std::mutex> lock(ctx_.result_mutex);
    ctx_.result = std::move(blob);
  }

 protected:
  void do_barrier() override { wait_or_deadline(CommOp::Barrier); }

  void begin_exchange(CommOp op, const void* data, std::size_t bytes) override {
    ctx_.slot_ptr[static_cast<std::size_t>(rank_)] = data;
    ctx_.slot_len[static_cast<std::size_t>(rank_)] = bytes;
    in_flight_ = op;
    wait_or_deadline(op);
  }

  const void* peer_ptr(int r) override {
    return ctx_.slot_ptr[static_cast<std::size_t>(r)];
  }

  std::size_t peer_len(int r) override {
    return ctx_.slot_len[static_cast<std::size_t>(r)];
  }

  void end_exchange() override { wait_or_deadline(in_flight_); }

  void do_send(int dest, int tag, const void* data, std::size_t bytes) override {
    ctx_.mailboxes[static_cast<std::size_t>(dest)].push(rank_, tag, data,
                                                        bytes);
  }

  std::vector<std::uint8_t> do_recv(int source, int tag) override {
    auto msg = ctx_.mailboxes[static_cast<std::size_t>(rank_)].pop_for(
        source, tag, ctx_.barrier, ctx_.deadline_seconds);
    if (!msg) {
      throw FaultError("mp: deadline exceeded: rank " + std::to_string(rank_) +
                       " waited " + std::to_string(ctx_.deadline_seconds) +
                       " s in recv (source " + std::to_string(source) +
                       ", tag " + std::to_string(tag) + ")");
    }
    return std::move(msg->payload);
  }

 private:
  void wait_or_deadline(CommOp op) {
    if (!ctx_.barrier.wait_for(ctx_.deadline_seconds)) {
      throw FaultError("mp: deadline exceeded: rank " + std::to_string(rank_) +
                       " waited " + std::to_string(ctx_.deadline_seconds) +
                       " s in " + comm_op_name(op));
    }
  }

  Context& ctx_;
  CommOp in_flight_ = CommOp::Barrier;
};

/// Normalizes the first failed rank's exception into what the caller sees:
/// mafia::Error (and subclasses — FaultError, InputError, ...) pass
/// through unchanged so class and message survive; anything else is
/// wrapped into an ErrorClass::Internal mafia::Error naming the rank, so
/// the caller always catches one structured type.
[[noreturn]] void rethrow_normalized(std::exception_ptr err, int rank) {
  try {
    std::rethrow_exception(err);
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Error("mp: rank " + std::to_string(rank) +
                    " failed: " + std::string(e.what()),
                ErrorClass::Internal);
  } catch (...) {
    throw Error("mp: rank " + std::to_string(rank) +
                    " failed with a non-standard exception",
                ErrorClass::Internal);
  }
}

JobStats run_threads(int p, const std::function<void(Comm&)>& fn,
                     const RunOptions& options) {
  Context ctx(p);
  ctx.deadline_seconds = options.deadline_seconds;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));

  for (int rank = 0; rank < p; ++rank) {
    threads.emplace_back([rank, &ctx, &fn, &errors, &options] {
      try {
        ThreadComm comm(rank, ctx, options);
        fn(comm);
      } catch (const AbortedError&) {
        // Unwound because a sibling failed first; the sibling's exception
        // is the interesting one, so swallow the abort echo.
      } catch (...) {
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
        ctx.interrupt_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int rank = 0; rank < p; ++rank) {
    if (errors[static_cast<std::size_t>(rank)]) {
      rethrow_normalized(errors[static_cast<std::size_t>(rank)], rank);
    }
  }

  JobStats stats;
  stats.per_rank = ctx.stats;
  stats.backend = MpBackend::Threads;
  stats.result = std::move(ctx.result);
  return stats;
}

}  // namespace

JobStats run(int p, const std::function<void(Comm&)>& fn,
             const RunOptions& options) {
  require(p >= 1, "mp::run: need at least one rank");
  if (options.backend == MpBackend::Process) {
    return run_process(p, fn, options);
  }
  return run_threads(p, fn, options);
}

JobStats run(int p, const std::function<void(Comm&)>& fn,
             const NetworkSimulation& network) {
  RunOptions options;
  options.network = network;
  return run(p, fn, options);
}

}  // namespace mafia::mp
