// SPMD job launcher: spawn p ranks, propagate failures, collect stats.
//
// Failure contract (see mp::run's declaration): any rank's exception
// aborts the job, every sibling unwinds out of its blocking wait, all
// threads are joined, and the caller sees exactly one structured
// mafia::Error — never a deadlock, never std::terminate.
#include "mp/comm.hpp"

#include <exception>
#include <thread>

namespace mafia::mp {

namespace {

/// Normalizes the first failed rank's exception into what the caller sees:
/// mafia::Error (and subclasses — FaultError, InputError, ...) pass
/// through unchanged so class and message survive; anything else is
/// wrapped into an ErrorClass::Internal mafia::Error naming the rank, so
/// the caller always catches one structured type.
[[noreturn]] void rethrow_normalized(std::exception_ptr err, int rank) {
  try {
    std::rethrow_exception(err);
  } catch (const Error&) {
    throw;
  } catch (const std::exception& e) {
    throw Error("mp: rank " + std::to_string(rank) +
                    " failed: " + std::string(e.what()),
                ErrorClass::Internal);
  } catch (...) {
    throw Error("mp: rank " + std::to_string(rank) +
                    " failed with a non-standard exception",
                ErrorClass::Internal);
  }
}

}  // namespace

JobStats run(int p, const std::function<void(Comm&)>& fn,
             const RunOptions& options) {
  require(p >= 1, "mp::run: need at least one rank");
  detail::Context ctx(p);
  ctx.network = options.network;
  ctx.faults = options.faults;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));

  for (int rank = 0; rank < p; ++rank) {
    threads.emplace_back([rank, &ctx, &fn, &errors] {
      try {
        Comm comm(rank, ctx);
        fn(comm);
      } catch (const AbortedError&) {
        // Unwound because a sibling failed first; the sibling's exception
        // is the interesting one, so swallow the abort echo.
      } catch (...) {
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
        ctx.interrupt_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int rank = 0; rank < p; ++rank) {
    if (errors[static_cast<std::size_t>(rank)]) {
      rethrow_normalized(errors[static_cast<std::size_t>(rank)], rank);
    }
  }

  JobStats stats;
  stats.per_rank = ctx.stats;
  return stats;
}

JobStats run(int p, const std::function<void(Comm&)>& fn,
             const NetworkSimulation& network) {
  RunOptions options;
  options.network = network;
  return run(p, fn, options);
}

}  // namespace mafia::mp
