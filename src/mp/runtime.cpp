// SPMD job launcher: spawn p ranks, propagate failures, collect stats.
#include "mp/comm.hpp"

#include <exception>
#include <thread>

namespace mafia::mp {

JobStats run(int p, const std::function<void(Comm&)>& fn,
             const NetworkSimulation& network) {
  require(p >= 1, "mp::run: need at least one rank");
  detail::Context ctx(p);
  ctx.network = network;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));

  for (int rank = 0; rank < p; ++rank) {
    threads.emplace_back([rank, &ctx, &fn, &errors] {
      try {
        Comm comm(rank, ctx);
        fn(comm);
      } catch (const AbortedError&) {
        // Unwound because a sibling failed first; the sibling's exception
        // is the interesting one, so swallow the abort echo.
      } catch (...) {
        errors[static_cast<std::size_t>(rank)] = std::current_exception();
        ctx.interrupt_all();
      }
    });
  }
  for (auto& t : threads) t.join();

  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }

  JobStats stats;
  stats.per_rank = ctx.stats;
  return stats;
}

}  // namespace mafia::mp
