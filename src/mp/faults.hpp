// Deterministic fault injection for the SPMD runtime.
//
// A production MPI job dies in ways a clean test suite never exercises: a
// rank segfaults mid-collective, a straggler stalls a barrier, a process
// blocks forever in a recv whose sender is gone.  This header makes every
// one of those paths reproducible: a FaultPlan is a small list of (rank,
// op-index, action) triples, and each Comm primitive (barrier, collective,
// send, recv) passes through a fault point that counts the rank's
// communication operations and fires the matching spec.
//
//   * Kill  — the rank throws FaultError at the op's entry, before it
//     publishes anything to the exchange board, so siblings blocked in the
//     same collective (or in a mailbox wait for a message this rank will
//     now never send) unwind via the job abort — never a deadlock, never a
//     dangling slot pointer.
//   * Delay — the rank sleeps at the op's entry, turning it into a
//     deterministic straggler; results must be unaffected (the tests
//     assert this), only barrier-wait time moves.
//
// Because ranks issue their comm ops in a deterministic order (the whole
// runtime is rank-order deterministic), the same plan against the same
// program fails at the same place every time — "kill rank 2 at its 7th op"
// is a reproducible test case, not a flaky one.  random_kill derives a
// plan from a seed for randomized sweeps that stay replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "mp/backend.hpp"

namespace mafia::mp {

/// Thrown by a rank whose Kill fault fires.  ErrorClass::Fault, so the CLI
/// and harnesses can distinguish injected/propagated rank deaths from bad
/// input or usage errors.
class FaultError : public Error {
 public:
  explicit FaultError(const std::string& what)
      : Error(what, ErrorClass::Fault) {}
};

enum class FaultAction {
  Kill,   ///< throw FaultError at the op's entry
  Delay,  ///< sleep delay_seconds at the op's entry, then proceed
};

/// One planned fault.  Two addressing modes:
///   * by index (`by_name == false`): fires when `rank` enters its `op`-th
///     communication operation (0-based; barriers, collectives, sends, and
///     recvs all count);
///   * by name (`by_name == true`): fires when `rank` enters its
///     `occurrence`-th operation of kind `name_op` (0-based within that
///     kind) — "kill rank 1 at its 3rd allreduce" without counting the
///     barriers in between.
struct FaultSpec {
  int rank = 0;
  std::uint64_t op = 0;
  FaultAction action = FaultAction::Kill;
  double delay_seconds = 0.0;
  bool by_name = false;
  CommOp name_op = CommOp::Barrier;
  std::uint64_t occurrence = 0;
};

/// A deterministic schedule of injected faults for one SPMD job.
class FaultPlan {
 public:
  FaultPlan& kill(int rank, std::uint64_t op) {
    specs_.push_back({rank, op, FaultAction::Kill, 0.0});
    return *this;
  }

  FaultPlan& delay(int rank, std::uint64_t op, double seconds) {
    specs_.push_back({rank, op, FaultAction::Delay, seconds});
    return *this;
  }

  /// Kill `rank` at its `occurrence`-th op of kind `op` (0-based).
  FaultPlan& kill_op(int rank, CommOp op, std::uint64_t occurrence = 0) {
    FaultSpec s{rank, 0, FaultAction::Kill, 0.0, true, op, occurrence};
    specs_.push_back(s);
    return *this;
  }

  /// Delay `rank` at its `occurrence`-th op of kind `op` (0-based).
  FaultPlan& delay_op(int rank, CommOp op, std::uint64_t occurrence,
                      double seconds) {
    FaultSpec s{rank, 0, FaultAction::Delay, seconds, true, op, occurrence};
    specs_.push_back(s);
    return *this;
  }

  [[nodiscard]] bool empty() const { return specs_.empty(); }
  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }

  /// The spec firing for `rank`'s `op`-th operation, or nullptr.  Linear
  /// scan: plans hold a handful of specs and this runs once per comm op,
  /// not per byte.  Index-mode specs only (see the 4-argument overload for
  /// name-mode matching).
  [[nodiscard]] const FaultSpec* match(int rank, std::uint64_t op) const {
    for (const FaultSpec& s : specs_) {
      if (!s.by_name && s.rank == rank && s.op == op) return &s;
    }
    return nullptr;
  }

  /// Full match: `idx` is the rank's global op counter, (`op`,
  /// `op_occurrence`) its per-kind counter — whichever addressing mode a
  /// spec uses, it fires here.
  [[nodiscard]] const FaultSpec* match(int rank, std::uint64_t idx, CommOp op,
                                       std::uint64_t op_occurrence) const {
    for (const FaultSpec& s : specs_) {
      if (s.rank != rank) continue;
      if (s.by_name) {
        if (s.name_op == op && s.occurrence == op_occurrence) return &s;
      } else if (s.op == idx) {
        return &s;
      }
    }
    return nullptr;
  }

  /// A single seeded kill: rank and op index drawn from splitmix64, so
  /// randomized sweeps replay exactly from the seed.  `max_op` bounds the
  /// drawn op index (exclusive); use a value past the job's op count to
  /// sometimes draw a fault that never fires.
  [[nodiscard]] static FaultPlan random_kill(std::uint64_t seed, int ranks,
                                             std::uint64_t max_op) {
    require(ranks >= 1 && max_op >= 1, "FaultPlan::random_kill: empty range");
    const auto mix = [](std::uint64_t& state) {
      state += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = state;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    std::uint64_t state = seed;
    FaultPlan plan;
    plan.kill(static_cast<int>(mix(state) % static_cast<std::uint64_t>(ranks)),
              mix(state) % max_op);
    return plan;
  }

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace mafia::mp
