// SPMD message-passing runtime: the repo's stand-in for MPI on the IBM SP2.
//
// The paper runs pMAFIA "in the Single Program Multiple Data (SPMD) mode,
// where the same program runs on multiple processors but uses portions of
// the data assigned to the processor" and communicates with MPI's Reduce /
// Broadcast / point-to-point primitives (Section 4).  This runtime provides
// exactly those semantics over two interchangeable transports (see
// mp/backend.hpp):
//
//   * mp::run(p, fn, options) launches p ranks, each receiving a Comm;
//   * ranks share NO algorithm state — all exchange goes through the Comm
//     (collectives or mailboxes), so porting to real MPI is mechanical;
//   * every collective combines contributions in rank order, making parallel
//     runs bit-deterministic (tested: serial == parallel cluster sets on
//     BOTH backends);
//   * CommStats counts payload bytes and operations so benches can report
//     measured communication volume and apply the Section 4.5 cost model.
//
// Comm is the template-facing base class: every collective is implemented
// here, once, over a small set of non-templated transport primitives
// (begin_exchange / peer slots / end_exchange / do_send / do_recv).  A
// collective is publish -> exchange -> combine-in-rank-order -> release,
// which is safe because reads of rank r's slot happen strictly inside the
// exchange window that brackets r's writes.  The threads transport backs
// the window with a shared board and two barriers; the process transport
// backs it with a shared-memory slot board and a coordinator round-trip.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "mp/backend.hpp"
#include "mp/barrier.hpp"
#include "mp/faults.hpp"
#include "mp/mailbox.hpp"
#include "mp/stats.hpp"

namespace mafia::mp {

/// Handle one rank uses to communicate with its siblings.  Abstract over
/// the transport; lifetime bounded by mp::run.
class Comm {
 public:
  Comm(int rank, int size, MpBackend backend, CommStats* stats,
       const NetworkSimulation& network, const FaultPlan& faults)
      : rank_(rank), size_(size), backend_(backend), stats_(stats),
        network_(network), faults_(faults) {}
  virtual ~Comm() = default;

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  /// The paper calls rank 0 the "parent processor".
  [[nodiscard]] bool is_parent() const { return rank_ == 0; }
  /// Which transport this job runs on.
  [[nodiscard]] MpBackend backend() const { return backend_; }

  [[nodiscard]] CommStats& stats() { return *stats_; }

  /// Hands rank 0's final payload to the launcher: JobStats::result.  On
  /// the threads backend the caller's lambda can capture results directly
  /// and this is rarely needed; on the process backend it is the ONLY way
  /// data crosses back from the worker processes, so drivers that must
  /// work on both serialize through here.
  virtual void set_result(std::vector<std::uint8_t> blob) = 0;

  /// Synchronizes all ranks.
  void barrier() {
    fault_point(CommOp::Barrier);
    const OpTimer ot(stats());
    ++stats().barriers;
    do_barrier();
  }

  // ---------------------------------------------------------------- reduce

  /// In-place element-wise all-reduce with a binary op, combining rank
  /// contributions in rank order (deterministic).  All ranks must pass
  /// vectors of identical length.
  template <typename T, typename BinaryOp>
  void allreduce(std::vector<T>& data, BinaryOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Allreduce);
    const OpTimer ot(stats());
    ++stats().reduces;
    stats().collective_bytes += data.size() * sizeof(T);
    simulate_delay(data.size() * sizeof(T));
    begin_exchange(CommOp::Allreduce, data.data(), data.size() * sizeof(T));
    std::vector<T> combined(peer<T>(0), peer<T>(0) + peer_count<T>(0));
    require(combined.size() == data.size(),
            "allreduce: ranks disagree on vector length");
    for (int r = 1; r < size(); ++r) {
      const T* src = peer<T>(r);
      require(peer_count<T>(r) == data.size(),
              "allreduce: ranks disagree on vector length");
      for (std::size_t i = 0; i < combined.size(); ++i) {
        combined[i] = op(combined[i], src[i]);
      }
    }
    end_exchange();
    data = std::move(combined);
  }

  /// Element-wise sum all-reduce (the paper's Reduce-with-sum primitive,
  /// result available on every rank as the paper specifies).
  template <typename T>
  void allreduce_sum(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return static_cast<T>(a + b); });
  }

  template <typename T>
  void allreduce_max(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return std::max(a, b); });
  }

  template <typename T>
  void allreduce_min(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return std::min(a, b); });
  }

  /// Scalar all-reduce sum convenience.
  template <typename T>
  [[nodiscard]] T allreduce_sum_scalar(T value) {
    std::vector<T> v{value};
    allreduce_sum(v);
    return v[0];
  }

  /// Element-wise logical-OR all-reduce over byte flags.
  void allreduce_or(std::vector<std::uint8_t>& flags) {
    allreduce(flags, [](std::uint8_t a, std::uint8_t b) {
      return static_cast<std::uint8_t>(a | b);
    });
  }

  // ------------------------------------------------------------- broadcast

  /// Broadcasts `data` from `root` to all ranks (resizing as needed).
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Bcast);
    const OpTimer ot(stats());
    ++stats().bcasts;
    simulate_delay(data.size() * sizeof(T));
    begin_exchange(CommOp::Bcast, data.data(), data.size() * sizeof(T));
    const std::size_t n = peer_count<T>(root);
    if (rank_ != root) {
      stats().collective_bytes += n * sizeof(T);
      data.assign(peer<T>(root), peer<T>(root) + n);
    } else {
      stats().collective_bytes += n * sizeof(T) * static_cast<std::size_t>(size() - 1);
    }
    end_exchange();
  }

  /// Broadcasts one trivially copyable value from `root`.
  template <typename T>
  [[nodiscard]] T bcast_scalar(T value, int root = 0) {
    std::vector<T> v{value};
    bcast(v, root);
    return v[0];
  }

  // ---------------------------------------------------------------- gather

  /// Gathers variable-length contributions onto `root`, concatenated in
  /// rank order (the paper: "concatenates the CDU dimension and bin arrays
  /// in the rank order of the processors").  Non-root ranks get {}.
  template <typename T>
  [[nodiscard]] std::vector<T> gatherv(const std::vector<T>& local, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Gatherv);
    const OpTimer ot(stats());
    ++stats().gathers;
    // Sender side: this rank's contribution travels to the root.
    stats().collective_bytes += local.size() * sizeof(T);
    simulate_delay(local.size() * sizeof(T));
    begin_exchange(CommOp::Gatherv, local.data(), local.size() * sizeof(T));
    std::vector<T> result;
    if (rank_ == root) {
      std::size_t total = 0;
      for (int r = 0; r < size(); ++r) total += peer_count<T>(r);
      result.reserve(total);
      for (int r = 0; r < size(); ++r) {
        result.insert(result.end(), peer<T>(r), peer<T>(r) + peer_count<T>(r));
      }
      // Receiver side: everything that arrived from other ranks (the root's
      // own contribution is self-delivery and only counts as sent above).
      stats().collective_bytes += (total - local.size()) * sizeof(T);
    }
    end_exchange();
    return result;
  }

  /// Gathers variable-length contributions onto every rank, rank-ordered.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& local) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Allgatherv);
    const OpTimer ot(stats());
    ++stats().gathers;
    simulate_delay(local.size() * sizeof(T));
    begin_exchange(CommOp::Allgatherv, local.data(), local.size() * sizeof(T));
    std::vector<T> result;
    std::size_t total = 0;
    for (int r = 0; r < size(); ++r) total += peer_count<T>(r);
    result.reserve(total);
    for (int r = 0; r < size(); ++r) {
      result.insert(result.end(), peer<T>(r), peer<T>(r) + peer_count<T>(r));
    }
    // Own contribution sent once plus everything received from other ranks
    // = the full concatenated payload (gatherv's accounting applied at
    // every rank, since every rank is a receiver here).
    stats().collective_bytes += total * sizeof(T);
    end_exchange();
    return result;
  }

  /// Per-rank contribution sizes visible to every rank (an allgather of the
  /// local length) — used by the drivers to rebuild offsets after gatherv.
  template <typename T>
  [[nodiscard]] std::vector<std::size_t> allgather_count(const std::vector<T>& local) {
    std::vector<std::size_t> counts{local.size()};
    return allgatherv(counts);
  }

  /// Root-only reduce: like allreduce, but only `root`'s vector is
  /// replaced with the combined result (others keep their input).  Matches
  /// MPI_Reduce; pMAFIA itself always wants allreduce semantics ("stores it
  /// on every processor"), but the primitive completes the collective set.
  template <typename T, typename BinaryOp>
  void reduce(std::vector<T>& data, BinaryOp op, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Reduce);
    const OpTimer ot(stats());
    ++stats().reduces;
    stats().collective_bytes += data.size() * sizeof(T);
    simulate_delay(data.size() * sizeof(T));
    begin_exchange(CommOp::Reduce, data.data(), data.size() * sizeof(T));
    std::vector<T> combined;
    if (rank_ == root) {
      combined.assign(peer<T>(0), peer<T>(0) + peer_count<T>(0));
      require(combined.size() == data.size(),
              "reduce: ranks disagree on vector length");
      for (int r = 1; r < size(); ++r) {
        const T* src = peer<T>(r);
        for (std::size_t i = 0; i < combined.size(); ++i) {
          combined[i] = op(combined[i], src[i]);
        }
      }
    }
    end_exchange();
    if (rank_ == root) data = std::move(combined);
  }

  /// Scatters rank-indexed variable-length slices from `root`: rank r
  /// receives `slices[r]` (only root's `slices` is read).  Matches
  /// MPI_Scatterv.  Counted as one scatter operation: the root counts the
  /// bytes leaving it, every other rank counts the slice it receives —
  /// implemented directly on the exchange window (two rounds: lengths, then
  /// the flattened payload) rather than via broadcasts, so no rank is
  /// charged for slices addressed to its siblings.
  template <typename T>
  [[nodiscard]] std::vector<T> scatterv(const std::vector<std::vector<T>>& slices,
                                        int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point(CommOp::Scatterv);
    const OpTimer ot(stats());
    ++stats().scatters;
    std::vector<T> flat;
    std::vector<std::size_t> lengths;
    if (rank_ == root) {
      require(slices.size() == static_cast<std::size_t>(size()),
              "scatterv: need one slice per rank");
      for (const auto& s : slices) {
        lengths.push_back(s.size());
        flat.insert(flat.end(), s.begin(), s.end());
      }
    }
    // Round 1: per-rank lengths (only the root's slot is read).
    simulate_delay(lengths.size() * sizeof(std::size_t));
    begin_exchange(CommOp::Scatterv, lengths.data(),
                   lengths.size() * sizeof(std::size_t));
    const std::vector<std::size_t> all_lengths(
        peer<std::size_t>(root),
        peer<std::size_t>(root) + peer_count<std::size_t>(root));
    end_exchange();
    require(all_lengths.size() == static_cast<std::size_t>(size()),
            "scatterv: need one slice per rank");
    // Round 2: the flattened payload; each rank copies out its own slice.
    simulate_delay(flat.size() * sizeof(T));
    begin_exchange(CommOp::Scatterv, flat.data(), flat.size() * sizeof(T));
    std::size_t offset = 0;
    for (int r = 0; r < rank_; ++r) offset += all_lengths[static_cast<std::size_t>(r)];
    const std::size_t mine = all_lengths[static_cast<std::size_t>(rank_)];
    std::vector<T> result;
    if (mine > 0) {
      const T* base = peer<T>(root);
      result.assign(base + offset, base + offset + mine);
    }
    end_exchange();
    if (rank_ == root) {
      // Sender side: every slice addressed to another rank (the root's own
      // slice is self-delivery and free).
      stats().collective_bytes += (flat.size() - mine) * sizeof(T);
    } else {
      stats().collective_bytes += mine * sizeof(T);
    }
    return result;
  }

  /// All-to-all variable-length exchange: `outgoing[r]` goes to rank r;
  /// returns incoming[s] = what rank s sent here, rank-ordered.  Matches
  /// MPI_Alltoallv.  Implemented over the mailboxes.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing, int tag = kAlltoallTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(outgoing.size() == static_cast<std::size_t>(size()),
            "alltoallv: need one payload per rank");
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      send(r, tag, outgoing[static_cast<std::size_t>(r)]);
    }
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
    incoming[static_cast<std::size_t>(rank_)] =
        outgoing[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      incoming[static_cast<std::size_t>(r)] = recv<T>(r, tag);
    }
    return incoming;
  }

  static constexpr int kAlltoallTag = 0x7fff0000;

  // ---------------------------------------------------------- point-to-point

  /// Sends a copy of `payload` to `dest` under `tag`.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(dest >= 0 && dest < size(), "send: bad destination rank");
    fault_point(CommOp::Send);
    const OpTimer ot(stats());
    ++stats().p2p_messages;
    stats().p2p_bytes += payload.size() * sizeof(T);
    simulate_delay(payload.size() * sizeof(T));
    do_send(dest, tag, payload.data(), payload.size() * sizeof(T));
  }

  /// Blocks for a message from `source` with `tag`; returns its payload.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(source >= 0 && source < size(), "recv: bad source rank");
    fault_point(CommOp::Recv);
    const OpTimer ot(stats());
    std::vector<std::uint8_t> payload = do_recv(source, tag);
    require(payload.size() % sizeof(T) == 0, "recv: payload size mismatch");
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), payload.data(), payload.size());
    return out;
  }

 protected:
  // ---- transport primitives each backend implements -----------------------

  /// Synchronizes all ranks (one rendezvous, no payload window).
  virtual void do_barrier() = 0;

  /// Publishes [data, data+bytes) as this rank's contribution to one
  /// exchange round of `op` and blocks until EVERY rank's contribution for
  /// the round is readable through peer_ptr/peer_len.  The window stays
  /// valid until end_exchange().
  virtual void begin_exchange(CommOp op, const void* data,
                              std::size_t bytes) = 0;

  /// Rank r's published payload for the round in flight.
  [[nodiscard]] virtual const void* peer_ptr(int r) = 0;
  [[nodiscard]] virtual std::size_t peer_len(int r) = 0;

  /// Closes the round: after this returns, no rank may still be reading a
  /// sibling's slot (the threads transport backs this with a barrier; the
  /// process transport's double-buffered board makes it a no-op).
  virtual void end_exchange() = 0;

  /// Delivers [data, data+bytes) to `dest`'s mailbox under `tag`.
  virtual void do_send(int dest, int tag, const void* data,
                       std::size_t bytes) = 0;

  /// Blocks for a mailbox message from `source` with `tag`.
  [[nodiscard]] virtual std::vector<std::uint8_t> do_recv(int source,
                                                          int tag) = 0;

  /// Executes a Kill fault: the threads transport throws FaultError so the
  /// runtime's failure propagation unwinds the job; the process transport
  /// notifies the coordinator (which re-throws the exact same message in
  /// the launching process) and then delivers a REAL SIGKILL to itself.
  [[noreturn]] virtual void fault_die(const std::string& message,
                                      std::uint64_t op_index, CommOp op) {
    (void)op_index;
    (void)op;
    throw FaultError(message);
  }

  // ---- shared machinery ---------------------------------------------------

  /// Entry gate of every communication primitive: counts this rank's ops
  /// and fires the matching fault-plan spec.  Runs BEFORE the op publishes
  /// anything to the exchange window or touches a mailbox, so a killed rank
  /// leaves no dangling slot pointer and siblings already blocked in the
  /// op unwind through the job abort rather than reading stale state.
  /// Wrappers (allreduce_sum, alltoallv, ...) don't call this — only the
  /// outermost primitives do, keeping op indices aligned with the op
  /// sequence a trace would show.
  void fault_point(CommOp op) {
    const std::uint64_t idx = ops_seen_++;
    const std::uint64_t occurrence =
        op_counts_[static_cast<std::size_t>(op)]++;
    if (faults_.empty()) return;
    const FaultSpec* spec = faults_.match(rank_, idx, op, occurrence);
    if (spec == nullptr) return;
    if (spec->action == FaultAction::Delay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spec->delay_seconds));
      return;
    }
    fault_die("injected fault: rank " + std::to_string(rank_) +
                  " killed at comm op " + std::to_string(idx) + " (" +
                  comm_op_name(op) + ")",
              idx, op);
  }

  /// RAII accumulator for CommStats::comm_seconds: times one top-level comm
  /// call, barrier waits included (so load-imbalance stall is visible, just
  /// as it is in MPI communication profiles).  Only the outermost primitive
  /// of a call carries one — wrappers (allreduce_sum, alltoallv over
  /// send/recv, ...) must not double-count.
  struct OpTimer {
    explicit OpTimer(CommStats& s) : stats(s) {}
    ~OpTimer() { stats.comm_seconds += clock.seconds(); }
    OpTimer(const OpTimer&) = delete;
    OpTimer& operator=(const OpTimer&) = delete;
    CommStats& stats;
    Timer clock;
  };

  /// Stalls this rank per the network simulation (no-op by default).
  void simulate_delay(std::size_t bytes) const {
    const double s = network_.delay_for(bytes);
    if (s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
  }

  template <typename T>
  [[nodiscard]] const T* peer(int r) {
    return static_cast<const T*>(peer_ptr(r));
  }

  template <typename T>
  [[nodiscard]] std::size_t peer_count(int r) {
    return peer_len(r) / sizeof(T);
  }

  const int rank_;
  const int size_;
  const MpBackend backend_;
  CommStats* stats_;
  NetworkSimulation network_;
  FaultPlan faults_;
  /// Global comm-op counter (the index the fault plan fires against) plus
  /// per-kind occurrence counters (for name-addressed fault specs).
  std::uint64_t ops_seen_ = 0;
  std::array<std::uint64_t, kNumCommOps> op_counts_{};
};

/// How one worker process ended (process backend; threads backend leaves
/// rank_exits empty).  signal != 0 means killed by that signal.
struct RankExit {
  int code = 0;
  int signal = 0;
};

/// Result of one SPMD job: per-rank communication stats plus the aggregate,
/// the backend it ran on, per-rank exit statuses (process backend), and
/// rank 0's set_result payload.
struct JobStats {
  std::vector<CommStats> per_rank;
  MpBackend backend = MpBackend::Threads;
  std::vector<RankExit> rank_exits;
  std::vector<std::uint8_t> result;

  [[nodiscard]] CommStats total() const {
    CommStats t;
    for (const auto& s : per_rank) t.merge(s);
    return t;
  }
};

/// Per-job runtime knobs: transport selection, interconnect emulation
/// (NetworkSimulation::sp2() for the paper's switch), the deterministic
/// fault-injection plan, and the robustness knobs of the process backend.
struct RunOptions {
  NetworkSimulation network;
  FaultPlan faults;
  MpBackend backend = MpBackend::Threads;
  /// Longest any rank may block in one collective or mailbox wait before
  /// the job fails with a Fault-class error naming the rank and op.
  /// 0 = wait forever (the default: a healthy job has no natural bound).
  double deadline_seconds = 0.0;
  /// Per-rank shared-memory slot capacity on the process backend; payloads
  /// larger than this spill over the coordinator socket instead.
  std::size_t shm_slot_bytes = 256 * 1024;
};

/// Launches `p` SPMD ranks running `fn(comm)` and joins them.
/// Failure contract: if any rank throws, the job is aborted — every
/// sibling blocked in a barrier, collective, or mailbox wait unwinds with
/// AbortedError — all ranks are joined (threads) or reaped (process: no
/// orphan worker survives any exit path), and exactly one exception
/// reaches the caller: the lowest failed rank's mafia::Error rethrown
/// as-is, or, for a foreign exception type, a mafia::Error
/// (ErrorClass::Internal) wrapping its message with the rank attached.
/// The runtime never deadlocks on a failed rank and never lets an
/// exception escape a rank thread into std::terminate.
JobStats run(int p, const std::function<void(Comm&)>& fn,
             const RunOptions& options);

/// Convenience overload: network emulation only, no fault plan.
JobStats run(int p, const std::function<void(Comm&)>& fn,
             const NetworkSimulation& network = {});

}  // namespace mafia::mp
