// SPMD message-passing runtime: the repo's stand-in for MPI on the IBM SP2.
//
// The paper runs pMAFIA "in the Single Program Multiple Data (SPMD) mode,
// where the same program runs on multiple processors but uses portions of
// the data assigned to the processor" and communicates with MPI's Reduce /
// Broadcast / point-to-point primitives (Section 4).  This runtime provides
// exactly those semantics over std::thread:
//
//   * Runtime::run(p, fn) launches p ranks, each receiving a Comm;
//   * ranks share NO algorithm state — all exchange goes through the Comm
//     (collectives or mailboxes), so porting to real MPI is mechanical;
//   * every collective combines contributions in rank order, making parallel
//     runs bit-deterministic (tested: serial == parallel cluster sets);
//   * CommStats counts payload bytes and operations so benches can report
//     measured communication volume and apply the Section 4.5 cost model.
//
// Collective implementation: a shared "exchange board" holds one slot per
// rank (pointer + length).  Each collective is publish -> barrier ->
// combine -> barrier -> write-back, which is safe because reads of rank r's
// slot happen strictly between the two barriers that bracket r's writes.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "mp/barrier.hpp"
#include "mp/faults.hpp"
#include "mp/mailbox.hpp"
#include "mp/stats.hpp"

namespace mafia::mp {

class Comm;

namespace detail {

/// State shared by all ranks of one SPMD job.
struct Context {
  explicit Context(int p)
      : size(p), barrier(static_cast<std::size_t>(p)), mailboxes(p),
        slot_ptr(p, nullptr), slot_len(p, 0), stats(p), ops_seen(p, 0) {}

  const int size;
  Barrier barrier;
  std::vector<Mailbox> mailboxes;
  // Exchange board for collectives (valid only between the barriers of the
  // collective currently in flight).
  std::vector<const void*> slot_ptr;
  std::vector<std::size_t> slot_len;
  std::vector<CommStats> stats;
  // Per-rank count of comm ops entered (each rank touches only its own
  // entry) — the op index the fault plan fires against.
  std::vector<std::uint64_t> ops_seen;
  NetworkSimulation network;  ///< zero = no emulated delay
  FaultPlan faults;           ///< empty = no injected faults

  void interrupt_all() {
    barrier.abort();
    for (auto& mb : mailboxes) mb.interrupt();
  }
};

}  // namespace detail

/// Handle one rank uses to communicate with its siblings.  Move-only view;
/// lifetime bounded by Runtime::run.
class Comm {
 public:
  Comm(int rank, detail::Context& ctx) : rank_(rank), ctx_(ctx) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return ctx_.size; }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  /// The paper calls rank 0 the "parent processor".
  [[nodiscard]] bool is_parent() const { return rank_ == 0; }

  [[nodiscard]] CommStats& stats() { return ctx_.stats[static_cast<std::size_t>(rank_)]; }

  /// Synchronizes all ranks.
  void barrier() {
    fault_point("barrier");
    const OpTimer ot(stats());
    ++stats().barriers;
    ctx_.barrier.wait();
  }

  // ---------------------------------------------------------------- reduce

  /// In-place element-wise all-reduce with a binary op, combining rank
  /// contributions in rank order (deterministic).  All ranks must pass
  /// vectors of identical length.
  template <typename T, typename BinaryOp>
  void allreduce(std::vector<T>& data, BinaryOp op) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("allreduce");
    const OpTimer ot(stats());
    ++stats().reduces;
    stats().collective_bytes += data.size() * sizeof(T);
    publish(data.data(), data.size() * sizeof(T));
    ctx_.barrier.wait();
    std::vector<T> combined(peer<T>(0), peer<T>(0) + peer_count<T>(0));
    require(combined.size() == data.size(),
            "allreduce: ranks disagree on vector length");
    for (int r = 1; r < size(); ++r) {
      const T* src = peer<T>(r);
      require(peer_count<T>(r) == data.size(),
              "allreduce: ranks disagree on vector length");
      for (std::size_t i = 0; i < combined.size(); ++i) {
        combined[i] = op(combined[i], src[i]);
      }
    }
    ctx_.barrier.wait();
    data = std::move(combined);
  }

  /// Element-wise sum all-reduce (the paper's Reduce-with-sum primitive,
  /// result available on every rank as the paper specifies).
  template <typename T>
  void allreduce_sum(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return static_cast<T>(a + b); });
  }

  template <typename T>
  void allreduce_max(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return std::max(a, b); });
  }

  template <typename T>
  void allreduce_min(std::vector<T>& data) {
    allreduce(data, [](T a, T b) { return std::min(a, b); });
  }

  /// Scalar all-reduce sum convenience.
  template <typename T>
  [[nodiscard]] T allreduce_sum_scalar(T value) {
    std::vector<T> v{value};
    allreduce_sum(v);
    return v[0];
  }

  /// Element-wise logical-OR all-reduce over byte flags.
  void allreduce_or(std::vector<std::uint8_t>& flags) {
    allreduce(flags, [](std::uint8_t a, std::uint8_t b) {
      return static_cast<std::uint8_t>(a | b);
    });
  }

  // ------------------------------------------------------------- broadcast

  /// Broadcasts `data` from `root` to all ranks (resizing as needed).
  template <typename T>
  void bcast(std::vector<T>& data, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("bcast");
    const OpTimer ot(stats());
    ++stats().bcasts;
    publish(data.data(), data.size() * sizeof(T));
    ctx_.barrier.wait();
    const std::size_t n = peer_count<T>(root);
    if (rank_ != root) {
      stats().collective_bytes += n * sizeof(T);
      data.assign(peer<T>(root), peer<T>(root) + n);
    } else {
      stats().collective_bytes += n * sizeof(T) * static_cast<std::size_t>(size() - 1);
    }
    ctx_.barrier.wait();
  }

  /// Broadcasts one trivially copyable value from `root`.
  template <typename T>
  [[nodiscard]] T bcast_scalar(T value, int root = 0) {
    std::vector<T> v{value};
    bcast(v, root);
    return v[0];
  }

  // ---------------------------------------------------------------- gather

  /// Gathers variable-length contributions onto `root`, concatenated in
  /// rank order (the paper: "concatenates the CDU dimension and bin arrays
  /// in the rank order of the processors").  Non-root ranks get {}.
  template <typename T>
  [[nodiscard]] std::vector<T> gatherv(const std::vector<T>& local, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("gatherv");
    const OpTimer ot(stats());
    ++stats().gathers;
    // Sender side: this rank's contribution travels to the root.
    stats().collective_bytes += local.size() * sizeof(T);
    publish(local.data(), local.size() * sizeof(T));
    ctx_.barrier.wait();
    std::vector<T> result;
    if (rank_ == root) {
      std::size_t total = 0;
      for (int r = 0; r < size(); ++r) total += peer_count<T>(r);
      result.reserve(total);
      for (int r = 0; r < size(); ++r) {
        result.insert(result.end(), peer<T>(r), peer<T>(r) + peer_count<T>(r));
      }
      // Receiver side: everything that arrived from other ranks (the root's
      // own contribution is self-delivery and only counts as sent above).
      stats().collective_bytes += (total - local.size()) * sizeof(T);
    }
    ctx_.barrier.wait();
    return result;
  }

  /// Gathers variable-length contributions onto every rank, rank-ordered.
  template <typename T>
  [[nodiscard]] std::vector<T> allgatherv(const std::vector<T>& local) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("allgatherv");
    const OpTimer ot(stats());
    ++stats().gathers;
    publish(local.data(), local.size() * sizeof(T));
    ctx_.barrier.wait();
    std::vector<T> result;
    std::size_t total = 0;
    for (int r = 0; r < size(); ++r) total += peer_count<T>(r);
    result.reserve(total);
    for (int r = 0; r < size(); ++r) {
      result.insert(result.end(), peer<T>(r), peer<T>(r) + peer_count<T>(r));
    }
    // Own contribution sent once plus everything received from other ranks
    // = the full concatenated payload (gatherv's accounting applied at
    // every rank, since every rank is a receiver here).
    stats().collective_bytes += total * sizeof(T);
    ctx_.barrier.wait();
    return result;
  }

  /// Per-rank contribution sizes visible to every rank (an allgather of the
  /// local length) — used by the drivers to rebuild offsets after gatherv.
  template <typename T>
  [[nodiscard]] std::vector<std::size_t> allgather_count(const std::vector<T>& local) {
    std::vector<std::size_t> counts{local.size()};
    return allgatherv(counts);
  }

  /// Root-only reduce: like allreduce, but only `root`'s vector is
  /// replaced with the combined result (others keep their input).  Matches
  /// MPI_Reduce; pMAFIA itself always wants allreduce semantics ("stores it
  /// on every processor"), but the primitive completes the collective set.
  template <typename T, typename BinaryOp>
  void reduce(std::vector<T>& data, BinaryOp op, int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("reduce");
    const OpTimer ot(stats());
    ++stats().reduces;
    stats().collective_bytes += data.size() * sizeof(T);
    publish(data.data(), data.size() * sizeof(T));
    ctx_.barrier.wait();
    std::vector<T> combined;
    if (rank_ == root) {
      combined.assign(peer<T>(0), peer<T>(0) + peer_count<T>(0));
      require(combined.size() == data.size(),
              "reduce: ranks disagree on vector length");
      for (int r = 1; r < size(); ++r) {
        const T* src = peer<T>(r);
        for (std::size_t i = 0; i < combined.size(); ++i) {
          combined[i] = op(combined[i], src[i]);
        }
      }
    }
    ctx_.barrier.wait();
    if (rank_ == root) data = std::move(combined);
  }

  /// Scatters rank-indexed variable-length slices from `root`: rank r
  /// receives `slices[r]` (only root's `slices` is read).  Matches
  /// MPI_Scatterv.  Counted as one scatter operation: the root counts the
  /// bytes leaving it, every other rank counts the slice it receives —
  /// implemented directly on the exchange board (two rounds: lengths, then
  /// the flattened payload) rather than via broadcasts, so no rank is
  /// charged for slices addressed to its siblings.
  template <typename T>
  [[nodiscard]] std::vector<T> scatterv(const std::vector<std::vector<T>>& slices,
                                        int root = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    fault_point("scatterv");
    const OpTimer ot(stats());
    ++stats().scatters;
    std::vector<T> flat;
    std::vector<std::size_t> lengths;
    if (rank_ == root) {
      require(slices.size() == static_cast<std::size_t>(size()),
              "scatterv: need one slice per rank");
      for (const auto& s : slices) {
        lengths.push_back(s.size());
        flat.insert(flat.end(), s.begin(), s.end());
      }
    }
    // Round 1: per-rank lengths (only the root's slot is read).
    publish(lengths.data(), lengths.size() * sizeof(std::size_t));
    ctx_.barrier.wait();
    const std::vector<std::size_t> all_lengths(
        peer<std::size_t>(root),
        peer<std::size_t>(root) + peer_count<std::size_t>(root));
    ctx_.barrier.wait();
    require(all_lengths.size() == static_cast<std::size_t>(size()),
            "scatterv: need one slice per rank");
    // Round 2: the flattened payload; each rank copies out its own slice.
    publish(flat.data(), flat.size() * sizeof(T));
    ctx_.barrier.wait();
    std::size_t offset = 0;
    for (int r = 0; r < rank_; ++r) offset += all_lengths[static_cast<std::size_t>(r)];
    const std::size_t mine = all_lengths[static_cast<std::size_t>(rank_)];
    std::vector<T> result;
    if (mine > 0) {
      const T* base = peer<T>(root);
      result.assign(base + offset, base + offset + mine);
    }
    ctx_.barrier.wait();
    if (rank_ == root) {
      // Sender side: every slice addressed to another rank (the root's own
      // slice is self-delivery and free).
      stats().collective_bytes += (flat.size() - mine) * sizeof(T);
    } else {
      stats().collective_bytes += mine * sizeof(T);
    }
    return result;
  }

  /// All-to-all variable-length exchange: `outgoing[r]` goes to rank r;
  /// returns incoming[s] = what rank s sent here, rank-ordered.  Matches
  /// MPI_Alltoallv.  Implemented over the mailboxes.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& outgoing, int tag = kAlltoallTag) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(outgoing.size() == static_cast<std::size_t>(size()),
            "alltoallv: need one payload per rank");
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      send(r, tag, outgoing[static_cast<std::size_t>(r)]);
    }
    std::vector<std::vector<T>> incoming(static_cast<std::size_t>(size()));
    incoming[static_cast<std::size_t>(rank_)] =
        outgoing[static_cast<std::size_t>(rank_)];
    for (int r = 0; r < size(); ++r) {
      if (r == rank_) continue;
      incoming[static_cast<std::size_t>(r)] = recv<T>(r, tag);
    }
    return incoming;
  }

  static constexpr int kAlltoallTag = 0x7fff0000;

  // ---------------------------------------------------------- point-to-point

  /// Sends a copy of `payload` to `dest` under `tag`.
  template <typename T>
  void send(int dest, int tag, const std::vector<T>& payload) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(dest >= 0 && dest < size(), "send: bad destination rank");
    fault_point("send");
    const OpTimer ot(stats());
    ++stats().p2p_messages;
    stats().p2p_bytes += payload.size() * sizeof(T);
    simulate_delay(payload.size() * sizeof(T));
    ctx_.mailboxes[static_cast<std::size_t>(dest)].push(
        rank_, tag, payload.data(), payload.size() * sizeof(T));
  }

  /// Blocks for a message from `source` with `tag`; returns its payload.
  template <typename T>
  [[nodiscard]] std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    require(source >= 0 && source < size(), "recv: bad source rank");
    fault_point("recv");
    const OpTimer ot(stats());
    Message msg = ctx_.mailboxes[static_cast<std::size_t>(rank_)].pop(
        source, tag, ctx_.barrier);
    require(msg.payload.size() % sizeof(T) == 0, "recv: payload size mismatch");
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    return out;
  }

 private:
  /// Entry gate of every communication primitive: counts this rank's ops
  /// and fires the matching fault-plan spec.  Runs BEFORE the op publishes
  /// anything to the exchange board or touches a mailbox, so a killed rank
  /// leaves no dangling slot pointer and siblings already blocked in the
  /// op unwind through the job abort rather than reading stale state.
  /// Wrappers (allreduce_sum, alltoallv, ...) don't call this — only the
  /// outermost primitives do, keeping op indices aligned with the op
  /// sequence a trace would show.
  void fault_point(const char* op) {
    const std::uint64_t idx = ctx_.ops_seen[static_cast<std::size_t>(rank_)]++;
    if (ctx_.faults.empty()) return;
    const FaultSpec* spec = ctx_.faults.match(rank_, idx);
    if (spec == nullptr) return;
    if (spec->action == FaultAction::Delay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(spec->delay_seconds));
      return;
    }
    throw FaultError("injected fault: rank " + std::to_string(rank_) +
                     " killed at comm op " + std::to_string(idx) + " (" + op +
                     ")");
  }

  /// RAII accumulator for CommStats::comm_seconds: times one top-level comm
  /// call, barrier waits included (so load-imbalance stall is visible, just
  /// as it is in MPI communication profiles).  Only the outermost primitive
  /// of a call carries one — wrappers (allreduce_sum, alltoallv over
  /// send/recv, ...) must not double-count.
  struct OpTimer {
    explicit OpTimer(CommStats& s) : stats(s) {}
    ~OpTimer() { stats.comm_seconds += clock.seconds(); }
    OpTimer(const OpTimer&) = delete;
    OpTimer& operator=(const OpTimer&) = delete;
    CommStats& stats;
    Timer clock;
  };

  void publish(const void* ptr, std::size_t bytes) {
    ctx_.slot_ptr[static_cast<std::size_t>(rank_)] = ptr;
    ctx_.slot_len[static_cast<std::size_t>(rank_)] = bytes;
    simulate_delay(bytes);
  }

  /// Stalls this rank per the network simulation (no-op by default).
  void simulate_delay(std::size_t bytes) const {
    const double s = ctx_.network.delay_for(bytes);
    if (s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
  }

  template <typename T>
  [[nodiscard]] const T* peer(int r) const {
    return static_cast<const T*>(ctx_.slot_ptr[static_cast<std::size_t>(r)]);
  }

  template <typename T>
  [[nodiscard]] std::size_t peer_count(int r) const {
    return ctx_.slot_len[static_cast<std::size_t>(r)] / sizeof(T);
  }

  const int rank_;
  detail::Context& ctx_;
};

/// Result of one SPMD job: per-rank communication stats plus the aggregate.
struct JobStats {
  std::vector<CommStats> per_rank;

  [[nodiscard]] CommStats total() const {
    CommStats t;
    for (const auto& s : per_rank) t.merge(s);
    return t;
  }
};

/// Per-job runtime knobs: interconnect emulation (NetworkSimulation::sp2()
/// for the paper's switch) and the deterministic fault-injection plan.
struct RunOptions {
  NetworkSimulation network;
  FaultPlan faults;
};

/// Launches `p` SPMD ranks running `fn(comm)` and joins them.
/// Failure contract: if any rank throws, the job is aborted — every
/// sibling blocked in a barrier, collective, or mailbox wait unwinds with
/// AbortedError — all ranks are joined, and exactly one exception reaches
/// the caller: the lowest failed rank's mafia::Error rethrown as-is, or,
/// for a foreign exception type, a mafia::Error (ErrorClass::Internal)
/// wrapping its message with the rank attached.  The runtime never
/// deadlocks on a failed rank and never lets an exception escape a rank
/// thread into std::terminate.
JobStats run(int p, const std::function<void(Comm&)>& fn,
             const RunOptions& options);

/// Convenience overload: network emulation only, no fault plan.
JobStats run(int p, const std::function<void(Comm&)>& fn,
             const NetworkSimulation& network = {});

}  // namespace mafia::mp
