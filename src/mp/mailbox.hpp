// Point-to-point message queues for the SPMD runtime.
//
// Each rank owns one Mailbox.  send() copies the payload into the
// destination's queue (message-passing semantics: no shared mutable state
// between ranks); recv() blocks until a message matching (source, tag)
// arrives.  Matching is MPI-like: within one (source, tag) pair, messages
// are non-overtaking.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "mp/barrier.hpp"

namespace mafia::mp {

/// One queued point-to-point message.
struct Message {
  int source = -1;
  int tag = 0;
  std::vector<std::uint8_t> payload;
};

/// Blocking MPSC mailbox with (source, tag) matching and abort support.
class Mailbox {
 public:
  /// Enqueues a copy of [data, data+bytes) from `source` under `tag`.
  void push(int source, int tag, const void* data, std::size_t bytes) {
    Message msg;
    msg.source = source;
    msg.tag = tag;
    msg.payload.resize(bytes);
    if (bytes > 0) std::memcpy(msg.payload.data(), data, bytes);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_all();
  }

  /// Blocks until a message from `source` with `tag` is available and
  /// removes it.  Throws AbortedError if `abort_flag` fires while waiting.
  Message pop(int source, int tag, const Barrier& abort_flag) {
    return *pop_for(source, tag, abort_flag, 0.0);
  }

  /// Like pop(), but gives up after `timeout_seconds` (0 = wait forever)
  /// and returns nullopt — the caller converts the hang into a structured
  /// deadline error.
  std::optional<Message> pop_for(int source, int tag, const Barrier& abort_flag,
                                 double timeout_seconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_seconds));
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->source == source && it->tag == tag) {
          Message msg = std::move(*it);
          queue_.erase(it);
          return msg;
        }
      }
      if (abort_flag.aborted()) throw AbortedError();
      if (timeout_seconds > 0.0 &&
          std::chrono::steady_clock::now() >= deadline) {
        return std::nullopt;
      }
      cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }

  /// Wakes any blocked pop() so it can observe an abort.
  void interrupt() { cv_.notify_all(); }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace mafia::mp
