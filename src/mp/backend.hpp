// Transport selection and the communication-op vocabulary shared by the
// SPMD backends.
//
// The runtime has two transports behind the same Comm interface:
//
//   * MpBackend::Threads — p ranks as std::thread in one address space,
//     exchanging through a shared board (the original emulation; TSan-able).
//   * MpBackend::Process — p ranks as forked worker processes coordinated
//     over per-rank Unix-domain socket pairs plus a shared-memory slot
//     board (real failure domains: a rank can be SIGKILLed and the job
//     survives to report it).
//
// CommOp names every primitive once, so the fault planner (`--inject-fault
// 1:allreduce@2`), the process backend's wire frames, deadline errors, and
// trace labels all agree on the same vocabulary.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace mafia::mp {

/// Which transport mp::run uses to realize the SPMD job.
enum class MpBackend : std::uint8_t {
  Threads,  ///< ranks are std::thread in one address space
  Process,  ///< ranks are forked processes (real failure domains)
};

[[nodiscard]] inline const char* mp_backend_name(MpBackend backend) {
  return backend == MpBackend::Process ? "process" : "threads";
}

/// Parses a backend name ("threads" | "process"); throws a Usage-class
/// Error naming the valid values otherwise.
[[nodiscard]] inline MpBackend parse_mp_backend(const std::string& name) {
  if (name == "threads") return MpBackend::Threads;
  if (name == "process") return MpBackend::Process;
  throw Error("unknown mp backend '" + name + "' (valid: threads, process)");
}

/// True when this build/platform can run the process backend.  The fork +
/// shared-memory transport is POSIX-only, and ThreadSanitizer does not
/// follow forked children (its shadow state is per-process), so TSan
/// builds keep their coverage on the threads backend and skip this one.
[[nodiscard]] constexpr bool process_backend_supported() {
#if !defined(__linux__) && !defined(__APPLE__)
  return false;
#else
#if defined(__SANITIZE_THREAD__)
  return false;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
#endif
}

/// Every top-level communication primitive, in a stable order.  Values are
/// wire codes on the process backend's socket frames; names are what the
/// fault planner and deadline errors use.
enum class CommOp : std::uint32_t {
  Barrier = 0,
  Allreduce,
  Reduce,
  Bcast,
  Gatherv,
  Allgatherv,
  Scatterv,
  Send,
  Recv,
};

inline constexpr std::size_t kNumCommOps = 9;

inline constexpr std::array<const char*, kNumCommOps> kCommOpNames = {
    "barrier", "allreduce", "reduce",   "bcast", "gatherv",
    "allgatherv", "scatterv", "send", "recv"};

[[nodiscard]] inline const char* comm_op_name(CommOp op) {
  const auto i = static_cast<std::size_t>(op);
  return i < kNumCommOps ? kCommOpNames[i] : "unknown";
}

/// Looks up an op by its stable name; returns false when unknown.
[[nodiscard]] inline bool parse_comm_op(const std::string& name, CommOp* out) {
  for (std::size_t i = 0; i < kNumCommOps; ++i) {
    if (name == kCommOpNames[i]) {
      *out = static_cast<CommOp>(i);
      return true;
    }
  }
  return false;
}

/// "barrier, allreduce, ..." — for Usage errors listing the valid op names.
[[nodiscard]] inline std::string comm_op_names_joined() {
  std::string out;
  for (std::size_t i = 0; i < kNumCommOps; ++i) {
    if (i > 0) out += ", ";
    out += kCommOpNames[i];
  }
  return out;
}

}  // namespace mafia::mp
