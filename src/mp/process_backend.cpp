// Process transport for the SPMD runtime: ranks as forked processes.
//
// Topology: the launching process becomes a COORDINATOR (it is not a rank,
// so every rank — including rank 0 — is a killable failure domain).  It
// forks p workers and keeps one Unix-domain stream socket pair per rank.
// All control traffic (exchange rounds, mailbox sends/recvs, results,
// errors) moves over the sockets; collective payloads that fit move
// through a shared-memory slot board mapped before the forks.
//
// Exchange board: 2 generations x p slots x shm_slot_bytes, MAP_SHARED.
// Round k uses generation k % 2, so a rank publishing round k+2 can never
// clobber a slot a sibling is still reading from round k: entering round
// k+2 requires the round-(k+1) reply, which the coordinator only sends
// after every rank issued its round-(k+1) request — and a rank issues that
// request only after it finished reading round k.  The double buffer
// replaces the threads transport's release barrier.  Payloads larger than
// a slot spill inline over the socket instead.
//
// Robustness (the reason this backend exists):
//   * rank death — a worker's socket EOF (it was SIGKILLed, segfaulted, or
//     exited) is detected by the coordinator's poll loop, the child is
//     reaped with waitpid, and the job aborts: every other worker receives
//     an abort frame and unwinds with AbortedError, exactly like the
//     threads backend's interrupt_all;
//   * deadlines — with RunOptions::deadline_seconds set, a collective any
//     rank fails to enter in time, or a mailbox wait no send ever matches,
//     fails the job with a Fault-class error naming the rank and op
//     instead of hanging;
//   * orphan cleanup — workers arm PR_SET_PDEATHSIG(SIGKILL) so a dying
//     coordinator takes them along, and the coordinator SIGKILLs + reaps
//     every still-running worker on every exit path (including exceptions),
//     so no run leaves a stray process behind;
//   * injected faults are REAL here: a Kill spec makes the worker raise
//     SIGKILL against itself after telling the coordinator the exact
//     FaultError message the threads backend would have thrown, so both
//     backends fail byte-identically;
//   * per-rank exit statuses (code or signal) are captured and surfaced in
//     JobStats::rank_exits and, on failure, in the thrown Error's
//     detail_json (the CLI splices it into pmafia-error-v1).
#include "mp/process.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace mafia::mp {

namespace {

// ---------------------------------------------------------------- wire format

/// Frame types on the per-rank socket.  Worker -> coordinator: Exchange,
/// Send, Recv, Result, Done, Error, Dying.  Coordinator -> worker: Slots,
/// Message, Abort.
enum FrameType : std::uint32_t {
  kFrameExchange = 1,
  kFrameSend = 2,
  kFrameRecv = 3,
  kFrameResult = 4,
  kFrameDone = 5,
  kFrameError = 6,
  kFrameDying = 7,
  kFrameSlots = 8,
  kFrameMessage = 9,
  kFrameAbort = 10,
};

/// 16-byte frame header; `aux` carries the CommOp code (Exchange/Slots),
/// the ErrorClass + foreign bit (Error), and is 0 otherwise.
struct FrameHeader {
  std::uint32_t type = 0;
  std::uint32_t aux = 0;
  std::uint64_t len = 0;
};

/// kFrameError aux: low byte ErrorClass; this bit marks a non-mafia::Error
/// exception that must be re-wrapped like rethrow_normalized does.
constexpr std::uint32_t kErrorForeignBit = 0x100;

/// Worker exit codes (distinct from anything a user fn would exit with).
constexpr int kExitAborted = 120;  ///< unwound via AbortedError / abort frame
constexpr int kExitError = 121;    ///< reported a structured error frame

constexpr double kAbortGraceSeconds = 2.0;
constexpr int kPollMillis = 50;

[[nodiscard]] double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Full write with MSG_NOSIGNAL (a dead peer must surface as an error
/// return, never SIGPIPE).  Returns false on any failure.
bool write_all(int fd, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::send(fd, p, bytes, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Full read; returns false on EOF or error.
bool read_all(int fd, void* data, std::size_t bytes) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (bytes > 0) {
    const ssize_t n = ::read(fd, p, bytes);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    p += n;
    bytes -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_frame(int fd, std::uint32_t type, std::uint32_t aux,
                 const void* payload, std::size_t bytes) {
  FrameHeader h{type, aux, bytes};
  if (!write_all(fd, &h, sizeof(h))) return false;
  if (bytes > 0 && !write_all(fd, payload, bytes)) return false;
  return true;
}

void store_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
[[nodiscard]] std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}
void store_i32(std::uint8_t* p, std::int32_t v) { std::memcpy(p, &v, 4); }
[[nodiscard]] std::int32_t load_i32(const std::uint8_t* p) {
  std::int32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

// ------------------------------------------------------------ shared memory

/// 2 x p x slot_bytes anonymous shared mapping created before the forks.
class ShmBoard {
 public:
  ShmBoard(int p, std::size_t slot_bytes)
      : parties_(p), slot_bytes_(std::max<std::size_t>(slot_bytes, 64)) {
    total_ = slot_bytes_ * static_cast<std::size_t>(p) * 2;
    mem_ = ::mmap(nullptr, total_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (mem_ == MAP_FAILED) {
      throw ResourceError("mp: failed to map a " + std::to_string(total_) +
                          "-byte shared exchange board: " +
                          std::strerror(errno));
    }
  }

  ~ShmBoard() {
    if (mem_ != MAP_FAILED) ::munmap(mem_, total_);
  }

  ShmBoard(const ShmBoard&) = delete;
  ShmBoard& operator=(const ShmBoard&) = delete;

  [[nodiscard]] std::uint8_t* slot(int generation, int rank) {
    const std::size_t index = static_cast<std::size_t>(generation) *
                                  static_cast<std::size_t>(parties_) +
                              static_cast<std::size_t>(rank);
    return static_cast<std::uint8_t*>(mem_) + index * slot_bytes_;
  }

  [[nodiscard]] std::size_t slot_bytes() const { return slot_bytes_; }

 private:
  const int parties_;
  const std::size_t slot_bytes_;
  std::size_t total_ = 0;
  void* mem_ = MAP_FAILED;
};

// ---------------------------------------------------------------- worker side

/// A rank's Comm inside its worker process.  Every transport primitive is
/// a request frame to the coordinator; collective payloads ride the shared
/// board when they fit (the request then carries only the length).
class ProcessComm final : public Comm {
 public:
  ProcessComm(int rank, int size, int fd, ShmBoard& board,
              const RunOptions& options, CommStats* stats)
      : Comm(rank, size, MpBackend::Process, stats, options.network,
             options.faults),
        fd_(fd), board_(board), peer_shm_(static_cast<std::size_t>(size), 0),
        peer_lens_(static_cast<std::size_t>(size), 0),
        spill_(static_cast<std::size_t>(size)) {}

  void set_result(std::vector<std::uint8_t> blob) override {
    if (!write_frame(fd_, kFrameResult, 0, blob.data(), blob.size())) {
      throw AbortedError();
    }
  }

  /// Called by worker_main after fn returns cleanly: ships the rank's
  /// CommStats so the launching process can aggregate JobStats.
  void finish() {
    const auto words = stats().serialize();
    if (!write_frame(fd_, kFrameDone, 0, words.data(),
                     words.size() * sizeof(std::uint64_t))) {
      throw AbortedError();
    }
  }

 protected:
  void do_barrier() override {
    begin_exchange(CommOp::Barrier, nullptr, 0);
    end_exchange();
  }

  void begin_exchange(CommOp op, const void* data, std::size_t bytes) override {
    ++round_;
    const int generation = static_cast<int>(round_ & 1);
    const bool in_shm = bytes <= board_.slot_bytes();
    if (in_shm) {
      if (bytes > 0) std::memcpy(board_.slot(generation, rank_), data, bytes);
      std::uint8_t head[9];
      head[0] = 1;
      store_u64(head + 1, bytes);
      if (!write_frame(fd_, kFrameExchange, static_cast<std::uint32_t>(op),
                       head, sizeof(head))) {
        throw AbortedError();
      }
    } else {
      std::vector<std::uint8_t> request(9 + bytes);
      request[0] = 0;
      store_u64(request.data() + 1, bytes);
      std::memcpy(request.data() + 9, data, bytes);
      if (!write_frame(fd_, kFrameExchange, static_cast<std::uint32_t>(op),
                       request.data(), request.size())) {
        throw AbortedError();
      }
    }
    // Reply: per-rank {in_shm flag, length} table, then the socket-carried
    // payloads concatenated in rank order.
    const auto [header, payload] = read_reply();
    if (header.type != kFrameSlots) throw AbortedError();
    const std::size_t table = static_cast<std::size_t>(size_) * 9;
    if (payload.size() < table) throw AbortedError();
    std::size_t spill_at = table;
    for (int r = 0; r < size_; ++r) {
      const std::uint8_t* row = payload.data() + static_cast<std::size_t>(r) * 9;
      const bool peer_in_shm = row[0] != 0;
      const std::uint64_t len = load_u64(row + 1);
      peer_shm_[static_cast<std::size_t>(r)] = peer_in_shm ? 1 : 0;
      peer_lens_[static_cast<std::size_t>(r)] = static_cast<std::size_t>(len);
      if (peer_in_shm) {
        spill_[static_cast<std::size_t>(r)].clear();
      } else {
        if (spill_at + len > payload.size()) throw AbortedError();
        spill_[static_cast<std::size_t>(r)].assign(
            payload.begin() + static_cast<std::ptrdiff_t>(spill_at),
            payload.begin() + static_cast<std::ptrdiff_t>(spill_at + len));
        spill_at += len;
      }
    }
    exchange_generation_ = generation;
  }

  const void* peer_ptr(int r) override {
    if (peer_shm_[static_cast<std::size_t>(r)] != 0) {
      return board_.slot(exchange_generation_, r);
    }
    return spill_[static_cast<std::size_t>(r)].data();
  }

  std::size_t peer_len(int r) override {
    return peer_lens_[static_cast<std::size_t>(r)];
  }

  void end_exchange() override {
    // The double-buffered board needs no release step: the next round's
    // request is the read-completion signal (see the file header).
  }

  void do_send(int dest, int tag, const void* data, std::size_t bytes) override {
    std::vector<std::uint8_t> payload(8 + bytes);
    store_i32(payload.data(), dest);
    store_i32(payload.data() + 4, tag);
    if (bytes > 0) std::memcpy(payload.data() + 8, data, bytes);
    if (!write_frame(fd_, kFrameSend, 0, payload.data(), payload.size())) {
      throw AbortedError();
    }
  }

  std::vector<std::uint8_t> do_recv(int source, int tag) override {
    std::uint8_t request[8];
    store_i32(request, source);
    store_i32(request + 4, tag);
    if (!write_frame(fd_, kFrameRecv, 0, request, sizeof(request))) {
      throw AbortedError();
    }
    auto [header, payload] = read_reply();
    if (header.type != kFrameMessage) throw AbortedError();
    return std::move(payload);
  }

  [[noreturn]] void fault_die(const std::string& message,
                              std::uint64_t op_index, CommOp op) override {
    (void)op_index;
    // Tell the coordinator the exact FaultError message the threads
    // backend would throw, then die for real.  The kill is what makes the
    // fault genuine; the message is what keeps both backends byte-equal.
    (void)write_frame(fd_, kFrameDying, static_cast<std::uint32_t>(op),
                      message.data(), message.size());
    ::raise(SIGKILL);
    ::_exit(137);  // unreachable: SIGKILL cannot be blocked
  }

 private:
  /// Reads one coordinator reply; converts an abort frame (or a dead
  /// coordinator socket) into AbortedError, matching interrupt_all.
  std::pair<FrameHeader, std::vector<std::uint8_t>> read_reply() {
    FrameHeader header;
    if (!read_all(fd_, &header, sizeof(header))) throw AbortedError();
    std::vector<std::uint8_t> payload(header.len);
    if (header.len > 0 && !read_all(fd_, payload.data(), payload.size())) {
      throw AbortedError();
    }
    if (header.type == kFrameAbort) throw AbortedError();
    return {header, std::move(payload)};
  }

  const int fd_;
  ShmBoard& board_;
  std::uint64_t round_ = 0;
  int exchange_generation_ = 0;
  std::vector<std::uint8_t> peer_shm_;
  std::vector<std::size_t> peer_lens_;
  std::vector<std::vector<std::uint8_t>> spill_;
};

/// Worker process body.  Never returns: every path ends in _exit (no
/// atexit handlers, no stdio double-flush, no leak-checker in children).
[[noreturn]] void worker_main(int rank, int size, int fd, ShmBoard& board,
                              const RunOptions& options,
                              const std::function<void(Comm&)>& fn,
                              pid_t coordinator_pid) {
#ifdef __linux__
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // Re-check after arming the death signal: if the coordinator died in the
  // fork window, getppid already changed and the signal will never come.
  if (::getppid() != coordinator_pid) ::_exit(kExitAborted);
  try {
    CommStats stats;
    ProcessComm comm(rank, size, fd, board, options, &stats);
    fn(comm);
    comm.finish();
    ::_exit(0);
  } catch (const AbortedError&) {
    ::_exit(kExitAborted);
  } catch (const Error& e) {
    const auto aux = static_cast<std::uint32_t>(e.error_class());
    (void)write_frame(fd, kFrameError, aux, e.what(), std::strlen(e.what()));
    ::_exit(kExitError);
  } catch (const std::exception& e) {
    const auto aux =
        static_cast<std::uint32_t>(ErrorClass::Internal) | kErrorForeignBit;
    (void)write_frame(fd, kFrameError, aux, e.what(), std::strlen(e.what()));
    ::_exit(kExitError);
  } catch (...) {
    const auto aux =
        static_cast<std::uint32_t>(ErrorClass::Internal) | kErrorForeignBit;
    (void)write_frame(fd, kFrameError, aux, nullptr, 0);
    ::_exit(kExitError);
  }
}

// ----------------------------------------------------------- coordinator side

struct WorkerFailure {
  ErrorClass cls = ErrorClass::Internal;
  std::string message;
  bool foreign = false;  ///< needs the rethrow_normalized-style wrap
};

struct WorkerState {
  pid_t pid = -1;
  int fd = -1;
  bool done = false;       ///< sent kFrameDone
  bool closed = false;     ///< socket reached EOF (fd closed)
  bool reaped = false;     ///< waitpid collected the exit status
  bool killed_by_us = false;
  bool dying_seen = false;
  RankExit exit;
  std::optional<WorkerFailure> failure;
  CommStats stats;
  bool have_stats = false;
  // Pending blocking recv (at most one: workers block).
  bool recv_pending = false;
  int recv_source = 0;
  int recv_tag = 0;
  double recv_since = 0.0;
};

/// One collective round in flight on the exchange board.
struct Round {
  bool open = false;
  CommOp op = CommOp::Barrier;
  double started = 0.0;
  int arrived = 0;
  std::vector<std::uint8_t> present;
  std::vector<std::uint8_t> in_shm;
  std::vector<std::uint64_t> lens;
  std::vector<std::vector<std::uint8_t>> spill;

  void reset(int p) {
    open = false;
    arrived = 0;
    present.assign(static_cast<std::size_t>(p), 0);
    in_shm.assign(static_cast<std::size_t>(p), 0);
    lens.assign(static_cast<std::size_t>(p), 0);
    spill.assign(static_cast<std::size_t>(p), {});
  }
};

class Coordinator {
 public:
  Coordinator(int p, const RunOptions& options, std::vector<WorkerState> workers)
      : p_(p), options_(options), workers_(std::move(workers)),
        mail_(static_cast<std::size_t>(p)) {
    round_.reset(p);
  }

  ~Coordinator() {
    // Last line of orphan defense: whatever path exits this scope, no
    // worker process survives it.
    for (auto& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      if (!w.reaped && w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        int status = 0;
        while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
        }
        w.reaped = true;
      }
    }
  }

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  JobStats run() {
    while (!all_reaped()) {
      if (aborting_ && !grace_killed_ &&
          now_seconds() - abort_started_ > kAbortGraceSeconds) {
        kill_stragglers();
      }
      check_deadlines();
      poll_once();
    }
    return finalize();
  }

 private:
  [[nodiscard]] bool all_reaped() const {
    for (const auto& w : workers_) {
      if (!w.reaped) return false;
    }
    return true;
  }

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<int> ranks;
    for (int r = 0; r < p_; ++r) {
      const auto& w = workers_[static_cast<std::size_t>(r)];
      if (!w.closed && w.fd >= 0) {
        fds.push_back({w.fd, POLLIN, 0});
        ranks.push_back(r);
      }
    }
    if (fds.empty()) {
      // All sockets are closed but someone is unreaped: reap directly.
      reap_remaining();
      return;
    }
    const int n = ::poll(fds.data(), fds.size(), kPollMillis);
    if (n < 0) {
      if (errno == EINTR) return;
      fail(0, ErrorClass::Internal,
           "mp: coordinator poll failed: " + std::string(std::strerror(errno)),
           false);
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        handle_readable(ranks[i]);
      }
    }
  }

  void reap_remaining() {
    for (auto& w : workers_) {
      if (w.reaped || w.pid <= 0) continue;
      int status = 0;
      pid_t got;
      while ((got = ::waitpid(w.pid, &status, 0)) < 0 && errno == EINTR) {
      }
      record_exit(w, got >= 0 ? status : 0);
    }
  }

  void handle_readable(int rank) {
    auto& w = workers_[static_cast<std::size_t>(rank)];
    FrameHeader header;
    if (!read_all(w.fd, &header, sizeof(header))) {
      on_eof(rank);
      return;
    }
    std::vector<std::uint8_t> payload(header.len);
    if (header.len > 0 && !read_all(w.fd, payload.data(), payload.size())) {
      on_eof(rank);
      return;
    }
    switch (header.type) {
      case kFrameExchange:
        on_exchange(rank, static_cast<CommOp>(header.aux), payload);
        break;
      case kFrameSend:
        on_send(rank, payload);
        break;
      case kFrameRecv:
        on_recv(rank, payload);
        break;
      case kFrameResult:
        result_.assign(payload.begin(), payload.end());
        break;
      case kFrameDone:
        on_done(rank, payload);
        break;
      case kFrameError:
        on_error(rank, header.aux, payload);
        break;
      case kFrameDying:
        w.dying_seen = true;
        fail(rank, ErrorClass::Fault,
             std::string(payload.begin(), payload.end()), false);
        break;
      default:
        fail(rank, ErrorClass::Internal,
             "mp: rank " + std::to_string(rank) +
                 " sent an unknown frame type " + std::to_string(header.type),
             false);
        break;
    }
  }

  void on_exchange(int rank, CommOp op,
                   const std::vector<std::uint8_t>& payload) {
    if (aborting_) return;  // worker will read its abort frame next
    if (payload.size() < 9) {
      fail(rank, ErrorClass::Internal,
           "mp: rank " + std::to_string(rank) + " sent a short exchange frame",
           false);
      return;
    }
    if (!round_.open) {
      round_.open = true;
      round_.op = op;
      round_.started = now_seconds();
    } else if (round_.op != op) {
      fail(rank, ErrorClass::Internal,
           "mp: ranks diverged: rank " + std::to_string(rank) + " entered " +
               comm_op_name(op) + " while " + comm_op_name(round_.op) +
               " was in flight",
           false);
      return;
    }
    auto& r = round_;
    const auto idx = static_cast<std::size_t>(rank);
    r.present[idx] = 1;
    r.in_shm[idx] = payload[0];
    r.lens[idx] = load_u64(payload.data() + 1);
    if (payload[0] == 0) {
      r.spill[idx].assign(payload.begin() + 9, payload.end());
    } else {
      r.spill[idx].clear();
    }
    if (++r.arrived == p_) complete_round();
  }

  void complete_round() {
    std::size_t spill_total = 0;
    for (int r = 0; r < p_; ++r) {
      spill_total += round_.spill[static_cast<std::size_t>(r)].size();
    }
    std::vector<std::uint8_t> reply(static_cast<std::size_t>(p_) * 9 +
                                    spill_total);
    for (int r = 0; r < p_; ++r) {
      std::uint8_t* row = reply.data() + static_cast<std::size_t>(r) * 9;
      row[0] = round_.in_shm[static_cast<std::size_t>(r)];
      store_u64(row + 1, round_.lens[static_cast<std::size_t>(r)]);
    }
    std::size_t at = static_cast<std::size_t>(p_) * 9;
    for (int r = 0; r < p_; ++r) {
      const auto& s = round_.spill[static_cast<std::size_t>(r)];
      if (!s.empty()) {
        std::memcpy(reply.data() + at, s.data(), s.size());
        at += s.size();
      }
    }
    const auto op_code = static_cast<std::uint32_t>(round_.op);
    round_.reset(p_);
    for (int r = 0; r < p_; ++r) {
      auto& w = workers_[static_cast<std::size_t>(r)];
      // All p ranks arrived, so all are alive; a write failure here means a
      // rank died between its request and the reply — EOF handling catches
      // it on the next poll.
      (void)write_frame(w.fd, kFrameSlots, op_code, reply.data(),
                        reply.size());
    }
  }

  void on_send(int rank, const std::vector<std::uint8_t>& payload) {
    if (aborting_) return;
    if (payload.size() < 8) {
      fail(rank, ErrorClass::Internal,
           "mp: rank " + std::to_string(rank) + " sent a short send frame",
           false);
      return;
    }
    Message msg;
    msg.source = rank;
    const int dest = load_i32(payload.data());
    msg.tag = load_i32(payload.data() + 4);
    msg.payload.assign(payload.begin() + 8, payload.end());
    if (dest < 0 || dest >= p_) return;  // validated worker-side; ignore
    auto& w = workers_[static_cast<std::size_t>(dest)];
    if (w.recv_pending && w.recv_source == rank && w.recv_tag == msg.tag) {
      w.recv_pending = false;
      (void)write_frame(w.fd, kFrameMessage, 0, msg.payload.data(),
                        msg.payload.size());
      return;
    }
    mail_[static_cast<std::size_t>(dest)].push_back(std::move(msg));
  }

  void on_recv(int rank, const std::vector<std::uint8_t>& payload) {
    if (aborting_) return;
    if (payload.size() < 8) {
      fail(rank, ErrorClass::Internal,
           "mp: rank " + std::to_string(rank) + " sent a short recv frame",
           false);
      return;
    }
    const int source = load_i32(payload.data());
    const int tag = load_i32(payload.data() + 4);
    auto& queue = mail_[static_cast<std::size_t>(rank)];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->source == source && it->tag == tag) {
        auto& w = workers_[static_cast<std::size_t>(rank)];
        (void)write_frame(w.fd, kFrameMessage, 0, it->payload.data(),
                          it->payload.size());
        queue.erase(it);
        return;
      }
    }
    auto& w = workers_[static_cast<std::size_t>(rank)];
    // A recv whose source has already finished (and whose message is not
    // queued) can never complete — the threads backend would sit in this
    // hang until a deadline; here it is detectable immediately.
    if (source >= 0 && source < p_ &&
        (workers_[static_cast<std::size_t>(source)].done ||
         workers_[static_cast<std::size_t>(source)].closed)) {
      fail(rank, ErrorClass::Fault,
           "mp: rank " + std::to_string(rank) + " waits in recv for rank " +
               std::to_string(source) + " (tag " + std::to_string(tag) +
               "), which has already finished",
           false);
      return;
    }
    w.recv_pending = true;
    w.recv_source = source;
    w.recv_tag = tag;
    w.recv_since = now_seconds();
  }

  void on_done(int rank, const std::vector<std::uint8_t>& payload) {
    auto& w = workers_[static_cast<std::size_t>(rank)];
    w.done = true;
    if (payload.size() >=
        CommStats::kSerializedWords * sizeof(std::uint64_t)) {
      std::array<std::uint64_t, CommStats::kSerializedWords> words{};
      std::memcpy(words.data(), payload.data(),
                  words.size() * sizeof(std::uint64_t));
      w.stats = CommStats::deserialize(words.data());
      w.have_stats = true;
    }
    if (aborting_) return;
    if (round_.open && round_.present[static_cast<std::size_t>(rank)] == 0) {
      fail(rank, ErrorClass::Internal,
           "mp: rank " + std::to_string(rank) + " finished while " +
               comm_op_name(round_.op) + " was in flight",
           false);
      return;
    }
    // Any sibling blocked in a recv sourced from this now-finished rank
    // (with nothing queued) is hung for good.
    for (int r = 0; r < p_; ++r) {
      auto& peer = workers_[static_cast<std::size_t>(r)];
      if (!peer.recv_pending || peer.recv_source != rank) continue;
      bool queued = false;
      for (const auto& m : mail_[static_cast<std::size_t>(r)]) {
        if (m.source == rank && m.tag == peer.recv_tag) {
          queued = true;
          break;
        }
      }
      if (!queued) {
        fail(r, ErrorClass::Fault,
             "mp: rank " + std::to_string(r) + " waits in recv for rank " +
                 std::to_string(rank) + " (tag " +
                 std::to_string(peer.recv_tag) +
                 "), which has already finished",
             false);
      }
    }
  }

  void on_error(int rank, std::uint32_t aux,
                const std::vector<std::uint8_t>& payload) {
    const auto cls = static_cast<ErrorClass>(aux & 0xff);
    const bool foreign = (aux & kErrorForeignBit) != 0;
    fail(rank, cls, std::string(payload.begin(), payload.end()), foreign);
  }

  void on_eof(int rank) {
    auto& w = workers_[static_cast<std::size_t>(rank)];
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.closed = true;
    if (w.recv_pending) w.recv_pending = false;
    int status = 0;
    pid_t got;
    while ((got = ::waitpid(w.pid, &status, 0)) < 0 && errno == EINTR) {
    }
    record_exit(w, got >= 0 ? status : 0);
    if (w.done || w.failure.has_value() || w.killed_by_us) {
      // Finished cleanly, already recorded as failed (dying/error frame
      // preceded the EOF on this socket), or killed by the abort grace
      // sweep — every case already has its abort/bookkeeping done.
      return;
    }
    if (w.exit.signal != 0) {
      const char* name = ::strsignal(w.exit.signal);
      fail(rank, ErrorClass::Fault,
           "mp: rank " + std::to_string(rank) + " killed by signal " +
               std::to_string(w.exit.signal) +
               (name != nullptr ? " (" + std::string(name) + ")" : ""),
           false);
    } else if (w.exit.code == kExitAborted && aborting_) {
      // Abort echo: unwound because a sibling failed first.
    } else {
      fail(rank, ErrorClass::Internal,
           "mp: rank " + std::to_string(rank) +
               " exited unexpectedly with code " + std::to_string(w.exit.code),
           false);
    }
  }

  void record_exit(WorkerState& w, int status) {
    w.reaped = true;
    if (WIFEXITED(status)) {
      w.exit.code = WEXITSTATUS(status);
      w.exit.signal = 0;
    } else if (WIFSIGNALED(status)) {
      w.exit.code = 0;
      w.exit.signal = WTERMSIG(status);
    }
  }

  void fail(int rank, ErrorClass cls, std::string message, bool foreign) {
    auto& w = workers_[static_cast<std::size_t>(rank)];
    if (!w.failure.has_value()) {
      w.failure = WorkerFailure{cls, std::move(message), foreign};
    }
    initiate_abort();
  }

  void initiate_abort() {
    if (aborting_) return;
    aborting_ = true;
    abort_started_ = now_seconds();
    for (auto& w : workers_) {
      if (!w.closed && !w.done && w.fd >= 0) {
        (void)write_frame(w.fd, kFrameAbort, 0, nullptr, 0);
      }
    }
  }

  void kill_stragglers() {
    grace_killed_ = true;
    for (auto& w : workers_) {
      if (!w.reaped && w.pid > 0) {
        w.killed_by_us = true;
        ::kill(w.pid, SIGKILL);
      }
    }
  }

  void check_deadlines() {
    if (aborting_ || options_.deadline_seconds <= 0.0) return;
    const double deadline = options_.deadline_seconds;
    const double t = now_seconds();
    if (round_.open && t - round_.started > deadline) {
      for (int r = 0; r < p_; ++r) {
        if (round_.present[static_cast<std::size_t>(r)] == 0) {
          fail(r, ErrorClass::Fault,
               "mp: deadline exceeded: rank " + std::to_string(r) +
                   " did not enter " + comm_op_name(round_.op) + " within " +
                   std::to_string(deadline) + " s",
               false);
          return;
        }
      }
    }
    for (int r = 0; r < p_; ++r) {
      const auto& w = workers_[static_cast<std::size_t>(r)];
      if (w.recv_pending && t - w.recv_since > deadline) {
        fail(r, ErrorClass::Fault,
             "mp: deadline exceeded: rank " + std::to_string(r) + " waited " +
                 std::to_string(deadline) + " s in recv (source " +
                 std::to_string(w.recv_source) + ", tag " +
                 std::to_string(w.recv_tag) + ")",
             false);
        return;
      }
    }
  }

  [[nodiscard]] std::string exits_json() const {
    std::string out = "{\"backend\":\"process\",\"rank_exits\":[";
    for (int r = 0; r < p_; ++r) {
      const auto& e = workers_[static_cast<std::size_t>(r)].exit;
      if (r > 0) out += ",";
      out += "{\"rank\":" + std::to_string(r) +
             ",\"code\":" + std::to_string(e.code) +
             ",\"signal\":" + std::to_string(e.signal) + "}";
    }
    out += "]}";
    return out;
  }

  [[noreturn]] void throw_failure(int rank, const WorkerFailure& f) {
    std::string message = f.message;
    ErrorClass cls = f.cls;
    if (f.foreign) {
      cls = ErrorClass::Internal;
      message = message.empty()
                    ? "mp: rank " + std::to_string(rank) +
                          " failed with a non-standard exception"
                    : "mp: rank " + std::to_string(rank) + " failed: " + message;
    }
    const std::string detail = exits_json();
    switch (cls) {
      case ErrorClass::Fault: {
        FaultError e(message);
        e.set_detail_json(detail);
        throw e;
      }
      case ErrorClass::Input: {
        InputError e(message);
        e.set_detail_json(detail);
        throw e;
      }
      case ErrorClass::Resource: {
        ResourceError e(message);
        e.set_detail_json(detail);
        throw e;
      }
      default: {
        Error e(message, cls);
        e.set_detail_json(detail);
        throw e;
      }
    }
  }

  JobStats finalize() {
    for (int r = 0; r < p_; ++r) {
      const auto& w = workers_[static_cast<std::size_t>(r)];
      if (w.failure.has_value()) throw_failure(r, *w.failure);
    }
    for (int r = 0; r < p_; ++r) {
      const auto& w = workers_[static_cast<std::size_t>(r)];
      if (!w.done) {
        // All workers reaped, none failed, but someone never reported Done
        // — e.g. aborted without a recorded cause.  Surface it structurally
        // rather than returning a half-job.
        Error e("mp: rank " + std::to_string(r) +
                    " exited without completing the job",
                ErrorClass::Internal);
        e.set_detail_json(exits_json());
        throw e;
      }
    }
    JobStats stats;
    stats.backend = MpBackend::Process;
    stats.per_rank.resize(static_cast<std::size_t>(p_));
    stats.rank_exits.resize(static_cast<std::size_t>(p_));
    for (int r = 0; r < p_; ++r) {
      const auto& w = workers_[static_cast<std::size_t>(r)];
      if (w.have_stats) stats.per_rank[static_cast<std::size_t>(r)] = w.stats;
      stats.rank_exits[static_cast<std::size_t>(r)] = w.exit;
    }
    stats.result = std::move(result_);
    return stats;
  }

  const int p_;
  const RunOptions options_;
  std::vector<WorkerState> workers_;
  std::vector<std::deque<Message>> mail_;
  Round round_;
  std::vector<std::uint8_t> result_;
  bool aborting_ = false;
  bool grace_killed_ = false;
  double abort_started_ = 0.0;
};

}  // namespace

JobStats run_process(int p, const std::function<void(Comm&)>& fn,
                     const RunOptions& options) {
  if (!process_backend_supported()) {
    throw Error(
        "mp: the process backend is not supported in this build "
        "(ThreadSanitizer or non-POSIX platform); use the threads backend",
        ErrorClass::Usage);
  }
  ShmBoard board(p, options.shm_slot_bytes);
  std::vector<WorkerState> workers(static_cast<std::size_t>(p));
  const pid_t coordinator_pid = ::getpid();
  // Child processes _exit without flushing stdio; flush now so buffered
  // output is not duplicated into them.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int rank = 0; rank < p; ++rank) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      const std::string why = std::strerror(errno);
      for (int r = 0; r < rank; ++r) {
        ::close(workers[static_cast<std::size_t>(r)].fd);
        ::kill(workers[static_cast<std::size_t>(r)].pid, SIGKILL);
        int status = 0;
        while (::waitpid(workers[static_cast<std::size_t>(r)].pid, &status,
                         0) < 0 &&
               errno == EINTR) {
        }
      }
      throw ResourceError("mp: socketpair failed: " + why);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string why = std::strerror(errno);
      ::close(sv[0]);
      ::close(sv[1]);
      for (int r = 0; r < rank; ++r) {
        ::close(workers[static_cast<std::size_t>(r)].fd);
        ::kill(workers[static_cast<std::size_t>(r)].pid, SIGKILL);
        int status = 0;
        while (::waitpid(workers[static_cast<std::size_t>(r)].pid, &status,
                         0) < 0 &&
               errno == EINTR) {
        }
      }
      throw ResourceError("mp: fork failed: " + why);
    }
    if (pid == 0) {
      // Worker: drop the coordinator ends it inherited, keep only its own.
      for (int r = 0; r < rank; ++r) {
        ::close(workers[static_cast<std::size_t>(r)].fd);
      }
      ::close(sv[0]);
      worker_main(rank, p, sv[1], board, options, fn, coordinator_pid);
    }
    ::close(sv[1]);
    workers[static_cast<std::size_t>(rank)].pid = pid;
    workers[static_cast<std::size_t>(rank)].fd = sv[0];
  }
  Coordinator coordinator(p, options, std::move(workers));
  return coordinator.run();
}

}  // namespace mafia::mp
