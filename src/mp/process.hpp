// Process-backend entry point (see process_backend.cpp for the transport).
#pragma once

#include <functional>

#include "mp/comm.hpp"

namespace mafia::mp {

/// Runs the SPMD job over forked worker processes coordinated through
/// per-rank Unix-domain socket pairs plus a shared-memory slot board.
/// Same contract as mp::run; additionally guarantees that no worker
/// process outlives this call on ANY exit path (normal, failure, or an
/// exception thrown past it).  Throws a Usage-class Error when the build
/// or platform cannot host the backend (process_backend_supported()).
JobStats run_process(int p, const std::function<void(Comm&)>& fn,
                     const RunOptions& options);

}  // namespace mafia::mp
