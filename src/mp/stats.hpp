// Communication accounting for the SPMD runtime.
//
// The paper's analysis (Section 4.5) models total time as
// O(c^k + (N/(pB))·k·γ + α·S·p·k) where S is the size of messages exchanged
// and α the communication constant.  CommStats measures S and the message
// count exactly, so benches can report the "negligible communication
// overhead" claim quantitatively instead of hand-waving it.
//
// Accounting convention (uniform across all collectives): counters track
// payload bytes crossing rank boundaries — the sender side counts bytes it
// sends to other ranks, the receiver side counts bytes it receives from
// other ranks, and self-delivery is free.  For reductions (reduce /
// allreduce) each rank's operand vector counts once as its contribution and
// the combined result is not separately charged (the receive side of a
// reduction is arithmetic, not data delivery).  Consequences, per rank:
//
//   allreduce/reduce  n                          (operand contributed)
//   bcast             root: n·(p−1); other: n
//   gatherv           every rank: local; root additionally: Σ others' local
//   allgatherv        every rank: total payload (own local contributed +
//                                 everything received from other ranks)
//   scatterv          root: Σ others' slices; other: own slice
//   alltoallv         counted as point-to-point (its implementation)
//
// Because data-movement collectives charge both endpoints, job totals count
// each transferred byte twice (once sent, once received) — exactly like
// per-process MPI byte counters, and what the unit tests hand-compute.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace mafia::mp {

/// Per-rank communication counters.  All byte counts are payload bytes
/// (what MPI would put on the wire), excluding any runtime bookkeeping.
struct CommStats {
  std::uint64_t p2p_messages = 0;    ///< point-to-point sends issued
  std::uint64_t p2p_bytes = 0;       ///< payload bytes sent point-to-point
  std::uint64_t barriers = 0;        ///< barrier operations entered
  std::uint64_t reduces = 0;         ///< (all)reduce operations entered
  std::uint64_t bcasts = 0;          ///< broadcast operations entered
  std::uint64_t gathers = 0;         ///< gather/allgather operations entered
  std::uint64_t scatters = 0;        ///< scatter operations entered
  std::uint64_t collective_bytes = 0;///< payload bytes this rank contributed
                                     ///< to or received from collectives
                                     ///< (see convention above)
  double comm_seconds = 0.0;         ///< wall seconds spent inside comm
                                     ///< calls (includes barrier waits, so
                                     ///< load-imbalance stall shows up here
                                     ///< just as it would in MPI profiles)

  /// Number of collective operations entered (the cost model's op count).
  [[nodiscard]] std::uint64_t collective_ops() const {
    return reduces + bcasts + gathers + scatters;
  }

  /// Element-wise sum, used to aggregate per-rank stats into a job total.
  void merge(const CommStats& other) {
    p2p_messages += other.p2p_messages;
    p2p_bytes += other.p2p_bytes;
    barriers += other.barriers;
    reduces += other.reduces;
    bcasts += other.bcasts;
    gathers += other.gathers;
    scatters += other.scatters;
    collective_bytes += other.collective_bytes;
    comm_seconds += other.comm_seconds;
  }

  /// Counter increments since an earlier snapshot of the same rank's stats.
  /// This is how the run trace attributes each collective to the phase that
  /// issued it: snapshot at phase entry, delta at phase exit.
  [[nodiscard]] CommStats delta_since(const CommStats& earlier) const {
    CommStats d;
    d.p2p_messages = p2p_messages - earlier.p2p_messages;
    d.p2p_bytes = p2p_bytes - earlier.p2p_bytes;
    d.barriers = barriers - earlier.barriers;
    d.reduces = reduces - earlier.reduces;
    d.bcasts = bcasts - earlier.bcasts;
    d.gathers = gathers - earlier.gathers;
    d.scatters = scatters - earlier.scatters;
    d.collective_bytes = collective_bytes - earlier.collective_bytes;
    d.comm_seconds = comm_seconds - earlier.comm_seconds;
    return d;
  }

  [[nodiscard]] std::uint64_t total_bytes() const {
    return p2p_bytes + collective_bytes;
  }

  // ---- wire format (for gathering traces across ranks) -------------------

  /// Number of 64-bit words in the serialized form.
  static constexpr std::size_t kSerializedWords = 9;

  /// Packs the counters into 64-bit words (comm_seconds bit-cast) so a
  /// whole trace can ship through one gatherv<uint64_t>.
  [[nodiscard]] std::array<std::uint64_t, kSerializedWords> serialize() const {
    return {p2p_messages, p2p_bytes,  barriers, reduces, bcasts,
            gathers,      scatters,   collective_bytes,
            std::bit_cast<std::uint64_t>(comm_seconds)};
  }

  static CommStats deserialize(const std::uint64_t* words) {
    CommStats s;
    s.p2p_messages = words[0];
    s.p2p_bytes = words[1];
    s.barriers = words[2];
    s.reduces = words[3];
    s.bcasts = words[4];
    s.gathers = words[5];
    s.scatters = words[6];
    s.collective_bytes = words[7];
    s.comm_seconds = std::bit_cast<double>(words[8]);
    return s;
  }
};

/// Analytic cost model matching Section 4.5: given measured message volume
/// and counts, predicts communication seconds on a target machine.  The
/// defaults are the paper's IBM SP2 switch figures (29.3 ms latency,
/// 102 MB/s uni-directional bandwidth), so benches can report what the
/// measured communication volume *would have cost* on the paper's hardware.
struct CostModel {
  double latency_seconds = 29.3e-3;       ///< per message/collective step
  double bandwidth_bytes_per_sec = 102e6; ///< uni-directional

  [[nodiscard]] double communication_seconds(const CommStats& s) const {
    const double ops =
        static_cast<double>(s.p2p_messages + s.collective_ops());
    return ops * latency_seconds +
           static_cast<double>(s.total_bytes()) / bandwidth_bytes_per_sec;
  }
};

/// Optional interconnect emulation: every collective step and point-to-
/// point message stalls the participating rank by latency + bytes/bandwidth.
/// With the SP2 constants from the paper this makes thread-backed runs
/// exhibit the COMMUNICATION cost structure of the paper's machine, so
/// "communication overhead is negligible" can be tested rather than
/// asserted.  Zero-initialized = no delay.
struct NetworkSimulation {
  double latency_seconds = 0.0;
  double bytes_per_second = 0.0;  ///< 0 = infinite bandwidth

  [[nodiscard]] double delay_for(std::uint64_t bytes) const {
    double s = latency_seconds;
    if (bytes_per_second > 0) {
      s += static_cast<double>(bytes) / bytes_per_second;
    }
    return s;
  }

  /// The paper's SP2 switch figures (Section 5: 29.3 ms latency as printed,
  /// 102 MB/s uni-directional).
  static NetworkSimulation sp2() { return {29.3e-3, 102e6}; }
};

}  // namespace mafia::mp
