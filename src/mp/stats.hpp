// Communication accounting for the SPMD runtime.
//
// The paper's analysis (Section 4.5) models total time as
// O(c^k + (N/(pB))·k·γ + α·S·p·k) where S is the size of messages exchanged
// and α the communication constant.  CommStats measures S and the message
// count exactly, so benches can report the "negligible communication
// overhead" claim quantitatively instead of hand-waving it.
#pragma once

#include <cstdint>

namespace mafia::mp {

/// Per-rank communication counters.  All byte counts are payload bytes
/// (what MPI would put on the wire), excluding any runtime bookkeeping.
struct CommStats {
  std::uint64_t p2p_messages = 0;    ///< point-to-point sends issued
  std::uint64_t p2p_bytes = 0;       ///< payload bytes sent point-to-point
  std::uint64_t barriers = 0;        ///< barrier operations entered
  std::uint64_t reduces = 0;         ///< (all)reduce operations entered
  std::uint64_t bcasts = 0;          ///< broadcast operations entered
  std::uint64_t gathers = 0;         ///< gather/allgather operations entered
  std::uint64_t collective_bytes = 0;///< payload bytes this rank contributed
                                     ///< to or received from collectives

  /// Element-wise sum, used to aggregate per-rank stats into a job total.
  void merge(const CommStats& other) {
    p2p_messages += other.p2p_messages;
    p2p_bytes += other.p2p_bytes;
    barriers += other.barriers;
    reduces += other.reduces;
    bcasts += other.bcasts;
    gathers += other.gathers;
    collective_bytes += other.collective_bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes() const {
    return p2p_bytes + collective_bytes;
  }
};

/// Analytic cost model matching Section 4.5: given measured message volume
/// and counts, predicts communication seconds on a target machine.  The
/// defaults are the paper's IBM SP2 switch figures (29.3 ms latency,
/// 102 MB/s uni-directional bandwidth), so benches can report what the
/// measured communication volume *would have cost* on the paper's hardware.
struct CostModel {
  double latency_seconds = 29.3e-3;       ///< per message/collective step
  double bandwidth_bytes_per_sec = 102e6; ///< uni-directional

  [[nodiscard]] double communication_seconds(const CommStats& s) const {
    const double ops = static_cast<double>(s.p2p_messages + s.reduces +
                                           s.bcasts + s.gathers);
    return ops * latency_seconds +
           static_cast<double>(s.total_bytes()) / bandwidth_bytes_per_sec;
  }
};

/// Optional interconnect emulation: every collective step and point-to-
/// point message stalls the participating rank by latency + bytes/bandwidth.
/// With the SP2 constants from the paper this makes thread-backed runs
/// exhibit the COMMUNICATION cost structure of the paper's machine, so
/// "communication overhead is negligible" can be tested rather than
/// asserted.  Zero-initialized = no delay.
struct NetworkSimulation {
  double latency_seconds = 0.0;
  double bytes_per_second = 0.0;  ///< 0 = infinite bandwidth

  [[nodiscard]] double delay_for(std::uint64_t bytes) const {
    double s = latency_seconds;
    if (bytes_per_second > 0) {
      s += static_cast<double>(bytes) / bytes_per_second;
    }
    return s;
  }

  /// The paper's SP2 switch figures (Section 5: 29.3 ms latency as printed,
  /// 102 MB/s uni-directional).
  static NetworkSimulation sp2() { return {29.3e-3, 102e6}; }
};

}  // namespace mafia::mp
