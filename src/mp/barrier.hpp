// Abortable generation barrier for the SPMD runtime.
//
// std::barrier cannot be broken: if one rank throws while siblings wait,
// the job deadlocks.  This barrier adds an abort flag — when any rank calls
// abort(), every current and future wait() throws AbortedError, unwinding
// all ranks so Runtime::run can join them and rethrow the original error.
// This mirrors how an MPI job dies when one rank calls MPI_Abort.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <stdexcept>

namespace mafia::mp {

/// Thrown out of barrier/collective waits on sibling-rank failure.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("mp: job aborted by a sibling rank") {}
};

/// Reusable counting barrier over `parties` threads, with abort support.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {}

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all parties arrive (or the job aborts).
  void wait() { (void)wait_for(0.0); }

  /// Like wait(), but gives up after `timeout_seconds` (0 = wait forever).
  /// Returns false on timeout — the caller has been withdrawn from the
  /// barrier (its arrival is un-counted), so it can convert the hang into
  /// a structured deadline error without wedging later generations.
  [[nodiscard]] bool wait_for(double timeout_seconds) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (aborted_) throw AbortedError();
    const std::size_t my_generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    const auto released = [&] {
      return generation_ != my_generation || aborted_;
    };
    if (timeout_seconds <= 0.0) {
      cv_.wait(lock, released);
    } else if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                             released)) {
      // Still this generation and not aborted: withdraw our arrival so the
      // remaining parties' count stays consistent.
      --arrived_;
      return false;
    }
    if (aborted_ && generation_ == my_generation) throw AbortedError();
    return true;
  }

  /// Marks the job aborted and wakes all waiters.
  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    cv_.notify_all();
  }

  [[nodiscard]] bool aborted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return aborted_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  const std::size_t parties_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
  bool aborted_ = false;
};

}  // namespace mafia::mp
