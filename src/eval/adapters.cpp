#include "eval/adapters.hpp"

#include <algorithm>
#include <cmath>

#include "baselines/birch.hpp"
#include "baselines/clarans.hpp"
#include "baselines/cure.hpp"
#include "clique/clique.hpp"
#include "cluster/membership.hpp"
#include "common/error.hpp"
#include "core/mafia.hpp"
#include "dbscan/dbscan.hpp"
#include "enclus/enclus.hpp"
#include "grid/adaptive_grid.hpp"
#include "io/data_source.hpp"
#include "kmeans/kmeans.hpp"
#include "proclus/proclus.hpp"

namespace mafia::eval {

namespace {

std::vector<DimId> all_dims(std::size_t d) {
  std::vector<DimId> dims(d);
  for (std::size_t i = 0; i < d; ++i) dims[i] = static_cast<DimId>(i);
  return dims;
}

/// Mean per-dimension value range, for distance-scale heuristics.
double mean_dim_width(const Dataset& data) {
  const std::size_t d = data.num_dims();
  if (data.num_records() == 0) return 1.0;
  std::vector<Value> lo(d, std::numeric_limits<Value>::max());
  std::vector<Value> hi(d, std::numeric_limits<Value>::lowest());
  for (RecordIndex r = 0; r < data.num_records(); ++r) {
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], data.at(r, j));
      hi[j] = std::max(hi[j], data.at(r, j));
    }
  }
  double sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    sum += std::max(0.0, static_cast<double>(hi[j]) - lo[j]);
  }
  return std::max(sum / static_cast<double>(d), 1e-9);
}

/// Shared tail for the grid methods: drop clusters under the reporting
/// floor, then label every record through the serving-path DNF predicates.
AdapterOutput from_grid_result(MafiaResult&& result, const Dataset& data,
                               const AdapterHints& hints) {
  std::vector<Cluster> kept;
  for (Cluster& c : result.clusters) {
    if (c.dims.size() >= hints.min_cluster_dims) kept.push_back(std::move(c));
  }
  AdapterOutput out;
  const InMemorySource source(data);
  out.clustering.labels = assign_members(source, kept, result.grids);
  out.clustering.cluster_dims.reserve(kept.size());
  for (const Cluster& c : kept) out.clustering.cluster_dims.push_back(c.dims);
  out.clusters_found = kept.size();
  return out;
}

AdapterOutput run_pmafia_adapter(const Dataset& data, const AdapterHints& hints,
                                 int ranks) {
  MafiaOptions options;
  options.grid = AdaptiveGridOptions::for_sample_size(data.num_records());
  options.min_cluster_dims = hints.min_cluster_dims;
  const InMemorySource source(data);
  return from_grid_result(run_pmafia(source, options, ranks), data, hints);
}

AdapterOutput run_clique_adapter(const Dataset& data, const AdapterHints& hints,
                                 int ranks) {
  CliqueOptions options;
  options.xi = hints.clique_xi;
  options.tau_fraction = hints.clique_tau;
  const InMemorySource source(data);
  return from_grid_result(run_clique(source, options, ranks), data, hints);
}

AdapterOutput run_enclus_adapter(const Dataset& data, const AdapterHints& hints) {
  EnclusOptions options;
  options.omega =
      hints.enclus_omega_factor * max_entropy(options.xi, hints.enclus_max_dims);
  options.max_dims = hints.enclus_max_dims;
  const InMemorySource source(data);
  const EnclusResult result = run_enclus(source, options);
  AdapterOutput out;
  // No memberships: all-noise labels, subspaces only (interesting first —
  // they are the high-correlation ones — then the remaining significant).
  out.clustering.labels.assign(static_cast<std::size_t>(data.num_records()),
                               kNoiseLabel);
  for (const SubspaceInfo& s : result.interesting) {
    out.clustering.cluster_dims.push_back(s.dims);
  }
  for (const SubspaceInfo& s : result.significant) {
    out.clustering.cluster_dims.push_back(s.dims);
  }
  out.clusters_found = out.clustering.cluster_dims.size();
  return out;
}

AdapterOutput run_dbscan_adapter(const Dataset& data, const AdapterHints& hints) {
  DbscanOptions options;
  options.eps = hints.dbscan_eps_factor *
                std::sqrt(static_cast<double>(data.num_dims())) *
                mean_dim_width(data);
  options.min_pts = hints.dbscan_min_pts;
  DbscanResult result = run_dbscan(data, options);
  AdapterOutput out;
  out.clusters_found = result.num_clusters;
  out.clustering.labels = std::move(result.labels);
  out.clustering.cluster_dims.assign(out.clusters_found,
                                     all_dims(data.num_dims()));
  return out;
}

AdapterOutput run_proclus_adapter(const Dataset& data, const AdapterHints& hints) {
  ProclusOptions options;
  options.num_clusters = hints.true_clusters;
  options.avg_dims = std::max<std::size_t>(2, hints.avg_cluster_dims);
  options.seed = hints.seed;
  const ProclusResult result = run_proclus(data, options);
  AdapterOutput out;
  out.clusters_found = result.clusters.size();
  out.clustering.labels.assign(static_cast<std::size_t>(data.num_records()),
                               kNoiseLabel);
  for (std::size_t c = 0; c < result.clusters.size(); ++c) {
    out.clustering.cluster_dims.push_back(result.clusters[c].dims);
    for (const RecordIndex r : result.clusters[c].members) {
      out.clustering.labels[static_cast<std::size_t>(r)] =
          static_cast<std::int32_t>(c);
    }
  }
  return out;
}

AdapterOutput run_kmeans_adapter(const Dataset& data, const AdapterHints& hints,
                                 int ranks) {
  KMeansOptions options;
  options.k = hints.true_clusters;
  options.seed = hints.seed;
  const InMemorySource source(data);
  const KMeansResult model = run_kmeans(source, options, ranks);
  AdapterOutput out;
  out.clusters_found = model.sizes.size();
  out.clustering.labels = kmeans_assign(source, model);
  out.clustering.cluster_dims.assign(out.clusters_found,
                                     all_dims(data.num_dims()));
  return out;
}

AdapterOutput run_birch_adapter(const Dataset& data, const AdapterHints& hints) {
  BirchOptions options;
  options.num_clusters = hints.true_clusters;
  // Leaf-absorption radius at the scale of one cluster extent: a fraction
  // of the full-space pair distance, which grows with sqrt(d) * width.
  options.threshold = hints.birch_threshold_factor *
                      std::sqrt(static_cast<double>(data.num_dims())) *
                      mean_dim_width(data);
  const BirchResult model = run_birch(data, options);
  AdapterOutput out;
  out.clusters_found = model.num_clusters();
  out.clustering.labels = birch_assign(data, model);
  out.clustering.cluster_dims.assign(out.clusters_found,
                                     all_dims(data.num_dims()));
  return out;
}

AdapterOutput run_cure_adapter(const Dataset& data, const AdapterHints& hints) {
  CureOptions options;
  options.num_clusters = hints.true_clusters;
  options.sample_size = std::max<std::size_t>(
      options.num_clusters,
      std::min<std::size_t>(500, static_cast<std::size_t>(data.num_records())));
  options.seed = hints.seed;
  CureResult result = run_cure(data, options);
  AdapterOutput out;
  out.clusters_found = result.clusters.size();
  out.clustering.labels = std::move(result.labels);
  out.clustering.cluster_dims.assign(out.clusters_found,
                                     all_dims(data.num_dims()));
  return out;
}

AdapterOutput run_clarans_adapter(const Dataset& data, const AdapterHints& hints) {
  ClaransOptions options;
  options.num_clusters = hints.true_clusters;
  options.seed = hints.seed;
  ClaransResult result = run_clarans(data, options);
  AdapterOutput out;
  out.clusters_found = options.num_clusters;
  out.clustering.labels = std::move(result.labels);
  out.clustering.cluster_dims.assign(out.clusters_found,
                                     all_dims(data.num_dims()));
  return out;
}

}  // namespace

const std::vector<std::string>& algorithm_names() {
  static const std::vector<std::string> names = {
      "pmafia", "clique", "enclus",  "dbscan", "proclus",
      "kmeans", "birch",  "clarans", "cure"};
  return names;
}

bool is_algorithm(const std::string& name) {
  const std::vector<std::string>& names = algorithm_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

AdapterOutput run_algorithm(const std::string& name, const Dataset& data,
                            const AdapterHints& hints, int ranks) {
  if (name == "pmafia") return run_pmafia_adapter(data, hints, ranks);
  if (name == "clique") return run_clique_adapter(data, hints, ranks);
  if (name == "enclus") return run_enclus_adapter(data, hints);
  if (name == "dbscan") return run_dbscan_adapter(data, hints);
  if (name == "proclus") return run_proclus_adapter(data, hints);
  if (name == "kmeans") return run_kmeans_adapter(data, hints, ranks);
  if (name == "birch") return run_birch_adapter(data, hints);
  if (name == "clarans") return run_clarans_adapter(data, hints);
  if (name == "cure") return run_cure_adapter(data, hints);
  throw Error("unknown algorithm: " + name, ErrorClass::Usage);
}

}  // namespace mafia::eval
