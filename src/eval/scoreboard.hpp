// Scoreboard driver: every zoo algorithm x a planted-truth workload matrix
// -> one pmafia-scoreboard-v1 JSON document.
//
// The workload matrix covers the paper's boundary-quality comparison
// (Table 3, the L-shape) plus the stress regimes the suite lacked: 200-dim
// data with 10-15-dim planted clusters, clusters overlapping on shared
// subspace dims, and categorical/mixed-scale attributes.  Workloads flagged
// `boundary` carry the paper's §5.9 claim — scripts/scoreboard_gate.py
// enforces pMAFIA >= CLIQUE on F1 there, and no metric regressing below
// the committed SCOREBOARD.json baseline anywhere.
//
// An algorithm failure on a workload becomes a status:"failed" row with the
// error message — every requested algorithm appears on every requested
// workload, always.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/generator.hpp"
#include "eval/adapters.hpp"

namespace mafia::eval {

inline constexpr const char* kScoreboardSchema = "pmafia-scoreboard-v1";

/// One named workload: its generator config plus per-workload adapter
/// hints and whether the boundary-quality gate applies.
struct Workload {
  std::string name;
  bool boundary = false;
  GeneratorConfig config;
  AdapterHints hints;
};

/// The canned matrix, scoreboard order.
[[nodiscard]] const std::vector<std::string>& workload_names();

[[nodiscard]] bool is_workload(const std::string& name);

/// Builds a canned workload at the given scale.  `records` is the cluster
/// record count (noise rides on top, generator semantics); `seed` overrides
/// the config's seed.  Unknown names throw Error(ErrorClass::Usage).
[[nodiscard]] Workload make_workload(const std::string& name,
                                     RecordIndex records, std::uint64_t seed);

struct AlgorithmScore {
  std::string algorithm;
  bool ok = false;
  std::string error;               ///< failure message when !ok
  double seconds = 0.0;
  std::size_t clusters_found = 0;
  Scores scores;                   ///< valid when ok
};

struct WorkloadScore {
  std::string name;
  bool boundary = false;
  std::size_t num_dims = 0;
  RecordIndex num_records = 0;     ///< actual rows incl. noise
  std::size_t planted_clusters = 0;
  std::vector<AlgorithmScore> algorithms;
};

struct ScoreboardResult {
  RecordIndex records = 0;         ///< requested cluster records per workload
  std::uint64_t seed = 0;
  int ranks = 1;
  std::vector<WorkloadScore> workloads;
};

/// Runs the matrix.  Unknown workload/algorithm names throw
/// Error(ErrorClass::Usage) up front; per-algorithm failures during the
/// run are captured as failed rows.
[[nodiscard]] ScoreboardResult run_scoreboard(
    const std::vector<std::string>& workloads,
    const std::vector<std::string>& algorithms, RecordIndex records,
    std::uint64_t seed, int ranks = 1);

/// Scores one generated workload (exposed for the rank-sweep and
/// differential tests, which need the Dataset and truth in hand).
[[nodiscard]] WorkloadScore score_workload(
    const Workload& workload, const Dataset& data,
    const std::vector<std::string>& algorithms, int ranks);

/// Scores an external labeled data set (labels = ground truth, subspace
/// truth unknown -> subspace_recovery is null in the JSON).
[[nodiscard]] WorkloadScore score_dataset(
    const std::string& name, const Dataset& data,
    const std::vector<std::string>& algorithms, const AdapterHints& hints,
    int ranks = 1);

/// Serializes to pmafia-scoreboard-v1 JSON.
[[nodiscard]] std::string scoreboard_json(const ScoreboardResult& result);

}  // namespace mafia::eval
