// Uniform "run -> assignments + subspaces" adapters over the whole zoo.
//
// Every algorithm in the repo — pMAFIA, CLIQUE, ENCLUS, DBSCAN, PROCLUS,
// k-means, BIRCH, CURE, CLARANS — is wrapped behind one entry point that
// returns an eval::Clustering, so the scoreboard can score them all with
// the same metrics.  Conventions:
//   * grid methods (pmafia, clique) label records through the SAME
//     cluster/membership DNF path the CLI serves (assign_members), so the
//     eval path cannot drift from the serving path (pinned by the
//     differential test in eval_scoreboard_test);
//   * full-space methods (kmeans, birch, cure, clarans, dbscan) report all
//     dims as their subspace — that is what the algorithm asserts;
//   * PROCLUS reports its learned projected dims;
//   * ENCLUS mines subspaces only (no record memberships): its Clustering
//     has all-noise labels plus the mined subspace dims, so it scores 0 on
//     record metrics and is judged on subspace_recovery — honest, not an
//     omission;
//   * supervised baselines receive the true cluster count through
//     AdapterHints (an oracle input the subspace methods never get —
//     documented so the comparison reads fairly).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/metrics.hpp"
#include "io/dataset.hpp"

namespace mafia::eval {

/// Per-workload tuning knobs the adapters consume.  Defaults suit the
/// canned scoreboard workloads at their default scale.
struct AdapterHints {
  std::size_t true_clusters = 2;     ///< k for the supervised baselines
  std::size_t avg_cluster_dims = 4;  ///< PROCLUS's projected dim target
  /// Reporting floor for the grid methods; raised to 3 on the categorical
  /// workload, where every level combination of two categorical dims is a
  /// genuine 2-d dense region the planted truth does not include.
  std::size_t min_cluster_dims = 2;
  std::size_t clique_xi = 10;
  double clique_tau = 0.15;          ///< above background bin mass (~0.10)
  /// dbscan eps = factor * sqrt(d) * mean dimension width: between the
  /// expected intra-cluster and background pair distances on the canned
  /// workloads (both scale with sqrt(d) * width).
  double dbscan_eps_factor = 0.35;
  std::size_t dbscan_min_pts = 8;
  /// enclus omega = factor * max_entropy(xi, max_dims).
  double enclus_omega_factor = 0.85;
  std::size_t enclus_max_dims = 2;
  /// birch threshold = factor * sqrt(d) * mean dimension width.  The
  /// default keeps leaves fine-grained on ~10-dim workloads; the 200-dim
  /// workload raises it (0.30) because there the background radius alone
  /// exceeds a fine threshold, the CF-tree degenerates to one leaf per
  /// record, and the agglomerative phase goes superquadratic.
  double birch_threshold_factor = 0.06;
  std::uint64_t seed = 1;
};

struct AdapterOutput {
  Clustering clustering;
  std::size_t clusters_found = 0;
};

/// The full zoo, scoreboard order (pmafia first, then the baselines).
[[nodiscard]] const std::vector<std::string>& algorithm_names();

[[nodiscard]] bool is_algorithm(const std::string& name);

/// Runs one algorithm over the data set.  `ranks` is the SPMD width for
/// the algorithms that take one (pmafia, clique, kmeans); the rest ignore
/// it.  Throws (Error subclasses or std::exception) on algorithm failure —
/// the scoreboard catches and reports, never omits.  Unknown names throw
/// Error(ErrorClass::Usage).
[[nodiscard]] AdapterOutput run_algorithm(const std::string& name,
                                          const Dataset& data,
                                          const AdapterHints& hints,
                                          int ranks = 1);

}  // namespace mafia::eval
