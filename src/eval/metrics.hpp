// Planted-truth quality metrics for the scoreboard (ROADMAP item 5).
//
// Scores a predicted clustering against ground truth carried on the records
// (datagen labels, or an external labeled record file).  All metrics are
// computed from an integer contingency table and an OPTIMAL one-to-one
// cluster<->truth matching (maximum total overlap, exact bitmask DP for up
// to kExactMatchTruth truth clusters, greedy beyond), so:
//   * precision  = matched overlap / records placed in any predicted cluster
//   * recall     = matched overlap / records in any truth cluster
//   * f1         = harmonic mean of the two
//   * entropy    = cluster-size-weighted normalized entropy of each
//                  predicted cluster's truth-class distribution (truth
//                  clusters + one noise class); 0 = every cluster pure
//   * coverage   = fraction of truth-cluster records captured by ANY
//                  predicted cluster (cluster identity ignored — the
//                  paper's "thrown away as outliers" axis)
//   * subspace_recovery = mean over truth clusters of the best Jaccard
//                  similarity between the truth subspace dims and any
//                  predicted cluster's dims (NaN when truth dims unknown)
//
// Determinism contract (pinned by eval_metrics_test): permuting cluster ids
// and/or record order leaves every metric BIT-identical.  The matching
// objective is integral, and every floating-point reduction sorts its terms
// before summing, so no result depends on label values or record order.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.hpp"

namespace mafia::eval {

/// How many truth clusters the exact matching DP handles (2^k mask states);
/// larger truths fall back to a greedy best-overlap-first matching.
inline constexpr std::size_t kExactMatchTruth = 16;

/// A clustering over N records: per-record labels plus per-cluster subspace
/// dims.  Labels are cluster ids (any non-negative values), kNoiseLabel for
/// noise, or kUnlabeledLabel for "no information" (such records are
/// excluded from every metric when they appear on the TRUTH side).
/// cluster_dims is keyed by cluster id and is allowed to be shorter (ids
/// beyond it have unknown subspaces) or longer (subspaces without any
/// member records — ENCLUS emits these) than the label range; an empty
/// inner vector also means "unknown".
struct Clustering {
  std::vector<std::int32_t> labels;
  std::vector<std::vector<DimId>> cluster_dims;
};

struct Scores {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double entropy = 0.0;
  double coverage = 0.0;
  double subspace_recovery = std::numeric_limits<double>::quiet_NaN();
  std::size_t predicted_clusters = 0;  ///< distinct predicted cluster ids
  std::size_t truth_clusters = 0;      ///< distinct truth cluster ids
  std::size_t matched_clusters = 0;    ///< matched pairs with overlap > 0
};

/// Scores `predicted` against `truth`; the two label vectors must be the
/// same length (one entry per record, same record order).
[[nodiscard]] Scores score_clustering(const Clustering& predicted,
                                      const Clustering& truth);

}  // namespace mafia::eval
