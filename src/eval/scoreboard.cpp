#include "eval/scoreboard.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "datagen/workloads.hpp"

namespace mafia::eval {

namespace {

/// Truth Clustering from a generated workload: record labels straight off
/// the Dataset, subspace dims from the planted ClusterSpecs.
Clustering truth_of(const GeneratorConfig& config, const Dataset& data) {
  Clustering truth;
  truth.labels = data.labels();
  truth.cluster_dims.reserve(config.clusters.size());
  for (const ClusterSpec& spec : config.clusters) {
    truth.cluster_dims.push_back(spec.dims);
  }
  return truth;
}

AlgorithmScore run_one(const std::string& algorithm, const Dataset& data,
                       const Clustering& truth, const AdapterHints& hints,
                       int ranks) {
  AlgorithmScore row;
  row.algorithm = algorithm;
  Timer timer;
  try {
    AdapterOutput out = run_algorithm(algorithm, data, hints, ranks);
    row.seconds = timer.seconds();
    row.clusters_found = out.clusters_found;
    row.scores = score_clustering(out.clustering, truth);
    row.ok = true;
  } catch (const std::exception& e) {
    row.seconds = timer.seconds();
    row.error = e.what();
    row.ok = false;
  }
  return row;
}

void check_algorithms(const std::vector<std::string>& algorithms) {
  for (const std::string& a : algorithms) {
    if (!is_algorithm(a)) {
      throw Error("unknown algorithm: " + a, ErrorClass::Usage);
    }
  }
}

}  // namespace

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "tab3-boundary", "lshape-boundary", "highdim-200", "overlap-shared",
      "mixed-categorical", "drift"};
  return names;
}

bool is_workload(const std::string& name) {
  const std::vector<std::string>& names = workload_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

Workload make_workload(const std::string& name, RecordIndex records,
                       std::uint64_t seed) {
  Workload w;
  w.name = name;
  if (name == "tab3-boundary") {
    // The paper's Table 3 setup: extents misaligned with CLIQUE's uniform
    // grid, so its edge bins drop below tau and "large parts of the
    // clusters were thrown away as outliers" (§5.9) — the boundary gate.
    w.boundary = true;
    w.config = workloads::tab3_quality(records, seed);
    w.hints.true_clusters = 2;
    w.hints.avg_cluster_dims = 4;
    // Low enough that CLIQUE's 4-d cells of the planted clusters go dense
    // (the central cell holds ~1.4% of the records), high enough that pure
    // background cells do not; CLIQUE still bleeds F1 on the misaligned
    // edge bins and on its lower-dim projection clusters.
    w.hints.clique_tau = 0.015;
  } else if (name == "lshape-boundary") {
    // Non-hyper-rectangular shape with misaligned arms: adaptive windows
    // hug the L, a fixed grid loses the arm edges.
    w.boundary = true;
    w.config = workloads::l_shape_demo(records, seed);
    w.hints.true_clusters = 1;
    w.hints.avg_cluster_dims = 2;
    w.hints.clique_tau = 0.08;  // the L's arm cells hold less mass than a box
  } else if (name == "highdim-200") {
    w.config = workloads::highdim(records, seed);
    w.hints.true_clusters = 3;
    w.hints.avg_cluster_dims = 12;
    w.hints.birch_threshold_factor = 0.30;  // see AdapterHints: CF-tree
                                            // degenerates below this at d=200
  } else if (name == "overlap-shared") {
    w.config = workloads::overlap(records, seed);
    w.hints.true_clusters = 2;
    w.hints.avg_cluster_dims = 4;
  } else if (name == "drift") {
    // The streaming-append workload's combined footprint: a stationary
    // anchor plus a drifting cluster's swept (two-box) region — the data a
    // base + `pmafia append` sequence ends up clustering.
    w.config = workloads::drift_combined(records, seed);
    w.hints.true_clusters = 2;
    w.hints.avg_cluster_dims = 3;
  } else if (name == "mixed-categorical") {
    w.config = workloads::mixed(records, seed);
    w.hints.true_clusters = 2;
    w.hints.avg_cluster_dims = 3;
    // Two categorical dims make every level pair a real 2-d dense region;
    // the planted clusters are 3-d, so report from 3 dims up.
    w.hints.min_cluster_dims = 3;
  } else {
    throw Error("unknown workload: " + name, ErrorClass::Usage);
  }
  w.hints.seed = seed;
  return w;
}

WorkloadScore score_workload(const Workload& workload, const Dataset& data,
                             const std::vector<std::string>& algorithms,
                             int ranks) {
  check_algorithms(algorithms);
  const Clustering truth = truth_of(workload.config, data);
  WorkloadScore ws;
  ws.name = workload.name;
  ws.boundary = workload.boundary;
  ws.num_dims = data.num_dims();
  ws.num_records = data.num_records();
  ws.planted_clusters = workload.config.clusters.size();
  for (const std::string& a : algorithms) {
    ws.algorithms.push_back(run_one(a, data, truth, workload.hints, ranks));
  }
  return ws;
}

WorkloadScore score_dataset(const std::string& name, const Dataset& data,
                            const std::vector<std::string>& algorithms,
                            const AdapterHints& hints, int ranks) {
  check_algorithms(algorithms);
  Clustering truth;
  truth.labels = data.labels();
  WorkloadScore ws;
  ws.name = name;
  ws.num_dims = data.num_dims();
  ws.num_records = data.num_records();
  for (const std::string& a : algorithms) {
    ws.algorithms.push_back(run_one(a, data, truth, hints, ranks));
  }
  return ws;
}

ScoreboardResult run_scoreboard(const std::vector<std::string>& workloads,
                                const std::vector<std::string>& algorithms,
                                RecordIndex records, std::uint64_t seed,
                                int ranks) {
  check_algorithms(algorithms);
  for (const std::string& w : workloads) {
    if (!is_workload(w)) throw Error("unknown workload: " + w, ErrorClass::Usage);
  }
  ScoreboardResult result;
  result.records = records;
  result.seed = seed;
  result.ranks = ranks;
  for (const std::string& name : workloads) {
    const Workload workload = make_workload(name, records, seed);
    const Dataset data = generate(workload.config);
    result.workloads.push_back(
        score_workload(workload, data, algorithms, ranks));
  }
  return result;
}

std::string scoreboard_json(const ScoreboardResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kScoreboardSchema);
  w.key("records").value(static_cast<std::uint64_t>(result.records));
  w.key("seed").value(static_cast<std::uint64_t>(result.seed));
  w.key("ranks").value(result.ranks);
  w.key("workloads").begin_array();
  for (const WorkloadScore& ws : result.workloads) {
    w.begin_object();
    w.key("name").value(ws.name);
    w.key("boundary").value(ws.boundary);
    w.key("dims").value(static_cast<std::uint64_t>(ws.num_dims));
    w.key("rows").value(static_cast<std::uint64_t>(ws.num_records));
    w.key("planted_clusters").value(static_cast<std::uint64_t>(ws.planted_clusters));
    w.key("algorithms").begin_array();
    for (const AlgorithmScore& a : ws.algorithms) {
      w.begin_object();
      w.key("name").value(a.algorithm);
      w.key("status").value(a.ok ? "ok" : "failed");
      w.key("seconds").value(a.seconds);
      if (a.ok) {
        w.key("clusters_found").value(static_cast<std::uint64_t>(a.clusters_found));
        w.key("metrics").begin_object();
        w.key("f1").value(a.scores.f1);
        w.key("precision").value(a.scores.precision);
        w.key("recall").value(a.scores.recall);
        w.key("entropy").value(a.scores.entropy);
        w.key("coverage").value(a.scores.coverage);
        // NaN (truth subspaces unknown) serializes as null.
        w.key("subspace_recovery").value(a.scores.subspace_recovery);
        w.end_object();
        w.key("matched_clusters").value(static_cast<std::uint64_t>(a.scores.matched_clusters));
      } else {
        w.key("error").value(a.error);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace mafia::eval
