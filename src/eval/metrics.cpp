#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "common/error.hpp"

namespace mafia::eval {

namespace {

/// Sorted distinct non-negative ids in `labels`; lookup via binary search.
/// Sorting makes the compaction independent of record order, and every
/// float reduction downstream sorts its terms, so the id->index map's order
/// never leaks into the results.
std::vector<std::int32_t> compact_ids(const std::vector<std::int32_t>& labels) {
  std::vector<std::int32_t> ids;
  for (const std::int32_t l : labels) {
    if (l >= 0) ids.push_back(l);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::size_t index_of(const std::vector<std::int32_t>& ids, std::int32_t id) {
  return static_cast<std::size_t>(
      std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
}

/// Permutation-invariant sum: sorts the terms first so the accumulation
/// order (and therefore the rounding) is a function of the multiset of
/// values only.
double stable_sum(std::vector<double>& terms) {
  std::sort(terms.begin(), terms.end());
  double s = 0.0;
  for (const double t : terms) s += t;
  return s;
}

struct Matching {
  Count overlap = 0;        ///< total matched intersection records
  std::size_t pairs = 0;    ///< matched pairs with positive intersection
};

/// Exact maximum-overlap one-to-one matching via DP over truth subsets.
/// Objective: maximize total intersection, tie-break on fewer pairs (a
/// zero-gain pair is never matched).  Both criteria are integral, so the
/// optimum value is independent of iteration order.
Matching match_exact(const std::vector<Count>& inter, std::size_t np,
                     std::size_t nt) {
  const std::size_t nmask = std::size_t{1} << nt;
  // dp[mask] = best (overlap, -pairs) using any prefix of predicted
  // clusters with truth set `mask` consumed.  Predicted clusters are
  // interchangeable across iterations (each may stay unmatched), so one
  // rolling table suffices.
  std::vector<Count> best_overlap(nmask, 0);
  std::vector<std::size_t> best_pairs(nmask, 0);
  for (std::size_t p = 0; p < np; ++p) {
    // A predicted cluster with no truth overlap can never improve the DP.
    bool any = false;
    for (std::size_t t = 0; t < nt && !any; ++t) any = inter[p * nt + t] > 0;
    if (!any) continue;
    // Iterate masks descending so each predicted cluster matches at most
    // one truth cluster per pass.
    for (std::size_t mask = nmask; mask-- > 0;) {
      for (std::size_t t = 0; t < nt; ++t) {
        const std::size_t bit = std::size_t{1} << t;
        if ((mask & bit) == 0) continue;
        const Count gain = inter[p * nt + t];
        if (gain == 0) continue;
        const Count cand = best_overlap[mask ^ bit] + gain;
        const std::size_t cand_pairs = best_pairs[mask ^ bit] + 1;
        if (cand > best_overlap[mask] ||
            (cand == best_overlap[mask] && cand_pairs < best_pairs[mask])) {
          best_overlap[mask] = cand;
          best_pairs[mask] = cand_pairs;
        }
      }
    }
  }
  Matching m;
  for (std::size_t mask = 0; mask < nmask; ++mask) {
    if (best_overlap[mask] > m.overlap ||
        (best_overlap[mask] == m.overlap && best_pairs[mask] < m.pairs)) {
      m.overlap = best_overlap[mask];
      m.pairs = best_pairs[mask];
    }
  }
  return m;
}

/// Greedy fallback for large truths: repeatedly match the largest remaining
/// intersection.  Ties broken by smaller predicted then truth cluster size
/// (id-free keys); a residual tie between structurally identical pairs
/// cannot change the total of THIS pick, only of later ones, so greedy
/// results are deterministic in practice but not guaranteed optimal.
Matching match_greedy(const std::vector<Count>& inter,
                      const std::vector<Count>& pred_size,
                      const std::vector<Count>& truth_size, std::size_t np,
                      std::size_t nt) {
  struct Pair {
    Count overlap;
    Count psize;
    Count tsize;
    std::size_t p;
    std::size_t t;
  };
  std::vector<Pair> pairs;
  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t t = 0; t < nt; ++t) {
      if (inter[p * nt + t] > 0) {
        pairs.push_back({inter[p * nt + t], pred_size[p], truth_size[t], p, t});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.overlap != b.overlap) return a.overlap > b.overlap;
    if (a.psize != b.psize) return a.psize < b.psize;
    return a.tsize < b.tsize;
  });
  std::vector<bool> p_used(np, false), t_used(nt, false);
  Matching m;
  for (const Pair& pr : pairs) {
    if (p_used[pr.p] || t_used[pr.t]) continue;
    p_used[pr.p] = true;
    t_used[pr.t] = true;
    m.overlap += pr.overlap;
    ++m.pairs;
  }
  return m;
}

/// Jaccard similarity of two ascending dim lists.
double jaccard(const std::vector<DimId>& a, const std::vector<DimId>& b) {
  std::size_t i = 0, j = 0, common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 0.0 : static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace

Scores score_clustering(const Clustering& predicted, const Clustering& truth) {
  require(predicted.labels.size() == truth.labels.size(),
          "score_clustering: label vectors differ in length");

  const std::vector<std::int32_t> pred_ids = compact_ids(predicted.labels);
  const std::vector<std::int32_t> truth_ids = compact_ids(truth.labels);
  const std::size_t np = pred_ids.size();
  const std::size_t nt = truth_ids.size();

  // Integer contingency.  Truth kUnlabeledLabel records carry no ground
  // truth and are excluded entirely; truth kNoiseLabel records count toward
  // precision (a cluster holding planted noise is impure) and the entropy
  // noise class.
  std::vector<Count> inter(np * nt, 0);
  std::vector<Count> pred_size(np, 0);        // scored records per predicted cluster
  std::vector<Count> pred_noise(np, 0);       // ... of which truth says noise
  std::vector<Count> truth_size(nt, 0);
  std::vector<Count> truth_covered(nt, 0);    // ... captured by any predicted cluster
  bool any_truth_noise = false;
  for (std::size_t r = 0; r < truth.labels.size(); ++r) {
    const std::int32_t tl = truth.labels[r];
    if (tl < 0 && tl != kNoiseLabel) continue;  // unlabeled: no truth to score
    const std::int32_t pl = predicted.labels[r];
    const std::size_t pi = pl >= 0 ? index_of(pred_ids, pl) : np;
    if (tl == kNoiseLabel) {
      any_truth_noise = true;
      if (pi < np) {
        ++pred_size[pi];
        ++pred_noise[pi];
      }
      continue;
    }
    const std::size_t ti = index_of(truth_ids, tl);
    ++truth_size[ti];
    if (pi < np) {
      ++pred_size[pi];
      ++inter[pi * nt + ti];
      ++truth_covered[ti];
    }
  }

  Count pred_total = 0, truth_total = 0, covered_total = 0;
  for (const Count c : pred_size) pred_total += c;
  for (const Count c : truth_size) truth_total += c;
  for (const Count c : truth_covered) covered_total += c;

  const Matching matching = nt <= kExactMatchTruth
                                ? match_exact(inter, np, nt)
                                : match_greedy(inter, pred_size, truth_size, np, nt);

  Scores s;
  s.predicted_clusters = np;
  s.truth_clusters = nt;
  s.matched_clusters = matching.pairs;

  // Precision/recall with the empty-side conventions: an empty prediction
  // makes no placement mistakes (precision 1) but captures nothing (recall
  // 0); a noise-only truth has nothing to capture (recall 1) and any
  // predicted cluster is then pure noise (precision 0 via overlap 0).
  const auto overlap = static_cast<double>(matching.overlap);
  s.precision =
      pred_total == 0 ? 1.0 : overlap / static_cast<double>(pred_total);
  s.recall = truth_total == 0 ? 1.0 : overlap / static_cast<double>(truth_total);
  const double pr = s.precision + s.recall;
  s.f1 = pr > 0.0 ? 2.0 * s.precision * s.recall / pr : 0.0;

  s.coverage = truth_total == 0
                   ? 1.0
                   : static_cast<double>(covered_total) /
                         static_cast<double>(truth_total);

  // Entropy: per predicted cluster, the truth-class distribution over the
  // nt truth clusters plus one noise class, normalized by ln(#classes).
  const std::size_t nclasses = nt + (any_truth_noise ? 1 : 0);
  if (pred_total > 0 && nclasses >= 2) {
    const double norm = std::log(static_cast<double>(nclasses));
    std::vector<double> cluster_terms;
    std::vector<double> class_terms;
    for (std::size_t p = 0; p < np; ++p) {
      if (pred_size[p] == 0) continue;
      const auto size = static_cast<double>(pred_size[p]);
      class_terms.clear();
      for (std::size_t t = 0; t < nt; ++t) {
        if (inter[p * nt + t] == 0) continue;
        const double frac = static_cast<double>(inter[p * nt + t]) / size;
        class_terms.push_back(-frac * std::log(frac));
      }
      if (pred_noise[p] > 0) {
        const double frac = static_cast<double>(pred_noise[p]) / size;
        class_terms.push_back(-frac * std::log(frac));
      }
      const double h = stable_sum(class_terms);
      cluster_terms.push_back(size / static_cast<double>(pred_total) * h / norm);
    }
    s.entropy = stable_sum(cluster_terms);
  }

  // Subspace recovery: needs known truth dims for at least one truth id.
  std::vector<double> recovery_terms;
  for (const std::int32_t tid : truth_ids) {
    const auto ti = static_cast<std::size_t>(tid);
    if (ti >= truth.cluster_dims.size() || truth.cluster_dims[ti].empty()) {
      continue;
    }
    double best = 0.0;
    for (const std::vector<DimId>& pdims : predicted.cluster_dims) {
      if (!pdims.empty()) best = std::max(best, jaccard(truth.cluster_dims[ti], pdims));
    }
    recovery_terms.push_back(best);
  }
  if (!recovery_terms.empty()) {
    const auto n = static_cast<double>(recovery_terms.size());
    s.subspace_recovery = stable_sum(recovery_terms) / n;
  }
  return s;
}

}  // namespace mafia::eval
