#include "dbscan/dbscan.hpp"

#include <cmath>
#include <deque>

#include "common/timer.hpp"

namespace mafia {

namespace {

/// Squared full-space Euclidean distance.
double distance2(const Dataset& data, RecordIndex a, RecordIndex b) {
  const auto ra = data.row(a);
  const auto rb = data.row(b);
  double sum = 0.0;
  for (std::size_t j = 0; j < ra.size(); ++j) {
    const double diff = static_cast<double>(ra[j]) - rb[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

DbscanResult run_dbscan(const Dataset& data, const DbscanOptions& options) {
  options.validate();
  require(data.num_records() > 0, "run_dbscan: empty data set");
  Timer timer;

  const auto n = static_cast<std::size_t>(data.num_records());
  const double eps2 = options.eps * options.eps;

  // Neighbor lists (O(N^2) scan; symmetric, so fill both sides at once).
  std::vector<std::vector<std::uint32_t>> neighbors(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (distance2(data, i, j) <= eps2) {
        neighbors[i].push_back(static_cast<std::uint32_t>(j));
        neighbors[j].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  std::vector<bool> core(n, false);
  std::size_t num_core = 0;
  for (std::size_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() + 1 >= options.min_pts;  // +1: the point itself
    num_core += core[i];
  }

  // Expand clusters by BFS from unvisited core points: core neighbors
  // continue the expansion; border points join but do not expand.
  DbscanResult result;
  result.labels.assign(n, -1);
  std::int32_t next_cluster = 0;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (!core[seed] || result.labels[seed] != -1) continue;
    const std::int32_t id = next_cluster++;
    std::deque<std::uint32_t> frontier{static_cast<std::uint32_t>(seed)};
    result.labels[seed] = id;
    while (!frontier.empty()) {
      const std::uint32_t at = frontier.front();
      frontier.pop_front();
      for (const std::uint32_t nb : neighbors[at]) {
        if (result.labels[nb] != -1) continue;
        result.labels[nb] = id;
        if (core[nb]) frontier.push_back(nb);
      }
    }
  }

  result.num_clusters = static_cast<std::size_t>(next_cluster);
  result.num_core = num_core;
  for (const std::int32_t l : result.labels) result.num_noise += (l == -1);
  result.seconds = timer.seconds();
  return result;
}

}  // namespace mafia
