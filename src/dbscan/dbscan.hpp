// DBSCAN (Ester, Kriegel, Sander, Xu — KDD 1996): the paper's reference
// [7], cited as the archetypal full-space density method ("Most of the
// earlier works in statistics and data mining operate and find clusters in
// the whole data space").
//
// DBSCAN finds maximal sets of density-connected points: a point is a CORE
// point when at least `min_pts` points (itself included) lie within `eps`
// (Euclidean, full-space); clusters are the connected components of core
// points plus the border points they reach; everything else is noise.
//
// Included to complete the related-work contrast: in high-dimensional data
// whose clusters live in subspaces, the full-space metric concentrates —
// every eps either labels (almost) everything noise or glues (almost)
// everything into one cluster, with no good value in between
// (bench_dbscan_comparison sweeps eps to show exactly that).  Neighbor
// search is the straightforward O(N^2) scan of the original paper's
// no-index fallback; this baseline is for comparison on demo-sized data,
// not production use.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/dataset.hpp"

namespace mafia {

struct DbscanOptions {
  double eps = 1.0;        ///< neighborhood radius (full-space Euclidean)
  std::size_t min_pts = 5; ///< density threshold (neighbors incl. self)

  void validate() const {
    require(eps > 0.0, "DbscanOptions: eps must be positive");
    require(min_pts >= 1, "DbscanOptions: min_pts must be positive");
  }
};

struct DbscanResult {
  /// Per-record cluster id (0-based) or -1 for noise.
  std::vector<std::int32_t> labels;
  std::size_t num_clusters = 0;
  std::size_t num_core = 0;
  std::size_t num_noise = 0;
  double seconds = 0.0;
};

/// Runs DBSCAN over an in-memory data set.
[[nodiscard]] DbscanResult run_dbscan(const Dataset& data,
                                      const DbscanOptions& options);

}  // namespace mafia
