#include "kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.hpp"
#include "common/timer.hpp"
#include "mp/comm.hpp"
#include "rng/distributions.hpp"
#include "rng/icg.hpp"

namespace mafia {

namespace {

/// Squared Euclidean distance between a record and a centroid.
double distance2(const Value* row, const double* centroid, std::size_t d) {
  double sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(row[j]) - centroid[j];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult run_kmeans(const DataSource& data, const KMeansOptions& options,
                        int p) {
  options.validate();
  require(p >= 1, "run_kmeans: need at least one rank");
  require(data.num_records() >= options.k, "run_kmeans: fewer records than k");
  Timer total;

  const std::size_t d = data.num_dims();
  const std::size_t k = options.k;

  // Deterministic initialization: k records sampled by index (same on all
  // ranks, no communication needed).
  std::vector<double> centroids(k * d);
  {
    IcgRandom rng(options.seed);
    std::vector<RecordIndex> picks;
    while (picks.size() < k) {
      const RecordIndex r = uniform_index(rng, data.num_records());
      if (std::find(picks.begin(), picks.end(), r) == picks.end()) {
        picks.push_back(r);
      }
    }
    std::sort(picks.begin(), picks.end());
    // One scan collects the picked rows (works out-of-core too).
    std::size_t next = 0;
    RecordIndex at = 0;
    data.scan(0, data.num_records(), options.chunk_records,
              [&](const Value* rows, std::size_t nrows) {
                while (next < k && picks[next] < at + nrows) {
                  const Value* row = rows + (picks[next] - at) * d;
                  for (std::size_t j = 0; j < d; ++j) {
                    centroids[next * d + j] = row[j];
                  }
                  ++next;
                }
                at += nrows;
              });
  }

  KMeansResult result;
  result.num_dims = d;
  std::size_t iterations = 0;
  double inertia = 0.0;
  std::vector<Count> sizes(k, 0);

  mp::run(p, [&](mp::Comm& comm) {
    const BlockRange my = block_partition(
        static_cast<std::size_t>(data.num_records()),
        static_cast<std::size_t>(comm.size()),
        static_cast<std::size_t>(comm.rank()));
    std::vector<double> local_centroids = centroids;

    for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
      // Local pass: accumulate per-cluster sums + counts + inertia.
      // Layout: [k*d sums][k counts][1 inertia] so ONE Reduce globalizes
      // everything — the [5] communication pattern.
      std::vector<double> acc(k * d + k + 1, 0.0);
      data.scan(my.begin, my.end, options.chunk_records,
                [&](const Value* rows, std::size_t nrows) {
                  for (std::size_t r = 0; r < nrows; ++r) {
                    const Value* row = rows + r * d;
                    double best = std::numeric_limits<double>::max();
                    std::size_t arg = 0;
                    for (std::size_t c = 0; c < k; ++c) {
                      const double dd =
                          distance2(row, local_centroids.data() + c * d, d);
                      if (dd < best) {
                        best = dd;
                        arg = c;
                      }
                    }
                    for (std::size_t j = 0; j < d; ++j) {
                      acc[arg * d + j] += row[j];
                    }
                    acc[k * d + arg] += 1.0;
                    acc[k * d + k] += best;
                  }
                });
      comm.allreduce_sum(acc);

      // New centroids (empty clusters keep their previous position).
      double moved2 = 0.0;
      for (std::size_t c = 0; c < k; ++c) {
        const double count = acc[k * d + c];
        if (count <= 0) continue;
        for (std::size_t j = 0; j < d; ++j) {
          const double updated = acc[c * d + j] / count;
          const double diff = updated - local_centroids[c * d + j];
          moved2 += diff * diff;
          local_centroids[c * d + j] = updated;
        }
      }

      if (comm.is_parent()) {
        iterations = iter + 1;
        inertia = acc[k * d + k];
        for (std::size_t c = 0; c < k; ++c) {
          sizes[c] = static_cast<Count>(acc[k * d + c]);
        }
      }
      if (std::sqrt(moved2) < options.tolerance) break;
    }
    if (comm.is_parent()) centroids = local_centroids;
  });

  result.centroids = std::move(centroids);
  result.sizes = std::move(sizes);
  result.inertia = inertia;
  result.iterations = iterations;
  result.total_seconds = total.seconds();
  return result;
}

std::vector<std::int32_t> kmeans_assign(const DataSource& data,
                                        const KMeansResult& model) {
  require(model.num_dims == data.num_dims(), "kmeans_assign: dims mismatch");
  const std::size_t d = model.num_dims;
  const std::size_t k = model.centroids.size() / d;
  std::vector<std::int32_t> labels;
  labels.reserve(static_cast<std::size_t>(data.num_records()));
  data.scan(0, data.num_records(), 1 << 16,
            [&](const Value* rows, std::size_t nrows) {
              for (std::size_t r = 0; r < nrows; ++r) {
                const Value* row = rows + r * d;
                double best = std::numeric_limits<double>::max();
                std::int32_t arg = 0;
                for (std::size_t c = 0; c < k; ++c) {
                  const double dd = distance2(row, model.centroid(c), d);
                  if (dd < best) {
                    best = dd;
                    arg = static_cast<std::int32_t>(c);
                  }
                }
                labels.push_back(arg);
              }
            });
  return labels;
}

}  // namespace mafia
