// Parallel k-means (Dhillon & Modha — Large-Scale Parallel KDD Systems,
// 1999): the paper's reference [5], discussed in Section 2: "Recently,
// k-means algorithm has been parallelized, but is limited however in its
// applicability, as it requires the user to specify k, the number of
// clusters, and also does not find clusters in subspaces."
//
// Implemented on the same mp:: SPMD runtime as pMAFIA, with the same
// structure as [5]: each rank owns N/p records; every Lloyd iteration is a
// local assignment pass plus one Reduce of the (sum, count) accumulators —
// which is precisely pMAFIA's data-parallel pattern, so the comparison
// bench isolates the ALGORITHMIC difference (full-space centroids vs
// subspace dense regions), not runtime differences.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "io/data_source.hpp"

namespace mafia {

struct KMeansOptions {
  std::size_t k = 2;              ///< user-supplied cluster count (the point)
  std::size_t max_iterations = 50;
  double tolerance = 1e-4;        ///< stop when centroids move less (L2)
  std::uint64_t seed = 1;
  std::size_t chunk_records = 1 << 16;

  void validate() const {
    require(k >= 1, "KMeansOptions: k must be positive");
    require(max_iterations >= 1, "KMeansOptions: need at least one iteration");
    require(tolerance >= 0.0, "KMeansOptions: negative tolerance");
  }
};

struct KMeansResult {
  /// k centroids, row-major (k x d).
  std::vector<double> centroids;
  std::size_t num_dims = 0;
  /// Records per cluster.
  std::vector<Count> sizes;
  /// Sum of squared distances of records to their centroid.
  double inertia = 0.0;
  std::size_t iterations = 0;
  double total_seconds = 0.0;

  [[nodiscard]] const double* centroid(std::size_t c) const {
    return centroids.data() + c * num_dims;
  }
};

/// Runs parallel k-means on `p` SPMD ranks.
[[nodiscard]] KMeansResult run_kmeans(const DataSource& data,
                                      const KMeansOptions& options, int p = 1);

/// Assigns each record to its nearest centroid (full-space Euclidean).
[[nodiscard]] std::vector<std::int32_t> kmeans_assign(const DataSource& data,
                                                      const KMeansResult& model);

}  // namespace mafia
