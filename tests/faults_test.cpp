// Fault injection: killing a rank inside any communication primitive must
// unwind every sibling — out of collective barriers and out of mailbox
// waits — and surface one FaultError from mp::run.  No deadlock (ctest
// enforces per-test timeouts), no std::terminate, and the same plan fails
// at the same place on every replay.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "core/mafia.hpp"
#include "datagen/generator.hpp"
#include "io/data_source.hpp"
#include "mp/comm.hpp"

namespace mafia {
namespace {

const int kRankCounts[] = {2, 3, 8};

/// Both transports where the build supports them: every fault-injection
/// scenario must behave identically whether ranks are threads or forked
/// processes (where an injected kill is a genuine SIGKILL).
std::vector<mp::MpBackend> backends_under_test() {
  std::vector<mp::MpBackend> backends{mp::MpBackend::Threads};
  if (mp::process_backend_supported()) {
    backends.push_back(mp::MpBackend::Process);
  }
  return backends;
}

/// Runs `fn` under `plan` on every backend and asserts the job dies with
/// the injected FaultError (not a sibling's abort echo or a deadlock).
void expect_fault(int p, const mp::FaultPlan& plan,
                  const std::function<void(mp::Comm&)>& fn) {
  for (const mp::MpBackend backend : backends_under_test()) {
    mp::RunOptions options;
    options.faults = plan;
    options.backend = backend;
    try {
      (void)mp::run(p, fn, options);
      FAIL() << "expected a FaultError, p=" << p << ", backend="
             << mp::mp_backend_name(backend);
    } catch (const mp::FaultError& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::Fault);
      EXPECT_NE(std::string(e.what()).find("injected fault"),
                std::string::npos);
    }
  }
}

TEST(FaultInjection, KillInsideAllreduce) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      // Second allreduce (op 1): siblings are already blocked in it when
      // the victim dies at entry.
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          std::vector<int> v{comm.rank()};
          comm.allreduce_sum(v);
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideReduce) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          std::vector<int> v{comm.rank()};
          comm.reduce(v, [](int a, int b) { return a + b; });
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideBcast) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          std::vector<int> v(4, comm.rank());
          comm.bcast(v);
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideGatherv) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          const std::vector<int> local(static_cast<std::size_t>(comm.rank()) + 1,
                                       comm.rank());
          (void)comm.gatherv(local);
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideAllgatherv) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          const std::vector<int> local{comm.rank()};
          (void)comm.allgatherv(local);
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideScatterv) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 1), [p](mp::Comm& comm) {
        for (int i = 0; i < 3; ++i) {
          std::vector<std::vector<int>> slices;
          if (comm.is_parent()) {
            for (int r = 0; r < p; ++r) slices.push_back({r, r});
          }
          (void)comm.scatterv(slices);
        }
      });
    }
  }
}

TEST(FaultInjection, KillInsideBarrier) {
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 2),
                   [](mp::Comm& comm) {
                     for (int i = 0; i < 4; ++i) comm.barrier();
                   });
    }
  }
}

TEST(FaultInjection, KillSenderUnblocksMailboxWait) {
  // Ring exchange: every rank sends to its successor, then receives from
  // its predecessor.  Killing one rank at its send leaves the successor
  // blocked in recv for a message that will never arrive — the abort must
  // interrupt that mailbox wait.
  for (const int p : kRankCounts) {
    for (const int victim : {0, p - 1}) {
      expect_fault(p, mp::FaultPlan{}.kill(victim, 0), [p](mp::Comm& comm) {
        const int next = (comm.rank() + 1) % p;
        const int prev = (comm.rank() + p - 1) % p;
        comm.send(next, /*tag=*/7, std::vector<int>{comm.rank()});
        const auto got = comm.recv<int>(prev, /*tag=*/7);
        ASSERT_EQ(got.size(), 1u);
        EXPECT_EQ(got[0], prev);
      });
    }
  }
}

TEST(FaultInjection, DelayedStragglerDoesNotChangeResults) {
  // A Delay spec is a straggler, not a failure: the job completes with
  // bit-identical collective results.  The check runs inside the rank
  // function (throwing on mismatch) because on the process backend the
  // ranks are forked children — writes to captured arrays never reach the
  // parent, but a thrown Error does.
  for (const mp::MpBackend backend : backends_under_test()) {
    for (const int p : kRankCounts) {
      mp::RunOptions options;
      options.faults.delay(/*rank=*/0, /*op=*/1, /*seconds=*/0.05);
      options.backend = backend;
      const int expected = p * (p * (p + 1) / 2);
      EXPECT_NO_THROW((void)mp::run(p, [expected](mp::Comm& comm) {
        std::vector<int> v{comm.rank() + 1};
        comm.allreduce_sum(v);
        comm.barrier();
        std::vector<int> w{v[0]};
        comm.allreduce_sum(w);
        if (w[0] != expected) {
          throw Error("straggler changed the sum: got " +
                          std::to_string(w[0]) + ", expected " +
                          std::to_string(expected),
                      ErrorClass::Internal);
        }
      }, options)) << "backend=" << mp::mp_backend_name(backend)
                   << " p=" << p;
    }
  }
}

TEST(FaultInjection, SamePlanFailsIdenticallyOnReplay) {
  // The same plan must fail with a byte-identical message on every replay
  // AND on every backend: the process transport reconstructs the worker's
  // FaultError in the parent, so nothing about the message may depend on
  // which side of the fork it crossed.
  const auto job = [](mp::Comm& comm) {
    for (int i = 0; i < 5; ++i) {
      std::vector<int> v{comm.rank()};
      comm.allreduce_sum(v);
    }
  };
  std::string first;
  for (const mp::MpBackend backend : backends_under_test()) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      try {
        mp::RunOptions options;
        options.faults.kill(1, 3);
        options.backend = backend;
        (void)mp::run(3, job, options);
        FAIL() << "expected a FaultError, backend="
               << mp::mp_backend_name(backend);
      } catch (const mp::FaultError& e) {
        if (first.empty()) {
          first = e.what();
          EXPECT_NE(first.find("rank 1"), std::string::npos) << first;
          EXPECT_NE(first.find("op 3"), std::string::npos) << first;
        } else {
          EXPECT_EQ(std::string(e.what()), first)
              << "backend=" << mp::mp_backend_name(backend);
        }
      }
    }
  }
}

TEST(FaultInjection, KillByOpNameFiresAtTheNamedOccurrence) {
  // Name-mode addressing counts per op kind: "rank 1's 2nd allreduce"
  // skips the two barriers before it, so it fires at global op index 3 —
  // and the fault message reports the global index and the op name, same
  // as an index-mode spec would.
  const auto job = [](mp::Comm& comm) {
    comm.barrier();
    comm.barrier();
    for (int i = 0; i < 3; ++i) {
      std::vector<int> v{comm.rank()};
      comm.allreduce_sum(v);
    }
  };
  for (const mp::MpBackend backend : backends_under_test()) {
    mp::RunOptions options;
    options.faults.kill_op(/*rank=*/1, mp::CommOp::Allreduce,
                           /*occurrence=*/1);
    options.backend = backend;
    try {
      (void)mp::run(3, job, options);
      FAIL() << "expected a FaultError, backend="
             << mp::mp_backend_name(backend);
    } catch (const mp::FaultError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
      EXPECT_NE(what.find("op 3 (allreduce)"), std::string::npos) << what;
    }
  }
}

TEST(FaultInjection, RandomKillIsSeedDeterministic) {
  const mp::FaultPlan a = mp::FaultPlan::random_kill(42, 8, 100);
  const mp::FaultPlan b = mp::FaultPlan::random_kill(42, 8, 100);
  ASSERT_EQ(a.specs().size(), 1u);
  ASSERT_EQ(b.specs().size(), 1u);
  EXPECT_EQ(a.specs()[0].rank, b.specs()[0].rank);
  EXPECT_EQ(a.specs()[0].op, b.specs()[0].op);
  EXPECT_LT(a.specs()[0].rank, 8);
  EXPECT_LT(a.specs()[0].op, 100u);

  // Different seeds must eventually produce different draws.
  bool differs = false;
  for (std::uint64_t seed = 0; seed < 16 && !differs; ++seed) {
    const mp::FaultPlan c = mp::FaultPlan::random_kill(seed, 8, 100);
    differs = c.specs()[0].rank != a.specs()[0].rank ||
              c.specs()[0].op != a.specs()[0].op;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjection, FaultDuringPmafiaRunThenCleanRerun) {
  // Killing a rank mid-run_pmafia surfaces the FaultError through the
  // driver, and the process state stays clean enough for an immediate
  // un-faulted rerun to succeed.
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = 4000;
  cfg.seed = 11;
  cfg.clusters.push_back(ClusterSpec::box({1, 4}, {20, 20}, {35, 35}));
  const Dataset data = generate(cfg);
  InMemorySource source(data);

  for (const mp::MpBackend backend : backends_under_test()) {
    MafiaOptions options;
    options.fixed_domain = {{0.0f, 100.0f}};
    options.mp.backend = backend;

    MafiaOptions faulty = options;
    faulty.fault_plan.kill(/*rank=*/1, /*op=*/2);
    EXPECT_THROW((void)run_pmafia(source, faulty, 3), mp::FaultError);

    const MafiaResult r = run_pmafia(source, options, 3);
    EXPECT_EQ(r.clusters.size(), 1u)
        << "backend=" << mp::mp_backend_name(backend);
    EXPECT_EQ(r.mp_backend, backend);
  }
}

}  // namespace
}  // namespace mafia
