// Integration tests for the pmafia CLI binary: the generate -> cluster ->
// save -> assign pipeline, the stage subcommand, and error handling.
// The binary path is injected by CMake as PMAFIA_CLI_PATH.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"

#ifndef PMAFIA_CLI_PATH
#error "PMAFIA_CLI_PATH must be defined by the build"
#endif

namespace {

std::string temp(const std::string& name) {
  // gtest_discover_tests runs each TEST as its own ctest entry, so several
  // cli_test processes run concurrently under `ctest -j` — the scratch
  // names must be per-process or parallel runs stomp each other's files.
  static const std::string pid = std::to_string(::getpid());
  return (std::filesystem::temp_directory_path() / (pid + "_" + name)).string();
}

/// Runs the CLI with `args`, captures stdout, returns {exit, output}.
std::pair<int, std::string> run_cli(const std::string& args) {
  const std::string out_file = temp("mafia_cli_test_stdout.txt");
  const std::string command =
      std::string(PMAFIA_CLI_PATH) + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(out_file.c_str());
  return {status, buffer.str()};
}

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = temp("mafia_cli_data.bin");
    model_ = temp("mafia_cli_model.txt");
    labels_ = temp("mafia_cli_labels.csv");
  }
  void TearDown() override {
    std::remove(data_.c_str());
    std::remove(model_.c_str());
    std::remove(labels_.c_str());
  }
  std::string data_;
  std::string model_;
  std::string labels_;
};

TEST_F(CliPipeline, GenerateClusterSaveAssign) {
  auto [gen_status, gen_out] = run_cli(
      "generate --out " + data_ +
      " --dims 8 --records 20000 --seed 7 --cluster 1,4,6:30:45");
  ASSERT_EQ(gen_status, 0) << gen_out;
  EXPECT_NE(gen_out.find("22000 records"), std::string::npos) << gen_out;

  auto [cl_status, cl_out] = run_cli("cluster --data " + data_ +
                                     " --ranks 2 --domain-lo 0 --domain-hi 100"
                                     " --save " + model_);
  ASSERT_EQ(cl_status, 0) << cl_out;
  EXPECT_NE(cl_out.find("subspace {1,4,6}"), std::string::npos) << cl_out;
  EXPECT_NE(cl_out.find("model saved"), std::string::npos);

  auto [as_status, as_out] = run_cli("assign --data " + data_ + " --model " +
                                     model_ + " --out " + labels_);
  ASSERT_EQ(as_status, 0) << as_out;
  EXPECT_NE(as_out.find("1 clusters"), std::string::npos) << as_out;

  // The labels file has a header plus one row per record.
  std::ifstream in(labels_);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 22001u);
}

TEST_F(CliPipeline, StageSplitsIntoRankFiles) {
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 4 --records 5000 --seed 3")
                .first,
            0);
  auto [status, out] = run_cli("stage --data " + data_ + " --ranks 3");
  ASSERT_EQ(status, 0) << out;
  EXPECT_NE(out.find("3 local partitions"), std::string::npos);
  for (int r = 0; r < 3; ++r) {
    const std::string part = data_ + ".local.rank" + std::to_string(r);
    EXPECT_TRUE(std::filesystem::exists(part)) << part;
    std::remove(part.c_str());
  }
}

TEST_F(CliPipeline, CsvRoundTripThroughCli) {
  const std::string csv = temp("mafia_cli_data.csv");
  ASSERT_EQ(run_cli("generate --out " + csv +
                    " --dims 5 --records 8000 --seed 9 --cluster 0,2:20:35")
                .first,
            0);
  auto [status, out] =
      run_cli("cluster --data " + csv + " --domain-lo 0 --domain-hi 100");
  EXPECT_EQ(status, 0) << out;
  EXPECT_NE(out.find("subspace {0,2}"), std::string::npos) << out;
  std::remove(csv.c_str());
}

TEST_F(CliPipeline, ReportJsonIsValidAndComplete) {
  const std::string report = temp("mafia_cli_report.json");
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 8 --records 20000 --seed 7 --cluster 1,4,6:30:45")
                .first,
            0);
  auto [status, out] = run_cli("cluster --data " + data_ +
                               " --ranks 4 --domain-lo 0 --domain-hi 100"
                               " --report-json " + report);
  ASSERT_EQ(status, 0) << out;
  EXPECT_NE(out.find("report written"), std::string::npos) << out;

  std::ifstream in(report);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(report.c_str());

  // The document must parse and carry every required section.
  const mafia::JsonValue doc = mafia::json_parse(buffer.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string, "pmafia-report-v1");
  EXPECT_EQ(doc.at("records").number, 22000.0);
  EXPECT_EQ(doc.at("dims").number, 8.0);
  EXPECT_EQ(doc.at("ranks").number, 4.0);
  ASSERT_TRUE(doc.at("levels").is_array());
  EXPECT_FALSE(doc.at("levels").array.empty());
  EXPECT_TRUE(doc.at("levels").array[0].has("dense_units"));
  ASSERT_TRUE(doc.at("phases").is_array());
  EXPECT_FALSE(doc.at("phases").array.empty());
  ASSERT_TRUE(doc.at("comm").is_object());
  ASSERT_EQ(doc.at("per_rank").array.size(), 4u);
  EXPECT_TRUE(doc.at("cost_model").has("predicted_seconds"));
  EXPECT_TRUE(doc.at("cost_model").has("measured_seconds"));

  // Per-phase comm deltas must sum to the job totals, and each phase's
  // max_seconds must equal the max over the per-rank breakdown.
  for (const char* counter :
       {"reduces", "bcasts", "gathers", "scatters", "collective_bytes"}) {
    double phase_sum = 0.0;
    for (const auto& phase : doc.at("phases").array) {
      phase_sum += phase.at("comm").at(counter).number;
    }
    EXPECT_EQ(phase_sum, doc.at("comm").at(counter).number) << counter;
  }
  for (const auto& phase : doc.at("phases").array) {
    const std::string& name = phase.at("name").string;
    double rank_max = 0.0;
    for (const auto& rank : doc.at("per_rank").array) {
      if (rank.at("phases").has(name)) {
        rank_max = std::max(rank_max,
                            rank.at("phases").at(name).at("seconds").number);
      }
    }
    EXPECT_EQ(phase.at("max_seconds").number, rank_max) << name;
  }
}

TEST(CliErrors, UnknownSubcommandFails) {
  EXPECT_NE(run_cli("frobnicate").first, 0);
}

TEST(CliErrors, MissingDataFlagFails) {
  auto [status, out] = run_cli("cluster");
  EXPECT_NE(status, 0);
  EXPECT_NE(out.find("--data is required"), std::string::npos) << out;
}

TEST(CliErrors, NonexistentFileFails) {
  EXPECT_NE(run_cli("cluster --data /nonexistent/never.bin").first, 0);
}

TEST(CliErrors, MalformedClusterSpecFails) {
  auto [status, out] =
      run_cli("generate --out /tmp/x.bin --cluster not-a-spec");
  EXPECT_NE(status, 0);
  EXPECT_NE(out.find("dims:lo:hi"), std::string::npos) << out;
}

}  // namespace
