// Integration tests for the pmafia CLI binary: the generate -> cluster ->
// save -> assign pipeline, the stage subcommand, and error handling.
// The binary path is injected by CMake as PMAFIA_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "mp/backend.hpp"

#ifndef PMAFIA_CLI_PATH
#error "PMAFIA_CLI_PATH must be defined by the build"
#endif

namespace {

std::string temp(const std::string& name) {
  // gtest_discover_tests runs each TEST as its own ctest entry, so several
  // cli_test processes run concurrently under `ctest -j` — the scratch
  // names must be per-process or parallel runs stomp each other's files.
  static const std::string pid = std::to_string(::getpid());
  return (std::filesystem::temp_directory_path() / (pid + "_" + name)).string();
}

/// Runs the CLI with `args`, captures stdout, returns {exit code, output}.
/// The exit code is the process's actual exit status (WEXITSTATUS), so the
/// per-failure-class codes (2 usage, 3 input, 4 resource, 5 fault) are
/// directly comparable; -1 means the process did not exit normally.
std::pair<int, std::string> run_cli(const std::string& args) {
  const std::string out_file = temp("mafia_cli_test_stdout.txt");
  const std::string command =
      std::string(PMAFIA_CLI_PATH) + " " + args + " > " + out_file + " 2>&1";
  const int status = std::system(command.c_str());
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(out_file.c_str());
  return {code, buffer.str()};
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Launches the CLI detached (shell background job) with stdout+stderr in
/// `out_file`; returns the CLI's pid, or -1.  The process is NOT our child
/// (the intermediate shell exits), so poll liveness with kill(pid, 0).
pid_t spawn_cli(const std::string& args, const std::string& out_file) {
  const std::string pid_file = out_file + ".pid";
  const std::string command = std::string(PMAFIA_CLI_PATH) + " " + args +
                              " > " + out_file + " 2>&1 & echo $! > " +
                              pid_file;
  if (std::system(command.c_str()) != 0) return -1;
  std::ifstream in(pid_file);
  pid_t pid = -1;
  in >> pid;
  std::remove(pid_file.c_str());
  return pid;
}

bool process_alive(pid_t pid) { return ::kill(pid, 0) == 0; }

/// Pids of processes whose /proc/<pid>/cmdline contains `marker` (excluding
/// this process) — how the orphan scan finds stray pmafia workers: every
/// process of the test run carries its unique scratch path on the command
/// line.
std::vector<pid_t> processes_matching(const std::string& marker) {
  std::vector<pid_t> found;
  for (const auto& entry : std::filesystem::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.find_first_not_of("0123456789") != std::string::npos) continue;
    const pid_t pid = static_cast<pid_t>(std::stol(name));
    if (pid == ::getpid()) continue;
    std::ifstream in(entry.path() / "cmdline", std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (buffer.str().find(marker) != std::string::npos) found.push_back(pid);
  }
  return found;
}

class CliPipeline : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = temp("mafia_cli_data.bin");
    model_ = temp("mafia_cli_model.txt");
    labels_ = temp("mafia_cli_labels.csv");
  }
  void TearDown() override {
    std::remove(data_.c_str());
    std::remove(model_.c_str());
    std::remove(labels_.c_str());
  }
  std::string data_;
  std::string model_;
  std::string labels_;
};

TEST_F(CliPipeline, GenerateClusterSaveAssign) {
  auto [gen_status, gen_out] = run_cli(
      "generate --out " + data_ +
      " --dims 8 --records 20000 --seed 7 --cluster 1,4,6:30:45");
  ASSERT_EQ(gen_status, 0) << gen_out;
  EXPECT_NE(gen_out.find("22000 records"), std::string::npos) << gen_out;

  auto [cl_status, cl_out] = run_cli("cluster --data " + data_ +
                                     " --ranks 2 --domain-lo 0 --domain-hi 100"
                                     " --save " + model_);
  ASSERT_EQ(cl_status, 0) << cl_out;
  EXPECT_NE(cl_out.find("subspace {1,4,6}"), std::string::npos) << cl_out;
  EXPECT_NE(cl_out.find("model saved"), std::string::npos);

  auto [as_status, as_out] = run_cli("assign --data " + data_ + " --model " +
                                     model_ + " --out " + labels_);
  ASSERT_EQ(as_status, 0) << as_out;
  EXPECT_NE(as_out.find("1 clusters"), std::string::npos) << as_out;

  // The labels file has a header plus one row per record.
  std::ifstream in(labels_);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 22001u);
}

TEST_F(CliPipeline, StageSplitsIntoRankFiles) {
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 4 --records 5000 --seed 3")
                .first,
            0);
  auto [status, out] = run_cli("stage --data " + data_ + " --ranks 3");
  ASSERT_EQ(status, 0) << out;
  EXPECT_NE(out.find("3 local partitions"), std::string::npos);
  for (int r = 0; r < 3; ++r) {
    const std::string part = data_ + ".local.rank" + std::to_string(r);
    EXPECT_TRUE(std::filesystem::exists(part)) << part;
    std::remove(part.c_str());
  }
}

TEST_F(CliPipeline, CsvRoundTripThroughCli) {
  const std::string csv = temp("mafia_cli_data.csv");
  ASSERT_EQ(run_cli("generate --out " + csv +
                    " --dims 5 --records 8000 --seed 9 --cluster 0,2:20:35")
                .first,
            0);
  auto [status, out] =
      run_cli("cluster --data " + csv + " --domain-lo 0 --domain-hi 100");
  EXPECT_EQ(status, 0) << out;
  EXPECT_NE(out.find("subspace {0,2}"), std::string::npos) << out;
  std::remove(csv.c_str());
}

TEST_F(CliPipeline, ReportJsonIsValidAndComplete) {
  const std::string report = temp("mafia_cli_report.json");
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 8 --records 20000 --seed 7 --cluster 1,4,6:30:45")
                .first,
            0);
  auto [status, out] = run_cli("cluster --data " + data_ +
                               " --ranks 4 --domain-lo 0 --domain-hi 100"
                               " --report-json " + report);
  ASSERT_EQ(status, 0) << out;
  EXPECT_NE(out.find("report written"), std::string::npos) << out;

  std::ifstream in(report);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(report.c_str());

  // The document must parse and carry every required section.
  const mafia::JsonValue doc = mafia::json_parse(buffer.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string, "pmafia-report-v1");
  EXPECT_EQ(doc.at("records").number, 22000.0);
  EXPECT_EQ(doc.at("dims").number, 8.0);
  EXPECT_EQ(doc.at("ranks").number, 4.0);
  ASSERT_TRUE(doc.at("levels").is_array());
  EXPECT_FALSE(doc.at("levels").array.empty());
  EXPECT_TRUE(doc.at("levels").array[0].has("dense_units"));
  ASSERT_TRUE(doc.at("phases").is_array());
  EXPECT_FALSE(doc.at("phases").array.empty());
  ASSERT_TRUE(doc.at("comm").is_object());
  ASSERT_EQ(doc.at("per_rank").array.size(), 4u);
  ASSERT_TRUE(doc.at("recovery").is_object());
  EXPECT_FALSE(doc.at("recovery").at("checkpoint_enabled").boolean);
  EXPECT_FALSE(doc.at("recovery").at("resumed").boolean);
  EXPECT_TRUE(doc.at("cost_model").has("predicted_seconds"));
  EXPECT_TRUE(doc.at("cost_model").has("measured_seconds"));

  // Per-phase comm deltas must sum to the job totals, and each phase's
  // max_seconds must equal the max over the per-rank breakdown.
  for (const char* counter :
       {"reduces", "bcasts", "gathers", "scatters", "collective_bytes"}) {
    double phase_sum = 0.0;
    for (const auto& phase : doc.at("phases").array) {
      phase_sum += phase.at("comm").at(counter).number;
    }
    EXPECT_EQ(phase_sum, doc.at("comm").at(counter).number) << counter;
  }
  for (const auto& phase : doc.at("phases").array) {
    const std::string& name = phase.at("name").string;
    double rank_max = 0.0;
    for (const auto& rank : doc.at("per_rank").array) {
      if (rank.at("phases").has(name)) {
        rank_max = std::max(rank_max,
                            rank.at("phases").at(name).at("seconds").number);
      }
    }
    EXPECT_EQ(phase.at("max_seconds").number, rank_max) << name;
  }
}

TEST_F(CliPipeline, BitmapPopulateKernelEndToEnd) {
  // --populate-kernel bitmap through the whole driver: same clusters as the
  // default kernel, and the report records the kernel per level plus the
  // bitmap-index footprint and the unjoined-DU fields.
  const std::string report = temp("mafia_cli_bitmap_report.json");
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 8 --records 20000 --seed 7 --cluster 1,4,6:30:45")
                .first,
            0);
  auto [status, out] = run_cli("cluster --data " + data_ +
                               " --ranks 3 --domain-lo 0 --domain-hi 100"
                               " --populate-kernel bitmap --report-json " +
                               report);
  ASSERT_EQ(status, 0) << out;
  EXPECT_NE(out.find("subspace {1,4,6}"), std::string::npos) << out;

  const mafia::JsonValue doc = mafia::json_parse(slurp(report));
  std::remove(report.c_str());
  EXPECT_EQ(doc.at("schema").string, "pmafia-report-v1");
  ASSERT_FALSE(doc.at("levels").array.empty());
  for (const auto& level : doc.at("levels").array) {
    EXPECT_EQ(level.at("populate_kernel").string, "bitmap");
    EXPECT_TRUE(level.has("bitmap_bytes"));
    EXPECT_TRUE(level.has("unjoined_dus"));
    ASSERT_TRUE(level.at("unjoined_units").is_array());
    EXPECT_LE(level.at("unjoined_units").array.size(),
              level.at("unjoined_dus").number);
  }
  EXPECT_GT(doc.at("populate_kernel").at("bitmap_subspaces").number, 0.0);
  EXPECT_GT(doc.at("populate_kernel").at("bitmap_bytes").number, 0.0);
  EXPECT_GT(doc.at("populate_kernel").at("bitmap_words_anded").number, 0.0);
  EXPECT_TRUE(doc.has("unjoined_dus"));
}

TEST_F(CliPipeline, EmptyRankPartitionsProduceValidReport) {
  // More ranks than records: some ranks own zero rows, so per-rank io stats
  // divide by zero-ish totals (the overlap fraction's read_seconds = 0
  // case).  The run must succeed, the text report must not print garbage
  // percentages, and the JSON must stay parseable (no bare nan/inf tokens).
  const std::string report = temp("mafia_cli_empty_report.json");
  ASSERT_EQ(
      run_cli("generate --out " + data_ + " --dims 4 --records 5 --seed 11")
          .first,
      0);
  auto [status, out] = run_cli("cluster --data " + data_ +
                               " --ranks 8 --domain-lo 0 --domain-hi 100"
                               " --io-prefetch --report-json " + report);
  ASSERT_EQ(status, 0) << out;
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;

  const mafia::JsonValue doc = mafia::json_parse(slurp(report));
  std::remove(report.c_str());
  EXPECT_EQ(doc.at("schema").string, "pmafia-report-v1");
  EXPECT_LT(doc.at("records").number, 8.0);  // fewer records than ranks
  ASSERT_EQ(doc.at("per_rank").array.size(), 8u);
}

TEST_F(CliPipeline, CheckpointResumeReproducesBitIdenticalReport) {
  // CLI-level crash recovery: interrupt a checkpointed run at every comm-op
  // index via --inject-fault, resume with --resume, and require the resumed
  // report's clusters and per-level count checksums to match an
  // uninterrupted baseline exactly.
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 6 --records 6000 --seed 5 --cluster 1,3,5:25:45")
                .first,
            0);
  const std::string common = "cluster --data " + data_ +
                             " --ranks 2 --domain-lo 0 --domain-hi 100";
  const std::string base_report = temp("mafia_cli_base.json");
  ASSERT_EQ(run_cli(common + " --report-json " + base_report).first, 0);
  const mafia::JsonValue baseline = mafia::json_parse(slurp(base_report));
  std::remove(base_report.c_str());

  const auto levels_of = [](const mafia::JsonValue& doc) {
    std::string flat;
    for (const auto& level : doc.at("levels").array) {
      flat += std::to_string(level.at("level").number) + ":" +
              std::to_string(level.at("cdus").number) + ":" +
              std::to_string(level.at("dense_units").number) + ":" +
              level.at("count_checksum").string + ";";
    }
    return flat;
  };
  const auto clusters_of = [](const mafia::JsonValue& doc) {
    std::vector<std::string> dnf;
    for (const auto& c : doc.at("clusters").array) {
      dnf.push_back(c.at("dnf").string);
    }
    std::sort(dnf.begin(), dnf.end());
    return dnf;
  };

  const std::string dir = temp("mafia_cli_ckpt");
  const std::string resume_report = temp("mafia_cli_resume.json");
  int interrupted = 0;
  bool saw_resume = false;
  for (int op = 0; op < 200; ++op) {
    std::filesystem::remove_all(dir);
    auto [fault_code, fault_out] =
        run_cli(common + " --checkpoint-dir " + dir + " --inject-fault 1:" +
                std::to_string(op));
    if (fault_code == 0) break;  // op index is past the end of the run
    ASSERT_EQ(fault_code, 5) << fault_out;  // injected fault exit class
    ++interrupted;

    auto [resume_code, resume_out] =
        run_cli(common + " --checkpoint-dir " + dir +
                " --resume --report-json " + resume_report);
    ASSERT_EQ(resume_code, 0) << resume_out;
    const mafia::JsonValue resumed = mafia::json_parse(slurp(resume_report));
    EXPECT_EQ(levels_of(resumed), levels_of(baseline)) << "kill op " << op;
    EXPECT_EQ(clusters_of(resumed), clusters_of(baseline)) << "kill op " << op;
    if (resumed.at("recovery").at("resumed").boolean) saw_resume = true;
  }
  std::filesystem::remove_all(dir);
  std::remove(resume_report.c_str());
  EXPECT_GT(interrupted, 0);
  // Some kill points must land after the first checkpoint write, so the
  // sweep exercised a true restore rather than only fresh-run fallback.
  EXPECT_TRUE(saw_resume);
}

TEST(CliErrors, UnknownSubcommandFails) {
  EXPECT_EQ(run_cli("frobnicate").first, 2);
}

TEST(CliErrors, MissingDataFlagFails) {
  auto [status, out] = run_cli("cluster");
  EXPECT_EQ(status, 2);  // usage-class error
  EXPECT_NE(out.find("--data is required"), std::string::npos) << out;
}

TEST(CliErrors, NonexistentFileFails) {
  EXPECT_EQ(run_cli("cluster --data /nonexistent/never.bin").first, 3);
}

TEST(CliErrors, MalformedClusterSpecFails) {
  auto [status, out] =
      run_cli("generate --out /tmp/x.bin --cluster not-a-spec");
  EXPECT_EQ(status, 2);
  EXPECT_NE(out.find("dims:lo:hi"), std::string::npos) << out;
}

TEST(CliErrors, ExitCodesDistinguishFailureClasses) {
  const std::string data = temp("mafia_cli_codes.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 5 --records 4000"
                    " --seed 2 --cluster 1,3:25:45")
                .first,
            0);
  const std::string common =
      "cluster --data " + data + " --domain-lo 0 --domain-hi 100";

  // Resource class (4): a CDU budget no level-1 candidate set fits.
  auto [resource, resource_out] = run_cli(common + " --max-cdu-bytes 16");
  EXPECT_EQ(resource, 4) << resource_out;
  EXPECT_NE(resource_out.find("CDU budget exceeded at level 1"),
            std::string::npos)
      << resource_out;

  // Fault class (5): an injected rank kill.
  auto [fault, fault_out] =
      run_cli(common + " --ranks 2 --inject-fault 0:0");
  EXPECT_EQ(fault, 5) << fault_out;
  EXPECT_NE(fault_out.find("injected fault"), std::string::npos) << fault_out;

  // Usage class (2): --resume without a checkpoint directory.
  EXPECT_EQ(run_cli(common + " --resume").first, 2);

  std::remove(data.c_str());
}

TEST(CliErrors, UnknownPopulateKernelFails) {
  const std::string data = temp("mafia_cli_kernel.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 4 --records 2000"
                    " --seed 3")
                .first,
            0);
  auto [status, out] =
      run_cli("cluster --data " + data + " --populate-kernel simd");
  EXPECT_EQ(status, 2) << out;
  EXPECT_NE(out.find("must be auto, packed, memcmp, or bitmap"),
            std::string::npos)
      << out;
  std::remove(data.c_str());
}

TEST(CliErrors, CorruptDataFilesExitWithInputCode) {
  // Every corrupt-record-file shape maps to the input class (exit 3) with
  // the reader's diagnostic relayed; the full corruption matrix lives in
  // io_corrupt_test, this pins the CLI mapping end to end.
  const std::string data = temp("mafia_cli_corrupt.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 4 --records 2000"
                    " --seed 3 --cluster 0,2:20:40")
                .first,
            0);

  // Truncated mid-row.
  const auto full_size = std::filesystem::file_size(data);
  std::filesystem::resize_file(data, full_size - 10);
  auto [truncated, truncated_out] = run_cli("cluster --data " + data);
  EXPECT_EQ(truncated, 3) << truncated_out;
  EXPECT_NE(truncated_out.find("size mismatch"), std::string::npos)
      << truncated_out;

  // Padded tail.
  std::filesystem::resize_file(data, full_size + 17);
  EXPECT_EQ(run_cli("cluster --data " + data).first, 3);

  // Bad magic.
  {
    std::fstream io(data, std::ios::binary | std::ios::in | std::ios::out);
    io.write("GARBAGE!", 8);
  }
  std::filesystem::resize_file(data, full_size);
  auto [magic, magic_out] = run_cli("cluster --data " + data);
  EXPECT_EQ(magic, 3) << magic_out;
  EXPECT_NE(magic_out.find("bad magic"), std::string::npos) << magic_out;

  std::remove(data.c_str());
}

TEST(CliErrors, FailureWritesErrorObjectToReportJson) {
  const std::string data = temp("mafia_cli_errjson.bin");
  const std::string report = temp("mafia_cli_errjson_report.json");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 5 --records 4000"
                    " --seed 2 --cluster 1,3:25:45")
                .first,
            0);
  auto [status, out] = run_cli("cluster --data " + data +
                               " --ranks 2 --domain-lo 0 --domain-hi 100"
                               " --inject-fault 1:1 --report-json " + report);
  EXPECT_EQ(status, 5) << out;

  const mafia::JsonValue doc = mafia::json_parse(slurp(report));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string, "pmafia-error-v1");
  EXPECT_EQ(doc.at("error").at("class").string, "fault");
  EXPECT_NE(doc.at("error").at("message").string.find("injected fault"),
            std::string::npos);
  std::remove(data.c_str());
  std::remove(report.c_str());
}

TEST(CliErrors, BadInjectFaultSpecsExitWithUsageCode) {
  const std::string data = temp("mafia_cli_badfault.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 4 --records 2000"
                    " --seed 3")
                .first,
            0);
  const std::string common = "cluster --data " + data + " --ranks 2";

  // Unknown op name: rejected at parse time, listing every valid name.
  auto [bad_op, bad_op_out] =
      run_cli(common + " --inject-fault 1:frobnicate");
  EXPECT_EQ(bad_op, 2) << bad_op_out;
  EXPECT_NE(bad_op_out.find("unknown op 'frobnicate'"), std::string::npos)
      << bad_op_out;
  EXPECT_NE(bad_op_out.find("barrier, allreduce, reduce, bcast, gatherv, "
                            "allgatherv, scatterv, send, recv"),
            std::string::npos)
      << bad_op_out;

  // Rank out of range for --ranks.
  auto [bad_rank, bad_rank_out] = run_cli(common + " --inject-fault 5:0");
  EXPECT_EQ(bad_rank, 2) << bad_rank_out;
  EXPECT_NE(bad_rank_out.find("rank 5 out of range"), std::string::npos)
      << bad_rank_out;

  // Malformed shapes: no colon, negative rank, junk occurrence, bad delay.
  EXPECT_EQ(run_cli(common + " --inject-fault nonsense").first, 2);
  EXPECT_EQ(run_cli(common + " --inject-fault -1:0").first, 2);
  EXPECT_EQ(run_cli(common + " --inject-fault 1:barrier@x").first, 2);
  EXPECT_EQ(run_cli(common + " --inject-fault 1:0:fast").first, 2);

  std::remove(data.c_str());
}

TEST(CliErrors, UnknownMpBackendExitsWithUsageCode) {
  const std::string data = temp("mafia_cli_badbackend.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 4 --records 1000"
                    " --seed 3")
                .first,
            0);
  auto [status, out] =
      run_cli("cluster --data " + data + " --mp-backend fibers");
  EXPECT_EQ(status, 2) << out;
  EXPECT_NE(out.find("unknown mp backend 'fibers'"), std::string::npos)
      << out;
  EXPECT_NE(out.find("threads, process"), std::string::npos) << out;
  std::remove(data.c_str());
}

TEST_F(CliPipeline, ProcessBackendReportMatchesThreadsBitIdentically) {
  if (!mafia::mp::process_backend_supported()) {
    GTEST_SKIP() << "process backend unavailable in this build";
  }
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 6 --records 8000 --seed 5 --cluster 1,3,5:25:45")
                .first,
            0);
  const std::string common = "cluster --data " + data_ +
                             " --ranks 3 --domain-lo 0 --domain-hi 100";
  const std::string threads_report = temp("mafia_cli_backend_threads.json");
  const std::string process_report = temp("mafia_cli_backend_process.json");

  auto [t_status, t_out] =
      run_cli(common + " --report-json " + threads_report);
  ASSERT_EQ(t_status, 0) << t_out;
  EXPECT_NE(t_out.find("(threads backend)"), std::string::npos) << t_out;

  auto [p_status, p_out] = run_cli(common + " --mp-backend process"
                                   " --report-json " + process_report);
  ASSERT_EQ(p_status, 0) << p_out;
  EXPECT_NE(p_out.find("(process backend)"), std::string::npos) << p_out;

  const mafia::JsonValue threads_doc =
      mafia::json_parse(slurp(threads_report));
  const mafia::JsonValue process_doc =
      mafia::json_parse(slurp(process_report));
  std::remove(threads_report.c_str());
  std::remove(process_report.c_str());

  EXPECT_EQ(threads_doc.at("mp_backend").string, "threads");
  EXPECT_EQ(process_doc.at("mp_backend").string, "process");
  ASSERT_EQ(process_doc.at("rank_exits").array.size(), 3u);
  for (const auto& e : process_doc.at("rank_exits").array) {
    EXPECT_EQ(e.at("code").number, 0.0);
    EXPECT_EQ(e.at("signal").number, 0.0);
  }

  // The cluster set and every per-level checksum must be bit-identical
  // across transports.
  const auto levels_of = [](const mafia::JsonValue& doc) {
    std::string flat;
    for (const auto& level : doc.at("levels").array) {
      flat += std::to_string(level.at("level").number) + ":" +
              std::to_string(level.at("dense_units").number) + ":" +
              level.at("count_checksum").string + ";";
    }
    return flat;
  };
  EXPECT_EQ(levels_of(process_doc), levels_of(threads_doc));
  ASSERT_EQ(process_doc.at("clusters").array.size(),
            threads_doc.at("clusters").array.size());
  for (std::size_t i = 0; i < process_doc.at("clusters").array.size(); ++i) {
    EXPECT_EQ(process_doc.at("clusters").array[i].at("dnf").string,
              threads_doc.at("clusters").array[i].at("dnf").string);
  }
}

TEST_F(CliPipeline, ProcessBackendFaultReportCarriesRankExits) {
  if (!mafia::mp::process_backend_supported()) {
    GTEST_SKIP() << "process backend unavailable in this build";
  }
  // An injected kill on the process backend is a real SIGKILL; the error
  // object in pmafia-error-v1 must carry the per-rank exit table showing
  // the victim's signal 9.
  const std::string report = temp("mafia_cli_procfault.json");
  ASSERT_EQ(run_cli("generate --out " + data_ + " --dims 5 --records 4000"
                    " --seed 2 --cluster 1,3:25:45")
                .first,
            0);
  auto [status, out] = run_cli("cluster --data " + data_ +
                               " --ranks 2 --domain-lo 0 --domain-hi 100"
                               " --mp-backend process --inject-fault 1:1"
                               " --report-json " + report);
  EXPECT_EQ(status, 5) << out;

  const mafia::JsonValue doc = mafia::json_parse(slurp(report));
  std::remove(report.c_str());
  EXPECT_EQ(doc.at("schema").string, "pmafia-error-v1");
  EXPECT_EQ(doc.at("error").at("class").string, "fault");
  const mafia::JsonValue& detail = doc.at("error").at("detail");
  EXPECT_EQ(detail.at("backend").string, "process");
  ASSERT_EQ(detail.at("rank_exits").array.size(), 2u);
  EXPECT_EQ(detail.at("rank_exits").array[1].at("signal").number, 9.0);
}

TEST_F(CliPipeline, SigkillWholeCliMidRunThenResumeIsBitIdentical) {
  if (!mafia::mp::process_backend_supported()) {
    GTEST_SKIP() << "process backend unavailable in this build";
  }
  // The crash-surviving-restart drill at full scope: SIGKILL the whole CLI
  // process tree mid-run (no cleanup code runs anywhere), assert no worker
  // process survives it (PR_SET_PDEATHSIG), then --resume and require the
  // report to match an uninterrupted baseline bit-identically.
  ASSERT_EQ(run_cli("generate --out " + data_ +
                    " --dims 6 --records 8000 --seed 5 --cluster 1,3,5:25:45")
                .first,
            0);
  // The unique checkpoint dir doubles as the /proc cmdline marker for the
  // orphan scan.
  const std::string dir = temp("mafia_cli_sigkill_ckpt");
  const std::string common = "cluster --data " + data_ +
                             " --ranks 2 --domain-lo 0 --domain-hi 100"
                             " --mp-backend process --checkpoint-dir " + dir;

  const std::string base_report = temp("mafia_cli_sigkill_base.json");
  std::filesystem::remove_all(dir);
  ASSERT_EQ(run_cli(common + " --report-json " + base_report).first, 0);
  const mafia::JsonValue baseline = mafia::json_parse(slurp(base_report));
  std::remove(base_report.c_str());

  // Stall rank 1 for 30 s at a late comm op so the run is reliably alive
  // (and mid-level) when the kill lands.  If the chosen op index is past
  // the end of the run the CLI finishes instead — fall back to earlier
  // indices; op 1 exists in any run, so the loop always produces a kill.
  const std::string out_file = temp("mafia_cli_sigkill_out.txt");
  bool killed = false;
  for (const int op : {40, 20, 10, 5, 2, 1}) {
    std::filesystem::remove_all(dir);
    const pid_t pid = spawn_cli(common + " --inject-fault 1:" +
                                    std::to_string(op) + ":30",
                                out_file);
    ASSERT_GT(pid, 0);
    for (int i = 0; i < 40 && process_alive(pid); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!process_alive(pid)) continue;  // finished before the stall: retry
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    for (int i = 0; i < 100 && process_alive(pid); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ASSERT_FALSE(process_alive(pid));
    killed = true;
    break;
  }
  std::remove(out_file.c_str());
  ASSERT_TRUE(killed);

  // No orphans: the workers carry the checkpoint dir on their command line
  // (inherited from the parent); give PDEATHSIG delivery a moment, then
  // require zero survivors.
  bool orphan_free = false;
  for (int i = 0; i < 100; ++i) {
    if (processes_matching(dir).empty()) {
      orphan_free = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(orphan_free) << "worker processes survived the parent SIGKILL";

  // Resume must complete and reproduce the baseline exactly.
  const std::string resume_report = temp("mafia_cli_sigkill_resume.json");
  auto [resume_code, resume_out] =
      run_cli(common + " --resume --report-json " + resume_report);
  ASSERT_EQ(resume_code, 0) << resume_out;
  const mafia::JsonValue resumed = mafia::json_parse(slurp(resume_report));
  std::remove(resume_report.c_str());
  std::filesystem::remove_all(dir);

  const auto levels_of = [](const mafia::JsonValue& doc) {
    std::string flat;
    for (const auto& level : doc.at("levels").array) {
      flat += std::to_string(level.at("level").number) + ":" +
              std::to_string(level.at("cdus").number) + ":" +
              std::to_string(level.at("dense_units").number) + ":" +
              level.at("count_checksum").string + ";";
    }
    return flat;
  };
  EXPECT_EQ(levels_of(resumed), levels_of(baseline));
  ASSERT_EQ(resumed.at("clusters").array.size(),
            baseline.at("clusters").array.size());
  for (std::size_t i = 0; i < resumed.at("clusters").array.size(); ++i) {
    EXPECT_EQ(resumed.at("clusters").array[i].at("dnf").string,
              baseline.at("clusters").array[i].at("dnf").string);
  }
  EXPECT_EQ(resumed.at("mp_backend").string, "process");
}

// ------------------------------------------------ scoreboard subcommand

TEST(CliScoreboard, EmitsValidScoreboardJson) {
  // Small synthetic matrix: one workload, two algorithms.  The document
  // must parse, carry the v1 schema tag, and contain one row per
  // requested algorithm.
  auto [status, out] = run_cli(
      "scoreboard --workloads tab3-boundary --algorithms pmafia,clique"
      " --records 600 --seed 7");
  ASSERT_EQ(status, 0) << out;
  const mafia::JsonValue doc = mafia::json_parse(out);
  EXPECT_EQ(doc.at("schema").string, "pmafia-scoreboard-v1");
  const mafia::JsonValue& workload = doc.at("workloads").array.at(0);
  EXPECT_EQ(workload.at("name").string, "tab3-boundary");
  ASSERT_EQ(workload.at("algorithms").array.size(), 2u);
  EXPECT_EQ(workload.at("algorithms").array.at(0).at("name").string, "pmafia");
  EXPECT_EQ(workload.at("algorithms").array.at(1).at("name").string, "clique");
}

TEST(CliScoreboard, WritesOutFileAtomically) {
  const std::string out_path = temp("mafia_cli_scoreboard.json");
  auto [status, out] = run_cli(
      "scoreboard --workloads lshape-boundary --algorithms pmafia"
      " --records 400 --out " + out_path);
  ASSERT_EQ(status, 0) << out;
  const mafia::JsonValue doc = mafia::json_parse(slurp(out_path));
  EXPECT_EQ(doc.at("schema").string, "pmafia-scoreboard-v1");
  std::remove(out_path.c_str());
}

TEST(CliScoreboard, UnknownNamesExitWithUsageCode) {
  auto [bad_algo, algo_out] = run_cli(
      "scoreboard --workloads tab3-boundary --algorithms pmafia,frobnicate"
      " --records 200");
  EXPECT_EQ(bad_algo, 2) << algo_out;
  EXPECT_NE(algo_out.find("unknown algorithm"), std::string::npos) << algo_out;

  auto [bad_workload, workload_out] =
      run_cli("scoreboard --workloads tab9-nonsense --records 200");
  EXPECT_EQ(bad_workload, 2) << workload_out;
  EXPECT_NE(workload_out.find("unknown workload"), std::string::npos)
      << workload_out;

  // A trailing comma is a usage error, not a silently shorter matrix.
  EXPECT_EQ(run_cli("scoreboard --algorithms pmafia, --records 200").first, 2);
}

TEST(CliScoreboard, TruncatedGroundTruthFileExitsWithInputCode) {
  const std::string data = temp("mafia_cli_scoreboard_trunc.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 5 --records 2000"
                    " --seed 4 --cluster 1,3:25:45")
                .first,
            0);
  std::filesystem::resize_file(data,
                               std::filesystem::file_size(data) - 12);
  auto [status, out] =
      run_cli("scoreboard --data " + data + " --algorithms pmafia");
  EXPECT_EQ(status, 3) << out;
  EXPECT_NE(out.find("size mismatch"), std::string::npos) << out;
  std::remove(data.c_str());
}

TEST(CliScoreboard, UnlabeledDataFileExitsWithInputCode) {
  // External mode needs ground truth: a record file written without labels
  // cannot be scored and must fail as bad input, not crash or emit zeros.
  const std::string csv = temp("mafia_cli_scoreboard_nolabel.csv");
  {
    std::ofstream f(csv);
    f << "a,b\n1,2\n3,4\n5,6\n";
  }
  auto [status, out] =
      run_cli("scoreboard --data " + csv + " --algorithms kmeans");
  EXPECT_EQ(status, 3) << out;
  EXPECT_NE(out.find("no ground-truth labels"), std::string::npos) << out;
  std::remove(csv.c_str());
}

TEST(CliScoreboard, ScoresLabeledExternalData) {
  const std::string data = temp("mafia_cli_scoreboard_ext.bin");
  ASSERT_EQ(run_cli("generate --out " + data + " --dims 6 --records 3000"
                    " --seed 5 --cluster 1,3:20:40 --cluster 2,4:60:80")
                .first,
            0);
  auto [status, out] = run_cli("scoreboard --data " + data +
                               " --algorithms pmafia --true-clusters 2");
  ASSERT_EQ(status, 0) << out;
  const mafia::JsonValue doc = mafia::json_parse(out);
  const mafia::JsonValue& row =
      doc.at("workloads").array.at(0).at("algorithms").array.at(0);
  ASSERT_EQ(row.at("status").string, "ok") << out;
  EXPECT_GT(row.at("metrics").at("f1").number, 0.9) << out;
  std::remove(data.c_str());
}

// --------------------------------------------------------------- serving

/// The serve daemon end-to-end at process level: generate -> cluster
/// --save -> serve -> query, plus the two lifecycle properties the daemon
/// promises — SIGTERM drains and reports, SIGKILL leaves nothing behind
/// and the same socket path is immediately reusable.
class CliServe : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = temp("mafia_cli_serve_data.bin");
    model_ = temp("mafia_cli_serve_model.txt");
    sock_ = temp("mafia_cli_serve.sock");
    report_ = temp("mafia_cli_serve_report.json");
    daemon_out_ = temp("mafia_cli_serve_daemon.txt");
    ASSERT_EQ(run_cli("generate --out " + data_ +
                      " --dims 8 --records 8000 --seed 23"
                      " --cluster 1,4:20:35 --cluster 2,5,7:60:72")
                  .first,
              0);
    // Fixed domain so the planted boxes land on bin edges and the model
    // actually holds clusters — an all-noise model would make the
    // served-vs-offline parity check below vacuously true.
    auto [cl_status, cl_out] =
        run_cli("cluster --data " + data_ + " --domain-lo 0 --domain-hi 100" +
                " --save " + model_);
    ASSERT_EQ(cl_status, 0) << cl_out;
    ASSERT_NE(cl_out.find("clusters (2"), std::string::npos) << cl_out;
  }

  void TearDown() override {
    // Belt and braces: no test should leave a daemon running.
    for (const pid_t pid : processes_matching(sock_)) ::kill(pid, SIGKILL);
    std::remove(data_.c_str());
    std::remove(model_.c_str());
    std::remove(sock_.c_str());
    std::remove(report_.c_str());
    std::remove(daemon_out_.c_str());
  }

  /// Spawns the daemon and waits until it accepts queries.
  pid_t spawn_daemon(const std::string& extra = "") {
    const pid_t pid = spawn_cli("serve --model " + model_ + " --listen unix:" +
                                    sock_ + " --serve-threads 2 " + extra,
                                daemon_out_);
    if (pid < 0) return -1;
    for (int i = 0; i < 500; ++i) {
      if (run_cli("query --listen unix:" + sock_ + " --stats").first == 0) {
        return pid;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return -1;
  }

  static void wait_until_dead(pid_t pid) {
    for (int i = 0; i < 500 && process_alive(pid); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  std::string data_;
  std::string model_;
  std::string sock_;
  std::string report_;
  std::string daemon_out_;
};

TEST_F(CliServe, ServedLabelsMatchOfflineAssignAndSigtermReports) {
  const pid_t pid = spawn_daemon("--report-json " + report_);
  ASSERT_GT(pid, 0) << slurp(daemon_out_);

  const std::string served = temp("mafia_cli_serve_labels.csv");
  const std::string offline = temp("mafia_cli_serve_offline.csv");
  auto [q_status, q_out] = run_cli("query --listen unix:" + sock_ +
                                   " --data " + data_ + " --out " + served);
  ASSERT_EQ(q_status, 0) << q_out;
  auto [a_status, a_out] = run_cli("assign --data " + data_ + " --model " +
                                   model_ + " --out " + offline);
  ASSERT_EQ(a_status, 0) << a_out;
  // Identical files, not just similar labels: both paths write the same
  // record,cluster CSV and the daemon promises bit-identical assignment.
  const std::string served_csv = slurp(served);
  EXPECT_EQ(served_csv, slurp(offline));
  // Parity alone would pass on an all-noise model; require real members.
  EXPECT_NE(served_csv.find(",0\n"), std::string::npos);
  EXPECT_NE(served_csv.find(",1\n"), std::string::npos);

  auto [s_status, s_out] =
      run_cli("query --listen unix:" + sock_ + " --stats");
  ASSERT_EQ(s_status, 0) << s_out;
  const mafia::JsonValue stats = mafia::json_parse(s_out);
  EXPECT_EQ(stats.at("schema").string, "pmafia-serve-v1");
  EXPECT_GT(stats.at("traffic").at("rows").number, 0.0);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  wait_until_dead(pid);
  EXPECT_FALSE(process_alive(pid));
  const mafia::JsonValue final_report = mafia::json_parse(slurp(report_));
  EXPECT_EQ(final_report.at("schema").string, "pmafia-serve-v1");
  EXPECT_GE(final_report.at("traffic").at("rows").number, 8000.0);
  EXPECT_NE(slurp(daemon_out_).find("pmafia serve @"), std::string::npos);

  std::remove(served.c_str());
  std::remove(offline.c_str());
}

TEST_F(CliServe, SigkillLeavesNoOrphanAndSocketPathIsReusable) {
  const pid_t pid = spawn_daemon();
  ASSERT_GT(pid, 0) << slurp(daemon_out_);

  // A query in flight when the SIGKILL lands: fire it in the background,
  // then kill the daemon without giving it a chance to drain.
  const std::string client_out = temp("mafia_cli_serve_client.txt");
  const pid_t client = spawn_cli(
      "query --listen unix:" + sock_ + " --data " + data_, client_out);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  wait_until_dead(pid);
  ASSERT_FALSE(process_alive(pid));
  if (client > 0) wait_until_dead(client);

  // No orphans: nothing with our socket path on its command line survives
  // (the daemon's workers are threads, but this also catches any future
  // helper-process regression).
  EXPECT_TRUE(processes_matching(sock_).empty());

  // SIGKILL skipped the destructor, so the socket file is still there —
  // restart on the same path must succeed anyway and serve queries.
  EXPECT_TRUE(std::filesystem::exists(sock_));
  const pid_t pid2 = spawn_daemon();
  ASSERT_GT(pid2, 0) << slurp(daemon_out_);
  auto [q_status, q_out] =
      run_cli("query --listen unix:" + sock_ + " --data " + data_);
  EXPECT_EQ(q_status, 0) << q_out;
  ASSERT_EQ(::kill(pid2, SIGTERM), 0);
  wait_until_dead(pid2);
  EXPECT_FALSE(process_alive(pid2));

  std::remove(client_out.c_str());
}

TEST_F(CliServe, AppendThenSighupServesUpdatedModelAndBadReloadKeepsOld) {
  // Re-cluster the base with a checkpoint directory so `pmafia append` has
  // a base state, overwriting the model SetUp saved (same options).
  const std::string ckpt = temp("mafia_cli_serve_ckpt");
  auto [cl_status, cl_out] =
      run_cli("cluster --data " + data_ + " --domain-lo 0 --domain-hi 100" +
              " --checkpoint-dir " + ckpt + " --save " + model_);
  ASSERT_EQ(cl_status, 0) << cl_out;

  const pid_t pid = spawn_daemon();
  ASSERT_GT(pid, 0) << slurp(daemon_out_);

  // A new batch from the same planted distribution.
  const std::string batch = temp("mafia_cli_serve_batch.bin");
  ASSERT_EQ(run_cli("generate --out " + batch +
                    " --dims 8 --records 1500 --seed 77"
                    " --cluster 1,4:20:35 --cluster 2,5,7:60:72")
                .first,
            0);

  // Incremental append rewrites the model file (atomically) while the
  // daemon keeps serving; the grid flags must match the base run so the
  // checkpoint fingerprint validates.
  auto [ap_status, ap_out] =
      run_cli("append --model " + model_ + " --checkpoint-dir " + ckpt +
              " --data " + batch + " --domain-lo 0 --domain-hi 100");
  ASSERT_EQ(ap_status, 0) << ap_out;
  EXPECT_NE(ap_out.find("\nappend: "), std::string::npos) << ap_out;
  EXPECT_NE(ap_out.find("model updated at "), std::string::npos) << ap_out;

  // Polls `query --stats` until the traffic counter `key` reaches `want`.
  const auto wait_for_counter = [&](const char* key, double want) {
    for (int i = 0; i < 500; ++i) {
      auto [s_status, s_out] =
          run_cli("query --listen unix:" + sock_ + " --stats");
      if (s_status == 0 &&
          mafia::json_parse(s_out).at("traffic").at(key).number >= want) {
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };

  // SIGHUP swaps in the updated model.
  ASSERT_EQ(::kill(pid, SIGHUP), 0);
  ASSERT_TRUE(wait_for_counter("model_reloads", 1.0));

  // Served labels on both segments must be byte-identical to offline
  // assignment with the post-append model — together these cover every
  // record of the concatenated data set.
  const std::string served = temp("mafia_cli_serve_hot_served.csv");
  const std::string offline = temp("mafia_cli_serve_hot_offline.csv");
  for (const std::string& segment : {data_, batch}) {
    auto [q_status, q_out] = run_cli("query --listen unix:" + sock_ +
                                     " --data " + segment + " --out " + served);
    ASSERT_EQ(q_status, 0) << q_out;
    auto [a_status, a_out] = run_cli("assign --data " + segment + " --model " +
                                     model_ + " --out " + offline);
    ASSERT_EQ(a_status, 0) << a_out;
    EXPECT_EQ(slurp(served), slurp(offline)) << "segment " << segment;
  }

  // A truncated model file must fail the reload and keep the old (updated)
  // model serving.
  const std::string batch_served = slurp(served);
  {
    std::ofstream trunc(model_, std::ios::trunc);
    trunc << "pmafia-model";
  }
  ASSERT_EQ(::kill(pid, SIGHUP), 0);
  ASSERT_TRUE(wait_for_counter("reload_failures", 1.0));
  auto [q2_status, q2_out] = run_cli("query --listen unix:" + sock_ +
                                     " --data " + batch + " --out " + served);
  ASSERT_EQ(q2_status, 0) << q2_out;
  EXPECT_EQ(slurp(served), batch_served);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  wait_until_dead(pid);
  EXPECT_FALSE(process_alive(pid));

  std::filesystem::remove_all(ckpt);
  std::remove(batch.c_str());
  std::remove(served.c_str());
  std::remove(offline.c_str());
}

}  // namespace
