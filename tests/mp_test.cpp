// Tests for the SPMD message-passing runtime (the MPI substitute).
// Collectives are checked against serial references across rank counts —
// including oversubscribed counts, since correctness must not depend on
// physical cores.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mp/comm.hpp"

namespace mafia::mp {
namespace {

class CollectivesAcrossRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesAcrossRanks, AllreduceSumMatchesSerial) {
  const int p = GetParam();
  std::vector<std::vector<std::uint64_t>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<std::uint64_t> v(16);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::uint64_t>(comm.rank() + 1) * (i + 1);
    }
    comm.allreduce_sum(v);
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  // Serial reference: sum over ranks of (r+1)*(i+1) = (i+1) * p(p+1)/2.
  const std::uint64_t rank_sum =
      static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p + 1) / 2;
  for (int r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)][i], (i + 1) * rank_sum)
          << "rank " << r << " elem " << i;
    }
  }
}

TEST_P(CollectivesAcrossRanks, AllreduceMinMax) {
  const int p = GetParam();
  std::vector<int> mins(static_cast<std::size_t>(p));
  std::vector<int> maxs(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<int> lo{comm.rank() * 10};
    std::vector<int> hi{comm.rank() * 10};
    comm.allreduce_min(lo);
    comm.allreduce_max(hi);
    mins[static_cast<std::size_t>(comm.rank())] = lo[0];
    maxs[static_cast<std::size_t>(comm.rank())] = hi[0];
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(mins[static_cast<std::size_t>(r)], 0);
    EXPECT_EQ(maxs[static_cast<std::size_t>(r)], (p - 1) * 10);
  }
}

TEST_P(CollectivesAcrossRanks, AllreduceOrCombinesFlags) {
  const int p = GetParam();
  std::vector<std::vector<std::uint8_t>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    // Rank r sets flag r only; OR over ranks sets flags 0..p-1.
    std::vector<std::uint8_t> flags(static_cast<std::size_t>(p) + 3, 0);
    flags[static_cast<std::size_t>(comm.rank())] = 1;
    comm.allreduce_or(flags);
    results[static_cast<std::size_t>(comm.rank())] = flags;
  });
  for (int r = 0; r < p; ++r) {
    const auto& flags = results[static_cast<std::size_t>(r)];
    for (int i = 0; i < p; ++i) EXPECT_EQ(flags[static_cast<std::size_t>(i)], 1);
    for (std::size_t i = static_cast<std::size_t>(p); i < flags.size(); ++i) {
      EXPECT_EQ(flags[i], 0);
    }
  }
}

TEST_P(CollectivesAcrossRanks, BcastDistributesRootPayload) {
  const int p = GetParam();
  std::vector<std::vector<double>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<double> payload;
    if (comm.rank() == 0) payload = {1.5, 2.5, 3.5};
    comm.bcast(payload, 0);
    results[static_cast<std::size_t>(comm.rank())] = payload;
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)],
              (std::vector<double>{1.5, 2.5, 3.5}));
  }
}

TEST_P(CollectivesAcrossRanks, GathervConcatenatesInRankOrder) {
  const int p = GetParam();
  std::vector<int> at_root;
  run(p, [&](Comm& comm) {
    // Rank r contributes r+1 copies of r.
    std::vector<int> local(static_cast<std::size_t>(comm.rank()) + 1, comm.rank());
    auto gathered = comm.gatherv(local, 0);
    if (comm.rank() == 0) at_root = gathered;
    // Non-roots receive nothing.
    if (comm.rank() != 0) EXPECT_TRUE(gathered.empty());
  });
  std::vector<int> expected;
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i <= r; ++i) expected.push_back(r);
  }
  EXPECT_EQ(at_root, expected);
}

TEST_P(CollectivesAcrossRanks, AllgathervGivesEveryRankTheConcatenation) {
  const int p = GetParam();
  std::vector<std::vector<int>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<int> local{comm.rank() * 2, comm.rank() * 2 + 1};
    results[static_cast<std::size_t>(comm.rank())] = comm.allgatherv(local);
  });
  std::vector<int> expected(static_cast<std::size_t>(2 * p));
  std::iota(expected.begin(), expected.end(), 0);
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)], expected) << "rank " << r;
  }
}

TEST_P(CollectivesAcrossRanks, ScalarHelpers) {
  const int p = GetParam();
  std::vector<std::uint64_t> sums(static_cast<std::size_t>(p));
  std::vector<int> bcasts(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    sums[static_cast<std::size_t>(comm.rank())] =
        comm.allreduce_sum_scalar<std::uint64_t>(1);
    bcasts[static_cast<std::size_t>(comm.rank())] =
        comm.bcast_scalar(comm.rank() == 0 ? 77 : -1, 0);
  });
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], static_cast<std::uint64_t>(p));
    EXPECT_EQ(bcasts[static_cast<std::size_t>(r)], 77);
  }
}

TEST_P(CollectivesAcrossRanks, RepeatedCollectivesDoNotInterfere) {
  const int p = GetParam();
  run(p, [&](Comm& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<int> v{comm.rank() + iter};
      comm.allreduce_sum(v);
      const int expected = p * iter + p * (p - 1) / 2;
      ASSERT_EQ(v[0], expected) << "iter " << iter;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesAcrossRanks,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

// -------------------------------------------------------- point-to-point

TEST(PointToPoint, RingPassesToken) {
  constexpr int kRanks = 4;
  std::vector<int> received(kRanks, -1);
  run(kRanks, [&](Comm& comm) {
    const int next = (comm.rank() + 1) % kRanks;
    const int prev = (comm.rank() + kRanks - 1) % kRanks;
    comm.send(next, /*tag=*/7, std::vector<int>{comm.rank() * 100});
    const auto msg = comm.recv<int>(prev, /*tag=*/7);
    received[static_cast<std::size_t>(comm.rank())] = msg.at(0);
  });
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(received[static_cast<std::size_t>(r)],
              ((r + kRanks - 1) % kRanks) * 100);
  }
}

TEST(PointToPoint, TagMatchingSelectsCorrectMessage) {
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/1, std::vector<int>{111});
      comm.send(1, /*tag=*/2, std::vector<int>{222});
    } else {
      // Receive out of send order: tag 2 first.
      EXPECT_EQ(comm.recv<int>(0, 2).at(0), 222);
      EXPECT_EQ(comm.recv<int>(0, 1).at(0), 111);
    }
  });
}

TEST(PointToPoint, NonOvertakingWithinTag) {
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) comm.send(1, 5, std::vector<int>{i});
    } else {
      for (int i = 0; i < 20; ++i) EXPECT_EQ(comm.recv<int>(0, 5).at(0), i);
    }
  });
}

TEST(PointToPoint, EmptyPayload) {
  run(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 3, std::vector<int>{});
    } else {
      EXPECT_TRUE(comm.recv<int>(0, 3).empty());
    }
  });
}

// --------------------------------------------------- extended collectives

TEST_P(CollectivesAcrossRanks, RootReduceOnlyChangesRoot) {
  const int p = GetParam();
  std::vector<std::vector<int>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<int> v{comm.rank() + 1};
    comm.reduce(v, [](int a, int b) { return a + b; }, 0);
    results[static_cast<std::size_t>(comm.rank())] = v;
  });
  EXPECT_EQ(results[0][0], p * (p + 1) / 2);
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)][0], r + 1)
        << "non-root rank " << r << " was modified";
  }
}

TEST_P(CollectivesAcrossRanks, ScattervDeliversPerRankSlices) {
  const int p = GetParam();
  std::vector<std::vector<int>> received(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<std::vector<int>> slices;
    if (comm.rank() == 0) {
      slices.resize(static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        // Rank r gets r+1 values, all equal to r*10.
        slices[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(r) + 1, r * 10);
      }
    }
    received[static_cast<std::size_t>(comm.rank())] = comm.scatterv(slices, 0);
  });
  for (int r = 0; r < p; ++r) {
    const auto& got = received[static_cast<std::size_t>(r)];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(r) + 1);
    for (const int v : got) EXPECT_EQ(v, r * 10);
  }
}

TEST_P(CollectivesAcrossRanks, AlltoallvExchangesEveryPair) {
  const int p = GetParam();
  std::vector<std::vector<std::vector<int>>> results(static_cast<std::size_t>(p));
  run(p, [&](Comm& comm) {
    std::vector<std::vector<int>> outgoing(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      // Payload encodes (sender, receiver).
      outgoing[static_cast<std::size_t>(r)] = {comm.rank() * 100 + r};
    }
    results[static_cast<std::size_t>(comm.rank())] = comm.alltoallv(outgoing);
  });
  for (int me = 0; me < p; ++me) {
    const auto& incoming = results[static_cast<std::size_t>(me)];
    ASSERT_EQ(incoming.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      ASSERT_EQ(incoming[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(incoming[static_cast<std::size_t>(s)][0], s * 100 + me);
    }
  }
}

// ------------------------------------------------------------------ abort

TEST(Abort, ExceptionInOneRankUnwindsSiblingsAndRethrows) {
  EXPECT_THROW(
      run(4,
          [&](Comm& comm) {
            if (comm.rank() == 2) throw Error("rank 2 failed");
            // Siblings park in a barrier; the abort must wake them.
            comm.barrier();
            comm.barrier();
          }),
      Error);
}

TEST(Abort, ExceptionWhileSiblingWaitsInRecv) {
  EXPECT_THROW(run(2,
                   [&](Comm& comm) {
                     if (comm.rank() == 0) throw Error("boom");
                     (void)comm.recv<int>(0, 9);  // would block forever
                   }),
               Error);
}

// ------------------------------------------------------------------ stats

TEST(Stats, CountsMessagesAndBytes) {
  const JobStats job = run(2, [&](Comm& comm) {
    if (comm.rank() == 0) comm.send(1, 1, std::vector<std::uint64_t>(10));
    if (comm.rank() == 1) (void)comm.recv<std::uint64_t>(0, 1);
    std::vector<std::uint32_t> v(8, 1);
    comm.allreduce_sum(v);
  });
  const CommStats total = job.total();
  EXPECT_EQ(total.p2p_messages, 1u);
  EXPECT_EQ(total.p2p_bytes, 80u);
  EXPECT_EQ(total.reduces, 2u);  // one allreduce entered on each rank
  EXPECT_EQ(total.collective_bytes, 2u * 8u * sizeof(std::uint32_t));
}

TEST(Stats, GathervAccountingPerRank) {
  // Convention: every rank counts its local contribution; the root
  // additionally counts the bytes it receives from the other ranks.
  // Rank r contributes (r+1) uint64s -> locals of 8, 16, 24 bytes.
  const JobStats job = run(3, [&](Comm& comm) {
    std::vector<std::uint64_t> local(static_cast<std::size_t>(comm.rank()) + 1,
                                     7);
    (void)comm.gatherv(local, 0);
  });
  EXPECT_EQ(job.per_rank[0].collective_bytes, 8u + (16u + 24u));  // root
  EXPECT_EQ(job.per_rank[1].collective_bytes, 16u);
  EXPECT_EQ(job.per_rank[2].collective_bytes, 24u);
  EXPECT_EQ(job.total().collective_bytes, 88u);
  EXPECT_EQ(job.total().gathers, 3u);
}

TEST(Stats, AllgathervCountsTotalPayloadPerRank) {
  // Every rank both contributes its local slice and receives everyone
  // else's, so each rank counts the full concatenated payload: 48 bytes.
  const JobStats job = run(3, [&](Comm& comm) {
    std::vector<std::uint64_t> local(static_cast<std::size_t>(comm.rank()) + 1,
                                     7);
    (void)comm.allgatherv(local);
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(job.per_rank[static_cast<std::size_t>(r)].collective_bytes,
              (8u + 16u + 24u))
        << "rank " << r;
  }
  EXPECT_EQ(job.total().collective_bytes, 3u * 48u);
  EXPECT_EQ(job.total().gathers, 3u);
}

TEST(Stats, ScattervCountsScattersNotGathers) {
  // Regression: scatterv used to increment `gathers` and double-count its
  // payload through internal bcasts.  It now has its own counter and the
  // mirror of gatherv's accounting: root counts the slices it sends to
  // other ranks, every other rank counts the slice it receives.
  const JobStats job = run(3, [&](Comm& comm) {
    std::vector<std::vector<std::uint32_t>> slices;
    if (comm.rank() == 0) {
      slices = {{1}, {2, 2}, {3, 3, 3}};  // rank r gets r+1 uint32s
    }
    (void)comm.scatterv(slices, 0);
  });
  EXPECT_EQ(job.per_rank[0].collective_bytes, (2u + 3u) * sizeof(std::uint32_t));
  EXPECT_EQ(job.per_rank[1].collective_bytes, 2u * sizeof(std::uint32_t));
  EXPECT_EQ(job.per_rank[2].collective_bytes, 3u * sizeof(std::uint32_t));
  const CommStats total = job.total();
  EXPECT_EQ(total.scatters, 3u);
  EXPECT_EQ(total.gathers, 0u);
  EXPECT_EQ(total.bcasts, 0u);
  EXPECT_EQ(total.collective_bytes, 2u * (2u + 3u) * sizeof(std::uint32_t));
  EXPECT_EQ(total.collective_ops(), 3u);
}

TEST(Stats, BcastRootCountsFanOut) {
  // Root sends its n bytes to each of the p-1 other ranks; every other
  // rank receives n bytes.  p=4, n=5 uint32s: root 60, others 20 each.
  const JobStats job = run(4, [&](Comm& comm) {
    std::vector<std::uint32_t> v(5, comm.rank() == 0 ? 9u : 0u);
    comm.bcast(v, 0);
  });
  EXPECT_EQ(job.per_rank[0].collective_bytes, 5u * 4u * 3u);
  for (int r = 1; r < 4; ++r) {
    EXPECT_EQ(job.per_rank[static_cast<std::size_t>(r)].collective_bytes,
              5u * 4u)
        << "rank " << r;
  }
  EXPECT_EQ(job.total().bcasts, 4u);
}

TEST(Stats, CommSecondsAccumulatesInsideCommCalls) {
  // With a simulated per-op latency, the in-comm wall time must show up in
  // every rank's comm_seconds (each rank stalls inside the collective).
  NetworkSimulation net;
  net.latency_seconds = 2e-3;
  const JobStats job = run(
      2,
      [&](Comm& comm) {
        std::vector<int> v{1};
        comm.allreduce_sum(v);
        comm.barrier();
      },
      net);
  for (const CommStats& s : job.per_rank) {
    EXPECT_GT(s.comm_seconds, 0.0);
  }
  // A comm-less job spends nothing.
  const JobStats idle = run(2, [&](Comm&) {});
  EXPECT_EQ(idle.total().comm_seconds, 0.0);
}

TEST(Stats, SerializeRoundTripsEveryCounter) {
  CommStats s;
  s.p2p_messages = 1;
  s.p2p_bytes = 2;
  s.barriers = 3;
  s.reduces = 4;
  s.bcasts = 5;
  s.gathers = 6;
  s.scatters = 7;
  s.collective_bytes = 8;
  s.comm_seconds = 1.25;
  const auto words = s.serialize();
  const CommStats back = CommStats::deserialize(words.data());
  EXPECT_EQ(back.p2p_messages, 1u);
  EXPECT_EQ(back.p2p_bytes, 2u);
  EXPECT_EQ(back.barriers, 3u);
  EXPECT_EQ(back.reduces, 4u);
  EXPECT_EQ(back.bcasts, 5u);
  EXPECT_EQ(back.gathers, 6u);
  EXPECT_EQ(back.scatters, 7u);
  EXPECT_EQ(back.collective_bytes, 8u);
  EXPECT_EQ(back.comm_seconds, 1.25);
}

TEST(Stats, DeltaSinceSubtractsEveryCounter) {
  CommStats early;
  early.reduces = 2;
  early.scatters = 1;
  early.collective_bytes = 100;
  early.comm_seconds = 0.5;
  CommStats late = early;
  late.reduces = 5;
  late.scatters = 4;
  late.collective_bytes = 250;
  late.comm_seconds = 0.75;
  const CommStats d = late.delta_since(early);
  EXPECT_EQ(d.reduces, 3u);
  EXPECT_EQ(d.scatters, 3u);
  EXPECT_EQ(d.collective_bytes, 150u);
  EXPECT_DOUBLE_EQ(d.comm_seconds, 0.25);
  EXPECT_EQ(d.p2p_messages, 0u);
}

TEST(Stats, CostModelScalesWithVolume) {
  CommStats small;
  small.p2p_messages = 1;
  small.p2p_bytes = 100;
  CommStats big = small;
  big.p2p_bytes = 100000000;
  const CostModel model;
  EXPECT_LT(model.communication_seconds(small), model.communication_seconds(big));
  // Latency floor: even one tiny message costs at least the latency.
  EXPECT_GE(model.communication_seconds(small), model.latency_seconds);
}

// ------------------------------------------------------ network simulation

TEST(NetworkSimulation, DelayFormula) {
  const NetworkSimulation net{0.010, 1000.0};
  EXPECT_NEAR(net.delay_for(0), 0.010, 1e-12);
  EXPECT_NEAR(net.delay_for(500), 0.510, 1e-12);
  const NetworkSimulation zero;
  EXPECT_EQ(zero.delay_for(1 << 20), 0.0);
  EXPECT_GT(NetworkSimulation::sp2().latency_seconds, 0.0);
}

TEST(NetworkSimulation, SimulatedLatencyStallsCollectives) {
  // 5 allreduces at 20 ms emulated latency must take >= 100 ms; the same
  // job without simulation finishes in a few ms.
  const auto job = [](mp::Comm& comm) {
    for (int i = 0; i < 5; ++i) {
      std::vector<int> v{comm.rank()};
      comm.allreduce_sum(v);
    }
  };
  const auto timed = [&](const NetworkSimulation& net) {
    const auto start = std::chrono::steady_clock::now();
    run(2, job, net);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  EXPECT_GE(timed(NetworkSimulation{0.020, 0.0}), 0.100);
  EXPECT_LT(timed(NetworkSimulation{}), 0.050);
}

TEST(NetworkSimulation, ResultsUnaffectedByDelays) {
  std::vector<int> with_sim(4);
  std::vector<int> without(4);
  const auto job = [](std::vector<int>& out) {
    return [&out](Comm& comm) {
      std::vector<int> v{comm.rank() * 3 + 1};
      comm.allreduce_sum(v);
      out[static_cast<std::size_t>(comm.rank())] = v[0];
    };
  };
  run(4, job(without));
  run(4, job(with_sim), NetworkSimulation{0.002, 1e6});
  EXPECT_EQ(with_sim, without);
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(run(0, [](Comm&) {}), Error);
}

TEST(Runtime, SingleRankDegeneratesGracefully) {
  run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), 1);
    EXPECT_TRUE(comm.is_parent());
    std::vector<int> v{41};
    comm.allreduce_sum(v);
    EXPECT_EQ(v[0], 41);
    auto g = comm.allgatherv(std::vector<int>{1, 2});
    EXPECT_EQ(g, (std::vector<int>{1, 2}));
  });
}

}  // namespace
}  // namespace mafia::mp
