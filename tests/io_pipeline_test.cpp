// Cross-source differential tests for the pipelined prefetching I/O layer
// (io/pipeline.hpp):
//   * chunk-sequence equivalence — randomized (begin, end, chunk_records)
//     sweeps proving InMemorySource, FileSource, StagedSource, and any of
//     them wrapped in PipelinedSource deliver bit-identical chunk
//     sequences (same boundaries, same bytes, same order);
//   * driver bit-identity — run_pmafia with prefetch on vs off yields
//     identical clusters and per-level populate checksums at every rank
//     count, over in-memory, file, and staged sources;
//   * I/O accounting — timed_scan's wait == read contract, serialization
//     round trip, merge;
//   * fault safety — a consumer-side exception (FaultError, AbortedError)
//     at any chunk unwinds the producer thread without deadlock and
//     rethrows unchanged; a producer-side failure (truncated file)
//     delivers exactly the synchronous scan's prefix, then rethrows; the
//     driver's injected kills and delays behave identically with the
//     pipeline on.  The CI TSan and fault-matrix legs run this suite.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/math_util.hpp"
#include "core/mafia.hpp"
#include "datagen/generator.hpp"
#include "io/data_source.hpp"
#include "io/pipeline.hpp"
#include "io/record_file.hpp"
#include "io/staging.hpp"
#include "mp/barrier.hpp"
#include "mp/faults.hpp"

namespace mafia {
namespace {

/// Temp file that deletes itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Dataset make_dataset(std::size_t n, std::size_t d) {
  Dataset data(d);
  std::vector<Value> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = static_cast<Value>((i * 131 + j * 17) % 997) * 0.25f;
    }
    data.append(row);
  }
  return data;
}

// ----------------------------------------------------- chunk fingerprints

/// One chunk as the consumer saw it: row count + FNV-1a over its bytes.
struct ChunkSig {
  std::size_t nrows = 0;
  std::uint64_t hash = 0;
  bool operator==(const ChunkSig&) const = default;
};

std::uint64_t fnv_bytes(const void* data, std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// The full chunk sequence a scan delivers — the object the differential
/// tests compare across sources and pipeline wrappings.
std::vector<ChunkSig> chunk_sigs(const DataSource& source, RecordIndex begin,
                                 RecordIndex end, std::size_t chunk_records) {
  std::vector<ChunkSig> sigs;
  const std::size_t d = source.num_dims();
  source.scan(begin, end, chunk_records,
              [&](const Value* rows, std::size_t nrows) {
                sigs.push_back({nrows, fnv_bytes(rows, nrows * d * sizeof(Value))});
              });
  return sigs;
}

/// Deterministic splitmix64 for the randomized sweep.
std::uint64_t next_rand(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// ----------------------------------------------------------- equivalence

TEST(PipelineEquivalence, CrossSourceChunkSequences) {
  const std::size_t d = 5;
  const RecordIndex n = 1237;
  const Dataset data = make_dataset(static_cast<std::size_t>(n), d);
  TempFile rec("mafia_pipe_xsource.rec");
  write_record_file(rec.path(), data, /*with_labels=*/true);

  const InMemorySource mem(data);
  const FileSource file(rec.path());
  const ThrottledSource throttled(mem, /*bytes_per_second=*/1e12);

  // Edge triples first, then a randomized sweep.
  std::vector<std::tuple<RecordIndex, RecordIndex, std::size_t>> cases = {
      {0, n, 64},
      {0, n, static_cast<std::size_t>(n) + 999},  // chunk_records > n
      {0, n, static_cast<std::size_t>(n)},        // exactly one chunk
      {0, 0, 16},                                  // empty at the front
      {n, n, 16},                                  // empty at the back
      {0, n, 1},                                   // one record per chunk
      {17, 18, 4},                                 // single record
  };
  std::uint64_t state = 42;
  for (int i = 0; i < 32; ++i) {
    const RecordIndex a = static_cast<RecordIndex>(next_rand(state) % (n + 1));
    const RecordIndex b = static_cast<RecordIndex>(next_rand(state) % (n + 1));
    const std::size_t chunk =
        1 + static_cast<std::size_t>(next_rand(state) % (2 * n));
    cases.emplace_back(std::min(a, b), std::max(a, b), chunk);
  }

  for (const auto& [begin, end, chunk] : cases) {
    const std::vector<ChunkSig> expect = chunk_sigs(mem, begin, end, chunk);
    const std::string where = "range [" + std::to_string(begin) + ", " +
                              std::to_string(end) + ") chunk " +
                              std::to_string(chunk);
    EXPECT_EQ(chunk_sigs(file, begin, end, chunk), expect) << "file, " << where;
    EXPECT_EQ(chunk_sigs(throttled, begin, end, chunk), expect)
        << "throttled, " << where;
    for (const std::size_t buffers : {2u, 3u, 5u}) {
      const PipelinedSource piped_mem(mem, buffers);
      const PipelinedSource piped_file(file, buffers);
      EXPECT_EQ(chunk_sigs(piped_mem, begin, end, chunk), expect)
          << "pipelined(mem, " << buffers << "), " << where;
      EXPECT_EQ(chunk_sigs(piped_file, begin, end, chunk), expect)
          << "pipelined(file, " << buffers << "), " << where;
    }
  }
}

TEST(PipelineEquivalence, StagedSourceAcrossRankCounts) {
  const std::size_t d = 4;
  const RecordIndex n = 1000;
  const Dataset data = make_dataset(static_cast<std::size_t>(n), d);
  TempFile rec("mafia_pipe_staged.rec");
  write_record_file(rec.path(), data, /*with_labels=*/false);
  const InMemorySource mem(data);

  for (const int p : {1, 2, 3, 5, 8}) {
    const std::string prefix =
        (std::filesystem::temp_directory_path() /
         ("mafia_pipe_staged_p" + std::to_string(p)))
            .string();
    const StagedPartitions parts = stage_partitions(rec.path(), prefix, p);
    const StagedSource staged(parts);
    ASSERT_EQ(staged.num_records(), n);

    // Partition-aligned scans — the driver's access pattern (rank r scans
    // its own block partition only) — must reproduce the in-memory chunk
    // sequence exactly, pipelined or not, including chunk_records larger
    // than the partition and the empty range.
    for (int r = 0; r < p; ++r) {
      const BlockRange part =
          block_partition(static_cast<std::size_t>(n), static_cast<std::size_t>(p),
                          static_cast<std::size_t>(r));
      const auto begin = static_cast<RecordIndex>(part.begin);
      const auto end = static_cast<RecordIndex>(part.end);
      EXPECT_EQ(staged.partitions_touched(begin, end), 1u) << "p=" << p;
      for (const std::size_t chunk :
           {std::size_t{31}, static_cast<std::size_t>(n) + 1}) {
        const std::vector<ChunkSig> expect = chunk_sigs(mem, begin, end, chunk);
        EXPECT_EQ(chunk_sigs(staged, begin, end, chunk), expect)
            << "staged p=" << p << " rank " << r;
        const PipelinedSource piped(staged, /*buffers=*/3);
        EXPECT_EQ(chunk_sigs(piped, begin, end, chunk), expect)
            << "pipelined(staged) p=" << p << " rank " << r;
      }
      EXPECT_TRUE(chunk_sigs(staged, begin, begin, 8).empty());
    }

    // A cross-partition scan may split chunks at partition edges, but the
    // record stream itself (bytes in order) must still be identical.
    const auto row_stream = [&](const DataSource& s, RecordIndex begin,
                                RecordIndex end, std::size_t chunk) {
      std::vector<Value> rows;
      s.scan(begin, end, chunk, [&](const Value* r0, std::size_t nrows) {
        rows.insert(rows.end(), r0, r0 + nrows * d);
      });
      return rows;
    };
    const RecordIndex lo = n / 3;
    const RecordIndex hi = (2 * n) / 3 + 7;
    const std::vector<Value> expect_rows = row_stream(mem, lo, hi, 31);
    EXPECT_EQ(row_stream(staged, lo, hi, 31), expect_rows) << "p=" << p;
    const PipelinedSource piped(staged, /*buffers=*/2);
    EXPECT_EQ(row_stream(piped, lo, hi, 31), expect_rows) << "p=" << p;
    remove_staged(parts);
  }
}

/// Clusters + per-level trace as a comparable value.
std::string result_fingerprint(const MafiaResult& r) {
  std::string s;
  for (const LevelTrace& t : r.levels) {
    s += "L" + std::to_string(t.level) + ":" + std::to_string(t.ncdu) + ":" +
         std::to_string(t.ndu) + ":" + std::to_string(t.count_checksum) + ";";
  }
  std::vector<std::string> clusters;
  for (const Cluster& c : r.clusters) {
    std::string cs;
    for (const DimId dim : c.dims) cs += "d" + std::to_string(dim);
    for (std::size_t u = 0; u < c.units.size(); ++u) {
      cs += c.units.to_string(u);
    }
    clusters.push_back(std::move(cs));
  }
  std::sort(clusters.begin(), clusters.end());
  for (const std::string& c : clusters) s += c + "|";
  return s;
}

TEST(PipelineEquivalence, DriverBitIdenticalAcrossSourcesAndPrefetch) {
  GeneratorConfig cfg;
  cfg.num_dims = 8;
  cfg.num_records = 6000;
  cfg.seed = 23;
  cfg.clusters.push_back(ClusterSpec::box({1, 4, 6}, {30, 30, 30}, {42, 42, 42}));
  cfg.clusters.push_back(ClusterSpec::box({0, 3}, {60, 60}, {75, 75}));
  const Dataset data = generate(cfg);
  TempFile rec("mafia_pipe_driver.rec");
  write_record_file(rec.path(), data, /*with_labels=*/false);
  const InMemorySource mem(data);
  const FileSource file(rec.path());

  MafiaOptions base;
  base.fixed_domain = {{0.0f, 100.0f}};
  base.chunk_records = 700;  // several chunks per rank partition

  const MafiaResult reference = run_pmafia(mem, base, 1);
  const std::string expect = result_fingerprint(reference);
  ASSERT_FALSE(reference.levels.empty());

  for (const int p : {1, 2, 3, 5, 8}) {
    const std::string prefix =
        (std::filesystem::temp_directory_path() /
         ("mafia_pipe_driver_p" + std::to_string(p)))
            .string();
    const StagedPartitions parts = stage_partitions(rec.path(), prefix, p);
    const StagedSource staged(parts);

    std::uint64_t bytes_off = 0;
    for (const std::size_t buffers : {0u, 2u, 4u}) {  // 0 = prefetch off
      MafiaOptions options = base;
      options.io.prefetch = buffers != 0;
      if (buffers != 0) options.io.buffers = buffers;

      const MafiaResult r_mem = run_pmafia(mem, options, p);
      EXPECT_EQ(result_fingerprint(r_mem), expect)
          << "mem p=" << p << " buffers=" << buffers;
      EXPECT_EQ(run_pmafia(file, options, p).io.prefetch, options.io.prefetch);
      EXPECT_EQ(result_fingerprint(run_pmafia(file, options, p)), expect)
          << "file p=" << p << " buffers=" << buffers;
      EXPECT_EQ(result_fingerprint(run_pmafia(staged, options, p)), expect)
          << "staged p=" << p << " buffers=" << buffers;

      // Same scans either way: total bytes read must not depend on the
      // pipeline (only the read/wait split does).
      const IoScanStats total = r_mem.trace.io_total();
      EXPECT_GT(total.bytes, 0u);
      if (buffers == 0) {
        bytes_off = total.bytes;
      } else {
        EXPECT_EQ(total.bytes, bytes_off) << "p=" << p << " buffers=" << buffers;
      }
    }
    remove_staged(parts);
  }
}

// ------------------------------------------------------------- accounting

TEST(PipelineStats, TimedScanWaitEqualsRead) {
  const Dataset data = make_dataset(500, 3);
  const InMemorySource mem(data);
  IoScanStats stats;
  std::size_t rows_seen = 0;
  timed_scan(mem, 0, 500, 64, [&](const Value*, std::size_t nrows) {
    rows_seen += nrows;
  }, stats);
  EXPECT_EQ(rows_seen, 500u);
  EXPECT_EQ(stats.chunks, 8u);  // ceil(500/64)
  EXPECT_EQ(stats.bytes, 500u * 3u * sizeof(Value));
  EXPECT_DOUBLE_EQ(stats.wait_seconds, stats.read_seconds);
  EXPECT_DOUBLE_EQ(stats.overlap_fraction(), 0.0);
  EXPECT_GE(stats.scan_seconds, stats.compute_seconds);
}

TEST(PipelineStats, PipelinedScanCountsChunksAndBytes) {
  const Dataset data = make_dataset(1000, 4);
  const InMemorySource mem(data);
  const PipelinedSource piped(mem, 2);
  IoScanStats stats;
  piped.scan_with_stats(100, 900, 128, [](const Value*, std::size_t) {}, stats);
  EXPECT_EQ(stats.chunks, 7u);  // ceil(800/128)
  EXPECT_EQ(stats.bytes, 800u * 4u * sizeof(Value));
  EXPECT_GE(stats.scan_seconds, 0.0);

  // Empty range: one merged no-op, no producer thread.
  IoScanStats empty;
  piped.scan_with_stats(5, 5, 16, [](const Value*, std::size_t) {
    FAIL() << "callback on empty range";
  }, empty);
  EXPECT_EQ(empty.chunks, 0u);
  EXPECT_EQ(empty.bytes, 0u);
}

TEST(PipelineStats, SerializationRoundTripAndMerge) {
  IoScanStats a;
  a.chunks = 7;
  a.bytes = 123456;
  a.read_seconds = 0.25;
  a.wait_seconds = 0.125;
  a.compute_seconds = 1.5;
  a.scan_seconds = 1.75;
  const auto words = a.serialize();
  const IoScanStats b = IoScanStats::deserialize(words.data());
  EXPECT_EQ(b.chunks, a.chunks);
  EXPECT_EQ(b.bytes, a.bytes);
  EXPECT_DOUBLE_EQ(b.read_seconds, a.read_seconds);
  EXPECT_DOUBLE_EQ(b.wait_seconds, a.wait_seconds);
  EXPECT_DOUBLE_EQ(b.compute_seconds, a.compute_seconds);
  EXPECT_DOUBLE_EQ(b.scan_seconds, a.scan_seconds);
  EXPECT_DOUBLE_EQ(a.overlap_fraction(), 0.5);

  IoScanStats sum = a;
  sum.merge(b);
  EXPECT_EQ(sum.chunks, 14u);
  EXPECT_DOUBLE_EQ(sum.read_seconds, 0.5);
  EXPECT_FALSE(sum.empty());
  EXPECT_TRUE(IoScanStats{}.empty());
}

TEST(PipelineStats, ConfigValidation) {
  EXPECT_NO_THROW(IoConfig{}.validate());
  IoConfig tiny;
  tiny.buffers = 1;
  EXPECT_THROW(tiny.validate(), Error);
  const Dataset data = make_dataset(10, 2);
  const InMemorySource mem(data);
  EXPECT_THROW(PipelinedSource(mem, 1), Error);
  EXPECT_THROW(ThrottledSource(mem, 0.0), Error);

  const PipelinedSource piped(mem, 2);
  EXPECT_THROW(piped.scan(0, 20, 4, [](const Value*, std::size_t) {}), Error)
      << "range beyond num_records";
  EXPECT_THROW(piped.scan(0, 10, 0, [](const Value*, std::size_t) {}), Error)
      << "zero chunk_records";
}

// ------------------------------------------------------------ fault safety

TEST(PipelineFaults, ConsumerThrowAtEveryChunkUnwindsProducer) {
  // A consumer-side failure at chunk k must cancel + join the producer and
  // rethrow the original exception — for every k, including the last
  // chunk, and for the smallest ring (the producer is likely blocked on a
  // full ring when the consumer dies).
  const Dataset data = make_dataset(256, 3);
  const InMemorySource mem(data);
  const std::size_t nchunks = 8;  // 256 / 32
  for (const std::size_t buffers : {2u, 4u}) {
    const PipelinedSource piped(mem, buffers);
    for (std::size_t k = 0; k < nchunks; ++k) {
      std::size_t seen = 0;
      try {
        piped.scan(0, 256, 32, [&](const Value*, std::size_t) {
          if (seen == k) throw mp::FaultError("injected fault: consumer");
          ++seen;
        });
        FAIL() << "expected FaultError at chunk " << k;
      } catch (const mp::FaultError& e) {
        EXPECT_EQ(e.error_class(), ErrorClass::Fault);
        EXPECT_EQ(seen, k);
      }
    }
  }
}

TEST(PipelineFaults, ConcurrentRankScansEachUnwind) {
  // p rank threads each running its own pipelined scan over its own
  // partition, each dying at a different chunk: every thread must unwind
  // independently (p producer threads cancelled + joined, no cross-talk).
  const Dataset data = make_dataset(4096, 3);
  const InMemorySource mem(data);
  for (const int p : {2, 3, 5, 8}) {
    std::vector<int> caught(static_cast<std::size_t>(p), 0);
    std::vector<std::thread> ranks;
    ranks.reserve(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      ranks.emplace_back([&, r] {
        const RecordIndex lo = 4096 / p * r;
        const RecordIndex hi = (r == p - 1) ? 4096 : 4096 / p * (r + 1);
        const PipelinedSource piped(mem, 2 + static_cast<std::size_t>(r) % 3);
        const std::size_t kill_at = static_cast<std::size_t>(r) % 4;
        std::size_t seen = 0;
        try {
          piped.scan(lo, hi, 64, [&](const Value*, std::size_t) {
            if (seen == kill_at) throw mp::FaultError("injected fault: rank");
            ++seen;
          });
        } catch (const mp::FaultError&) {
          caught[static_cast<std::size_t>(r)] = 1;
        }
      });
    }
    for (std::thread& t : ranks) t.join();
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(caught[static_cast<std::size_t>(r)], 1) << "rank " << r << " p=" << p;
    }
  }
}

TEST(PipelineFaults, AbortedErrorPassesThroughUnchanged) {
  // The mp runtime treats AbortedError as a sibling's echo and swallows
  // it; the pipeline must rethrow it as-is, not wrap it.
  const Dataset data = make_dataset(128, 2);
  const InMemorySource mem(data);
  const PipelinedSource piped(mem, 2);
  std::size_t seen = 0;
  EXPECT_THROW(piped.scan(0, 128, 16, [&](const Value*, std::size_t) {
    if (++seen == 2) throw mp::AbortedError();
  }), mp::AbortedError);
}

TEST(PipelineFaults, ProducerFailureDeliversSyncPrefixThenRethrows) {
  // Truncate a record file mid-row: the synchronous FileSource scan
  // delivers some complete chunks then throws InputError.  The pipelined
  // scan must deliver exactly the same prefix and then the same error.
  const std::size_t d = 4;
  const Dataset data = make_dataset(100, d);
  TempFile rec("mafia_pipe_truncated.rec");
  write_record_file(rec.path(), data, /*with_labels=*/false);
  const FileSource file(rec.path());  // header read while file was intact
  std::filesystem::resize_file(
      rec.path(), kRecordFileHeaderBytes + 37 * d * sizeof(Value) + 7);

  const auto collect = [&](std::vector<ChunkSig>& sigs) -> std::string {
    try {
      file.scan(0, 100, 10, [&](const Value* rows, std::size_t nrows) {
        sigs.push_back({nrows, fnv_bytes(rows, nrows * d * sizeof(Value))});
      });
    } catch (const Error& e) {
      EXPECT_EQ(e.error_class(), ErrorClass::Input);
      return e.what();
    }
    return "";
  };
  std::vector<ChunkSig> sync_prefix;
  const std::string sync_what = collect(sync_prefix);
  ASSERT_FALSE(sync_what.empty()) << "sync scan should have failed";
  EXPECT_EQ(sync_prefix.size(), 3u);  // 30 of 37 full rows in 10-row chunks

  const PipelinedSource piped(file, 2);
  std::vector<ChunkSig> piped_prefix;
  std::string piped_what;
  try {
    piped.scan(0, 100, 10, [&](const Value* rows, std::size_t nrows) {
      piped_prefix.push_back({nrows, fnv_bytes(rows, nrows * d * sizeof(Value))});
    });
    FAIL() << "pipelined scan should rethrow the producer's InputError";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::Input);
    piped_what = e.what();
  }
  EXPECT_EQ(piped_prefix, sync_prefix);
  EXPECT_EQ(piped_what, sync_what);
}

TEST(PipelineFaults, DriverKillWithPrefetchUnwinds) {
  // The PR-3 contract, now with p extra producer threads in flight: an
  // injected rank death mid-run must unwind every rank AND every pipeline
  // producer (join, not deadlock — ctest timeouts enforce it), and a
  // clean rerun must succeed.
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = 4000;
  cfg.seed = 11;
  cfg.clusters.push_back(ClusterSpec::box({1, 4}, {20, 20}, {35, 35}));
  const Dataset data = generate(cfg);
  const InMemorySource source(data);

  MafiaOptions options;
  options.fixed_domain = {{0.0f, 100.0f}};
  options.chunk_records = 256;
  options.io.prefetch = true;
  options.io.buffers = 2;

  for (const int p : {2, 3, 8}) {
    for (const std::uint64_t op : {0ull, 2ull}) {
      MafiaOptions faulty = options;
      faulty.fault_plan.kill(/*rank=*/p - 1, op);
      EXPECT_THROW((void)run_pmafia(source, faulty, p), mp::FaultError)
          << "p=" << p << " op=" << op;
    }
    const MafiaResult clean = run_pmafia(source, options, p);
    EXPECT_EQ(clean.clusters.size(), 1u) << "p=" << p;
  }
}

TEST(PipelineFaults, DriverDelayWithPrefetchKeepsResults) {
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = 4000;
  cfg.seed = 11;
  cfg.clusters.push_back(ClusterSpec::box({1, 4}, {20, 20}, {35, 35}));
  const Dataset data = generate(cfg);
  const InMemorySource source(data);

  MafiaOptions options;
  options.fixed_domain = {{0.0f, 100.0f}};
  options.chunk_records = 256;
  options.io.prefetch = true;

  const std::string expect = result_fingerprint(run_pmafia(source, options, 3));
  MafiaOptions delayed = options;
  delayed.fault_plan.delay(/*rank=*/1, /*op=*/1, /*seconds=*/0.02);
  EXPECT_EQ(result_fingerprint(run_pmafia(source, delayed, 3)), expect);
}

}  // namespace
}  // namespace mafia
