// Tests for the unit machinery: byte-array stores, the MAFIA/CLIQUE join
// kernels (including the paper's missed-candidate example), repeat
// elimination, population counting, and density identification.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "grid/uniform_grid.hpp"
#include "taskpart/taskpart.hpp"
#include "units/dedup.hpp"
#include "units/identify.hpp"
#include "units/join.hpp"
#include "units/populate.hpp"
#include "units/unit_store.hpp"

namespace mafia {
namespace {

UnitStore make_store(std::size_t k,
                     const std::vector<std::pair<std::vector<DimId>,
                                                 std::vector<BinId>>>& units) {
  UnitStore s(k);
  for (const auto& [dims, bins] : units) s.push(dims, bins);
  return s;
}

// -------------------------------------------------------------- UnitStore

TEST(UnitStore, SizeAndAccessors) {
  UnitStore s(2);
  EXPECT_TRUE(s.empty());
  s.push(std::vector<DimId>{1, 4}, std::vector<BinId>{7, 2});
  s.push(std::vector<DimId>{0, 9}, std::vector<BinId>{3, 3});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.dims(0)[1], 4);
  EXPECT_EQ(s.bins(1)[0], 3);
}

TEST(UnitStore, PushRejectsUnsortedDims) {
  UnitStore s(2);
  EXPECT_THROW(s.push(std::vector<DimId>{4, 1}, std::vector<BinId>{0, 0}), Error);
  EXPECT_THROW(s.push(std::vector<DimId>{4, 4}, std::vector<BinId>{0, 0}), Error);
}

TEST(UnitStore, EqualityAndHash) {
  auto s = make_store(2, {{{1, 4}, {7, 2}}, {{1, 4}, {7, 2}}, {{1, 4}, {7, 3}}});
  EXPECT_TRUE(s.equal(0, 1));
  EXPECT_FALSE(s.equal(0, 2));
  EXPECT_EQ(s.hash(0), s.hash(1));
  EXPECT_NE(s.hash(0), s.hash(2));  // FNV-1a: different content, different hash here
}

TEST(UnitStore, ByteRoundTrip) {
  auto s = make_store(3, {{{0, 2, 5}, {1, 1, 1}}, {{1, 3, 4}, {9, 8, 7}}});
  UnitStore copy = UnitStore::from_bytes(3, s.dim_bytes(), s.bin_bytes());
  ASSERT_EQ(copy.size(), 2u);
  EXPECT_TRUE(copy.equal(0, s, 0));
  EXPECT_TRUE(copy.equal(1, s, 1));
}

TEST(UnitStore, FromBytesRejectsMisalignedArrays) {
  EXPECT_THROW((void)UnitStore::from_bytes(3, std::vector<DimId>(4),
                                           std::vector<BinId>(4)),
               Error);
  EXPECT_THROW((void)UnitStore::from_bytes(2, std::vector<DimId>(4),
                                           std::vector<BinId>(6)),
               Error);
}

TEST(UnitStore, AppendConcatenates) {
  auto a = make_store(1, {{{0}, {1}}});
  auto b = make_store(1, {{{2}, {3}}});
  a.append(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.dims(1)[0], 2);
}

TEST(UnitStore, ToStringRendersUnit) {
  auto s = make_store(2, {{{1, 7}, {3, 8}}});
  EXPECT_EQ(s.to_string(0), "{d1:b3, d7:b8}");
}

// ------------------------------------------------------------------- join

TEST(Join, PaperExampleMafiaFindsWhatCliqueMisses) {
  // Section 3: dense units {a1,b7,c8} and {b7,c8,d9} over dims (a,b,c,d) =
  // (1,7,8,9 by subscript... here dims 0,1,2,3 with bins 1,7,8,9):
  // MAFIA's any-(k-2) join yields the 4-d candidate {a1,b7,c8,d9};
  // CLIQUE's first-(k-2) prefix join yields nothing.
  auto dense = make_store(3, {{{0, 1, 2}, {1, 7, 8}}, {{1, 2, 3}, {7, 8, 9}}});

  const JoinResult mafia_join = join_dense_units(dense, JoinRule::MafiaAnyShared);
  ASSERT_EQ(mafia_join.cdus.size(), 1u);
  EXPECT_EQ(mafia_join.cdus.to_string(0), "{d0:b1, d1:b7, d2:b8, d3:b9}");
  EXPECT_EQ(mafia_join.parents.at(0), (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(mafia_join.combined, (std::vector<std::uint8_t>{1, 1}));

  const JoinResult clique_join = join_dense_units(dense, JoinRule::CliquePrefix);
  EXPECT_EQ(clique_join.cdus.size(), 0u);
  EXPECT_EQ(clique_join.combined, (std::vector<std::uint8_t>{0, 0}));
}

TEST(Join, SharedDimsRequireEqualBins) {
  auto dense = make_store(2, {{{0, 1}, {5, 5}}, {{1, 2}, {6, 5}}});
  // Shared dim 1 has bins 5 vs 6: incompatible.
  EXPECT_EQ(join_dense_units(dense, JoinRule::MafiaAnyShared).cdus.size(), 0u);
}

TEST(Join, OneDimensionalUnitsPairUp) {
  // k=2 join: any two dense 1-d units in different dims combine.
  auto dense = make_store(1, {{{0}, {3}}, {{1}, {5}}, {{1}, {6}}, {{2}, {0}}});
  const JoinResult r = join_dense_units(dense, JoinRule::MafiaAnyShared);
  // Pairs: (0,1),(0,2),(0,3),(1,3),(2,3) — (1,2) share dim 1 and differ in
  // bins, so they do not join.
  EXPECT_EQ(r.cdus.size(), 5u);
  // CLIQUE's rule coincides at k=2 (empty prefix).
  EXPECT_EQ(join_dense_units(dense, JoinRule::CliquePrefix).cdus.size(), 5u);
}

TEST(Join, ResultDimsAreSorted) {
  auto dense = make_store(2, {{{2, 7}, {1, 1}}, {{0, 7}, {4, 1}}});
  const JoinResult r = join_dense_units(dense, JoinRule::MafiaAnyShared);
  ASSERT_EQ(r.cdus.size(), 1u);
  const auto dims = r.cdus.dims(0);
  EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()));
  EXPECT_EQ(r.cdus.to_string(0), "{d0:b4, d2:b1, d7:b1}");
}

TEST(Join, RangePartitionUnionEqualsFullJoin) {
  // Split the i-range across 3 "ranks": the concatenation of their raw CDU
  // outputs must equal the full serial join (in pair order).
  auto dense = make_store(1, {{{0}, {1}},
                              {{1}, {1}},
                              {{2}, {1}},
                              {{3}, {1}},
                              {{4}, {1}},
                              {{5}, {1}}});
  const JoinResult full = join_dense_units(dense, JoinRule::MafiaAnyShared);

  UnitStore merged(2);
  std::vector<std::uint8_t> combined(dense.size(), 0);
  const std::size_t bounds[] = {0, 2, 4, 6};
  for (int r = 0; r < 3; ++r) {
    const JoinResult part = join_dense_units(dense, JoinRule::MafiaAnyShared,
                                             bounds[r], bounds[r + 1]);
    merged.append(part.cdus);
    for (std::size_t i = 0; i < combined.size(); ++i) {
      combined[i] |= part.combined[i];
    }
  }
  ASSERT_EQ(merged.size(), full.cdus.size());
  for (std::size_t u = 0; u < merged.size(); ++u) {
    EXPECT_TRUE(merged.equal(u, full.cdus, u)) << "unit " << u;
  }
  EXPECT_EQ(combined, full.combined);
}

TEST(Join, MafiaJoinMatchesBruteForceDefinition) {
  // Property test: for a batch of random-ish 3-d dense units, every pair
  // sharing exactly 2 (dim,bin) coordinates with a 4-dim union must appear
  // in the join output, and nothing else.
  std::vector<std::pair<std::vector<DimId>, std::vector<BinId>>> defs;
  for (DimId a = 0; a < 4; ++a) {
    for (DimId b = static_cast<DimId>(a + 1); b < 5; ++b) {
      for (DimId c = static_cast<DimId>(b + 1); c < 6; ++c) {
        defs.push_back({{a, b, c}, {static_cast<BinId>(a + b),
                                    static_cast<BinId>(b + c),
                                    static_cast<BinId>(a + c)}});
      }
    }
  }
  UnitStore dense = make_store(3, defs);
  const JoinResult r = join_dense_units(dense, JoinRule::MafiaAnyShared);

  // Brute force over pairs.
  std::size_t expected = 0;
  for (std::size_t i = 0; i < dense.size(); ++i) {
    for (std::size_t j = i + 1; j < dense.size(); ++j) {
      std::map<DimId, BinId> merged;
      bool compatible = true;
      for (std::size_t t = 0; t < 3 && compatible; ++t) {
        merged[dense.dims(i)[t]] = dense.bins(i)[t];
      }
      for (std::size_t t = 0; t < 3 && compatible; ++t) {
        const DimId d = dense.dims(j)[t];
        const auto it = merged.find(d);
        if (it == merged.end()) {
          merged[d] = dense.bins(j)[t];
        } else if (it->second != dense.bins(j)[t]) {
          compatible = false;
        }
      }
      if (compatible && merged.size() == 4) ++expected;
    }
  }
  EXPECT_EQ(r.cdus.size(), expected);
}

// --------------------------------------------------------- bucketed kernel

TEST(Join, PaperExampleHoldsUnderBucketedKernel) {
  // The Section 3 example again, through the bucket-indexed kernel: MAFIA's
  // rule produces {a1,b7,c8,d9}, CLIQUE's prefix rule misses it — the
  // kernels must agree with the pairwise scan rule for rule.
  auto dense = make_store(3, {{{0, 1, 2}, {1, 7, 8}}, {{1, 2, 3}, {7, 8, 9}}});

  const JoinResult mafia_join =
      bucket_join_dense_units(dense, JoinRule::MafiaAnyShared);
  ASSERT_EQ(mafia_join.cdus.size(), 1u);
  EXPECT_EQ(mafia_join.cdus.to_string(0), "{d0:b1, d1:b7, d2:b8, d3:b9}");
  EXPECT_EQ(mafia_join.parents.at(0),
            (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
  EXPECT_EQ(mafia_join.combined, (std::vector<std::uint8_t>{1, 1}));
  EXPECT_EQ(mafia_join.stats.emitted, 1u);

  const JoinResult clique_join =
      bucket_join_dense_units(dense, JoinRule::CliquePrefix);
  EXPECT_EQ(clique_join.cdus.size(), 0u);
  EXPECT_EQ(clique_join.combined, (std::vector<std::uint8_t>{0, 0}));
}

TEST(Join, BucketedMatchesPairwiseOnBruteForceStore) {
  // Same store as MafiaJoinMatchesBruteForceDefinition: the bucketed kernel
  // must reproduce the pairwise raw sequence bit for bit, parents included,
  // in strictly fewer probes (the point of the index).
  std::vector<std::pair<std::vector<DimId>, std::vector<BinId>>> defs;
  for (DimId a = 0; a < 4; ++a) {
    for (DimId b = static_cast<DimId>(a + 1); b < 5; ++b) {
      for (DimId c = static_cast<DimId>(b + 1); c < 6; ++c) {
        defs.push_back({{a, b, c}, {static_cast<BinId>(a + b),
                                    static_cast<BinId>(b + c),
                                    static_cast<BinId>(a + c)}});
      }
    }
  }
  UnitStore dense = make_store(3, defs);
  for (const JoinRule rule :
       {JoinRule::MafiaAnyShared, JoinRule::CliquePrefix}) {
    const JoinResult pw = join_dense_units(dense, rule);
    const JoinResult bk = bucket_join_dense_units(dense, rule);
    ASSERT_EQ(bk.cdus.size(), pw.cdus.size());
    for (std::size_t u = 0; u < pw.cdus.size(); ++u) {
      EXPECT_TRUE(bk.cdus.equal(u, pw.cdus, u)) << "unit " << u;
    }
    EXPECT_EQ(bk.parents, pw.parents);
    EXPECT_EQ(bk.combined, pw.combined);
    EXPECT_EQ(bk.stats.emitted, pw.stats.emitted);
    EXPECT_LT(bk.stats.probes, pw.stats.probes);
    EXPECT_GT(bk.stats.buckets, 0u);
  }
}

TEST(Join, BucketRangeUnionEqualsFullBucketedJoin) {
  // Split the bucket ranges with the weight-balanced partitioner ("rank"
  // pieces concatenated in order, then parent-sorted): must equal both the
  // full bucketed join and the pairwise scan.
  std::vector<std::pair<std::vector<DimId>, std::vector<BinId>>> defs;
  for (DimId a = 0; a < 5; ++a) {
    for (DimId b = static_cast<DimId>(a + 1); b < 6; ++b) {
      defs.push_back({{a, b}, {static_cast<BinId>(a % 2), static_cast<BinId>(b % 2)}});
    }
  }
  UnitStore dense = make_store(2, defs);
  const JoinResult pw = join_dense_units(dense, JoinRule::MafiaAnyShared);

  const JoinBucketIndex index(dense, JoinRule::MafiaAnyShared);
  const auto bounds = weight_balanced_partition(index.bucket_work(), 3);
  UnitStore merged(3);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> parents;
  std::uint64_t buckets = 0;
  for (std::size_t r = 0; r < 3; ++r) {
    const JoinResult part = index.join_range(bounds[r], bounds[r + 1]);
    merged.append(part.cdus);
    parents.insert(parents.end(), part.parents.begin(), part.parents.end());
    buckets += part.stats.buckets;
  }
  EXPECT_EQ(buckets, index.num_buckets());
  sort_cdus_by_parents(merged, parents);
  ASSERT_EQ(merged.size(), pw.cdus.size());
  for (std::size_t u = 0; u < merged.size(); ++u) {
    EXPECT_TRUE(merged.equal(u, pw.cdus, u)) << "unit " << u;
  }
  EXPECT_EQ(parents, pw.parents);
}

TEST(Join, BucketedHandlesOneDimensionalUnits) {
  // k−1 == 1: the sub-signature is empty, so the index degenerates to one
  // global bucket and must still reproduce the pairwise output (the driver
  // prefers the triangular scan here, but the kernel stays correct).
  auto dense = make_store(1, {{{0}, {3}}, {{1}, {5}}, {{1}, {6}}, {{2}, {0}}});
  const JoinResult pw = join_dense_units(dense, JoinRule::MafiaAnyShared);
  const JoinResult bk = bucket_join_dense_units(dense, JoinRule::MafiaAnyShared);
  EXPECT_EQ(bk.stats.buckets, 1u);
  ASSERT_EQ(bk.cdus.size(), pw.cdus.size());
  for (std::size_t u = 0; u < pw.cdus.size(); ++u) {
    EXPECT_TRUE(bk.cdus.equal(u, pw.cdus, u)) << "unit " << u;
  }
  EXPECT_EQ(bk.parents, pw.parents);
}

TEST(Join, BucketedEmptyStore) {
  UnitStore dense(2);
  const JoinResult bk = bucket_join_dense_units(dense, JoinRule::MafiaAnyShared);
  EXPECT_EQ(bk.cdus.size(), 0u);
  EXPECT_EQ(bk.stats.probes, 0u);
}

// ------------------------------------------------------------------ dedup

UnitStore repeated_store() {
  return make_store(2, {{{0, 1}, {1, 1}},
                        {{0, 2}, {3, 3}},
                        {{0, 1}, {1, 1}},    // repeat of 0
                        {{1, 2}, {5, 5}},
                        {{0, 2}, {3, 3}},    // repeat of 1
                        {{0, 1}, {1, 1}}});  // repeat of 0
}

TEST(Dedup, HashRemovesRepeatsPreservingFirstOccurrenceOrder) {
  const UnitStore raw = repeated_store();
  const DedupResult dd = dedup_hash(raw);
  ASSERT_EQ(dd.unique.size(), 3u);
  EXPECT_EQ(dd.num_repeats, 3u);
  EXPECT_EQ(dd.unique.to_string(0), "{d0:b1, d1:b1}");
  EXPECT_EQ(dd.unique.to_string(1), "{d0:b3, d2:b3}");
  EXPECT_EQ(dd.unique.to_string(2), "{d1:b5, d2:b5}");
  EXPECT_EQ(dd.raw_to_unique,
            (std::vector<std::uint32_t>{0, 1, 0, 2, 1, 0}));
}

TEST(Dedup, PairwiseFlagsMatchDefinition) {
  const UnitStore raw = repeated_store();
  const auto flags = pairwise_repeat_flags(raw, 0, raw.size());
  EXPECT_EQ(flags, (std::vector<std::uint8_t>{0, 0, 1, 0, 1, 1}));
}

TEST(Dedup, PairwisePartitionedOrEqualsSerial) {
  const UnitStore raw = repeated_store();
  const auto serial = pairwise_repeat_flags(raw, 0, raw.size());
  std::vector<std::uint8_t> combined(raw.size(), 0);
  const std::size_t bounds[] = {0, 2, 4, 6};
  for (int r = 0; r < 3; ++r) {
    const auto part = pairwise_repeat_flags(raw, bounds[r], bounds[r + 1]);
    for (std::size_t i = 0; i < combined.size(); ++i) combined[i] |= part[i];
  }
  EXPECT_EQ(combined, serial);
}

TEST(Dedup, FlagsPathEqualsHashPath) {
  const UnitStore raw = repeated_store();
  const DedupResult a = dedup_hash(raw);
  const DedupResult b =
      dedup_from_flags(raw, pairwise_repeat_flags(raw, 0, raw.size()));
  ASSERT_EQ(a.unique.size(), b.unique.size());
  for (std::size_t u = 0; u < a.unique.size(); ++u) {
    EXPECT_TRUE(a.unique.equal(u, b.unique, u));
  }
  EXPECT_EQ(a.raw_to_unique, b.raw_to_unique);
  EXPECT_EQ(a.num_repeats, b.num_repeats);
}

class DedupEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(DedupEquivalenceSweep, HashAndPairwiseAgreeOnSyntheticBatches) {
  // Deterministic pseudo-random batch with heavy repetition.
  const int n = GetParam();
  UnitStore raw(2);
  std::uint64_t state = static_cast<std::uint64_t>(n) * 2654435761u + 1;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const DimId d0 = static_cast<DimId>((state >> 10) % 3);
    const DimId d1 = static_cast<DimId>(3 + (state >> 20) % 3);
    const BinId b0 = static_cast<BinId>((state >> 30) % 4);
    const BinId b1 = static_cast<BinId>((state >> 40) % 4);
    const DimId dims[2] = {d0, d1};
    const BinId bins[2] = {b0, b1};
    raw.push_unchecked(dims, bins);
  }
  const DedupResult a = dedup_hash(raw);
  const DedupResult b =
      dedup_from_flags(raw, pairwise_repeat_flags(raw, 0, raw.size()));
  ASSERT_EQ(a.unique.size(), b.unique.size());
  EXPECT_EQ(a.raw_to_unique, b.raw_to_unique);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DedupEquivalenceSweep,
                         ::testing::Values(0, 1, 2, 17, 64, 257, 1000));

// --------------------------------------------------------------- populate

GridSet tiny_grids() {
  // 3 dims over [0,10) with 5 uniform bins each (width 2).
  std::vector<Value> lo(3, 0.0f);
  std::vector<Value> hi(3, 10.0f);
  return compute_uniform_grids(lo, hi, 5, 0.2, 100);
}

TEST(Populate, CountsMatchBruteForce) {
  const GridSet grids = tiny_grids();
  // CDUs: two 2-d units in different subspaces.
  auto cdus = make_store(2, {{{0, 1}, {1, 2}}, {{1, 2}, {2, 0}}});

  // Records: (row values) -> bins are value/2.
  const std::vector<std::vector<Value>> rows{
      {2.5f, 4.1f, 0.5f},  // bins 1,2,0: in CDU0 and CDU1
      {2.0f, 5.9f, 1.9f},  // bins 1,2,0: in both
      {3.0f, 6.0f, 0.0f},  // bins 1,3,0: in neither
      {9.9f, 4.0f, 1.0f},  // bins 4,2,0: in CDU1 only
  };
  std::vector<Value> flat;
  for (const auto& r : rows) flat.insert(flat.end(), r.begin(), r.end());

  UnitPopulator pop(grids, cdus);
  pop.accumulate(flat.data(), rows.size());
  EXPECT_EQ(pop.counts(), (std::vector<Count>{2, 3}));
  EXPECT_EQ(pop.num_subspaces(), 2u);
}

TEST(Populate, ChunkedAccumulationEqualsOneShot) {
  const GridSet grids = tiny_grids();
  auto cdus = make_store(1, {{{0}, {0}}, {{0}, {4}}, {{2}, {2}}});

  std::vector<Value> flat;
  std::uint64_t state = 99;
  for (int i = 0; i < 300; ++i) {
    for (int j = 0; j < 3; ++j) {
      state = state * 6364136223846793005ull + 1;
      flat.push_back(static_cast<Value>((state >> 33) % 1000) / 100.0f);
    }
  }
  UnitPopulator whole(grids, cdus);
  whole.accumulate(flat.data(), 300);

  UnitPopulator chunked(grids, cdus);
  for (std::size_t at = 0; at < 300; at += 37) {
    const std::size_t take = std::min<std::size_t>(37, 300 - at);
    chunked.accumulate(flat.data() + at * 3, take);
  }
  EXPECT_EQ(whole.counts(), chunked.counts());
}

TEST(Populate, ValuesOutsideDomainClampToEdgeBins) {
  const GridSet grids = tiny_grids();
  auto cdus = make_store(1, {{{0}, {0}}, {{0}, {4}}});
  const std::vector<Value> flat{-5.0f, 0.0f, 0.0f, 15.0f, 0.0f, 0.0f};
  UnitPopulator pop(grids, cdus);
  pop.accumulate(flat.data(), 2);
  EXPECT_EQ(pop.counts(), (std::vector<Count>{1, 1}));
}

// --------------------------------------------------------------- identify

TEST(Identify, AllBinsPolicyRequiresMaxThreshold) {
  // Two dims with different per-bin thresholds.
  DimensionGrid g0;
  g0.dim = 0;
  g0.domain_lo = 0;
  g0.domain_hi = 10;
  g0.edges = {0, 5, 10};
  g0.thresholds = {10.0, 20.0};
  GridSet gs;
  gs.dims = {g0};
  DimensionGrid g1 = g0;
  g1.dim = 1;
  g1.thresholds = {30.0, 5.0};
  gs.dims.push_back(g1);

  auto cdus = make_store(2, {{{0, 1}, {0, 0}}, {{0, 1}, {1, 1}}});
  const DensityContext ctx{1.5, 100};
  // Unit 0 needs max(10, 30) = 30; unit 1 needs max(20, 5) = 20.
  EXPECT_DOUBLE_EQ(unit_threshold(cdus, 0, gs, DensityPolicy::AllBins, ctx), 30.0);
  EXPECT_DOUBLE_EQ(unit_threshold(cdus, 1, gs, DensityPolicy::AllBins, ctx), 20.0);
  EXPECT_DOUBLE_EQ(unit_threshold(cdus, 0, gs, DensityPolicy::AnyBin, ctx), 10.0);

  std::vector<Count> counts{25, 19};
  std::vector<std::uint8_t> flags(2, 0);
  const std::size_t found = identify_dense_units(
      cdus, counts, gs, DensityPolicy::AllBins, ctx, 0, 2, flags);
  EXPECT_EQ(found, 0u);
  counts = {30, 20};
  std::fill(flags.begin(), flags.end(), 0);
  EXPECT_EQ(identify_dense_units(cdus, counts, gs, DensityPolicy::AllBins, ctx,
                                 0, 2, flags),
            2u);
}

TEST(Identify, ScaledProductUsesIndependenceExpectation) {
  const GridSet grids = tiny_grids();  // bins of width 2 over [0,10]
  auto cdus = make_store(2, {{{0, 1}, {0, 0}}});
  const DensityContext ctx{2.0, 1000};
  // alpha * N * (2/10)*(2/10) = 2 * 1000 * 0.04 = 80.
  EXPECT_NEAR(unit_threshold(cdus, 0, grids, DensityPolicy::ScaledProduct, ctx),
              80.0, 1e-6);
}

TEST(Identify, RangeRestrictionLeavesOtherFlagsUntouched) {
  const GridSet grids = tiny_grids();
  auto cdus = make_store(1, {{{0}, {0}}, {{0}, {1}}, {{0}, {2}}});
  const std::vector<Count> counts{1000, 1000, 1000};
  std::vector<std::uint8_t> flags(3, 0);
  const DensityContext ctx{1.5, 100};
  identify_dense_units(cdus, counts, grids, DensityPolicy::AllBins, ctx, 1, 2, flags);
  EXPECT_EQ(flags, (std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(Identify, BuildDenseStoreSelectsFlaggedRange) {
  auto cdus = make_store(1, {{{0}, {0}}, {{0}, {1}}, {{1}, {2}}, {{2}, {3}}});
  const std::vector<std::uint8_t> flags{1, 0, 1, 1};
  const UnitStore all = build_dense_store(cdus, flags);
  ASSERT_EQ(all.size(), 3u);
  const UnitStore tail = build_dense_store(cdus, flags, 2, 4);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail.to_string(0), "{d1:b2}");
}

}  // namespace
}  // namespace mafia
