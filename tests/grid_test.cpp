// Tests for histograms and grid construction — above all Algorithm 1's
// adaptive grids: structural invariants, rectangular-wave merging, the
// uniform-dimension fallback, and the threshold formula alpha*N*a/D.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "grid/adaptive_grid.hpp"
#include "grid/histogram.hpp"
#include "grid/uniform_grid.hpp"

namespace mafia {
namespace {

// -------------------------------------------------------------- histogram

TEST(MinMax, TracksExtremaAcrossChunks) {
  MinMaxAccumulator mm(2);
  const std::vector<Value> chunk1{1, 100, 5, -3};   // rows (1,100), (5,-3)
  const std::vector<Value> chunk2{-7, 50, 2, 200};  // rows (-7,50), (2,200)
  mm.accumulate(chunk1.data(), 2);
  mm.accumulate(chunk2.data(), 2);
  EXPECT_EQ(mm.mins(), (std::vector<Value>{-7, -3}));
  EXPECT_EQ(mm.maxs(), (std::vector<Value>{5, 200}));
}

TEST(Histogram, CountsLandInCorrectCells) {
  const std::vector<Value> lo{0.0f};
  const std::vector<Value> hi{10.0f};
  HistogramBuilder hb(lo, hi, 10);
  const std::vector<Value> rows{0.5f, 3.7f, 9.99f, 10.0f, -1.0f};
  hb.accumulate(rows.data(), 5);
  const auto counts = hb.dim_counts(0);
  EXPECT_EQ(counts[0], 2u);  // 0.5 and the clamped -1.0
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[9], 2u);  // 9.99 and the clamped 10.0
}

TEST(Histogram, FlattenedLayoutIsDimMajor) {
  const std::vector<Value> lo{0.0f, 0.0f};
  const std::vector<Value> hi{10.0f, 10.0f};
  HistogramBuilder hb(lo, hi, 5);
  const std::vector<Value> rows{1.0f, 9.0f};
  hb.accumulate(rows.data(), 1);
  EXPECT_EQ(hb.counts()[0], 1u);          // dim 0, cell 0
  EXPECT_EQ(hb.counts()[5 + 4], 1u);      // dim 1, cell 4
  EXPECT_EQ(std::accumulate(hb.counts().begin(), hb.counts().end(), Count{0}),
            2u);
}

TEST(Histogram, DegenerateDimensionMapsToCellZero) {
  const std::vector<Value> lo{5.0f};
  const std::vector<Value> hi{5.0f};
  HistogramBuilder hb(lo, hi, 8);
  const std::vector<Value> rows{5.0f, 5.0f, 5.0f};
  hb.accumulate(rows.data(), 3);
  EXPECT_EQ(hb.dim_counts(0)[0], 3u);
}

// ---------------------------------------------------------- adaptive grid

AdaptiveGridOptions small_grid_options() {
  AdaptiveGridOptions o;
  o.fine_bins = 100;
  o.window_cells = 5;
  o.beta = 0.35;
  o.uniform_dim_partitions = 5;
  o.alpha = 1.5;
  return o;
}

/// Fine counts for a step distribution: `level_hi` inside [cell_lo,
/// cell_hi), `level_lo` elsewhere.
std::vector<Count> step_counts(std::size_t cells, std::size_t cell_lo,
                               std::size_t cell_hi, Count level_lo,
                               Count level_hi) {
  std::vector<Count> counts(cells, level_lo);
  for (std::size_t c = cell_lo; c < cell_hi; ++c) counts[c] = level_hi;
  return counts;
}

TEST(AdaptiveGrid, StepDistributionYieldsThreeBins) {
  const auto o = small_grid_options();
  // Step at cells [40, 60): three rectangular-wave segments.
  const auto counts = step_counts(100, 40, 60, 10, 1000);
  const DimensionGrid g =
      compute_adaptive_grid(0, 0.0f, 100.0f, counts, 100000, o);
  ASSERT_EQ(g.num_bins(), 3u);
  EXPECT_FALSE(g.uniform_fallback);
  EXPECT_FLOAT_EQ(g.edges[1], 40.0f);
  EXPECT_FLOAT_EQ(g.edges[2], 60.0f);
}

TEST(AdaptiveGrid, ThresholdIsAlphaNTimesBinFraction) {
  const auto o = small_grid_options();
  const auto counts = step_counts(100, 40, 60, 10, 1000);
  const Count n = 100000;
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, n, o);
  // Middle bin covers 20% of the domain: threshold = 1.5 * N * 0.2.
  EXPECT_NEAR(g.threshold(1), 1.5 * 100000 * 0.2, 1e-6);
  EXPECT_NEAR(g.threshold(0), 1.5 * 100000 * 0.4, 1e-6);
}

TEST(AdaptiveGrid, UniformDataFallsBackToFixedPartitions) {
  const auto o = small_grid_options();
  const std::vector<Count> counts(100, 500);  // perfectly flat
  const Count n = 50000;
  const DimensionGrid g = compute_adaptive_grid(3, 0.0f, 100.0f, counts, n, o);
  EXPECT_TRUE(g.uniform_fallback);
  ASSERT_EQ(g.num_bins(), o.uniform_dim_partitions);
  // "set a high threshold": boosted by uniform_dim_alpha_boost.
  const double expected =
      o.alpha * o.uniform_dim_alpha_boost * static_cast<double>(n) / 5.0;
  EXPECT_NEAR(g.threshold(0), expected, 1e-6);
}

TEST(AdaptiveGrid, NoisyFlatDataStillMergesWithinBeta) {
  auto o = small_grid_options();
  o.beta = 0.35;
  // Values wiggling within 20% never cross the 35% merge threshold.
  std::vector<Count> counts(100);
  for (std::size_t c = 0; c < 100; ++c) counts[c] = 100 + (c % 7) * 3;
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 10000, o);
  EXPECT_TRUE(g.uniform_fallback);
}

TEST(AdaptiveGrid, BinsPartitionTheDomain) {
  const auto o = small_grid_options();
  const auto counts = step_counts(100, 10, 30, 5, 800);
  const DimensionGrid g = compute_adaptive_grid(0, -20.0f, 80.0f, counts, 9999, o);
  g.validate();
  EXPECT_FLOAT_EQ(g.edges.front(), -20.0f);
  EXPECT_FLOAT_EQ(g.edges.back(), 80.0f);
  for (std::size_t b = 0; b + 1 < g.edges.size(); ++b) {
    EXPECT_LT(g.edges[b], g.edges[b + 1]);
  }
}

TEST(AdaptiveGrid, HigherBetaProducesNoMoreBins) {
  // Monotonicity: raising beta can only merge more aggressively.
  std::vector<Count> counts(100);
  for (std::size_t c = 0; c < 100; ++c) {
    counts[c] = 50 + static_cast<Count>(40.0 * ((c / 10) % 2));
  }
  std::size_t prev_bins = kMaxBinsPerDim + 1;
  for (const double beta : {0.05, 0.25, 0.5, 0.75, 1.0}) {
    auto o = small_grid_options();
    o.beta = beta;
    const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 1000, o);
    EXPECT_LE(g.num_bins(), prev_bins) << "beta=" << beta;
    prev_bins = g.num_bins();
  }
}

TEST(AdaptiveGrid, SparseBackgroundDoesNotShatterIntoNoiseBins) {
  // Small-sample regression: background windows with tiny Poisson counts
  // (e.g. 9 vs 5) exceed beta relatively but are statistically equal; the
  // merge's noise slack must keep them in one bin while preserving the
  // genuine step at the cluster boundary.
  auto o = small_grid_options();
  std::vector<Count> counts(100);
  std::uint64_t state = 42;
  for (std::size_t c = 0; c < 100; ++c) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    counts[c] = 4 + (state >> 40) % 8;  // sparse noisy background: 4..11
  }
  for (std::size_t c = 40; c < 60; ++c) counts[c] = 180 + (c % 5);  // cluster
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 5000, o);
  ASSERT_EQ(g.num_bins(), 3u) << "noise fragmented the background";
  EXPECT_FLOAT_EQ(g.edges[1], 40.0f);
  EXPECT_FLOAT_EQ(g.edges[2], 60.0f);

  // With the slack disabled, the same histogram shatters.
  auto o0 = o;
  o0.merge_noise_sigmas = 0.0;
  const DimensionGrid g0 =
      compute_adaptive_grid(0, 0.0f, 100.0f, counts, 5000, o0);
  EXPECT_GT(g0.num_bins(), 3u);
}

TEST(AdaptiveGrid, NoiseSlackPreservesModestDensitySteps) {
  // A ~2.7x density step (cluster over background) must still split even
  // though the slack is active.
  const auto o = small_grid_options();
  const auto counts = step_counts(100, 30, 60, 35, 95);
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 4000, o);
  ASSERT_EQ(g.num_bins(), 3u);
  EXPECT_FLOAT_EQ(g.edges[1], 30.0f);
  EXPECT_FLOAT_EQ(g.edges[2], 60.0f);
}

TEST(AdaptiveGrid, MaxBinsCapIsEnforced) {
  auto o = small_grid_options();
  o.fine_bins = 200;
  o.window_cells = 1;
  o.beta = 0.0;  // merge nothing: every window is its own bin
  o.max_bins = 16;
  // Strictly alternating counts so no beta-merge happens.
  std::vector<Count> counts(200);
  for (std::size_t c = 0; c < 200; ++c) counts[c] = (c % 2) ? 1000 : 10;
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 10000, o);
  EXPECT_LE(g.num_bins(), 16u);
  g.validate();
}

TEST(AdaptiveGrid, DegenerateDomainYieldsSingleBin) {
  const auto o = small_grid_options();
  const std::vector<Count> counts(100, 0);
  const DimensionGrid g = compute_adaptive_grid(0, 42.0f, 42.0f, counts, 100, o);
  EXPECT_EQ(g.num_bins(), 1u);
  EXPECT_TRUE(g.uniform_fallback);
}

TEST(AdaptiveGrid, BinOfMapsValuesAndClamps) {
  const auto o = small_grid_options();
  const auto counts = step_counts(100, 40, 60, 10, 1000);
  const DimensionGrid g = compute_adaptive_grid(0, 0.0f, 100.0f, counts, 1000, o);
  ASSERT_EQ(g.num_bins(), 3u);
  EXPECT_EQ(g.bin_of(0.0f), 0);
  EXPECT_EQ(g.bin_of(39.9f), 0);
  EXPECT_EQ(g.bin_of(40.0f), 1);
  EXPECT_EQ(g.bin_of(59.9f), 1);
  EXPECT_EQ(g.bin_of(60.0f), 2);
  EXPECT_EQ(g.bin_of(100.0f), 2);
  EXPECT_EQ(g.bin_of(-5.0f), 0);    // clamp below
  EXPECT_EQ(g.bin_of(500.0f), 2);   // clamp above
}

TEST(AdaptiveGrid, FullPipelineFromHistogramBuilder) {
  // Two dims: dim 0 has a concentration, dim 1 is uniform.
  const std::vector<Value> lo{0.0f, 0.0f};
  const std::vector<Value> hi{100.0f, 100.0f};
  auto o = small_grid_options();
  HistogramBuilder hb(lo, hi, o.fine_bins);
  std::vector<Value> rows;
  std::uint64_t state = 12345;
  const auto next01 = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (int i = 0; i < 20000; ++i) {
    const bool in_cluster = i % 2 == 0;
    rows.push_back(static_cast<Value>(in_cluster ? 30.0 + 10.0 * next01()
                                                 : 100.0 * next01()));
    rows.push_back(static_cast<Value>(100.0 * next01()));
  }
  hb.accumulate(rows.data(), 20000);
  const GridSet grids = compute_adaptive_grids(lo, hi, hb, 20000, o);
  ASSERT_EQ(grids.num_dims(), 2u);
  EXPECT_FALSE(grids[0].uniform_fallback);
  EXPECT_GE(grids[0].num_bins(), 3u);
  EXPECT_TRUE(grids[1].uniform_fallback);
  EXPECT_GT(grids.total_bins(), 0u);
}

TEST(AdaptiveGrid, SampleSizePresetsAreValidAndMonotone) {
  // Finer resolution for bigger samples; every preset validates.
  std::size_t prev_bins = 0;
  for (const Count n : {Count{200}, Count{5000}, Count{100000}, Count{1000000}}) {
    const AdaptiveGridOptions o = AdaptiveGridOptions::for_sample_size(n);
    o.validate();
    EXPECT_GE(o.fine_bins, prev_bins) << "n=" << n;
    prev_bins = o.fine_bins;
  }
  // Large samples get the paper-scale defaults.
  const AdaptiveGridOptions big = AdaptiveGridOptions::for_sample_size(1000000);
  const AdaptiveGridOptions def;
  EXPECT_EQ(big.fine_bins, def.fine_bins);
  EXPECT_EQ(big.window_cells, def.window_cells);
}

TEST(AdaptiveGrid, OptionValidation) {
  AdaptiveGridOptions o;
  o.beta = 1.5;
  EXPECT_THROW(o.validate(), Error);
  o = AdaptiveGridOptions{};
  o.window_cells = 0;
  EXPECT_THROW(o.validate(), Error);
  o = AdaptiveGridOptions{};
  o.fine_bins = 1;
  EXPECT_THROW(o.validate(), Error);
}

// ----------------------------------------------------------- uniform grid

TEST(UniformGrid, EqualBinsWithGlobalThreshold) {
  const DimensionGrid g = compute_uniform_grid(2, 0.0f, 100.0f, 10, 0.01, 5000);
  ASSERT_EQ(g.num_bins(), 10u);
  for (std::size_t b = 0; b < 10; ++b) {
    EXPECT_NEAR(g.bin_width(static_cast<BinId>(b)), 10.0f, 1e-4);
    EXPECT_NEAR(g.threshold(static_cast<BinId>(b)), 50.0, 1e-9);
  }
}

TEST(UniformGrid, PerDimBinCounts) {
  const std::vector<Value> lo{0.0f, 0.0f, 0.0f};
  const std::vector<Value> hi{100.0f, 100.0f, 100.0f};
  const std::vector<std::size_t> xi{5, 10, 20};
  const GridSet grids = compute_uniform_grids(lo, hi, xi, 0.02, 1000);
  EXPECT_EQ(grids[0].num_bins(), 5u);
  EXPECT_EQ(grids[1].num_bins(), 10u);
  EXPECT_EQ(grids[2].num_bins(), 20u);
}

TEST(UniformGrid, RejectsBadParameters) {
  EXPECT_THROW((void)compute_uniform_grid(0, 0.0f, 1.0f, 0, 0.01, 10), Error);
  EXPECT_THROW((void)compute_uniform_grid(0, 0.0f, 1.0f, 10, 0.0, 10), Error);
  EXPECT_THROW((void)compute_uniform_grid(0, 0.0f, 1.0f, 10, 1.5, 10), Error);
}

}  // namespace
}  // namespace mafia
