// Property-style end-to-end suites for the pMAFIA driver:
//   * planted-structure recovery across a grid of (cluster count, cluster
//     dimensionality, data dimensionality) configurations;
//   * invariance properties: chunk size B must not affect results; rank
//     count must not affect results; record order must not affect results
//     (the generator permutes, but we also re-permute explicitly);
//   * structural invariants on every result: DNF covers exactly the dense
//     units, subspaces ascending, trace monotone in the right places.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <tuple>

#include "core/mafia.hpp"
#include "datagen/generator.hpp"
#include "io/data_source.hpp"
#include "rng/distributions.hpp"
#include "rng/icg.hpp"

namespace mafia {
namespace {

std::multiset<std::string> signature(const MafiaResult& r) {
  std::multiset<std::string> sig;
  for (const Cluster& c : r.clusters) {
    std::string s;
    for (const DimId d : c.dims) s += "d" + std::to_string(d);
    std::multiset<std::string> units;
    for (std::size_t u = 0; u < c.units.size(); ++u) {
      units.insert(c.units.to_string(u));
    }
    for (const auto& u : units) s += u;
    sig.insert(std::move(s));
  }
  return sig;
}

void check_structural_invariants(const MafiaResult& r) {
  for (const Cluster& c : r.clusters) {
    // Subspace dims strictly ascending.
    for (std::size_t i = 0; i + 1 < c.dims.size(); ++i) {
      ASSERT_LT(c.dims[i], c.dims[i + 1]);
    }
    // DNF rectangles cover exactly the dense-unit cells.
    std::set<std::string> unit_cells;
    for (std::size_t u = 0; u < c.units.size(); ++u) {
      const auto bins = c.units.bins(u);
      unit_cells.insert(std::string(bins.begin(), bins.end()));
    }
    std::set<std::string> rect_cells;
    for (const BinRect& rect : c.dnf) {
      std::vector<BinId> cursor = rect.lo;
      while (true) {
        rect_cells.insert(std::string(cursor.begin(), cursor.end()));
        std::size_t d = 0;
        for (; d < cursor.size(); ++d) {
          if (cursor[d] < rect.hi[d]) {
            ++cursor[d];
            break;
          }
          cursor[d] = rect.lo[d];
        }
        if (d == cursor.size()) break;
      }
    }
    ASSERT_EQ(unit_cells, rect_cells) << "DNF does not cover the units exactly";
  }
  // Trace: level indices 1..n contiguous; unique <= raw.
  for (std::size_t i = 0; i < r.levels.size(); ++i) {
    ASSERT_EQ(r.levels[i].level, i + 1);
    ASSERT_LE(r.levels[i].ncdu, r.levels[i].ncdu_raw);
    ASSERT_LE(r.levels[i].ndu, r.levels[i].ncdu);
  }
}

// ------------------------------------------------- recovery configuration

struct Shape {
  std::size_t data_dims;
  std::size_t cluster_dims;
  std::size_t num_clusters;
};

class RecoverySweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RecoverySweep, PlantedSubspacesAreExactlyRecovered) {
  const Shape shape = GetParam();
  GeneratorConfig cfg;
  cfg.num_dims = shape.data_dims;
  cfg.num_records = 25000;
  cfg.seed = 1000 + shape.data_dims * 13 + shape.cluster_dims * 7 +
             shape.num_clusters;
  // Plant clusters in disjoint subspaces at staggered extents.
  std::size_t dim_cursor = 0;
  for (std::size_t c = 0; c < shape.num_clusters; ++c) {
    std::vector<DimId> dims(shape.cluster_dims);
    for (std::size_t i = 0; i < shape.cluster_dims; ++i) {
      dims[i] = static_cast<DimId>((dim_cursor + i) % shape.data_dims);
    }
    std::sort(dims.begin(), dims.end());
    dim_cursor += shape.cluster_dims;
    const Value lo = static_cast<Value>(10 + 20 * c);
    cfg.clusters.push_back(ClusterSpec::box(
        std::move(dims), std::vector<Value>(shape.cluster_dims, lo),
        std::vector<Value>(shape.cluster_dims, lo + 8), 1.0));
  }
  const Dataset data = generate(cfg);
  InMemorySource source(data);
  MafiaOptions options;
  options.fixed_domain = {{0.0f, 100.0f}};
  const MafiaResult r = run_mafia(source, options);
  check_structural_invariants(r);

  std::set<std::vector<DimId>> found;
  for (const Cluster& c : r.clusters) found.insert(c.dims);
  for (const ClusterSpec& spec : cfg.clusters) {
    EXPECT_TRUE(found.count(spec.dims))
        << "missing planted subspace of cluster";
  }
  EXPECT_EQ(r.clusters.size(), cfg.clusters.size())
      << "spurious clusters discovered";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RecoverySweep,
    ::testing::Values(Shape{6, 2, 1}, Shape{6, 3, 2}, Shape{10, 4, 2},
                      Shape{12, 2, 4}, Shape{16, 5, 3}, Shape{20, 6, 1},
                      Shape{24, 3, 3}, Shape{32, 4, 4}));

// ------------------------------------------------------------- invariances

Dataset invariance_data(std::uint64_t seed = 77) {
  GeneratorConfig cfg;
  cfg.num_dims = 10;
  cfg.num_records = 20000;
  cfg.seed = seed;
  cfg.clusters.push_back(ClusterSpec::box({1, 5, 8}, {30, 30, 30}, {42, 42, 42}, 1.0));
  cfg.clusters.push_back(ClusterSpec::box({0, 3}, {60, 60}, {75, 75}, 1.0));
  return generate(cfg);
}

class ChunkSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkSizeSweep, ChunkSizeDoesNotChangeResults) {
  const Dataset data = invariance_data();
  InMemorySource source(data);
  MafiaOptions reference;
  reference.fixed_domain = {{0.0f, 100.0f}};
  const MafiaResult expect = run_mafia(source, reference);

  MafiaOptions options = reference;
  options.chunk_records = GetParam();
  const MafiaResult got = run_mafia(source, options);
  EXPECT_EQ(signature(expect), signature(got));
}

INSTANTIATE_TEST_SUITE_P(Chunks, ChunkSizeSweep,
                         ::testing::Values(1, 7, 100, 4096, 1 << 20));

TEST(Invariance, RecordOrderDoesNotChangeResults) {
  Dataset data = invariance_data();
  InMemorySource source(data);
  MafiaOptions options;
  options.fixed_domain = {{0.0f, 100.0f}};
  const auto before = signature(run_mafia(source, options));

  // Re-permute the records with an unrelated permutation.
  std::vector<RecordIndex> perm(data.num_records());
  std::iota(perm.begin(), perm.end(), RecordIndex{0});
  IcgRandom rng(999);
  shuffle(rng, perm.begin(), perm.end());
  data.permute(perm);
  InMemorySource shuffled(data);
  EXPECT_EQ(before, signature(run_mafia(shuffled, options)));
}

TEST(Invariance, RankCountDoesNotChangeResultsUnderAllOptionCombos) {
  const Dataset data = invariance_data();
  InMemorySource source(data);
  for (const DedupPolicy dedup : {DedupPolicy::Hash, DedupPolicy::Pairwise}) {
    for (const bool optimal : {true, false}) {
      MafiaOptions options;
      options.fixed_domain = {{0.0f, 100.0f}};
      options.dedup = dedup;
      options.optimal_task_partition = optimal;
      options.tau = 2;  // engage every parallel path
      const auto serial = signature(run_pmafia(source, options, 1));
      for (const int p : {2, 5}) {
        EXPECT_EQ(serial, signature(run_pmafia(source, options, p)))
            << "dedup=" << static_cast<int>(dedup) << " optimal=" << optimal
            << " p=" << p;
      }
    }
  }
}

TEST(Invariance, SpmdDeterminismSweepAcrossRankCounts) {
  // Serial vs p in {2, 3, 5, 8} on randomized workloads: the dense-unit
  // sets (cluster signatures) AND the populate counts must be bit-identical
  // — the per-level count_checksum hashes the full globalized count vector,
  // so any rank-dependent drift in the packed-key populate kernel (block
  // boundaries at partition edges, partial-block sweeps on the last chunk
  // of a rank's N/p records) fails here even when the dense flags happen to
  // agree.  tau = 2 engages every task-parallel phase.
  IcgRandom rng(20260806);
  for (int instance = 0; instance < 3; ++instance) {
    GeneratorConfig cfg;
    cfg.num_dims = 8 + uniform_index(rng, 6);
    cfg.num_records = 12000 + uniform_index(rng, 8000);
    cfg.seed = 555 + static_cast<std::uint64_t>(instance);
    const std::size_t nclusters = 1 + uniform_index(rng, 3);
    std::size_t dim_cursor = 0;
    for (std::size_t c = 0; c < nclusters; ++c) {
      const std::size_t cdims = 2 + uniform_index(rng, 2);
      std::vector<DimId> dims(cdims);
      for (std::size_t i = 0; i < cdims; ++i) {
        dims[i] = static_cast<DimId>((dim_cursor + i) % cfg.num_dims);
      }
      std::sort(dims.begin(), dims.end());
      dim_cursor += cdims;
      const Value lo = static_cast<Value>(10 + 22 * c);
      cfg.clusters.push_back(
          ClusterSpec::box(std::move(dims), std::vector<Value>(cdims, lo),
                           std::vector<Value>(cdims, lo + 9), 1.0));
    }
    const Dataset data = generate(cfg);
    InMemorySource source(data);
    MafiaOptions options;
    options.fixed_domain = {{0.0f, 100.0f}};
    options.tau = 2;

    const MafiaResult serial = run_pmafia(source, options, 1);
    const auto serial_sig = signature(serial);
    for (const int p : {2, 3, 5, 8}) {
      const MafiaResult par = run_pmafia(source, options, p);
      EXPECT_EQ(serial_sig, signature(par)) << "instance " << instance
                                            << " p=" << p;
      ASSERT_EQ(serial.levels.size(), par.levels.size())
          << "instance " << instance << " p=" << p;
      for (std::size_t l = 0; l < serial.levels.size(); ++l) {
        EXPECT_EQ(serial.levels[l].ncdu_raw, par.levels[l].ncdu_raw);
        EXPECT_EQ(serial.levels[l].ncdu, par.levels[l].ncdu);
        EXPECT_EQ(serial.levels[l].ndu, par.levels[l].ndu);
        EXPECT_EQ(serial.levels[l].count_checksum, par.levels[l].count_checksum)
            << "populate counts diverged at level " << serial.levels[l].level
            << " (instance " << instance << ", p=" << p << ")";
      }
    }
  }
}

TEST(Invariance, PopulateKernelSelectionDoesNotChangeResults) {
  // Forcing the memcmp fallback, the bitmap index kernel, and odd block
  // sizes must all reproduce the packed-kernel results exactly, through
  // the full driver.
  const Dataset data = invariance_data();
  InMemorySource source(data);
  MafiaOptions reference;
  reference.fixed_domain = {{0.0f, 100.0f}};
  const MafiaResult expect = run_mafia(source, reference);

  for (const PopulateKernel kernel :
       {PopulateKernel::Packed, PopulateKernel::Memcmp,
        PopulateKernel::Bitmap}) {
    for (const std::size_t block : {std::size_t{1}, std::size_t{37},
                                    std::size_t{4096}}) {
      MafiaOptions options = reference;
      options.populate.kernel = kernel;
      options.populate.block_records = block;
      const MafiaResult got = run_mafia(source, options);
      EXPECT_EQ(signature(expect), signature(got))
          << "kernel=" << static_cast<int>(kernel) << " block=" << block;
      ASSERT_EQ(expect.levels.size(), got.levels.size());
      for (std::size_t l = 0; l < expect.levels.size(); ++l) {
        EXPECT_EQ(expect.levels[l].count_checksum,
                  got.levels[l].count_checksum)
            << "kernel=" << static_cast<int>(kernel) << " block=" << block
            << " level=" << expect.levels[l].level;
      }
    }
  }
}

TEST(Invariance, BitmapKernelIsRankInvariant) {
  // The bitmap kernel's per-rank bit ranges follow the SPMD record
  // partition, so its AND-reduction runs over different local row counts at
  // every p.  Counts, cluster signatures, and the unjoined-DU report must
  // still be bit-identical to the serial packed-kernel reference across the
  // rank sweep.
  const Dataset data = invariance_data();
  InMemorySource source(data);
  MafiaOptions reference;
  reference.fixed_domain = {{0.0f, 100.0f}};
  reference.tau = 2;
  const MafiaResult expect = run_pmafia(source, reference, 1);

  MafiaOptions options = reference;
  options.populate.kernel = PopulateKernel::Bitmap;
  for (const int p : {1, 2, 3, 5, 8}) {
    const MafiaResult got = run_pmafia(source, options, p);
    EXPECT_EQ(signature(expect), signature(got)) << "p=" << p;
    ASSERT_EQ(expect.levels.size(), got.levels.size()) << "p=" << p;
    for (std::size_t l = 0; l < expect.levels.size(); ++l) {
      EXPECT_EQ(expect.levels[l].count_checksum, got.levels[l].count_checksum)
          << "p=" << p << " level=" << expect.levels[l].level;
      EXPECT_EQ(expect.levels[l].unjoined_dus, got.levels[l].unjoined_dus)
          << "p=" << p << " level=" << expect.levels[l].level;
      EXPECT_EQ(expect.levels[l].unjoined_units, got.levels[l].unjoined_units)
          << "p=" << p << " level=" << expect.levels[l].level;
    }
    EXPECT_EQ(expect.total_unjoined_dus(), got.total_unjoined_dus())
        << "p=" << p;
  }
}

TEST(Invariance, SeedChangesDataButNotDiscoveredStructure) {
  // Different generator seeds give different records but identical planted
  // structure; discovered subspaces must be stable across seeds.
  std::set<std::vector<DimId>> expected{{1, 5, 8}, {0, 3}};
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    const Dataset data = invariance_data(seed);
    InMemorySource source(data);
    MafiaOptions options;
    options.fixed_domain = {{0.0f, 100.0f}};
    const MafiaResult r = run_mafia(source, options);
    std::set<std::vector<DimId>> found;
    for (const Cluster& c : r.clusters) found.insert(c.dims);
    EXPECT_EQ(found, expected) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mafia
