// Tests for the DBSCAN baseline: blob recovery, noise handling, parameter
// sensitivity, and the distance-concentration failure on subspace data.
#include <gtest/gtest.h>

#include <set>

#include "datagen/generator.hpp"
#include "dbscan/dbscan.hpp"

namespace mafia {
namespace {

Dataset blobs(RecordIndex records = 1500, double noise = 0.1,
              std::uint64_t seed = 5) {
  GeneratorConfig cfg;
  cfg.num_dims = 3;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.noise_fraction = noise;
  cfg.clusters.push_back(
      ClusterSpec::box({0, 1, 2}, {10, 10, 10}, {22, 22, 22}, 1.0));
  cfg.clusters.push_back(
      ClusterSpec::box({0, 1, 2}, {70, 70, 70}, {82, 82, 82}, 1.0));
  return generate(cfg);
}

TEST(Dbscan, RecoversSeparatedBlobs) {
  const Dataset data = blobs();
  DbscanOptions o;
  o.eps = 4.0;
  o.min_pts = 8;
  const DbscanResult r = run_dbscan(data, o);
  EXPECT_EQ(r.num_clusters, 2u);

  // Purity: blob members land in consistent clusters.
  std::int32_t label_of[2] = {-9, -9};
  std::size_t wrong = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const std::int32_t t = data.label(i);
    if (t < 0) continue;
    const std::int32_t got = r.labels[static_cast<std::size_t>(i)];
    if (got == -1) {
      ++wrong;  // blob member called noise
      continue;
    }
    if (label_of[t] == -9) label_of[t] = got;
    wrong += (got != label_of[t]);
  }
  EXPECT_LT(wrong, data.num_records() / 50);
  EXPECT_NE(label_of[0], label_of[1]);
}

TEST(Dbscan, UniformNoiseMostlyLabeledNoise) {
  const Dataset data = blobs(1500, 0.3);
  DbscanOptions o;
  o.eps = 4.0;
  o.min_pts = 8;
  const DbscanResult r = run_dbscan(data, o);
  std::size_t noise_total = 0;
  std::size_t noise_caught = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != -1) continue;
    ++noise_total;
    noise_caught += (r.labels[static_cast<std::size_t>(i)] == -1);
  }
  EXPECT_GT(noise_caught * 10, noise_total * 7)
      << "less than 70% of noise identified";
}

TEST(Dbscan, TinyEpsMakesEverythingNoise) {
  const Dataset data = blobs(800);
  DbscanOptions o;
  o.eps = 0.01;
  o.min_pts = 5;
  const DbscanResult r = run_dbscan(data, o);
  EXPECT_EQ(r.num_clusters, 0u);
  EXPECT_EQ(r.num_noise, data.num_records());
}

TEST(Dbscan, HugeEpsGluesEverythingTogether) {
  const Dataset data = blobs(800);
  DbscanOptions o;
  o.eps = 500.0;
  o.min_pts = 5;
  const DbscanResult r = run_dbscan(data, o);
  EXPECT_EQ(r.num_clusters, 1u);
  EXPECT_EQ(r.num_noise, 0u);
}

TEST(Dbscan, LabelsArePartition) {
  const Dataset data = blobs(600);
  DbscanOptions o;
  o.eps = 4.0;
  o.min_pts = 8;
  const DbscanResult r = run_dbscan(data, o);
  ASSERT_EQ(r.labels.size(), data.num_records());
  std::set<std::int32_t> ids;
  std::size_t noise = 0;
  for (const std::int32_t l : r.labels) {
    if (l == -1) {
      ++noise;
    } else {
      ASSERT_GE(l, 0);
      ASSERT_LT(l, static_cast<std::int32_t>(r.num_clusters));
      ids.insert(l);
    }
  }
  EXPECT_EQ(noise, r.num_noise);
  EXPECT_EQ(ids.size(), r.num_clusters) << "empty cluster id emitted";
}

TEST(Dbscan, SubspaceDataHasNoWorkableEps) {
  // Clusters in 2-d subspaces of 20-d data: the 18 uniform dims give every
  // pair of records an expected full-space distance of ~70 units while the
  // subspace structure contributes at most ~8 — there is no eps that both
  // separates the clusters and keeps their members together.
  GeneratorConfig cfg;
  cfg.num_dims = 20;
  cfg.num_records = 1200;
  cfg.seed = 13;
  cfg.clusters.push_back(ClusterSpec::box({1, 7}, {20, 20}, {28, 28}, 1.0));
  cfg.clusters.push_back(ClusterSpec::box({3, 9}, {70, 70}, {78, 78}, 1.0));
  const Dataset data = generate(cfg);

  bool some_eps_works = false;
  for (const double eps : {5.0, 15.0, 30.0, 50.0, 70.0, 90.0}) {
    DbscanOptions o;
    o.eps = eps;
    o.min_pts = 8;
    const DbscanResult r = run_dbscan(data, o);
    if (r.num_clusters != 2) continue;
    // Two clusters found: are they the planted ones?
    std::size_t agree = 0;
    std::size_t total = 0;
    for (RecordIndex i = 0; i < data.num_records(); ++i) {
      if (data.label(i) < 0) continue;
      if (r.labels[static_cast<std::size_t>(i)] == -1) continue;
      ++total;
      agree += (r.labels[static_cast<std::size_t>(i)] == data.label(i) ||
                r.labels[static_cast<std::size_t>(i)] == 1 - data.label(i));
    }
    // Demand a meaningful, consistent 2-way split covering most points.
    if (total > data.num_records() / 2 && agree > total * 9 / 10) {
      some_eps_works = true;
    }
  }
  EXPECT_FALSE(some_eps_works)
      << "full-space DBSCAN should not recover subspace clusters";
}

TEST(Dbscan, ValidatesOptions) {
  const Dataset data = blobs(100);
  DbscanOptions bad;
  bad.eps = 0.0;
  EXPECT_THROW((void)run_dbscan(data, bad), Error);
  bad = DbscanOptions{};
  bad.min_pts = 0;
  EXPECT_THROW((void)run_dbscan(data, bad), Error);
}

}  // namespace
}  // namespace mafia
