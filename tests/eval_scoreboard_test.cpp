// Scoreboard driver tests: the pMAFIA adapter-vs-DNF differential, the
// SPMD rank sweep, failure reporting, and the pmafia-scoreboard-v1 schema.
#include "eval/scoreboard.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/membership.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "core/mafia.hpp"
#include "datagen/generator.hpp"
#include "io/data_source.hpp"

namespace mafia::eval {
namespace {

void expect_scores_equal(const AlgorithmScore& a, const AlgorithmScore& b) {
  EXPECT_EQ(a.algorithm, b.algorithm);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.clusters_found, b.clusters_found);
  // Exact: the grid pipeline promises p-invariant results.
  EXPECT_EQ(a.scores.f1, b.scores.f1);
  EXPECT_EQ(a.scores.precision, b.scores.precision);
  EXPECT_EQ(a.scores.recall, b.scores.recall);
  EXPECT_EQ(a.scores.entropy, b.scores.entropy);
  EXPECT_EQ(a.scores.coverage, b.scores.coverage);
  EXPECT_EQ(a.scores.subspace_recovery, b.scores.subspace_recovery);
  EXPECT_EQ(a.scores.matched_clusters, b.scores.matched_clusters);
}

// Satellite: the scoreboard's pMAFIA labels must agree with the serving
// path's DNF predicates (cluster/membership contains_record) on every
// record — no drift between eval-path and serving-path membership.
TEST(EvalScoreboard, PmafiaAdapterMatchesMembershipPredicates) {
  const Workload w = make_workload("tab3-boundary", 700, 7);
  const Dataset data = generate(w.config);
  const AdapterOutput out = run_algorithm("pmafia", data, w.hints, 1);

  // Independent reference run with the adapter's published options.
  MafiaOptions options;
  options.grid = AdaptiveGridOptions::for_sample_size(data.num_records());
  options.min_cluster_dims = w.hints.min_cluster_dims;
  const InMemorySource source(data);
  const MafiaResult result = run_pmafia(source, options, 1);
  std::vector<const Cluster*> kept;
  for (const Cluster& c : result.clusters) {
    if (c.dims.size() >= w.hints.min_cluster_dims) kept.push_back(&c);
  }
  ASSERT_FALSE(kept.empty());
  ASSERT_EQ(out.clustering.cluster_dims.size(), kept.size());
  for (std::size_t c = 0; c < kept.size(); ++c) {
    EXPECT_EQ(out.clustering.cluster_dims[c], kept[c]->dims);
  }

  ASSERT_EQ(out.clustering.labels.size(), data.num_records());
  for (RecordIndex r = 0; r < data.num_records(); ++r) {
    std::int32_t expected = kNoiseLabel;
    for (std::size_t c = 0; c < kept.size(); ++c) {
      if (contains_record(*kept[c], result.grids, data.row(r).data())) {
        expected = static_cast<std::int32_t>(c);
        break;
      }
    }
    ASSERT_EQ(out.clustering.labels[static_cast<std::size_t>(r)], expected)
        << "record " << r;
  }
}

// Satellite: SPMD runs score identically for p in {1,2,3,5,8}, across
// seeds and workloads (including the new generator paths).
TEST(EvalScoreboard, RankSweepScoresIdentically) {
  const std::vector<std::string> grid_algos = {"pmafia", "clique"};
  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const char* name : {"overlap-shared", "mixed-categorical"}) {
      const Workload w = make_workload(name, 500, seed);
      const Dataset data = generate(w.config);
      const WorkloadScore base = score_workload(w, data, grid_algos, 1);
      for (const AlgorithmScore& row : base.algorithms) {
        EXPECT_TRUE(row.ok) << name << "/" << row.algorithm << ": " << row.error;
      }
      for (const int p : {2, 3, 5, 8}) {
        const WorkloadScore sweep = score_workload(w, data, grid_algos, p);
        ASSERT_EQ(sweep.algorithms.size(), base.algorithms.size());
        for (std::size_t i = 0; i < base.algorithms.size(); ++i) {
          SCOPED_TRACE(std::string(name) + "/" + base.algorithms[i].algorithm +
                       " p=" + std::to_string(p));
          expect_scores_equal(sweep.algorithms[i], base.algorithms[i]);
        }
      }
    }
  }
}

// Acceptance: all zoo algorithms appear on every workload; a failure is a
// reported row, never an omission.
TEST(EvalScoreboard, EveryAlgorithmAppears) {
  const ScoreboardResult result =
      run_scoreboard({"tab3-boundary"}, algorithm_names(), 500, 7, 1);
  ASSERT_EQ(result.workloads.size(), 1u);
  const WorkloadScore& ws = result.workloads[0];
  ASSERT_EQ(ws.algorithms.size(), algorithm_names().size());
  for (std::size_t i = 0; i < ws.algorithms.size(); ++i) {
    EXPECT_EQ(ws.algorithms[i].algorithm, algorithm_names()[i]);
    if (!ws.algorithms[i].ok) {
      EXPECT_FALSE(ws.algorithms[i].error.empty());
    }
  }
}

TEST(EvalScoreboard, FailedAlgorithmIsReportedNotOmitted) {
  Workload w = make_workload("tab3-boundary", 300, 7);
  w.hints.true_clusters = 0;  // invalid k: the supervised baselines throw
  const Dataset data = generate(w.config);
  const WorkloadScore ws =
      score_workload(w, data, {"kmeans", "proclus", "pmafia"}, 1);
  ASSERT_EQ(ws.algorithms.size(), 3u);
  EXPECT_FALSE(ws.algorithms[0].ok);
  EXPECT_FALSE(ws.algorithms[0].error.empty());
  EXPECT_FALSE(ws.algorithms[1].ok);
  EXPECT_TRUE(ws.algorithms[2].ok);  // pmafia ignores the oracle k
}

TEST(EvalScoreboard, UnknownNamesThrowUsage) {
  try {
    (void)run_scoreboard({"no-such-workload"}, {"pmafia"}, 100, 1, 1);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::Usage);
  }
  try {
    (void)run_scoreboard({"tab3-boundary"}, {"no-such-algo"}, 100, 1, 1);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.error_class(), ErrorClass::Usage);
  }
}

// The emitted document is valid pmafia-scoreboard-v1: parseable by
// common/json, schema-tagged, one metrics object per ok row.
TEST(EvalScoreboard, JsonRoundTripsThroughCommonJson) {
  Workload w = make_workload("lshape-boundary", 400, 9);
  const Dataset data = generate(w.config);
  ScoreboardResult result;
  result.records = 400;
  result.seed = 9;
  result.workloads.push_back(
      score_workload(w, data, {"pmafia", "clique", "enclus"}, 1));

  const JsonValue doc = json_parse(scoreboard_json(result));
  EXPECT_EQ(doc.at("schema").string, kScoreboardSchema);
  EXPECT_EQ(doc.at("records").number, 400.0);
  const JsonValue& workload = doc.at("workloads").array.at(0);
  EXPECT_EQ(workload.at("name").string, "lshape-boundary");
  EXPECT_TRUE(workload.at("boundary").boolean);
  for (const JsonValue& row : workload.at("algorithms").array) {
    if (row.at("status").string == "ok") {
      const JsonValue& metrics = row.at("metrics");
      EXPECT_TRUE(metrics.at("f1").is_number());
      EXPECT_TRUE(metrics.at("entropy").is_number());
      EXPECT_TRUE(metrics.at("coverage").is_number());
    } else {
      EXPECT_TRUE(row.has("error"));
    }
  }
}

// ENCLUS mines subspaces without memberships: the row is honest (zero
// record-level scores) but still credits subspace recovery.
TEST(EvalScoreboard, EnclusScoresSubspacesOnly) {
  const Workload w = make_workload("tab3-boundary", 500, 7);
  const Dataset data = generate(w.config);
  const WorkloadScore ws = score_workload(w, data, {"enclus"}, 1);
  ASSERT_TRUE(ws.algorithms[0].ok) << ws.algorithms[0].error;
  EXPECT_EQ(ws.algorithms[0].scores.recall, 0.0);
  EXPECT_EQ(ws.algorithms[0].scores.f1, 0.0);
  EXPECT_FALSE(std::isnan(ws.algorithms[0].scores.subspace_recovery));
}

// External mode: dataset labels are the truth, subspace truth unknown.
TEST(EvalScoreboard, ScoreDatasetUsesEmbeddedLabels) {
  const Workload w = make_workload("tab3-boundary", 400, 7);
  const Dataset data = generate(w.config);
  const WorkloadScore ws =
      score_dataset("external", data, {"pmafia"}, w.hints, 1);
  ASSERT_TRUE(ws.algorithms[0].ok) << ws.algorithms[0].error;
  EXPECT_GT(ws.algorithms[0].scores.f1, 0.0);
  EXPECT_TRUE(std::isnan(ws.algorithms[0].scores.subspace_recovery));
}

}  // namespace
}  // namespace mafia::eval
