// Tests for record-to-cluster membership assignment and the run report.
#include <gtest/gtest.h>

#include <limits>

#include "cluster/membership.hpp"
#include "common/error.hpp"
#include "core/mafia.hpp"
#include "core/report.hpp"
#include "datagen/generator.hpp"
#include "io/data_source.hpp"

namespace mafia {
namespace {

struct EndToEnd {
  Dataset data;
  MafiaResult result;
};

EndToEnd run_planted() {
  GeneratorConfig cfg;
  cfg.num_dims = 8;
  cfg.num_records = 20000;
  cfg.seed = 23;
  cfg.clusters.push_back(ClusterSpec::box({1, 4}, {20, 20}, {35, 35}, 1.0));
  cfg.clusters.push_back(ClusterSpec::box({2, 5, 7}, {60, 60, 60}, {72, 72, 72}, 1.0));
  EndToEnd e{generate(cfg), {}};
  InMemorySource source(e.data);
  MafiaOptions options;
  options.fixed_domain = {{0.0f, 100.0f}};
  e.result = run_mafia(source, options);
  return e;
}

TEST(Membership, LabelsMatchGroundTruthForClusterRecords) {
  const EndToEnd e = run_planted();
  ASSERT_EQ(e.result.clusters.size(), 2u);
  InMemorySource source(e.data);
  const auto labels = assign_members(source, e.result.clusters, e.result.grids);
  ASSERT_EQ(labels.size(), e.data.num_records());

  // Every ground-truth cluster record must be assigned to SOME cluster
  // (adaptive boundaries cover the planted box), and consistently: all
  // records of one planted cluster get the same discovered label.
  std::int32_t label_of_truth[2] = {-2, -2};
  std::size_t mismatches = 0;
  for (RecordIndex i = 0; i < e.data.num_records(); ++i) {
    const std::int32_t t = e.data.label(i);
    if (t < 0) continue;
    if (labels[i] < 0) {
      ++mismatches;
      continue;
    }
    if (label_of_truth[t] == -2) label_of_truth[t] = labels[i];
    mismatches += (labels[i] != label_of_truth[t]);
  }
  EXPECT_LT(static_cast<double>(mismatches),
            0.01 * static_cast<double>(e.data.num_records()));
  EXPECT_NE(label_of_truth[0], label_of_truth[1]);
}

TEST(Membership, NoiseMostlyUnassigned) {
  const EndToEnd e = run_planted();
  InMemorySource source(e.data);
  const auto labels = assign_members(source, e.result.clusters, e.result.grids);
  std::size_t noise_total = 0;
  std::size_t noise_assigned = 0;
  for (RecordIndex i = 0; i < e.data.num_records(); ++i) {
    if (e.data.label(i) != -1) continue;
    ++noise_total;
    noise_assigned += (labels[i] >= 0);
  }
  // A noise record is only captured when it happens to fall inside a
  // cluster's region: 2-d cluster of ~2% volume + 3-d ~0.2%.
  EXPECT_LT(static_cast<double>(noise_assigned),
            0.10 * static_cast<double>(noise_total));
}

TEST(Membership, CountsAgreeWithLabels) {
  const EndToEnd e = run_planted();
  InMemorySource source(e.data);
  const auto labels = assign_members(source, e.result.clusters, e.result.grids);
  const MembershipCounts counts =
      count_members(source, e.result.clusters, e.result.grids);
  ASSERT_EQ(counts.per_cluster.size(), e.result.clusters.size());
  std::vector<Count> expected(e.result.clusters.size(), 0);
  Count noise = 0;
  for (const std::int32_t l : labels) {
    if (l < 0) {
      ++noise;
    } else {
      ++expected[static_cast<std::size_t>(l)];
    }
  }
  EXPECT_EQ(counts.per_cluster, expected);
  EXPECT_EQ(counts.noise, noise);
  EXPECT_EQ(counts.total(), e.data.num_records());
}

TEST(Membership, ContainsRecordRespectsDnfRectangles) {
  const EndToEnd e = run_planted();
  const Cluster* c2d = nullptr;
  for (const Cluster& c : e.result.clusters) {
    if (c.dims == std::vector<DimId>{1, 4}) c2d = &c;
  }
  ASSERT_NE(c2d, nullptr);
  std::vector<Value> inside(8, 50.0f);
  inside[1] = 25.0f;
  inside[4] = 25.0f;
  EXPECT_TRUE(contains_record(*c2d, e.result.grids, inside.data()));
  std::vector<Value> outside(8, 50.0f);
  outside[1] = 90.0f;
  outside[4] = 25.0f;
  EXPECT_FALSE(contains_record(*c2d, e.result.grids, outside.data()));
}

// ----------------------------------------------------------- count hygiene

TEST(MembershipCountsTest, TallySeparatesNoiseFromUnlabeled) {
  // kUnlabeledLabel (-2) means "never scored" and must not inflate noise.
  const std::vector<std::int32_t> labels = {0, 1, kNoiseLabel, kUnlabeledLabel,
                                            0, kUnlabeledLabel};
  const MembershipCounts counts = tally_labels(labels, 2);
  ASSERT_EQ(counts.per_cluster.size(), 2u);
  EXPECT_EQ(counts.per_cluster[0], 2u);
  EXPECT_EQ(counts.per_cluster[1], 1u);
  EXPECT_EQ(counts.noise, 1u);
  EXPECT_EQ(counts.unlabeled, 2u);
  EXPECT_EQ(counts.total(), labels.size());
}

TEST(MembershipCountsTest, TallyRejectsOutOfRangeLabels) {
  EXPECT_THROW((void)tally_labels({5}, 2), Error);
  EXPECT_THROW((void)tally_labels({-3}, 2), Error);
  const MembershipCounts empty = tally_labels({}, 0);
  EXPECT_EQ(empty.total(), 0u);
}

TEST(MembershipCountsTest, TotalIsExactAtThe32BitBoundary) {
  // Two 2^31 buckets sum to exactly 2^32 — the point where a u32
  // accumulator would wrap to zero.
  MembershipCounts counts;
  counts.per_cluster = {Count{1} << 31, Count{1} << 31};
  EXPECT_EQ(counts.total(), Count{1} << 32);
}

TEST(MembershipCountsTest, TotalThrowsOnOverflowInsteadOfWrapping) {
  MembershipCounts counts;
  counts.noise = std::numeric_limits<Count>::max();
  counts.per_cluster = {1};
  EXPECT_THROW((void)counts.total(), Error);

  MembershipCounts counts2;
  counts2.noise = std::numeric_limits<Count>::max() - 1;
  counts2.unlabeled = 1;
  EXPECT_EQ(counts2.total(), std::numeric_limits<Count>::max());
}

// ------------------------------------------------------------------ report

TEST(Report, RendersClustersTraceAndComm) {
  const EndToEnd e = run_planted();
  const std::string report = render_report(e.result);
  EXPECT_NE(report.find("clusters (2"), std::string::npos);
  EXPECT_NE(report.find("subspace {2,5,7}"), std::string::npos);
  EXPECT_NE(report.find("subspace {1,4}"), std::string::npos);
  EXPECT_NE(report.find("level trace"), std::string::npos);
  EXPECT_NE(report.find("populate"), std::string::npos);
  EXPECT_NE(report.find("communication"), std::string::npos);

  const std::string clusters_only = render_clusters(e.result);
  EXPECT_NE(clusters_only.find("cluster 0:"), std::string::npos);
  EXPECT_NE(clusters_only.find("cluster 1:"), std::string::npos);
}

}  // namespace
}  // namespace mafia
