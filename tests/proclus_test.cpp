// Tests for the PROCLUS baseline: recovery of planted projected clusters
// when k and l are right, and the failure modes the paper criticizes when
// they are wrong (Sections 2 and 5.9(2)).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datagen/generator.hpp"
#include "proclus/proclus.hpp"

namespace mafia {
namespace {

/// Two well-separated projected clusters in known subspaces.
Dataset two_cluster_data(RecordIndex records = 1200, std::uint64_t seed = 5) {
  GeneratorConfig cfg;
  cfg.num_dims = 12;
  cfg.num_records = records;
  cfg.seed = seed;
  cfg.noise_fraction = 0.05;
  cfg.clusters.push_back(
      ClusterSpec::box({1, 4, 7}, {10, 10, 10}, {16, 16, 16}, 1.0));
  cfg.clusters.push_back(
      ClusterSpec::box({2, 5, 9}, {80, 80, 80}, {86, 86, 86}, 1.0));
  return generate(cfg);
}

/// Fraction of a PROCLUS cluster's members carrying ground-truth label `t`.
double purity(const Dataset& data, const ProclusCluster& c, std::int32_t t) {
  if (c.members.empty()) return 0.0;
  std::size_t hits = 0;
  for (const RecordIndex r : c.members) hits += (data.label(r) == t);
  return static_cast<double>(hits) / static_cast<double>(c.members.size());
}

TEST(Proclus, RecoversPlantedClustersWithCorrectParameters) {
  const Dataset data = two_cluster_data();
  ProclusOptions options;
  options.num_clusters = 2;
  options.avg_dims = 3;
  options.seed = 3;
  const ProclusResult r = run_proclus(data, options);

  ASSERT_EQ(r.clusters.size(), 2u);
  // Each cluster should be dominated by one planted label, and the two
  // clusters by different labels.
  const double p00 = purity(data, r.clusters[0], 0);
  const double p01 = purity(data, r.clusters[0], 1);
  const double p10 = purity(data, r.clusters[1], 0);
  const double p11 = purity(data, r.clusters[1], 1);
  const double split_a = std::min(p00, p11);
  const double split_b = std::min(p01, p10);
  EXPECT_GT(std::max(split_a, split_b), 0.85)
      << "clusters do not separate the planted labels";
}

TEST(Proclus, LearnedDimensionsOverlapPlantedSubspaces) {
  const Dataset data = two_cluster_data();
  ProclusOptions options;
  options.num_clusters = 2;
  options.avg_dims = 3;
  options.seed = 11;
  const ProclusResult r = run_proclus(data, options);

  // The union of learned dims should hit most of {1,4,7} u {2,5,9}.
  std::set<DimId> learned;
  for (const auto& c : r.clusters) learned.insert(c.dims.begin(), c.dims.end());
  const std::set<DimId> planted{1, 4, 7, 2, 5, 9};
  std::size_t overlap = 0;
  for (const DimId d : planted) overlap += learned.count(d);
  EXPECT_GE(overlap, 4u) << "learned dims mostly miss the planted subspaces";
}

TEST(Proclus, DimensionBudgetFollowsUserL) {
  // The paper's criticism in action: PROCLUS's reported dimensionality is
  // whatever l the user asked for, not what the data contains.
  const Dataset data = two_cluster_data();
  ProclusOptions options;
  options.num_clusters = 2;
  options.seed = 7;

  options.avg_dims = 3;
  const double mean3 = run_proclus(data, options).mean_dimensionality();
  options.avg_dims = 9;
  const double mean9 = run_proclus(data, options).mean_dimensionality();
  EXPECT_NEAR(mean3, 3.0, 1.01);
  EXPECT_GT(mean9, 6.0);  // inflated clusters, as on Ionosphere (31-d/33-d)
}

TEST(Proclus, EveryRecordAssignedOrOutlier) {
  const Dataset data = two_cluster_data(600);
  ProclusOptions options;
  options.num_clusters = 2;
  options.avg_dims = 3;
  const ProclusResult r = run_proclus(data, options);
  std::size_t total = r.outliers.size();
  for (const auto& c : r.clusters) total += c.members.size();
  EXPECT_EQ(total, data.num_records());
  // No duplicates across clusters/outliers.
  std::set<RecordIndex> seen(r.outliers.begin(), r.outliers.end());
  for (const auto& c : r.clusters) {
    for (const RecordIndex m : c.members) {
      EXPECT_TRUE(seen.insert(m).second) << "record assigned twice";
    }
  }
}

TEST(Proclus, EachClusterHasAtLeastTwoDims) {
  const Dataset data = two_cluster_data(600);
  ProclusOptions options;
  options.num_clusters = 3;  // even with a wrong k
  options.avg_dims = 2;
  const ProclusResult r = run_proclus(data, options);
  for (const auto& c : r.clusters) EXPECT_GE(c.dims.size(), 2u);
}

TEST(Proclus, DeterministicPerSeed) {
  const Dataset data = two_cluster_data(500);
  ProclusOptions options;
  options.num_clusters = 2;
  options.avg_dims = 3;
  options.seed = 99;
  const ProclusResult a = run_proclus(data, options);
  const ProclusResult b = run_proclus(data, options);
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (std::size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].medoid, b.clusters[i].medoid);
    EXPECT_EQ(a.clusters[i].dims, b.clusters[i].dims);
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members);
  }
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(Proclus, ValidatesOptions) {
  const Dataset data = two_cluster_data(100);
  ProclusOptions bad;
  bad.avg_dims = 1;
  EXPECT_THROW((void)run_proclus(data, bad), Error);
  bad = ProclusOptions{};
  bad.num_clusters = 0;
  EXPECT_THROW((void)run_proclus(data, bad), Error);
  bad = ProclusOptions{};
  bad.sample_factor = 10;
  bad.candidate_factor = 2;
  EXPECT_THROW((void)run_proclus(data, bad), Error);
}

}  // namespace
}  // namespace mafia
