// Tests for the I/O substrate: binary record files, chunked scans, and the
// in-memory / out-of-core DataSource equivalence the disk-based algorithm
// depends on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <thread>
#include <tuple>

#include "io/data_source.hpp"
#include "io/dataset.hpp"
#include "io/record_file.hpp"

namespace mafia {
namespace {

/// Temp file that deletes itself.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / name).string()) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Dataset make_dataset(std::size_t n, std::size_t d) {
  Dataset data(d);
  std::vector<Value> row(d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      row[j] = static_cast<Value>(i * 100 + j);
    }
    data.append(row, static_cast<std::int32_t>(i % 3) - 1);
  }
  return data;
}

// ---------------------------------------------------------------- Dataset

TEST(Dataset, AppendAndAccess) {
  Dataset data(3);
  data.append(std::vector<Value>{1, 2, 3}, 7);
  EXPECT_EQ(data.num_records(), 1u);
  EXPECT_EQ(data.at(0, 2), 3.0f);
  EXPECT_EQ(data.label(0), 7);
  EXPECT_THROW(data.append(std::vector<Value>{1, 2}), Error);
}

TEST(Dataset, PermuteReordersRowsAndLabels) {
  Dataset data = make_dataset(4, 2);
  data.permute({3, 1, 0, 2});
  EXPECT_EQ(data.at(0, 0), 300.0f);
  EXPECT_EQ(data.at(2, 0), 0.0f);
  EXPECT_EQ(data.label(0), (3 % 3) - 1);
}

TEST(Dataset, PermuteRejectsWrongSize) {
  Dataset data = make_dataset(4, 2);
  EXPECT_THROW(data.permute({0, 1}), Error);
}

// ------------------------------------------------------------ record file

TEST(RecordFile, RoundTripWithLabels) {
  TempFile tmp("mafia_io_roundtrip.bin");
  const Dataset original = make_dataset(57, 5);
  write_record_file(tmp.path(), original, /*with_labels=*/true);

  const RecordFileHeader header = read_record_file_header(tmp.path());
  EXPECT_EQ(header.num_records, 57u);
  EXPECT_EQ(header.num_dims, 5u);
  EXPECT_TRUE(header.has_labels);

  const Dataset loaded = read_record_file(tmp.path());
  ASSERT_EQ(loaded.num_records(), original.num_records());
  ASSERT_EQ(loaded.num_dims(), original.num_dims());
  EXPECT_EQ(loaded.values(), original.values());
  EXPECT_EQ(loaded.labels(), original.labels());
}

TEST(RecordFile, RoundTripWithoutLabels) {
  TempFile tmp("mafia_io_nolabels.bin");
  const Dataset original = make_dataset(10, 2);
  write_record_file(tmp.path(), original, /*with_labels=*/false);
  const Dataset loaded = read_record_file(tmp.path());
  EXPECT_EQ(loaded.values(), original.values());
  for (RecordIndex i = 0; i < loaded.num_records(); ++i) {
    EXPECT_EQ(loaded.label(i), kUnlabeledLabel);
  }
}

TEST(RecordFile, RejectsBadMagic) {
  TempFile tmp("mafia_io_badmagic.bin");
  std::ofstream out(tmp.path(), std::ios::binary);
  out << "NOTMAFIA_GARBAGE_HEADER_PADDING";
  out.close();
  EXPECT_THROW((void)read_record_file_header(tmp.path()), Error);
}

TEST(RecordFile, RejectsMissingFile) {
  EXPECT_THROW((void)read_record_file_header("/nonexistent/nope.bin"), Error);
}

TEST(RecordFile, RejectsTruncatedValues) {
  TempFile tmp("mafia_io_truncated.bin");
  const Dataset original = make_dataset(100, 4);
  write_record_file(tmp.path(), original, false);
  // Chop the file short.
  std::filesystem::resize_file(tmp.path(), kRecordFileHeaderBytes + 10);
  EXPECT_THROW((void)read_record_file(tmp.path()), Error);
}

// ------------------------------------------------------------ data source

TEST(DataSource, InMemoryScanVisitsEveryRecordOnce) {
  const Dataset data = make_dataset(103, 3);
  InMemorySource source(data);
  std::size_t visited = 0;
  std::size_t chunks = 0;
  source.scan(0, 103, 10, [&](const Value* rows, std::size_t n) {
    ++chunks;
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_EQ(rows[r * 3 + 0], static_cast<Value>((visited + r) * 100));
    }
    visited += n;
  });
  EXPECT_EQ(visited, 103u);
  EXPECT_EQ(chunks, 11u);  // ceil(103/10)
  EXPECT_EQ(source.chunk_count(0, 103, 10), 11u);
}

TEST(DataSource, ScanSubrange) {
  const Dataset data = make_dataset(50, 2);
  InMemorySource source(data);
  std::vector<Value> first_col;
  source.scan(20, 30, 4, [&](const Value* rows, std::size_t n) {
    for (std::size_t r = 0; r < n; ++r) first_col.push_back(rows[r * 2]);
  });
  ASSERT_EQ(first_col.size(), 10u);
  EXPECT_EQ(first_col.front(), 2000.0f);
  EXPECT_EQ(first_col.back(), 2900.0f);
}

TEST(DataSource, ScanRejectsBadArguments) {
  const Dataset data = make_dataset(10, 2);
  InMemorySource source(data);
  EXPECT_THROW(source.scan(0, 20, 4, [](const Value*, std::size_t) {}), Error);
  EXPECT_THROW(source.scan(0, 10, 0, [](const Value*, std::size_t) {}), Error);
}

TEST(DataSource, FileSourceMatchesInMemorySource) {
  TempFile tmp("mafia_io_filesource.bin");
  const Dataset data = make_dataset(211, 4);
  write_record_file(tmp.path(), data, true);

  InMemorySource mem(data);
  FileSource file(tmp.path());
  EXPECT_EQ(file.num_records(), mem.num_records());
  EXPECT_EQ(file.num_dims(), mem.num_dims());

  for (const auto [begin, end, chunk] :
       {std::tuple<RecordIndex, RecordIndex, std::size_t>{0, 211, 64},
        {0, 211, 211},
        {0, 211, 1},
        {57, 130, 13}}) {
    std::vector<Value> from_mem;
    std::vector<Value> from_file;
    mem.scan(begin, end, chunk, [&](const Value* rows, std::size_t n) {
      from_mem.insert(from_mem.end(), rows, rows + n * 4);
    });
    file.scan(begin, end, chunk, [&](const Value* rows, std::size_t n) {
      from_file.insert(from_file.end(), rows, rows + n * 4);
    });
    EXPECT_EQ(from_mem, from_file) << "chunk=" << chunk;
  }
}

TEST(DataSource, FileSourceSupportsConcurrentScans) {
  // Each SPMD rank scans through its own stream; interleave two scans of
  // disjoint ranges manually to prove no shared-cursor corruption.
  TempFile tmp("mafia_io_concurrent.bin");
  const Dataset data = make_dataset(100, 2);
  write_record_file(tmp.path(), data, false);
  FileSource file(tmp.path());

  std::vector<Value> a;
  std::vector<Value> b;
  std::thread t1([&] {
    file.scan(0, 50, 7, [&](const Value* rows, std::size_t n) {
      a.insert(a.end(), rows, rows + n * 2);
    });
  });
  std::thread t2([&] {
    file.scan(50, 100, 7, [&](const Value* rows, std::size_t n) {
      b.insert(b.end(), rows, rows + n * 2);
    });
  });
  t1.join();
  t2.join();
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 100u);
  EXPECT_EQ(a[0], 0.0f);
  EXPECT_EQ(b[0], 5000.0f);
}

}  // namespace
}  // namespace mafia
