// Hand-computed fixtures for the scoreboard quality metrics, plus the
// bit-identical permutation-invariance property the metrics guarantee.
#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mafia::eval {
namespace {

Clustering make(std::vector<std::int32_t> labels,
                std::vector<std::vector<DimId>> dims = {}) {
  Clustering c;
  c.labels = std::move(labels);
  c.cluster_dims = std::move(dims);
  return c;
}

TEST(EvalMetrics, PerfectMatch) {
  const Clustering truth = make({0, 0, 1, 1, kNoiseLabel}, {{0, 1}, {2, 3}});
  const Clustering pred = make({0, 0, 1, 1, kNoiseLabel}, {{0, 1}, {2, 3}});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
  EXPECT_DOUBLE_EQ(s.entropy, 0.0);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
  EXPECT_DOUBLE_EQ(s.subspace_recovery, 1.0);
  EXPECT_EQ(s.predicted_clusters, 2u);
  EXPECT_EQ(s.truth_clusters, 2u);
  EXPECT_EQ(s.matched_clusters, 2u);
}

TEST(EvalMetrics, SplitCluster) {
  // One truth cluster of 4 records split into two predicted halves: the
  // one-to-one matching credits one half only.
  const Clustering truth = make({0, 0, 0, 0});
  const Clustering pred = make({0, 0, 1, 1});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
  // Both halves are pure, and with a single truth class the normalized
  // entropy is defined as 0.
  EXPECT_DOUBLE_EQ(s.entropy, 0.0);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);  // every truth record is in SOME cluster
  EXPECT_EQ(s.matched_clusters, 1u);
}

TEST(EvalMetrics, MergedClusters) {
  // Two truth clusters merged into one predicted cluster.
  const Clustering truth = make({0, 0, 1, 1});
  const Clustering pred = make({0, 0, 0, 0});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.f1, 0.5);
  // The merged cluster is a 50/50 mix of two classes: H = ln 2, and the
  // normalizer over 2 classes is ln 2, so normalized entropy is exactly 1.
  EXPECT_DOUBLE_EQ(s.entropy, 1.0);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
  EXPECT_EQ(s.matched_clusters, 1u);
}

TEST(EvalMetrics, NoiseOnlyTruth) {
  const Clustering truth = make({kNoiseLabel, kNoiseLabel, kNoiseLabel});
  const Clustering pred = make({0, 0, kNoiseLabel});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);  // both predicted members are noise
  EXPECT_DOUBLE_EQ(s.recall, 1.0);     // nothing to capture
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_DOUBLE_EQ(s.entropy, 0.0);    // single (noise) class
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);   // vacuous
  EXPECT_TRUE(std::isnan(s.subspace_recovery));
  EXPECT_EQ(s.truth_clusters, 0u);
  EXPECT_EQ(s.matched_clusters, 0u);
}

TEST(EvalMetrics, EmptyPrediction) {
  const Clustering truth = make({0, 0, 1});
  const Clustering pred = make({kNoiseLabel, kNoiseLabel, kNoiseLabel});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);  // no placement mistakes
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
  EXPECT_DOUBLE_EQ(s.entropy, 0.0);
  EXPECT_DOUBLE_EQ(s.coverage, 0.0);
  EXPECT_EQ(s.predicted_clusters, 0u);
  EXPECT_EQ(s.matched_clusters, 0u);
}

TEST(EvalMetrics, NoiseInClusterEntropy) {
  // A predicted cluster holding one truth record and one noise record is a
  // 50/50 mix over {cluster 0, noise}: normalized entropy exactly 1.
  const Clustering truth = make({0, kNoiseLabel});
  const Clustering pred = make({0, 0});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.entropy, 1.0);
}

TEST(EvalMetrics, SubspaceRecoveryBestJaccard) {
  const Clustering truth = make({0, 0}, {{0, 1, 2, 3}});
  // Candidates: Jaccard 2/4 = 0.5 and 4/6 = 2/3 — the best one counts.
  const Clustering pred = make({0, 0}, {{0, 1}, {0, 1, 2, 3, 4, 5}});
  const Scores s = score_clustering(pred, truth);
  EXPECT_DOUBLE_EQ(s.subspace_recovery, 2.0 / 3.0);
}

TEST(EvalMetrics, UnlabeledRecordsExcluded) {
  // Records whose TRUTH label is kUnlabeledLabel carry no ground truth and
  // must not count anywhere — in particular not as noise.
  const Clustering truth = make({0, 0, kUnlabeledLabel, kUnlabeledLabel});
  const Clustering pred = make({0, 1, 1, 1});
  const Scores s = score_clustering(pred, truth);
  // Scored records: the first two.  Each predicted cluster holds one truth-0
  // record, only one pair can match.
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_DOUBLE_EQ(s.recall, 0.5);
  EXPECT_DOUBLE_EQ(s.coverage, 1.0);
}

TEST(EvalMetrics, ExactMatchingBeatsGreedy) {
  // Overlaps: pred 0 hits truth 0 with 6 and truth 1 with 5; pred 1 hits
  // truth 0 with 5.  Greedy takes (p0,t0)=6 and strands pred 1 (total 6);
  // the optimal assignment is p0->t1, p1->t0 (total 10).
  std::vector<std::int32_t> truth_labels, pred_labels;
  for (int i = 0; i < 6; ++i) { truth_labels.push_back(0); pred_labels.push_back(0); }
  for (int i = 0; i < 5; ++i) { truth_labels.push_back(0); pred_labels.push_back(1); }
  for (int i = 0; i < 5; ++i) { truth_labels.push_back(1); pred_labels.push_back(0); }
  const Scores s = score_clustering(make(pred_labels), make(truth_labels));
  EXPECT_DOUBLE_EQ(s.precision, 10.0 / 16.0);
  EXPECT_DOUBLE_EQ(s.recall, 10.0 / 16.0);
  EXPECT_EQ(s.matched_clusters, 2u);
}

TEST(EvalMetrics, LengthMismatchThrows) {
  EXPECT_THROW((void)score_clustering(make({0, 0}), make({0})), Error);
}

// ---- Permutation invariance property -------------------------------------

/// Deterministic mixed-quality labelings over n records.
struct PropertyCase {
  Clustering pred;
  Clustering truth;
};

PropertyCase build_case() {
  constexpr std::size_t kRecords = 240;
  constexpr std::int32_t kTruthClusters = 4;
  constexpr std::int32_t kPredClusters = 5;
  PropertyCase pc;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (std::size_t r = 0; r < kRecords; ++r) {
    const auto t = static_cast<std::int32_t>(next() % (kTruthClusters + 1)) - 1;
    pc.truth.labels.push_back(t);  // -1 = noise
    // Predictions correlate with truth but are noisy: 70% follow the truth
    // label, the rest scatter.
    std::int32_t p;
    if (t >= 0 && next() % 10 < 7) {
      p = t;
    } else {
      p = static_cast<std::int32_t>(next() % (kPredClusters + 1)) - 1;
    }
    pc.pred.labels.push_back(p);
  }
  for (std::int32_t t = 0; t < kTruthClusters; ++t) {
    pc.truth.cluster_dims.push_back(
        {static_cast<DimId>(t), static_cast<DimId>(t + 2),
         static_cast<DimId>(t + 5)});
  }
  for (std::int32_t p = 0; p < kPredClusters; ++p) {
    pc.pred.cluster_dims.push_back(
        {static_cast<DimId>(p), static_cast<DimId>(p + 2)});
  }
  return pc;
}

/// Relabels cluster ids through `perm` (id i -> perm[i]) and rebuilds the
/// dims table at the permuted slots.
Clustering permute_ids(const Clustering& c, const std::vector<std::int32_t>& perm) {
  Clustering out;
  out.labels.reserve(c.labels.size());
  for (const std::int32_t l : c.labels) {
    out.labels.push_back(l >= 0 ? perm[static_cast<std::size_t>(l)] : l);
  }
  std::int32_t max_id = -1;
  for (const std::int32_t p : perm) max_id = std::max(max_id, p);
  out.cluster_dims.resize(static_cast<std::size_t>(max_id + 1));
  for (std::size_t i = 0; i < c.cluster_dims.size(); ++i) {
    out.cluster_dims[static_cast<std::size_t>(perm[i])] = c.cluster_dims[i];
  }
  return out;
}

Clustering permute_records(const Clustering& c, const std::vector<std::size_t>& perm) {
  Clustering out = c;
  for (std::size_t i = 0; i < perm.size(); ++i) out.labels[i] = c.labels[perm[i]];
  return out;
}

void expect_bit_identical(const Scores& a, const Scores& b) {
  // Exact comparison on purpose: the metrics promise BIT-identical results
  // under id and record permutation.
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.f1, b.f1);
  EXPECT_EQ(a.entropy, b.entropy);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.subspace_recovery, b.subspace_recovery);
  EXPECT_EQ(a.predicted_clusters, b.predicted_clusters);
  EXPECT_EQ(a.truth_clusters, b.truth_clusters);
  EXPECT_EQ(a.matched_clusters, b.matched_clusters);
}

TEST(EvalMetricsProperty, PermutingIdsAndRecordsIsBitIdentical) {
  const PropertyCase base = build_case();
  const Scores reference = score_clustering(base.pred, base.truth);
  ASSERT_FALSE(std::isnan(reference.subspace_recovery));

  // Several id permutations (including non-contiguous relabelings) crossed
  // with several record shuffles.
  const std::vector<std::vector<std::int32_t>> pred_perms = {
      {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {7, 0, 12, 3, 9}};
  const std::vector<std::vector<std::int32_t>> truth_perms = {
      {3, 2, 1, 0}, {1, 3, 0, 2}, {10, 2, 6, 0}};

  const std::size_t n = base.pred.labels.size();
  std::vector<std::size_t> rec_perm(n);
  std::iota(rec_perm.begin(), rec_perm.end(), std::size_t{0});
  std::uint64_t x = 42;
  const auto next = [&x]() {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };

  for (std::size_t v = 0; v < pred_perms.size(); ++v) {
    // Fresh record shuffle per variant (Fisher-Yates on the index vector).
    for (std::size_t i = n; i > 1; --i) {
      std::swap(rec_perm[i - 1], rec_perm[next() % i]);
    }
    const Clustering pred =
        permute_records(permute_ids(base.pred, pred_perms[v]), rec_perm);
    const Clustering truth =
        permute_records(permute_ids(base.truth, truth_perms[v]), rec_perm);
    expect_bit_identical(score_clustering(pred, truth), reference);
  }
}

}  // namespace
}  // namespace mafia::eval
