// Tests for the random number substrate: the Inversive Congruential
// Generator (paper ref [6]), the LCG contrast case, and the distribution
// helpers the data generator relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <set>
#include <vector>

#include "rng/distributions.hpp"
#include "rng/icg.hpp"
#include "rng/lcg.hpp"
#include "rng/plane_test.hpp"

namespace mafia {
namespace {

// ------------------------------------------------------------ inverse_pow2

TEST(InversePow2, InvertsSmallOddValues) {
  for (std::uint64_t x = 1; x < 2000; x += 2) {
    EXPECT_EQ(x * inverse_pow2(x), 1ull) << "x=" << x;
  }
}

class InversePow2Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InversePow2Sweep, InverseTimesValueIsOne) {
  const std::uint64_t x = GetParam() | 1ull;  // force odd
  EXPECT_EQ(x * inverse_pow2(x), 1ull);
}

INSTANTIATE_TEST_SUITE_P(
    OddResidues, InversePow2Sweep,
    ::testing::Values(1ull, 3ull, 0xdeadbeefull, 0x123456789abcdefull,
                      0xffffffffffffffffull, 0x8000000000000001ull,
                      0x5deece66dull, 0x2545f4914f6cdd1dull));

TEST(InversePow2, InverseIsInvolutionUnderInverse) {
  // inv(inv(x)) == x for odd x.
  for (std::uint64_t x : {3ull, 17ull, 0xabcdefull, 0x13579bdf02468aceull | 1ull}) {
    EXPECT_EQ(inverse_pow2(inverse_pow2(x)), x);
  }
}

// -------------------------------------------------------------------- ICG

TEST(Icg, StateStaysOdd) {
  IcgRandom rng(12345);
  for (int i = 0; i < 1000; ++i) {
    rng.next();
    EXPECT_EQ(rng.state() & 1ull, 1ull);
  }
}

TEST(Icg, DifferentSeedsDiverge) {
  IcgRandom a(1);
  IcgRandom b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Icg, Deterministic) {
  IcgRandom a(99);
  IcgRandom b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Icg, NoShortCycle) {
  // The orbit has period 2^63; any repeat within a small window would be a
  // construction bug.
  IcgRandom rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(rng.state()).second) << "cycle at step " << i;
    rng.next();
  }
}

TEST(Icg, RoughlyUniformInBuckets) {
  IcgRandom rng(2024);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<std::size_t>(uniform01(rng) * kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected)) << "bucket " << b;
  }
}

// ---------------------------------------------------- LCG plane structure

TEST(PlaneDiagnostic, RanduConcentratesOnFewPlanesIcgDoesNot) {
  // Successive RANDU triples satisfy 9x − 6y + z ≡ 0 (mod 2^31): projected
  // onto (9, −6, 1), every triple lands on one of ~15 integer offsets.
  // The ICG fills the projection continuously — the "falling into specific
  // planes" defect the paper's Section 5.1 avoids by using the ICG.
  const std::vector<double> direction{9.0, -6.0, 1.0};
  constexpr std::size_t kSamples = 30000;
  constexpr double kQuantum = 1e-4;

  RanduRandom randu(42);
  IcgRandom icg(42);
  const std::size_t randu_planes =
      count_plane_offsets(randu, kSamples, direction, kQuantum);
  const std::size_t icg_planes =
      count_plane_offsets(icg, kSamples, direction, kQuantum);
  EXPECT_LE(randu_planes, 16u) << "RANDU should sit on <= 15 planes";
  EXPECT_GT(icg_planes, 1000u * randu_planes / 16u)
      << "randu=" << randu_planes << " icg=" << icg_planes;
}

// ---------------------------------------------------------- distributions

TEST(Distributions, Uniform01InRange) {
  IcgRandom rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, UniformRealRespectsBounds) {
  IcgRandom rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double v = uniform_real(rng, -3.5, 12.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 12.25);
  }
}

TEST(Distributions, UniformIndexCoversRangeWithoutBias) {
  IcgRandom rng(7);
  constexpr std::uint64_t kN = 7;
  constexpr int kSamples = 70000;
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[uniform_index(rng, kN)];
  const double expected = static_cast<double>(kSamples) / kN;
  for (std::uint64_t v = 0; v < kN; ++v) {
    EXPECT_NEAR(counts[v], expected, 5 * std::sqrt(expected)) << "value " << v;
  }
}

TEST(Distributions, UniformIndexOneIsAlwaysZero) {
  IcgRandom rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(uniform_index(rng, 1), 0ull);
}

TEST(Distributions, UniformIndexRejectsZero) {
  IcgRandom rng(9);
  EXPECT_THROW((void)uniform_index(rng, 0), Error);
}

TEST(Distributions, ShuffleIsAPermutation) {
  IcgRandom rng(10);
  std::vector<int> v(500);
  std::iota(v.begin(), v.end(), 0);
  shuffle(rng, v.begin(), v.end());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  // And it actually moved things.
  int displaced = 0;
  for (int i = 0; i < 500; ++i) displaced += (v[static_cast<std::size_t>(i)] != i);
  EXPECT_GT(displaced, 400);
}

TEST(Distributions, ShuffleDeterministicPerSeed) {
  std::vector<int> a(100);
  std::vector<int> b(100);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 0);
  IcgRandom ra(11);
  IcgRandom rb(11);
  shuffle(ra, a.begin(), a.end());
  shuffle(rb, b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace mafia
