// Tests for cluster assembly: face connectivity, union-find grouping,
// subset-cluster elimination, minimal-DNF construction, and quality
// scoring.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "cluster/assembly.hpp"
#include "cluster/quality.hpp"
#include "cluster/union_find.hpp"
#include "grid/uniform_grid.hpp"

namespace mafia {
namespace {

UnitStore units2d(const std::vector<std::pair<BinId, BinId>>& cells,
                  DimId d0 = 0, DimId d1 = 1) {
  UnitStore s(2);
  for (const auto& [a, b] : cells) {
    const DimId dims[2] = {d0, d1};
    const BinId bins[2] = {a, b};
    s.push_unchecked(dims, bins);
  }
  return s;
}

// -------------------------------------------------------------- UnionFind

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(3, 4));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(3));
  uf.unite(1, 3);
  EXPECT_EQ(uf.find(0), uf.find(4));
}

// ---------------------------------------------------------- face adjacency

TEST(FaceAdjacent, RequiresExactlyOneAdjacentDifference) {
  const UnitStore s = units2d({{2, 2}, {2, 3}, {3, 3}, {2, 4}, {4, 4}});
  EXPECT_TRUE(face_adjacent(s, 0, 1));   // (2,2)-(2,3)
  EXPECT_TRUE(face_adjacent(s, 1, 2));   // (2,3)-(3,3)
  EXPECT_FALSE(face_adjacent(s, 0, 2));  // diagonal
  EXPECT_FALSE(face_adjacent(s, 0, 3));  // distance 2 in one dim
  EXPECT_FALSE(face_adjacent(s, 0, 0));  // identical: zero differences
}

TEST(FaceAdjacent, DifferentSubspacesNeverAdjacent) {
  UnitStore s(2);
  const DimId da[2] = {0, 1};
  const DimId db[2] = {0, 2};
  const BinId bins[2] = {1, 1};
  s.push_unchecked(da, bins);
  s.push_unchecked(db, bins);
  EXPECT_FALSE(face_adjacent(s, 0, 1));
}

// ---------------------------------------------------------- connect_units

TEST(ConnectUnits, SplitsDisconnectedComponents) {
  // Two 2x1 bars separated by a gap.
  const UnitStore s = units2d({{0, 0}, {0, 1}, {5, 5}, {5, 6}});
  const auto clusters = connect_units(s);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].units.size(), 2u);
  EXPECT_EQ(clusters[1].units.size(), 2u);
}

TEST(ConnectUnits, ChainsThroughCommonCells) {
  // L-shaped chain: all connected through shared faces.
  const UnitStore s = units2d({{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}});
  const auto clusters = connect_units(s);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].units.size(), 5u);
}

TEST(ConnectUnits, GroupsBySubspaceFirst) {
  UnitStore s(1);
  for (DimId d = 0; d < 3; ++d) {
    const BinId b = 2;
    s.push_unchecked(&d, &b);
  }
  const auto clusters = connect_units(s);
  EXPECT_EQ(clusters.size(), 3u);  // one per dimension
}

// ------------------------------------------------- subset elimination

TEST(SubsetElimination, DropsProjectedLowerDimCluster) {
  // 2-d cluster at {0,1} bins (3,4); its 1-d projection in dim 0 bin 3.
  std::vector<Cluster> clusters;
  {
    Cluster big;
    big.dims = {0, 1};
    big.units = units2d({{3, 4}});
    clusters.push_back(std::move(big));
  }
  {
    Cluster small;
    small.dims = {0};
    small.units = UnitStore(1);
    const DimId d = 0;
    const BinId b = 3;
    small.units.push_unchecked(&d, &b);
    clusters.push_back(std::move(small));
  }
  eliminate_subset_clusters(clusters);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].dims, (std::vector<DimId>{0, 1}));
}

TEST(SubsetElimination, KeepsNonProjectedCluster) {
  std::vector<Cluster> clusters;
  {
    Cluster big;
    big.dims = {0, 1};
    big.units = units2d({{3, 4}});
    clusters.push_back(std::move(big));
  }
  {
    Cluster other;
    other.dims = {0};
    other.units = UnitStore(1);
    const DimId d = 0;
    const BinId b = 9;  // NOT the projection of (3,4)
    other.units.push_unchecked(&d, &b);
    clusters.push_back(std::move(other));
  }
  eliminate_subset_clusters(clusters);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(SubsetElimination, KeepsDisjointSubspaces) {
  std::vector<Cluster> clusters;
  Cluster a;
  a.dims = {0, 1};
  a.units = units2d({{1, 1}});
  Cluster b;
  b.dims = {2, 3};
  b.units = units2d({{1, 1}}, 2, 3);
  clusters.push_back(std::move(a));
  clusters.push_back(std::move(b));
  eliminate_subset_clusters(clusters);
  EXPECT_EQ(clusters.size(), 2u);
}

// -------------------------------------------------------------------- DNF

/// Cells covered by a rect list.
std::set<std::string> covered_cells(const std::vector<BinRect>& rects) {
  std::set<std::string> cells;
  for (const BinRect& r : rects) {
    // 2-d only in these tests.
    for (int a = r.lo[0]; a <= r.hi[0]; ++a) {
      for (int b = r.lo[1]; b <= r.hi[1]; ++b) {
        cells.insert(std::to_string(a) + "," + std::to_string(b));
      }
    }
  }
  return cells;
}

std::set<std::string> unit_cells(const Cluster& c) {
  std::set<std::string> cells;
  for (std::size_t u = 0; u < c.units.size(); ++u) {
    const auto bins = c.units.bins(u);
    cells.insert(std::to_string(bins[0]) + "," + std::to_string(bins[1]));
  }
  return cells;
}

TEST(Dnf, SolidRectangleCollapsesToOneConjunct) {
  Cluster c;
  c.dims = {0, 1};
  std::vector<std::pair<BinId, BinId>> cells;
  for (BinId a = 2; a <= 4; ++a) {
    for (BinId b = 1; b <= 3; ++b) cells.emplace_back(a, b);
  }
  c.units = units2d(cells);
  build_dnf(c);
  ASSERT_EQ(c.dnf.size(), 1u);
  EXPECT_EQ(c.dnf[0].lo, (std::vector<BinId>{2, 1}));
  EXPECT_EQ(c.dnf[0].hi, (std::vector<BinId>{4, 3}));
}

TEST(Dnf, LShapeNeedsTwoRectanglesAndCoversExactly) {
  Cluster c;
  c.dims = {0, 1};
  // Vertical bar (0,0)-(0,3) plus horizontal bar (1,0)-(3,0).
  c.units = units2d({{0, 0}, {0, 1}, {0, 2}, {0, 3}, {1, 0}, {2, 0}, {3, 0}});
  build_dnf(c);
  EXPECT_EQ(c.dnf.size(), 2u);
  EXPECT_EQ(covered_cells(c.dnf), unit_cells(c));
}

TEST(Dnf, CoverageIsExactOnIrregularShapes) {
  Cluster c;
  c.dims = {0, 1};
  c.units = units2d({{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}, {0, 2}});
  build_dnf(c);
  EXPECT_EQ(covered_cells(c.dnf), unit_cells(c));
}

TEST(Dnf, SingleUnitSingleRect) {
  Cluster c;
  c.dims = {0, 1};
  c.units = units2d({{7, 7}});
  build_dnf(c);
  ASSERT_EQ(c.dnf.size(), 1u);
  EXPECT_EQ(c.dnf[0].lo, c.dnf[0].hi);
}

// ------------------------------------------------------- assemble pipeline

TEST(Assemble, MultiLevelRegistrationEliminatesSubsets) {
  // Level-1 store: dim 0 bin 3 (projection of the 2-d cluster).
  UnitStore level1(1);
  const DimId d0 = 0;
  const BinId b3 = 3;
  level1.push_unchecked(&d0, &b3);
  // Level-2 store: the real cluster.
  const UnitStore level2 = units2d({{3, 4}, {3, 5}});
  const auto clusters = assemble_clusters({level1, level2});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].dims, (std::vector<DimId>{0, 1}));
  EXPECT_FALSE(clusters[0].dnf.empty());
}

TEST(Assemble, SortsByDimensionalityDescending) {
  UnitStore level1(1);
  const DimId d5 = 5;
  const BinId b0 = 0;
  level1.push_unchecked(&d5, &b0);
  const UnitStore level2 = units2d({{1, 1}});
  const auto clusters = assemble_clusters({level1, level2});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_GT(clusters[0].dims.size(), clusters[1].dims.size());
}

// ------------------------------------------------------------ to_string

TEST(ClusterModel, ToStringRendersDnfIntervals) {
  const std::vector<Value> lo(2, 0.0f);
  const std::vector<Value> hi(2, 100.0f);
  const GridSet grids = compute_uniform_grids(lo, hi, 10, 0.01, 100);
  Cluster c;
  c.dims = {0, 1};
  c.units = units2d({{2, 3}});
  build_dnf(c);
  const std::string s = c.to_string(grids);
  EXPECT_NE(s.find("subspace {0,1}"), std::string::npos);
  EXPECT_NE(s.find("20<=d0<30"), std::string::npos);
  EXPECT_NE(s.find("30<=d1<40"), std::string::npos);
}

// ---------------------------------------------------------------- quality

TEST(Quality, PerfectRecoveryScoresFullCoverage) {
  const std::vector<Value> lo(2, 0.0f);
  const std::vector<Value> hi(2, 100.0f);
  const GridSet grids = compute_uniform_grids(lo, hi, 10, 0.01, 100);

  Cluster c;
  c.dims = {0, 1};
  std::vector<std::pair<BinId, BinId>> cells;
  for (BinId a = 2; a <= 4; ++a) {
    for (BinId b = 2; b <= 4; ++b) cells.emplace_back(a, b);
  }
  c.units = units2d(cells);
  build_dnf(c);

  TrueBox box;
  box.dims = {0, 1};
  box.lo = {20, 20};
  box.hi = {50, 50};
  const QualityReport report = evaluate_quality({c}, grids, {box});
  ASSERT_EQ(report.per_box.size(), 1u);
  EXPECT_TRUE(report.per_box[0].subspace_found);
  EXPECT_NEAR(report.per_box[0].volume_coverage, 1.0, 1e-6);
  EXPECT_NEAR(report.per_box[0].boundary_error, 0.0, 1e-6);
  EXPECT_EQ(report.subspaces_matched, 1u);
  EXPECT_EQ(report.spurious_clusters, 0u);
}

TEST(Quality, PartialDetectionScoresPartialCoverage) {
  const std::vector<Value> lo(2, 0.0f);
  const std::vector<Value> hi(2, 100.0f);
  const GridSet grids = compute_uniform_grids(lo, hi, 10, 0.01, 100);

  // Truth spans bins 2..4 but only the middle bin was detected (CLIQUE's
  // edge-loss failure mode).
  Cluster c;
  c.dims = {0, 1};
  c.units = units2d({{3, 3}});
  build_dnf(c);

  TrueBox box;
  box.dims = {0, 1};
  box.lo = {20, 20};
  box.hi = {50, 50};
  const QualityReport report = evaluate_quality({c}, grids, {box});
  EXPECT_TRUE(report.per_box[0].subspace_found);
  EXPECT_NEAR(report.per_box[0].volume_coverage, 1.0 / 9.0, 1e-6);
  EXPECT_GT(report.per_box[0].boundary_error, 0.05);
}

TEST(Quality, PointLevelScores) {
  // discovered: records 0,1,2 clustered; truth: 1,2,3 clustered.
  const std::vector<std::int32_t> discovered{0, 0, 1, -1, -1};
  const std::vector<std::int32_t> truth{-1, 0, 0, 1, -1};
  const PointScores s = point_level_scores(discovered, truth);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.f1(), 2.0 / 3.0, 1e-12);
}

TEST(Quality, PointLevelScoresDegenerateCases) {
  const std::vector<std::int32_t> none{-1, -1};
  const std::vector<std::int32_t> all{0, 0};
  EXPECT_EQ(point_level_scores(none, all).precision, 0.0);
  EXPECT_EQ(point_level_scores(none, all).recall, 0.0);
  EXPECT_EQ(point_level_scores(all, none).f1(), 0.0);
  EXPECT_THROW((void)point_level_scores(none, {0}), Error);
}

TEST(Dnf, ResultIsIrreducible) {
  // Property: after build_dnf, no two rectangles can still merge (identical
  // in all dims but one, adjacent/overlapping there) — the greedy loop must
  // reach a true fixpoint.
  std::uint64_t state = 2024;
  for (int instance = 0; instance < 20; ++instance) {
    Cluster c;
    c.dims = {0, 1};
    std::set<std::pair<BinId, BinId>> cells;
    for (int i = 0; i < 12; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      cells.insert({static_cast<BinId>((state >> 20) % 5),
                    static_cast<BinId>((state >> 40) % 5)});
    }
    c.units = units2d({cells.begin(), cells.end()});
    build_dnf(c);
    for (std::size_t i = 0; i < c.dnf.size(); ++i) {
      for (std::size_t j = i + 1; j < c.dnf.size(); ++j) {
        std::size_t diff = 0;
        bool adjacent = true;
        for (std::size_t d = 0; d < 2; ++d) {
          if (c.dnf[i].lo[d] == c.dnf[j].lo[d] &&
              c.dnf[i].hi[d] == c.dnf[j].hi[d]) {
            continue;
          }
          ++diff;
          const int lo = std::max<int>(c.dnf[i].lo[d], c.dnf[j].lo[d]);
          const int hi = std::min<int>(c.dnf[i].hi[d], c.dnf[j].hi[d]);
          adjacent = lo <= hi + 1;
        }
        EXPECT_FALSE(diff == 1 && adjacent)
            << "rects " << i << "," << j << " still mergeable";
      }
    }
  }
}

TEST(Quality, MissedSubspaceAndSpuriousCluster) {
  const std::vector<Value> lo(2, 0.0f);
  const std::vector<Value> hi(2, 100.0f);
  const GridSet grids = compute_uniform_grids(lo, hi, 10, 0.01, 100);

  Cluster wrong;
  wrong.dims = {0};
  wrong.units = UnitStore(1);
  const DimId d = 0;
  const BinId b = 1;
  wrong.units.push_unchecked(&d, &b);
  build_dnf(wrong);

  TrueBox box;
  box.dims = {0, 1};
  box.lo = {20, 20};
  box.hi = {50, 50};
  const QualityReport report = evaluate_quality({wrong}, grids, {box});
  EXPECT_FALSE(report.per_box[0].subspace_found);
  EXPECT_EQ(report.subspaces_matched, 0u);
  EXPECT_EQ(report.spurious_clusters, 1u);
}

}  // namespace
}  // namespace mafia
