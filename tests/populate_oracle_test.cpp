// Oracle-differential proof of the populate kernels.
//
// Every production lookup kernel (packed/sorted, packed/hash, memcmp
// fallback) is driven over the same instances as the naive reference
// oracle (tests/populate_oracle.hpp) and must produce identical counts.
// The instances cover the kernel's adversarial surface explicitly — k = 1,
// the k = 8/9 packed-key boundary, a 256-bin dimension (full BinId range),
// duplicate bin rows across and within subspaces, records outside every
// CDU — plus randomized differential sweeps over datagen workloads with
// planted subspace clusters.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "datagen/generator.hpp"
#include "grid/uniform_grid.hpp"
#include "populate_oracle.hpp"
#include "rng/distributions.hpp"
#include "rng/icg.hpp"
#include "units/populate.hpp"

namespace mafia {
namespace {

/// Kernel/block/table configurations every differential case runs under:
/// both kernels, block sizes straddling the record counts (1 record, odd,
/// power of two, larger than the data), and hash thresholds forcing the
/// open-addressing table on and off.
std::vector<PopulateConfig> kernel_matrix() {
  constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();
  return {
      {2048, PopulateKernel::Auto, 48},     // production defaults
      {1, PopulateKernel::Auto, 48},        // single-record blocks
      {3, PopulateKernel::Packed, 1},       // odd blocks, hash table always
      {64, PopulateKernel::Packed, kNever}, // sorted-array search always
      {2048, PopulateKernel::Memcmp, 48},   // forced byte-row fallback
      {7, PopulateKernel::Memcmp, 48},
      {2048, PopulateKernel::Bitmap, 48},   // bitmap index, large blocks
      {3, PopulateKernel::Bitmap, 48},      // bitmap index, odd tiny blocks
  };
}

/// Runs every kernel configuration over the instance (splitting the rows
/// into two accumulate calls to exercise chunk boundaries) and asserts
/// count-exact agreement with the oracle.
void expect_all_kernels_match_oracle(const GridSet& grids,
                                     const UnitStore& cdus,
                                     const std::vector<Value>& rows) {
  const std::size_t d = grids.num_dims();
  const std::size_t nrows = rows.size() / d;
  const std::vector<Count> expected =
      oracle_counts(grids, cdus, rows.data(), nrows);

  for (const PopulateConfig& cfg : kernel_matrix()) {
    UnitPopulator pop(grids, cdus, cfg);
    const std::size_t split = nrows / 3;
    pop.accumulate(rows.data(), split);
    pop.accumulate(rows.data() + split * d, nrows - split);
    ASSERT_EQ(pop.counts().size(), expected.size());
    for (std::size_t u = 0; u < expected.size(); ++u) {
      ASSERT_EQ(pop.counts()[u], expected[u])
          << "cdu " << cdus.to_string(u) << " block=" << cfg.block_records
          << " kernel=" << static_cast<int>(cfg.kernel)
          << " hash_min=" << cfg.hash_min_cdus;
    }
  }
}

/// Uniform grids over [0, 100] with the given bins per dimension.
GridSet uniform_grids(std::size_t d, std::size_t bins) {
  GridSet grids;
  for (std::size_t j = 0; j < d; ++j) {
    grids.dims.push_back(compute_uniform_grid(static_cast<DimId>(j), 0.0f,
                                              100.0f, bins, 0.01, 1000));
  }
  return grids;
}

std::vector<Value> random_rows(IcgRandom& rng, std::size_t nrows,
                               std::size_t d, double lo = -10.0,
                               double hi = 110.0) {
  std::vector<Value> rows(nrows * d);
  for (auto& v : rows) v = static_cast<Value>(uniform_real(rng, lo, hi));
  return rows;
}

TEST(PopulateOracle, SingleDimensionCandidates) {
  IcgRandom rng(101);
  const GridSet grids = uniform_grids(6, 10);
  const UnitStore cdus = random_cdus(rng, grids, 1, 40);
  expect_all_kernels_match_oracle(grids, cdus, random_rows(rng, 700, 6));
}

TEST(PopulateOracle, PackedKeyBoundaryKEight) {
  // k = 8: the widest unit that still packs into one 64-bit key.
  IcgRandom rng(102);
  const GridSet grids = uniform_grids(12, 8);
  const UnitStore cdus = random_cdus(rng, grids, 8, 120);
  expect_all_kernels_match_oracle(grids, cdus, random_rows(rng, 600, 12));
}

TEST(PopulateOracle, PackedKeyBoundaryKNine) {
  // k = 9: one past the packed-key limit — every kernel selection must
  // agree because the packed path silently falls back to memcmp rows.
  IcgRandom rng(103);
  const GridSet grids = uniform_grids(12, 8);
  const UnitStore cdus = random_cdus(rng, grids, 9, 120);
  expect_all_kernels_match_oracle(grids, cdus, random_rows(rng, 600, 12));
}

TEST(PopulateOracle, FullBinIdRangeIn256BinDimension) {
  // One dimension at the BinId limit (256 bins): bin indices occupy the
  // full byte range, so any packing arithmetic that loses high bits or
  // sign-extends 0x80.. bytes shows up as count drift.
  IcgRandom rng(104);
  GridSet grids;
  grids.dims.push_back(compute_uniform_grid(0, 0.0f, 100.0f, 256, 0.01, 1000));
  grids.dims.push_back(compute_uniform_grid(1, 0.0f, 100.0f, 256, 0.01, 1000));
  grids.dims.push_back(compute_uniform_grid(2, 0.0f, 100.0f, 5, 0.01, 1000));

  UnitStore cdus(2);
  // Deliberately include the extreme bins 0 and 255 alongside random rows.
  for (const BinId hot : {BinId{0}, BinId{127}, BinId{128}, BinId{255}}) {
    const DimId dims01[2] = {0, 1};
    const BinId bins[2] = {hot, hot};
    cdus.push_unchecked(dims01, bins);
    const DimId dims02[2] = {0, 2};
    const BinId bins2[2] = {hot, 3};
    cdus.push_unchecked(dims02, bins2);
  }
  const UnitStore extra = random_cdus(rng, grids, 2, 90);
  UnitStore all(2);
  all.append(cdus);
  all.append(extra);
  expect_all_kernels_match_oracle(grids, all, random_rows(rng, 2000, 3));
}

TEST(PopulateOracle, DuplicateBinRowsAcrossSubspaces) {
  // The same bin tuple planted in several distinct dimension sets: packed
  // keys collide numerically across subspaces, so any state shared between
  // subspace sweeps would miscount.
  IcgRandom rng(105);
  const GridSet grids = uniform_grids(8, 10);
  UnitStore cdus(3);
  const BinId bins[3] = {4, 4, 4};
  for (const auto& dims : std::vector<std::vector<DimId>>{
           {0, 1, 2}, {0, 1, 3}, {2, 3, 4}, {5, 6, 7}, {0, 6, 7}}) {
    cdus.push_unchecked(dims.data(), bins);
  }
  const UnitStore extra = random_cdus(rng, grids, 3, 50);
  UnitStore all(3);
  all.append(cdus);
  all.append(extra);
  expect_all_kernels_match_oracle(grids, all, random_rows(rng, 1500, 8));
}

TEST(PopulateOracle, DuplicateCandidatesWithinASubspace) {
  // Identical CDUs repeated in one subspace (dedup normally removes these;
  // the counting contract must hold regardless): every duplicate row gets
  // the full count, in every kernel — including the hash table, whose
  // slots point at the first row of an equal run.
  IcgRandom rng(106);
  const GridSet grids = uniform_grids(5, 10);
  UnitStore cdus(2);
  const DimId dims[2] = {1, 3};
  for (int rep = 0; rep < 3; ++rep) {
    const BinId bins[2] = {2, 7};
    cdus.push_unchecked(dims, bins);
  }
  const BinId other[2] = {2, 8};
  cdus.push_unchecked(dims, other);
  const UnitStore extra = random_cdus(rng, grids, 2, 60);
  UnitStore all(2);
  all.append(cdus);
  all.append(extra);
  expect_all_kernels_match_oracle(grids, all, random_rows(rng, 1200, 5));

  // Spot-check the contract directly: the three duplicates carry equal
  // counts in the production configuration.
  UnitPopulator pop(grids, all);
  pop.accumulate(random_rows(rng, 500, 5).data(), 500);
  EXPECT_EQ(pop.counts()[0], pop.counts()[1]);
  EXPECT_EQ(pop.counts()[1], pop.counts()[2]);
}

TEST(PopulateOracle, RecordsOutsideEveryCandidate) {
  // All CDUs sit in bins the records never touch: every kernel must report
  // all-zero counts (the lookup misses on every record).
  const GridSet grids = uniform_grids(4, 10);
  UnitStore cdus(2);
  for (DimId a = 0; a < 3; ++a) {
    const DimId dims[2] = {a, static_cast<DimId>(a + 1)};
    const BinId bins[2] = {9, 9};  // top bin: records below never reach it
    cdus.push_unchecked(dims, bins);
  }
  IcgRandom rng(107);
  // Records confined to [0, 50) -> bins 0..4 only.
  const std::vector<Value> rows = random_rows(rng, 800, 4, 0.0, 50.0);
  expect_all_kernels_match_oracle(grids, cdus, rows);
  UnitPopulator pop(grids, cdus);
  pop.accumulate(rows.data(), 800);
  for (const Count c : pop.counts()) EXPECT_EQ(c, 0u);
}

TEST(PopulateOracle, HashTableKeepsHeadroomAtPowerOfTwoMemberCounts) {
  // Regression guard for the open-addressing table sizing: at exactly 64
  // CDUs in one subspace — a power-of-two member count — a `next_pow2(n)`
  // capacity would be 64 slots for 64 keys (load factor 1.0), degrading
  // probe chains toward O(n) and, with the final empty slot filled, turning
  // the miss-probe loop into an infinite scan.  hash_table_capacity must
  // keep >= 2x headroom everywhere, and the forced-hash kernel must agree
  // with the oracle at that exact count.
  EXPECT_EQ(hash_table_capacity(0), 4u);
  EXPECT_EQ(hash_table_capacity(1), 4u);
  EXPECT_EQ(hash_table_capacity(63), 128u);
  EXPECT_EQ(hash_table_capacity(64), 128u);  // not 64: 2x headroom held
  EXPECT_EQ(hash_table_capacity(65), 256u);
  for (std::size_t n = 1; n <= 1024; ++n) {
    ASSERT_GE(hash_table_capacity(n), 2 * n) << "members=" << n;
  }

  IcgRandom rng(108);
  const GridSet grids = uniform_grids(6, 12);
  UnitStore cdus(3);
  const DimId dims[3] = {1, 2, 4};
  std::size_t pushed = 0;
  while (pushed < 64) {  // 64 distinct bin rows in the one subspace
    const BinId bins[3] = {static_cast<BinId>(uniform_index(rng, 12)),
                           static_cast<BinId>(uniform_index(rng, 12)),
                           static_cast<BinId>(pushed % 12)};
    cdus.push_unchecked(dims, bins);
    ++pushed;
  }
  const std::vector<Value> rows = random_rows(rng, 1500, 6);
  const std::vector<Count> expected =
      oracle_counts(grids, cdus, rows.data(), 1500);
  const PopulateConfig force_hash{2048, PopulateKernel::Packed, 1};
  UnitPopulator pop(grids, cdus, force_hash);
  pop.accumulate(rows.data(), 1500);
  ASSERT_EQ(pop.counts().size(), expected.size());
  for (std::size_t u = 0; u < expected.size(); ++u) {
    ASSERT_EQ(pop.counts()[u], expected[u]) << "cdu " << cdus.to_string(u);
  }
}

TEST(PopulateOracle, BitmapKernelSupportsInterleavedCountsAndAccumulate) {
  // The bitmap kernel finalizes lazily: counts() AND-reduces only the word
  // range appended since the last finalize.  Interleaving reads with
  // further accumulation — which the SPMD loop does across chunk
  // boundaries — must yield exact prefix counts at every step, including
  // reads at non-multiple-of-64 row watermarks (partial head word).
  IcgRandom rng(109);
  const GridSet grids = uniform_grids(7, 9);
  const UnitStore cdus = random_cdus(rng, grids, 3, 70);
  const std::vector<Value> rows = random_rows(rng, 1000, 7);

  const PopulateConfig cfg{256, PopulateKernel::Bitmap, 48};
  UnitPopulator pop(grids, cdus, cfg);
  std::size_t done = 0;
  for (const std::size_t chunk : {37u, 1u, 64u, 200u, 500u, 198u}) {
    pop.accumulate(rows.data() + done * 7, chunk);
    done += chunk;
    const std::vector<Count> expected =
        oracle_counts(grids, cdus, rows.data(), done);
    ASSERT_EQ(pop.counts().size(), expected.size());
    for (std::size_t u = 0; u < expected.size(); ++u) {
      ASSERT_EQ(pop.counts()[u], expected[u])
          << "cdu " << cdus.to_string(u) << " after " << done << " rows";
    }
  }
  ASSERT_EQ(done, 1000u);
  // A read with no new rows since the last finalize is a no-op.
  const std::vector<Count> again(pop.counts().begin(), pop.counts().end());
  EXPECT_EQ(again, oracle_counts(grids, cdus, rows.data(), 1000));
}

// ------------------------------------------- randomized datagen workloads

class PopulateOracleDatagen : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PopulateOracleDatagen, KernelsMatchOracleOnPlantedWorkloads) {
  IcgRandom rng(GetParam() * 7919);
  GeneratorConfig cfg;
  cfg.num_dims = 8 + uniform_index(rng, 8);  // 8..15 dims
  cfg.num_records = 1500;
  cfg.seed = GetParam();
  const std::size_t nclusters = 1 + uniform_index(rng, 3);
  for (std::size_t c = 0; c < nclusters; ++c) {
    const std::size_t cdims = 2 + uniform_index(rng, 3);
    std::vector<DimId> dims(cfg.num_dims);
    std::iota(dims.begin(), dims.end(), DimId{0});
    shuffle(rng, dims.begin(), dims.end());
    dims.resize(cdims);
    std::sort(dims.begin(), dims.end());
    const Value lo = static_cast<Value>(10 + 20 * c);
    cfg.clusters.push_back(
        ClusterSpec::box(std::move(dims), std::vector<Value>(cdims, lo),
                         std::vector<Value>(cdims, lo + 10), 1.0));
  }
  const Dataset data = generate(cfg);

  const GridSet grids = uniform_grids(cfg.num_dims, 3 + uniform_index(rng, 17));
  const std::size_t k =
      1 + uniform_index(rng, std::min<std::size_t>(cfg.num_dims, 10));
  const UnitStore cdus = random_cdus(rng, grids, k, 1 + uniform_index(rng, 120));
  expect_all_kernels_match_oracle(grids, cdus, data.values());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulateOracleDatagen,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace mafia
