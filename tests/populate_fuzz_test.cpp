// Fuzz tests for CDU population: the production kernels (packed sorted,
// packed hash, memcmp fallback) against the naive reference oracle
// (tests/populate_oracle.hpp), over randomized grids, candidates, and
// records.
//
// Regression note: the populator's memcmp-based row sort/search once used a
// length of `k` elements where bytes were required.  With BinId = uint8_t
// the two coincide, so the fuzz suite could not catch it; the comparison
// length is now spelled `k * sizeof(BinId)` and populate.cpp static_asserts
// the row-layout contract (no padding bits) so a wider BinId fails to
// compile rather than silently truncating comparisons.  These randomized
// instances (multi-bin rows, duplicate-prefix candidates) are the tests
// that would break first if the byte width regressed.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "grid/adaptive_grid.hpp"
#include "grid/histogram.hpp"
#include "grid/uniform_grid.hpp"
#include "populate_oracle.hpp"
#include "rng/distributions.hpp"
#include "rng/icg.hpp"
#include "units/populate.hpp"

namespace mafia {
namespace {

/// Randomized grid per dimension: either uniform (random xi) or adaptive
/// from a random histogram.
GridSet random_grids(IcgRandom& rng, std::size_t d) {
  GridSet grids;
  for (std::size_t j = 0; j < d; ++j) {
    if (rng() % 2 == 0) {
      const std::size_t xi = 2 + uniform_index(rng, 18);
      grids.dims.push_back(compute_uniform_grid(static_cast<DimId>(j), 0.0f,
                                                100.0f, xi, 0.01, 1000));
    } else {
      AdaptiveGridOptions o;
      o.fine_bins = 50;
      o.window_cells = 2;
      std::vector<Count> counts(50);
      for (auto& c : counts) c = uniform_index(rng, 100);
      // Plant a step so there is usually more than one bin.
      const std::size_t lo = uniform_index(rng, 30);
      for (std::size_t c = lo; c < lo + 10; ++c) counts[c] += 5000;
      grids.dims.push_back(compute_adaptive_grid(static_cast<DimId>(j), 0.0f,
                                                 100.0f, counts, 100000, o));
    }
  }
  return grids;
}

class PopulateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PopulateFuzz, MatchesOracleOnRandomInstances) {
  IcgRandom rng(GetParam());
  const std::size_t d = 3 + uniform_index(rng, 8);       // 3..10 dims
  const std::size_t k = 1 + uniform_index(rng, std::min<std::size_t>(d, 4));
  const std::size_t ncdu = 1 + uniform_index(rng, 60);
  const std::size_t nrows = 200 + uniform_index(rng, 800);

  const GridSet grids = random_grids(rng, d);
  const UnitStore cdus = random_cdus(rng, grids, k, ncdu);

  std::vector<Value> rows(nrows * d);
  for (auto& v : rows) {
    // Mostly in-domain, some outside to exercise clamping.
    v = static_cast<Value>(uniform_real(rng, -10.0, 110.0));
  }

  UnitPopulator pop(grids, cdus);
  pop.accumulate(rows.data(), nrows);
  const auto expected = oracle_counts(grids, cdus, rows.data(), nrows);
  ASSERT_EQ(pop.counts().size(), expected.size());
  for (std::size_t u = 0; u < expected.size(); ++u) {
    EXPECT_EQ(pop.counts()[u], expected[u]) << "cdu " << cdus.to_string(u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PopulateFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

// Packed-key path fuzz: arity mixes straddling the k = 8 fast-path
// boundary (k in 6..10 crosses packed -> memcmp fallback), with random
// block sizes and hash thresholds, each instance run under every explicit
// kernel selection and compared count-for-count against the oracle.
class PackedKeyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackedKeyFuzz, StraddlesPackedBoundaryAgainstOracle) {
  IcgRandom rng(GetParam() * 6364136223846793005ull + 1);
  const std::size_t d = 10 + uniform_index(rng, 6);  // 10..15 dims
  const std::size_t k = 6 + uniform_index(rng, 5);   // 6..10: spans k = 8/9
  const std::size_t ncdu = 1 + uniform_index(rng, 150);
  const std::size_t nrows = 300 + uniform_index(rng, 700);

  const GridSet grids = random_grids(rng, d);
  const UnitStore cdus = random_cdus(rng, grids, k, ncdu);
  std::vector<Value> rows(nrows * d);
  for (auto& v : rows) {
    v = static_cast<Value>(uniform_real(rng, -10.0, 110.0));
  }
  const auto expected = oracle_counts(grids, cdus, rows.data(), nrows);

  for (const PopulateKernel kernel :
       {PopulateKernel::Auto, PopulateKernel::Packed, PopulateKernel::Memcmp}) {
    PopulateConfig cfg;
    cfg.kernel = kernel;
    cfg.block_records = 1 + uniform_index(rng, 512);
    cfg.hash_min_cdus = 1 + uniform_index(rng, 2 * ncdu);
    UnitPopulator pop(grids, cdus, cfg);
    pop.accumulate(rows.data(), nrows);
    ASSERT_EQ(pop.counts().size(), expected.size());
    for (std::size_t u = 0; u < expected.size(); ++u) {
      ASSERT_EQ(pop.counts()[u], expected[u])
          << "cdu " << cdus.to_string(u) << " k=" << k
          << " kernel=" << static_cast<int>(kernel)
          << " block=" << cfg.block_records;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedKeyFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(PopulateInvariant, LevelOneCountsPartitionTheRecords) {
  // The level-1 candidate set is every bin of every dimension; since bins
  // tile each dimension, the counts of one dimension's bins must sum to N.
  IcgRandom rng(4242);
  const std::size_t d = 5;
  const GridSet grids = random_grids(rng, d);
  UnitStore cdus(1);
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t b = 0; b < grids[j].num_bins(); ++b) {
      const auto dj = static_cast<DimId>(j);
      const auto bb = static_cast<BinId>(b);
      cdus.push_unchecked(&dj, &bb);
    }
  }
  constexpr std::size_t kRows = 5000;
  std::vector<Value> rows(kRows * d);
  for (auto& v : rows) v = static_cast<Value>(uniform_real(rng, 0.0, 100.0));

  UnitPopulator pop(grids, cdus);
  pop.accumulate(rows.data(), kRows);
  std::size_t at = 0;
  for (std::size_t j = 0; j < d; ++j) {
    Count sum = 0;
    for (std::size_t b = 0; b < grids[j].num_bins(); ++b) sum += pop.counts()[at++];
    EXPECT_EQ(sum, kRows) << "dimension " << j << " bins do not tile";
  }
}

}  // namespace
}  // namespace mafia
