// Tests for the Section 5.1 synthetic data generator: record accounting,
// noise fraction, label fidelity, the unit-cube coverage guarantee, record
// permutation, engine selection, and the canned workload configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "datagen/generator.hpp"
#include "datagen/workloads.hpp"

namespace mafia {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = 5000;
  cfg.seed = 3;
  cfg.clusters.push_back(ClusterSpec::box({1, 3}, {20, 40}, {40, 60}));
  return cfg;
}

TEST(Generator, RecordCountIncludesAdditionalNoise) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  // "An additional 10% noise records is added".
  EXPECT_EQ(data.num_records(), 5500u);
  EXPECT_EQ(data.num_dims(), 6u);
}

TEST(Generator, NoiseFractionIsRespected) {
  GeneratorConfig cfg = small_config();
  cfg.noise_fraction = 0.25;
  const Dataset data = generate(cfg);
  std::size_t noise = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    noise += (data.label(i) == -1);
  }
  EXPECT_EQ(noise, 1250u);
  EXPECT_EQ(data.num_records(), 6250u);
}

TEST(Generator, ClusterRecordsLieInsideTheirBoxes) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    EXPECT_GE(data.at(i, 1), 20.0f);
    EXPECT_LE(data.at(i, 1), 40.0f);
    EXPECT_GE(data.at(i, 3), 40.0f);
    EXPECT_LE(data.at(i, 3), 60.0f);
  }
}

TEST(Generator, NonSubspaceDimsSpanTheDomain) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  Value lo = 100.0f;
  Value hi = 0.0f;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    lo = std::min(lo, data.at(i, 0));
    hi = std::max(hi, data.at(i, 0));
  }
  EXPECT_LT(lo, 5.0f);
  EXPECT_GT(hi, 95.0f);
}

TEST(Generator, UnitCubeCoverageGuarantee) {
  // "Data points are generated such that each unit cube, part of the user
  // defined cluster, in this scaled space contains at least one point."
  // Cluster 20x20 in scaled units => 400 unit cubes, 4545 cluster records.
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  std::set<std::pair<int, int>> cubes;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    const int a = std::min(19, static_cast<int>((data.at(i, 1) - 20.0f)));
    const int b = std::min(19, static_cast<int>((data.at(i, 3) - 40.0f)));
    cubes.insert({a, b});
  }
  EXPECT_EQ(cubes.size(), 400u) << "some unit cube of the cluster is empty";
}

TEST(Generator, DeterministicPerSeed) {
  const GeneratorConfig cfg = small_config();
  const Dataset a = generate(cfg);
  const Dataset b = generate(cfg);
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg = small_config();
  const Dataset a = generate(cfg);
  cfg.seed = 4;
  const Dataset b = generate(cfg);
  EXPECT_NE(a.values(), b.values());
}

TEST(Generator, PermutationShufflesLabels) {
  // With permutation on, cluster and noise records interleave; a long
  // prefix of only-cluster labels would betray ordering.
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  bool noise_in_first_quarter = false;
  for (RecordIndex i = 0; i < data.num_records() / 4; ++i) {
    noise_in_first_quarter = noise_in_first_quarter || data.label(i) == -1;
  }
  EXPECT_TRUE(noise_in_first_quarter);
}

TEST(Generator, NoPermutationKeepsGenerationOrder) {
  GeneratorConfig cfg = small_config();
  cfg.permute_records = false;
  const Dataset data = generate(cfg);
  // All noise records sit at the tail.
  for (RecordIndex i = 0; i < 5000; ++i) EXPECT_EQ(data.label(i), 0);
  for (RecordIndex i = 5000; i < data.num_records(); ++i) {
    EXPECT_EQ(data.label(i), -1);
  }
}

TEST(Generator, LcgEngineProducesDifferentData) {
  GeneratorConfig cfg = small_config();
  const Dataset icg = generate(cfg);
  cfg.engine = GeneratorConfig::Engine::Lcg;
  const Dataset lcg = generate(cfg);
  EXPECT_NE(icg.values(), lcg.values());
  EXPECT_EQ(lcg.num_records(), icg.num_records());
}

TEST(Generator, MultiBoxClusterSplitsByVolume) {
  GeneratorConfig cfg;
  cfg.num_dims = 4;
  cfg.num_records = 4000;
  cfg.seed = 5;
  ClusterSpec spec;
  spec.dims = {0, 2};
  spec.boxes.push_back(ClusterBox{{10, 10}, {30, 30}});  // area 400
  spec.boxes.push_back(ClusterBox{{60, 60}, {70, 70}});  // area 100
  cfg.clusters.push_back(std::move(spec));
  const Dataset data = generate(cfg);
  std::size_t in_big = 0;
  std::size_t in_small = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    const Value a = data.at(i, 0);
    const Value c = data.at(i, 2);
    if (a >= 10 && a <= 30 && c >= 10 && c <= 30) ++in_big;
    if (a >= 60 && a <= 70 && c >= 60 && c <= 70) ++in_small;
  }
  EXPECT_EQ(in_big + in_small, 4000u);
  // 4:1 volume ratio within 15% relative tolerance.
  EXPECT_NEAR(static_cast<double>(in_big) / in_small, 4.0, 0.6);
}

TEST(Generator, WeightsSplitRecordsAcrossClusters) {
  GeneratorConfig cfg;
  cfg.num_dims = 4;
  cfg.num_records = 3000;
  cfg.seed = 6;
  cfg.clusters.push_back(ClusterSpec::box({0}, {10}, {20}, 2.0));
  cfg.clusters.push_back(ClusterSpec::box({1}, {10}, {20}, 1.0));
  const Dataset data = generate(cfg);
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    c0 += (data.label(i) == 0);
    c1 += (data.label(i) == 1);
  }
  EXPECT_EQ(c0 + c1, 3000u);
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.05);
}

TEST(Generator, ValidationCatchesBadSpecs) {
  GeneratorConfig cfg = small_config();
  cfg.clusters[0].dims = {3, 1};  // not ascending
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.clusters[0].boxes[0].hi[0] = 10;  // hi < lo
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.clusters[0].dims = {1, 9};  // out of range for 6 dims
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.num_records = 0;
  EXPECT_THROW((void)generate(cfg), Error);
}

TEST(Generator, GroundTruthMirrorsSpecs) {
  GeneratorConfig cfg = small_config();
  ClusterSpec two_box;
  two_box.dims = {0, 5};
  two_box.boxes.push_back(ClusterBox{{1, 1}, {2, 2}});
  two_box.boxes.push_back(ClusterBox{{3, 3}, {4, 4}});
  cfg.clusters.push_back(std::move(two_box));
  const auto truth = ground_truth(cfg);
  ASSERT_EQ(truth.size(), 3u);  // 1 + 2 boxes
  EXPECT_EQ(truth[0].dims, (std::vector<DimId>{1, 3}));
  EXPECT_EQ(truth[1].dims, (std::vector<DimId>{0, 5}));
  EXPECT_EQ(truth[2].lo, (std::vector<Value>{3, 3}));
}

// ------------------------------------------------------- canned workloads

TEST(Workloads, AllConfigsValidate) {
  workloads::fig3_parallel(1000).validate();
  workloads::tab1_vs_clique(1000).validate();
  workloads::tab2_cdu_counts(1000).validate();
  workloads::fig5_dbsize(1000).validate();
  workloads::fig6_datadim(1000, 10).validate();
  workloads::fig6_datadim(1000, 100).validate();
  workloads::fig7_clusterdim(1000, 3).validate();
  workloads::fig7_clusterdim(1000, 10).validate();
  workloads::tab3_quality(1000).validate();
  workloads::dax_like().validate();
  workloads::ionosphere_like().validate();
  workloads::eachmovie_like(1000).validate();
  workloads::l_shape_demo(1000).validate();
}

TEST(Workloads, StructuralShapesMatchThePaper) {
  EXPECT_EQ(workloads::fig3_parallel(1000).num_dims, 30u);
  EXPECT_EQ(workloads::fig3_parallel(1000).clusters.size(), 5u);
  for (const auto& c : workloads::fig3_parallel(1000).clusters) {
    EXPECT_EQ(c.dims.size(), 6u);
  }

  EXPECT_EQ(workloads::tab1_vs_clique(1000).num_dims, 15u);
  EXPECT_EQ(workloads::tab1_vs_clique(1000).clusters.size(), 1u);
  EXPECT_EQ(workloads::tab1_vs_clique(1000).clusters[0].dims.size(), 5u);

  EXPECT_EQ(workloads::tab2_cdu_counts(1000).clusters[0].dims.size(), 7u);

  // Fig 6: exactly 9 distinct cluster dims regardless of data dims.
  for (const std::size_t d : {10u, 40u, 100u}) {
    const auto cfg = workloads::fig6_datadim(1000, d);
    std::set<DimId> distinct;
    for (const auto& c : cfg.clusters) {
      distinct.insert(c.dims.begin(), c.dims.end());
    }
    EXPECT_EQ(distinct.size(), 9u) << "data dims " << d;
    EXPECT_EQ(cfg.num_dims, d);
  }

  EXPECT_EQ(workloads::dax_like().num_records, 2757u);
  EXPECT_EQ(workloads::dax_like().num_dims, 22u);
  EXPECT_EQ(workloads::ionosphere_like().num_records, 351u);
  EXPECT_EQ(workloads::ionosphere_like().num_dims, 34u);
  EXPECT_EQ(workloads::eachmovie_like(1000).num_dims, 4u);
  EXPECT_EQ(workloads::eachmovie_like(1000).clusters.size(), 7u);
}

TEST(Workloads, Fig7ClusterDimsAreDistinct) {
  for (std::size_t k = 3; k <= 10; ++k) {
    const auto cfg = workloads::fig7_clusterdim(1000, k);
    const auto& dims = cfg.clusters[0].dims;
    EXPECT_EQ(dims.size(), k);
    EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()));
    EXPECT_EQ(std::set<DimId>(dims.begin(), dims.end()).size(), k);
  }
}

}  // namespace
}  // namespace mafia
