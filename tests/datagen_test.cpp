// Tests for the Section 5.1 synthetic data generator: record accounting,
// noise fraction, label fidelity, the unit-cube coverage guarantee, record
// permutation, engine selection, and the canned workload configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "datagen/generator.hpp"
#include "datagen/workloads.hpp"

namespace mafia {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.num_dims = 6;
  cfg.num_records = 5000;
  cfg.seed = 3;
  cfg.clusters.push_back(ClusterSpec::box({1, 3}, {20, 40}, {40, 60}));
  return cfg;
}

TEST(Generator, RecordCountIncludesAdditionalNoise) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  // "An additional 10% noise records is added".
  EXPECT_EQ(data.num_records(), 5500u);
  EXPECT_EQ(data.num_dims(), 6u);
}

TEST(Generator, NoiseFractionIsRespected) {
  GeneratorConfig cfg = small_config();
  cfg.noise_fraction = 0.25;
  const Dataset data = generate(cfg);
  std::size_t noise = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    noise += (data.label(i) == -1);
  }
  EXPECT_EQ(noise, 1250u);
  EXPECT_EQ(data.num_records(), 6250u);
}

TEST(Generator, ClusterRecordsLieInsideTheirBoxes) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    EXPECT_GE(data.at(i, 1), 20.0f);
    EXPECT_LE(data.at(i, 1), 40.0f);
    EXPECT_GE(data.at(i, 3), 40.0f);
    EXPECT_LE(data.at(i, 3), 60.0f);
  }
}

TEST(Generator, NonSubspaceDimsSpanTheDomain) {
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  Value lo = 100.0f;
  Value hi = 0.0f;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    lo = std::min(lo, data.at(i, 0));
    hi = std::max(hi, data.at(i, 0));
  }
  EXPECT_LT(lo, 5.0f);
  EXPECT_GT(hi, 95.0f);
}

TEST(Generator, UnitCubeCoverageGuarantee) {
  // "Data points are generated such that each unit cube, part of the user
  // defined cluster, in this scaled space contains at least one point."
  // Cluster 20x20 in scaled units => 400 unit cubes, 4545 cluster records.
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  std::set<std::pair<int, int>> cubes;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    const int a = std::min(19, static_cast<int>((data.at(i, 1) - 20.0f)));
    const int b = std::min(19, static_cast<int>((data.at(i, 3) - 40.0f)));
    cubes.insert({a, b});
  }
  EXPECT_EQ(cubes.size(), 400u) << "some unit cube of the cluster is empty";
}

TEST(Generator, DeterministicPerSeed) {
  const GeneratorConfig cfg = small_config();
  const Dataset a = generate(cfg);
  const Dataset b = generate(cfg);
  EXPECT_EQ(a.values(), b.values());
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg = small_config();
  const Dataset a = generate(cfg);
  cfg.seed = 4;
  const Dataset b = generate(cfg);
  EXPECT_NE(a.values(), b.values());
}

TEST(Generator, PermutationShufflesLabels) {
  // With permutation on, cluster and noise records interleave; a long
  // prefix of only-cluster labels would betray ordering.
  const GeneratorConfig cfg = small_config();
  const Dataset data = generate(cfg);
  bool noise_in_first_quarter = false;
  for (RecordIndex i = 0; i < data.num_records() / 4; ++i) {
    noise_in_first_quarter = noise_in_first_quarter || data.label(i) == -1;
  }
  EXPECT_TRUE(noise_in_first_quarter);
}

TEST(Generator, NoPermutationKeepsGenerationOrder) {
  GeneratorConfig cfg = small_config();
  cfg.permute_records = false;
  const Dataset data = generate(cfg);
  // All noise records sit at the tail.
  for (RecordIndex i = 0; i < 5000; ++i) EXPECT_EQ(data.label(i), 0);
  for (RecordIndex i = 5000; i < data.num_records(); ++i) {
    EXPECT_EQ(data.label(i), -1);
  }
}

TEST(Generator, LcgEngineProducesDifferentData) {
  GeneratorConfig cfg = small_config();
  const Dataset icg = generate(cfg);
  cfg.engine = GeneratorConfig::Engine::Lcg;
  const Dataset lcg = generate(cfg);
  EXPECT_NE(icg.values(), lcg.values());
  EXPECT_EQ(lcg.num_records(), icg.num_records());
}

TEST(Generator, MultiBoxClusterSplitsByVolume) {
  GeneratorConfig cfg;
  cfg.num_dims = 4;
  cfg.num_records = 4000;
  cfg.seed = 5;
  ClusterSpec spec;
  spec.dims = {0, 2};
  spec.boxes.push_back(ClusterBox{{10, 10}, {30, 30}});  // area 400
  spec.boxes.push_back(ClusterBox{{60, 60}, {70, 70}});  // area 100
  cfg.clusters.push_back(std::move(spec));
  const Dataset data = generate(cfg);
  std::size_t in_big = 0;
  std::size_t in_small = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    if (data.label(i) != 0) continue;
    const Value a = data.at(i, 0);
    const Value c = data.at(i, 2);
    if (a >= 10 && a <= 30 && c >= 10 && c <= 30) ++in_big;
    if (a >= 60 && a <= 70 && c >= 60 && c <= 70) ++in_small;
  }
  EXPECT_EQ(in_big + in_small, 4000u);
  // 4:1 volume ratio within 15% relative tolerance.
  EXPECT_NEAR(static_cast<double>(in_big) / in_small, 4.0, 0.6);
}

TEST(Generator, WeightsSplitRecordsAcrossClusters) {
  GeneratorConfig cfg;
  cfg.num_dims = 4;
  cfg.num_records = 3000;
  cfg.seed = 6;
  cfg.clusters.push_back(ClusterSpec::box({0}, {10}, {20}, 2.0));
  cfg.clusters.push_back(ClusterSpec::box({1}, {10}, {20}, 1.0));
  const Dataset data = generate(cfg);
  std::size_t c0 = 0;
  std::size_t c1 = 0;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    c0 += (data.label(i) == 0);
    c1 += (data.label(i) == 1);
  }
  EXPECT_EQ(c0 + c1, 3000u);
  EXPECT_NEAR(static_cast<double>(c0) / c1, 2.0, 0.05);
}

TEST(Generator, ValidationCatchesBadSpecs) {
  GeneratorConfig cfg = small_config();
  cfg.clusters[0].dims = {3, 1};  // not ascending
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.clusters[0].boxes[0].hi[0] = 10;  // hi < lo
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.clusters[0].dims = {1, 9};  // out of range for 6 dims
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = small_config();
  cfg.num_records = 0;
  EXPECT_THROW((void)generate(cfg), Error);
}

TEST(Generator, GroundTruthMirrorsSpecs) {
  GeneratorConfig cfg = small_config();
  ClusterSpec two_box;
  two_box.dims = {0, 5};
  two_box.boxes.push_back(ClusterBox{{1, 1}, {2, 2}});
  two_box.boxes.push_back(ClusterBox{{3, 3}, {4, 4}});
  cfg.clusters.push_back(std::move(two_box));
  const auto truth = ground_truth(cfg);
  ASSERT_EQ(truth.size(), 3u);  // 1 + 2 boxes
  EXPECT_EQ(truth[0].dims, (std::vector<DimId>{1, 3}));
  EXPECT_EQ(truth[1].dims, (std::vector<DimId>{0, 5}));
  EXPECT_EQ(truth[2].lo, (std::vector<Value>{3, 3}));
}

// ------------------------------------------------------- canned workloads

TEST(Workloads, AllConfigsValidate) {
  workloads::fig3_parallel(1000).validate();
  workloads::tab1_vs_clique(1000).validate();
  workloads::tab2_cdu_counts(1000).validate();
  workloads::fig5_dbsize(1000).validate();
  workloads::fig6_datadim(1000, 10).validate();
  workloads::fig6_datadim(1000, 100).validate();
  workloads::fig7_clusterdim(1000, 3).validate();
  workloads::fig7_clusterdim(1000, 10).validate();
  workloads::tab3_quality(1000).validate();
  workloads::dax_like().validate();
  workloads::ionosphere_like().validate();
  workloads::eachmovie_like(1000).validate();
  workloads::l_shape_demo(1000).validate();
}

TEST(Workloads, StructuralShapesMatchThePaper) {
  EXPECT_EQ(workloads::fig3_parallel(1000).num_dims, 30u);
  EXPECT_EQ(workloads::fig3_parallel(1000).clusters.size(), 5u);
  for (const auto& c : workloads::fig3_parallel(1000).clusters) {
    EXPECT_EQ(c.dims.size(), 6u);
  }

  EXPECT_EQ(workloads::tab1_vs_clique(1000).num_dims, 15u);
  EXPECT_EQ(workloads::tab1_vs_clique(1000).clusters.size(), 1u);
  EXPECT_EQ(workloads::tab1_vs_clique(1000).clusters[0].dims.size(), 5u);

  EXPECT_EQ(workloads::tab2_cdu_counts(1000).clusters[0].dims.size(), 7u);

  // Fig 6: exactly 9 distinct cluster dims regardless of data dims.
  for (const std::size_t d : {10u, 40u, 100u}) {
    const auto cfg = workloads::fig6_datadim(1000, d);
    std::set<DimId> distinct;
    for (const auto& c : cfg.clusters) {
      distinct.insert(c.dims.begin(), c.dims.end());
    }
    EXPECT_EQ(distinct.size(), 9u) << "data dims " << d;
    EXPECT_EQ(cfg.num_dims, d);
  }

  EXPECT_EQ(workloads::dax_like().num_records, 2757u);
  EXPECT_EQ(workloads::dax_like().num_dims, 22u);
  EXPECT_EQ(workloads::ionosphere_like().num_records, 351u);
  EXPECT_EQ(workloads::ionosphere_like().num_dims, 34u);
  EXPECT_EQ(workloads::eachmovie_like(1000).num_dims, 4u);
  EXPECT_EQ(workloads::eachmovie_like(1000).clusters.size(), 7u);
}

TEST(Workloads, Fig7ClusterDimsAreDistinct) {
  for (std::size_t k = 3; k <= 10; ++k) {
    const auto cfg = workloads::fig7_clusterdim(1000, k);
    const auto& dims = cfg.clusters[0].dims;
    EXPECT_EQ(dims.size(), k);
    EXPECT_TRUE(std::is_sorted(dims.begin(), dims.end()));
    EXPECT_EQ(std::set<DimId>(dims.begin(), dims.end()).size(), k);
  }
}

// ------------------------------------------- scoreboard stress workloads

TEST(StressWorkloads, ConfigsValidate) {
  workloads::highdim(1000).validate();
  workloads::overlap(1000).validate();
  workloads::mixed(1000).validate();
}

TEST(StressWorkloads, HighdimRecordsLieInsideTheirBoxes) {
  const GeneratorConfig cfg = workloads::highdim(900);
  EXPECT_EQ(cfg.num_dims, 200u);
  ASSERT_EQ(cfg.clusters.size(), 3u);
  EXPECT_EQ(cfg.clusters[0].dims.size(), 10u);
  EXPECT_EQ(cfg.clusters[1].dims.size(), 12u);
  EXPECT_EQ(cfg.clusters[2].dims.size(), 15u);
  const Dataset data = generate(cfg);
  std::size_t per_cluster[3] = {0, 0, 0};
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const std::int32_t label = data.label(i);
    if (label == kNoiseLabel) continue;
    ASSERT_GE(label, 0);
    ASSERT_LT(label, 3);
    ++per_cluster[label];
    const ClusterSpec& spec = cfg.clusters[static_cast<std::size_t>(label)];
    for (std::size_t k = 0; k < spec.dims.size(); ++k) {
      EXPECT_GE(data.at(i, spec.dims[k]), spec.boxes[0].lo[k]);
      EXPECT_LE(data.at(i, spec.dims[k]), spec.boxes[0].hi[k]);
    }
  }
  EXPECT_GT(per_cluster[0], 0u);
  EXPECT_GT(per_cluster[1], 0u);
  EXPECT_GT(per_cluster[2], 0u);
}

TEST(StressWorkloads, OverlapIsRealizedInTheSharedRegion) {
  // Both clusters share dims {2,4,6}; their boxes intersect on [40,50]
  // there.  Records from BOTH clusters must land in the shared region,
  // otherwise the workload does not actually exercise ambiguity.
  const Dataset data = generate(workloads::overlap(2000));
  std::size_t shared[2] = {0, 0};
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    const std::int32_t label = data.label(i);
    if (label != 0 && label != 1) continue;
    bool in_shared = true;
    for (const DimId d : {2, 4, 6}) {
      in_shared = in_shared && data.at(i, d) >= 40.0f && data.at(i, d) <= 50.0f;
    }
    shared[label] += in_shared;
  }
  EXPECT_GT(shared[0], 0u);
  EXPECT_GT(shared[1], 0u);
}

TEST(StressWorkloads, MixedCategoricalDimsOnlyTakeLevelValues) {
  const GeneratorConfig cfg = workloads::mixed(1500);
  const Dataset data = generate(cfg);
  const std::set<Value> levels = {10, 30, 50, 70, 90};
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    // Every record — cluster or noise — snaps dims 6/7 to a level.
    EXPECT_TRUE(levels.count(data.at(i, 6))) << data.at(i, 6);
    EXPECT_TRUE(levels.count(data.at(i, 7))) << data.at(i, 7);
    if (data.label(i) == 0) {
      EXPECT_EQ(data.at(i, 6), 50.0f);  // only level inside [44,56]
      EXPECT_GE(data.at(i, 9), 200.0f);
      EXPECT_LE(data.at(i, 9), 360.0f);
    } else if (data.label(i) == 1) {
      EXPECT_EQ(data.at(i, 7), 70.0f);  // only level inside [64,76]
      EXPECT_GE(data.at(i, 10), 600.0f);
      EXPECT_LE(data.at(i, 10), 760.0f);
    }
  }
}

TEST(StressWorkloads, MixedScaleDimsSpanTheirOwnDomains) {
  const Dataset data = generate(workloads::mixed(3000));
  Value hi8 = 0.0f;
  Value hi0 = 0.0f;
  for (RecordIndex i = 0; i < data.num_records(); ++i) {
    hi8 = std::max(hi8, data.at(i, 8));
    hi0 = std::max(hi0, data.at(i, 0));
  }
  EXPECT_GT(hi8, 500.0f);   // [0,1000] background actually used
  EXPECT_LE(hi0, 100.0f);   // [0,100] dims never exceed their domain
}

TEST(StressWorkloads, DeterministicPerSeed) {
  for (int variant = 0; variant < 3; ++variant) {
    const auto make = [&](std::uint64_t seed) {
      switch (variant) {
        case 0: return workloads::highdim(700, seed);
        case 1: return workloads::overlap(700, seed);
        default: return workloads::mixed(700, seed);
      }
    };
    const Dataset a = generate(make(5));
    const Dataset b = generate(make(5));
    EXPECT_EQ(a.values(), b.values()) << "variant " << variant;
    EXPECT_EQ(a.labels(), b.labels()) << "variant " << variant;
    const Dataset c = generate(make(6));
    EXPECT_NE(a.values(), c.values()) << "variant " << variant;
  }
}

TEST(StressWorkloads, DimSpecValidationCatchesBadSpecs) {
  GeneratorConfig cfg = workloads::mixed(1000);
  cfg.dim_specs.resize(5);  // wrong arity
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = workloads::mixed(1000);
  cfg.dim_specs[6].levels = {30, 10};  // not ascending
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = workloads::mixed(1000);
  cfg.clusters[0].boxes[0].lo[1] = 51;  // box [51,56] contains no level
  cfg.clusters[0].boxes[0].hi[1] = 56;
  EXPECT_THROW((void)generate(cfg), Error);

  cfg = workloads::mixed(1000);
  cfg.clusters[1].boxes[0].hi[2] = 1200;  // beyond dim 10's [0,1000] domain
  EXPECT_THROW((void)generate(cfg), Error);
}

}  // namespace
}  // namespace mafia
